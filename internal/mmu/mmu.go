// Package mmu computes minimum mutator utilization curves, following the
// methodology of Cheng and Blelloch that the paper adopts for its
// responsiveness results (§4.3, Figure 11).
//
// Mutator utilization over an interval [t0,t1) is the fraction of that
// interval during which the mutator (not the collector) runs. A point
// (w, m) lies on the MMU curve if every window of length w within the
// run has utilization at least m. MMU curves are monotonically
// non-decreasing in w; the x-intercept is the maximum GC pause and the
// asymptote is overall mutator throughput.
package mmu

import (
	"math"
	"sort"

	"beltway/internal/stats"
)

// Point is one (window, utilization) sample of an MMU curve.
type Point struct {
	Window      float64 // window length, cost units
	Utilization float64 // minimum mutator utilization over all such windows
}

// Curve holds MMU samples for increasing window sizes.
type Curve struct {
	Points []Point
	// MaxPause is the longest single pause (the curve's x-intercept).
	MaxPause float64
	// Throughput is overall mutator utilization (the curve's asymptote).
	Throughput float64
}

// MMU returns the minimum mutator utilization for a single window length
// w, given the run's pauses and total time.
//
// The minimum over all windows of length w is attained at a window whose
// start or end coincides with a pause boundary, so it suffices to
// evaluate windows anchored at each pause's start and end.
func MMU(pauses []stats.Pause, total, w float64) float64 {
	if w <= 0 {
		return 0
	}
	if w >= total {
		// One window: the whole run.
		var gcT float64
		for _, p := range pauses {
			gcT += p.Duration()
		}
		if total == 0 {
			return 1
		}
		return 1 - gcT/total
	}
	min := 1.0
	consider := func(start float64) {
		if start < 0 {
			start = 0
		}
		if start+w > total {
			start = total - w
		}
		gcT := gcWithin(pauses, start, start+w)
		if u := 1 - gcT/w; u < min {
			min = u
		}
	}
	for _, p := range pauses {
		consider(p.Start)   // window starting at a pause start
		consider(p.End - w) // window ending at a pause end
	}
	if min < 0 {
		min = 0
	}
	return min
}

// gcWithin returns the total pause time overlapping [a,b).
func gcWithin(pauses []stats.Pause, a, b float64) float64 {
	var t float64
	// Pauses are in timeline order; binary search the first overlapper.
	i := sort.Search(len(pauses), func(i int) bool { return pauses[i].End > a })
	for ; i < len(pauses) && pauses[i].Start < b; i++ {
		lo := math.Max(pauses[i].Start, a)
		hi := math.Min(pauses[i].End, b)
		if hi > lo {
			t += hi - lo
		}
	}
	return t
}

// Monotone replaces each point's utilization with the minimum over all
// windows of AT LEAST its size (the suffix minimum). Raw MMU is not
// monotone in the window size; the monotone envelope — sometimes called
// bounded mutator utilization — is what the paper's "monotonically
// increasing" Figure 11 curves show.
func (c *Curve) Monotone() {
	for i := len(c.Points) - 2; i >= 0; i-- {
		if c.Points[i+1].Utilization < c.Points[i].Utilization {
			c.Points[i].Utilization = c.Points[i+1].Utilization
		}
	}
}

// Compute samples the monotone MMU curve at n log-spaced window sizes
// between the maximum pause (the smallest interesting window) divided by
// 4 and the total run time. Use MMU directly for raw, non-monotone
// values.
func Compute(clock *stats.Clock, n int) Curve {
	pauses := clock.Pauses()
	total := clock.TotalTime()
	c := Curve{
		MaxPause:   clock.MaxPause(),
		Throughput: 1 - clock.GCFraction(),
	}
	if n < 2 || total <= 0 {
		return c
	}
	lo := c.MaxPause / 4
	if lo <= 0 {
		lo = total / 1e6
	}
	hi := total
	if lo > hi {
		lo = hi
	}
	for i := 0; i < n; i++ {
		w := lo * math.Pow(hi/lo, float64(i)/float64(n-1))
		if k := len(c.Points); k > 0 && w <= c.Points[k-1].Window {
			// Log spacing collides when hi/lo is near 1 (or rounds below
			// the previous sample near the ends of the range); keeping a
			// duplicate window would divide by zero in At's log-space
			// interpolation.
			continue
		}
		c.Points = append(c.Points, Point{Window: w, Utilization: MMU(pauses, total, w)})
	}
	c.Monotone()
	return c
}

// At interpolates the curve's utilization at window w (piecewise linear
// in log-window space; clamps at the ends).
func (c Curve) At(w float64) float64 {
	pts := c.Points
	if len(pts) == 0 {
		return 0
	}
	if w <= pts[0].Window {
		return pts[0].Utilization
	}
	for i := 1; i < len(pts); i++ {
		if w <= pts[i].Window {
			a, b := pts[i-1], pts[i]
			span := math.Log(b.Window) - math.Log(a.Window)
			if !(span > 0) {
				// Duplicate (or unsorted) windows in a hand-built curve:
				// interpolation is undefined, so report the conservative
				// (lower) of the two utilizations instead of NaN.
				return math.Min(a.Utilization, b.Utilization)
			}
			f := (math.Log(w) - math.Log(a.Window)) / span
			return a.Utilization + f*(b.Utilization-a.Utilization)
		}
	}
	return pts[len(pts)-1].Utilization
}
