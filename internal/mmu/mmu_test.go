package mmu

import (
	"math"
	"testing"
	"testing/quick"

	"beltway/internal/stats"
)

// clockWith builds a clock with the given (start,end) pauses and total.
func clockWith(total float64, pauses ...[2]float64) *stats.Clock {
	c := stats.NewClock(stats.DefaultCosts())
	at := 0.0
	for _, p := range pauses {
		c.Advance(p[0] - at)
		c.BeginPause()
		c.Advance(p[1] - p[0])
		c.EndPause()
		at = p[1]
	}
	c.Advance(total - at)
	return c
}

func TestMMUSinglePause(t *testing.T) {
	// One 10-unit pause in a 100-unit run.
	c := clockWith(100, [2]float64{40, 50})
	ps := c.Pauses()

	// Window equal to the pause: some window is all GC.
	if got := MMU(ps, 100, 10); got != 0 {
		t.Errorf("MMU(w=10) = %v, want 0", got)
	}
	// Window of 20 containing the whole pause: utilization 0.5.
	if got := MMU(ps, 100, 20); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MMU(w=20) = %v, want 0.5", got)
	}
	// Whole-run window: 0.9.
	if got := MMU(ps, 100, 100); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("MMU(w=100) = %v, want 0.9", got)
	}
	// Tiny window inside the pause: 0.
	if got := MMU(ps, 100, 1); got != 0 {
		t.Errorf("MMU(w=1) = %v, want 0", got)
	}
}

func TestMMUClusteredPauses(t *testing.T) {
	// Two 10-unit pauses separated by 5 units of mutator: a 25-unit
	// window covering both has utilization 5/25 = 0.2 — worse than
	// either pause alone suggests (the clustering effect §4.3 measures).
	c := clockWith(200, [2]float64{100, 110}, [2]float64{115, 125})
	ps := c.Pauses()
	if got := MMU(ps, 200, 25); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("MMU(w=25) = %v, want 0.2", got)
	}
}

func TestMMUNoGC(t *testing.T) {
	c := clockWith(50)
	if got := MMU(c.Pauses(), 50, 10); got != 1 {
		t.Errorf("MMU with no pauses = %v, want 1", got)
	}
}

func TestComputeCurveShape(t *testing.T) {
	c := clockWith(1000,
		[2]float64{100, 120}, [2]float64{300, 330}, [2]float64{700, 710})
	curve := Compute(c, 24)
	if curve.MaxPause != 30 {
		t.Errorf("MaxPause = %v", curve.MaxPause)
	}
	if math.Abs(curve.Throughput-0.94) > 1e-9 {
		t.Errorf("Throughput = %v", curve.Throughput)
	}
	if len(curve.Points) != 24 {
		t.Fatalf("%d points", len(curve.Points))
	}
	// Monotonically non-decreasing in window size.
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Utilization < curve.Points[i-1].Utilization-1e-9 {
			t.Errorf("curve decreases at %d: %v -> %v", i,
				curve.Points[i-1].Utilization, curve.Points[i].Utilization)
		}
		if curve.Points[i].Window <= curve.Points[i-1].Window {
			t.Errorf("windows not increasing at %d", i)
		}
	}
	// Below the max pause, utilization is 0; at the whole run it is
	// close to throughput.
	if curve.Points[0].Utilization != 0 {
		t.Errorf("smallest-window utilization = %v, want 0", curve.Points[0].Utilization)
	}
	last := curve.Points[len(curve.Points)-1]
	if math.Abs(last.Utilization-curve.Throughput) > 0.05 {
		t.Errorf("largest-window utilization %v far from throughput %v",
			last.Utilization, curve.Throughput)
	}
}

func TestCurveAtInterpolates(t *testing.T) {
	c := clockWith(1000, [2]float64{500, 520})
	curve := Compute(c, 16)
	// At() must be within [0,1], monotone, and match endpoints.
	prev := -1.0
	for w := curve.Points[0].Window; w <= 1000; w *= 1.7 {
		u := curve.At(w)
		if u < 0 || u > 1 {
			t.Fatalf("At(%v) = %v out of range", w, u)
		}
		if u < prev-1e-9 {
			t.Fatalf("At not monotone at %v", w)
		}
		prev = u
	}
	if got := curve.At(curve.Points[0].Window / 10); got != curve.Points[0].Utilization {
		t.Error("At below first point should clamp")
	}
	if got := curve.At(1e12); got != curve.Points[len(curve.Points)-1].Utilization {
		t.Error("At beyond last point should clamp")
	}
}

// TestCurveAtEdgeCases pins At's behavior on degenerate curves: empty,
// single-point, duplicate windows, and the div-by-zero case — two
// distinct windows so close (or so large) that their logs collapse to
// the same float64, which used to interpolate to NaN.
func TestCurveAtEdgeCases(t *testing.T) {
	// log(next) == log(1e15) exactly in float64: the relative gap is one
	// ulp of the argument, far below one ulp of the logarithm.
	next := math.Nextafter(1e15, 2e15)
	one := Curve{Points: []Point{{Window: 5, Utilization: 0.4}}}
	cases := []struct {
		name  string
		curve Curve
		w     float64
		want  float64
	}{
		{"empty curve", Curve{}, 10, 0},
		{"one point, below", one, 1, 0.4},
		{"one point, at", one, 5, 0.4},
		{"one point, above", one, 100, 0.4},
		{"zero window", one, 0, 0.4},
		{"log-collapsed pair", Curve{Points: []Point{
			{Window: 1e15, Utilization: 0.2},
			{Window: next, Utilization: 0.8},
		}}, next, 0.2},
		{"exact duplicate windows", Curve{Points: []Point{
			{Window: 5, Utilization: 0.3},
			{Window: 5, Utilization: 0.9},
		}}, 5, 0.3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.curve.At(tc.w)
			if math.IsNaN(got) {
				t.Fatalf("At(%v) = NaN", tc.w)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("At(%v) = %v, want %v", tc.w, got, tc.want)
			}
		})
	}
}

// TestComputeEdgeCases covers runs where the sampling range degenerates:
// no pauses at all, a run that is one single pause, and a denormal-scale
// total where log spacing collides and Compute must drop the duplicate
// windows it used to emit.
func TestComputeEdgeCases(t *testing.T) {
	t.Run("zero pauses", func(t *testing.T) {
		curve := Compute(clockWith(50), 8)
		if curve.MaxPause != 0 || curve.Throughput != 1 {
			t.Fatalf("MaxPause=%v Throughput=%v", curve.MaxPause, curve.Throughput)
		}
		for _, p := range curve.Points {
			if p.Utilization != 1 {
				t.Fatalf("utilization %v at window %v, want 1", p.Utilization, p.Window)
			}
		}
		if got := curve.At(25); got != 1 {
			t.Errorf("At(25) = %v, want 1", got)
		}
	})
	t.Run("run is one single pause", func(t *testing.T) {
		curve := Compute(clockWith(10, [2]float64{0, 10}), 8)
		if curve.Throughput != 0 {
			t.Fatalf("Throughput = %v, want 0", curve.Throughput)
		}
		for _, p := range curve.Points {
			if p.Utilization != 0 {
				t.Fatalf("utilization %v at window %v, want 0", p.Utilization, p.Window)
			}
		}
		if got := curve.At(3); got != 0 {
			t.Errorf("At(3) = %v, want 0", got)
		}
	})
	t.Run("denormal total dedupes windows", func(t *testing.T) {
		// At denormal magnitudes adjacent log-spaced samples round to the
		// same float64, so the raw sampling loop produces duplicates.
		curve := Compute(clockWith(1e-320, [2]float64{0, 1e-321}), 512)
		if len(curve.Points) == 0 {
			t.Fatal("no points")
		}
		if len(curve.Points) >= 512 {
			t.Fatalf("expected window collisions to be dropped, kept all %d", len(curve.Points))
		}
		for i := 1; i < len(curve.Points); i++ {
			if curve.Points[i].Window <= curve.Points[i-1].Window {
				t.Fatalf("windows not strictly increasing at %d: %v, %v",
					i, curve.Points[i-1].Window, curve.Points[i].Window)
			}
		}
		for w := curve.Points[0].Window; w <= 1e-320; w *= 1.5 {
			if u := curve.At(w); math.IsNaN(u) || u < 0 || u > 1 {
				t.Fatalf("At(%v) = %v", w, u)
			}
		}
	})
}

func TestMMUBoundsProperty(t *testing.T) {
	// Property: for random pause layouts, 0 <= MMU <= 1 and MMU at the
	// full window equals 1 - gc/total.
	prop := func(raw []uint16, wseed uint16) bool {
		total := 10000.0
		at := 0.0
		var spans [][2]float64
		for _, r := range raw {
			gap := float64(r%500) + 1
			dur := float64(r%97) + 1
			if at+gap+dur >= total-1 {
				break
			}
			spans = append(spans, [2]float64{at + gap, at + gap + dur})
			at += gap + dur
		}
		c := clockWith(total, spans...)
		w := float64(wseed%9000) + 50
		u := MMU(c.Pauses(), total, w)
		if u < 0 || u > 1 {
			return false
		}
		want := 1 - c.GCTime()/total
		return math.Abs(MMU(c.Pauses(), total, total)-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
