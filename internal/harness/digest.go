package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"beltway/internal/stats"
)

// PayloadDigest hashes a run's serialized checkpoint payload — the exact
// bytes the engine committed and the farm writes as the per-run artifact.
// The farm ledger stores this digest so a verifier can re-derive it from
// the artifact file (and, by replaying the run, from scratch).
func PayloadDigest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// ResultDigest hashes a Result through its canonical JSON serialization,
// wrapped in the same RunPayload envelope the engine checkpoints use —
// so digesting a freshly-executed Result and digesting the bytes of its
// checkpoint artifact agree.
func ResultDigest(res *Result) (string, error) {
	payload, err := MarshalRunPayload(res)
	if err != nil {
		return "", err
	}
	return PayloadDigest(payload), nil
}

// MarshalRunPayload serializes a Result into the canonical checkpoint
// payload (RunPayload with derived pause summary). Every producer of
// payload bytes — the in-process executor, the farm worker, and ledger
// replay — must use this one serialization so byte comparisons are
// meaningful.
func MarshalRunPayload(res *Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("harness: nil result")
	}
	return json.Marshal(RunPayload{Result: res, PauseStats: stats.SummarizePauses(res.Pauses)})
}
