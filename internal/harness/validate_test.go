package harness

import (
	"strings"
	"testing"

	"beltway/internal/workload"
)

// TestValidateEnv covers every rejected flag combination (and the valid
// neighbors) so the upfront CLI gate and the deep runtime gates cannot
// drift apart silently.
func TestValidateEnv(t *testing.T) {
	cases := []struct {
		name        string
		env         Env
		forceShard  bool
		wantErr     bool
		wantMessage string
	}{
		{name: "zero env", env: Env{}},
		{name: "classic single mutator", env: Env{Mutators: 1}},
		{name: "sharded plain", env: Env{Mutators: 8}},
		{name: "adaptive flat", env: Env{Mutators: 1, Policy: "slo"}},
		{name: "adaptive with params", env: Env{Policy: "mmu:floor=0.7"}},
		{name: "faults flat", env: Env{FaultSeed: 3}},
		{name: "forced sharded plain", env: Env{Mutators: 1}, forceShard: true},

		{name: "negative mutators", env: Env{Mutators: -2},
			wantErr: true, wantMessage: "-mutators must be at least 1"},
		{name: "bogus policy", env: Env{Policy: "bogus"},
			wantErr: true, wantMessage: "-adapt"},
		{name: "adapt sharded", env: Env{Mutators: 2, Policy: "slo"},
			wantErr: true, wantMessage: "single-mutator only"},
		{name: "adapt sharded wide", env: Env{Mutators: 8, Policy: "throughput"},
			wantErr: true, wantMessage: "single-mutator only"},
		{name: "faults sharded", env: Env{Mutators: 2, FaultSeed: 7},
			wantErr: true, wantMessage: "fault injection (-fault-seed) is single-mutator only"},
		{name: "adapt and faults sharded", env: Env{Mutators: 4, Policy: "slo", FaultSeed: 1},
			wantErr: true, wantMessage: "single-mutator only"},
		{name: "adapt forced sharded at one mutator", env: Env{Mutators: 1, Policy: "slo"}, forceShard: true,
			wantErr: true, wantMessage: "single-mutator only"},
		{name: "faults forced sharded at one mutator", env: Env{Mutators: 1, FaultSeed: 9}, forceShard: true,
			wantErr: true, wantMessage: "fault injection (-fault-seed) is single-mutator only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateEnv(tc.env, tc.forceShard)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ValidateEnv(%+v, %v) = nil, want error", tc.env, tc.forceShard)
				}
				if !strings.Contains(err.Error(), tc.wantMessage) {
					t.Fatalf("error %q does not contain %q", err, tc.wantMessage)
				}
				return
			}
			if err != nil {
				t.Fatalf("ValidateEnv(%+v, %v) = %v, want nil", tc.env, tc.forceShard, err)
			}
		})
	}
}

// TestValidateEnvMatchesRuntime: every combination the upfront gate
// rejects must also be rejected by the deep runtime path (RunOne), so
// the CLI check never claims an error the runtime would accept.
func TestValidateEnvMatchesRuntime(t *testing.T) {
	for _, tweak := range []func(*Env){
		func(e *Env) { e.Mutators = 2; e.Policy = "slo" },
		func(e *Env) { e.Mutators = 2; e.FaultSeed = 7 },
	} {
		env := testEnv()
		env.Scale = 0.05
		tweak(&env)
		if ValidateEnv(env, false) == nil {
			t.Fatalf("gate accepts %+v", env)
		}
		if _, err := RunOne(appelFunc(env)(1<<20), workload.Get("db"), env); err == nil {
			t.Fatalf("runtime rejects nothing for %+v though the gate rejects it", env)
		}
	}
}
