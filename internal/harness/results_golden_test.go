package harness

import (
	"testing"

	"beltway/internal/server"
	"beltway/internal/stats"
)

// syntheticResult builds a fixed Result so table rendering is testable
// byte-for-byte without running anything.
func syntheticResult(withServer bool) *Result {
	r := &Result{
		Collector:   "Beltway 25.25",
		Benchmark:   "jess",
		HeapBytes:   4 << 20,
		TotalTime:   2 * stats.CyclesPerSecond,
		GCTime:      0.2 * stats.CyclesPerSecond,
		Collections: 7,
		Pauses: []stats.Pause{
			{Start: 0, End: 0.001 * stats.CyclesPerSecond},
			{Start: 1, End: 1 + 0.002*stats.CyclesPerSecond},
			{Start: 2, End: 2 + 0.004*stats.CyclesPerSecond},
		},
	}
	if withServer {
		r.Benchmark = "server"
		r.Server = &server.Report{
			Overall: server.PhaseReport{
				Requests:       1000,
				Latency:        server.Dist{Count: 1000, P50: 440, P99: 2200, P999: 733000, Max: 2.2e6},
				PausedRequests: 3,
				PausedFrac:     0.003,
				WorstInflation: 12.5,
			},
		}
	}
	return r
}

// TestResultsTableGolden pins the classic table rendering byte-for-byte:
// results without server reports must render exactly as they did before
// the SLO columns existed.
func TestResultsTableGolden(t *testing.T) {
	tbl := ResultsTable([]*Result{syntheticResult(false)})
	want := "" +
		"collector      benchmark  heap(MB)  total(s)  gc(s)   gc%  gcs  p50(ms)  p95(ms)  p99(ms)  max(ms)\n" +
		"--------------------------------------------------------------------------------------------------\n" +
		"Beltway 25.25       jess      4.00     2.000  0.200  10.0    7     2.00     4.00     4.00     4.00\n"
	if got := tbl.String(); got != want {
		t.Fatalf("classic table drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestResultsTableServerGolden pins the server-augmented rendering: the
// two SLO columns appear, and mixed tables pad non-server rows.
func TestResultsTableServerGolden(t *testing.T) {
	tbl := ResultsTable([]*Result{syntheticResult(false), syntheticResult(true)})
	want := "" +
		"collector      benchmark  heap(MB)  total(s)  gc(s)   gc%  gcs  p50(ms)  p95(ms)  p99(ms)  max(ms)  req-p99.9(us)  paused%\n" +
		"--------------------------------------------------------------------------------------------------------------------------\n" +
		"Beltway 25.25       jess      4.00     2.000  0.200  10.0    7     2.00     4.00     4.00     4.00              -        -\n" +
		"Beltway 25.25     server      4.00     2.000  0.200  10.0    7     2.00     4.00     4.00     4.00         1000.0     0.30\n"
	if got := tbl.String(); got != want {
		t.Fatalf("server table drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
