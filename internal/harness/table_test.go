package harness

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:   "T",
		Headers: []string{"name", "v1", "v2"},
	}
	tb.AddRow("alpha", "1.00", "2.5")
	tb.AddRow("b", "10.00", "-")
	s := tb.String()
	if !strings.Contains(s, "T\n=") {
		t.Error("missing underlined title")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, underline, header, rule, 2 rows -> 6? title+underline+header+rule+2
		if len(lines) != 6 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
		}
	}
	// Columns right-aligned except the first: "1.00" and "10.00" must end
	// at the same column.
	var rows []string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") || strings.HasPrefix(l, "b ") {
			rows = append(rows, l)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("rows not found in output:\n%s", s)
	}
	if i1, i2 := strings.Index(rows[0], "1.00")+4, strings.Index(rows[1], "10.00")+5; i1 != i2 {
		t.Errorf("numeric columns not aligned:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,v1,v2\n") || !strings.Contains(csv, "alpha,1.00,2.5") {
		t.Errorf("bad CSV:\n%s", csv)
	}
}

func TestFormatters(t *testing.T) {
	if FmtRel(math.NaN()) != "-" || FmtSec(math.NaN()) != "-" {
		t.Error("NaN should render as -")
	}
	if FmtRel(1.2345) != "1.234" && FmtRel(1.2345) != "1.235" {
		t.Errorf("FmtRel = %s", FmtRel(1.2345))
	}
	if FmtMB(1<<20) != "1.00" {
		t.Errorf("FmtMB = %s", FmtMB(1<<20))
	}
	if FmtSec(733e6) != "1.000" {
		t.Errorf("FmtSec(1s) = %s", FmtSec(733e6))
	}
}

func TestRelativeToBestHandlesOOM(t *testing.T) {
	mk := func(bench string, total float64, oom bool) *Result {
		return &Result{Benchmark: bench, TotalTime: total, GCTime: total / 10, OOM: oom}
	}
	points := [][]SweepPoint{
		{ // collector A: completes everywhere
			{Results: []*Result{mk("x", 100, false), mk("y", 300, false)}},
			{Results: []*Result{mk("x", 80, false), mk("y", 200, false)}},
		},
		{ // collector B: OOMs at the first point
			{Results: []*Result{mk("x", 100, true), mk("y", 300, false)}},
			{Results: []*Result{mk("x", 160, false), mk("y", 400, false)}},
		},
	}
	rel := RelativeToBest(points, TotalTime)
	if !math.IsNaN(rel[1][0]) {
		t.Error("OOM point must be NaN")
	}
	// Best per benchmark: x=80, y=200; A's second point = geomean(1,1)=1.
	if math.Abs(rel[0][1]-1.0) > 1e-9 {
		t.Errorf("best point = %v, want 1", rel[0][1])
	}
	// A's first point: geomean(100/80, 300/200) = sqrt(1.25*1.5).
	want := math.Sqrt(1.25 * 1.5)
	if math.Abs(rel[0][0]-want) > 1e-9 {
		t.Errorf("rel[0][0] = %v, want %v", rel[0][0], want)
	}
	// B's second point: geomean(2, 2) = 2.
	if math.Abs(rel[1][1]-2.0) > 1e-9 {
		t.Errorf("rel[1][1] = %v, want 2", rel[1][1])
	}

	abs := AbsoluteGeoMean(points, TotalTime)
	if math.Abs(abs[0][0]-math.Sqrt(100*300)) > 1e-9 {
		t.Errorf("absolute geomean = %v", abs[0][0])
	}
	if !math.IsNaN(abs[1][0]) {
		t.Error("absolute geomean of an OOM point must be NaN")
	}

	series := BenchmarkSeries(points, "x", TotalTime)
	if math.Abs(series[0][0]-100.0/80) > 1e-9 || !math.IsNaN(series[1][0]) {
		t.Errorf("benchmark series wrong: %v", series)
	}
	names := SortedBenchmarkNames(points)
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("names = %v", names)
	}
}
