package harness

import (
	"fmt"

	"beltway/internal/stats"
	"beltway/internal/telemetry"
)

// FmtMs formats cost units as nominal milliseconds.
func FmtMs(v float64) string {
	return fmt.Sprintf("%.2f", v/stats.CyclesPerSecond*1e3)
}

// FmtUs formats cost units as nominal microseconds — the natural scale
// of single-request latencies, which round to 0.00 in milliseconds.
func FmtUs(v float64) string {
	return fmt.Sprintf("%.1f", v/stats.CyclesPerSecond*1e6)
}

// ResultsTable renders per-run measurements with pause-percentile
// columns (p50/p95/p99/max, in nominal milliseconds). Percentiles come
// from the telemetry pause histogram when the run carried one, falling
// back to the exact pause list otherwise — so the table works with or
// without Env.Telemetry. When any result carries a server report, two
// SLO columns are appended (request p99.9 latency, fraction of requests
// overlapping a pause); when any carries an adaptive-policy summary, two
// policy columns are appended (decision count, net knob drift). Tables
// without server or policy results render exactly as before.
func ResultsTable(results []*Result) Table {
	withSLO, withPolicy := false, false
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Server != nil {
			withSLO = true
		}
		if r.Policy != nil {
			withPolicy = true
		}
	}
	headers := []string{
		"collector", "benchmark", "heap(MB)", "total(s)", "gc(s)", "gc%", "gcs",
		"p50(ms)", "p95(ms)", "p99(ms)", "max(ms)",
	}
	if withSLO {
		headers = append(headers, "req-p99.9(us)", "paused%")
	}
	if withPolicy {
		headers = append(headers, "decisions", "knob-drift")
	}
	t := Table{Headers: headers}
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Failure != "" {
			row := []string{r.Collector, r.Benchmark, FmtMB(r.HeapBytes),
				"-", "-", "-", "-", "-", "-", "-", "-"}
			if withSLO {
				row = append(row, "-", "-")
			}
			if withPolicy {
				row = append(row, "-", "-")
			}
			t.AddRow(row...)
			continue
		}
		p50, p95, p99, max := pauseQuantiles(r)
		row := []string{
			r.Collector, r.Benchmark, FmtMB(r.HeapBytes),
			FmtSec(r.TotalTime), FmtSec(r.GCTime),
			fmt.Sprintf("%.1f", 100*r.GCFraction()),
			fmt.Sprintf("%d", r.Collections),
			FmtMs(p50), FmtMs(p95), FmtMs(p99), FmtMs(max),
		}
		if withSLO {
			if r.Server != nil {
				row = append(row,
					FmtUs(r.Server.Overall.Latency.P999),
					fmt.Sprintf("%.2f", 100*r.Server.Overall.PausedFrac))
			} else {
				row = append(row, "-", "-")
			}
		}
		if withPolicy {
			if r.Policy != nil {
				drift := r.Policy.Drift
				if drift == "" {
					drift = "-"
				}
				row = append(row, fmt.Sprintf("%d", r.Policy.Decisions), drift)
			} else {
				row = append(row, "-", "-")
			}
		}
		if r.OOM {
			row[0] += " (OOM)"
		} else if r.Aborted {
			row[0] += " (aborted)"
		}
		t.AddRow(row...)
	}
	return t
}

// pauseQuantiles returns (p50, p95, p99, max) pause costs for a result,
// preferring the telemetry histogram.
func pauseQuantiles(r *Result) (p50, p95, p99, max float64) {
	if r.Telemetry != nil && r.Telemetry.Metrics != nil {
		if _, ok := r.Telemetry.Metrics.Histograms[telemetry.MetricPauseCost]; ok {
			return r.Telemetry.PauseQuantile(0.5), r.Telemetry.PauseQuantile(0.95),
				r.Telemetry.PauseQuantile(0.99), r.Telemetry.PauseQuantile(1)
		}
	}
	ps := stats.SummarizePauses(r.Pauses)
	return ps.Median, ps.P95, ps.P99, ps.Max
}
