package harness

import (
	"fmt"

	"beltway/internal/stats"
	"beltway/internal/telemetry"
)

// FmtMs formats cost units as nominal milliseconds.
func FmtMs(v float64) string {
	return fmt.Sprintf("%.2f", v/stats.CyclesPerSecond*1e3)
}

// ResultsTable renders per-run measurements with pause-percentile
// columns (p50/p95/p99/max, in nominal milliseconds). Percentiles come
// from the telemetry pause histogram when the run carried one, falling
// back to the exact pause list otherwise — so the table works with or
// without Env.Telemetry.
func ResultsTable(results []*Result) Table {
	t := Table{Headers: []string{
		"collector", "benchmark", "heap(MB)", "total(s)", "gc(s)", "gc%", "gcs",
		"p50(ms)", "p95(ms)", "p99(ms)", "max(ms)",
	}}
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Failure != "" {
			t.AddRow(r.Collector, r.Benchmark, FmtMB(r.HeapBytes),
				"-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		p50, p95, p99, max := pauseQuantiles(r)
		row := []string{
			r.Collector, r.Benchmark, FmtMB(r.HeapBytes),
			FmtSec(r.TotalTime), FmtSec(r.GCTime),
			fmt.Sprintf("%.1f", 100*r.GCFraction()),
			fmt.Sprintf("%d", r.Collections),
			FmtMs(p50), FmtMs(p95), FmtMs(p99), FmtMs(max),
		}
		if r.OOM {
			row[0] += " (OOM)"
		} else if r.Aborted {
			row[0] += " (aborted)"
		}
		t.AddRow(row...)
	}
	return t
}

// pauseQuantiles returns (p50, p95, p99, max) pause costs for a result,
// preferring the telemetry histogram.
func pauseQuantiles(r *Result) (p50, p95, p99, max float64) {
	if r.Telemetry != nil && r.Telemetry.Metrics != nil {
		if _, ok := r.Telemetry.Metrics.Histograms[telemetry.MetricPauseCost]; ok {
			return r.Telemetry.PauseQuantile(0.5), r.Telemetry.PauseQuantile(0.95),
				r.Telemetry.PauseQuantile(0.99), r.Telemetry.PauseQuantile(1)
		}
	}
	ps := stats.SummarizePauses(r.Pauses)
	return ps.Median, ps.P95, ps.P99, ps.Max
}
