package harness

import (
	"errors"
	"fmt"

	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/resilience"
	"beltway/internal/server"
	"beltway/internal/shard"
	"beltway/internal/stats"
	"beltway/internal/telemetry"
	"beltway/internal/vm"
)

// serverBenchName is the Result.Benchmark of server-workload runs.
const serverBenchName = "server"

// multiObserver fans one request stream out to several observers
// (telemetry plus the adaptive controller).
type multiObserver []server.Observer

func (m multiObserver) Request(kind, phase, key int, start, latency, pauseCost float64) {
	for _, o := range m {
		o.Request(kind, phase, key, start, latency, pauseCost)
	}
}

// RunServer executes a server workload (internal/server) on one
// collector configuration: request/response traffic over a keyed store,
// with per-request latencies stamped on the cost-unit clock and the SLO
// verdict attached as Result.Server. Env.Mutators > 1 dispatches to
// RunServerSharded (N independent serving lanes). OOM and cost-budget
// aborts are reported like RunOne's, with the partial request stream
// still summarized.
func RunServer(cfg core.Config, sc server.Config, slo server.SLO, env Env) (res *Result, err error) {
	if env.Mutators > 1 {
		if env.Policy != "" {
			_, err := newController(env)
			return nil, err
		}
		return RunServerSharded(cfg, sc, slo, env)
	}
	if env.Degrade {
		cfg.Degrade = true
	}
	if env.FaultSeed != 0 && cfg.Faults == nil {
		sched := resilience.NewSchedule(env.FaultSeed, resilience.DefaultHorizon)
		cfg.Faults = resilience.NewInjector(sched).Hooks()
	}
	ctrl, cerr := newController(env)
	if cerr != nil {
		return nil, cerr
	}
	if ctrl != nil {
		cfg.Policy = ctrl
	}
	types := heap.NewRegistry()
	h, herr := core.New(cfg, types)
	if herr != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, serverBenchName, herr)
	}
	h.Clock().Budget = env.CostBudget
	tele := telemetry.NewRun(h.Clock())
	h.SetHooks(tele.Hooks())
	if ctrl != nil {
		ctrl.SetEmitter(tele.PolicyObserver())
	}
	m := vm.New(h)
	// The controller rides the request stream too (phase-boundary
	// detection), so compose it with the telemetry observer.
	var obs server.Observer = tele.ServerObserver()
	if ctrl != nil {
		obs = multiObserver{tele.ServerObserver(), ctrl}
	}
	loop, lerr := server.NewLoop(sc, server.LoopOpts{Observer: obs})
	if lerr != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, serverBenchName, lerr)
	}
	snapshot := func() *Result {
		res := &Result{
			Collector:   cfg.Name,
			Benchmark:   serverBenchName,
			HeapBytes:   cfg.HeapBytes,
			TotalTime:   h.Clock().TotalTime(),
			GCTime:      h.Clock().GCTime(),
			MaxPause:    h.Clock().MaxPause(),
			Pauses:      h.Clock().Pauses(),
			Counters:    h.Clock().Counters,
			Collections: h.Collections(),
			Server:      loop.Report(slo),
		}
		tele.ServerObserver().AddViolations(res.Server.Violations())
		if env.Telemetry {
			res.Telemetry = tele.Snapshot()
		}
		if ctrl != nil {
			res.Policy = ctrl.Summary()
		}
		return res
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stats.BudgetExceeded); ok {
				res = snapshot()
				res.Aborted = true
				err = nil
				return
			}
			res = nil
			err = &HeapCorruptionError{
				Collector: cfg.Name,
				Benchmark: serverBenchName,
				Panic:     r,
				Events:    tele.Recorder().Last(corruptionEventTail),
			}
		}
	}()
	runErr := m.Run(func() {
		loop.Start(m, types)
		for !loop.Done() {
			loop.RunBatch()
		}
	})
	res = snapshot()
	if runErr != nil {
		if errors.Is(runErr, gc.ErrOutOfMemory) {
			res.OOM = true
			return res, nil
		}
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, serverBenchName, runErr)
	}
	return res, nil
}

// RunServerSharded serves the workload on Env.Mutators independent
// lanes: each shard runs the full request script against a private heap,
// seeded from its own decorrelated stream (shard.StreamSeed, whose shard
// 0 is the identity — a 1-mutator sharded run replays the flat request
// stream bit-identically: latencies, SLO verdicts, store fingerprint).
// Rounds are arrival batches, so shards advance batch by batch with
// safepoint polls between requests; collections stay shard-local, which
// keeps per-request latencies a pure function of each shard's own
// stream. Reports merge in shard order (server.MergeReports).
func RunServerSharded(cfg core.Config, sc server.Config, slo server.SLO, env Env) (*Result, error) {
	n := env.Mutators
	if n < 1 {
		n = 1
	}
	if env.Policy != "" {
		return nil, fmt.Errorf("harness: adaptive policy (%q) is not supported on the sharded runtime (shards would tune independently)", env.Policy)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, serverBenchName, err)
	}
	if env.FaultSeed != 0 {
		return nil, fmt.Errorf("harness: fault injection is single-mutator only (mutators=%d)", n)
	}
	if env.Degrade {
		cfg.Degrade = true
	}
	rt, err := shard.New(cfg, shard.Options{
		Shards:       n,
		Seed:         sc.Seed,
		PerShardHeap: true, // scale-out: each serving lane gets the configured heap
		Telemetry:    true, // request observers ride the per-shard runs
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, serverBenchName, err)
	}
	loops := make([]*server.Loop, n)
	for _, s := range rt.Shards() {
		s.Heap.Clock().Budget = env.CostBudget
		lc := sc
		lc.Seed = shard.StreamSeed(sc.Seed, s.ID)
		loop, lerr := server.NewLoop(lc, server.LoopOpts{
			Observer: s.Tele.ServerObserver(),
			Poll:     s.Poll,
		})
		if lerr != nil {
			return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, serverBenchName, lerr)
		}
		loops[s.ID] = loop
	}
	plan := shard.Plan{
		Rounds: sc.Batches(),
		Body: func(round int, s *shard.Shard) {
			loop := loops[s.ID]
			if round == 0 {
				loop.Start(s.M, s.Heap.Space().Types)
			}
			loop.RunBatch()
		},
	}
	if err := rt.Run(plan); err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, serverBenchName, err)
	}
	reports := make([]*server.Report, n)
	for i, loop := range loops {
		reports[i] = loop.Report(slo)
	}
	merged := server.MergeReports(reports, slo)
	rt.Shards()[0].Tele.ServerObserver().AddViolations(merged.Violations())

	sres := rt.Result()
	res := &Result{
		Collector: cfg.Name,
		Benchmark: serverBenchName,
		HeapBytes: cfg.HeapBytes,
		Mutators:  n,
		TotalTime: sres.Makespan,
		Server:    merged,
	}
	for _, st := range sres.PerShard {
		res.Counters.Add(st.Counters)
		res.Collections += st.Collections
		if st.GCTime > res.GCTime {
			res.GCTime = st.GCTime
		}
		if st.MaxPause > res.MaxPause {
			res.MaxPause = st.MaxPause
		}
		res.Pauses = append(res.Pauses, st.Pauses...)
		if st.OOM {
			res.OOM = true
		}
		if st.Aborted {
			res.Aborted = true
		}
		if st.Failure != "" && res.Failure == "" {
			res.Failure = fmt.Sprintf("shard %d: %s", st.ID, st.Failure)
		}
	}
	if env.Telemetry {
		res.Telemetry = rt.MergedTelemetry()
	}
	return res, nil
}
