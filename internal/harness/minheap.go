package harness

import (
	"fmt"

	"beltway/internal/workload"
)

// FindMinHeap binary-searches the smallest heap size (frame granularity)
// at which the benchmark completes under the given collector — Table 1's
// "minimum heap size in which an Appel-style collector does not fail".
func FindMinHeap(mk ConfigFunc, bench *workload.Benchmark, env Env) (int, error) {
	completes := func(heapBytes int) (bool, error) {
		res, err := RunOne(mk(heapBytes), bench, env)
		if err != nil {
			return false, err
		}
		return !res.OOM, nil
	}

	// Exponential search upward for a completing size.
	lo := 8 * env.FrameBytes // too small for anything real
	hi := lo * 2
	for {
		ok, err := completes(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<31 {
			return 0, fmt.Errorf("harness: %s never completes", bench.Name)
		}
	}

	// Bisect down to frame granularity.
	for hi-lo > env.FrameBytes {
		mid := (lo + hi) / 2
		mid = (mid / env.FrameBytes) * env.FrameBytes
		if mid <= lo {
			break
		}
		ok, err := completes(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// FindMinHeaps computes minimum heaps for a benchmark set, keyed by
// benchmark name.
func FindMinHeaps(mk ConfigFunc, benches []*workload.Benchmark, env Env, progress func(string)) (map[string]int, error) {
	out := make(map[string]int, len(benches))
	for _, b := range benches {
		m, err := FindMinHeap(mk, b, env)
		if err != nil {
			return nil, err
		}
		out[b.Name] = m
		if progress != nil {
			progress(fmt.Sprintf("min heap %-10s = %d KB", b.Name, m/1024))
		}
	}
	return out, nil
}
