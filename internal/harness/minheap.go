package harness

import (
	"fmt"

	"beltway/internal/workload"
)

// FindMinHeap binary-searches the smallest heap size (frame granularity)
// at which the benchmark completes under the given collector — Table 1's
// "minimum heap size in which an Appel-style collector does not fail".
func FindMinHeap(mk ConfigFunc, bench *workload.Benchmark, env Env) (int, error) {
	completes := func(heapBytes int) (bool, error) {
		res, err := RunOne(mk(heapBytes), bench, env)
		if err != nil {
			return false, err
		}
		return !res.OOM, nil
	}
	n, err := findMinHeap(completes, env.FrameBytes)
	if err != nil {
		return 0, fmt.Errorf("harness: %s: %w", bench.Name, err)
	}
	return n, nil
}

// findMinHeap is the search core, separated from benchmark execution so
// the probe order can be unit-tested against stub thresholds. It returns
// the smallest TESTED completing size at frame granularity: the search
// floor of 8 frames is probed first (it used to be assumed failing, which
// inflated the reported minimum of anything that completes at or below
// the floor), and the bisection maintains "lo tested failing, hi tested
// completing" so the final hi needs no extra confirmation run.
func findMinHeap(completes func(int) (bool, error), frameBytes int) (int, error) {
	lo := 8 * frameBytes
	ok, err := completes(lo)
	if err != nil {
		return 0, err
	}
	if ok {
		// The floor completes; 8 frames is the smallest size the search
		// is willing to distinguish, so report it.
		return lo, nil
	}

	// Exponential search upward for a completing size.
	hi := lo * 2
	for {
		ok, err := completes(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<31 {
			return 0, fmt.Errorf("never completes in any heap up to 2 GiB")
		}
	}

	// Bisect down to frame granularity. Invariant: lo failed, hi
	// completed, both actually run.
	for hi-lo > frameBytes {
		mid := (lo + hi) / 2
		mid = (mid / frameBytes) * frameBytes
		if mid <= lo {
			// Rounding pinned mid to the failing bound; the interval is
			// already below frame granularity.
			break
		}
		ok, err := completes(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// FindMinHeaps computes minimum heaps for a benchmark set, keyed by
// benchmark name.
func FindMinHeaps(mk ConfigFunc, benches []*workload.Benchmark, env Env, progress func(string)) (map[string]int, error) {
	out := make(map[string]int, len(benches))
	for _, b := range benches {
		m, err := FindMinHeap(mk, b, env)
		if err != nil {
			return nil, err
		}
		out[b.Name] = m
		if progress != nil {
			progress(fmt.Sprintf("min heap %-10s = %d KB", b.Name, m/1024))
		}
	}
	return out, nil
}
