package harness

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table with an optional title,
// used by cmd/experiments to print each figure's data series.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// FmtRel formats a relative-to-best value; NaN (OOM) renders as "-".
func FmtRel(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// FmtSec formats cost units as nominal seconds; NaN renders as "-".
func FmtSec(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v/733e6)
}

// FmtMB formats bytes as megabytes.
func FmtMB(b int) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}
