package harness

import (
	"math"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/generational"
	"beltway/internal/workload"
)

func testEnv() Env {
	e := DefaultEnv()
	e.Scale = 0.25
	e.PhysMemBytes = 2 << 20
	return e
}

func appelFunc(env Env) ConfigFunc {
	return func(heapBytes int) core.Config {
		return generational.Appel(collectors.Options{
			HeapBytes: heapBytes, FrameBytes: env.FrameBytes, PhysMemBytes: env.PhysMemBytes})
	}
}

func xx100Func(x int, env Env) ConfigFunc {
	return func(heapBytes int) core.Config {
		return collectors.XX100(x, collectors.Options{
			HeapBytes: heapBytes, FrameBytes: env.FrameBytes, PhysMemBytes: env.PhysMemBytes})
	}
}

func TestHeapSizesLogSpaced(t *testing.T) {
	sizes := HeapSizes(1<<20, 3, 33, 16*1024)
	if len(sizes) != 33 {
		t.Fatalf("got %d sizes", len(sizes))
	}
	if sizes[0] != 1<<20 {
		t.Errorf("first size %d, want min heap", sizes[0])
	}
	if got := float64(sizes[32]) / float64(sizes[0]); got < 2.8 || got > 3.2 {
		t.Errorf("last/first = %.2f, want ~3", got)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Errorf("sizes not strictly increasing at %d", i)
		}
		if sizes[i]%(16*1024) != 0 {
			t.Errorf("size %d not frame aligned", sizes[i])
		}
	}
}

// TestFindMinHeapAndRun reproduces the Table 1 pipeline on one benchmark:
// find Appel's min heap, check the benchmark completes there and OOMs
// meaningfully below it.
func TestFindMinHeapAndRun(t *testing.T) {
	env := testEnv()
	bench := workload.Get("db")
	min, err := FindMinHeap(appelFunc(env), bench, env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("db min heap at scale %.2f: %d KB", env.Scale, min/1024)
	res, err := RunOne(appelFunc(env)(min), bench, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatal("completed min heap reported OOM")
	}
	if res.Collections == 0 {
		t.Error("min-heap run performed no collections")
	}
	below, err := RunOne(appelFunc(env)(min-2*env.FrameBytes), bench, env)
	if err != nil {
		t.Fatal(err)
	}
	if !below.OOM {
		t.Error("run below min heap did not OOM (min not minimal)")
	}
}

// TestMinHeapOrdering checks the suite's min heaps preserve the paper's
// Table 1 ordering: pseudojbb and javac largest, jess smallest-ish.
func TestMinHeapOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("min-heap search over the suite is slow")
	}
	env := testEnv()
	mins, err := FindMinHeaps(appelFunc(env), workload.All(), env, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n, m := range mins {
		t.Logf("min heap %-10s = %4d KB", n, m/1024)
	}
	if mins["pseudojbb"] <= mins["jess"] {
		t.Errorf("pseudojbb min (%d) should exceed jess min (%d), as in Table 1",
			mins["pseudojbb"], mins["jess"])
	}
	if mins["javac"] <= mins["raytrace"] {
		t.Errorf("javac min (%d) should exceed raytrace min (%d), as in Table 1",
			mins["javac"], mins["raytrace"])
	}
}

// TestSweepAndNormalize runs a miniature two-collector sweep and checks
// the normalization invariants: every relative value >= 1-epsilon, the
// best point == 1, NaN only where OOM.
func TestSweepAndNormalize(t *testing.T) {
	env := testEnv()
	bench := workload.Get("jess")
	min, err := FindMinHeap(appelFunc(env), bench, env)
	if err != nil {
		t.Fatal(err)
	}
	s := &Sweep{
		Env: env,
		Collectors: []Collector{
			{Name: "Appel", Make: appelFunc(env)},
			{Name: "Beltway 25.25.100", Make: xx100Func(25, env)},
		},
		Benchmarks: []*workload.Benchmark{bench},
		MinHeaps:   map[string]int{"jess": min},
		Ratio:      3,
		Points:     7,
	}
	points, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || len(points[0]) != 7 {
		t.Fatalf("sweep shape %dx%d", len(points), len(points[0]))
	}
	rel := RelativeToBest(points, TotalTime)
	sawOne := false
	for ci := range rel {
		for pi, v := range rel[ci] {
			if math.IsNaN(v) {
				if !points[ci][pi].Results[0].OOM {
					t.Errorf("NaN without OOM at [%d][%d]", ci, pi)
				}
				continue
			}
			if v < 0.9999 {
				t.Errorf("relative value %v < 1", v)
			}
			if v < 1.0001 {
				sawOne = true
			}
		}
	}
	if !sawOne {
		t.Error("no point achieved the best value")
	}
	// GC time should broadly fall as heap grows for a completed series.
	gcrel := AbsoluteGeoMean(points, GCTime)
	for ci := range gcrel {
		first, last := gcrel[ci][0], gcrel[ci][len(gcrel[ci])-1]
		if !math.IsNaN(first) && !math.IsNaN(last) && last > first {
			t.Errorf("collector %d: GC time rose with heap growth (%.0f -> %.0f)",
				ci, first, last)
		}
	}
}

// TestRunOneDeterministic: identical (config, benchmark, env) must yield
// bit-identical measurements — the property every figure relies on.
func TestRunOneDeterministic(t *testing.T) {
	env := testEnv()
	cfg := xx100Func(25, env)(1 << 20)
	b := workload.Get("javac")
	r1, err := RunOne(cfg, b, env)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunOne(cfg, b, env)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalTime != r2.TotalTime || r1.GCTime != r2.GCTime ||
		r1.Counters != r2.Counters || r1.Collections != r2.Collections {
		t.Errorf("nondeterministic results:\n%+v\n%+v", r1.Counters, r2.Counters)
	}
	if len(r1.Pauses) != len(r2.Pauses) {
		t.Errorf("pause logs differ: %d vs %d", len(r1.Pauses), len(r2.Pauses))
	}
	// A different seed must change the timeline (the PRNG is live).
	env2 := env
	env2.Seed++
	r3, err := RunOne(cfg, b, env2)
	if err != nil {
		t.Fatal(err)
	}
	if r3.TotalTime == r1.TotalTime && r3.Counters == r1.Counters {
		t.Error("seed change had no effect")
	}
}
