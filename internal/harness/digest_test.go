package harness

import (
	"testing"

	"beltway/internal/workload"
)

// TestResultDigestStable: the same run digests identically whether the
// digest is derived from a fresh Result or from the serialized payload
// bytes — the property the farm ledger's verify/replay path rests on.
func TestResultDigestStable(t *testing.T) {
	env := testEnv()
	res, err := RunOne(appelFunc(env)(1<<20), workload.Get("db"), env)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := ResultDigest(res)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ResultDigest(res)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest not deterministic: %s vs %s", d1, d2)
	}
	payload, err := MarshalRunPayload(res)
	if err != nil {
		t.Fatal(err)
	}
	if got := PayloadDigest(payload); got != d1 {
		t.Fatalf("PayloadDigest(MarshalRunPayload) = %s, ResultDigest = %s", got, d1)
	}

	// A rerun with the same seed and config must reproduce the digest: the
	// whole simulation is deterministic, which is what makes -replay able
	// to demand byte-identical results.
	res2, err := RunOne(appelFunc(env)(1<<20), workload.Get("db"), env)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := ResultDigest(res2)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Fatalf("replay digest %s differs from original %s", d3, d1)
	}

	if _, err := ResultDigest(nil); err == nil {
		t.Fatal("ResultDigest(nil) should error")
	}
}
