package harness

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"beltway/internal/core"
	"beltway/internal/engine"
	"beltway/internal/stats"
	"beltway/internal/workload"
)

func smallEnv(t *testing.T) (Env, *workload.Benchmark, int) {
	t.Helper()
	env := EnvForScale(0.1)
	bench := workload.Get("jess")
	min, err := FindMinHeap(appelFunc(env), bench, env)
	if err != nil {
		t.Fatal(err)
	}
	return env, bench, min
}

// TestSweepPanicIsolation: a collector whose ConfigFunc panics is
// recorded as outcome "panic" with the recovered message, and every job
// of the other collector still completes.
func TestSweepPanicIsolation(t *testing.T) {
	env, bench, min := smallEnv(t)
	boom := Collector{Name: "boom", Make: func(heapBytes int) core.Config {
		panic("configfunc exploded")
	}}
	s := &Sweep{
		Env:        env,
		Collectors: []Collector{{Name: "Appel", Make: appelFunc(env)}, boom},
		Benchmarks: []*workload.Benchmark{bench},
		MinHeaps:   map[string]int{bench.Name: min},
		Points:     5,
		Exec:       engine.Config{Workers: 4},
	}
	points, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range points[1] {
		r := p.Results[0]
		if r.Failure == "" || !strings.Contains(r.Failure, "configfunc exploded") {
			t.Errorf("boom point %d: Failure = %q, want recorded panic", pi, r.Failure)
		}
		if !r.Incomplete() {
			t.Errorf("boom point %d not marked incomplete", pi)
		}
	}
	for pi, p := range points[0] {
		r := p.Results[0]
		if r.Failure != "" {
			t.Errorf("appel point %d failed: %s", pi, r.Failure)
		}
		if !r.OOM && r.TotalTime <= 0 {
			t.Errorf("appel point %d has no timeline", pi)
		}
	}
	// Aggregation renders the panicked series as missing data, not zeros.
	rel := RelativeToBest(points, TotalTime)
	for pi, v := range rel[1] {
		if !math.IsNaN(v) {
			t.Errorf("boom series point %d = %v, want NaN", pi, v)
		}
	}
}

// TestSweepDeterministicAcrossWorkers: the same sweep at 1 and 8 workers
// must produce deeply equal results — any divergence means hidden shared
// state in workloads or collectors.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	env, bench, min := smallEnv(t)
	run := func(workers int) [][]SweepPoint {
		s := &Sweep{
			Env: env,
			Collectors: []Collector{
				{Name: "Appel", Make: appelFunc(env)},
				{Name: "Beltway 25.25.100", Make: xx100Func(25, env)},
			},
			Benchmarks: []*workload.Benchmark{bench},
			MinHeaps:   map[string]int{bench.Name: min},
			Points:     5,
			Exec:       engine.Config{Workers: workers},
		}
		points, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Error("sweep results differ between 1 and 8 workers")
	}
}

// TestSweepCheckpointResume: a second sweep over the same checkpoint
// re-executes nothing and reproduces identical points.
func TestSweepCheckpointResume(t *testing.T) {
	env, bench, min := smallEnv(t)
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	run := func(resume bool) ([][]SweepPoint, []engine.Record) {
		s := &Sweep{
			Env:        env,
			Collectors: []Collector{{Name: "Appel", Make: appelFunc(env)}},
			Benchmarks: []*workload.Benchmark{bench},
			MinHeaps:   map[string]int{bench.Name: min},
			Points:     5,
			Exec:       engine.Config{Workers: 4, Checkpoint: path, Resume: resume},
		}
		// Run through the same path as Sweep.Run but keep the records.
		points, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		recs, err := engine.LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		var recList []engine.Record
		for _, r := range recs {
			recList = append(recList, r)
		}
		return points, recList
	}
	first, recs := run(false)
	if len(recs) != 5 {
		t.Fatalf("checkpoint holds %d records, want 5", len(recs))
	}
	second, _ := run(true)
	if !reflect.DeepEqual(first, second) {
		t.Error("resumed sweep differs from original")
	}
}

// TestRunOneCostBudget: a run that exceeds its cost budget aborts
// deterministically with a partial timeline instead of running forever.
func TestRunOneCostBudget(t *testing.T) {
	env, bench, min := smallEnv(t)
	full, err := RunOne(appelFunc(env)(3*min), bench, env)
	if err != nil {
		t.Fatal(err)
	}
	if full.Aborted || full.TotalTime <= 0 {
		t.Fatalf("baseline run invalid: %+v", full)
	}

	budget := full.TotalTime / 2
	env.CostBudget = budget
	cut, err := RunOne(appelFunc(env)(3*min), bench, env)
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Aborted {
		t.Fatal("run under half budget not aborted")
	}
	if !cut.Incomplete() {
		t.Error("aborted run should be incomplete")
	}
	if cut.TotalTime < budget || cut.TotalTime > full.TotalTime {
		t.Errorf("aborted timeline %v outside (budget %v, full %v)", cut.TotalTime, budget, full.TotalTime)
	}
	// The budget abort surfaces as outcome "budget" through the executor.
	x := NewExecutor(engine.Config{Workers: 1})
	_, recs, err := x.RunAll([]RunSpec{{
		Key:   engine.Key{Collector: "Appel", Benchmark: bench.Name, HeapBytes: 3 * min},
		Make:  appelFunc(env),
		Bench: bench,
		Env:   env,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Outcome != engine.Budget {
		t.Errorf("outcome %s, want budget", recs[0].Outcome)
	}
}

// TestBudgetExceededError pins the stats-level sentinel.
func TestBudgetExceededError(t *testing.T) {
	c := stats.NewClock(stats.DefaultCosts())
	c.Budget = 10
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic past budget")
		}
		be, ok := r.(stats.BudgetExceeded)
		if !ok {
			t.Fatalf("panic value %T", r)
		}
		if be.Budget != 10 || be.Now <= 10 {
			t.Errorf("got %+v", be)
		}
		if !strings.Contains(be.Error(), "budget") {
			t.Errorf("error %q", be.Error())
		}
	}()
	c.Advance(11)
}
