package harness

import (
	"fmt"

	"beltway/internal/policy"
)

// ValidateEnv checks an Env for feature combinations the runtime will
// reject, so command-line front ends (cmd/beltway, cmd/experiments,
// cmd/bench) can fail at flag-parse time with one consistent message
// instead of surfacing the error from deep inside a run (or, worse,
// rendering every sweep point as a failed measurement).
//
// forceSharded marks invocations that take the sharded runtime even at
// one mutator — cmd/beltway's explicit -mutators flag — where the
// sharded-only restrictions apply regardless of the count.
func ValidateEnv(env Env, forceSharded bool) error {
	if env.Mutators < 0 {
		return fmt.Errorf("harness: -mutators must be at least 1 (got %d)", env.Mutators)
	}
	if env.Policy != "" {
		if _, err := policy.Parse(env.Policy); err != nil {
			return fmt.Errorf("harness: -adapt: %w", err)
		}
	}
	sharded := env.Mutators > 1 || forceSharded
	if sharded && env.Policy != "" {
		return fmt.Errorf("harness: adaptive policy (-adapt) is single-mutator only: incompatible with the sharded runtime (-mutators %d)", env.Mutators)
	}
	if sharded && env.FaultSeed != 0 {
		return fmt.Errorf("harness: fault injection (-fault-seed) is single-mutator only: incompatible with the sharded runtime (-mutators %d)", env.Mutators)
	}
	return nil
}
