package harness

import (
	"errors"
	"strings"
	"testing"

	"beltway/internal/heap"
	"beltway/internal/workload"
)

// corruptingBenchmark allocates and collects normally, then reads
// through an unmapped address — the substrate's memory fault, standing
// in for any heap-invariant violation that panics mid-run.
func corruptingBenchmark() *workload.Benchmark {
	return &workload.Benchmark{
		Name: "corrupting",
		Body: func(c *workload.Ctx) {
			node := c.Types.DefineScalar("hc.node", 1, 1)
			for i := 0; i < 200; i++ {
				c.M.Alloc(node, 0)
			}
			c.M.Collect(false)
			c.M.C.Space().Word(heap.Addr(0x7ffffff0))
		},
	}
}

func TestRunOneRecoversPanicAsHeapCorruption(t *testing.T) {
	env := testEnv()
	res, err := RunOne(appelFunc(env)(1<<20), corruptingBenchmark(), env)
	if res != nil {
		t.Fatalf("corrupted run returned a Result: %+v", res)
	}
	var hc *HeapCorruptionError
	if !errors.As(err, &hc) {
		t.Fatalf("error %T (%v), want *HeapCorruptionError", err, err)
	}
	if hc.Collector == "" || hc.Benchmark != "corrupting" {
		t.Errorf("error misattributed: collector=%q benchmark=%q", hc.Collector, hc.Benchmark)
	}
	if hc.Panic == nil {
		t.Error("Panic not captured")
	}
	if len(hc.Events) < 1 {
		t.Fatal("no flight-recorder events attached; the tail should hold the preceding collection")
	}
	msg := hc.Error()
	if !strings.Contains(msg, "heap corruption") || !strings.Contains(msg, "flight-recorder events") {
		t.Errorf("Error() = %q, want panic context plus the event tail", msg)
	}
}

// TestRunOneBudgetAbortStillWorks guards the recovery split: the
// cost-budget panic must keep producing an Aborted result, not a
// corruption error.
func TestRunOneBudgetAbortStillWorks(t *testing.T) {
	env := testEnv()
	env.CostBudget = 50_000
	res, err := RunOne(appelFunc(env)(1<<20), workload.Get("db"), env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatalf("budget %v did not abort the run (total %v)", env.CostBudget, res.TotalTime)
	}
}
