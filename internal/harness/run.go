// Package harness runs workloads on collector configurations and
// aggregates the measurements behind every table and figure in the
// paper's evaluation: heap-size sweeps (1x-3x the minimum heap,
// log-spaced, as in §4.1), minimum-heap binary search (Table 1),
// relative-to-best normalization and geometric means across benchmarks
// (Figures 5-10), and MMU curves (Figure 11).
package harness

import (
	"errors"
	"fmt"
	"math"

	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/mmu"
	"beltway/internal/policy"
	"beltway/internal/resilience"
	"beltway/internal/server"
	"beltway/internal/stats"
	"beltway/internal/telemetry"
	"beltway/internal/workload"
)

// Env fixes the machine-level parameters of an experiment.
type Env struct {
	FrameBytes   int     // simulated frame size
	PhysMemBytes int     // physical memory for the paging model (0 = off)
	Scale        float64 // workload scale
	Seed         int64
	Pretenure    bool // route known-long-lived allocation sites to older belts
	// CostBudget, when positive, aborts a run once its clock passes this
	// many cost units; the partial measurement is returned with
	// Result.Aborted set. This is the deterministic counterpart of a
	// wall-clock timeout: it actually stops the simulated run.
	CostBudget float64
	// Telemetry attaches a telemetry.Run (flight recorder + metrics) to
	// every run and returns its snapshot in Result.Telemetry. Telemetry
	// observes the clock without advancing it, so enabling it changes no
	// measurement.
	Telemetry bool `json:",omitempty"`
	// Degrade enables the graceful-degradation ladder (core.Config.Degrade)
	// on every configuration: emergency full-heap collection and one retry
	// before any allocation surfaces OOM.
	Degrade bool `json:",omitempty"`
	// FaultSeed, when non-zero, runs every configuration under a
	// deterministic fault-injection schedule derived from this seed
	// (resilience.NewSchedule with the default horizon). Chaos testing
	// only; leave zero for measurements.
	FaultSeed int64 `json:",omitempty"`
	// Mutators, when > 1, runs the benchmark on that many sharded
	// mutator goroutines (internal/shard): each shard drives a private
	// heap with the same configuration and its own decorrelated seed
	// stream, and the measurement is the simulated N-core makespan.
	// 0 and 1 both mean the classic single-mutator run.
	Mutators int `json:",omitempty"`
	// Policy, when non-empty, attaches the adaptive policy controller
	// (internal/policy) with this objective spec — policy.Parse syntax,
	// e.g. "slo", "mmu:floor=0.7", "throughput". Adaptive runs are
	// single-mutator only. Empty (the default) leaves every run exactly
	// as static as the paper's.
	Policy string `json:",omitempty"`
}

// DefaultEnv mirrors the paper's testbed at scale 1: see EnvForScale.
func DefaultEnv() Env { return EnvForScale(1.0) }

// EnvForScale mirrors the paper's testbed at a given workload scale.
// Frame size and modelled physical memory both shrink with the workload
// so that heap geometry stays comparable:
//
//   - frames: 16KB at scale 1 (increments then span dozens of frames at
//     benchmark min heaps, as the paper's do), power-of-two rounded,
//     clamped to [2KB, 64KB];
//   - physical memory: 16MB at scale 1, preserving the paper's ratio of
//     physical memory to pseudojbb's minimum heap (128MB : 70MB ≈ 1.8)
//     so that, as in Figure 1(b), only pseudojbb's large-heap
//     configurations page.
func EnvForScale(scale float64) Env {
	frame := 2048
	for float64(frame*2) <= 16384*scale && frame < 65536 {
		frame *= 2
	}
	return Env{
		FrameBytes:   frame,
		PhysMemBytes: int(16 * 1024 * 1024 * scale),
		Scale:        scale,
		Seed:         workload.DefaultParams().Seed,
	}
}

// ConfigFunc builds a collector configuration for a given heap size.
// Presets are curried over everything but the heap size so the sweep can
// vary it.
type ConfigFunc func(heapBytes int) core.Config

// Result is one (collector, benchmark, heap size) measurement.
type Result struct {
	Collector string
	Benchmark string
	HeapBytes int
	// Mutators records the shard count of a multi-mutator run (0 for the
	// classic single-mutator path). Sharded results aggregate: TotalTime
	// is the simulated N-core makespan, counters are summed over shards.
	Mutators int `json:",omitempty"`

	TotalTime float64 // cost units
	GCTime    float64
	MaxPause  float64
	Pauses    []stats.Pause
	Counters  stats.Counters

	Collections uint64
	OOM         bool // run did not complete at this heap size
	// Aborted marks a run stopped by Env.CostBudget; the metrics are the
	// partial timeline up to the abort.
	Aborted bool `json:",omitempty"`
	// Failure records an execution failure (panic, timeout, job error)
	// observed by the engine instead of a measurement. All metric fields
	// are zero; aggregation treats the point like an OOM.
	Failure string `json:",omitempty"`
	// Telemetry is the run's flight-recorder events and metric snapshot,
	// present only when Env.Telemetry was set.
	Telemetry *telemetry.RunSnapshot `json:",omitempty"`
	// Server is the request/latency report of a server-workload run
	// (RunServer); nil for the classic benchmark runs.
	Server *server.Report `json:",omitempty"`
	// Policy is the adaptive controller's digest (decision count, knob
	// drift), present only when Env.Policy was set.
	Policy *policy.Summary `json:",omitempty"`
}

// Incomplete reports whether the run produced no valid end-to-end
// measurement: out of memory, budget-aborted, or failed. Aggregation
// renders such points as missing data.
func (r *Result) Incomplete() bool { return r.OOM || r.Aborted || r.Failure != "" }

// GCFraction returns the share of total time spent collecting.
func (r *Result) GCFraction() float64 {
	if r.TotalTime == 0 {
		return 0
	}
	return r.GCTime / r.TotalTime
}

// MMU computes the run's minimum-mutator-utilization curve.
func (r *Result) MMU(points int) mmu.Curve {
	total := r.TotalTime
	curve := mmu.Curve{MaxPause: r.MaxPause}
	if total > 0 {
		curve.Throughput = 1 - r.GCTime/total
	}
	lo := r.MaxPause / 4
	if lo <= 0 {
		lo = total / 1e6
	}
	for i := 0; i < points; i++ {
		w := lo * math.Pow(total/lo, float64(i)/float64(points-1))
		curve.Points = append(curve.Points, mmu.Point{
			Window:      w,
			Utilization: mmu.MMU(r.Pauses, total, w),
		})
	}
	curve.Monotone()
	return curve
}

// RunOne executes one benchmark on one collector configuration.
// An out-of-memory completion is reported via Result.OOM, not an error,
// and a cost-budget abort via Result.Aborted; errors are reserved for
// misconfiguration.
func RunOne(cfg core.Config, bench *workload.Benchmark, env Env) (res *Result, err error) {
	if env.Mutators > 1 {
		if env.Policy != "" {
			_, err := newController(env)
			return nil, err
		}
		return RunSharded(cfg, bench, env)
	}
	if env.Degrade {
		cfg.Degrade = true
	}
	if env.FaultSeed != 0 && cfg.Faults == nil {
		sched := resilience.NewSchedule(env.FaultSeed, resilience.DefaultHorizon)
		cfg.Faults = resilience.NewInjector(sched).Hooks()
	}
	ctrl, cerr := newController(env)
	if cerr != nil {
		return nil, cerr
	}
	if ctrl != nil {
		cfg.Policy = ctrl
	}
	types := heap.NewRegistry()
	h, herr := core.New(cfg, types)
	if herr != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, bench.Name, herr)
	}
	h.Clock().Budget = env.CostBudget
	// The flight recorder is always attached (hook emission reads the
	// clock without advancing it, so this changes no measurement): a
	// panicking run needs its event tail for the corruption report even
	// when Env.Telemetry is off.
	tele := telemetry.NewRun(h.Clock())
	h.SetHooks(tele.Hooks())
	if ctrl != nil {
		ctrl.SetEmitter(tele.PolicyObserver())
	}
	snapshot := func() *Result {
		res := &Result{
			Collector:   cfg.Name,
			Benchmark:   bench.Name,
			HeapBytes:   cfg.HeapBytes,
			TotalTime:   h.Clock().TotalTime(),
			GCTime:      h.Clock().GCTime(),
			MaxPause:    h.Clock().MaxPause(),
			Pauses:      h.Clock().Pauses(),
			Counters:    h.Clock().Counters,
			Collections: h.Collections(),
		}
		if env.Telemetry {
			res.Telemetry = tele.Snapshot()
		}
		if ctrl != nil {
			res.Policy = ctrl.Summary()
		}
		return res
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stats.BudgetExceeded); ok {
				res = snapshot()
				res.Aborted = true
				err = nil
				return
			}
			// Any other panic out of the heap or vm is a corruption: the
			// run's state is untrustworthy, so no Result — a typed error
			// carrying the panic and the flight-recorder tail instead.
			res = nil
			err = &HeapCorruptionError{
				Collector: cfg.Name,
				Benchmark: bench.Name,
				Panic:     r,
				Events:    tele.Recorder().Last(corruptionEventTail),
			}
		}
	}()
	params := workload.Params{Scale: env.Scale, Seed: env.Seed, Pretenure: env.Pretenure}
	runErr := bench.Run(h, params)
	res = snapshot()
	if runErr != nil {
		if errors.Is(runErr, gc.ErrOutOfMemory) {
			res.OOM = true
			return res, nil
		}
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, bench.Name, runErr)
	}
	return res, nil
}

// newController builds the adaptive controller declared by Env.Policy
// (nil when the env declares none). Controllers are stateful and
// per-run: every RunOne/RunServer call gets a fresh one. Adaptive runs
// are single-mutator only — sharded heaps tune independently per shard,
// which is a different (and unimplemented) design.
func newController(env Env) (*policy.Controller, error) {
	if env.Policy == "" {
		return nil, nil
	}
	if env.Mutators > 1 {
		return nil, fmt.Errorf("harness: adaptive policy (%q) is single-mutator only (got Mutators=%d)", env.Policy, env.Mutators)
	}
	pc, err := policy.Parse(env.Policy)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return policy.New(pc), nil
}
