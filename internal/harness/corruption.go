package harness

import (
	"fmt"
	"strings"

	"beltway/internal/telemetry"
)

// corruptionEventTail is how many trailing flight-recorder events a
// HeapCorruptionError carries: enough to see the collections leading up
// to the fault without dumping the whole ring.
const corruptionEventTail = 16

// HeapCorruptionError reports a run that panicked inside the heap or vm
// layers (an unmapped-frame fault, a broken invariant — anything that is
// not the cost-budget abort). The run's state is untrustworthy, so the
// harness surfaces this instead of a Result; the engine records it as a
// failure without taking the worker down.
type HeapCorruptionError struct {
	Collector string
	Benchmark string
	// Panic is the recovered panic value.
	Panic any
	// Events is the tail of the run's flight recorder at the moment of
	// the panic — the collections and degradation steps leading up to it.
	Events []telemetry.Event
}

func (e *HeapCorruptionError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness: heap corruption in %s on %s: %v", e.Collector, e.Benchmark, e.Panic)
	if len(e.Events) > 0 {
		fmt.Fprintf(&b, "\nlast %d flight-recorder events:", len(e.Events))
		for _, ev := range e.Events {
			b.WriteString("\n  ")
			b.WriteString(ev.String())
		}
	}
	return b.String()
}
