package harness

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"beltway/internal/engine"
	"beltway/internal/telemetry"
	"beltway/internal/workload"
)

// checkEventStream verifies one run's flight-recorder stream is coherent:
// sequence numbers are consecutive (no interleaving from another run's
// recorder) and every collection's begin/end events pair up in order.
func checkEventStream(t *testing.T, label string, s *telemetry.RunSnapshot) {
	t.Helper()
	if s == nil {
		t.Fatalf("%s: no telemetry snapshot", label)
	}
	if len(s.Events) == 0 {
		t.Fatalf("%s: empty event stream", label)
	}
	wantFirst := s.DroppedEvents + 1
	if s.Events[0].Seq != wantFirst {
		t.Errorf("%s: first seq %d, want %d", label, s.Events[0].Seq, wantFirst)
	}
	var openGC uint64
	for i, e := range s.Events {
		if e.Seq != wantFirst+uint64(i) {
			t.Fatalf("%s: seq %d at position %d, want %d (interleaved streams?)",
				label, e.Seq, i, wantFirst+uint64(i))
		}
		switch e.Kind {
		case telemetry.EvGCBegin:
			if openGC != 0 {
				t.Errorf("%s: gc %d began before gc %d ended", label, e.GC, openGC)
			}
			openGC = e.GC
		case telemetry.EvGCEnd:
			// The stream head may hold an end whose begin was overwritten.
			if openGC != 0 && e.GC != openGC {
				t.Errorf("%s: gc-end for %d inside gc %d", label, e.GC, openGC)
			}
			openGC = 0
		}
	}
}

// TestRunOneTelemetry checks RunOne's telemetry attachment: the stream is
// coherent, the metrics agree with the run's counters, and the
// measurement itself is bit-identical with telemetry on or off.
func TestRunOneTelemetry(t *testing.T) {
	env := testEnv()
	cfg := xx100Func(25, env)(1 << 20)
	b := workload.Get("jess")

	plain, err := RunOne(cfg, b, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Telemetry = true
	res, err := RunOne(cfg, b, env)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Error("telemetry snapshot present without Env.Telemetry")
	}
	checkEventStream(t, "jess", res.Telemetry)

	// Observing must not perturb: the measurement is the same timeline.
	if res.TotalTime != plain.TotalTime || res.GCTime != plain.GCTime ||
		res.Counters != plain.Counters || len(res.Pauses) != len(plain.Pauses) {
		t.Errorf("telemetry changed the measurement:\nwith:    %+v\nwithout: %+v",
			res.Counters, plain.Counters)
	}

	m := res.Telemetry.Metrics
	if got := m.Counters[telemetry.MetricCollections]; got != res.Collections {
		t.Errorf("collections metric %d, want %d", got, res.Collections)
	}
	if got := m.Counters[telemetry.MetricFullCollections]; got != res.Counters.FullCollections {
		t.Errorf("full collections metric %d, want %d", got, res.Counters.FullCollections)
	}
	if got := m.Counters[telemetry.MetricBarrierSlow]; got != res.Counters.BarrierSlowPaths {
		t.Errorf("barrier slow metric %d, want %d", got, res.Counters.BarrierSlowPaths)
	}
	ph := m.Histograms[telemetry.MetricPauseCost]
	if ph == nil || ph.Count != res.Collections {
		t.Fatalf("pause histogram %+v, want %d observations", ph, res.Collections)
	}
	if ph.Max != res.MaxPause {
		t.Errorf("pause histogram max %v, want %v", ph.Max, res.MaxPause)
	}
}

// TestGenerationalTelemetry checks the generational baselines (Appel et
// al. are presets of the same engine) emit the same event stream and
// metrics as the Beltway configurations.
func TestGenerationalTelemetry(t *testing.T) {
	env := testEnv()
	env.Telemetry = true
	res, err := RunOne(appelFunc(env)(1<<20), workload.Get("db"), env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collections == 0 {
		t.Fatal("run performed no collections; pick a smaller heap")
	}
	checkEventStream(t, "appel", res.Telemetry)
	var begins, ends, belts uint64
	for _, e := range res.Telemetry.Events {
		switch e.Kind {
		case telemetry.EvGCBegin:
			begins++
		case telemetry.EvGCEnd:
			ends++
		case telemetry.EvBelt:
			belts++
		}
	}
	if ends == 0 || belts == 0 {
		t.Errorf("generational run emitted %d gc-ends, %d belt events", ends, belts)
	}
	if res.Telemetry.DroppedEvents == 0 && begins != ends {
		t.Errorf("unpaired collections: %d begins, %d ends", begins, ends)
	}
	if got := res.Telemetry.Metrics.Counters[telemetry.MetricCollections]; got != res.Collections {
		t.Errorf("collections metric %d, want %d", got, res.Collections)
	}
}

// telemetrySpecs is the small cross-product used by the parallel test.
func telemetrySpecs(env Env) []RunSpec {
	var specs []RunSpec
	for _, bn := range []string{"jess", "db"} {
		b := workload.Get(bn)
		for _, heap := range []int{1 << 20, 3 << 19} {
			specs = append(specs,
				RunSpec{
					Key:   engine.Key{Experiment: "tele", Collector: "Appel", Benchmark: bn, HeapBytes: heap},
					Make:  appelFunc(env),
					Bench: b, Env: env,
				},
				RunSpec{
					Key:   engine.Key{Experiment: "tele", Collector: "Beltway 25.25.100", Benchmark: bn, HeapBytes: heap},
					Make:  xx100Func(25, env),
					Bench: b, Env: env,
				})
		}
	}
	return specs
}

// TestParallelTelemetryMatchesSerial runs the same telemetry-enabled
// sweep through the engine with four workers and with one, and requires
// (a) every run's event stream to be internally coherent — per-run
// recorders must not observe each other's collections — and (b) the
// merged aggregates to be identical, which only holds if each stream went
// to exactly one recorder and merging is order-independent. Run under
// -race this also exercises the concurrent OnRecord path.
func TestParallelTelemetryMatchesSerial(t *testing.T) {
	env := testEnv()
	env.Telemetry = true

	sweep := func(workers int) ([]*Result, map[string]*telemetry.RegistrySnapshot) {
		t.Helper()
		agg := telemetry.NewAggregator()
		x := NewExecutor(engine.Config{
			Workers: workers,
			OnRecord: func(rec engine.Record) {
				if !rec.Outcome.Completed() || len(rec.Payload) == 0 {
					return
				}
				var p RunPayload
				if err := json.Unmarshal(rec.Payload, &p); err != nil || p.Result == nil || p.Result.Telemetry == nil {
					return
				}
				agg.Add(p.Result.Collector, p.Result.Telemetry)
			},
		})
		defer x.Close()
		results, _, err := x.RunAll(telemetrySpecs(env))
		if err != nil {
			t.Fatal(err)
		}
		return results, agg.Snapshot()
	}

	parRes, parAgg := sweep(4)
	serRes, serAgg := sweep(1)

	for i, r := range parRes {
		if r.Failure != "" {
			t.Fatalf("run %d failed: %s", i, r.Failure)
		}
		label := r.Collector + "/" + r.Benchmark
		checkEventStream(t, label, r.Telemetry)
		if !reflect.DeepEqual(r.Telemetry, serRes[i].Telemetry) {
			t.Errorf("%s: parallel telemetry differs from serial", label)
		}
	}
	if !reflect.DeepEqual(parAgg, serAgg) {
		t.Errorf("parallel aggregate differs from serial:\npar: %+v\nser: %+v", parAgg, serAgg)
	}
	if len(parAgg) != 2 {
		t.Errorf("aggregated %d collectors, want 2", len(parAgg))
	}
	for name, snap := range parAgg {
		if snap.Counters[telemetry.MetricCollections] == 0 {
			t.Errorf("%s: aggregate has no collections", name)
		}
		if snap.Histograms[telemetry.MetricPauseCost].Count == 0 {
			t.Errorf("%s: aggregate has no pause observations", name)
		}
	}
}

// TestResultsTablePercentiles checks the results table renders pause
// percentiles from telemetry when present and from the raw pause log
// otherwise.
func TestResultsTablePercentiles(t *testing.T) {
	env := testEnv()
	env.Telemetry = true
	res, err := RunOne(xx100Func(25, env)(1<<20), workload.Get("jess"), env)
	if err != nil {
		t.Fatal(err)
	}
	tbl := ResultsTable([]*Result{res})
	out := tbl.String()
	for _, col := range []string{"p50(ms)", "p95(ms)", "p99(ms)", "max(ms)"} {
		if !strings.Contains(out, col) {
			t.Errorf("results table missing column %q:\n%s", col, out)
		}
	}
	// Without telemetry the table falls back to the exact pause log.
	res.Telemetry = nil
	tbl2 := ResultsTable([]*Result{res})
	if tbl2.String() == "" {
		t.Error("table without telemetry rendered empty")
	}
	// A failed run renders as dashes, not a panic.
	fail := &Result{Collector: "X", Benchmark: "y", Failure: "panic: boom"}
	failTbl := ResultsTable([]*Result{fail})
	if !strings.Contains(failTbl.String(), "-") {
		t.Error("failed run should render as dashes")
	}
}
