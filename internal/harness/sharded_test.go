package harness

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/workload"
)

func shardedTestConfig(t *testing.T, env Env) core.Config {
	t.Helper()
	cfg, err := collectors.Parse("25.25.100", collectors.Options{
		HeapBytes: 3 << 20, FrameBytes: env.FrameBytes, PhysMemBytes: 0})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestRunShardedOverhead pins the acceptance bound on sharding overhead:
// a 1-mutator sharded run must stay within 10% of the classic
// single-mutator path on total time. Shard 0's seed stream is the
// identity, so the workload is bit-identical and allocation volume must
// match exactly; the sharded run only adds the round barrier and one
// final rendezvoused collection.
func TestRunShardedOverhead(t *testing.T) {
	env := EnvForScale(0.25)
	env.PhysMemBytes = 0
	cfg := shardedTestConfig(t, env)
	bench := workload.Jess()

	flat, err := RunOne(cfg, bench, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Mutators = 1
	sharded, err := RunSharded(cfg, bench, env)
	if err != nil {
		t.Fatal(err)
	}
	if flat.OOM || sharded.OOM {
		t.Fatalf("unexpected OOM: flat=%v sharded=%v", flat.OOM, sharded.OOM)
	}
	if got, want := sharded.Counters.BytesAllocated, flat.Counters.BytesAllocated; got != want {
		t.Fatalf("1-mutator sharded allocated %d bytes, flat %d — shard 0 must replay the flat stream", got, want)
	}
	ratio := sharded.TotalTime / flat.TotalTime
	if ratio > 1.10 || ratio < 0.90 {
		t.Fatalf("1-mutator sharded total time %.0f vs flat %.0f (ratio %.3f); want within 10%%",
			sharded.TotalTime, flat.TotalTime, ratio)
	}
	if sharded.Mutators != 1 {
		t.Fatalf("Mutators = %d, want 1", sharded.Mutators)
	}
}

// TestRunShardedScaling pins the acceptance bound on scale-out: 8
// mutators must deliver at least 3x the aggregate allocation+collection
// throughput of 1, measured against the simulated N-core makespan (the
// host's core count is irrelevant — shard clocks advance in cost units).
func TestRunShardedScaling(t *testing.T) {
	env := EnvForScale(0.25)
	env.PhysMemBytes = 0
	cfg := shardedTestConfig(t, env)
	bench := workload.Jess()

	throughput := func(n int) float64 {
		env := env
		env.Mutators = n
		res, err := RunSharded(cfg, bench, env)
		if err != nil {
			t.Fatal(err)
		}
		if res.OOM || res.Failure != "" {
			t.Fatalf("%d mutators: OOM=%v failure=%q", n, res.OOM, res.Failure)
		}
		if res.TotalTime <= 0 {
			t.Fatalf("%d mutators: non-positive makespan", n)
		}
		return float64(res.Counters.BytesAllocated+res.Counters.BytesCopied) / res.TotalTime
	}
	t1 := throughput(1)
	t8 := throughput(8)
	if t8 < 3*t1 {
		t.Fatalf("8-mutator throughput %.2f B/cost vs 1-mutator %.2f: %.2fx, want >= 3x", t8, t1, t8/t1)
	}
}

// TestRunOneDispatchesSharded checks the Env.Mutators routing: RunOne
// with Mutators > 1 produces a sharded (aggregated) result.
func TestRunOneDispatchesSharded(t *testing.T) {
	env := EnvForScale(0.25)
	env.PhysMemBytes = 0
	env.Mutators = 2
	cfg := shardedTestConfig(t, env)
	res, err := RunOne(cfg, workload.DB(), env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mutators != 2 {
		t.Fatalf("Mutators = %d, want 2", res.Mutators)
	}
	if res.OOM {
		t.Fatal("unexpected OOM")
	}
}

// TestRunShardedRejectsFaults: the stateful fault injector cannot be
// shared across concurrent shards.
func TestRunShardedRejectsFaults(t *testing.T) {
	env := EnvForScale(0.25)
	env.Mutators = 2
	env.FaultSeed = 7
	cfg := shardedTestConfig(t, env)
	if _, err := RunSharded(cfg, workload.Jess(), env); err == nil {
		t.Fatal("want an error for fault injection with multiple mutators")
	}
}
