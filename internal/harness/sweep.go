package harness

import (
	"fmt"
	"math"
	"sort"

	"beltway/internal/core"
	"beltway/internal/engine"
	"beltway/internal/workload"
)

// Collector names a curried configuration for sweeps: Make produces the
// config for each heap size the sweep visits.
type Collector struct {
	Name string
	Make ConfigFunc
}

// WithHeap is a convenience for wrapping a preset function that takes
// only options; see cmd/experiments for usage.
func WithHeap(name string, f func(heapBytes int) core.Config) Collector {
	return Collector{Name: name, Make: f}
}

// HeapSizes returns n log-spaced heap sizes from min to ratio*min,
// rounded to frame granularity — the paper's "33 heap sizes, ranging
// from the smallest one in which the program completes up to 3 times
// that size", on a log x-axis.
func HeapSizes(minHeap int, ratio float64, n, frameBytes int) []int {
	if n < 2 {
		return []int{minHeap}
	}
	sizes := make([]int, 0, n)
	for i := 0; i < n; i++ {
		f := math.Pow(ratio, float64(i)/float64(n-1))
		s := int(float64(minHeap) * f)
		s = (s / frameBytes) * frameBytes
		if s < minHeap {
			s = minHeap
		}
		if len(sizes) > 0 && s <= sizes[len(sizes)-1] {
			s = sizes[len(sizes)-1] + frameBytes
		}
		sizes = append(sizes, s)
	}
	return sizes
}

// SweepPoint is one (collector, heap size) cell of a sweep, holding the
// per-benchmark results.
type SweepPoint struct {
	Collector string
	HeapBytes int
	HeapRel   float64 // heap size relative to the benchmark-set minimum
	Results   []*Result
}

// Sweep runs every collector at every heap size over the given
// benchmarks. Heap sizes are derived per benchmark: factor f in [1,ratio]
// maps to f * minHeap(benchmark), so curves are comparable across
// benchmarks on the paper's relative axis.
type Sweep struct {
	Env        Env
	Collectors []Collector
	Benchmarks []*workload.Benchmark
	MinHeaps   map[string]int // per benchmark; computed by FindMinHeaps
	Ratio      float64        // default 3
	Points     int            // default 33
	// Progress, if non-nil, receives a line per completed run.
	Progress func(string)
	// Exec configures parallel execution: worker count, checkpoint file,
	// resume, per-job timeout. The zero value runs on GOMAXPROCS workers
	// with no checkpoint. Exec.Progress defaults to Progress.
	Exec engine.Config
}

// Run executes the sweep: the (benchmark, collector, heap size)
// cross-product is submitted as independent jobs to a bounded worker
// pool, and the points are reassembled in deterministic submission order,
// so the output is identical to a sequential sweep regardless of worker
// count or completion order. A job that panics or times out degrades to a
// failed Result (rendered as a missing point) instead of killing the
// sweep. The result is indexed [collector][point].
func (s *Sweep) Run() ([][]SweepPoint, error) {
	if s.Ratio == 0 {
		s.Ratio = 3
	}
	if s.Points == 0 {
		s.Points = 33
	}
	out := make([][]SweepPoint, len(s.Collectors))
	for ci, col := range s.Collectors {
		out[ci] = make([]SweepPoint, s.Points)
		for pi := 0; pi < s.Points; pi++ {
			f := math.Pow(s.Ratio, float64(pi)/float64(s.Points-1))
			out[ci][pi] = SweepPoint{Collector: col.Name, HeapRel: f}
		}
	}

	type slot struct{ ci, pi int }
	var specs []RunSpec
	var slots []slot
	for _, bench := range s.Benchmarks {
		min, ok := s.MinHeaps[bench.Name]
		if !ok {
			return nil, fmt.Errorf("harness: no min heap for %s", bench.Name)
		}
		sizes := HeapSizes(min, s.Ratio, s.Points, s.Env.FrameBytes)
		for ci, col := range s.Collectors {
			for pi, size := range sizes {
				specs = append(specs, RunSpec{
					Key:   engine.Key{Collector: col.Name, Benchmark: bench.Name, HeapBytes: size},
					Make:  col.Make,
					Bench: bench,
					Env:   s.Env,
				})
				slots = append(slots, slot{ci, pi})
			}
		}
	}

	cfg := s.Exec
	if cfg.Progress == nil {
		cfg.Progress = s.Progress
	}
	x := NewExecutor(cfg)
	defer x.Close()
	results, _, err := x.RunAll(specs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		sl := slots[i]
		out[sl.ci][sl.pi].HeapBytes = specs[i].Key.HeapBytes
		out[sl.ci][sl.pi].Results = append(out[sl.ci][sl.pi].Results, res)
	}
	return out, nil
}

// Metric extracts a scalar from a Result.
type Metric func(*Result) float64

// TotalTime and GCTime are the two metrics every figure uses.
var (
	TotalTime Metric = func(r *Result) float64 { return r.TotalTime }
	GCTime    Metric = func(r *Result) float64 { return r.GCTime }
)

// RelativeToBest normalizes, per benchmark, each completed result by the
// best (smallest) value of the metric observed for that benchmark
// anywhere in the sweep — the paper's "relative to best result (lower is
// better)" y-axis — then geometric-means across benchmarks per point.
// Points where any benchmark OOMed get NaN (the paper's plots likewise
// have no datapoint there: "the lack of results for small heap sizes...
// illustrates the failure of the generational collector").
func RelativeToBest(points [][]SweepPoint, m Metric) [][]float64 {
	best := make(map[string]float64)
	for _, row := range points {
		for _, p := range row {
			for _, r := range p.Results {
				if r.Incomplete() {
					continue
				}
				v := m(r)
				if v <= 0 {
					continue
				}
				if b, ok := best[r.Benchmark]; !ok || v < b {
					best[r.Benchmark] = v
				}
			}
		}
	}
	out := make([][]float64, len(points))
	for ci, row := range points {
		out[ci] = make([]float64, len(row))
		for pi, p := range row {
			out[ci][pi] = geoMeanRel(p.Results, m, best)
		}
	}
	return out
}

func geoMeanRel(results []*Result, m Metric, best map[string]float64) float64 {
	if len(results) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, r := range results {
		if r.Incomplete() {
			return math.NaN()
		}
		b := best[r.Benchmark]
		v := m(r)
		if b <= 0 || v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v / b)
	}
	return math.Exp(sum / float64(len(results)))
}

// AbsoluteGeoMean returns the geometric mean of the raw metric across
// benchmarks per point (the right-hand "time in seconds" axis of the
// paper's figures).
func AbsoluteGeoMean(points [][]SweepPoint, m Metric) [][]float64 {
	out := make([][]float64, len(points))
	for ci, row := range points {
		out[ci] = make([]float64, len(row))
		for pi, p := range row {
			if len(p.Results) == 0 {
				out[ci][pi] = math.NaN()
				continue
			}
			sum, n := 0.0, 0
			bad := false
			for _, r := range p.Results {
				if r.Incomplete() {
					bad = true
					break
				}
				v := m(r)
				if v <= 0 {
					bad = true
					break
				}
				sum += math.Log(v)
				n++
			}
			if bad || n == 0 {
				out[ci][pi] = math.NaN()
			} else {
				out[ci][pi] = math.Exp(sum / float64(n))
			}
		}
	}
	return out
}

// BenchmarkSeries extracts, for one benchmark, the metric per point
// relative to that benchmark's best (for the per-benchmark Figure 10
// plots). NaN marks OOM points.
func BenchmarkSeries(points [][]SweepPoint, benchName string, m Metric) [][]float64 {
	best := math.Inf(1)
	for _, row := range points {
		for _, p := range row {
			for _, r := range p.Results {
				if r.Benchmark == benchName && !r.Incomplete() {
					if v := m(r); v > 0 && v < best {
						best = v
					}
				}
			}
		}
	}
	out := make([][]float64, len(points))
	for ci, row := range points {
		out[ci] = make([]float64, len(row))
		for pi, p := range row {
			out[ci][pi] = math.NaN()
			for _, r := range p.Results {
				if r.Benchmark == benchName && !r.Incomplete() {
					if v := m(r); v > 0 && !math.IsInf(best, 1) {
						out[ci][pi] = v / best
					}
				}
			}
		}
	}
	return out
}

// SortedBenchmarkNames lists the benchmarks present in a sweep.
func SortedBenchmarkNames(points [][]SweepPoint) []string {
	seen := map[string]bool{}
	var names []string
	for _, row := range points {
		for _, p := range row {
			for _, r := range p.Results {
				if !seen[r.Benchmark] {
					seen[r.Benchmark] = true
					names = append(names, r.Benchmark)
				}
			}
		}
	}
	sort.Strings(names)
	return names
}
