package harness

import (
	"math"
	"testing"
)

// stubCompletes models a benchmark with a sharp failure threshold: any
// heap of at least `threshold` bytes completes, anything smaller OOMs.
// It records every probed size so tests can assert the probe order.
func stubCompletes(threshold int, probes *[]int) func(int) (bool, error) {
	return func(heapBytes int) (bool, error) {
		*probes = append(*probes, heapBytes)
		return heapBytes >= threshold, nil
	}
}

func TestFindMinHeapThresholds(t *testing.T) {
	const frame = 4096
	const lo = 8 * frame
	cases := []struct {
		name      string
		threshold int
		want      int
	}{
		// The floor is the smallest size the search distinguishes, so
		// thresholds at or below it must all report exactly the floor —
		// the old code never probed lo and reported lo+frame instead.
		{"below floor", frame, lo},
		{"at floor", lo, lo},
		{"one frame above floor", lo + frame, lo + frame},
		{"unaligned above floor", lo + frame + 100, lo + 2*frame},
		{"far above floor", 64 * lo, 64 * lo},
		{"far and unaligned", 64*lo + 1, 64*lo + frame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var probes []int
			got, err := findMinHeap(stubCompletes(tc.threshold, &probes), frame)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("findMinHeap = %d, want %d (probes: %v)", got, tc.want, probes)
			}
			if len(probes) == 0 || probes[0] != lo {
				t.Errorf("floor %d not probed first: %v", lo, probes)
			}
			for _, p := range probes {
				if p < lo {
					t.Errorf("probed %d below the floor %d", p, lo)
				}
				if p%frame != 0 {
					t.Errorf("probed %d not frame-aligned", p)
				}
			}
			// The answer must itself have been run, and every probe below
			// it must have failed: smallest TESTED completing size.
			tested := false
			for _, p := range probes {
				if p == got {
					tested = true
				}
				if p < got && p >= tc.threshold {
					t.Errorf("probe %d completed but %d was reported", p, got)
				}
			}
			if !tested {
				t.Errorf("reported size %d was never actually run (probes: %v)", got, probes)
			}
		})
	}
}

func TestFindMinHeapNeverCompletes(t *testing.T) {
	var probes []int
	_, err := findMinHeap(stubCompletes(math.MaxInt, &probes), 4096)
	if err == nil {
		t.Fatal("expected an error for a benchmark that never completes")
	}
}
