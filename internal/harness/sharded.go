package harness

import (
	"fmt"

	"beltway/internal/core"
	"beltway/internal/shard"
	"beltway/internal/workload"
)

// RunSharded executes one benchmark on Env.Mutators sharded mutator
// goroutines (internal/shard). Every shard runs the full benchmark body
// against a private heap with the run's configuration, seeded from its
// own decorrelated stream (shard.StreamSeed), so the aggregate is N
// independent program instances on a simulated N-core machine — the
// scale-out the paper's single-threaded testbed could not measure.
//
// Nursery and mature collections stay shard-local and concurrent; the
// run ends with one rendezvoused global collection at the final round
// barrier, fanned out over parallel workers (the safepoint-coordinated
// path). The measurement maps onto Result as:
//
//   - TotalTime: the simulated N-core makespan (critical-path cost),
//     not the sum of per-shard timelines;
//   - GCTime/MaxPause: the critical path's view — max over shards;
//   - Counters/Collections: summed over shards (aggregate work);
//   - Pauses: the concatenation of every shard's pauses (what any
//     mutator experienced; quantiles remain meaningful, MMU windows
//     are conservative since concurrent pauses overlap).
//
// RunOne dispatches here when Env.Mutators > 1; calling it directly
// with Mutators <= 1 runs a single shard through the same machinery
// (used to measure sharding overhead against the classic path).
func RunSharded(cfg core.Config, bench *workload.Benchmark, env Env) (*Result, error) {
	n := env.Mutators
	if n < 1 {
		n = 1
	}
	if env.Scale <= 0 {
		return nil, fmt.Errorf("harness: non-positive scale %v", env.Scale)
	}
	if env.FaultSeed != 0 {
		// The fault injector threads one stateful schedule through the
		// hooks of every heap that shares the config; across concurrent
		// shards that is a data race, not a deterministic chaos run.
		return nil, fmt.Errorf("harness: fault injection is single-mutator only (mutators=%d)", n)
	}
	if env.Degrade {
		cfg.Degrade = true
	}
	rt, err := shard.New(cfg, shard.Options{
		Shards:       n,
		Seed:         env.Seed,
		PerShardHeap: true, // scale-out: each mutator gets the configured heap
		Telemetry:    env.Telemetry,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, bench.Name, err)
	}
	for _, s := range rt.Shards() {
		s.Heap.Clock().Budget = env.CostBudget
	}
	plan := shard.Plan{
		Rounds:       1,
		CollectEvery: 1, // rendezvoused global collection at the final barrier
		Body: func(round int, s *shard.Shard) {
			ctx := &workload.Ctx{
				M:         s.M,
				Types:     s.Heap.Space().Types,
				Rng:       s.Rng,
				Scale:     env.Scale,
				Pretenure: env.Pretenure,
			}
			bench.Body(ctx)
		},
	}
	if err := rt.Run(plan); err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", cfg.Name, bench.Name, err)
	}
	sres := rt.Result()
	res := &Result{
		Collector: cfg.Name,
		Benchmark: bench.Name,
		HeapBytes: cfg.HeapBytes,
		Mutators:  n,
		TotalTime: sres.Makespan,
	}
	for _, st := range sres.PerShard {
		res.Counters.Add(st.Counters)
		res.Collections += st.Collections
		if st.GCTime > res.GCTime {
			res.GCTime = st.GCTime
		}
		if st.MaxPause > res.MaxPause {
			res.MaxPause = st.MaxPause
		}
		res.Pauses = append(res.Pauses, st.Pauses...)
		if st.OOM {
			res.OOM = true
		}
		if st.Aborted {
			res.Aborted = true
		}
		if st.Failure != "" && res.Failure == "" {
			res.Failure = fmt.Sprintf("shard %d: %s", st.ID, st.Failure)
		}
	}
	if env.Telemetry {
		res.Telemetry = rt.MergedTelemetry()
	}
	return res, nil
}
