package harness

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/server"
)

func serverTestConfig() server.Config {
	return server.Scaled(0.1)
}

func serverTestEnv() Env {
	env := EnvForScale(0.1)
	env.Telemetry = true
	return env
}

func serverCollector(t *testing.T, preset string, sc server.Config, env Env, factor float64) core.Config {
	t.Helper()
	hb := int(float64(sc.EstLiveBytes()) * factor)
	hb = (hb/env.FrameBytes + 1) * env.FrameBytes
	cfg, err := collectors.Parse(preset, collectors.Options{
		HeapBytes:  hb,
		FrameBytes: env.FrameBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestRunServerPresets(t *testing.T) {
	sc := serverTestConfig()
	env := serverTestEnv()
	for _, preset := range []string{"25.25", "25.25.100", "25.25-mr", "immix"} {
		cfg := serverCollector(t, preset, sc, env, 4)
		res, err := RunServer(cfg, sc, server.SLO{}, env)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if res.OOM || res.Aborted {
			t.Fatalf("%s: incomplete run (oom=%v aborted=%v)", preset, res.OOM, res.Aborted)
		}
		if res.Server == nil || res.Server.Overall.Requests != sc.TotalRequests() {
			t.Fatalf("%s: bad server report: %+v", preset, res.Server)
		}
		if res.Benchmark != "server" {
			t.Fatalf("%s: benchmark=%q", preset, res.Benchmark)
		}
		if res.Telemetry == nil {
			t.Fatalf("%s: no telemetry snapshot", preset)
		}
		reqs, ok := res.Telemetry.Metrics.Counters["server_requests_total"]
		if !ok || reqs != uint64(sc.TotalRequests()) {
			t.Fatalf("%s: requests counter %d, want %d", preset, reqs, sc.TotalRequests())
		}
		h, ok := res.Telemetry.Metrics.Histograms["server_request_latency_cost_units"]
		if !ok || h.Count != uint64(sc.TotalRequests()) {
			t.Fatalf("%s: latency histogram missing or short", preset)
		}
	}
}

// TestRunServerShardedOneMatchesFlat is the acceptance identity: a
// sharded server run at -mutators 1 replays the flat request stream
// bit-identically — latencies, SLO verdicts, live fingerprint.
func TestRunServerShardedOneMatchesFlat(t *testing.T) {
	sc := serverTestConfig()
	env := serverTestEnv()
	cfg := serverCollector(t, "25.25", sc, env, 4)
	slo := server.SLO{Targets: []server.Target{{Quantile: "p99", Cost: 1e9}, {Quantile: "max", Cost: 1}}}

	flat, err := RunServer(cfg, sc, slo, env)
	if err != nil {
		t.Fatal(err)
	}
	env1 := env
	env1.Mutators = 1
	sharded, err := RunServerSharded(cfg, sc, slo, env1)
	if err != nil {
		t.Fatal(err)
	}

	if len(flat.Server.Latencies) != len(sharded.Server.Latencies) {
		t.Fatalf("request counts: flat %d, sharded %d",
			len(flat.Server.Latencies), len(sharded.Server.Latencies))
	}
	for i := range flat.Server.Latencies {
		if flat.Server.Latencies[i] != sharded.Server.Latencies[i] {
			t.Fatalf("latency %d: flat %v, sharded %v",
				i, flat.Server.Latencies[i], sharded.Server.Latencies[i])
		}
	}
	if flat.Server.StoreChecksum != sharded.Server.StoreChecksum {
		t.Fatalf("fingerprints: flat %x, sharded %x",
			flat.Server.StoreChecksum, sharded.Server.StoreChecksum)
	}
	if len(flat.Server.Verdicts) != len(sharded.Server.Verdicts) {
		t.Fatalf("verdict counts differ")
	}
	for i := range flat.Server.Verdicts {
		if flat.Server.Verdicts[i] != sharded.Server.Verdicts[i] {
			t.Fatalf("verdict %d: flat %+v, sharded %+v",
				i, flat.Server.Verdicts[i], sharded.Server.Verdicts[i])
		}
	}
	if flat.Server.Passed != sharded.Server.Passed {
		t.Fatalf("SLO outcome differs")
	}
	if flat.GCTime != sharded.GCTime || flat.Collections != sharded.Collections {
		t.Fatalf("GC timelines differ: flat (%v, %d), sharded (%v, %d)",
			flat.GCTime, flat.Collections, sharded.GCTime, sharded.Collections)
	}
}

func TestRunServerShardedScaleOut(t *testing.T) {
	sc := serverTestConfig()
	env := serverTestEnv()
	env.Mutators = 4
	cfg := serverCollector(t, "25.25", sc, env, 4)
	res, err := RunServer(cfg, sc, server.SLO{}, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mutators != 4 || res.Server.Shards != 4 {
		t.Fatalf("mutators=%d shards=%d", res.Mutators, res.Server.Shards)
	}
	want := 4 * sc.TotalRequests()
	if res.Server.Overall.Requests != want {
		t.Fatalf("served %d requests, want %d", res.Server.Overall.Requests, want)
	}
	// Shard streams are decorrelated: per-shard checksums fold into a
	// combined fingerprint that differs from any single lane's.
	flatRes, err := RunServer(cfg, sc, server.SLO{}, serverTestEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.Server.StoreChecksum == flatRes.Server.StoreChecksum {
		t.Fatalf("4-shard fingerprint equals flat fingerprint; lanes not decorrelated")
	}
	// Determinism across repeated sharded runs.
	res2, err := RunServer(cfg, sc, server.SLO{}, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Server.StoreChecksum != res2.Server.StoreChecksum ||
		res.TotalTime != res2.TotalTime {
		t.Fatalf("sharded runs not deterministic")
	}
}

func TestRunServerDeterministic(t *testing.T) {
	sc := serverTestConfig()
	env := serverTestEnv()
	cfg := serverCollector(t, "25.25.100", sc, env, 3)
	a, err := RunServer(cfg, sc, server.SLO{}, env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServer(cfg, sc, server.SLO{}, env)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.GCTime != b.GCTime {
		t.Fatalf("timelines differ: (%v,%v) vs (%v,%v)", a.TotalTime, a.GCTime, b.TotalTime, b.GCTime)
	}
	for i := range a.Server.Latencies {
		if a.Server.Latencies[i] != b.Server.Latencies[i] {
			t.Fatalf("latency %d differs", i)
		}
	}
}

func TestResultsTableServerColumns(t *testing.T) {
	sc := serverTestConfig()
	env := serverTestEnv()
	cfg := serverCollector(t, "25.25", sc, env, 4)
	res, err := RunServer(cfg, sc, server.SLO{}, env)
	if err != nil {
		t.Fatal(err)
	}
	tbl := ResultsTable([]*Result{res})
	if got := tbl.Headers[len(tbl.Headers)-2]; got != "req-p99.9(us)" {
		t.Fatalf("missing SLO header, got %q", got)
	}
	if got := tbl.Headers[len(tbl.Headers)-1]; got != "paused%" {
		t.Fatalf("missing paused%% header, got %q", got)
	}
	if len(tbl.Rows) != 1 || len(tbl.Rows[0]) != len(tbl.Headers) {
		t.Fatalf("row shape: %v", tbl.Rows)
	}
	// A table without server results must render the classic headers.
	plain := ResultsTable([]*Result{{Collector: "25.25", Benchmark: "gcbench"}})
	if plain.Headers[len(plain.Headers)-1] != "max(ms)" {
		t.Fatalf("classic table grew headers: %v", plain.Headers)
	}
}
