package harness

import (
	"encoding/json"
	"fmt"

	"beltway/internal/engine"
	"beltway/internal/stats"
	"beltway/internal/workload"
)

// RunSpec is one engine job at the harness level: build the config for
// Key.HeapBytes, run the benchmark under Env, record the Result.
type RunSpec struct {
	Key   engine.Key
	Make  ConfigFunc
	Bench *workload.Benchmark
	Env   Env
}

// RunPayload is the checkpoint payload for one run: the full Result (so a
// resumed run reproduces tables byte-identically, MMU curves included,
// and telemetry snapshots when enabled) plus a pause-distribution summary
// for log consumers that do not want to re-derive it from the raw pause
// list. Exported so engine.Config.OnRecord consumers (live telemetry
// aggregation in cmd/experiments) can decode checkpoint records.
type RunPayload struct {
	Result     *Result          `json:"result"`
	PauseStats stats.PauseStats `json:"pause_stats"`
}

// Executor runs harness measurements through the engine. It may be shared
// across batches — the checkpoint stays open and completed keys are
// remembered — and is safe for concurrent use.
type Executor struct {
	eng *engine.Engine
}

// NewExecutor creates an executor over a new engine.
func NewExecutor(cfg engine.Config) *Executor {
	return &Executor{eng: engine.New(cfg)}
}

// Engine exposes the underlying engine for non-measurement jobs (e.g.
// checkpointed minimum-heap searches).
func (x *Executor) Engine() *engine.Engine { return x.eng }

// Close releases the engine's checkpoint file, if any.
func (x *Executor) Close() error { return x.eng.Close() }

// RunAll executes the specs in parallel and returns one Result per spec,
// in spec order, plus the raw engine records. Results are always non-nil:
// a failed job (panic, timeout, error) yields a placeholder with
// Result.Failure set, so sweeps degrade to a missing point instead of
// dying. Every result — fresh or resumed — round-trips through the JSON
// payload, so output is bit-identical whether a run executed now or was
// loaded from a checkpoint. The returned error is reserved for engine
// infrastructure failures.
func (x *Executor) RunAll(specs []RunSpec) ([]*Result, []engine.Record, error) {
	jobs := make([]engine.Job, len(specs))
	for i := range specs {
		sp := specs[i]
		jobs[i] = engine.Job{Key: sp.Key, Run: func() (any, engine.Outcome, error) {
			res, err := RunOne(sp.Make(sp.Key.HeapBytes), sp.Bench, sp.Env)
			if err != nil {
				return nil, "", err
			}
			out := engine.OK
			switch {
			case res.OOM:
				out = engine.OOM
			case res.Aborted:
				out = engine.Budget
			}
			// The canonical serialization (shared with the farm worker and
			// ledger replay), pre-marshaled so the checkpoint bytes are the
			// digestable artifact bytes.
			payload, merr := MarshalRunPayload(res)
			if merr != nil {
				return nil, "", merr
			}
			return json.RawMessage(payload), out, nil
		}}
	}
	recs, err := x.eng.Run(jobs)
	if err != nil {
		return nil, recs, err
	}
	results := make([]*Result, len(specs))
	for i, rec := range recs {
		if rec.Outcome.Completed() && len(rec.Payload) > 0 {
			var p RunPayload
			if uerr := json.Unmarshal(rec.Payload, &p); uerr == nil && p.Result != nil {
				results[i] = p.Result
			} else {
				results[i] = failedResult(specs[i], fmt.Sprintf("checkpoint decode: %v", uerr))
			}
			continue
		}
		msg := string(rec.Outcome)
		if rec.Error != "" {
			msg += ": " + rec.Error
		}
		results[i] = failedResult(specs[i], msg)
	}
	return results, recs, nil
}

func failedResult(sp RunSpec, msg string) *Result {
	return &Result{
		Collector: sp.Key.Collector,
		Benchmark: sp.Bench.Name,
		HeapBytes: sp.Key.HeapBytes,
		Failure:   msg,
	}
}
