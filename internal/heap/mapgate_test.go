package heap

import "testing"

func TestTryMapFrameGate(t *testing.T) {
	s := testSpace(t)

	// No gate: behaves like MapFrame.
	f, ok := s.TryMapFrame()
	if !ok || f == NoFrame {
		t.Fatalf("ungated TryMapFrame = (%d, %v), want mapped frame", f, ok)
	}
	if s.MappedFrames() != 1 {
		t.Fatalf("MappedFrames = %d, want 1", s.MappedFrames())
	}

	// Vetoing gate: map fails with no side effects.
	calls := 0
	s.MapGate = func() bool { calls++; return false }
	if f, ok := s.TryMapFrame(); ok {
		t.Fatalf("vetoed TryMapFrame = (%d, true), want failure", f)
	}
	if calls != 1 {
		t.Fatalf("gate consulted %d times, want 1", calls)
	}
	if s.MappedFrames() != 1 {
		t.Fatalf("vetoed map changed MappedFrames to %d", s.MappedFrames())
	}

	// Passing gate: map succeeds again.
	s.MapGate = func() bool { return true }
	if _, ok := s.TryMapFrame(); !ok {
		t.Fatal("passing gate vetoed the map")
	}
	if s.MappedFrames() != 2 {
		t.Fatalf("MappedFrames = %d, want 2", s.MappedFrames())
	}
}

func TestTryMapSpanGate(t *testing.T) {
	s := testSpace(t)
	calls := 0
	s.MapGate = func() bool { calls++; return calls > 1 }

	if f, ok := s.TryMapSpan(3); ok {
		t.Fatalf("vetoed TryMapSpan = (%d, true), want failure", f)
	}
	if s.MappedFrames() != 0 {
		t.Fatalf("vetoed span mapped %d frames", s.MappedFrames())
	}

	f, ok := s.TryMapSpan(3)
	if !ok {
		t.Fatal("passing gate vetoed the span")
	}
	// One gate consultation per span, not per frame.
	if calls != 2 {
		t.Fatalf("gate consulted %d times for 2 spans, want 2", calls)
	}
	if s.MappedFrames() != 3 {
		t.Fatalf("MappedFrames = %d, want 3", s.MappedFrames())
	}
	for i := 0; i < 3; i++ {
		if !s.Mapped(f + Frame(i)) {
			t.Errorf("span frame %d not mapped", f+Frame(i))
		}
	}
}

// MapFrame and MapSpan must ignore the gate: boot-image maps are
// must-succeed and never fault-injected.
func TestMapFrameIgnoresGate(t *testing.T) {
	s := testSpace(t)
	s.MapGate = func() bool { return false }
	if f := s.MapFrame(); f == NoFrame {
		t.Fatal("MapFrame consulted the gate")
	}
	if f := s.MapSpan(2); f == NoFrame {
		t.Fatal("MapSpan consulted the gate")
	}
	if s.MappedFrames() != 3 {
		t.Fatalf("MappedFrames = %d, want 3", s.MappedFrames())
	}
}
