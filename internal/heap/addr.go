// Package heap simulates the managed heap that Beltway manages inside
// Jikes RVM. It provides a word-addressed virtual address space divided
// into power-of-two aligned frames, an object model with headers and
// forwarding pointers, and a type registry. Everything above this package
// (the Beltway framework, the generational baselines, the mutator facade)
// manipulates objects only through simulated addresses, so the collectors
// exercise the same algorithmic code paths as a real copying collector:
// frame arithmetic by shift-and-compare, header tagging, Cheney
// forwarding, and bump allocation into frames.
package heap

import "fmt"

// Addr is a simulated heap address: a byte offset into the simulated
// address space. Address 0 is the nil reference; frame 0 is never mapped,
// so any dereference of Nil faults immediately.
type Addr uint32

// Nil is the null simulated reference.
const Nil Addr = 0

// WordBytes is the size of one heap word. The simulated machine is
// 32-bit, like the paper's PowerPC target: references are one word.
const WordBytes = 4

// WordShift is log2(WordBytes).
const WordShift = 2

// Frame identifies one power-of-two aligned frame of the address space.
// The frame of an address is addr >> FrameShift — the same shift-and-
// compare the paper's write barrier (Figure 4) relies on.
type Frame uint32

// NoFrame is the zero Frame; frame 0 is reserved (never mapped) so that
// address 0 stays invalid.
const NoFrame Frame = 0

func (a Addr) String() string {
	return fmt.Sprintf("0x%08x", uint32(a))
}
