package heap

import "fmt"

// Kind classifies object layouts.
type Kind uint8

const (
	// Scalar objects have a fixed number of reference slots followed by a
	// fixed number of data words, both given by the type descriptor.
	Scalar Kind = iota
	// RefArray objects hold Length() reference slots.
	RefArray
	// WordArray objects hold Length() non-reference data words.
	WordArray
)

func (k Kind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case RefArray:
		return "refarray"
	case WordArray:
		return "wordarray"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// TypeID indexes a type in a Registry. IDs are small dense integers so
// they fit the object header's type field.
type TypeID uint32

// maxTypeID bounds TypeID so it fits in the header's 24-bit type field.
const maxTypeID = 1<<24 - 1

// TypeDesc describes the layout of a class of objects, playing the role
// of Jikes RVM's TIB: it is what the collector consults to find an
// object's reference slots and size.
type TypeDesc struct {
	ID        TypeID
	Name      string
	Kind      Kind
	RefSlots  int // scalar only: number of reference slots
	DataWords int // scalar only: number of data words after the refs
}

// Size returns the total object size in bytes for an instance of t with
// the given array length (ignored for scalars).
func (t *TypeDesc) Size(length int) int {
	switch t.Kind {
	case Scalar:
		return (headerWords + t.RefSlots + t.DataWords) * WordBytes
	case RefArray, WordArray:
		return (headerWords + length) * WordBytes
	default:
		panic("heap: unknown kind")
	}
}

// NumRefs returns the number of reference slots in an instance of t with
// the given array length.
func (t *TypeDesc) NumRefs(length int) int {
	switch t.Kind {
	case Scalar:
		return t.RefSlots
	case RefArray:
		return length
	default:
		return 0
	}
}

// Registry interns type descriptors. The zero TypeID is reserved so that
// a zero header word is always invalid — it catches reads of unformatted
// memory in tests.
type Registry struct {
	types  []*TypeDesc
	byName map[string]*TypeDesc
}

// NewRegistry returns an empty registry with TypeID 0 reserved.
func NewRegistry() *Registry {
	return &Registry{
		types:  []*TypeDesc{nil}, // ID 0 reserved
		byName: make(map[string]*TypeDesc),
	}
}

// Define registers a new type and assigns its ID. It panics on duplicate
// names or invalid layouts; type definition is program setup, not a
// recoverable runtime event.
func (r *Registry) Define(name string, kind Kind, refSlots, dataWords int) *TypeDesc {
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("heap: duplicate type %q", name))
	}
	if kind != Scalar && (refSlots != 0 || dataWords != 0) {
		panic(fmt.Sprintf("heap: type %q: array kinds take no slot counts", name))
	}
	if refSlots < 0 || dataWords < 0 {
		panic(fmt.Sprintf("heap: type %q: negative layout", name))
	}
	if len(r.types) > maxTypeID {
		panic("heap: too many types")
	}
	t := &TypeDesc{
		ID:        TypeID(len(r.types)),
		Name:      name,
		Kind:      kind,
		RefSlots:  refSlots,
		DataWords: dataWords,
	}
	r.types = append(r.types, t)
	r.byName[name] = t
	return t
}

// DefineScalar registers a scalar type with refSlots references and
// dataWords words of non-reference payload.
func (r *Registry) DefineScalar(name string, refSlots, dataWords int) *TypeDesc {
	return r.Define(name, Scalar, refSlots, dataWords)
}

// DefineRefArray registers a reference-array type.
func (r *Registry) DefineRefArray(name string) *TypeDesc {
	return r.Define(name, RefArray, 0, 0)
}

// DefineWordArray registers a data-array type.
func (r *Registry) DefineWordArray(name string) *TypeDesc {
	return r.Define(name, WordArray, 0, 0)
}

// Get returns the descriptor for id, or panics if id is unknown: an
// unknown id read out of a header means heap corruption.
func (r *Registry) Get(id TypeID) *TypeDesc {
	if int(id) <= 0 || int(id) >= len(r.types) {
		panic(fmt.Sprintf("heap: invalid type id %d", id))
	}
	return r.types[id]
}

// Lookup returns the descriptor registered under name, or nil.
func (r *Registry) Lookup(name string) *TypeDesc { return r.byName[name] }

// Len returns the number of registered types (excluding the reserved 0).
func (r *Registry) Len() int { return len(r.types) - 1 }
