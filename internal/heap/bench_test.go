package heap

import "testing"

// BenchmarkWordAccess measures the simulated memory's word load/store
// path (the floor under every collector operation).
func BenchmarkWordAccess(b *testing.B) {
	s := NewSpace(1<<16, NewRegistry())
	a := s.FrameBase(s.MapFrame())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetWord(a, uint32(i))
		if s.Word(a) != uint32(i) {
			b.Fatal("corrupt")
		}
	}
}

// BenchmarkFrameMapUnmap measures frame turnover (one map+unmap pair per
// iteration), which bounds collection bookkeeping.
func BenchmarkFrameMapUnmap(b *testing.B) {
	s := NewSpace(1<<14, NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := s.MapFrame()
		s.UnmapFrame(f)
	}
}

// BenchmarkCopyObject measures the Cheney copy primitive on a 64-byte
// object.
func BenchmarkCopyObject(b *testing.B) {
	r := NewRegistry()
	node := r.DefineScalar("n", 4, 9) // (3+4+9)*4 = 64 bytes
	s := NewSpace(1<<16, r)
	base := s.FrameBase(s.MapFrame())
	s.Format(base, node, 0, 1)
	dst := base + 4096
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CopyObject(base, dst)
	}
}

// BenchmarkWalkObjects measures the linear object walk used by Cheney
// scanning and card scanning.
func BenchmarkWalkObjects(b *testing.B) {
	r := NewRegistry()
	node := r.DefineScalar("n", 2, 2)
	s := NewSpace(1<<16, r)
	base := s.FrameBase(s.MapFrame())
	a := base
	for i := 0; i < 100; i++ {
		s.Format(a, node, 0, uint32(i+1))
		a += Addr(node.Size(0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.WalkObjects(base, a, func(Addr) bool { n++; return true })
		if n != 100 {
			b.Fatal(n)
		}
	}
}
