package heap_test

import (
	"testing"

	"beltway/internal/bench"
)

// Benchmark bodies live in beltway/internal/bench so `go test -bench`
// and the cmd/bench regression harness measure the same code.

func BenchmarkWordAccess(b *testing.B)    { bench.WordAccess(b) }
func BenchmarkFrameMapUnmap(b *testing.B) { bench.FrameMapUnmap(b) }
func BenchmarkCopyObject(b *testing.B)    { bench.CopyObject(b) }
func BenchmarkWalkObjects(b *testing.B)   { bench.WalkObjects(b) }
