package heap

import "fmt"

// Space is the simulated virtual address space: a growable set of
// power-of-two sized frames, each backed by its own zeroed word slab.
// Frames are mapped on demand and unmapped when their increment is
// collected; unmapped frame numbers are recycled in FIFO order so that
// address reuse — and therefore stale-pointer bugs — are exercised, just
// as they would be against a real mmap'd heap.
//
// Slabs are []uint32 rather than []byte: the simulated machine is
// word-addressed for every collector-visible access, so Word/SetWord
// compile to a single indexed load/store instead of four byte operations,
// and CopyObject is a copy() over word slices. Unmapped slabs are pooled
// and re-zeroed on reuse, keeping frame turnover off the Go allocator.
type Space struct {
	Types *Registry

	frameBytes int
	frameShift uint
	wordShift  uint       // frameShift - WordShift: word index -> frame number
	wordMask   uint32     // words-per-frame - 1: word index -> slab offset
	frames     [][]uint32 // indexed by Frame; nil when unmapped
	free       []Frame    // FIFO recycle queue of unmapped frame numbers
	pool       [][]uint32 // unmapped slabs awaiting reuse
	mapped     int

	// Hooks for cost accounting; nil-safe.
	OnMap   func()
	OnUnmap func()

	// MapGate, when non-nil, is consulted by TryMapFrame/TryMapSpan
	// before mapping; returning false fails the map (fault injection).
	// MapFrame/MapSpan ignore it — boot-image and other must-succeed
	// maps stay ungated.
	MapGate func() bool
}

// NewSpace creates an address space with the given frame size, which must
// be a power of two and at least 256 bytes. The registry may be shared
// between spaces (e.g. a collected space and an immortal space).
func NewSpace(frameBytes int, types *Registry) *Space {
	if frameBytes < 256 || frameBytes&(frameBytes-1) != 0 {
		panic(fmt.Sprintf("heap: frame size %d is not a power of two >= 256", frameBytes))
	}
	shift := uint(0)
	for 1<<shift != frameBytes {
		shift++
	}
	return &Space{
		Types:      types,
		frameBytes: frameBytes,
		frameShift: shift,
		wordShift:  shift - WordShift,
		wordMask:   uint32(frameBytes>>WordShift) - 1,
		frames:     make([][]uint32, 1), // frame 0 reserved, never mapped
	}
}

// FrameBytes returns the frame size in bytes.
func (s *Space) FrameBytes() int { return s.frameBytes }

// FrameShift returns log2(FrameBytes); the write barrier's shift.
func (s *Space) FrameShift() uint { return s.frameShift }

// FrameOf returns the frame containing a.
func (s *Space) FrameOf(a Addr) Frame { return Frame(uint32(a) >> s.frameShift) }

// FrameBase returns the first address of frame f.
func (s *Space) FrameBase(f Frame) Addr { return Addr(uint32(f) << s.frameShift) }

// FrameLimit returns one past the last address of frame f.
func (s *Space) FrameLimit(f Frame) Addr { return s.FrameBase(f) + Addr(s.frameBytes) }

// NumFrames returns the highest frame number ever mapped plus one; frame
// metadata tables in the collectors are sized by this.
func (s *Space) NumFrames() int { return len(s.frames) }

// MappedFrames returns the number of currently mapped frames.
func (s *Space) MappedFrames() int { return s.mapped }

// Mapped reports whether frame f is currently mapped.
func (s *Space) Mapped(f Frame) bool {
	return int(f) < len(s.frames) && s.frames[f] != nil
}

// newSlab returns a zeroed words-per-frame slab, reusing a pooled one
// when available: clearing a recycled slab is a memclr, with none of the
// allocator traffic a fresh make incurs on every collection.
func (s *Space) newSlab() []uint32 {
	if n := len(s.pool); n > 0 {
		slab := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		clear(slab)
		return slab
	}
	return make([]uint32, s.frameBytes>>WordShift)
}

// MapFrame maps a fresh zeroed frame and returns its number. Recycled
// frame numbers are reused FIFO.
func (s *Space) MapFrame() Frame {
	var f Frame
	if len(s.free) > 0 {
		f = s.free[0]
		s.free = s.free[1:]
	} else {
		f = Frame(len(s.frames))
		s.frames = append(s.frames, nil)
	}
	s.frames[f] = s.newSlab()
	s.mapped++
	if s.OnMap != nil {
		s.OnMap()
	}
	return f
}

// TryMapFrame is MapFrame behind the MapGate: with no gate (or a
// passing one) it maps a fresh frame; a vetoing gate fails the map
// without side effects. Collectible-frame maps go through here so fault
// injection can fail the Nth one.
func (s *Space) TryMapFrame() (Frame, bool) {
	if s.MapGate != nil && !s.MapGate() {
		return 0, false
	}
	return s.MapFrame(), true
}

// TryMapSpan is MapSpan behind the MapGate (one gate consultation per
// span, not per frame).
func (s *Space) TryMapSpan(n int) (Frame, bool) {
	if s.MapGate != nil && !s.MapGate() {
		return 0, false
	}
	return s.MapSpan(n), true
}

// UnmapFrame releases frame f. Touching its addresses afterwards panics,
// which is the simulated equivalent of a segfault.
func (s *Space) UnmapFrame(f Frame) {
	if !s.Mapped(f) {
		panic(fmt.Sprintf("heap: unmap of unmapped frame %d", f))
	}
	s.pool = append(s.pool, s.frames[f])
	s.frames[f] = nil
	s.free = append(s.free, f)
	s.mapped--
	if s.OnUnmap != nil {
		s.OnUnmap()
	}
}

// MapSpan maps n consecutive fresh frames (for a large object spanning
// frames) and returns the first. Span frame numbers are always newly
// minted — the single-frame recycle queue is not consulted — so the
// addresses are guaranteed contiguous.
func (s *Space) MapSpan(n int) Frame {
	if n < 1 {
		panic("heap: MapSpan of non-positive length")
	}
	f := Frame(len(s.frames))
	for i := 0; i < n; i++ {
		s.frames = append(s.frames, s.newSlab())
		s.mapped++
		if s.OnMap != nil {
			s.OnMap()
		}
	}
	return f
}

// UnmapSpan releases the n frames of a span mapped with MapSpan. The
// frame numbers are recycled individually.
func (s *Space) UnmapSpan(f Frame, n int) {
	for i := 0; i < n; i++ {
		s.UnmapFrame(f + Frame(i))
	}
}

// fault reconstructs the precise panic for a bad access. It is kept out
// of line so Word/SetWord stay small enough to inline with a single
// combined validity branch on the hot path.
func (s *Space) fault(a Addr, write bool) {
	if a&3 != 0 {
		if write {
			panic(fmt.Sprintf("heap: misaligned write at %v", a))
		}
		panic(fmt.Sprintf("heap: misaligned read at %v", a))
	}
	panic(fmt.Sprintf("heap: fault at %v (frame %d unmapped)", a, uint32(a)>>s.frameShift))
}

// slabAt returns the word slab of the frame containing a and a's word
// offset within it, faulting if the address is unmapped or misaligned.
func (s *Space) slabAt(a Addr, write bool) ([]uint32, uint32) {
	w := uint32(a) >> WordShift
	f := w >> s.wordShift
	if a&3 != 0 || int(f) >= len(s.frames) || s.frames[f] == nil {
		s.fault(a, write)
	}
	return s.frames[f], w & s.wordMask
}

// ZeroRange zeroes n bytes starting at a; the range must lie within a
// single frame. Fresh slabs arrive zeroed, but storage reclaimed in
// place (mark-region line sweeps) still holds the dead objects' bytes —
// allocators reusing such ranges must re-zero them so new objects see
// nil slots and zero data, exactly as they would in a fresh frame.
func (s *Space) ZeroRange(a Addr, n int) {
	slab, off := s.slabAt(a, true)
	clear(slab[off : off+uint32(n)>>WordShift])
}

// Word reads the word at byte address a.
func (s *Space) Word(a Addr) uint32 {
	w := uint32(a) >> WordShift
	f := w >> s.wordShift
	if a&3 != 0 || int(f) >= len(s.frames) || s.frames[f] == nil {
		s.fault(a, false)
	}
	return s.frames[f][w&s.wordMask]
}

// SetWord writes the word at byte address a.
func (s *Space) SetWord(a Addr, v uint32) {
	w := uint32(a) >> WordShift
	f := w >> s.wordShift
	if a&3 != 0 || int(f) >= len(s.frames) || s.frames[f] == nil {
		s.fault(a, true)
	}
	s.frames[f][w&s.wordMask] = v
}
