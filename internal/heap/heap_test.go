package heap

import (
	"testing"
	"testing/quick"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	return NewSpace(4096, NewRegistry())
}

func TestNewSpaceRejectsBadFrameSizes(t *testing.T) {
	for _, bad := range []int{0, -1, 100, 255, 3000, 4097} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", bad)
				}
			}()
			NewSpace(bad, NewRegistry())
		}()
	}
}

func TestFrameArithmetic(t *testing.T) {
	s := testSpace(t)
	f := s.MapFrame()
	if f == NoFrame {
		t.Fatal("first mapped frame is frame 0 (reserved)")
	}
	base := s.FrameBase(f)
	if s.FrameOf(base) != f {
		t.Errorf("FrameOf(FrameBase(%d)) = %d", f, s.FrameOf(base))
	}
	if s.FrameOf(s.FrameLimit(f)-4) != f {
		t.Error("last word of frame maps to wrong frame")
	}
	if s.FrameOf(s.FrameLimit(f)) == f {
		t.Error("frame limit should be in the next frame")
	}
	if got := s.FrameLimit(f) - base; int(got) != s.FrameBytes() {
		t.Errorf("frame spans %d bytes, want %d", got, s.FrameBytes())
	}
}

func TestMapUnmapRecyclesFIFO(t *testing.T) {
	s := testSpace(t)
	a := s.MapFrame()
	b := s.MapFrame()
	if a == b {
		t.Fatal("distinct MapFrame calls returned the same frame")
	}
	s.UnmapFrame(a)
	s.UnmapFrame(b)
	if s.MappedFrames() != 0 {
		t.Fatalf("MappedFrames = %d after unmapping all", s.MappedFrames())
	}
	if got := s.MapFrame(); got != a {
		t.Errorf("recycle order: got frame %d, want %d (FIFO)", got, a)
	}
	if got := s.MapFrame(); got != b {
		t.Errorf("recycle order: got frame %d, want %d (FIFO)", got, b)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	s := testSpace(t)
	f := s.MapFrame()
	a := s.FrameBase(f)
	s.SetWord(a, 42)
	s.UnmapFrame(f)
	defer func() {
		if recover() == nil {
			t.Error("read of unmapped frame did not fault")
		}
	}()
	s.Word(a)
}

func TestRemappedFrameIsZeroed(t *testing.T) {
	s := testSpace(t)
	f := s.MapFrame()
	a := s.FrameBase(f)
	s.SetWord(a, 0xdeadbeef)
	s.UnmapFrame(f)
	f2 := s.MapFrame()
	if f2 != f {
		t.Fatalf("expected frame %d recycled, got %d", f, f2)
	}
	if got := s.Word(a); got != 0 {
		t.Errorf("recycled frame not zeroed: word = %#x", got)
	}
}

func TestMisalignedAccessFaults(t *testing.T) {
	s := testSpace(t)
	f := s.MapFrame()
	a := s.FrameBase(f) + 2
	defer func() {
		if recover() == nil {
			t.Error("misaligned access did not fault")
		}
	}()
	s.Word(a)
}

func TestWordRoundTrip(t *testing.T) {
	s := testSpace(t)
	f := s.MapFrame()
	base := s.FrameBase(f)
	check := func(off Addr, v uint32) bool {
		a := base + (off%1024)*4
		s.SetWord(a, v)
		return s.Word(a) == v
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryDefineAndLookup(t *testing.T) {
	r := NewRegistry()
	node := r.DefineScalar("node", 2, 1)
	arr := r.DefineRefArray("arr")
	buf := r.DefineWordArray("buf")
	if node.ID == 0 || arr.ID == 0 || buf.ID == 0 {
		t.Error("type id 0 must be reserved")
	}
	if r.Get(node.ID) != node || r.Lookup("arr") != arr {
		t.Error("registry lookup mismatch")
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	func() {
		defer func() { recover() }()
		r.DefineScalar("node", 1, 1)
		t.Error("duplicate Define did not panic")
	}()
}

func TestTypeSizes(t *testing.T) {
	r := NewRegistry()
	node := r.DefineScalar("node", 2, 3)
	arr := r.DefineRefArray("arr")
	buf := r.DefineWordArray("buf")
	if got := node.Size(0); got != (3+2+3)*4 {
		t.Errorf("scalar size = %d", got)
	}
	if got := arr.Size(10); got != (3+10)*4 {
		t.Errorf("refarray size = %d", got)
	}
	if got := buf.Size(0); got != 3*4 {
		t.Errorf("empty wordarray size = %d", got)
	}
	if node.NumRefs(0) != 2 || arr.NumRefs(7) != 7 || buf.NumRefs(9) != 0 {
		t.Error("NumRefs mismatch")
	}
}

func TestObjectFormatAndAccessors(t *testing.T) {
	r := NewRegistry()
	node := r.DefineScalar("node", 2, 2)
	s := NewSpace(4096, r)
	f := s.MapFrame()
	a := s.FrameBase(f)
	s.Format(a, node, 0, 77)

	if s.TypeOf(a) != node {
		t.Error("TypeOf mismatch")
	}
	if s.Serial(a) != 77 {
		t.Errorf("Serial = %d", s.Serial(a))
	}
	if s.SizeOf(a) != node.Size(0) {
		t.Errorf("SizeOf = %d", s.SizeOf(a))
	}
	if s.NumRefs(a) != 2 || s.DataWords(a) != 2 {
		t.Error("slot counts wrong")
	}
	b := a + Addr(node.Size(0))
	s.Format(b, node, 0, 78)
	s.SetRef(a, 0, b)
	s.SetRef(a, 1, Nil)
	s.SetData(a, 0, 123)
	s.SetData(a, 1, 456)
	if s.GetRef(a, 0) != b || s.GetRef(a, 1) != Nil {
		t.Error("ref slots wrong")
	}
	if s.GetData(a, 0) != 123 || s.GetData(a, 1) != 456 {
		t.Error("data words wrong")
	}
	// Ref slot addresses must land inside the object, after the header.
	if s.RefSlotAddr(a, 0) != a+HeaderBytes {
		t.Error("first ref slot not immediately after header")
	}
}

func TestRefArrayObject(t *testing.T) {
	r := NewRegistry()
	arr := r.DefineRefArray("arr")
	s := NewSpace(4096, r)
	f := s.MapFrame()
	a := s.FrameBase(f)
	s.Format(a, arr, 5, 1)
	if s.Length(a) != 5 || s.NumRefs(a) != 5 || s.DataWords(a) != 0 {
		t.Error("array layout wrong")
	}
	for i := 0; i < 5; i++ {
		s.SetRef(a, i, a) // self references
	}
	for i := 0; i < 5; i++ {
		if s.GetRef(a, i) != a {
			t.Errorf("slot %d corrupted", i)
		}
	}
}

func TestSlotBoundsChecked(t *testing.T) {
	r := NewRegistry()
	node := r.DefineScalar("node", 1, 1)
	s := NewSpace(4096, r)
	a := s.FrameBase(s.MapFrame())
	s.Format(a, node, 0, 1)
	for _, f := range []func(){
		func() { s.GetRef(a, 1) },
		func() { s.GetRef(a, -1) },
		func() { s.SetRef(a, 1, Nil) },
		func() { s.GetData(a, 1) },
		func() { s.SetData(a, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range slot access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestForwardingProtocol(t *testing.T) {
	r := NewRegistry()
	node := r.DefineScalar("node", 1, 1)
	s := NewSpace(4096, r)
	a := s.FrameBase(s.MapFrame())
	s.Format(a, node, 0, 9)
	s.SetData(a, 0, 0xabcd)
	dst := a + 64
	if n := s.CopyObject(a, dst); n != node.Size(0) {
		t.Errorf("CopyObject returned %d", n)
	}
	s.SetForwarding(a, dst)
	if !s.Forwarded(a) {
		t.Error("Forwarded false after SetForwarding")
	}
	if s.Forwarding(a) != dst {
		t.Error("forwarding address wrong")
	}
	if s.Forwarded(dst) {
		t.Error("copy must not be forwarded")
	}
	if s.Serial(dst) != 9 || s.GetData(dst, 0) != 0xabcd {
		t.Error("copy corrupted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double forwarding did not panic")
			}
		}()
		s.SetForwarding(a, dst)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("TypeOf on forwarded object did not panic")
			}
		}()
		s.TypeOf(a)
	}()
}

func TestWalkObjects(t *testing.T) {
	r := NewRegistry()
	node := r.DefineScalar("node", 0, 1)
	arr := r.DefineWordArray("buf")
	s := NewSpace(4096, r)
	base := s.FrameBase(s.MapFrame())
	a := base
	var want []Addr
	for i := 0; i < 5; i++ {
		var sz int
		if i%2 == 0 {
			s.Format(a, node, 0, uint32(i+1))
			sz = node.Size(0)
		} else {
			s.Format(a, arr, i*3, uint32(i+1))
			sz = arr.Size(i * 3)
		}
		want = append(want, a)
		a += Addr(sz)
	}
	var got []Addr
	s.WalkObjects(base, a, func(obj Addr) bool {
		got = append(got, obj)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("walked %d objects, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("object %d at %v, want %v", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	s.WalkObjects(base, a, func(Addr) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestObjectPropertyRoundTrip(t *testing.T) {
	// Property: for random layouts, formatting then reading back
	// preserves type, length, serial and all slot contents.
	r := NewRegistry()
	types := []*TypeDesc{
		r.DefineScalar("s0", 0, 0),
		r.DefineScalar("s1", 3, 2),
		r.DefineRefArray("ra"),
		r.DefineWordArray("wa"),
	}
	s := NewSpace(1<<16, r)
	base := s.FrameBase(s.MapFrame())

	prop := func(ti uint8, length uint8, serial uint32, v uint32) bool {
		t0 := types[int(ti)%len(types)]
		n := 0
		if t0.Kind != Scalar {
			n = int(length % 100)
		}
		s2 := serial | 1 // nonzero
		s.Format(base, t0, n, s2)
		if s.TypeOf(base) != t0 || s.Length(base) != n || s.Serial(base) != s2 {
			return false
		}
		for i := 0; i < s.DataWords(base); i++ {
			s.SetData(base, i, v+uint32(i))
		}
		for i := 0; i < s.DataWords(base); i++ {
			if s.GetData(base, i) != v+uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSpanMapping exercises MapSpan/UnmapSpan interleaved with single
// frames: span addresses must be contiguous and spans must never overlap
// live single frames.
func TestSpanMapping(t *testing.T) {
	s := testSpace(t)
	f1 := s.MapFrame()
	span := s.MapSpan(3)
	f2 := s.MapFrame()
	for i := 0; i < 3; i++ {
		if !s.Mapped(span + Frame(i)) {
			t.Fatalf("span frame %d unmapped", i)
		}
	}
	// Contiguity: last word of frame i and first of i+1 are adjacent.
	a := s.FrameBase(span)
	s.SetWord(a+Addr(s.FrameBytes())-4, 7)
	s.SetWord(a+Addr(s.FrameBytes()), 8)
	if s.Word(a+Addr(s.FrameBytes())-4) != 7 || s.Word(a+Addr(s.FrameBytes())) != 8 {
		t.Error("span not contiguous across frame boundary")
	}
	if s.FrameOf(a) == s.FrameOf(a+Addr(3*s.FrameBytes())-4) {
		t.Error("span frames share a frame number")
	}
	s.UnmapSpan(span, 3)
	s.UnmapFrame(f1)
	s.UnmapFrame(f2)
	if s.MappedFrames() != 0 {
		t.Errorf("MappedFrames = %d", s.MappedFrames())
	}
	// Recycled span frames come back as singles.
	got := s.MapFrame()
	if got != f1 && got != span {
		t.Logf("recycle order: first recycled frame %d", got)
	}
}

// TestAddressReuseChurn is a property test over random map/unmap/span
// sequences: mapped count stays consistent, reads of any mapped frame
// work, and unmapped access always faults.
func TestAddressReuseChurn(t *testing.T) {
	prop := func(ops []uint8) bool {
		s := NewSpace(1024, NewRegistry())
		type span struct {
			f Frame
			n int
		}
		var live []span
		for _, op := range ops {
			switch {
			case op < 110:
				live = append(live, span{s.MapFrame(), 1})
			case op < 140:
				n := int(op%3) + 2
				live = append(live, span{s.MapSpan(n), n})
			default:
				if len(live) > 0 {
					i := int(op) % len(live)
					sp := live[i]
					if sp.n == 1 {
						s.UnmapFrame(sp.f)
					} else {
						s.UnmapSpan(sp.f, sp.n)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		}
		want := 0
		for _, sp := range live {
			want += sp.n
			s.SetWord(s.FrameBase(sp.f), 1) // must not fault
		}
		return s.MappedFrames() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
