package heap

import "testing"

// The word-access and copy primitives are the floor under every
// collector operation; these guards pin them at zero heap allocations so
// the slab-backed fast paths cannot silently regress.

func TestWordAccessZeroAlloc(t *testing.T) {
	s := NewSpace(1<<14, NewRegistry())
	a := s.FrameBase(s.MapFrame())
	if n := testing.AllocsPerRun(100, func() {
		s.SetWord(a, 42)
		if s.Word(a) != 42 {
			t.Fatal("corrupt")
		}
	}); n != 0 {
		t.Errorf("Word/SetWord allocate %v times per op, want 0", n)
	}
}

func TestCopyObjectZeroAlloc(t *testing.T) {
	r := NewRegistry()
	node := r.DefineScalar("n", 4, 9)
	s := NewSpace(1<<14, r)
	base := s.FrameBase(s.MapFrame())
	s.Format(base, node, 0, 1)
	dst := base + 1024
	if n := testing.AllocsPerRun(100, func() {
		s.CopyObject(base, dst)
	}); n != 0 {
		t.Errorf("CopyObject allocates %v times per op, want 0", n)
	}
}

func TestRecycledFrameMapZeroAlloc(t *testing.T) {
	s := NewSpace(1<<14, NewRegistry())
	s.UnmapFrame(s.MapFrame()) // prime the slab pool
	if n := testing.AllocsPerRun(100, func() {
		s.UnmapFrame(s.MapFrame())
	}); n != 0 {
		t.Errorf("recycled MapFrame/UnmapFrame allocates %v times per op, want 0", n)
	}
}
