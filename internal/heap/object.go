package heap

import "fmt"

// Object layout, in words:
//
//	W0: header — bits 0..23 type id, bit 31 forwarded flag
//	W1: array length in elements (0 for scalars); when the forwarded flag
//	    is set, W1 instead holds the forwarding address
//	W2: serial — a unique allocation number used by the validation oracle
//	    and for deterministic debugging
//	W3..: reference slots, then data words (per the type descriptor)
//
// The forwarding encoding clobbers W1 exactly the way real copying
// collectors clobber from-space objects: once an object is forwarded its
// old body is unreadable, and only the (flag, forwarding address) pair
// survives.
const (
	headerWords = 3
	// HeaderBytes is the per-object header overhead.
	HeaderBytes = headerWords * WordBytes

	typeMask  = 0x00ffffff
	fwdFlag   = 0x80000000
	hdrLenOff = 1 * WordBytes
	hdrSerOff = 2 * WordBytes
)

// Format writes a fresh object header at addr. The body (slots and data)
// is expected to be zero, which bump allocation into freshly mapped
// frames guarantees.
func (s *Space) Format(addr Addr, t *TypeDesc, length int, serial uint32) {
	if t.Kind == Scalar && length != 0 {
		panic(fmt.Sprintf("heap: scalar %s formatted with length %d", t.Name, length))
	}
	if length < 0 {
		panic("heap: negative array length")
	}
	s.SetWord(addr, uint32(t.ID))
	s.SetWord(addr+hdrLenOff, uint32(length))
	s.SetWord(addr+hdrSerOff, serial)
}

// TypeOf returns the type descriptor of the object at addr.
func (s *Space) TypeOf(addr Addr) *TypeDesc {
	h := s.Word(addr)
	if h&fwdFlag != 0 {
		panic(fmt.Sprintf("heap: TypeOf on forwarded object at %v", addr))
	}
	return s.Types.Get(TypeID(h & typeMask))
}

// Length returns the array length of the object at addr (0 for scalars).
func (s *Space) Length(addr Addr) int { return int(s.Word(addr + hdrLenOff)) }

// Serial returns the allocation serial of the object at addr.
func (s *Space) Serial(addr Addr) uint32 { return s.Word(addr + hdrSerOff) }

// SizeOf returns the total size in bytes of the object at addr.
func (s *Space) SizeOf(addr Addr) int {
	t := s.TypeOf(addr)
	return t.Size(s.Length(addr))
}

// NumRefs returns the number of reference slots of the object at addr.
func (s *Space) NumRefs(addr Addr) int {
	t := s.TypeOf(addr)
	return t.NumRefs(s.Length(addr))
}

// RefSlotAddr returns the address of reference slot i of the object at
// addr. Remembered sets store these slot addresses.
func (s *Space) RefSlotAddr(addr Addr, i int) Addr {
	return addr + Addr((headerWords+i)*WordBytes)
}

// GetRef reads reference slot i of the object at addr.
func (s *Space) GetRef(addr Addr, i int) Addr {
	s.checkRefSlot(addr, i)
	return Addr(s.Word(s.RefSlotAddr(addr, i)))
}

// SetRef writes reference slot i of the object at addr. This is the raw
// store; write barriers live above this package.
func (s *Space) SetRef(addr Addr, i int, v Addr) {
	s.checkRefSlot(addr, i)
	s.SetWord(s.RefSlotAddr(addr, i), uint32(v))
}

func (s *Space) checkRefSlot(addr Addr, i int) {
	if n := s.NumRefs(addr); i < 0 || i >= n {
		panic(fmt.Sprintf("heap: ref slot %d out of range [0,%d) at %v (%s)",
			i, n, addr, s.TypeOf(addr).Name))
	}
}

// dataSlotAddr returns the address of data word i.
func (s *Space) dataSlotAddr(addr Addr, i int) Addr {
	t := s.TypeOf(addr)
	var n, base int
	switch t.Kind {
	case Scalar:
		base, n = headerWords+t.RefSlots, t.DataWords
	case WordArray:
		base, n = headerWords, s.Length(addr)
	default:
		panic(fmt.Sprintf("heap: data access on %s (%s)", t.Name, t.Kind))
	}
	if i < 0 || i >= n {
		panic(fmt.Sprintf("heap: data word %d out of range [0,%d) at %v (%s)", i, n, addr, t.Name))
	}
	return addr + Addr((base+i)*WordBytes)
}

// GetData reads data word i of the object at addr.
func (s *Space) GetData(addr Addr, i int) uint32 { return s.Word(s.dataSlotAddr(addr, i)) }

// SetData writes data word i of the object at addr.
func (s *Space) SetData(addr Addr, i int, v uint32) { s.SetWord(s.dataSlotAddr(addr, i), v) }

// DataWords returns the number of data words of the object at addr.
func (s *Space) DataWords(addr Addr) int {
	t := s.TypeOf(addr)
	switch t.Kind {
	case Scalar:
		return t.DataWords
	case WordArray:
		return s.Length(addr)
	default:
		return 0
	}
}

// Forwarded reports whether the object at addr has been forwarded.
func (s *Space) Forwarded(addr Addr) bool { return s.Word(addr)&fwdFlag != 0 }

// Forwarding returns the forwarding address of a forwarded object.
func (s *Space) Forwarding(addr Addr) Addr {
	if !s.Forwarded(addr) {
		panic(fmt.Sprintf("heap: Forwarding on unforwarded object at %v", addr))
	}
	return Addr(s.Word(addr + hdrLenOff))
}

// SetForwarding marks the object at addr forwarded to dst, clobbering W1.
func (s *Space) SetForwarding(addr, dst Addr) {
	if s.Forwarded(addr) {
		panic(fmt.Sprintf("heap: double forwarding at %v", addr))
	}
	s.SetWord(addr, s.Word(addr)|fwdFlag)
	s.SetWord(addr+hdrLenOff, uint32(dst))
}

// CopyObject copies the object at src to dst (already reserved, zeroed
// memory) and returns its size in bytes. The source header must not yet
// be forwarded; the caller installs the forwarding pointer afterwards.
func (s *Space) CopyObject(src, dst Addr) int {
	size := s.SizeOf(src)
	for off := 0; off < size; off += WordBytes {
		s.SetWord(dst+Addr(off), s.Word(src+Addr(off)))
	}
	return size
}

// WalkObjects calls fn for each object formatted consecutively in
// [start, limit). It is the Cheney scan-pointer walk: fn receives the
// object address and must not move it. Walking stops early if fn returns
// false.
func (s *Space) WalkObjects(start, limit Addr, fn func(obj Addr) bool) {
	for a := start; a < limit; {
		if !fn(a) {
			return
		}
		a += Addr(s.SizeOf(a))
	}
}
