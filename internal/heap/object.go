package heap

import "fmt"

// Object layout, in words:
//
//	W0: header — bits 0..23 type id, bit 31 forwarded flag
//	W1: array length in elements (0 for scalars); when the forwarded flag
//	    is set, W1 instead holds the forwarding address
//	W2: serial — a unique allocation number used by the validation oracle
//	    and for deterministic debugging
//	W3..: reference slots, then data words (per the type descriptor)
//
// The forwarding encoding clobbers W1 exactly the way real copying
// collectors clobber from-space objects: once an object is forwarded its
// old body is unreadable, and only the (flag, forwarding address) pair
// survives.
const (
	headerWords = 3
	// HeaderBytes is the per-object header overhead.
	HeaderBytes = headerWords * WordBytes

	typeMask  = 0x00ffffff
	fwdFlag   = 0x80000000
	hdrLenOff = 1 * WordBytes
	hdrSerOff = 2 * WordBytes
)

// Format writes a fresh object header at addr. The body (slots and data)
// is expected to be zero, which bump allocation into freshly mapped
// frames guarantees.
func (s *Space) Format(addr Addr, t *TypeDesc, length int, serial uint32) {
	if t.Kind == Scalar && length != 0 {
		panic(fmt.Sprintf("heap: scalar %s formatted with length %d", t.Name, length))
	}
	if length < 0 {
		panic("heap: negative array length")
	}
	slab, off := s.slabAt(addr, true)
	slab[off] = uint32(t.ID)
	slab[off+1] = uint32(length)
	slab[off+2] = serial
}

// Header decodes the object header at addr in one pass: its type
// descriptor and array length. This is the accessor the collector's hot
// paths use — one slab resolve and one registry lookup per object,
// instead of one of each per SizeOf/NumRefs/Length call.
func (s *Space) Header(addr Addr) (*TypeDesc, int) {
	slab, off := s.slabAt(addr, false)
	h := slab[off]
	if h&fwdFlag != 0 {
		panic(fmt.Sprintf("heap: TypeOf on forwarded object at %v", addr))
	}
	return s.Types.Get(TypeID(h & typeMask)), int(slab[off+1])
}

// TypeOf returns the type descriptor of the object at addr.
func (s *Space) TypeOf(addr Addr) *TypeDesc {
	t, _ := s.Header(addr)
	return t
}

// Length returns the array length of the object at addr (0 for scalars).
func (s *Space) Length(addr Addr) int { return int(s.Word(addr + hdrLenOff)) }

// Serial returns the allocation serial of the object at addr.
func (s *Space) Serial(addr Addr) uint32 { return s.Word(addr + hdrSerOff) }

// SizeOf returns the total size in bytes of the object at addr.
func (s *Space) SizeOf(addr Addr) int {
	t, length := s.Header(addr)
	return t.Size(length)
}

// NumRefs returns the number of reference slots of the object at addr.
func (s *Space) NumRefs(addr Addr) int {
	t, length := s.Header(addr)
	return t.NumRefs(length)
}

// RefSlotAddr returns the address of reference slot i of the object at
// addr. Remembered sets store these slot addresses.
func (s *Space) RefSlotAddr(addr Addr, i int) Addr {
	return addr + Addr((headerWords+i)*WordBytes)
}

// CheckRefSlot panics unless i is a valid reference slot of the object
// at addr, and returns the slot's address. Barrier code validates once
// through this and then uses raw Word/SetWord on the returned address.
func (s *Space) CheckRefSlot(addr Addr, i int) Addr {
	t, length := s.Header(addr)
	if n := t.NumRefs(length); i < 0 || i >= n {
		panic(fmt.Sprintf("heap: ref slot %d out of range [0,%d) at %v (%s)",
			i, n, addr, t.Name))
	}
	return s.RefSlotAddr(addr, i)
}

// GetRef reads reference slot i of the object at addr.
func (s *Space) GetRef(addr Addr, i int) Addr {
	return Addr(s.Word(s.CheckRefSlot(addr, i)))
}

// SetRef writes reference slot i of the object at addr. This is the raw
// store; write barriers live above this package.
func (s *Space) SetRef(addr Addr, i int, v Addr) {
	s.SetWord(s.CheckRefSlot(addr, i), uint32(v))
}

// dataSlotAddr returns the address of data word i.
func (s *Space) dataSlotAddr(addr Addr, i int) Addr {
	t, length := s.Header(addr)
	var n, base int
	switch t.Kind {
	case Scalar:
		base, n = headerWords+t.RefSlots, t.DataWords
	case WordArray:
		base, n = headerWords, length
	default:
		panic(fmt.Sprintf("heap: data access on %s (%s)", t.Name, t.Kind))
	}
	if i < 0 || i >= n {
		panic(fmt.Sprintf("heap: data word %d out of range [0,%d) at %v (%s)", i, n, addr, t.Name))
	}
	return addr + Addr((base+i)*WordBytes)
}

// GetData reads data word i of the object at addr.
func (s *Space) GetData(addr Addr, i int) uint32 { return s.Word(s.dataSlotAddr(addr, i)) }

// SetData writes data word i of the object at addr.
func (s *Space) SetData(addr Addr, i int, v uint32) { s.SetWord(s.dataSlotAddr(addr, i), v) }

// DataWords returns the number of data words of the object at addr.
func (s *Space) DataWords(addr Addr) int {
	t, length := s.Header(addr)
	switch t.Kind {
	case Scalar:
		return t.DataWords
	case WordArray:
		return length
	default:
		return 0
	}
}

// Forwarded reports whether the object at addr has been forwarded.
func (s *Space) Forwarded(addr Addr) bool { return s.Word(addr)&fwdFlag != 0 }

// Forwarding returns the forwarding address of a forwarded object.
func (s *Space) Forwarding(addr Addr) Addr {
	if !s.Forwarded(addr) {
		panic(fmt.Sprintf("heap: Forwarding on unforwarded object at %v", addr))
	}
	return Addr(s.Word(addr + hdrLenOff))
}

// SetForwarding marks the object at addr forwarded to dst, clobbering W1.
func (s *Space) SetForwarding(addr, dst Addr) {
	if s.Forwarded(addr) {
		panic(fmt.Sprintf("heap: double forwarding at %v", addr))
	}
	slab, off := s.slabAt(addr, true)
	slab[off] |= fwdFlag
	slab[off+1] = uint32(dst)
}

// CopyObject copies the object at src to dst (already reserved, zeroed
// memory) and returns its size in bytes. The source header must not yet
// be forwarded; the caller installs the forwarding pointer afterwards.
func (s *Space) CopyObject(src, dst Addr) int {
	size := s.SizeOf(src)
	s.CopyBytes(src, dst, size)
	return size
}

// CopyBytes copies size bytes (a word multiple) from src to dst. When
// both ranges lie within one frame — always true for ordinary objects,
// which never span frames — it is a single copy() over the word slabs.
func (s *Space) CopyBytes(src, dst Addr, size int) {
	nw := uint32(size) >> WordShift
	ss, so := s.slabAt(src, false)
	ds, do := s.slabAt(dst, true)
	if so+nw <= uint32(len(ss)) && do+nw <= uint32(len(ds)) {
		copy(ds[do:do+nw], ss[so:so+nw])
		return
	}
	// Frame-spanning range (large objects): fall back to word stores.
	for off := Addr(0); off < Addr(size); off += WordBytes {
		s.SetWord(dst+off, s.Word(src+off))
	}
}

// WalkObjects calls fn for each object formatted consecutively in
// [start, limit). It is the Cheney scan-pointer walk: fn receives the
// object address and must not move it. Walking stops early if fn returns
// false.
func (s *Space) WalkObjects(start, limit Addr, fn func(obj Addr) bool) {
	s.WalkObjectsTyped(start, limit, func(obj Addr, _ *TypeDesc, _ int) bool {
		return fn(obj)
	})
}

// WalkObjectsTyped is WalkObjects with the header pre-decoded: fn also
// receives the object's type descriptor and array length, so scan loops
// need no further registry lookups per object.
func (s *Space) WalkObjectsTyped(start, limit Addr, fn func(obj Addr, t *TypeDesc, length int) bool) {
	for a := start; a < limit; {
		t, length := s.Header(a)
		if !fn(a, t, length) {
			return
		}
		a += Addr(t.Size(length))
	}
}
