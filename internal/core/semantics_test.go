package core_test

import (
	"errors"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/generational"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// TestBSSBehavesLikeSemiSpace checks the §3.1 equivalence: BSS has one
// belt with one increment, collects everything when the heap fills, and
// its dynamic copy reserve converges to the classic half heap.
func TestBSSBehavesLikeSemiSpace(t *testing.T) {
	m, types, h := newMutator(t, collectors.BSS(testOptions(256)))
	maxPreGCReserve := 0
	h.SetHooks(gc.Hooks{PreGC: func() {
		if r := h.ReserveBytes(); r > maxPreGCReserve {
			maxPreGCReserve = r
		}
	}})
	node := types.DefineScalar("ss", 0, 13)
	err := m.Run(func() {
		var keep []gc.Handle
		for i := 0; i < 8000; i++ {
			hd := m.AllocGlobal(node, 0)
			if i%8 == 0 {
				keep = append(keep, hd)
			} else {
				m.Release(hd)
			}
			if len(keep) > 300 {
				m.Release(keep[0])
				keep = keep[1:]
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Collections() < 2 {
		t.Fatalf("only %d collections", h.Collections())
	}
	// Every collection of a single-belt single-increment collector
	// condemns the whole heap.
	if got := h.Clock().Counters.FullCollections; got != h.Collections() {
		t.Errorf("BSS: %d of %d collections were full; want all", got, h.Collections())
	}
	// The semi-space invariant: at collection time the dynamic reserve
	// has converged to (within a few frames of) the classic half heap.
	half := 256 * 1024 / 2
	if maxPreGCReserve < half-6*4096 || maxPreGCReserve > half {
		t.Errorf("BSS reserve at collection %d, want ~%d (half heap)", maxPreGCReserve, half)
	}
	// One belt, at most... exactly 1 increment between collections.
	if n := h.Belts()[0].Len(); n != 1 {
		t.Errorf("BSS holds %d increments, want 1", n)
	}
}

// TestBA2MatchesAppelCollections checks §4.2.1: Beltway 100.100 (the BA2
// configuration) behaves like the independently-implemented Appel
// baseline — same collection counts within a small tolerance (barrier
// and reserve details differ slightly) and similar copied volume.
func TestBA2MatchesAppelCollections(t *testing.T) {
	run := func(cfg core.Config) (uint64, uint64) {
		m, types, h := newMutator(t, cfg)
		node := types.DefineScalar("n", 1, 6)
		err := m.Run(func() {
			var keep []gc.Handle
			for i := 0; i < 20000; i++ {
				hd := m.AllocGlobal(node, 0)
				if i%10 == 0 {
					keep = append(keep, hd)
				} else {
					m.Release(hd)
				}
				if len(keep) > 500 {
					m.Release(keep[0])
					keep = keep[1:]
				}
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		return h.Collections(), h.Clock().Counters.BytesCopied
	}
	// Give BA2 the same fixed half reserve as the baseline so only the
	// barrier mechanism differs.
	ba2 := collectors.BA2(testOptions(512))
	ba2.FixedHalfReserve = true
	gcsB, copiedB := run(ba2)
	gcsA, copiedA := run(generational.Appel(testOptions(512)))
	if gcsA == 0 || gcsB == 0 {
		t.Fatalf("no collections: appel=%d ba2=%d", gcsA, gcsB)
	}
	ratio := float64(gcsB) / float64(gcsA)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("BA2 %d collections vs Appel %d; outside tolerance", gcsB, gcsA)
	}
	cr := float64(copiedB) / float64(copiedA)
	if cr < 0.6 || cr > 1.6 {
		t.Errorf("BA2 copied %d vs Appel %d; outside tolerance", copiedB, copiedA)
	}
}

// TestXXIncompleteOnCrossIncrementCycles reproduces the paper's §4.2.4
// observation: Beltway X.X cannot reclaim garbage cycles that span
// increments, while Beltway X.X.100 eventually does.
func TestXXIncompleteOnCrossIncrementCycles(t *testing.T) {
	build := func(cfg core.Config) *core.Heap {
		types := heap.NewRegistry()
		h, err := core.New(cfg, types)
		if err != nil {
			t.Fatal(err)
		}
		m := vm.New(h)
		node := types.DefineScalar("cyc", 2, 4)
		filler := types.DefineScalar("fil", 0, 14)
		err = m.Run(func() {
			// Build many 2-node cycles, forcing a nursery collection
			// between the two halves so the cycle spans increments,
			// then drop all roots.
			for c := 0; c < 60; c++ {
				a := m.AllocGlobal(node, 0)
				// Force promotion pressure between the halves.
				m.Push()
				for i := 0; i < 700; i++ {
					m.Alloc(filler, 0)
				}
				m.Pop()
				b := m.AllocGlobal(node, 0)
				m.SetRef(a, 0, b)
				m.SetRef(b, 0, a)
				m.Release(a)
				m.Release(b)
			}
			// Churn with medium-lived survivors: data flows through the
			// belts, so a complete collector eventually fills and
			// collects its top belt (reclaiming the cycles), while the
			// incomplete one only ever shuffles belt-1 increments.
			var keep []gc.Handle
			for i := 0; i < 20000; i++ {
				hd := m.AllocGlobal(filler, 0)
				if i%4 == 0 {
					keep = append(keep, hd)
				} else {
					m.Release(hd)
				}
				if len(keep) > 800 {
					m.Release(keep[0])
					keep = keep[1:]
				}
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		return h
	}

	count := func(h *core.Heap) int {
		n := 0
		h.ForEachObject(func(a heap.Addr) bool {
			if h.Space().TypeOf(a).Name == "cyc" {
				n++
			}
			return true
		})
		return n
	}

	hxx := build(collectors.XX(25, testOptions(512)))
	hc := build(collectors.XX100(25, testOptions(512)))
	leftXX, leftC := count(hxx), count(hc)
	t.Logf("dead cycle nodes retained: X.X=%d, X.X.100=%d", leftXX, leftC)
	if leftXX == 0 {
		t.Errorf("Beltway 25.25 reclaimed all cross-increment cycles; expected retention (incompleteness)")
	}
	if leftC >= leftXX {
		t.Errorf("Beltway 25.25.100 retained %d cycle nodes, not fewer than 25.25's %d",
			leftC, leftXX)
	}
}

// TestBOFBeltFlip drives BOF until its allocation belt empties and
// verifies the belts swap roles (the §3.1 "flip") and that data survives
// across flips.
func TestBOFBeltFlip(t *testing.T) {
	m, types, h := newMutator(t, collectors.BOF(25, testOptions(256)))
	node := types.DefineScalar("bof", 1, 6)
	initial := h.AllocBeltIndex()
	flipped := false
	err := m.Run(func() {
		var keep []gc.Handle
		for i := 0; i < 60000; i++ {
			hd := m.AllocGlobal(node, 0)
			m.SetData(hd, 0, uint32(i))
			if i%8 == 0 {
				keep = append(keep, hd)
			} else {
				m.Release(hd)
			}
			if len(keep) > 600 {
				// Verify an old survivor before dropping it.
				old := keep[0]
				if got := m.GetData(old, 0); got%8 != 0 {
					t.Fatalf("survivor corrupted: %d", got)
				}
				m.Release(old)
				keep = keep[1:]
			}
			if h.AllocBeltIndex() != initial {
				flipped = true
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !flipped {
		t.Error("BOF never flipped belts")
	}
	if h.Collections() == 0 {
		t.Error("BOF never collected")
	}
}

// TestFIFOCollectionOrder verifies belts collect increments strictly
// oldest-first: under BOFM (one belt, many increments), the oldest
// increment's seq must be the minimum on the belt at every collection.
func TestFIFOCollectionOrder(t *testing.T) {
	cfg := collectors.BOFM(20, testOptions(256))
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	var collectedSeqs []uint32
	h.SetHooks(gc.Hooks{PreGC: func() {
		b := h.Belts()[0]
		if b.Len() > 0 {
			collectedSeqs = append(collectedSeqs, b.Oldest().Seq())
		}
	}})
	m := vm.New(h)
	node := types.DefineScalar("fifo", 0, 10)
	err = m.Run(func() {
		for i := 0; i < 40000; i++ {
			m.Push()
			m.Alloc(node, 0)
			m.Pop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(collectedSeqs) < 3 {
		t.Fatalf("too few collections to check FIFO: %d", len(collectedSeqs))
	}
	for i := 1; i < len(collectedSeqs); i++ {
		if collectedSeqs[i] <= collectedSeqs[i-1] {
			t.Errorf("collection %d condemned seq %d after seq %d; not FIFO",
				i, collectedSeqs[i], collectedSeqs[i-1])
		}
	}
}

// TestOOMReportsCleanly checks that an impossible live set produces
// ErrOutOfMemory (not a panic) on every configuration.
func TestOOMReportsCleanly(t *testing.T) {
	for _, cfg := range allConfigs(64) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			types := heap.NewRegistry()
			h, err := core.New(cfg, types)
			if err != nil {
				t.Fatal(err)
			}
			m := vm.New(h)
			node := types.DefineScalar("oom", 0, 30)
			err = m.Run(func() {
				for i := 0; ; i++ {
					m.AllocGlobal(node, 0) // never released: unbounded live set
				}
			})
			if !errors.Is(err, gc.ErrOutOfMemory) {
				t.Fatalf("want ErrOutOfMemory, got %v", err)
			}
		})
	}
}

// TestDynamicReserveFallsAfterTopBeltCollection checks the §3.3.4 claim
// directly: in X.X.100 the reserve is usually the small increment size,
// grows as data accumulates on the third belt, and "after we collect the
// third belt, the copy reserve automatically falls back to a smaller
// size".
func TestDynamicReserveFallsAfterTopBeltCollection(t *testing.T) {
	m, types, h := newMutator(t, collectors.XX100(25, testOptions(512)))
	node := types.DefineScalar("res", 0, 12)
	floor := h.ReserveBytes() // empty-heap reserve: the analytic floor
	err := m.Run(func() {
		// Permanent ballast, then forced collections to drain belts 0
		// and 1 so the ballast accumulates on the third belt.
		var ballast []gc.Handle
		for i := 0; i < 3000; i++ {
			ballast = append(ballast, m.AllocGlobal(node, 0))
		}
		for i := 0; i < 8; i++ {
			m.Collect(false)
		}
		if b2 := h.Belts()[2].Bytes(); b2 == 0 {
			t.Fatal("ballast never reached the third belt")
		}
		grown := h.ReserveBytes()
		if grown <= floor {
			t.Fatalf("reserve %d did not grow above the floor %d as the third belt filled",
				grown, floor)
		}

		// Release the ballast; the next third-belt collection reclaims
		// it and the reserve falls back.
		for _, b := range ballast {
			m.Release(b)
		}
		for i := 0; i < 8; i++ {
			m.Collect(false)
		}
		fallen := h.ReserveBytes()
		if fallen >= grown {
			t.Errorf("reserve did not fall back after the third belt was collected: %d -> %d",
				grown, fallen)
		}
		if fallen > floor+4*4096 {
			t.Errorf("reserve %d did not return near the floor %d", fallen, floor)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReflectsStructure checks the read-only Snapshot view.
func TestSnapshotReflectsStructure(t *testing.T) {
	m, types, h := newMutator(t, collectors.XX100(25, testOptions(512)))
	node := types.DefineScalar("snap", 0, 6)
	err := m.Run(func() {
		var keep []gc.Handle
		for i := 0; i < 8000; i++ {
			hd := m.AllocGlobal(node, 0)
			if i%5 == 0 {
				keep = append(keep, hd)
			} else {
				m.Release(hd)
			}
			if len(keep) > 800 {
				m.Release(keep[0])
				keep = keep[1:]
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	if len(snap.Belts) != 3 {
		t.Fatalf("%d belts in snapshot", len(snap.Belts))
	}
	if snap.HeapBytes != 512*1024 || snap.ReserveBytes != h.ReserveBytes() {
		t.Error("header fields wrong")
	}
	for bi, b := range snap.Belts {
		if b.Index != bi || b.PromoteTo != h.Belts()[bi].PromoteTo() {
			t.Errorf("belt %d metadata wrong", bi)
		}
		total := 0
		for _, in := range b.Increments {
			total += in.Bytes
			if in.Train != -1 {
				t.Error("non-MOS increment reports a train")
			}
		}
		if total != b.Bytes || total != h.Belts()[bi].Bytes() {
			t.Errorf("belt %d byte accounting: %d vs %d", bi, total, b.Bytes)
		}
	}
}
