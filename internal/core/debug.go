package core

import (
	"fmt"

	"beltway/internal/heap"
)

// CheckInvariants walks the entire heap and verifies the structural
// invariants the collector relies on. It is expensive (a full heap scan)
// and exists for tests; production paths never call it.
//
// Checked invariants:
//
//  1. Frame bookkeeping: every frame of every increment is mapped,
//     carries the owning increment in incrOf, and carries the stamp
//     derived from its belt priority and increment seq; immortal frames
//     carry the maximal stamp.
//
//  2. Increment bookkeeping: bump cursor within the last frame, byte
//     accounting equal to the sum of formatted object sizes, FIFO seq
//     strictly increasing along each belt.
//
//  3. The remembered-set invariant (the heart of §3.3.1): for every
//     reference slot holding a pointer whose target frame would be
//     collected before the slot's frame (stamp(target) < stamp(source)),
//     an entry for that slot must be present in the (source, target)
//     remembered set — except boot-image sources under the boundary
//     barrier, which are covered by the full boot scan instead.
//
//  4. No object is marked forwarded outside a collection.
func (h *Heap) CheckInvariants() error {
	if h.inGC {
		return fmt.Errorf("core: CheckInvariants during collection")
	}

	// 1 & 2: frames and increments.
	for bi, b := range h.belts {
		var prevSeq int64 = -1
		for _, in := range b.incrs {
			if in.belt != bi {
				return fmt.Errorf("core: %v on belt %d records belt %d", in, bi, in.belt)
			}
			if int64(in.seq) <= prevSeq {
				return fmt.Errorf("core: belt %d seq not increasing: %d after %d", bi, in.seq, prevSeq)
			}
			prevSeq = int64(in.seq)
			if in.condemned {
				return fmt.Errorf("core: %v condemned outside a collection", in)
			}
			wantStamp := stampOf(b.priority, in.seq)
			bytes := 0
			for fi, f := range in.frames {
				if !h.space.Mapped(f) {
					return fmt.Errorf("core: %v frame %d unmapped", in, f)
				}
				if h.incrOf[f] != in {
					return fmt.Errorf("core: frame %d owner mismatch", f)
				}
				if h.stamp[f] != wantStamp {
					return fmt.Errorf("core: frame %d stamp %#x, want %#x", f, h.stamp[f], wantStamp)
				}
				base := h.space.FrameBase(f)
				if fs := h.mrFrame(f); fs != nil {
					// Mark-region frame: occupancy is line-granular, the
					// bump window may sit in any frame's hole (so no
					// cursor==fill relation), and objects are found
					// through the start bitmap, not a linear walk.
					var err error
					fs.ForEachObject(func(off int) bool {
						obj := base + heap.Addr(off)
						if h.space.Forwarded(obj) {
							err = fmt.Errorf("core: %v forwarded outside GC", obj)
							return false
						}
						if last := off + h.space.SizeOf(obj) - 1; fs.Geometry().LineOf(last) >= fs.Lines() {
							err = fmt.Errorf("core: %v overruns frame %d", obj, f)
							return false
						}
						return true
					})
					if err != nil {
						return err
					}
					bytes += fs.UsedLines() * h.mr.geo.LineBytes
					continue
				}
				fill := h.fill[f]
				if fill < base || fill > h.space.FrameLimit(f) {
					return fmt.Errorf("core: frame %d fill %v out of range", f, fill)
				}
				if fi == len(in.frames)-1 && in.cursor != fill {
					return fmt.Errorf("core: %v cursor %v != fill %v of last frame", in, in.cursor, fill)
				}
				var err error
				h.space.WalkObjects(base, fill, func(obj heap.Addr) bool {
					if h.space.Forwarded(obj) {
						err = fmt.Errorf("core: %v forwarded outside GC", obj)
						return false
					}
					bytes += h.space.SizeOf(obj)
					return true
				})
				if err != nil {
					return err
				}
			}
			if bytes != in.bytes {
				return fmt.Errorf("core: %v accounts %d bytes, found %d", in, in.bytes, bytes)
			}
		}
	}

	// 3: the remembered-set invariant, over heap and boot objects.
	// Exempt while the heap is in remset-overflow degradation: entries
	// were deliberately dropped, and the condemn-everything mode covers
	// them until a full collection clears the flag.
	if h.deg.remsetOverflow {
		return nil
	}
	var err error
	h.ForEachObject(func(obj heap.Addr) bool {
		n := h.space.NumRefs(obj)
		for i := 0; i < n; i++ {
			val := h.space.GetRef(obj, i)
			if val == heap.Nil {
				continue
			}
			s := h.space.FrameOf(h.space.RefSlotAddr(obj, i)) // slot's frame (spans differ)
			t := h.space.FrameOf(val)
			if s == t || h.stamp[t] >= h.stamp[s] {
				continue // not interesting
			}
			if h.cfg.Barrier == BoundaryBarrier && h.immortal[s] {
				continue // covered by the boot scan
			}
			slot := h.space.RefSlotAddr(obj, i)
			if h.cfg.Barrier == CardBarrier {
				if !h.cards[uint32(slot)>>cardShift] {
					err = fmt.Errorf("core: interesting pointer at %v slot %d not on a dirty card", obj, i)
					return false
				}
				continue
			}
			if !h.rems.Contains(s, t, slot) {
				err = fmt.Errorf("core: missing remset entry: %v slot %d (%v in frame %d, stamp %#x) -> %v (frame %d, stamp %#x)",
					obj, i, slot, s, h.stamp[s], val, t, h.stamp[t])
				return false
			}
		}
		return true
	})
	return err
}
