package core

import "beltway/internal/heap"

// Mature Object Space (MOS) belt — the paper's stated future work:
// "One possibility that we leave to future work is adding Mature Object
// Space [Hudson & Moss 1992] copying rules to Beltway so as to obtain
// completeness without full-heap collections" (§5; also §3.2).
//
// With Config.MOS set, the top belt's increments become the train
// algorithm's CARS, grouped into TRAINS:
//
//   - collection order is lowest train first, cars FIFO within a train
//     (the belt's increment list is kept in exactly that order, so the
//     frame-stamp barrier and the FIFO scheduler work unchanged);
//
//   - survivors of a collected car are evacuated by REFERRER: an object
//     referenced from another car moves to the back of the REFERRER's
//     train; an object referenced from outside the mature space (roots,
//     younger belts, the boot image) moves to the back of the LAST train
//     (or a fresh train when the last train is the one being collected);
//     transitively-reached objects follow the object that reached them;
//
//   - before collecting a car, the whole lowest train is tested for
//     death: if the younger belts are empty, no root points into the
//     train, and no remembered pointer enters it from outside the train,
//     every car of the train is condemned at once. Cross-car garbage
//     cycles migrate into a single train under the referrer rule and die
//     there — which is how MOS achieves completeness while only ever
//     collecting one car (or one dead train) at a time.
type mosState struct {
	nextTrain int
	// carsPerTrain bounds the last train's growth for promotions; when
	// reached, newly promoted objects open a fresh train.
	carsPerTrain int
}

// mosBelt returns the index of the MOS belt (the top belt), or -1.
func (h *Heap) mosBelt() int {
	if !h.cfg.MOS {
		return -1
	}
	return len(h.belts) - 1
}

// renumberMOS reassigns dense seq numbers (and frame stamps) to the MOS
// belt's cars after an insertion. Insertions never reorder existing
// cars, so previously taken barrier decisions stay sound; only the new
// car acquires an intermediate position.
func (h *Heap) renumberMOS() {
	b := h.belts[h.mosBelt()]
	for i, in := range b.incrs {
		in.seq = uint32(i)
		st := stampOf(b.priority, in.seq)
		for _, f := range in.frames {
			h.stamp[f] = st
		}
	}
	b.nextSeq = uint32(len(b.incrs))
}

// newMOSCar creates a car on the given train, inserted after the train's
// existing cars (before any later train's cars), and renumbers.
func (h *Heap) newMOSCar(train int) *Increment {
	bi := h.mosBelt()
	b := h.belts[bi]
	in := &Increment{belt: bi, train: train}
	if f := b.spec.IncrementFrac; f < 1.0 {
		usable := h.cfg.HeapBytes - h.reserveBytes
		in.capFrames = int(f*float64(usable)) / h.cfg.FrameBytes
		if in.capFrames < 1 {
			in.capFrames = 1
		}
	}
	// Insertion point: after the last car of `train`.
	pos := len(b.incrs)
	for i, c := range b.incrs {
		if c.train > train {
			pos = i
			break
		}
	}
	b.incrs = append(b.incrs, nil)
	copy(b.incrs[pos+1:], b.incrs[pos:])
	b.incrs[pos] = in
	h.renumberMOS()
	return in
}

// newTrain opens a fresh (highest) train with one car.
func (h *Heap) newTrain() *Increment {
	h.mos.nextTrain++
	return h.newMOSCar(h.mos.nextTrain - 1)
}

// lastTrain returns the highest train id currently on the MOS belt, or
// -1 when the belt is empty.
func (h *Heap) lastTrain() int {
	b := h.belts[h.mosBelt()]
	if b.Len() == 0 {
		return -1
	}
	return b.incrs[b.Len()-1].train
}

// trainCars returns the cars of one train, in collection order.
func (h *Heap) trainCars(train int) []*Increment {
	var cars []*Increment
	for _, in := range h.belts[h.mosBelt()].incrs {
		if in.train == train {
			cars = append(cars, in)
		}
	}
	return cars
}

// mosDestination resolves the evacuation car for a condemned MOS object,
// per the referrer rule. ctx is the increment holding the referrer (nil
// for roots and the boot image); src is the condemned car.
func (h *Heap) mosDestination(src *Increment, ctx *Increment, st *gcState) *Increment {
	bi := h.mosBelt()
	var train int
	switch {
	case ctx != nil && ctx.belt == bi && !ctx.condemned:
		// Referenced from another (surviving) mature car: move to the
		// back of the referrer's train, gathering linked structures —
		// and eventually whole cycles — into one train.
		train = ctx.train
	default:
		// External reference (root, younger belt, boot image, or a car
		// being collected alongside): move to the last train, or a new
		// one if the last train is the one being collected.
		train = h.lastTrain()
		if train < 0 || train == src.train {
			return h.mosTargetCar(-1, st)
		}
	}
	return h.mosTargetCar(train, st)
}

// mosTargetCar returns (creating if needed) the open destination car on
// the given train (-1 means a brand-new train), registered with the
// collection's scan list.
func (h *Heap) mosTargetCar(train int, st *gcState) *Increment {
	if train >= 0 {
		if in := st.mosDest[train]; in != nil {
			return in
		}
		cars := h.trainCars(train)
		if n := len(cars); n > 0 && !cars[n-1].condemned && !cars[n-1].atCapacity() {
			in := cars[n-1]
			st.mosDest[train] = in
			h.registerScan(in, st)
			return in
		}
		in := h.newMOSCar(train)
		st.mosDest[train] = in
		h.registerScan(in, st)
		return in
	}
	in := h.newTrain()
	st.mosDest[in.train] = in
	h.registerScan(in, st)
	return in
}

// bumpIntoCar allocates size bytes in the given destination car,
// extending it with frames or — past its capacity — with a sibling car
// on the same train.
func (h *Heap) bumpIntoCar(car *Increment, size int, st *gcState) (heap.Addr, error) {
	for {
		if car.cursor != heap.Nil && car.cursor+heap.Addr(size) <= car.limit {
			return h.bump(car, size), nil
		}
		if !car.atCapacity() {
			if err := h.gcAddFrame(car); err != nil {
				return heap.Nil, err
			}
			continue
		}
		car = h.newMOSCar(car.train)
		st.mosDest[car.train] = car
		h.registerScan(car, st)
	}
}

// trainIsDead reports whether the lowest train can be reclaimed without
// tracing: the younger belts hold no objects, no root points into the
// train, and no remembered pointer targets it from outside itself.
// (Stale remembered entries make the test conservative, never unsound.)
func (h *Heap) trainIsDead(train int) bool {
	bi := h.mosBelt()
	for i := 0; i < bi; i++ {
		if h.belts[i].Bytes() > 0 {
			return false
		}
	}
	inTrain := func(f heap.Frame) bool {
		if int(f) >= len(h.incrOf) {
			return false
		}
		in := h.incrOf[f]
		return in != nil && in.belt == bi && in.train == train
	}
	live := false
	h.roots.Walk(func(a heap.Addr) heap.Addr {
		if inTrain(h.space.FrameOf(a)) {
			live = true
		}
		return a
	})
	if live {
		return false
	}
	if h.rems.AnyEntry(func(src, tgt heap.Frame) bool {
		return inTrain(tgt) && !inTrain(src)
	}) {
		return false
	}
	return true
}

// chooseVictimsMOS picks the MOS belt's condemned set: the whole lowest
// train when it is dead, otherwise its lowest car.
func (h *Heap) chooseVictimsMOS() []*Increment {
	b := h.belts[h.mosBelt()]
	if b.Len() == 0 {
		return nil
	}
	lowest := b.incrs[0].train
	if h.trainIsDead(lowest) {
		return h.trainCars(lowest)
	}
	return []*Increment{b.Oldest()}
}
