package core

import (
	"beltway/internal/gc"
)

// nurseryMinBytes is the Appel-style "small fixed threshold" (§3.1):
// when the allocation belt's occupancy falls below it, collecting the
// nursery again would free too little, so the heap is considered full and
// the collection cascades to the next belt.
func (h *Heap) nurseryMinBytes() int {
	min := 2 * h.cfg.FrameBytes
	if frac := h.cfg.HeapBytes / 64; frac > min {
		min = frac
	}
	return min
}

// collectForAlloc runs one collection chosen by the configuration's
// scheduling rules, in response to a failed allocation.
func (h *Heap) collectForAlloc() error {
	victims := h.chooseVictims()
	if len(victims) == 0 {
		// Nothing on the belts. Under the ladder an unswept LOS may
		// still hold reclaimable bytes — an emergency (all-increments)
		// collection is the only trigger that sweeps it on demand.
		if h.cfg.Degrade && len(h.los.objects) > 0 {
			return h.emergencyCollect()
		}
		return h.oomError(0, h.cfg.Name+": heap full with nothing collectible")
	}
	if err := h.collect(victims, gc.TriggerHeapFull); err != nil {
		return err
	}
	return h.settleDegradation()
}

// chooseVictims picks the condemned set for a heap-full collection.
//
// The FIFO/stamp discipline makes pointers from lower belts (and from
// older increments of the same belt) into a collected increment
// *unremembered*, so an increment of belt k may only be collected when
// every lower belt is condemned with it (the paper keeps lower belts
// empty at that point; condemning their dregs together is the paper's
// §3.3.2 combining optimization and costs nothing when they are empty).
//
// The cascade is therefore: find the lowest belt whose occupancy is worth
// a collection (allocation belt: the Appel threshold; higher belts: any
// non-empty increment); condemn everything below it plus its oldest
// increment.
func (h *Heap) chooseVictims() []*Increment {
	if h.deg.remsetOverflow {
		// Dropped remembers make any incremental condemned set unsound —
		// a live object could be reclaimed because the pointer to it was
		// lost. Condemn everything until a full collection (plus the boot
		// and LOS scans in collect) re-establishes the invariant.
		var victims []*Increment
		for _, b := range h.belts {
			victims = append(victims, b.incrs...)
		}
		return victims
	}
	if h.cfg.OlderFirst {
		return h.chooseVictimsOF()
	}
	var victims []*Increment
	for bi, b := range h.belts {
		if b.Len() == 0 {
			continue
		}
		worth := h.cfg.FrameBytes
		if bi == h.allocBelt {
			worth = h.nurseryMinBytes()
		}
		if b.Bytes() >= worth || bi == len(h.belts)-1 {
			// Condemn this belt's oldest increment plus all of every
			// lower belt. A MOS top belt instead condemns the lowest
			// car — or the whole lowest train when it is dead.
			for _, lower := range h.belts[:bi] {
				victims = append(victims, lower.incrs...)
			}
			if h.cfg.MOS && bi == h.mosBelt() {
				victims = append(victims, h.chooseVictimsMOS()...)
			} else {
				victims = append(victims, b.Oldest())
			}
			return h.escalateForReservations(bi, victims)
		}
		// Belt not worth collecting alone: fold its increments into the
		// higher collection we cascade to.
	}
	// All belts below threshold but the heap is full: last resort, full
	// collection of everything non-empty.
	for _, b := range h.belts {
		victims = append(victims, b.incrs...)
	}
	return victims
}

// escalateForReservations widens the condemned set when the promotion
// target belt could not absorb the worst-case survivors because other
// belts' permanent reservations (BeltSpec.ReserveFrac) cap its size.
// This is the classic generational rule — when the mature space cannot
// take the nursery's survivors, the heap is considered full and the
// whole heap is collected — generalized to any belt chain.
func (h *Heap) escalateForReservations(k int, victims []*Increment) []*Increment {
	for {
		t := h.belts[k].promoteTo
		if t == k {
			return victims
		}
		otherReserve := 0.0
		for i, b := range h.belts {
			if i != t {
				otherReserve += b.spec.ReserveFrac
			}
		}
		if otherReserve == 0 {
			return victims
		}
		condemnedSet := make(map[*Increment]bool, len(victims))
		condemnedBytes := 0
		for _, in := range victims {
			condemnedSet[in] = true
			condemnedBytes += in.bytes
		}
		held := 0
		for _, in := range h.belts[t].incrs {
			if !condemnedSet[in] {
				held += len(in.frames) * h.cfg.FrameBytes
			}
		}
		beltCap := int((1 - otherReserve) * float64(h.cfg.HeapBytes-h.reserveBytes))
		if held+condemnedBytes <= beltCap {
			return victims
		}
		// Escalate: condemn the target belt in full as well.
		for _, in := range h.belts[t].incrs {
			if !condemnedSet[in] {
				victims = append(victims, in)
			}
		}
		k = t
	}
}

// chooseVictimsOF implements BOF scheduling (§3.1): collect the oldest
// increment ("window") of the allocation belt A; when A is empty, flip
// the belts — the copy belt C becomes the new A — and collect its oldest
// increment.
func (h *Heap) chooseVictimsOF() []*Increment {
	a := h.belts[h.allocBelt]
	if a.Len() == 0 && h.belts[1-h.allocBelt].Len() > 0 {
		// A is empty: flip, making the copy belt the new allocation
		// belt. The flip is only legal with A empty — pointers from A
		// into C are unremembered, so C may never be collected while A
		// holds objects.
		h.flipBelts()
		a = h.belts[h.allocBelt]
	}
	if old := a.Oldest(); old != nil {
		// Collecting A's oldest alone is safe: pointers from C and from
		// younger A increments into it carry higher stamps and are
		// remembered.
		return []*Increment{old}
	}
	return nil
}

// flipBelts swaps the allocation and copy roles of the two BOF belts and
// renumbers every live frame's collection-order stamp under the new
// priorities. The flip happens only when the retiring allocation belt is
// empty, so no remembered-set entry becomes unsound: the surviving
// frames keep their relative FIFO order within their belt, and the new
// copy belt is empty.
func (h *Heap) flipBelts() {
	other := 1 - h.allocBelt
	h.allocBelt = other
	h.belts[h.allocBelt].priority = 0
	h.belts[1-h.allocBelt].priority = 1
	h.belts[h.allocBelt].promoteTo = 1 - h.allocBelt
	h.belts[1-h.allocBelt].promoteTo = h.allocBelt
	for _, b := range h.belts {
		for _, in := range b.incrs {
			for _, f := range in.frames {
				h.stamp[f] = stampOf(b.priority, in.seq)
			}
		}
	}
	if h.hooks.Flip != nil {
		h.hooks.Flip(h.allocBelt, h.rems.TotalEntries())
	}
}

// pollRemsetTrigger implements the remset trigger (§3.3.3): when the
// number of remembered entries targeting a belt's oldest increment
// exceeds the threshold, collect it (with the required lower belts) even
// though the heap is not full. Returns true if a collection ran.
func (h *Heap) pollRemsetTrigger() (bool, error) {
	th := h.cfg.RemsetThreshold
	if h.deg.remsetOverflow {
		// Entry counts are meaningless while inserts have been dropped,
		// and every collection condemns everything anyway.
		return false, nil
	}
	if th <= 0 || h.rems.TotalEntries() <= th {
		return false, nil
	}
	for bi, b := range h.belts {
		old := b.Oldest()
		if old == nil {
			continue
		}
		// h.trigTargetFn is built once at construction and parameterized
		// through trigOld, so the allocation-path poll builds no closure.
		h.trigOld = old
		if h.rems.EntriesTargeting(h.trigTargetFn) > th {
			var victims []*Increment
			for _, lower := range h.belts[:bi] {
				victims = append(victims, lower.incrs...)
			}
			victims = append(victims, old)
			if err := h.collect(victims, gc.TriggerRemset); err != nil {
				return true, err
			}
			return true, h.settleDegradation()
		}
	}
	return false, nil
}

// Collect implements gc.Collector: a forced collection. With full set,
// every increment on every belt is condemned (the whole-heap collection a
// complete configuration occasionally performs); otherwise the scheduling
// policy picks as it would on heap-full.
func (h *Heap) Collect(full bool) error {
	if full {
		var victims []*Increment
		for _, b := range h.belts {
			victims = append(victims, b.incrs...)
		}
		if len(victims) == 0 && len(h.los.objects) == 0 {
			return nil
		}
		// An empty condemned set is still a valid full collection when
		// large objects exist: the trace marks and the sweep reclaims.
		if err := h.collect(victims, gc.TriggerForcedFull); err != nil {
			return err
		}
		return h.settleDegradation()
	}
	victims := h.chooseVictims()
	if len(victims) == 0 {
		return nil // nothing collectible: a forced collection is a no-op
	}
	if err := h.collect(victims, gc.TriggerForced); err != nil {
		return err
	}
	return h.settleDegradation()
}
