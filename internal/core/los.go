package core

import (
	"fmt"

	"beltway/internal/heap"
)

// Large object space (LOS). The paper's GCTk had none ("GCTk currently
// does not yet implement a large object space", §4.1), which forced
// large arrays to be chunked; this extension provides one, in the style
// the paper's Related Work cites [Hicks et al.]:
//
//   - objects larger than Config.LOSThresholdBytes are allocated in
//     dedicated spans of contiguous frames and are NEVER moved;
//
//   - LOS frames carry the maximal collection-order stamp (like the
//     boot image), so the frame barrier remembers LOS-to-heap pointers;
//     boundary-barrier configurations scan the LOS alongside the boot
//     image instead;
//
//   - LOS objects are reclaimed by mark-sweep piggybacked on full
//     collections (every increment condemned): the trace marks LOS
//     objects it reaches, marked LOS objects' own references are traced
//     (keeping their heap referents alive and marking LOS-to-LOS edges),
//     and unmarked objects are swept. Between full collections dead LOS
//     objects are retained — the same completeness trade the paper's
//     incremental configurations make.
type losObject struct {
	addr   heap.Addr
	frames int // span length
	size   int // object size in bytes
	marked bool
}

type losState struct {
	objects []*losObject
	byFrame map[heap.Frame]*losObject
	bytes   int
	// mark queue for the current full collection
	queue    []*losObject
	sweeping bool
}

// losThreshold returns the size above which objects go to the LOS
// (0 disables the LOS entirely).
func (h *Heap) losThreshold() int { return h.cfg.LOSThresholdBytes }

// inLOS reports whether a lies in a large object's span.
func (h *Heap) inLOS(a heap.Addr) bool {
	if h.los.byFrame == nil {
		return false
	}
	_, ok := h.los.byFrame[h.space.FrameOf(a)]
	return ok
}

// allocLOS allocates a large object in its own frame span.
func (h *Heap) allocLOS(t *heap.TypeDesc, length, size int) (heap.Addr, error) {
	c := &h.clock.Counters
	c.ObjectsAllocated++
	c.BytesAllocated += uint64(size)
	c.LOSBytesAllocated += uint64(size)
	h.clock.Advance(h.cfg.Costs.AllocByte*float64(size) + h.cfg.Costs.BarrierFast)
	h.chargePaging(size)

	nFrames := (size + h.cfg.FrameBytes - 1) / h.cfg.FrameBytes
	maxAttempts := 4 + 2*len(h.belts)
	for _, b := range h.belts {
		maxAttempts += b.Len()
	}
	for attempt := 0; ; attempt++ {
		if a, ok := h.tryAllocLOS(t, length, size, nFrames); ok {
			return a, nil
		}
		if attempt >= maxAttempts {
			break
		}
		if err := h.collectForAlloc(); err != nil {
			return heap.Nil, err
		}
	}
	if h.cfg.Degrade {
		a, ok, err := h.rescueAlloc(size, func() (heap.Addr, bool) {
			return h.tryAllocLOS(t, length, size, nFrames)
		})
		if err != nil {
			return heap.Nil, err
		}
		if ok {
			return a, nil
		}
	}
	return heap.Nil, h.oomError(size,
		fmt.Sprintf("%s: large object of %d frames found no space", h.cfg.Name, nFrames))
}

// tryAllocLOS maps and formats a large-object span without collecting,
// reporting false when the budget (or an injected map fault) refuses.
func (h *Heap) tryAllocLOS(t *heap.TypeDesc, length, size, nFrames int) (heap.Addr, bool) {
	if h.freeBudgetBytes() < nFrames*h.cfg.FrameBytes {
		return heap.Nil, false
	}
	f, ok := h.space.TryMapSpan(nFrames)
	if !ok {
		return heap.Nil, false // injected map failure: treat as heap-full
	}
	last := f + heap.Frame(nFrames-1)
	h.ensureFrameMeta(last)
	obj := &losObject{addr: h.space.FrameBase(f), frames: nFrames, size: size}
	if h.los.byFrame == nil {
		h.los.byFrame = make(map[heap.Frame]*losObject)
	}
	for i := 0; i < nFrames; i++ {
		fr := f + heap.Frame(i)
		h.stamp[fr] = immortalStamp
		h.immortal[fr] = true // boundary-barrier discipline: scanned, not remembered
		h.fill[fr] = h.space.FrameLimit(fr)
		h.los.byFrame[fr] = obj
	}
	// Only the first frame holds (the start of) the object; cap
	// its fill so object walks stop at the object's end.
	h.fill[f] = obj.addr + heap.Addr(size)
	h.los.objects = append(h.los.objects, obj)
	h.los.bytes += size
	h.heapFrames += nFrames
	h.clock.Advance(float64(nFrames) * h.cfg.Costs.FrameOp)
	h.serial++
	h.space.Format(obj.addr, t, length, h.serial)
	if !h.inGC {
		h.recomputeReserve()
	}
	return obj.addr, true
}

// markLOS marks the large object containing a, queueing it for scanning
// (its references keep heap objects and other LOS objects alive).
// No-op outside a sweeping (full) collection.
func (h *Heap) markLOS(a heap.Addr) {
	if !h.los.sweeping {
		return
	}
	obj := h.los.byFrame[h.space.FrameOf(a)]
	if obj == nil || obj.marked {
		return
	}
	obj.marked = true
	h.los.queue = append(h.los.queue, obj)
}

// drainLOSQueue scans newly marked large objects, forwarding condemned
// referents and marking LOS-to-LOS edges. Returns whether it advanced.
func (h *Heap) drainLOSQueue(st *gcState) (bool, error) {
	advanced := false
	for len(h.los.queue) > 0 {
		obj := h.los.queue[len(h.los.queue)-1]
		h.los.queue = h.los.queue[:len(h.los.queue)-1]
		advanced = true
		n := h.space.NumRefs(obj.addr)
		for i := 0; i < n; i++ {
			h.clock.Advance(h.cfg.Costs.ScanSlot)
			val := h.space.GetRef(obj.addr, i)
			if val == heap.Nil {
				continue
			}
			if h.isCondemned(val) {
				nv, err := h.forward(val, st, nil)
				if err != nil {
					return advanced, err
				}
				h.space.SetRef(obj.addr, i, nv)
				val = nv
				// The slot now holds a to-space pointer; re-apply the
				// barrier rule (LOS stamps are maximal, so heap
				// pointers out of large objects are always interesting).
				h.rescanSlot(h.space.RefSlotAddr(obj.addr, i), val)
			}
			h.markLOS(val)
		}
	}
	return advanced, nil
}

// sweepLOS frees unmarked large objects and resets marks.
func (h *Heap) sweepLOS() {
	if !h.los.sweeping {
		return
	}
	kept := h.los.objects[:0]
	for _, obj := range h.los.objects {
		if obj.marked {
			obj.marked = false
			kept = append(kept, obj)
			continue
		}
		f := h.space.FrameOf(obj.addr)
		for i := 0; i < obj.frames; i++ {
			fr := f + heap.Frame(i)
			h.rems.DeleteFrame(fr)
			delete(h.los.byFrame, fr)
			h.stamp[fr] = 0
			h.immortal[fr] = false
			h.fill[fr] = heap.Nil
		}
		h.space.UnmapSpan(f, obj.frames)
		h.heapFrames -= obj.frames
		h.los.bytes -= obj.size
		h.clock.Counters.LOSBytesSwept += uint64(obj.size)
		h.clock.Advance(float64(obj.frames) * h.cfg.Costs.FrameOp)
	}
	h.los.objects = kept
	h.los.sweeping = false
}

// LOSBytes returns the current large-object-space occupancy.
func (h *Heap) LOSBytes() int { return h.los.bytes }

// LOSObjects returns the number of live-or-unswept large objects.
func (h *Heap) LOSObjects() int { return len(h.los.objects) }
