package core_test

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
)

func losConfig(heapKB int, barrier core.BarrierKind) core.Config {
	cfg := collectors.XX100(25, testOptions(heapKB))
	cfg.Name += "+los"
	cfg.Barrier = barrier
	cfg.LOSThresholdBytes = cfg.FrameBytes / 2
	cfg.NurseryFilter = barrier == core.FrameBarrier
	return cfg
}

// TestLOSAllocationAndSpanAccess allocates objects bigger than a frame
// and verifies contiguous cross-frame access and address stability.
func TestLOSAllocationAndSpanAccess(t *testing.T) {
	m, types, h := newMutator(t, losConfig(512, core.FrameBarrier))
	big := types.DefineWordArray("big")
	n := 3 * 4096 / 4 // three frames of data words
	err := m.Run(func() {
		b := m.AllocGlobal(big, n)
		for i := 0; i < n; i += 97 {
			m.SetData(b, i, uint32(i))
		}
		addrBefore := h.Roots().Get(b)
		m.Collect(true)
		if h.Roots().Get(b) != addrBefore {
			t.Error("large object moved across a collection")
		}
		for i := 0; i < n; i += 97 {
			if got := m.GetData(b, i); got != uint32(i) {
				t.Fatalf("word %d = %d", i, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.LOSObjects() != 1 || h.LOSBytes() == 0 {
		t.Errorf("LOS bookkeeping: %d objects, %d bytes", h.LOSObjects(), h.LOSBytes())
	}
	if h.Clock().Counters.LOSBytesAllocated == 0 {
		t.Error("LOSBytesAllocated not counted")
	}
}

// TestLOSSweepReclaimsDeadObjects: dropped large objects are reclaimed
// at the next full collection, surviving ones are kept.
func TestLOSSweepReclaimsDeadObjects(t *testing.T) {
	m, types, h := newMutator(t, losConfig(512, core.FrameBarrier))
	big := types.DefineWordArray("big")
	err := m.Run(func() {
		keep := m.AllocGlobal(big, 2000)
		m.SetData(keep, 0, 42)
		var dead []gc.Handle
		for i := 0; i < 8; i++ {
			dead = append(dead, m.AllocGlobal(big, 2000))
		}
		if h.LOSObjects() != 9 {
			t.Fatalf("have %d LOS objects, want 9", h.LOSObjects())
		}
		for _, d := range dead {
			m.Release(d)
		}
		m.Collect(true) // full collection: sweep
		if h.LOSObjects() != 1 {
			t.Errorf("after sweep: %d LOS objects, want 1", h.LOSObjects())
		}
		if m.GetData(keep, 0) != 42 {
			t.Error("surviving large object corrupted")
		}
		if h.Clock().Counters.LOSBytesSwept == 0 {
			t.Error("LOSBytesSwept not counted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLOSPointersTracked: for all three barriers, a young object
// reachable only through a large object's slot must survive nursery
// collections, and a large object reachable only through another large
// object must survive sweeps.
func TestLOSPointersTracked(t *testing.T) {
	for _, barrier := range []core.BarrierKind{core.FrameBarrier, core.BoundaryBarrier, core.CardBarrier} {
		barrier := barrier
		t.Run(barrier.String(), func(t *testing.T) {
			m, types, h := newMutator(t, losConfig(512, barrier))
			bigRefs := types.DefineRefArray("bigrefs")
			leaf := types.DefineScalar("lleaf", 0, 1)
			filler := types.DefineScalar("lfill", 0, 14)
			err := m.Run(func() {
				lo := m.AllocGlobal(bigRefs, 1200) // > threshold: in LOS
				// LOS -> LOS edge.
				lo2 := m.AllocGlobal(bigRefs, 1200)
				m.SetRef(lo, 0, lo2)
				m.Release(lo2) // reachable only through lo
				for round := 0; round < 12; round++ {
					m.Push()
					l := m.Alloc(leaf, 0)
					m.SetData(l, 0, uint32(round))
					m.SetRef(lo, 1, l)
					m.Pop()
					m.Push()
					for i := 0; i < 500; i++ {
						m.Alloc(filler, 0)
					}
					m.Pop()
					m.Collect(false)
					m.Push()
					got := m.GetRef(lo, 1)
					if m.GetData(got, 0) != uint32(round) {
						t.Fatalf("round %d: young object via LOS slot lost/corrupt", round)
					}
					m.Pop()
				}
				m.Collect(true) // sweep; lo2 must survive via lo
				if m.RefIsNil(lo, 0) {
					t.Fatal("LOS->LOS edge lost")
				}
				if h.LOSObjects() != 2 {
					t.Errorf("after sweep: %d LOS objects, want 2", h.LOSObjects())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLOSDisabledRejectsHugeObjects preserves the old behavior when the
// LOS is off (as in the paper's GCTk).
func TestLOSDisabledRejectsHugeObjects(t *testing.T) {
	types := heap.NewRegistry()
	h, err := core.New(collectors.XX100(25, testOptions(256)), types)
	if err != nil {
		t.Fatal(err)
	}
	big := types.DefineWordArray("big")
	if _, err := h.Alloc(big, 4096); err == nil {
		t.Error("frame-oversized object accepted without a LOS")
	}
}

// TestLOSOOM: a large object that cannot fit returns ErrOutOfMemory.
func TestLOSOOM(t *testing.T) {
	m, types, _ := newMutator(t, losConfig(128, core.FrameBarrier))
	big := types.DefineWordArray("big")
	err := m.Run(func() {
		for {
			m.AllocGlobal(big, 4000)
		}
	})
	if err == nil {
		t.Fatal("no OOM")
	}
	var oom *gc.OOMError
	if !asOOM(err, &oom) {
		t.Fatalf("want OOMError, got %v", err)
	}
}

func asOOM(err error, target **gc.OOMError) bool {
	for err != nil {
		if e, ok := err.(*gc.OOMError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestLOSWithValidator runs a mixed small/large workload with the shadow
// oracle on — the validator's ForEachObject path must see LOS objects.
func TestLOSWithValidator(t *testing.T) {
	m, types, h := newMutator(t, losConfig(768, core.FrameBarrier))
	node := types.DefineScalar("ln", 2, 1)
	big := types.DefineRefArray("lbig")
	err := m.Run(func() {
		var keep []gc.Handle
		for i := 0; i < 4000; i++ {
			if i%200 == 0 {
				keep = append(keep, m.AllocGlobal(big, 1100))
			}
			hd := m.AllocGlobal(node, 0)
			if len(keep) > 0 && i%3 == 0 {
				m.SetRef(keep[len(keep)-1], i%1100, hd)
			}
			m.Release(hd)
			if len(keep) > 6 {
				m.Release(keep[0])
				keep = keep[1:]
			}
		}
		m.Collect(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Collections() == 0 {
		t.Error("no collections")
	}
}
