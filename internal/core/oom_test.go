package core_test

import (
	"errors"
	"strings"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
)

// Direct coverage for the four bare OOM return paths: each test drives
// one path to exhaustion and asserts the structured gc.OOMError fields
// and that the OOM hook fires exactly once per event.

// oomHeap builds a direct (validator-free) heap with an OOM-counting
// hook attached.
func oomHeap(t *testing.T, cfg core.Config) (*core.Heap, *heap.Registry, *int) {
	t.Helper()
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	oomCount := new(int)
	h.SetHooks(gc.Hooks{OOM: func(requested, heapBytes int) {
		*oomCount++
		if heapBytes != cfg.HeapBytes {
			t.Errorf("OOM hook heapBytes = %d, want %d", heapBytes, cfg.HeapBytes)
		}
	}})
	return h, types, oomCount
}

// fillRooted allocates rooted objects until the heap refuses, returning
// the terminal error (exactly one OOM event).
func fillRooted(t *testing.T, h *core.Heap, node *heap.TypeDesc) error {
	t.Helper()
	for i := 0; i < 100000; i++ {
		a, err := h.Alloc(node, 0)
		if err != nil {
			return err
		}
		h.Roots().AddGlobal(a)
	}
	t.Fatal("heap never filled")
	return nil
}

// assertOOM unwraps err into *gc.OOMError and checks the common fields.
func assertOOM(t *testing.T, err error, wantRequested, wantHeapBytes int, wantDetail string) *gc.OOMError {
	t.Helper()
	if !errors.Is(err, gc.ErrOutOfMemory) {
		t.Fatalf("error %v does not unwrap to ErrOutOfMemory", err)
	}
	var oe *gc.OOMError
	if !errors.As(err, &oe) {
		t.Fatalf("error %T is not *gc.OOMError", err)
	}
	if oe.Requested != wantRequested {
		t.Errorf("Requested = %d, want %d", oe.Requested, wantRequested)
	}
	if oe.HeapBytes != wantHeapBytes {
		t.Errorf("HeapBytes = %d, want %d", oe.HeapBytes, wantHeapBytes)
	}
	if !strings.Contains(oe.Detail, wantDetail) {
		t.Errorf("Detail = %q, want substring %q", oe.Detail, wantDetail)
	}
	if len(oe.Degradation) != 0 {
		t.Errorf("Degradation = %v, want empty without Config.Degrade", oe.Degradation)
	}
	return oe
}

func TestOOMAllocNoProgress(t *testing.T) {
	cfg := collectors.XX(25, testOptions(64))
	h, types, oomCount := oomHeap(t, cfg)
	node := types.DefineScalar("n", 2, 2)

	err := fillRooted(t, h, node)
	assertOOM(t, err, node.Size(0), cfg.HeapBytes, "no progress after repeated collections")
	if *oomCount != 1 {
		t.Errorf("OOM hook fired %d times, want 1", *oomCount)
	}
}

func TestOOMNothingCollectible(t *testing.T) {
	cfg := withLOS(collectors.XX100(25, testOptions(64)))
	h, types, oomCount := oomHeap(t, cfg)
	node := types.DefineScalar("n", 2, 2)
	big := types.DefineRefArray("big")

	// Exhaust the budget with rooted large objects: the belts stay empty,
	// so a failing small allocation finds nothing to condemn.
	bigLen := cfg.FrameBytes / heap.WordBytes // ~1 frame per object
	for i := 0; i < 1000; i++ {
		a, err := h.Alloc(big, bigLen)
		if err != nil {
			break
		}
		h.Roots().AddGlobal(a)
	}
	_, err := h.Alloc(node, 0)
	assertOOM(t, err, 0, cfg.HeapBytes, "heap full with nothing collectible")
	// The LOS fill ended with its own single OOM event; the small
	// allocation added exactly one more.
	if *oomCount != 2 {
		t.Errorf("OOM hook fired %d times, want 2 (one per failing allocation)", *oomCount)
	}
}

func TestOOMLargeObjectNoSpace(t *testing.T) {
	cfg := withLOS(collectors.XX100(25, testOptions(64)))
	h, types, oomCount := oomHeap(t, cfg)
	node := types.DefineScalar("n", 2, 2)
	big := types.DefineRefArray("big")

	if err := fillRooted(t, h, node); err == nil {
		t.Fatal("expected fill to end in OOM")
	}
	before := *oomCount
	bigLen := 2 * cfg.FrameBytes / heap.WordBytes
	_, err := h.Alloc(big, bigLen)
	assertOOM(t, err, big.Size(bigLen), cfg.HeapBytes, "found no space")
	if got := *oomCount - before; got != 1 {
		t.Errorf("OOM hook fired %d times for the LOS allocation, want 1", got)
	}
}

func TestOOMPretenuredNoSpace(t *testing.T) {
	cfg := collectors.XX100(25, testOptions(64))
	h, types, oomCount := oomHeap(t, cfg)
	node := types.DefineScalar("n", 2, 2)

	if err := fillRooted(t, h, node); err == nil {
		t.Fatal("expected fill to end in OOM")
	}
	before := *oomCount
	_, err := h.AllocPretenured(node, 0)
	assertOOM(t, err, node.Size(0), cfg.HeapBytes, "pretenured allocation found no space")
	if got := *oomCount - before; got != 1 {
		t.Errorf("OOM hook fired %d times for the pretenured allocation, want 1", got)
	}
}
