package core

import (
	"beltway/internal/gc"
	"beltway/internal/stats"
)

// Knob identifies one policy parameter a Tuner may retune at a
// collection boundary. The knobs are exactly the scheduling levers the
// paper exposes as command-line options (§3.3): belt/increment sizing,
// promotion targets, and the nursery/remset/time-to-die triggers.
type Knob uint8

const (
	KnobNone            Knob = iota
	KnobIncrementFrac        // per-belt: BeltSpec.IncrementFrac
	KnobMaxIncrements        // per-belt: BeltSpec.MaxIncrements
	KnobReserveFrac          // per-belt: BeltSpec.ReserveFrac
	KnobPromoteTo            // per-belt: BeltSpec.PromoteTo
	KnobRemsetThreshold      // global: Config.RemsetThreshold
	KnobTTDBytes             // global: Config.TTDBytes
)

func (k Knob) String() string {
	switch k {
	case KnobIncrementFrac:
		return "increment-frac"
	case KnobMaxIncrements:
		return "max-increments"
	case KnobReserveFrac:
		return "reserve-frac"
	case KnobPromoteTo:
		return "promote-to"
	case KnobRemsetThreshold:
		return "remset-threshold"
	case KnobTTDBytes:
		return "ttd-bytes"
	}
	return "none"
}

// KnobUpdate is one requested knob change. Belt indexes the target belt
// for per-belt knobs and is ignored (conventionally -1) for global ones.
// Value carries the new setting; integer knobs truncate it.
type KnobUpdate struct {
	Knob  Knob
	Belt  int
	Value float64
}

// TuneInput is the observation a Tuner receives at each collection
// boundary. Everything is a value copy: tuners never see live collector
// structures, so a buggy tuner can skew policy but not corrupt the heap.
type TuneInput struct {
	GC      uint64         // collection ordinal (1 = first collection)
	Now     float64        // cost-unit clock at the end of the collection
	Trigger gc.TriggerKind // what scheduled this collection
	Full    bool           // condemned set covered the whole collected heap
	End     gc.GCEndInfo   // the collection's GCEnd deltas

	HeapBytes      int // configured heap budget
	ReserveBytes   int // current dynamic copy reserve
	FrameBytes     int
	LiveBytes      int // post-collection belt occupancy (survivors + floating garbage)
	FootprintBytes int // mapped footprint, bytes (heap frames + boot image)

	Belts     []BeltSpec    // current knob values, lowest belt first
	Occupancy []gc.BeltStat // post-collection per-belt occupancy

	RemsetThreshold int
	TTDBytes        int

	OlderFirst bool
	MOS        bool

	Costs stats.CostModel
}

// Tuner is the adaptive-policy hook point: Config.Policy, when non-nil,
// is consulted at the end of every collection and may retune scheduling
// knobs for the rest of the run. Implementations must be deterministic
// functions of their inputs (no wall-clock, no ambient randomness) so
// adaptive runs replay bit-identically from a seed; internal/policy
// provides the objective-driven controller. A nil Policy — the default —
// costs one pointer test per collection and leaves behavior bit-identical
// to a build without the hook.
type Tuner interface {
	Tune(TuneInput) []KnobUpdate
}

// runTuner consults cfg.Policy at the end of a collection and applies
// whatever updates pass validation. Called with the heap consistent
// (inGC already cleared) but still inside the pause window; tuner
// decisions are policy work, not collector work, and charge no cost.
func (h *Heap) runTuner(trigger gc.TriggerKind, full bool, end gc.GCEndInfo) {
	t := h.cfg.Policy
	if t == nil {
		return
	}
	in := TuneInput{
		GC:              h.gcCount,
		Now:             h.clock.Now(),
		Trigger:         trigger,
		Full:            full,
		End:             end,
		HeapBytes:       h.cfg.HeapBytes,
		ReserveBytes:    h.reserveBytes,
		FrameBytes:      h.cfg.FrameBytes,
		LiveBytes:       h.LiveEstimate(),
		FootprintBytes:  h.FootprintBytes(),
		Belts:           append([]BeltSpec(nil), h.cfg.Belts...),
		RemsetThreshold: h.cfg.RemsetThreshold,
		TTDBytes:        h.cfg.TTDBytes,
		OlderFirst:      h.cfg.OlderFirst,
		MOS:             h.cfg.MOS,
		Costs:           h.cfg.Costs,
	}
	for bi, b := range h.belts {
		frames := 0
		for _, incr := range b.incrs {
			frames += len(incr.frames)
		}
		lines, used := h.MRLineStats(bi)
		in.Occupancy = append(in.Occupancy, gc.BeltStat{
			Belt: bi, Increments: b.Len(), Bytes: b.Bytes(), Frames: frames,
			MRLines: lines, MRLinesUsed: used,
		})
	}
	h.applyKnobUpdates(t.Tune(in))
}

// applyKnobUpdates validates and applies tuner decisions, then refreshes
// the structures derived from the knobs (copy reserve, open-increment
// frame budgets). Invalid updates are dropped silently: the tuner layer
// (internal/policy) never emits them, and policy must not be able to
// crash or corrupt a run.
func (h *Heap) applyKnobUpdates(updates []KnobUpdate) {
	if len(updates) == 0 {
		return
	}
	touched := make([]bool, len(h.belts))
	applied := false
	for _, u := range updates {
		switch u.Knob {
		case KnobRemsetThreshold:
			if v := int(u.Value); v >= 0 {
				h.cfg.RemsetThreshold = v
				applied = true
			}
			continue
		case KnobTTDBytes:
			if v := int(u.Value); v >= 0 {
				h.cfg.TTDBytes = v
				applied = true
			}
			continue
		}
		// Per-belt knobs. Under older-first the two belts swap roles at
		// flips and the spec indexes no longer name stable roles; under
		// MOS the top belt's car geometry is load-bearing (Validate pins
		// it). Reject rather than guess.
		if h.cfg.OlderFirst {
			continue
		}
		if u.Belt < 0 || u.Belt >= len(h.belts) {
			continue
		}
		if h.cfg.MOS && u.Belt == h.mosBelt() {
			continue
		}
		spec := &h.cfg.Belts[u.Belt]
		switch u.Knob {
		case KnobIncrementFrac:
			if u.Value > 0 {
				spec.IncrementFrac = u.Value
				touched[u.Belt], applied = true, true
			}
		case KnobMaxIncrements:
			if v := int(u.Value); v >= 0 {
				spec.MaxIncrements = v
				touched[u.Belt], applied = true, true
			}
		case KnobReserveFrac:
			if u.Value >= 0 && u.Value < 1 {
				spec.ReserveFrac = u.Value
				touched[u.Belt], applied = true, true
			}
		case KnobPromoteTo:
			// No demotion (Validate's rule outside older-first), and the
			// top belt keeps promoting to itself.
			if v := int(u.Value); v >= u.Belt && v < len(h.belts) &&
				!(u.Belt == len(h.belts)-1 && v != u.Belt) {
				spec.PromoteTo = v
				h.belts[u.Belt].promoteTo = v
				touched[u.Belt], applied = true, true
			}
		}
		if touched[u.Belt] {
			h.belts[u.Belt].spec = *spec
		}
	}
	if !applied {
		return
	}
	// The reserve depends on increment fractions and occupancy; refresh
	// it first, then re-budget the open increments against the new usable
	// memory.
	h.recomputeReserve()
	for bi, was := range touched {
		if was {
			h.recapOpenIncrement(bi)
		}
	}
}

// recapOpenIncrement re-derives the frame budget of a belt's open (back
// of queue) increment after its IncrementFrac changed. Frames already
// held are never taken away — a shrink only stops further growth — and
// MOS cars keep their car geometry.
func (h *Heap) recapOpenIncrement(beltIdx int) {
	b := h.belts[beltIdx]
	in := b.Youngest()
	if in == nil || in.train >= 0 || in.condemned {
		return
	}
	if f := b.spec.IncrementFrac; f >= 1.0 {
		in.capFrames = 0
		return
	}
	usable := h.cfg.HeapBytes - h.reserveBytes
	capFrames := int(b.spec.IncrementFrac*float64(usable)) / h.cfg.FrameBytes
	if capFrames < 1 {
		capFrames = 1
	}
	if capFrames < len(in.frames) {
		capFrames = len(in.frames)
	}
	in.capFrames = capFrames
}
