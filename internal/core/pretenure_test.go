package core_test

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// TestPretenuredAllocationLandsOnOldBelt verifies the allocation-site
// segregation mechanics: pretenured objects go straight to the top belt
// (or the configured one), not the nursery.
func TestPretenuredAllocationLandsOnOldBelt(t *testing.T) {
	m, types, h := newMutator(t, collectors.XX100(25, testOptions(512)))
	node := types.DefineScalar("pt", 1, 4)
	err := m.Run(func() {
		for i := 0; i < 200; i++ {
			m.AllocPretenuredGlobal(node, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	belts := h.Belts()
	if belts[0].Bytes() != 0 {
		t.Errorf("nursery holds %d bytes; pretenured allocation leaked into it", belts[0].Bytes())
	}
	if top := belts[len(belts)-1].Bytes(); top < 200*node.Size(0) {
		t.Errorf("top belt holds %d bytes, want >= %d", top, 200*node.Size(0))
	}
	if h.Clock().Counters.PretenuredBytes == 0 {
		t.Error("PretenuredBytes counter not incremented")
	}
}

// TestPretenureBeltConfigurable checks Config.PretenureBelt routing.
func TestPretenureBeltConfigurable(t *testing.T) {
	cfg := collectors.XX100(25, testOptions(512))
	cfg.PretenureBelt = 1
	m, types, h := newMutator(t, cfg)
	node := types.DefineScalar("pt1", 0, 4)
	err := m.Run(func() {
		for i := 0; i < 50; i++ {
			m.AllocPretenuredGlobal(node, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Belts()[1].Bytes() == 0 {
		t.Error("belt 1 empty; PretenureBelt not honored")
	}
	if h.Belts()[2].Bytes() != 0 {
		t.Error("top belt received pretenured data despite PretenureBelt=1")
	}
	bad := collectors.XX100(25, testOptions(512))
	bad.PretenureBelt = 9
	if bad.Validate() == nil {
		t.Error("out-of-range PretenureBelt accepted")
	}
}

// TestPretenureSurvivesCollections: pretenured data must survive nursery
// and belt collections like any promoted object (the validator checks
// graph integrity throughout).
func TestPretenureSurvivesCollections(t *testing.T) {
	m, types, _ := newMutator(t, collectors.XX100(25, testOptions(512)))
	holder := types.DefineScalar("ph", 2, 1)
	filler := types.DefineScalar("pf", 0, 14)
	err := m.Run(func() {
		var kept []gc.Handle
		for i := 0; i < 300; i++ {
			hd := m.AllocPretenuredGlobal(holder, 0)
			m.SetData(hd, 0, uint32(i))
			if len(kept) > 0 {
				m.SetRef(hd, 0, kept[len(kept)-1])
			}
			// Pretenured-to-young pointer: must be remembered.
			m.Push()
			y := m.Alloc(filler, 0)
			m.SetRef(hd, 1, y)
			m.Pop()
			kept = append(kept, hd)
			m.Push()
			for j := 0; j < 150; j++ {
				m.Alloc(filler, 0)
			}
			m.Pop()
		}
		for i, hd := range kept {
			if got := m.GetData(hd, 0); got != uint32(i) {
				t.Fatalf("pretenured object %d holds %d", i, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPretenureIntoMOSTrains: with a MOS top belt, pretenured data goes
// into the last train's cars.
func TestPretenureIntoMOSTrains(t *testing.T) {
	m, types, h := newMutator(t, collectors.XXMOS(20, testOptions(512)))
	node := types.DefineScalar("pmos", 0, 6)
	err := m.Run(func() {
		for i := 0; i < 2000; i++ {
			m.AllocPretenuredGlobal(node, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	mos := h.Belts()[len(h.Belts())-1]
	if mos.Len() == 0 {
		t.Fatal("MOS belt empty after pretenured allocation")
	}
	for _, in := range mos.Increments() {
		if in.Train() < 0 {
			t.Error("pretenured MOS car has no train")
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPretenuringReducesCopying is the payoff test: a workload with a
// large long-lived structure copies much less when that structure is
// pretenured (it skips the nursery and every promotion hop).
func TestPretenuringReducesCopying(t *testing.T) {
	run := func(pretenure bool) uint64 {
		types := heap.NewRegistry()
		h, err := core.New(collectors.XX100(25, testOptions(768)), types)
		if err != nil {
			t.Fatal(err)
		}
		m := vm.New(h)
		long := types.DefineScalar("ll", 1, 10)
		filler := types.DefineScalar("fl", 0, 14)
		err = m.Run(func() {
			for i := 0; i < 3000; i++ {
				if pretenure {
					m.AllocPretenuredGlobal(long, 0)
				} else {
					m.AllocGlobal(long, 0)
				}
				m.Push()
				for j := 0; j < 20; j++ {
					m.Alloc(filler, 0)
				}
				m.Pop()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return h.Clock().Counters.BytesCopied
	}
	normal := run(false)
	pret := run(true)
	t.Logf("bytes copied: normal=%d pretenured=%d", normal, pret)
	if pret >= normal {
		t.Errorf("pretenuring did not reduce copying: %d -> %d", normal, pret)
	}
}
