package core

import (
	"fmt"

	"beltway/internal/gc"
	"beltway/internal/heap"
)

// gcState carries the per-collection working set: the condemned
// increments, the promotion targets resolved so far, and the Cheney scan
// positions over every target increment. One instance lives on the Heap
// and is reset per collection, so steady-state collections allocate
// nothing for their scan machinery.
type gcState struct {
	victims []*Increment
	targets []*Increment       // indexed by source belt: receiving increment
	mosDest map[int]*Increment // MOS train id -> open destination car
	scans   []scanState
}

// scanState is a Cheney scan pointer over one target increment. Newly
// copied objects land at the increment's bump cursor; the scan chases the
// cursor frame by frame until it catches up. Scan states live in
// gcState.scans by value; they are addressed by index because forwarding
// can grow the slice mid-scan.
type scanState struct {
	in   *Increment
	fi   int       // index into in.frames currently being scanned
	addr heap.Addr // next object to scan within frame fi
}

// reset prepares the reusable state for a collection over nBelts belts.
func (st *gcState) reset(victims []*Increment, nBelts int) {
	st.victims = victims
	if cap(st.targets) < nBelts {
		st.targets = make([]*Increment, nBelts)
	}
	st.targets = st.targets[:nBelts]
	clear(st.targets)
	if st.mosDest == nil {
		st.mosDest = make(map[int]*Increment)
	} else {
		clear(st.mosDest)
	}
	st.scans = st.scans[:0]
}

// collect performs one stop-the-world collection of the given increments.
// It is a Cheney copying collection whose root set is the mutator roots;
// the remembered-set entries targeting the condemned frames (from
// non-condemned frames) or, for card-marking configurations, the dirty
// cards of every uncollected frame; and — for boundary-barrier
// configurations — the entire boot image and large object space. When
// every increment is condemned, the large object space is mark-swept
// alongside the trace.
func (h *Heap) collect(victims []*Increment, trigger gc.TriggerKind) error {
	if h.inGC {
		panic("core: recursive collection")
	}
	h.inGC = true
	defer func() { h.inGC = false }()

	if h.hooks.PreGC != nil {
		h.hooks.PreGC()
	}
	h.clock.BeginPause()
	defer h.clock.EndPause()
	t0 := h.clock.Now()
	c0 := h.clock.Counters // pre-collection snapshot for GCEnd deltas
	h.clock.Advance(h.cfg.Costs.GCSetup)
	h.gcCount++
	c := &h.clock.Counters
	c.Collections++

	preOccupancy := h.LiveEstimate()
	condemnedBytes := 0
	for _, in := range victims {
		in.condemned = true
		condemnedBytes += in.bytes
	}
	full := condemnedBytes >= preOccupancy && preOccupancy > 0
	if full {
		c.FullCollections++
	}
	if h.hooks.GCBegin != nil {
		h.hooks.GCBegin(gc.GCBeginInfo{
			Trigger:             trigger,
			Full:                full,
			CondemnedIncrements: len(victims),
			CondemnedBytes:      condemnedBytes,
			OccupiedBytes:       preOccupancy,
		})
	}
	if h.hooks.Condemned != nil {
		for _, in := range victims {
			h.hooks.Condemned(gc.IncrementInfo{
				Belt: in.belt, Seq: in.seq, Train: in.train,
				Bytes: in.bytes, Frames: len(in.frames),
			})
		}
	}
	// A collection condemning every increment traces all live data, so
	// it can also mark-sweep the large object space.
	total := 0
	for _, b := range h.belts {
		total += b.Len()
	}
	h.los.sweeping = len(h.los.objects) > 0 && len(victims) == total

	// Renew condemned mark-region increments (fresh seq at the back of
	// their belts, frames restamped) and pick the frames to evacuate,
	// before any slot is examined against the stamps.
	h.mrPrepareCollection(victims)

	st := &h.gcs
	st.reset(victims, len(h.belts))

	// 1. Mutator roots.
	var gcErr error
	h.roots.Walk(func(a heap.Addr) heap.Addr {
		c.RootsScanned++
		h.clock.Advance(h.cfg.Costs.RootSlot)
		if gcErr != nil || !h.isCondemned(a) {
			h.markLOS(a)
			return a
		}
		na, err := h.forward(a, st, nil)
		if err != nil {
			gcErr = err
			return a
		}
		return na
	})
	if gcErr != nil {
		return gcErr
	}

	// 2. Harvest the remembered-set roots (entries from non-condemned
	// frames into condemned frames; sets between two condemned frames
	// are ignored wholesale, §3.3.2), then retire every OTHER set
	// touching a condemned mark-region frame. A renewed increment keeps
	// its frames, so unlike a copying increment its stale entries do not
	// die with the frame: the slots of its dead objects vanish at the
	// coming sweep, and once their lines are reused such a slot address
	// would point into the middle of some future object — consuming it
	// then would read (or clobber) arbitrary live words. The trace
	// re-inserts exactly the entries that still matter: survivors'
	// outgoing pointers when they are scanned, pointers INTO the renewed
	// frames when the slots holding them pass through rescanSlot. The
	// harvest comes first because those entries are this collection's
	// roots; the purge precedes the boot scan so it cannot eat entries
	// the scan is about to insert for in-place survivors.
	slots := h.rems.AppendRoots(h.rootBuf[:0], h.frameCondemnedFn)
	h.rootBuf = slots
	if h.mr.active {
		for _, in := range victims {
			if !h.isMRBelt(in.belt) {
				continue
			}
			for _, f := range in.frames {
				h.rems.DeleteFrame(f)
			}
		}
	}

	// 3. Boot image scan: boundary-barrier configurations pay it at every
	// collection (their cheap barrier does not remember boot-image
	// stores, as the paper notes of Appel's collector); a heap in remset-
	// overflow degradation pays it too, because the dropped entries could
	// have covered boot- or LOS-sourced pointers.
	if h.cfg.Barrier == BoundaryBarrier || h.deg.remsetOverflow {
		if err := h.scanBootImage(st); err != nil {
			return err
		}
	}

	// 4. Pointers into the condemned set from the rest of the heap:
	// dirty-card scanning for card-marking configurations, the harvested
	// remembered-set entries otherwise.
	if h.cfg.Barrier == CardBarrier {
		if err := h.scanDirtyCards(st); err != nil {
			return err
		}
	}
	for _, slotAddr := range slots {
		c.RemsetEntriesGC++
		h.clock.Advance(h.cfg.Costs.RemsetEntry)
		val := heap.Addr(h.space.Word(slotAddr))
		if val != heap.Nil && h.mrStale(val) {
			// The slot (itself only reachable through a stale remset
			// entry) points at storage a line sweep already reclaimed.
			h.space.SetWord(slotAddr, uint32(heap.Nil))
			continue
		}
		if val == heap.Nil || !h.isCondemned(val) {
			if val != heap.Nil {
				h.markLOS(val)
			}
			continue // stale entry: the slot was overwritten since insertion
		}
		var ctx *Increment
		if f := h.space.FrameOf(slotAddr); int(f) < len(h.incrOf) {
			ctx = h.incrOf[f]
		}
		nv, err := h.forward(val, st, ctx)
		if err != nil {
			return err
		}
		h.space.SetWord(slotAddr, uint32(nv))
		h.rescanSlot(slotAddr, nv)
	}

	// 5. Transitive closure: Cheney scans over the copying targets,
	// interleaved with the mark-region gray stack (in-place survivors
	// and arrivals in holey frames) and, during full collections,
	// large-object marking.
	for {
		if err := h.drainScans(st); err != nil {
			return err
		}
		advMR, err := h.drainMRQueue(st)
		if err != nil {
			return err
		}
		advLOS, err := h.drainLOSQueue(st)
		if err != nil {
			return err
		}
		if !advMR && !advLOS {
			break
		}
	}

	// 6. Release the condemned increments: delete their remsets, unmap
	// their frames, drop them from their belts. Mark-region increments
	// are instead swept to free-line runs and rejoin their belts (only
	// evacuated and emptied frames are unmapped).
	for _, in := range victims {
		if h.isMRBelt(in.belt) {
			h.mrRelease(in)
			continue
		}
		for _, f := range in.frames {
			h.rems.DeleteFrame(f)
			h.space.UnmapFrame(f)
			h.incrOf[f] = nil
			h.stamp[f] = 0
			h.fill[f] = heap.Nil
			h.heapFrames--
			h.clock.Advance(h.cfg.Costs.FrameOp)
		}
		h.belts[in.belt].remove(in)
	}

	h.sweepLOS()

	// An all-increments collection re-derived every interesting pointer
	// (survivor slots via rescanSlot, boot/LOS slots via scanBootImage),
	// so the remembered sets are whole again.
	if h.deg.remsetOverflow && len(victims) == total {
		h.deg.remsetOverflow = false
	}

	h.recomputeReserve()
	h.inGC = false // the heap is consistent again; hooks may inspect it
	cn := h.clock.Counters
	endInfo := gc.GCEndInfo{
		Duration:          h.clock.Now() - t0,
		BytesCopied:       cn.BytesCopied - c0.BytesCopied,
		ObjectsCopied:     cn.ObjectsCopied - c0.ObjectsCopied,
		RemsetEntries:     cn.RemsetEntriesGC - c0.RemsetEntriesGC,
		CardsScanned:      cn.CardsScanned - c0.CardsScanned,
		BootBytesScanned:  cn.BootBytesScanned - c0.BootBytesScanned,
		BarrierSlowPaths:  cn.BarrierSlowPaths - h.slowAtLastGC,
		SurvivorBytes:     h.LiveEstimate(),
		MRObjectsMarked:   cn.MRObjectsMarked - c0.MRObjectsMarked,
		MRBytesMarked:     cn.MRBytesMarked - c0.MRBytesMarked,
		MRFramesEvacuated: cn.MRFramesEvacuated - c0.MRFramesEvacuated,
	}
	if h.hooks.GCEnd != nil {
		h.hooks.GCEnd(endInfo)
	}
	h.slowAtLastGC = cn.BarrierSlowPaths
	if h.hooks.Occupancy != nil {
		for bi, b := range h.belts {
			frames := 0
			for _, in := range b.incrs {
				frames += len(in.frames)
			}
			lines, used := h.MRLineStats(bi)
			h.hooks.Occupancy(gc.BeltStat{
				Belt: bi, Increments: b.Len(), Bytes: b.Bytes(), Frames: frames,
				MRLines: lines, MRLinesUsed: used,
			})
		}
	}
	if h.hooks.PostGC != nil {
		h.hooks.PostGC()
	}
	// Adaptive policy runs last, over the consistent post-collection
	// heap, after every observer has seen this collection's telemetry.
	h.runTuner(trigger, full, endInfo)
	return nil
}

// isCondemned reports whether address a lies in a condemned increment.
func (h *Heap) isCondemned(a heap.Addr) bool {
	f := h.space.FrameOf(a)
	if int(f) >= len(h.incrOf) {
		return false
	}
	in := h.incrOf[f]
	return in != nil && in.condemned
}

// frameCondemned reports whether frame f belongs to a condemned increment.
func (h *Heap) frameCondemned(f heap.Frame) bool {
	if int(f) >= len(h.incrOf) {
		return false
	}
	in := h.incrOf[f]
	return in != nil && in.condemned
}

// forward copies the condemned object at a to its promotion target
// (installing a forwarding pointer), or returns the existing forwarding
// address if it was already copied.
// ctx is the increment holding the reference that led here (nil for
// roots and the boot image); MOS belts evacuate by referrer.
func (h *Heap) forward(a heap.Addr, st *gcState, ctx *Increment) (heap.Addr, error) {
	if h.space.Forwarded(a) {
		return h.space.Forwarding(a), nil
	}
	src := h.incrOf[h.space.FrameOf(a)]
	if src == nil || !src.condemned {
		panic(fmt.Sprintf("core: forward of non-condemned object at %v", a))
	}
	// Mark-region frames keep their survivors in place (unless flagged
	// for evacuation): mark, queue for scanning, return the same address.
	if h.mr.active && h.mrMark(a) {
		return a, nil
	}
	size := h.space.SizeOf(a)
	var dst heap.Addr
	var err error
	if h.cfg.MOS && src.belt == h.mosBelt() {
		car := h.mosDestination(src, ctx, st)
		dst, err = h.bumpIntoCar(car, size, st)
	} else {
		dst, err = h.gcBump(src.belt, size, st)
	}
	if err != nil {
		return heap.Nil, err
	}
	h.space.CopyBytes(a, dst, size)
	h.space.SetForwarding(a, dst)
	c := &h.clock.Counters
	c.ObjectsCopied++
	c.BytesCopied += uint64(size)
	h.clock.Advance(h.cfg.Costs.CopyByte * float64(size))
	if h.hooks.Moved != nil {
		h.hooks.Moved(a, dst)
	}
	// Copies into mark-region frames cannot rely on a Cheney scan (the
	// frame may have holes between live runs), so queue them explicitly.
	if h.mr.active && h.mrFrame(h.space.FrameOf(dst)) != nil {
		h.mr.queue = append(h.mr.queue, dst)
	}
	return dst, nil
}

// gcBump allocates size bytes in the promotion target of srcBelt, opening
// new frames (and, past a bounded target's capacity, new increments) from
// the copy reserve. It registers every target increment with the scan
// list exactly once.
func (h *Heap) gcBump(srcBelt, size int, st *gcState) (heap.Addr, error) {
	in := st.targets[srcBelt]
	if in == nil {
		in = h.resolveTarget(srcBelt, st)
	}
	for {
		if in.cursor != heap.Nil && in.cursor+heap.Addr(size) <= in.limit {
			return h.bump(in, size), nil
		}
		if !in.atCapacity() {
			if err := h.gcAddFrame(in); err != nil {
				return heap.Nil, err
			}
			continue
		}
		// Target increment full: open a fresh increment on the same
		// belt (same train, for MOS cars) for the remaining survivors.
		if h.cfg.MOS && in.belt == h.mosBelt() {
			in = h.newMOSCar(in.train)
			st.mosDest[in.train] = in
		} else {
			in = h.newIncrement(h.belts[in.belt])
		}
		st.targets[srcBelt] = in
		h.registerScan(in, st)
	}
}

// resolveTarget picks (or creates) the receiving increment for survivors
// of srcBelt: the youngest non-condemned increment of the promotion
// target belt, per the paper's promotion rule.
func (h *Heap) resolveTarget(srcBelt int, st *gcState) *Increment {
	tbIdx := h.belts[srcBelt].promoteTo
	if h.cfg.MOS && tbIdx == h.mosBelt() {
		// Promotion into the mature space enters the last train, or a
		// fresh train once the last one has its fill of cars.
		var in *Increment
		if lt := h.lastTrain(); lt >= 0 && len(h.trainCars(lt)) < h.mos.carsPerTrain {
			in = h.mosTargetCar(lt, st)
		} else {
			in = h.mosTargetCar(-1, st)
		}
		st.targets[srcBelt] = in
		return in
	}
	tb := h.belts[tbIdx]
	var in *Increment
	if y := tb.Youngest(); y != nil && !y.condemned {
		in = y
	} else {
		in = h.newIncrement(tb)
	}
	st.targets[srcBelt] = in
	h.registerScan(in, st)
	return in
}

// registerScan adds a Cheney scan pointer for target increment in,
// starting at its current bump position. Objects already present in the
// increment are not rescanned: whether they were copied there by an
// earlier collection or bump-allocated by the mutator (as in older-first
// mix, where allocation and copies share an increment), every interesting
// pointer they hold is already in a remembered set, so only objects
// copied during THIS collection need scanning.
func (h *Heap) registerScan(in *Increment, st *gcState) {
	if h.isMRBelt(in.belt) {
		// Mark-region increments have holes, so they cannot be Cheney-
		// scanned linearly; forward queues each arrival on h.mr.queue.
		return
	}
	for i := range st.scans {
		if st.scans[i].in == in {
			return
		}
	}
	s := scanState{in: in}
	if len(in.frames) == 0 {
		s.fi = 0
		s.addr = heap.Nil
	} else {
		s.fi = len(in.frames) - 1
		s.addr = in.cursor
	}
	st.scans = append(st.scans, s)
}

// drainScans runs all Cheney scan pointers to fixpoint. Each pass covers
// the scans registered before it started; scans registered mid-pass are
// picked up by the next pass (the fixpoint loop guarantees they run).
func (h *Heap) drainScans(st *gcState) error {
	for {
		progress := false
		n := len(st.scans)
		for i := 0; i < n; i++ {
			adv, err := h.advanceScan(i, st)
			if err != nil {
				return err
			}
			progress = progress || adv
		}
		if !progress {
			return nil
		}
	}
}

// advanceScan scans as many objects as are currently available to the
// idx'th scan, reporting whether it advanced at all. The scan is
// re-resolved by index after every object: forwarding out of scanObject
// can register new scans and reallocate st.scans underneath us.
func (h *Heap) advanceScan(idx int, st *gcState) (bool, error) {
	advanced := false
	for {
		s := &st.scans[idx]
		in := s.in
		if len(in.frames) == 0 {
			return advanced, nil
		}
		if s.addr == heap.Nil {
			// Scan was registered before the increment had frames.
			s.fi = 0
			s.addr = h.space.FrameBase(in.frames[0])
		}
		f := in.frames[s.fi]
		if obj := s.addr; obj < h.fill[f] {
			size, err := h.scanObject(obj, st)
			if err != nil {
				return advanced, err
			}
			s = &st.scans[idx] // st.scans may have grown
			s.addr = obj + heap.Addr(size)
			advanced = true
			continue
		}
		if s.fi < len(in.frames)-1 {
			s.fi++
			s.addr = h.space.FrameBase(in.frames[s.fi])
			continue
		}
		return advanced, nil // caught up with the bump cursor
	}
}

// scanObject processes the reference slots of one newly copied object:
// condemned referents are forwarded, and every slot is re-tested against
// the barrier rule because the object now lives in a new frame. It
// returns the object's size so the caller advances without a second
// header decode.
func (h *Heap) scanObject(obj heap.Addr, st *gcState) (int, error) {
	c := &h.clock.Counters
	t, length := h.space.Header(obj)
	n := t.NumRefs(length)
	slotAddr := obj + heap.HeaderBytes
	for i := 0; i < n; i++ {
		c.SlotsScanned++
		h.clock.Advance(h.cfg.Costs.ScanSlot)
		val := heap.Addr(h.space.Word(slotAddr))
		if val != heap.Nil {
			if h.mrStale(val) {
				// Stale pointer in a resurrected dead object: the referent
				// was reclaimed by a line sweep. Clear it.
				h.space.SetWord(slotAddr, uint32(heap.Nil))
				slotAddr += heap.WordBytes
				continue
			}
			if h.isCondemned(val) {
				ctx := h.incrOf[h.space.FrameOf(obj)]
				nv, err := h.forward(val, st, ctx)
				if err != nil {
					return 0, err
				}
				h.space.SetWord(slotAddr, uint32(nv))
				val = nv
			} else {
				h.markLOS(val)
			}
			h.rescanSlot(slotAddr, val)
		}
		slotAddr += heap.WordBytes
	}
	return t.Size(length), nil
}

// scanBootImage walks every boot-image object, forwarding condemned
// referents. Boundary-barrier collectors pay this cost at every
// collection in exchange for their cheaper barrier.
func (h *Heap) scanBootImage(st *gcState) error {
	c := &h.clock.Counters
	c.BootBytesScanned += uint64(h.boot.bytes)
	h.clock.Advance(h.cfg.Costs.BootScanByte * float64(h.boot.bytes))
	for _, f := range h.boot.frames {
		base := h.space.FrameBase(f)
		limit := h.fill[f]
		var err error
		h.space.WalkObjectsTyped(base, limit, func(obj heap.Addr, t *heap.TypeDesc, length int) bool {
			n := t.NumRefs(length)
			slotAddr := obj + heap.HeaderBytes
			for i := 0; i < n; i++ {
				val := heap.Addr(h.space.Word(slotAddr))
				if val == heap.Nil {
					slotAddr += heap.WordBytes
					continue
				}
				if !h.isCondemned(val) {
					h.markLOS(val)
					slotAddr += heap.WordBytes
					continue
				}
				var nv heap.Addr
				nv, err = h.forward(val, st, nil)
				if err != nil {
					return false
				}
				h.space.SetWord(slotAddr, uint32(nv))
				// Re-apply the barrier rule: a no-op for the boundary
				// barrier (boot sources are never remembered), but under
				// remset-overflow degradation the frame barrier must
				// re-remember boot->heap pointers before the overflow
				// flag can clear.
				h.rescanSlot(slotAddr, nv)
				slotAddr += heap.WordBytes
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	// The boundary barrier does not remember large-object stores either;
	// scan every LOS object's slots like the boot image.
	for _, lo := range h.los.objects {
		n := h.space.NumRefs(lo.addr)
		for i := 0; i < n; i++ {
			h.clock.Advance(h.cfg.Costs.ScanSlot)
			val := h.space.GetRef(lo.addr, i)
			if val != heap.Nil && h.mrStale(val) {
				// Dead-but-unswept large objects can hold pointers to
				// storage a line sweep already reclaimed.
				h.space.SetRef(lo.addr, i, heap.Nil)
				continue
			}
			if val == heap.Nil || !h.isCondemned(val) {
				continue
			}
			nv, err := h.forward(val, st, nil)
			if err != nil {
				return err
			}
			h.space.SetRef(lo.addr, i, nv)
			h.rescanSlot(h.space.RefSlotAddr(lo.addr, i), nv)
		}
	}
	return nil
}

// gcAddFrame maps a frame for a copy target. Copy frames draw on the
// reserve, so the mutator budget does not apply, but two hard caps do:
//
//   - the whole-heap cap catches reserve-accounting bugs (the total may
//     exceed the heap budget only by the per-belt packing slack);
//
//   - a per-belt cap enforces other belts' permanent reservations
//     (BeltSpec.ReserveFrac): a classic fixed-size-nursery collector
//     fails — as the paper's do in Figure 6 — when survivors no longer
//     fit beside the reserved nursery.
func (h *Heap) gcAddFrame(in *Increment) error {
	if fh := h.cfg.Faults; fh != nil && fh.ReserveGrant != nil && !fh.ReserveGrant() {
		// Injected transient reservation failure. Without the ladder it
		// is fatal — exactly the fragility this subsystem removes; with
		// it, one retry absorbs the fault (schedules guarantee at least
		// resilience.MinGap calls between faults, so the retry's own
		// consultation cannot fire again).
		if !h.cfg.Degrade {
			return h.oomError(0,
				fmt.Sprintf("%s: copy reserve grant failed during collection", h.cfg.Name))
		}
		h.noteDegrade(gc.DegradeReserveRetry, 0)
		if !fh.ReserveGrant() {
			return h.oomError(0,
				fmt.Sprintf("%s: copy reserve grant failed during collection", h.cfg.Name))
		}
	}
	limit := h.cfg.HeapBytes + (len(h.belts)+2)*h.cfg.FrameBytes
	if (h.heapFrames+1)*h.cfg.FrameBytes > limit {
		// A Cheney collection cannot abort mid-scan, so a reserve
		// exhausted mid-collection is absorbed — under the ladder — by a
		// bounded overdraft: map beyond the cap now, settle with an
		// emergency collection at the next safe point.
		if !h.cfg.Degrade || h.deg.overdraftFrames >= h.overdraftLimit() {
			return h.oomError(0,
				fmt.Sprintf("%s: copy reserve exhausted during collection", h.cfg.Name))
		}
		h.deg.overdraftFrames++
		h.deg.pendingEmergency = true
		h.noteDegrade(gc.DegradeOverdraft, 0)
	}
	otherReserve := 0.0
	for i, b := range h.belts {
		if i != in.belt {
			otherReserve += b.spec.ReserveFrac
		}
	}
	if otherReserve > 0 {
		usable := h.cfg.HeapBytes - h.reserveBytes
		beltCap := int((1-otherReserve)*float64(usable))/h.cfg.FrameBytes + 1
		held := 0
		for _, incr := range h.belts[in.belt].incrs {
			if !incr.condemned { // condemned increments are being evacuated
				held += len(incr.frames)
			}
		}
		if held+1 > beltCap {
			// Permanent reservations stay hard even under the ladder:
			// they model a policy choice, not a transient failure.
			return h.oomError(0,
				fmt.Sprintf("%s: survivors exceed the space left by reserved belts", h.cfg.Name))
		}
	}
	if !h.addFrame(in) && !h.addFrame(in) { // one retry absorbs an injected map fault
		return h.oomError(0,
			fmt.Sprintf("%s: frame map failed during collection", h.cfg.Name))
	}
	return nil
}
