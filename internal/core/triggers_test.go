package core_test

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
)

// ttdConfig is Beltway 25.25.100 with the time-to-die trigger enabled,
// which makes the nursery hold up to two increments.
func ttdConfig(heapKB int) core.Config {
	c := collectors.XX100(25, testOptions(heapKB))
	c.Name = "Beltway 25.25.100+ttd"
	c.TTDBytes = c.HeapBytes / 8
	return c
}

// TestTTDTriggerWithNurseryFilter is the regression test for the §3.3.2
// interaction: the nursery-source barrier filter is only sound with one
// nursery increment, and the TTD trigger opens a second. Pointers from
// the younger nursery increment into the older one must be remembered,
// or objects reachable only through them are lost. The shadow-graph
// validator catches any miss.
func TestTTDTriggerWithNurseryFilter(t *testing.T) {
	cfg := ttdConfig(256)
	if !cfg.NurseryFilter || cfg.TTDBytes == 0 {
		t.Fatal("test requires NurseryFilter and TTD together")
	}
	m, types, h := newMutator(t, cfg)
	node := types.DefineScalar("tnode", 2, 2)
	filler := types.DefineScalar("tfill", 0, 14)
	const window = 40
	err := m.Run(func() {
		// Ballast: live data filling most of the heap, so allocation
		// runs close to heap-full and the TTD trigger actually arms.
		var ballast []gc.Handle
		for i := 0; i < 1600; i++ {
			ballast = append(ballast, m.AllocGlobal(filler, 0))
		}
		// A backward chain: each new node points at the previous one
		// (younger -> older within the nursery); only the newest node
		// holds a root, so the rest live solely through those backward
		// pointers — exactly what the nursery filter must not drop when
		// TTD splits the nursery into two increments.
		newest := m.AllocGlobal(node, 0)
		m.SetData(newest, 0, 0)
		for i := 1; i < 15000; i++ {
			n := m.AllocGlobal(node, 0)
			m.SetData(n, 0, uint32(i))
			m.SetRef(n, 0, newest)
			m.Release(newest)
			newest = n
			if i%50 == 0 {
				// Walk the backward chain, verifying payloads, and cut
				// the tail at the window boundary so the live set stays
				// bounded.
				m.Push()
				cur := m.Keep(newest)
				for d := 1; d < window; d++ {
					if m.RefIsNil(cur, 0) {
						break
					}
					next := m.GetRef(cur, 0)
					if got := m.GetData(next, 0); got != uint32(i-d) {
						t.Fatalf("iteration %d depth %d: payload %d, want %d", i, d, got, i-d)
					}
					m.Release(cur)
					cur = m.Keep(next)
				}
				m.SetRefNil(cur, 0)
				m.Release(cur)
				m.Pop()
			}
		}
		_ = ballast
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Collections() == 0 {
		t.Fatal("no collections; trigger untested")
	}
}

// TestTTDTriggerOpensSecondIncrement checks the trigger's mechanism:
// near heap-full, allocation switches to a fresh nursery increment, so
// the most recent TTD bytes escape the next collection.
func TestTTDTriggerOpensSecondIncrement(t *testing.T) {
	// X=50 so the nursery's size bound exceeds the free budget once the
	// ballast is resident: allocation then reaches the TTD zone (heap
	// within TTDBytes of full) while the nursery still has one
	// increment, which is when the trigger re-routes allocation.
	cfg := collectors.XX100(50, testOptions(256))
	cfg.TTDBytes = cfg.HeapBytes / 8
	m, types, h := newMutator(t, cfg)
	node := types.DefineScalar("t2node", 0, 6)
	filler := types.DefineScalar("t2fill", 0, 14)
	sawTwo := false
	err := m.Run(func() {
		// Live ballast brings the heap near full, where TTD arms.
		var ballast []gc.Handle
		for i := 0; i < 1400; i++ {
			ballast = append(ballast, m.AllocGlobal(filler, 0))
		}
		for i := 0; i < 30000; i++ {
			m.Push()
			m.Alloc(node, 0)
			m.Pop()
			if h.Belts()[0].Len() > 1 {
				sawTwo = true
			}
		}
		_ = ballast
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawTwo {
		t.Error("TTD trigger never opened a second nursery increment")
	}
}

// TestRemsetTrigger checks that the remset trigger preempts collection:
// with a tiny threshold and heavy old-to-young traffic, collections run
// even though the heap never fills.
func TestRemsetTrigger(t *testing.T) {
	cfg := collectors.XX100(25, testOptions(4096)) // roomy heap
	cfg.RemsetThreshold = 200
	m, types, h := newMutator(t, cfg)
	holder := types.DefineScalar("rt.holder", 1, 0)
	leaf := types.DefineScalar("rt.leaf", 0, 1)
	err := m.Run(func() {
		old := m.Alloc(holder, 0)
		m.Collect(false) // promote
		m.Collect(false)
		for i := 0; i < 30000; i++ {
			m.Push()
			l := m.Alloc(leaf, 0)
			m.SetRef(old, 0, l) // old -> young: remset entry (new slot each time? same slot, deduped)
			m.Pop()
			// Vary the source objects so entries accumulate.
			if i%10 == 0 {
				old = m.AllocGlobal(holder, 0)
				m.Collect(false)
				break
			}
		}
		// Heavy distinct-slot traffic: many holders pointing at leaves.
		var holders []gc.Handle
		for i := 0; i < 2000; i++ {
			holders = append(holders, m.AllocGlobal(holder, 0))
		}
		m.Collect(false) // age the holders
		m.Collect(false)
		for i := 0; i < 4000; i++ {
			m.Push()
			l := m.Alloc(leaf, 0)
			m.SetRef(holders[i%len(holders)], 0, l)
			m.Pop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Collections() < 3 {
		t.Errorf("expected remset-trigger collections in a roomy heap, got %d", h.Collections())
	}
}
