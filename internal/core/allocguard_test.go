package core_test

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/telemetry"
)

// The write barrier is the mutator's hottest instrumented path; these
// guards pin both its fast path (uninteresting store) and its
// duplicate-insert slow path at zero heap allocations, so the flattened
// substrate's wins cannot silently regress.

func TestWriteBarrierFastPathZeroAlloc(t *testing.T) {
	o := collectors.Options{HeapBytes: 64 << 20, FrameBytes: 1 << 20}
	h, node := benchHeap(t, collectors.XX100(25, o))
	a1, err := h.Alloc(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := h.Alloc(node, 0) // same frame: never remembered
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		h.WriteRef(a1, 0, a2)
	}); n != 0 {
		t.Errorf("barrier fast path allocates %v times per op, want 0", n)
	}
}

func TestWriteBarrierSlowPathDuplicateZeroAlloc(t *testing.T) {
	o := collectors.Options{HeapBytes: 64 << 20, FrameBytes: 64 << 10}
	h, node := benchHeap(t, collectors.XX100(25, o))
	roots := h.Roots()
	old := roots.Add(mustAlloc(t, h, node))
	// Promote it out of the nursery so stores into the nursery are
	// interesting.
	if err := h.Collect(false); err != nil {
		t.Fatal(err)
	}
	if err := h.Collect(false); err != nil {
		t.Fatal(err)
	}
	young := roots.Add(mustAlloc(t, h, node))
	oa, ya := roots.Get(old), roots.Get(young)
	h.WriteRef(oa, 0, ya) // first store: the one real insert
	if n := testing.AllocsPerRun(100, func() {
		h.WriteRef(oa, 0, ya) // duplicate remset entry
	}); n != 0 {
		t.Errorf("barrier slow path (duplicate) allocates %v times per op, want 0", n)
	}
}

// TestHotPathsZeroAllocWithTelemetry re-runs the barrier guard with a
// telemetry.Run attached: observability must not put allocations (or any
// other work) on the mutator's fast path.
func TestHotPathsZeroAllocWithTelemetry(t *testing.T) {
	o := collectors.Options{HeapBytes: 64 << 20, FrameBytes: 1 << 20}
	h, node := benchHeap(t, collectors.XX100(25, o))
	tele := telemetry.NewRun(h.Clock())
	h.SetHooks(tele.Hooks())
	roots := h.Roots()
	r1 := roots.Add(mustAlloc(t, h, node))
	r2 := roots.Add(mustAlloc(t, h, node))
	// A collection first, so the hooks have demonstrably fired.
	if err := h.Collect(false); err != nil {
		t.Fatal(err)
	}
	if tele.Recorder().Total() == 0 {
		t.Fatal("hooks attached but no events recorded")
	}
	a1, a2 := roots.Get(r1), roots.Get(r2) // survivors share a frame: fast path
	if n := testing.AllocsPerRun(100, func() {
		h.WriteRef(a1, 0, a2)
	}); n != 0 {
		t.Errorf("barrier fast path with telemetry allocates %v times per op, want 0", n)
	}
}
