package core

import (
	"fmt"

	"beltway/internal/heap"
)

// Increment is the unit of independent collection: an ordered set of
// frames filled by bump allocation (of new objects, of copied survivors,
// or of both, depending on the configuration).
type Increment struct {
	belt  int    // index into Heap.belts
	seq   uint32 // FIFO position: creation sequence within the belt's lifetime
	train int    // MOS train id; -1 outside MOS belts

	frames []heap.Frame
	cursor heap.Addr // next free address in the last frame; Nil when no frame open
	limit  heap.Addr // end of the last frame

	bytes     int // occupied bytes (including per-frame tail waste)
	capFrames int // frame budget; 0 = unbounded (IncrementFrac >= 1)

	// Mark-region line cursor: the next frame index / line to search for
	// a free-line run (monotonic per allocation cycle, reset by sweeps).
	// Unused on copying belts.
	mrFi   int
	mrLine int

	condemned bool // true while being collected
}

// Belt returns the index of the belt holding the increment.
func (in *Increment) Belt() int { return in.belt }

// Seq returns the increment's FIFO sequence number within its belt.
func (in *Increment) Seq() uint32 { return in.seq }

// Train returns the MOS train id of the increment (-1 when the
// increment is not a mature-object-space car).
func (in *Increment) Train() int { return in.train }

// Bytes returns the increment's current occupancy in bytes.
func (in *Increment) Bytes() int { return in.bytes }

// Frames returns the number of frames held by the increment.
func (in *Increment) Frames() int { return len(in.frames) }

// atCapacity reports whether the increment may not acquire another frame.
func (in *Increment) atCapacity() bool {
	return in.capFrames > 0 && len(in.frames) >= in.capFrames
}

func (in *Increment) String() string {
	return fmt.Sprintf("belt%d/incr%d(%d frames, %d bytes)", in.belt, in.seq, len(in.frames), in.bytes)
}

// Belt is a FIFO queue of increments. The oldest increment (front of the
// queue) is always the next collected; survivors are promoted to the
// youngest open increment of the promotion-target belt.
type Belt struct {
	spec      BeltSpec
	incrs     []*Increment // oldest first
	nextSeq   uint32
	priority  uint16 // collection-order priority; equals belt index except under BOF flips
	promoteTo int    // current promotion target; equals spec.PromoteTo except under BOF flips
}

// PromoteTo returns the belt index currently receiving this belt's
// survivors.
func (b *Belt) PromoteTo() int { return b.promoteTo }

// Priority returns the belt's current collection-order priority.
func (b *Belt) Priority() uint16 { return b.priority }

// Spec returns the belt's configuration.
func (b *Belt) Spec() BeltSpec { return b.spec }

// Len returns the number of increments currently on the belt.
func (b *Belt) Len() int { return len(b.incrs) }

// Oldest returns the front-of-queue increment, or nil when empty.
func (b *Belt) Oldest() *Increment {
	if len(b.incrs) == 0 {
		return nil
	}
	return b.incrs[0]
}

// Youngest returns the back-of-queue increment, or nil when empty.
func (b *Belt) Youngest() *Increment {
	if len(b.incrs) == 0 {
		return nil
	}
	return b.incrs[len(b.incrs)-1]
}

// Bytes returns the total occupancy of the belt.
func (b *Belt) Bytes() int {
	n := 0
	for _, in := range b.incrs {
		n += in.bytes
	}
	return n
}

// remove drops increment in from the belt (after collection).
func (b *Belt) remove(in *Increment) {
	for i, x := range b.incrs {
		if x == in {
			b.incrs = append(b.incrs[:i], b.incrs[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("core: increment %v not on belt", in))
}

// stampOf computes the collection-order stamp for an increment: belts
// with lower priority are collected sooner, and within a belt increments
// are collected in FIFO (seq) order. The write barrier remembers a
// pointer exactly when stamp(targetFrame) < stamp(sourceFrame).
func stampOf(priority uint16, seq uint32) uint64 {
	return uint64(priority)<<32 | uint64(seq)
}

// immortalStamp orders the boot image after every collectible frame, so
// the frame barrier remembers boot-image stores into the heap.
const immortalStamp = ^uint64(0)

// Increments returns the belt's increments in collection order
// (inspection only).
func (b *Belt) Increments() []*Increment { return b.incrs }
