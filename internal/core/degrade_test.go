package core_test

import (
	"errors"
	"strings"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// cyclicPressure drives the workload the paper's completeness discussion
// warns about: a doubly-linked ring built across several top-belt
// increments, then released. Incremental X.X collections resurrect each
// condemned increment's slice of the ring through the remembered sets of
// its neighbors, so the garbage is never reclaimed and rooted allocation
// pressure eventually kills the heap — unless an emergency full-heap
// collection condemns all the increments at once.
func cyclicPressure(cfg core.Config) error {
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		return err
	}
	m := vm.New(h)
	m.EnableValidation()
	node := types.DefineScalar("cyc", 2, 2)
	return m.Run(func() {
		const ringNodes = 800
		hs := make([]gc.Handle, 0, ringNodes)
		for i := 0; i < ringNodes; i++ {
			hs = append(hs, m.AllocGlobal(node, 0))
			if i%100 == 99 {
				// Spread the ring across top-belt increments.
				m.Collect(false)
			}
		}
		for i := range hs {
			m.SetRef(hs[i], 0, hs[(i+1)%ringNodes])
			m.SetRef(hs[i], 1, hs[(i+ringNodes-1)%ringNodes])
		}
		for _, x := range hs {
			m.Release(x)
		}
		// Rooted pressure: fits comfortably once the ring is reclaimed.
		for i := 0; i < ringNodes; i++ {
			m.AllocGlobal(node, 0)
		}
	})
}

func TestEmergencyCollectionReclaimsCycles(t *testing.T) {
	plain := collectors.XX(25, testOptions(64))
	if err := cyclicPressure(plain); !errors.Is(err, gc.ErrOutOfMemory) {
		t.Fatalf("plain X.X: got %v, want OOM from unreclaimed cyclic garbage", err)
	}
	degraded := plain
	degraded.Degrade = true
	if err := cyclicPressure(degraded); err != nil {
		t.Fatalf("X.X with degradation: %v, want completion via emergency collection", err)
	}
}

func TestOOMErrorCarriesDegradationHistory(t *testing.T) {
	cfg := collectors.XX(25, testOptions(64))
	cfg.Degrade = true
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	var steps []gc.DegradeStep
	oomCount := 0
	h.SetHooks(gc.Hooks{
		Degraded: func(info gc.DegradeInfo) { steps = append(steps, info.Step) },
		OOM:      func(_, _ int) { oomCount++ },
	})
	node := types.DefineScalar("n", 2, 2)
	var allocErr error
	for i := 0; i < 100000; i++ {
		a, err := h.Alloc(node, 0)
		if err != nil {
			allocErr = err
			break
		}
		h.Roots().AddGlobal(a)
	}
	if allocErr == nil {
		t.Fatal("rooted fill never hit OOM")
	}
	var oe *gc.OOMError
	if !errors.As(allocErr, &oe) {
		t.Fatalf("error %T is not *gc.OOMError", allocErr)
	}
	found := false
	for _, s := range oe.Degradation {
		if s == gc.DegradeEmergencyGC.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("Degradation = %v, want an %q entry", oe.Degradation, gc.DegradeEmergencyGC)
	}
	if !strings.Contains(oe.Error(), "after "+gc.DegradeEmergencyGC.String()) {
		t.Errorf("Error() = %q does not mention the ladder", oe.Error())
	}
	hasStep := false
	for _, s := range steps {
		if s == gc.DegradeEmergencyGC {
			hasStep = true
		}
	}
	if !hasStep {
		t.Errorf("Degraded hook steps = %v, want DegradeEmergencyGC", steps)
	}
	if oomCount != 1 {
		t.Errorf("OOM hook fired %d times, want 1 (degradation precedes, not duplicates, the OOM)", oomCount)
	}
}

// reserveGrantWorkload allocates rooted survivors until the first
// promoting collection, which must draw on the copy reserve.
func reserveGrantWorkload(cfg core.Config, hooks gc.Hooks) error {
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		return err
	}
	h.SetHooks(hooks)
	node := types.DefineScalar("n", 2, 2)
	for i := 0; i < 2000; i++ {
		a, err := h.Alloc(node, 0)
		if err != nil {
			return err
		}
		if i%4 == 0 {
			h.Roots().AddGlobal(a)
		}
	}
	return nil
}

func TestReserveGrantFaultFatalWithoutDegrade(t *testing.T) {
	cfg := collectors.XX(25, testOptions(64))
	calls := 0
	cfg.Faults = &gc.FaultHooks{ReserveGrant: func() bool { calls++; return calls != 1 }}
	err := reserveGrantWorkload(cfg, gc.Hooks{})
	if !errors.Is(err, gc.ErrOutOfMemory) {
		t.Fatalf("got %v, want hard OOM from the first vetoed reserve grant", err)
	}
	var oe *gc.OOMError
	if !errors.As(err, &oe) || !strings.Contains(oe.Detail, "copy reserve grant failed") {
		t.Fatalf("error %v, want copy-reserve-grant detail", err)
	}
}

func TestReserveGrantFaultAbsorbedWithDegrade(t *testing.T) {
	cfg := collectors.XX(25, testOptions(64))
	cfg.Degrade = true
	calls := 0
	cfg.Faults = &gc.FaultHooks{ReserveGrant: func() bool { calls++; return calls != 1 }}
	var steps []gc.DegradeStep
	err := reserveGrantWorkload(cfg, gc.Hooks{
		Degraded: func(info gc.DegradeInfo) { steps = append(steps, info.Step) },
	})
	if err != nil {
		t.Fatalf("degradation did not absorb the vetoed reserve grant: %v", err)
	}
	found := false
	for _, s := range steps {
		if s == gc.DegradeReserveRetry {
			found = true
		}
	}
	if !found {
		t.Errorf("Degraded steps = %v, want DegradeReserveRetry", steps)
	}
}

func TestMapFrameFaultAbsorbedByCollection(t *testing.T) {
	// A vetoed mutator-path frame map reads as heap-full, triggers a
	// collection, and the retry succeeds — no degradation ladder needed.
	cfg := collectors.XX(25, testOptions(64))
	calls := 0
	cfg.Faults = &gc.FaultHooks{MapFrame: func() bool { calls++; return calls != 2 }}
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	node := types.DefineScalar("n", 2, 2)
	for i := 0; i < 2000; i++ {
		a, err := h.Alloc(node, 0)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if i%8 == 0 {
			h.Roots().AddGlobal(a)
		}
	}
	if calls < 2 {
		t.Fatalf("map gate consulted %d times; fault never armed", calls)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocCostFaultIsCostOnly(t *testing.T) {
	base := collectors.XX(25, testOptions(64))
	slow := base
	fired := 0
	slow.Faults = &gc.FaultHooks{AllocCost: func() float64 {
		if fired == 0 {
			fired++
			return 4
		}
		return 0
	}}
	runOne := func(cfg core.Config) (*core.Heap, float64) {
		types := heap.NewRegistry()
		h, err := core.New(cfg, types)
		if err != nil {
			t.Fatal(err)
		}
		node := types.DefineScalar("n", 2, 2)
		for i := 0; i < 100; i++ {
			if _, err := h.Alloc(node, 0); err != nil {
				t.Fatal(err)
			}
		}
		return h, h.Clock().Now()
	}
	hb, tb := runOne(base)
	hs, ts := runOne(slow)
	if ts <= tb {
		t.Errorf("inflated run took %v, baseline %v; want slower", ts, tb)
	}
	if hb.Collections() != hs.Collections() ||
		hb.Clock().Counters.ObjectsAllocated != hs.Clock().Counters.ObjectsAllocated {
		t.Error("alloc-cost fault changed non-cost behavior")
	}
}

func TestRemsetOverflowDegradation(t *testing.T) {
	cfg := collectors.XX(25, testOptions(64))
	drop := true
	cfg.Faults = &gc.FaultHooks{RemsetInsert: func() bool {
		if drop {
			drop = false
			return false // drop exactly the first interesting remember
		}
		return true
	}}
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	var steps []gc.DegradeStep
	h.SetHooks(gc.Hooks{Degraded: func(info gc.DegradeInfo) { steps = append(steps, info.Step) }})
	node := types.DefineScalar("n", 2, 2)
	roots := h.Roots()

	old := roots.AddGlobal(mustAlloc(t, h, node))
	// Promote it so a store from it into the nursery is interesting.
	if err := h.Collect(false); err != nil {
		t.Fatal(err)
	}
	if err := h.Collect(false); err != nil {
		t.Fatal(err)
	}
	youngAddr := mustAlloc(t, h, node)
	h.WriteRef(roots.Get(old), 0, youngAddr) // dropped by the fault

	if !h.RemsetOverflowed() {
		t.Fatal("dropped insert did not enter remset-overflow degradation")
	}
	if len(steps) != 1 || steps[0] != gc.DegradeRemsetOverflow {
		t.Fatalf("Degraded steps = %v, want [DegradeRemsetOverflow]", steps)
	}
	// The invariant checker is exempt while degraded (the entry is
	// legitimately missing).
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants while degraded: %v", err)
	}

	// The next collection condemns everything, so the young object —
	// reachable only through the dropped pointer — survives via the slot
	// scan, and the full collection restores the remset invariant.
	if err := h.Collect(false); err != nil {
		t.Fatal(err)
	}
	if h.RemsetOverflowed() {
		t.Fatal("all-increments collection did not clear the overflow flag")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after recovery: %v", err)
	}
	got := h.ReadRef(roots.Get(old), 0)
	if got == heap.Nil {
		t.Fatal("object behind the dropped remember was lost")
	}
	if h.Space().SizeOf(got) != node.Size(0) {
		t.Fatal("object behind the dropped remember is corrupt")
	}
}
