package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// randomConfig generates a random legal Beltway configuration: 1-4
// belts, random increment fractions, bounded or unbounded nurseries,
// random upward promotion edges, random barrier, random trigger and
// extension settings.
func randomConfig(rng *rand.Rand) core.Config {
	nBelts := 1 + rng.Intn(4)
	cfg := core.Config{
		HeapBytes:  (384 + rng.Intn(384)) * 1024,
		FrameBytes: 4096,
	}
	for i := 0; i < nBelts; i++ {
		spec := core.BeltSpec{PromoteTo: i}
		if i < nBelts-1 {
			spec.PromoteTo = i + 1 + rng.Intn(nBelts-i-1)
		}
		switch rng.Intn(3) {
		case 0:
			spec.IncrementFrac = 1.0
		case 1:
			spec.IncrementFrac = 0.1 + 0.4*rng.Float64()
		default:
			spec.IncrementFrac = 0.2 + 0.6*rng.Float64()
		}
		if i == 0 && rng.Intn(2) == 0 {
			spec.MaxIncrements = 1
		}
		cfg.Belts = append(cfg.Belts, spec)
	}
	switch rng.Intn(3) {
	case 0:
		cfg.Barrier = core.FrameBarrier
	case 1:
		cfg.Barrier = core.BoundaryBarrier
	default:
		cfg.Barrier = core.CardBarrier
	}
	if cfg.Barrier == core.FrameBarrier && rng.Intn(2) == 0 {
		cfg.NurseryFilter = true
	}
	if rng.Intn(3) == 0 {
		cfg.TTDBytes = cfg.HeapBytes / 16
	}
	if rng.Intn(4) == 0 {
		cfg.RemsetThreshold = 200 + rng.Intn(2000)
	}
	if rng.Intn(3) == 0 {
		cfg.LOSThresholdBytes = cfg.FrameBytes / 2
	}
	// MOS when the top belt qualifies.
	last := nBelts - 1
	if nBelts >= 2 && cfg.Barrier == core.FrameBarrier &&
		cfg.Belts[last].IncrementFrac < 1 && rng.Intn(3) == 0 {
		cfg.MOS = true
		cfg.MOSCarsPerTrain = 2 + rng.Intn(4)
	}
	// Older-first (BOF) for two-belt windowed configs.
	if nBelts == 2 && !cfg.MOS && rng.Intn(5) == 0 {
		cfg.OlderFirst = true
		cfg.Belts[0] = core.BeltSpec{IncrementFrac: 0.15 + 0.3*rng.Float64(), PromoteTo: 1}
		cfg.Belts[1] = core.BeltSpec{IncrementFrac: cfg.Belts[0].IncrementFrac, PromoteTo: 0}
		cfg.TTDBytes = 0
	}
	cfg.Name = fmt.Sprintf("fuzz-%d-belts-%s", nBelts, cfg.Barrier)
	return cfg
}

// TestRandomConfigurations generates dozens of random configurations and
// drives each with a random mutator under the shadow-graph oracle and
// the structural invariant checker. This is the framework-generality
// claim put under fuzz: ANY legal belt structure must collect correctly.
func TestRandomConfigurations(t *testing.T) {
	const configs = 40
	for seed := 0; seed < configs; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			cfg := randomConfig(rng)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("generated invalid config: %v\n%+v", err, cfg)
			}
			types := heap.NewRegistry()
			h, err := core.New(cfg, types)
			if err != nil {
				t.Fatal(err)
			}
			var invErr error
			checkEvery := 0
			m := vm.New(h)
			m.EnableValidation()
			// The validator replaced hooks; layer the invariant check on
			// top of its PostGC by re-wrapping.
			if hk, ok := interface{}(h).(gc.Hookable); ok {
				v := m.V
				hk.SetHooks(gc.Hooks{PostGC: func() {
					if err := v.Check(); err != nil {
						panic(err)
					}
					checkEvery++
					if checkEvery%4 == 0 && invErr == nil {
						invErr = h.CheckInvariants()
					}
				}})
			}

			node := types.DefineScalar("fz", 2, 2)
			arr := types.DefineRefArray("fzarr")
			var live []gc.Handle
			err = m.Run(func() {
				live = append(live, m.Alloc(node, 0))
				for op := 0; op < 12000; op++ {
					switch r := rng.Intn(12); {
					case r < 6:
						live = append(live, m.Alloc(node, 0))
					case r == 6:
						n := 1 + rng.Intn(20)
						if cfg.LOSThresholdBytes > 0 && rng.Intn(8) == 0 {
							n = 600 + rng.Intn(900) // large object
						}
						live = append(live, m.Alloc(arr, n))
					case r == 7 && len(live) > 2:
						src, dst := live[rng.Intn(len(live))], live[rng.Intn(len(live))]
						slots := 2
						if m.TypeOf(src) == arr {
							slots = m.Length(src)
						}
						if slots > 0 {
							m.SetRef(src, rng.Intn(slots), dst)
						}
					case r == 8:
						live = append(live, m.AllocPretenuredGlobal(node, 0))
					case r == 9 && rng.Intn(6) == 0:
						m.Collect(rng.Intn(8) == 0)
					default:
						if len(live) > 4 {
							i := rng.Intn(len(live))
							m.Release(live[i])
							live[i] = live[len(live)-1]
							live = live[:len(live)-1]
						}
					}
					for len(live) > 400 {
						i := rng.Intn(len(live))
						m.Release(live[i])
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					}
				}
			})
			if err != nil {
				// Random tight configs may legitimately OOM; that is a
				// valid outcome, not a correctness failure.
				t.Logf("%s: %v", cfg.Name, err)
			}
			if invErr != nil {
				t.Fatalf("%s: %v", cfg.Name, invErr)
			}
		})
	}
}
