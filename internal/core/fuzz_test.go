package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"beltway/internal/check"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// TestRandomConfigurations generates dozens of random configurations and
// drives each with a random mutator under the shadow-graph oracle and
// the structural invariant checker. This is the framework-generality
// claim put under fuzz: ANY legal belt structure must collect correctly.
func TestRandomConfigurations(t *testing.T) {
	const configs = 40
	for seed := 0; seed < configs; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			cfg := check.RandomConfig(rng, (384+rng.Intn(384))*1024, 4096)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("generated invalid config: %v\n%+v", err, cfg)
			}
			types := heap.NewRegistry()
			h, err := core.New(cfg, types)
			if err != nil {
				t.Fatal(err)
			}
			var invErr error
			checkEvery := 0
			m := vm.New(h)
			m.EnableValidation()
			// The validator replaced hooks; layer the invariant check on
			// top of its PostGC by re-wrapping.
			if hk, ok := interface{}(h).(gc.Hookable); ok {
				v := m.V
				hk.SetHooks(gc.Hooks{PostGC: func() {
					if err := v.Check(); err != nil {
						panic(err)
					}
					checkEvery++
					if checkEvery%4 == 0 && invErr == nil {
						invErr = h.CheckInvariants()
					}
				}})
			}

			node := types.DefineScalar("fz", 2, 2)
			arr := types.DefineRefArray("fzarr")
			var live []gc.Handle
			err = m.Run(func() {
				live = append(live, m.Alloc(node, 0))
				for op := 0; op < 12000; op++ {
					switch r := rng.Intn(12); {
					case r < 6:
						live = append(live, m.Alloc(node, 0))
					case r == 6:
						n := 1 + rng.Intn(20)
						if cfg.LOSThresholdBytes > 0 && rng.Intn(8) == 0 {
							n = 600 + rng.Intn(900) // large object
						}
						live = append(live, m.Alloc(arr, n))
					case r == 7 && len(live) > 2:
						src, dst := live[rng.Intn(len(live))], live[rng.Intn(len(live))]
						slots := 2
						if m.TypeOf(src) == arr {
							slots = m.Length(src)
						}
						if slots > 0 {
							m.SetRef(src, rng.Intn(slots), dst)
						}
					case r == 8:
						live = append(live, m.AllocPretenuredGlobal(node, 0))
					case r == 9 && rng.Intn(6) == 0:
						m.Collect(rng.Intn(8) == 0)
					default:
						if len(live) > 4 {
							i := rng.Intn(len(live))
							m.Release(live[i])
							live[i] = live[len(live)-1]
							live = live[:len(live)-1]
						}
					}
					for len(live) > 400 {
						i := rng.Intn(len(live))
						m.Release(live[i])
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					}
				}
			})
			if err != nil {
				// Random tight configs may legitimately OOM; that is a
				// valid outcome, not a correctness failure.
				t.Logf("%s: %v", cfg.Name, err)
			}
			if invErr != nil {
				t.Fatalf("%s: %v", cfg.Name, invErr)
			}
		})
	}
}
