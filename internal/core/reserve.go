package core

// recomputeReserve recalculates the dynamic conservative copy reserve
// (§3.3.4): the reserve must accommodate the survivors of the worst-case
// next collection, i.e. the largest condemned set the scheduling policy
// could choose, assuming everything in it survives.
//
// The scheduling cascade (chooseVictims) condemns, for some belt k, all
// of every belt below k plus belt k's oldest increment — and it reaches
// belt k only when each lower belt j is under its collection-worthiness
// threshold worth(j). The worst-case copy volume of a collection at belt
// k is therefore
//
//	need(k) = sum over j<k of min(occ(j), worth(j)) + occ(oldest(k))
//
// and the reserve is max over k of need(k), recomputed after every
// collection and every mutator frame map, so it tracks occupancy
// continuously. Two refinements from the paper:
//
//   - "the copy reserve is either the largest increment size, or the
//     largest potential increment occupancy": an analytic floor of
//     frac/(1+frac)*heap covers bounded increments that have not been
//     created yet (the fixed point of reserve = frac*(heap-reserve));
//
//   - "the copy reserve must be slightly more generous because the copied
//     data may not pack as well as the original data" (footnote 1): one
//     frame of padding per belt absorbs bump-pointer tail waste.
//
// For BSS and BA2 this converges to the classic half-heap reserve as the
// unbounded increments fill; for Beltway X.X.100 it stays near one small
// increment until the third belt grows, then grows toward half the heap
// and falls back after the third belt is collected — exactly the
// behaviour §3.3.4 describes.
func (h *Heap) recomputeReserve() {
	if h.cfg.FixedHalfReserve {
		h.reserveBytes = h.cfg.HeapBytes / 2
		return
	}
	reserve := 0

	if h.cfg.OlderFirst {
		// BOF collections condemn exactly one window (the allocation
		// belt's oldest increment; after a flip, the other belt's).
		for _, b := range h.belts {
			if old := b.Oldest(); old != nil && old.bytes > reserve {
				reserve = old.bytes
			}
		}
	} else {
		lower := 0 // sum of min(occ(j), worth(j)) over belts below k
		for k, b := range h.belts {
			// A mark-region increment copies only its evacuation
			// candidates, so it charges the reserve mrCopyBound, not its
			// full occupancy.
			if old := b.Oldest(); old != nil {
				if need := lower + h.mrCopyBound(old); need > reserve {
					reserve = need
				}
			}
			occ := b.Bytes()
			if h.isMRBelt(k) {
				occ = h.mrBeltCopyBound(b)
			}
			worth := h.cfg.FrameBytes
			if k == h.allocBelt {
				worth = h.nurseryMinBytes()
			}
			if occ < worth {
				lower += occ
			} else {
				lower += worth
			}
		}
	}

	// Analytic floor for bounded-increment belts that may not exist yet.
	for bi, b := range h.belts {
		if f := b.spec.IncrementFrac; f < 1.0 {
			if h.isMRBelt(bi) {
				// Mark-region increments copy at most MRDefragFrac of
				// their frames' worth; with defrag off they copy nothing.
				f *= h.cfg.MRDefragFrac
				if f == 0 {
					continue
				}
			}
			floor := int(f / (1.0 + f) * float64(h.cfg.HeapBytes))
			if len(h.belts) > 1 {
				floor += h.nurseryMinBytes() // cascaded nursery dregs
			}
			if floor > reserve {
				reserve = floor
			}
		}
	}

	// Packing slack (footnote 1): one frame per belt.
	reserve += len(h.belts) * h.cfg.FrameBytes

	if max := h.cfg.HeapBytes / 2; reserve > max {
		// Beyond half the heap the configuration has degenerated to
		// semi-space; occupancy can never exceed heap - reserve, so the
		// condemned set is bounded by the other half.
		reserve = max
	}
	h.reserveBytes = reserve
}
