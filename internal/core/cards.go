package core

import "beltway/internal/heap"

// Card marking (paper §5, Related Work): the classic alternative to
// remembered sets. The heap is divided into small cards; the write
// barrier unconditionally dirties the card containing the updated slot —
// "a fast write-barrier (typically two or three machine instructions)" —
// and each collection must scan every dirty card of every uncollected
// frame to find the interesting pointers, paying at collection time what
// the remset barrier pays at mutation time.
//
// The paper's collectors use remsets, partly because Jikes RVM's object
// layout made card scanning hard and partly because "earlier experience
// suggests that remsets are generally faster"; the CardBarrier
// configuration exists so that trade-off can be measured (see the
// ablation experiment and BenchmarkAblationBarriers).

// cardShift gives 512-byte cards, a typical choice.
const cardShift = 9

// cardsPerFrame returns the number of cards in one frame.
func (h *Heap) cardsPerFrame() int { return h.cfg.FrameBytes >> cardShift }

// ensureCards grows the card table to cover frame f.
func (h *Heap) ensureCards(f heap.Frame) {
	limit := (int(f) + 1) << (h.space.FrameShift() - cardShift)
	for len(h.cards) < limit {
		h.cards = append(h.cards, false)
	}
}

// clearFrameCards resets the cards of a freshly mapped frame.
func (h *Heap) clearFrameCards(f heap.Frame) {
	base := int(h.space.FrameBase(f)) >> cardShift
	for i := 0; i < h.cardsPerFrame(); i++ {
		h.cards[base+i] = false
	}
}

// markCard dirties the card containing slot.
func (h *Heap) markCard(slot heap.Addr) {
	h.cards[uint32(slot)>>cardShift] = true
}

// scanDirtyCards is the collection-time half of card marking: for every
// uncollected frame with dirty cards, walk its objects and process the
// reference slots lying in dirty cards, forwarding condemned referents.
// A card is cleaned unless it still holds an interesting pointer (one
// whose target frame is collected before the slot's frame).
func (h *Heap) scanDirtyCards(st *gcState) error {
	c := &h.clock.Counters

	scanFrame := func(f heap.Frame) error {
		if !h.space.Mapped(f) {
			return nil
		}
		base := h.space.FrameBase(f)
		fill := h.fill[f]
		if fill <= base {
			return nil
		}
		// Quick reject: any dirty card in this frame?
		cardBase := int(uint32(base) >> cardShift)
		dirty := false
		for i := 0; i < h.cardsPerFrame(); i++ {
			if h.cards[cardBase+i] {
				dirty = true
				break
			}
		}
		if !dirty {
			return nil
		}
		// Clean all cards; re-dirty the ones that keep interesting
		// pointers after this collection.
		for i := 0; i < h.cardsPerFrame(); i++ {
			if h.cards[cardBase+i] {
				c.CardsScanned++
				h.clock.Advance(h.cfg.Costs.CardScanByte * float64(1<<cardShift))
				h.cards[cardBase+i] = false
			}
		}
		var err error
		h.space.WalkObjectsTyped(base, fill, func(obj heap.Addr, t *heap.TypeDesc, length int) bool {
			n := t.NumRefs(length)
			for i := 0; i < n; i++ {
				slot := h.space.RefSlotAddr(obj, i)
				val := heap.Addr(h.space.Word(slot))
				if val == heap.Nil {
					continue
				}
				if h.isCondemned(val) {
					var nv heap.Addr
					nv, err = h.forward(val, st, h.incrOf[f])
					if err != nil {
						return false
					}
					h.space.SetWord(slot, uint32(nv))
					val = nv
				} else {
					h.markLOS(val)
				}
				// Keep the card dirty while it holds interesting
				// pointers for FUTURE collections.
				s, t := h.space.FrameOf(slot), h.space.FrameOf(val)
				if s != t && h.stamp[t] < h.stamp[s] {
					h.markCard(slot)
				}
			}
			return true
		})
		return err
	}

	// All collectible frames not being collected, then the boot image.
	for _, b := range h.belts {
		for _, in := range b.incrs {
			if in.condemned {
				continue
			}
			for _, f := range in.frames {
				if err := scanFrame(f); err != nil {
					return err
				}
			}
		}
	}
	for _, f := range h.boot.frames {
		if err := scanFrame(f); err != nil {
			return err
		}
	}
	// Large objects span frames; scan the whole object when any card of
	// its span is dirty. Cards holding heap pointers stay dirty (every
	// LOS-to-heap pointer is "interesting" under the maximal LOS stamp).
	for _, lo := range h.los.objects {
		f0 := h.space.FrameOf(lo.addr)
		cardBase := int(uint32(h.space.FrameBase(f0)) >> cardShift)
		nCards := lo.frames * h.cardsPerFrame()
		dirty := false
		for i := 0; i < nCards; i++ {
			if h.cards[cardBase+i] {
				dirty = true
				c.CardsScanned++
				h.clock.Advance(h.cfg.Costs.CardScanByte * float64(1<<cardShift))
				h.cards[cardBase+i] = false
			}
		}
		if !dirty {
			continue
		}
		n := h.space.NumRefs(lo.addr)
		for i := 0; i < n; i++ {
			slot := h.space.RefSlotAddr(lo.addr, i)
			val := h.space.GetRef(lo.addr, i)
			if val == heap.Nil {
				continue
			}
			if h.isCondemned(val) {
				var nv heap.Addr
				var err error
				nv, err = h.forward(val, st, nil)
				if err != nil {
					return err
				}
				h.space.SetRef(lo.addr, i, nv)
				val = nv
			} else {
				h.markLOS(val)
			}
			if !h.inLOS(val) && !h.immortal[h.space.FrameOf(val)] {
				h.markCard(slot) // heap pointer: keep discoverable
			}
		}
	}
	return nil
}
