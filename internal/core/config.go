// Package core implements the Beltway garbage collection framework of
// Blackburn, Jones, McKinley and Moss (PLDI 2002): belts of FIFO
// increments over power-of-two frames, the unidirectional frame write
// barrier (paper Figure 4), per-frame-pair remembered sets, collection
// triggers, and the dynamic conservative copy reserve. Every copying
// collector in the paper — semi-space, Appel-style generational,
// older-first mix, older-first, Beltway X.X and Beltway X.X.100 — is a
// configuration of this one engine (see internal/collectors for the
// presets).
package core

import (
	"fmt"

	"beltway/internal/gc"
	"beltway/internal/markregion"
	"beltway/internal/stats"
)

// BarrierKind selects the write-barrier mechanism and its cost profile.
type BarrierKind uint8

const (
	// FrameBarrier is Beltway's shift-and-compare barrier over frame
	// collection-order stamps (paper Figure 4). Stores out of the boot
	// image are remembered like any others.
	FrameBarrier BarrierKind = iota
	// BoundaryBarrier models the classic generational boundary-crossing
	// barrier used by the paper's Appel-style baseline: a cheaper fast
	// path, but the boot image must be scanned in full at every
	// collection because boot-image stores are not remembered.
	BoundaryBarrier
	// CardBarrier replaces remembered sets with card marking (paper §5):
	// the cheapest possible store barrier — unconditionally dirty the
	// 512-byte card holding the slot — paid for by scanning every dirty
	// card of every uncollected frame at each collection.
	CardBarrier
)

func (b BarrierKind) String() string {
	switch b {
	case BoundaryBarrier:
		return "boundary"
	case CardBarrier:
		return "card"
	default:
		return "frame"
	}
}

// Options carries the run-scoped parameters shared by every preset
// configuration (see internal/collectors and internal/generational).
type Options struct {
	HeapBytes    int
	FrameBytes   int
	PhysMemBytes int // 0 disables the paging model
}

// Apply copies the options into a configuration.
func (o Options) Apply(c *Config) {
	c.HeapBytes = o.HeapBytes
	c.FrameBytes = o.FrameBytes
	c.PhysMemBytes = o.PhysMemBytes
}

// Substrate selects how a belt's increments manage their frames.
type Substrate uint8

const (
	// Copying is the classic Beltway substrate: increments are filled by
	// bump allocation and reclaimed by evacuating their survivors to the
	// promotion target (Cheney copying).
	Copying Substrate = iota
	// MarkRegion is the Immix-style substrate (internal/markregion):
	// frames are divided into lines, allocation bumps over free line
	// runs, and a condemned increment's survivors are marked in place
	// and its dead lines swept back to allocatable runs — except for
	// sparsely occupied frames, which are opportunistically evacuated
	// (Config.MRDefragFrac) through the normal copying machinery.
	MarkRegion
)

func (s Substrate) String() string {
	if s == MarkRegion {
		return "mark-region"
	}
	return "copying"
}

// BeltSpec configures one belt.
type BeltSpec struct {
	// IncrementFrac is the maximum increment size X as a fraction of
	// usable memory (heap minus copy reserve), fixed when the increment
	// is created. A value >= 1 means increments are unbounded and grow
	// until the heap-full condition triggers a collection — the belts of
	// BSS, BA2 and the third belt of Beltway X.X.100 work this way.
	IncrementFrac float64

	// MaxIncrements bounds the number of increments simultaneously on
	// the belt; 0 means unbounded. Setting 1 on the nursery belt is the
	// paper's nursery trigger (§3.3.3): allocation that would need a
	// second increment collects the first instead.
	MaxIncrements int

	// PromoteTo is the belt index that receives this belt's survivors.
	// A belt may promote to itself (semi-space, older-first mix, and the
	// top belt of every configuration).
	PromoteTo int

	// ReserveFrac permanently sets aside this fraction of usable memory
	// for the belt: other belts may not grow into it even while it is
	// unused. This models the classic fixed-size-nursery reservation,
	// whose cost in tight heaps Figure 6 demonstrates ("the reservation
	// of a fixed proportion of the heap for the nursery significantly
	// impacts the collector's capacity to perform in tight heaps").
	// Zero (the default, used by all Beltway configurations) reserves
	// nothing.
	ReserveFrac float64

	// Substrate selects the belt's frame management: Copying (the
	// default) or MarkRegion. Mark-region belts trade copy traffic for
	// line-granularity fragmentation; belts of both kinds mix freely
	// (e.g. a copying nursery over a mark-region mature belt).
	Substrate Substrate
}

// Config describes a complete Beltway collector configuration. It is the
// programmatic form of the paper's command-line options.
type Config struct {
	// Name is the display name, e.g. "Beltway 25.25.100".
	Name string

	// HeapBytes is the collected-heap budget (excluding the immortal
	// boot-image space), the x-axis of every figure in the paper.
	HeapBytes int

	// FrameBytes is the power-of-two frame size.
	FrameBytes int

	// Belts, lowest (youngest) first. Belt 0 receives allocation unless
	// OlderFirst rotates the roles.
	Belts []BeltSpec

	// Barrier selects frame vs boundary barrier (see BarrierKind).
	Barrier BarrierKind

	// OlderFirst enables BOF belt flipping: when the allocation belt
	// runs empty at a heap-full event, the two belts swap roles and the
	// frame collection-order stamps are renumbered.
	OlderFirst bool

	// NurseryFilter enables the §3.3.2 optimization that filters barrier
	// work for stores whose source is in the nursery (profitable with a
	// single nursery increment; affects barrier cost accounting only,
	// since nursery-sourced stores are never remembered anyway).
	NurseryFilter bool

	// TTDBytes enables the time-to-die trigger (§3.3.3): when the heap
	// is within TTDBytes of full, allocation switches to a fresh nursery
	// increment so that the most recently allocated TTDBytes are not
	// condemned by the next nursery collection. Zero disables.
	TTDBytes int

	// FixedHalfReserve pins the copy reserve at half the heap, as the
	// classical semi-space and generational implementations do (§3.1:
	// "Classical generational and semi-space collectors must reserve
	// half the heap"). Beltway configurations leave it false and use the
	// dynamic conservative reserve of §3.3.4.
	FixedHalfReserve bool

	// RemsetThreshold enables the remset trigger (§3.3.3): when the
	// number of remembered entries targeting a collectible increment
	// exceeds this value, that increment is collected at the next poll.
	// Zero disables.
	RemsetThreshold int

	// MOS turns the top belt into a Mature Object Space (train
	// algorithm) belt — the paper's §5 future-work extension giving
	// completeness without full-heap collections. Requires the frame
	// barrier, a bounded top-belt increment size (the car size), and a
	// self-promoting top belt. See internal/core/mos.go.
	MOS bool

	// MOSCarsPerTrain bounds how many cars the last train accepts for
	// promotions before a fresh train is opened; 0 means the default 4.
	MOSCarsPerTrain int

	// LOSThresholdBytes routes objects larger than this to the large
	// object space (non-moving frame spans, swept at full collections).
	// Zero disables the LOS, as in the paper's GCTk, and objects must
	// then fit in one frame.
	LOSThresholdBytes int

	// MRLineBytes is the line size of mark-region belts; zero means
	// markregion.DefaultLineBytes (128). Must be a power of two, at
	// least two words, with at least two lines per frame.
	MRLineBytes int

	// MRDefragFrac tunes opportunistic defragmentation of mark-region
	// belts: a condemned frame whose line occupancy is below this
	// fraction is evacuated through the copying machinery instead of
	// being swept in place. Zero disables defragmentation (pure
	// mark-sweep-to-lines); must stay below 1.
	MRDefragFrac float64

	// PretenureBelt is the belt that receives pretenured allocations
	// (AllocPretenured) — §5's segregation by allocation site, "e.g.,
	// segregation of long-lived, immortal, or immutable objects".
	// Zero/negative means the top belt.
	PretenureBelt int

	// Costs is the cost model; zero value means stats.DefaultCosts().
	Costs stats.CostModel

	// PhysMemBytes models the machine's physical memory for the paging
	// term of the cost model (paper Figure 1(b): large heaps page).
	// Zero disables paging charges.
	PhysMemBytes int

	// Degrade enables the graceful-degradation ladder (see degrade.go):
	// before surfacing an OOM the collector runs an emergency full-heap
	// collection — condemning every collectible increment, the
	// X.X -> X.X.100 completeness fallback — and retries the failed
	// allocation once; mid-collection reserve exhaustion is absorbed by
	// a bounded overdraft settled the same way. Off (the default) the
	// collector fails exactly as the paper's incomplete configurations
	// do, and behavior is bit-identical to a build without the ladder.
	Degrade bool

	// Policy, when non-nil, is the adaptive-policy hook point (see
	// tuning.go): it is consulted at the end of every collection and may
	// retune the scheduling knobs — belt/increment sizing, promotion
	// targets, trigger thresholds — for the rest of the run. The paper's
	// policies are static for the life of a run; this is the "online
	// adaptive policy controller" extension, and internal/policy provides
	// the objective-driven implementation. Excluded from serialization
	// like Faults: a controller is run-scoped state, not part of a
	// configuration's identity, and a nil Policy leaves behavior
	// bit-identical to a build without the hook.
	Policy Tuner `json:"-"`

	// Faults, when non-nil, wires deterministic fault injection into the
	// substrate and the collector hot paths (see gc.FaultHooks and
	// internal/resilience). Nil — the default — costs one pointer test
	// per injection point. Excluded from serialization like
	// DebugDropBarrierEvery: fault schedules are run-scoped, not part of
	// a configuration's identity.
	Faults *gc.FaultHooks `json:"-"`

	// DebugDropBarrierEvery, when positive, makes the write barrier
	// silently drop every Nth interesting-pointer remember. It exists
	// solely to prove the differential oracle catches barrier bugs (a
	// mutation test; see internal/check) and is excluded from fixture
	// serialization so committed reproducers never carry it.
	DebugDropBarrierEvery int `json:"-"`
}

// Validate checks structural invariants of the configuration.
func (c *Config) Validate() error {
	if c.HeapBytes <= 0 {
		return fmt.Errorf("core: non-positive heap size %d", c.HeapBytes)
	}
	if c.FrameBytes < 256 || c.FrameBytes&(c.FrameBytes-1) != 0 {
		return fmt.Errorf("core: frame size %d not a power of two >= 256", c.FrameBytes)
	}
	if c.HeapBytes < 4*c.FrameBytes {
		return fmt.Errorf("core: heap %d too small for frame size %d (need >= 4 frames)",
			c.HeapBytes, c.FrameBytes)
	}
	if len(c.Belts) == 0 {
		return fmt.Errorf("core: no belts configured")
	}
	for i, b := range c.Belts {
		if b.IncrementFrac <= 0 {
			return fmt.Errorf("core: belt %d: non-positive increment fraction %v", i, b.IncrementFrac)
		}
		if b.PromoteTo < 0 || b.PromoteTo >= len(c.Belts) {
			return fmt.Errorf("core: belt %d: promotion target %d out of range", i, b.PromoteTo)
		}
		if b.PromoteTo < i && !c.OlderFirst {
			return fmt.Errorf("core: belt %d: demotion to belt %d is not supported", i, b.PromoteTo)
		}
		if b.MaxIncrements < 0 {
			return fmt.Errorf("core: belt %d: negative MaxIncrements", i)
		}
		if b.ReserveFrac < 0 || b.ReserveFrac >= 1 {
			return fmt.Errorf("core: belt %d: ReserveFrac %v out of [0,1)", i, b.ReserveFrac)
		}
	}
	if c.OlderFirst && len(c.Belts) != 2 {
		return fmt.Errorf("core: older-first requires exactly 2 belts, have %d", len(c.Belts))
	}
	if c.TTDBytes < 0 || c.RemsetThreshold < 0 {
		return fmt.Errorf("core: negative trigger parameter")
	}
	if c.LOSThresholdBytes < 0 {
		return fmt.Errorf("core: negative LOS threshold")
	}
	if c.PretenureBelt >= len(c.Belts) {
		return fmt.Errorf("core: pretenure belt %d out of range", c.PretenureBelt)
	}
	if c.MOS {
		last := len(c.Belts) - 1
		switch {
		case len(c.Belts) < 2:
			return fmt.Errorf("core: MOS requires at least two belts")
		case c.Belts[last].IncrementFrac >= 1:
			return fmt.Errorf("core: MOS requires bounded cars (top belt IncrementFrac < 1)")
		case c.Belts[last].PromoteTo != last:
			return fmt.Errorf("core: MOS top belt must promote to itself")
		case c.Barrier != FrameBarrier:
			return fmt.Errorf("core: MOS requires the frame barrier")
		case c.OlderFirst:
			return fmt.Errorf("core: MOS and older-first are mutually exclusive")
		case c.MOSCarsPerTrain < 0:
			return fmt.Errorf("core: negative MOSCarsPerTrain")
		}
	}
	mr := false
	for i, b := range c.Belts {
		switch b.Substrate {
		case Copying:
		case MarkRegion:
			mr = true
		default:
			return fmt.Errorf("core: belt %d: unknown substrate %d", i, b.Substrate)
		}
	}
	if mr {
		switch {
		case c.OlderFirst:
			// BOF flips renumber stamps under the two belts; mark-region
			// renewal re-sequences increments independently, and the two
			// renumberings do not compose.
			return fmt.Errorf("core: mark-region belts and older-first are mutually exclusive")
		case c.Barrier == CardBarrier:
			// Dirty-card scanning walks each frame linearly from its base
			// to its fill mark, which is meaningless over line holes.
			return fmt.Errorf("core: mark-region belts require remembered sets (frame or boundary barrier)")
		case c.MOS:
			return fmt.Errorf("core: mark-region belts and MOS are mutually exclusive")
		case c.MRDefragFrac < 0 || c.MRDefragFrac >= 1:
			return fmt.Errorf("core: MRDefragFrac %v out of [0,1)", c.MRDefragFrac)
		}
		lb := c.MRLineBytes
		if lb == 0 {
			lb = markregion.DefaultLineBytes
		}
		if _, err := markregion.NewGeometry(c.FrameBytes, lb); err != nil {
			return err
		}
	}
	return nil
}

// isZeroCosts reports whether the cost model was left unset.
func isZeroCosts(c stats.CostModel) bool { return c == stats.CostModel{} }
