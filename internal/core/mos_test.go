package core_test

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

func mosConfig(heapKB int) core.Config {
	return collectors.XXMOS(20, testOptions(heapKB))
}

// TestMOSValidation checks the configuration constraints.
func TestMOSValidation(t *testing.T) {
	good := mosConfig(256)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid MOS config rejected: %v", err)
	}
	bad := mosConfig(256)
	bad.Belts[2].IncrementFrac = 1.0
	if bad.Validate() == nil {
		t.Error("unbounded MOS cars accepted")
	}
	bad = mosConfig(256)
	bad.Barrier = core.BoundaryBarrier
	if bad.Validate() == nil {
		t.Error("MOS with boundary barrier accepted")
	}
	bad = mosConfig(256)
	bad.Belts[2].PromoteTo = 1
	if bad.Validate() == nil {
		t.Error("MOS belt promoting elsewhere accepted")
	}
}

// TestMOSPreservesGraph runs the standard validated workloads on the MOS
// configuration (graph isomorphism via the shadow oracle).
func TestMOSPreservesGraph(t *testing.T) {
	m, types, h := newMutator(t, mosConfig(384))
	node := types.DefineScalar("mnode", 1, 2)
	err := m.Run(func() {
		head := m.Alloc(node, 0)
		m.SetData(head, 0, 0)
		tail := head
		for i := 1; i < 3000; i++ {
			n := m.Alloc(node, 0)
			m.SetData(n, 0, uint32(i))
			m.SetRef(tail, 0, n)
			if tail != head {
				m.Release(tail)
			}
			tail = n
			g := m.Alloc(node, 0)
			m.Release(g)
		}
		m.Collect(false)
		cur := head
		for i := 0; i < 3000; i++ {
			if got := m.GetData(cur, 0); got != uint32(i) {
				t.Fatalf("node %d holds %d", i, got)
			}
			if m.RefIsNil(cur, 0) {
				break
			}
			next := m.GetRef(cur, 0)
			if cur != head {
				m.Release(cur)
			}
			cur = next
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Collections() == 0 {
		t.Fatal("no collections")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMOSNeverFullHeapCollections is the point of the extension: unlike
// Beltway X.X.100, the MOS configuration reaches completeness without
// ever condemning the whole occupied heap at once (once real occupancy
// exists).
func TestMOSNeverFullHeapCollections(t *testing.T) {
	m, types, h := newMutator(t, mosConfig(512))
	node := types.DefineScalar("mn", 1, 6)
	err := m.Run(func() {
		var keep []gc.Handle
		for i := 0; i < 40000; i++ {
			hd := m.AllocGlobal(node, 0)
			if i%6 == 0 {
				keep = append(keep, hd)
			} else {
				m.Release(hd)
			}
			if len(keep) > 1500 {
				m.Release(keep[0])
				keep = keep[1:]
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := h.Clock().Counters
	if c.Collections < 10 {
		t.Fatalf("only %d collections", c.Collections)
	}
	// The first collection (nursery only, everything condemned) may
	// register as "full"; steady state must not.
	if c.FullCollections > 2 {
		t.Errorf("MOS performed %d full-heap collections out of %d; should be incremental",
			c.FullCollections, c.Collections)
	}
}

// TestMOSReclaimsCrossCarCycles is the completeness test: garbage cycles
// whose edges span mature-space cars must eventually die via train
// migration and the train-death test — with no full-heap collection.
func TestMOSReclaimsCrossCarCycles(t *testing.T) {
	types := heap.NewRegistry()
	h, err := core.New(mosConfig(512), types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	node := types.DefineScalar("cyc", 2, 4)
	filler := types.DefineScalar("fil", 0, 14)
	err = m.Run(func() {
		// Cycles whose halves are separated by heavy allocation, so
		// they land in different nursery collections and therefore in
		// different mature cars.
		for c := 0; c < 40; c++ {
			a := m.AllocGlobal(node, 0)
			m.Push()
			for i := 0; i < 700; i++ {
				m.Alloc(filler, 0)
			}
			m.Pop()
			b := m.AllocGlobal(node, 0)
			m.SetRef(a, 0, b)
			m.SetRef(b, 0, a)
			m.Release(a)
			m.Release(b)
		}
		// Churn: medium-lived survivors keep the belts moving so cars
		// are repeatedly collected and the cycles migrate.
		var keep []gc.Handle
		for i := 0; i < 60000; i++ {
			hd := m.AllocGlobal(filler, 0)
			if i%4 == 0 {
				keep = append(keep, hd)
			} else {
				m.Release(hd)
			}
			if len(keep) > 800 {
				m.Release(keep[0])
				keep = keep[1:]
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	remaining := 0
	h.ForEachObject(func(a heap.Addr) bool {
		if h.Space().TypeOf(a).Name == "cyc" {
			remaining++
		}
		return true
	})
	t.Logf("MOS: %d of 80 dead cycle nodes still retained; %d collections (%d full)",
		remaining, h.Collections(), h.Clock().Counters.FullCollections)
	if remaining > 40 {
		t.Errorf("MOS retained %d of 80 cross-car cycle nodes; trains are not reclaiming garbage cycles",
			remaining)
	}
	if h.Clock().Counters.FullCollections > 2 {
		t.Errorf("completeness must come from trains, not %d full-heap collections",
			h.Clock().Counters.FullCollections)
	}
}

// TestMOSTrainStructure inspects the belt: cars carry train ids, the
// list is ordered by train, and promotions spill into multiple trains
// once the last train has its fill of cars.
func TestMOSTrainStructure(t *testing.T) {
	cfg := collectors.XXMOS(10, testOptions(512)) // small cars: trains form quickly
	cfg.MOSCarsPerTrain = 2
	m, types, h := newMutator(t, cfg)
	node := types.DefineScalar("ts", 1, 6)
	maxTrains := 0
	err := m.Run(func() {
		var ballast []gc.Handle
		for i := 0; i < 3000; i++ {
			ballast = append(ballast, m.AllocGlobal(node, 0))
			if i%300 == 299 {
				m.Collect(false) // drive promotion toward the MOS belt
				m.Collect(false)
			}
			mos := h.Belts()[len(h.Belts())-1]
			trains := map[int]bool{}
			lastTrain := -1
			for _, in := range mos.Increments() {
				if in.Train() < lastTrain {
					t.Fatalf("car order violates train order: %d after %d", in.Train(), lastTrain)
				}
				lastTrain = in.Train()
				trains[in.Train()] = true
			}
			if len(trains) > maxTrains {
				maxTrains = len(trains)
			}
		}
		_ = ballast
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxTrains < 2 {
		t.Errorf("never saw more than %d simultaneous trains", maxTrains)
	}
}
