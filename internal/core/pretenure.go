package core

import (
	"fmt"

	"beltway/internal/heap"
)

// Pretenuring — §5's segregation by allocation site: "Beltway ...
// supports segregation by object characteristics such as size, type, or
// allocation-site (e.g., segregation of long-lived, immortal, or
// immutable objects)", citing the authors' own Pretenuring for Java.
//
// AllocPretenured bump-allocates directly into an older belt (the
// configured PretenureBelt, by default the top belt), so objects the
// program knows to be long-lived skip the nursery and every promotion
// copy on the way up. The existing machinery keeps this sound: the
// pretenure belt's youngest increment has a high collection-order stamp,
// so the frame barrier remembers pointers from the pretenured object
// into anything younger, exactly as it does for promoted survivors.

// pretenureBelt resolves the destination belt index.
func (h *Heap) pretenureBelt() int {
	if h.cfg.PretenureBelt > 0 {
		return h.cfg.PretenureBelt
	}
	return len(h.belts) - 1
}

// AllocPretenured allocates an object directly on the pretenure belt,
// collecting as needed. It is the allocation-site segregation hook; the
// object is otherwise indistinguishable from a promoted survivor.
func (h *Heap) AllocPretenured(t *heap.TypeDesc, length int) (heap.Addr, error) {
	size := t.Size(length)
	if size > h.cfg.FrameBytes {
		return heap.Nil, fmt.Errorf("core: pretenured object of %d bytes exceeds frame size %d",
			size, h.cfg.FrameBytes)
	}
	c := &h.clock.Counters
	c.ObjectsAllocated++
	c.BytesAllocated += uint64(size)
	c.PretenuredBytes += uint64(size)
	h.clock.Advance(h.cfg.Costs.AllocByte*float64(size) + h.cfg.Costs.BarrierFast)
	h.chargePaging(size)

	bi := h.pretenureBelt()
	maxAttempts := 4 + 2*len(h.belts)
	for _, b := range h.belts {
		maxAttempts += b.Len()
	}
	for attempt := 0; ; attempt++ {
		if a, ok := h.tryAllocPretenured(bi, size); ok {
			h.serial++
			h.space.Format(a, t, length, h.serial)
			return a, nil
		}
		if attempt >= maxAttempts {
			break
		}
		if err := h.collectForAlloc(); err != nil {
			return heap.Nil, err
		}
	}
	if h.cfg.Degrade {
		a, ok, err := h.rescueAlloc(size, func() (heap.Addr, bool) { return h.tryAllocPretenured(bi, size) })
		if err != nil {
			return heap.Nil, err
		}
		if ok {
			h.serial++
			h.space.Format(a, t, length, h.serial)
			return a, nil
		}
	}
	return heap.Nil, h.oomError(size,
		fmt.Sprintf("%s: pretenured allocation found no space", h.cfg.Name))
}

// tryAllocPretenured bump-allocates into belt bi's youngest increment
// (the last train's open car when bi is a MOS belt), opening frames and
// increments within the mutator budget.
func (h *Heap) tryAllocPretenured(bi, size int) (heap.Addr, bool) {
	belt := h.belts[bi]
	var in *Increment
	if h.cfg.MOS && bi == h.mosBelt() {
		if lt := h.lastTrain(); lt >= 0 {
			cars := h.trainCars(lt)
			in = cars[len(cars)-1]
		}
	} else {
		in = belt.Youngest()
	}

	// A mark-region pretenure belt can satisfy the allocation from swept
	// holes in any of its increments before claiming fresh frames.
	if a, ok := h.mrRefillBelt(bi, size); ok {
		return a, true
	}

	if in != nil && !in.condemned {
		if in.cursor != heap.Nil && in.cursor+heap.Addr(size) <= in.limit {
			return h.bump(in, size), true
		}
		if !in.atCapacity() && h.freeBudgetFor(bi) >= h.cfg.FrameBytes {
			if !h.addFrame(in) {
				return heap.Nil, false // injected map failure: treat as heap-full
			}
			return h.bump(in, size), true
		}
	}
	// Need a fresh increment (or car).
	if h.freeBudgetFor(bi) < h.cfg.FrameBytes {
		return heap.Nil, false
	}
	if belt.spec.MaxIncrements > 0 && belt.Len() >= belt.spec.MaxIncrements {
		return heap.Nil, false
	}
	if h.cfg.MOS && bi == h.mosBelt() {
		// Start or extend the last train.
		lt := h.lastTrain()
		var car *Increment
		if lt >= 0 && len(h.trainCars(lt)) < h.mos.carsPerTrain {
			car = h.newMOSCar(lt)
		} else {
			car = h.newTrain()
		}
		if !h.addFrame(car) {
			// Roll the frameless car back; MOS seq numbers are dense, so
			// removal renumbers the belt.
			h.belts[car.belt].remove(car)
			h.renumberMOS()
			return heap.Nil, false
		}
		return h.bump(car, size), true
	}
	in = h.newIncrement(belt)
	if !h.addFrame(in) {
		belt.remove(in)
		return heap.Nil, false
	}
	return h.bump(in, size), true
}
