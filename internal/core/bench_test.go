package core_test

import (
	"testing"

	"beltway/internal/bench"
	"beltway/internal/core"
	"beltway/internal/heap"
)

// Benchmark bodies live in beltway/internal/bench so `go test -bench`
// and the cmd/bench regression harness measure the same code. The
// helpers below are shared with the allocation-guard tests.

func benchHeap(tb testing.TB, cfg core.Config) (*core.Heap, *heap.TypeDesc) {
	tb.Helper()
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		tb.Fatal(err)
	}
	return h, types.DefineScalar("n", 2, 2)
}

func mustAlloc(tb testing.TB, h *core.Heap, t *heap.TypeDesc) heap.Addr {
	tb.Helper()
	a, err := h.Alloc(t, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

func BenchmarkAlloc(b *testing.B)                { bench.Alloc(b) }
func BenchmarkWriteBarrierFastPath(b *testing.B) { bench.WriteBarrierFastPath(b) }
func BenchmarkWriteBarrierSlowPath(b *testing.B) { bench.WriteBarrierSlowPath(b) }
func BenchmarkNurseryCollection(b *testing.B)    { bench.NurseryCollection(b) }
func BenchmarkFullCollection(b *testing.B)       { bench.FullCollection(b) }
func BenchmarkCheneyScan(b *testing.B)           { bench.CheneyScan(b) }
