package core_test

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
)

func benchHeap(b *testing.B, cfg core.Config) (*core.Heap, *heap.TypeDesc) {
	b.Helper()
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		b.Fatal(err)
	}
	return h, types.DefineScalar("n", 2, 2)
}

// BenchmarkAlloc measures the bump-allocation fast path (including the
// cost-model charge and trigger polling) on a roomy heap.
func BenchmarkAlloc(b *testing.B) {
	o := collectors.Options{HeapBytes: 1 << 30, FrameBytes: 1 << 20}
	h, node := benchHeap(b, collectors.XX100(25, o))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Alloc(node, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteBarrierFastPath measures Figure 4's barrier when the
// pointer is not interesting (intra-frame store).
func BenchmarkWriteBarrierFastPath(b *testing.B) {
	o := collectors.Options{HeapBytes: 64 << 20, FrameBytes: 1 << 20}
	h, node := benchHeap(b, collectors.XX100(25, o))
	a1, _ := h.Alloc(node, 0)
	a2, _ := h.Alloc(node, 0) // same frame: never remembered
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.WriteRef(a1, 0, a2)
	}
}

// BenchmarkWriteBarrierSlowPath measures the barrier when every store is
// interesting (old object pointing at the nursery) and must hit the
// remembered set (deduplicated after the first).
func BenchmarkWriteBarrierSlowPath(b *testing.B) {
	o := collectors.Options{HeapBytes: 64 << 20, FrameBytes: 64 << 10}
	h, node := benchHeap(b, collectors.XX100(25, o))
	roots := h.Roots()
	old := roots.Add(mustAlloc(b, h, node))
	// Promote it out of the nursery.
	if err := h.Collect(false); err != nil {
		b.Fatal(err)
	}
	if err := h.Collect(false); err != nil {
		b.Fatal(err)
	}
	young := roots.Add(mustAlloc(b, h, node))
	oa, ya := roots.Get(old), roots.Get(young)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.WriteRef(oa, i%2, ya)
	}
}

func mustAlloc(b *testing.B, h *core.Heap, t *heap.TypeDesc) heap.Addr {
	b.Helper()
	a, err := h.Alloc(t, 0)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkNurseryCollection measures a steady-state nursery collection:
// fill the nursery with garbage plus a bounded survivor set, collect.
func BenchmarkNurseryCollection(b *testing.B) {
	o := collectors.Options{HeapBytes: 16 << 20, FrameBytes: 64 << 10}
	h, node := benchHeap(b, collectors.XX100(25, o))
	roots := h.Roots()
	// Survivors: 1000 rooted objects.
	for i := 0; i < 1000; i++ {
		roots.Add(mustAlloc(b, h, node))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 5000; j++ {
			mustAlloc(b, h, node) // garbage
		}
		if err := h.Collect(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullCollection measures whole-heap collections with a live
// linked structure.
func BenchmarkFullCollection(b *testing.B) {
	o := collectors.Options{HeapBytes: 32 << 20, FrameBytes: 256 << 10}
	h, node := benchHeap(b, collectors.BSS(o))
	roots := h.Roots()
	head := roots.Add(mustAlloc(b, h, node))
	prev := roots.Get(head)
	for i := 0; i < 20000; i++ {
		n := mustAlloc(b, h, node)
		h.WriteRef(prev, 0, n)
		prev = n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Collect(true); err != nil {
			b.Fatal(err)
		}
	}
}
