package core

// Snapshot types: a read-only view of the heap's belt structure for
// tooling (cmd/beltway -belts) and tests. Taking a snapshot allocates
// but never mutates collector state.

// IncrementSnapshot describes one increment at snapshot time.
type IncrementSnapshot struct {
	Seq       uint32
	Train     int // -1 outside MOS belts
	Frames    int
	Bytes     int
	CapFrames int // 0 = unbounded
}

// BeltSnapshot describes one belt at snapshot time.
type BeltSnapshot struct {
	Index      int
	Priority   int
	PromoteTo  int
	Bytes      int
	Substrate  Substrate
	Increments []IncrementSnapshot
}

// HeapSnapshot is the full structural view.
type HeapSnapshot struct {
	Belts        []BeltSnapshot
	AllocBelt    int
	ReserveBytes int
	HeapBytes    int
	BootBytes    int
	LOSBytes     int
	LOSObjects   int
}

// Snapshot captures the current belt/increment structure.
func (h *Heap) Snapshot() HeapSnapshot {
	snap := HeapSnapshot{
		AllocBelt:    h.allocBelt,
		ReserveBytes: h.reserveBytes,
		HeapBytes:    h.cfg.HeapBytes,
		BootBytes:    h.boot.bytes,
		LOSBytes:     h.los.bytes,
		LOSObjects:   len(h.los.objects),
	}
	for bi, b := range h.belts {
		bs := BeltSnapshot{
			Index:     bi,
			Priority:  int(b.priority),
			PromoteTo: b.promoteTo,
			Bytes:     b.Bytes(),
			Substrate: b.spec.Substrate,
		}
		for _, in := range b.incrs {
			bs.Increments = append(bs.Increments, IncrementSnapshot{
				Seq:       in.seq,
				Train:     in.train,
				Frames:    len(in.frames),
				Bytes:     in.bytes,
				CapFrames: in.capFrames,
			})
		}
		snap.Belts = append(snap.Belts, bs)
	}
	return snap
}
