package core

import "beltway/internal/heap"

// ForEachObject implements gc.Collector: it visits every object on every
// belt (oldest increment first) and then the boot image. Used by the
// validation oracle and by heap-statistics tooling; never on the mutator
// fast path.
func (h *Heap) ForEachObject(fn func(heap.Addr) bool) {
	stop := false
	visitFrame := func(f heap.Frame) {
		if stop {
			return
		}
		base := h.space.FrameBase(f)
		if fs := h.mrFrame(f); fs != nil {
			// Mark-region frames have holes between live runs; walk the
			// object-start bitmap instead of a linear header walk.
			fs.ForEachObject(func(off int) bool {
				if !fn(base + heap.Addr(off)) {
					stop = true
					return false
				}
				return true
			})
			return
		}
		limit := h.fill[f]
		h.space.WalkObjects(base, limit, func(obj heap.Addr) bool {
			if !fn(obj) {
				stop = true
				return false
			}
			return true
		})
	}
	for _, b := range h.belts {
		for _, in := range b.incrs {
			for _, f := range in.frames {
				visitFrame(f)
			}
		}
	}
	for _, f := range h.boot.frames {
		visitFrame(f)
	}
	for _, lo := range h.los.objects {
		if stop {
			return
		}
		if !fn(lo.addr) {
			stop = true
		}
	}
}
