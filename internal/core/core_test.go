package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/generational"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// testOptions returns a small heap suitable for unit tests.
func testOptions(heapKB int) collectors.Options {
	return collectors.Options{HeapBytes: heapKB * 1024, FrameBytes: 4096}
}

// allConfigs enumerates every collector family at test scale.
func allConfigs(heapKB int) []core.Config {
	o := testOptions(heapKB)
	return []core.Config{
		collectors.BSS(o),
		collectors.BA2(o),
		collectors.BOFM(25, o),
		collectors.BOF(25, o),
		collectors.XX(25, o),
		collectors.XX100(25, o),
		collectors.XX100(50, o),
		collectors.XY(25, 50, o),
		collectors.WithCardBarrier(collectors.XX100(25, o)),
		collectors.XXMOS(25, o),
		collectors.WithMarkRegion(collectors.XX100(25, o)),
		collectors.Immix(o),
		withLOS(collectors.XX100(25, o)),
		generational.Appel(o),
		generational.Fixed(25, o),
		generational.Appel3(o),
	}
}

// withLOS enables the large object space on a configuration (tests).
func withLOS(cfg core.Config) core.Config {
	cfg.Name += "+los"
	cfg.LOSThresholdBytes = cfg.FrameBytes / 2
	return cfg
}

func newMutator(t *testing.T, cfg core.Config) (*vm.Mutator, *heap.Registry, *core.Heap) {
	t.Helper()
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	m := vm.New(h)
	m.EnableValidation()
	return m, types, h
}

// TestLinkedListSurvivesCollections builds a long linked list under heap
// pressure, forcing many collections; the shadow-graph validator
// (attached via PostGC hooks) verifies the heap after every one, and the
// final pass re-reads every payload through the public API.
func TestLinkedListSurvivesCollections(t *testing.T) {
	const nodes = 3000
	for _, cfg := range allConfigs(384) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, types, h := newMutator(t, cfg)
			node := types.DefineScalar("node", 1, 2)
			err := m.Run(func() {
				head := m.Alloc(node, 0)
				m.SetData(head, 0, 0)
				tail := head
				for i := 1; i < nodes; i++ {
					n := m.Alloc(node, 0)
					m.SetData(n, 0, uint32(i))
					m.SetRef(tail, 0, n)
					if tail != head {
						m.Release(tail)
					}
					tail = n
					// Garbage: a dropped object per step.
					g := m.Alloc(node, 0)
					m.Release(g)
				}
				m.Collect(true)

				cur := head
				for i := 0; i < nodes; i++ {
					if got := m.GetData(cur, 0); got != uint32(i) {
						t.Fatalf("node %d holds %d", i, got)
					}
					if m.RefIsNil(cur, 0) {
						if i != nodes-1 {
							t.Fatalf("list truncated at node %d", i)
						}
						break
					}
					next := m.GetRef(cur, 0)
					if cur != head {
						m.Release(cur)
					}
					cur = next
				}
			})
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
			if h.Collections() == 0 {
				t.Errorf("%s: no collections happened; test exercised nothing", cfg.Name)
			}
		})
	}
}

// TestOldToYoungPointersRemembered overwrites slots of an old (promoted)
// object to point at freshly allocated young objects, then triggers
// nursery collections: only a correct remembered-set/barrier pipeline
// keeps the young referents alive and re-points the old object's slots.
func TestOldToYoungPointersRemembered(t *testing.T) {
	for _, cfg := range allConfigs(256) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, types, _ := newMutator(t, cfg)
			holder := types.DefineScalar("holder", 8, 0)
			leaf := types.DefineScalar("leaf", 0, 1)
			filler := types.DefineScalar("filler", 0, 15)
			err := m.Run(func() {
				old := m.Alloc(holder, 0)
				// Age the holder: force collections so it is promoted.
				m.Collect(false)
				m.Collect(false)
				for round := 0; round < 30; round++ {
					m.Push()
					for i := 0; i < 8; i++ {
						l := m.Alloc(leaf, 0)
						m.SetData(l, 0, uint32(round*8+i))
						m.SetRef(old, i, l)
					}
					m.Pop() // leaves reachable only through `old`
					// Churn to force nursery collections.
					m.Push()
					for i := 0; i < 400; i++ {
						m.Alloc(filler, 0)
					}
					m.Pop()
					m.Collect(false)
					for i := 0; i < 8; i++ {
						m.Push()
						l := m.GetRef(old, i)
						if got := m.GetData(l, 0); got != uint32(round*8+i) {
							t.Fatalf("round %d slot %d: payload %d", round, i, got)
						}
						m.Pop()
					}
				}
			})
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
		})
	}
}

// TestRandomMutatorAllConfigs drives every configuration with the same
// seeded random workload: random allocation (scalars and arrays), random
// re-linking, random root drops and forced collections. The validator
// checks heap/shadow isomorphism after every collection.
func TestRandomMutatorAllConfigs(t *testing.T) {
	const ops = 20000
	const maxLive = 1500 // keep live data well under the tightest usable size
	for _, cfg := range allConfigs(1024) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			m, types, h := newMutator(t, cfg)
			node := types.DefineScalar("rnode", 3, 1)
			arr := types.DefineRefArray("rarr")
			buf := types.DefineWordArray("rbuf")

			var live []gc.Handle
			err := m.Run(func() {
				live = append(live, m.Alloc(node, 0))
				for op := 0; op < ops; op++ {
					for len(live) > maxLive {
						i := rng.Intn(len(live))
						m.Release(live[i])
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					}
					switch r := rng.Intn(100); {
					case r < 45: // allocate scalar, keep rooted
						h := m.Alloc(node, 0)
						m.SetData(h, 0, uint32(op))
						live = append(live, h)
					case r < 55: // allocate ref array
						h := m.Alloc(arr, 1+rng.Intn(12))
						live = append(live, h)
					case r < 62: // allocate data array (pure garbage)
						h := m.Alloc(buf, rng.Intn(64))
						m.Release(h)
					case r < 85: // random re-link
						src := live[rng.Intn(len(live))]
						dst := live[rng.Intn(len(live))]
						ti := m.TypeOf(src)
						var slots int
						if ti == node {
							slots = 3
						} else if ti == arr {
							slots = m.Length(src)
						}
						if slots > 0 {
							if rng.Intn(8) == 0 {
								m.SetRefNil(src, rng.Intn(slots))
							} else {
								m.SetRef(src, rng.Intn(slots), dst)
							}
						}
					case r < 97: // drop a root (object may still be linked)
						if len(live) > 4 {
							i := rng.Intn(len(live))
							m.Release(live[i])
							live[i] = live[len(live)-1]
							live = live[:len(live)-1]
						}
					default: // forced collection
						m.Collect(rng.Intn(10) == 0)
					}
				}
			})
			if errors.Is(err, gc.ErrOutOfMemory) {
				t.Fatalf("%s: unexpected OOM: %v", cfg.Name, err)
			}
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
			if h.Collections() == 0 {
				t.Errorf("%s: workload never collected", cfg.Name)
			}
		})
	}
}

// TestImmortalReferencesIntoHeap stores heap pointers in boot-image
// objects; both barrier styles (remembered boot stores for the frame
// barrier, full boot scans for the boundary barrier) must keep the
// referents alive and updated.
func TestImmortalReferencesIntoHeap(t *testing.T) {
	for _, cfg := range allConfigs(384) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, types, _ := newMutator(t, cfg)
			table := types.DefineScalar("boottab", 4, 0)
			leaf := types.DefineScalar("bleaf", 0, 1)
			filler := types.DefineScalar("bfill", 0, 31)
			err := m.Run(func() {
				boot := m.AllocImmortal(table, 0)
				for round := 0; round < 10; round++ {
					for i := 0; i < 4; i++ {
						m.Push()
						l := m.Alloc(leaf, 0)
						m.SetData(l, 0, uint32(round*4+i))
						m.SetRef(boot, i, l)
						m.Pop()
					}
					m.Push()
					for i := 0; i < 600; i++ {
						m.Alloc(filler, 0)
					}
					m.Pop()
					m.Collect(false)
					for i := 0; i < 4; i++ {
						m.Push()
						l := m.GetRef(boot, i)
						if got := m.GetData(l, 0); got != uint32(round*4+i) {
							t.Fatalf("round %d slot %d: payload %d", round, i, got)
						}
						m.Pop()
					}
				}
			})
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
		})
	}
}
