package core_test

import (
	"math/rand"
	"testing"

	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// TestInvariantsUnderRandomMutation drives every configuration with a
// random workload and runs the full structural/remset invariant checker
// after every collection (plus the shadow-graph validator).
func TestInvariantsUnderRandomMutation(t *testing.T) {
	for _, cfg := range allConfigs(192) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			types := heap.NewRegistry()
			h, err := core.New(cfg, types)
			if err != nil {
				t.Fatal(err)
			}
			var invErr error
			h.SetHooks(gc.Hooks{PostGC: func() {
				if invErr == nil {
					invErr = h.CheckInvariants()
				}
			}})
			m := vm.New(h)
			rng := rand.New(rand.NewSource(7))
			node := types.DefineScalar("inode", 2, 2)
			boot := types.DefineScalar("iboot", 2, 0)

			var live []gc.Handle
			err = m.Run(func() {
				bt := m.AllocImmortal(boot, 0)
				live = append(live, m.Alloc(node, 0))
				for op := 0; op < 25000; op++ {
					switch r := rng.Intn(10); {
					case r < 5:
						hd := m.Alloc(node, 0)
						live = append(live, hd)
					case r < 8:
						src := live[rng.Intn(len(live))]
						dst := live[rng.Intn(len(live))]
						m.SetRef(src, rng.Intn(2), dst)
					case r < 9:
						m.SetRef(bt, rng.Intn(2), live[rng.Intn(len(live))])
					default:
						if len(live) > 8 {
							i := rng.Intn(len(live))
							m.Release(live[i])
							live[i] = live[len(live)-1]
							live = live[:len(live)-1]
						}
					}
					if len(live) > 600 {
						i := rng.Intn(len(live))
						m.Release(live[i])
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if invErr != nil {
				t.Fatal(invErr)
			}
			if h.Collections() == 0 {
				t.Error("no collections; invariants unexercised")
			}
			// Also check the final quiescent state.
			if err := h.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckInvariantsDetectsMissingRemset sabotages the remset table and
// verifies the checker notices (a checker that cannot fail is worthless).
func TestCheckInvariantsDetectsMissingRemset(t *testing.T) {
	types := heap.NewRegistry()
	cfg := allConfigs(512)[5] // Beltway 25.25.100
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	holder := types.DefineScalar("holder", 1, 0)
	filler := types.DefineScalar("filler", 0, 14)
	err = m.Run(func() {
		old := m.Alloc(holder, 0)
		m.Collect(false)
		m.Collect(false) // promote: old now sits on a higher belt
		l := m.Alloc(filler, 0)
		m.SetRef(old, 0, l) // creates a remembered old->young pointer
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("clean heap failed: %v", err)
		}
		// Sabotage: drop every remset entry by deleting the source frame
		// sets, then re-check.
		oa := h.Roots().Get(old)
		h.Remsets().DeleteFrame(h.Space().FrameOf(oa))
		if err := h.CheckInvariants(); err == nil {
			t.Error("checker missed a deleted remset entry")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
