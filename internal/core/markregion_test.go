package core_test

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
)

// Tests for the mark-region substrate wiring in core: in-place survival,
// opportunistic defragmentation, line reuse after sweeps, renewal
// re-sequencing, copy-traffic reduction against the copying substrate,
// and configuration validation. The substrate's bitmap mechanics are
// tested in internal/markregion; the whole-battery graph tests in
// core_test.go also run over mark-region configurations.

func immixConfig(heapKB int) core.Config {
	return collectors.Immix(testOptions(heapKB))
}

// TestMarkRegionInPlaceSurvival: a full collection of an Immix heap marks
// rooted survivors in place — the mark counters move, the copy counters
// barely do — and the heap stays structurally sound.
func TestMarkRegionInPlaceSurvival(t *testing.T) {
	m, types, h := newMutator(t, immixConfig(256))
	node := types.DefineScalar("node", 1, 2)
	const nodes = 500
	err := m.Run(func() {
		head := m.Alloc(node, 0)
		m.SetData(head, 0, 0)
		tail := head
		for i := 1; i < nodes; i++ {
			n := m.Alloc(node, 0)
			m.SetData(n, 0, uint32(i))
			m.SetRef(tail, 0, n)
			if tail != head {
				m.Release(tail)
			}
			tail = n
		}
		m.Collect(true)
		cur := head
		for i := 0; i < nodes; i++ {
			if got := m.GetData(cur, 0); got != uint32(i) {
				t.Fatalf("node %d holds %d after collection", i, got)
			}
			if m.RefIsNil(cur, 0) {
				if i != nodes-1 {
					t.Fatalf("list truncated at node %d", i)
				}
				break
			}
			next := m.GetRef(cur, 0)
			if cur != head {
				m.Release(cur)
			}
			cur = next
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := h.Clock().Counters
	if c.MRObjectsMarked == 0 {
		t.Error("full collection marked no objects in place")
	}
	if c.MRObjectsMarked < c.ObjectsCopied {
		t.Errorf("marked %d but copied %d: survivors should stay in place",
			c.MRObjectsMarked, c.ObjectsCopied)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMarkRegionDefragEvacuatesSparseFrames forces fragmentation: dense
// frames whose occupants mostly die leave a few survivors scattered over
// many lines. The first collection sweeps in place (pre-trace occupancy
// is still dense); the second finds the frames sparse and evacuates them
// through the copying machinery.
func TestMarkRegionDefragEvacuatesSparseFrames(t *testing.T) {
	m, types, h := newMutator(t, immixConfig(512))
	node := types.DefineScalar("node", 1, 2)
	var kept []gc.Handle
	err := m.Run(func() {
		for i := 0; i < 4000; i++ {
			n := m.AllocGlobal(node, 0)
			m.SetData(n, 0, uint32(i))
			if i%61 == 0 {
				kept = append(kept, n)
			} else {
				m.Release(n)
			}
		}
		m.Collect(true) // dense: survivors marked, dead lines swept
		m.Collect(true) // now sparse: frames below MRDefragFrac evacuate
		for j, n := range kept {
			if got := m.GetData(n, 0); got != uint32(j*61) {
				t.Fatalf("survivor %d holds %d, want %d", j, got, j*61)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := h.Clock().Counters
	if c.MRFramesSwept == 0 {
		t.Error("no frame was swept in place")
	}
	if c.MRFramesEvacuated == 0 {
		t.Fatal("defragmentation never evacuated a sparse frame")
	}
	if c.MRLinesReclaimed == 0 {
		t.Error("sweeps reclaimed no lines")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMarkRegionReusesSweptLines: after a collection, the mutator
// allocates into the swept holes of kept frames before mapping any new
// frame.
func TestMarkRegionReusesSweptLines(t *testing.T) {
	m, types, h := newMutator(t, immixConfig(256))
	node := types.DefineScalar("node", 1, 2)
	err := m.Run(func() {
		var kept []gc.Handle
		for i := 0; i < 2000; i++ {
			n := m.AllocGlobal(node, 0)
			if i%40 == 0 {
				kept = append(kept, n)
			} else {
				m.Release(n)
			}
		}
		m.Collect(true)
		mapped := h.Clock().Counters.FramesMapped
		for i := 0; i < 500; i++ {
			m.Release(m.AllocGlobal(node, 0))
		}
		if got := h.Clock().Counters.FramesMapped; got != mapped {
			t.Errorf("allocation mapped %d new frames despite free line runs", got-mapped)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMarkRegionRenewalResequences: collecting a mark-region increment
// renews it — same increment, fresh (higher) FIFO sequence at the back
// of its belt — rather than destroying it.
func TestMarkRegionRenewalResequences(t *testing.T) {
	m, types, h := newMutator(t, immixConfig(256))
	node := types.DefineScalar("node", 1, 2)
	err := m.Run(func() {
		keep := m.AllocGlobal(node, 0)
		m.SetData(keep, 0, 7)
		for i := 0; i < 200; i++ {
			m.Release(m.AllocGlobal(node, 0))
		}
		s0 := h.Snapshot()
		m.Collect(false)
		s1 := h.Snapshot()
		if len(s0.Belts[0].Increments) == 0 || len(s1.Belts[0].Increments) == 0 {
			t.Fatal("expected a live increment on the single belt")
		}
		seq0 := s0.Belts[0].Increments[0].Seq
		seq1 := s1.Belts[0].Increments[0].Seq
		if seq1 <= seq0 {
			t.Errorf("renewal did not advance the sequence: %d -> %d", seq0, seq1)
		}
		if s1.Belts[0].Substrate != core.MarkRegion {
			t.Error("snapshot lost the belt's substrate")
		}
		if got := m.GetData(keep, 0); got != 7 {
			t.Errorf("survivor holds %d, want 7", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMarkRegionReducesCopyTraffic runs the same long-lived workload
// under Beltway 25.25.100 with a copying and with a mark-region mature
// belt: repeated full collections must copy substantially fewer bytes
// once mature survivors are marked in place.
func TestMarkRegionReducesCopyTraffic(t *testing.T) {
	run := func(cfg core.Config) uint64 {
		m, types, h := newMutator(t, cfg)
		node := types.DefineScalar("node", 1, 2)
		err := m.Run(func() {
			var kept []gc.Handle
			for i := 0; i < 2000; i++ {
				n := m.AllocGlobal(node, 0)
				if i%4 == 0 {
					kept = append(kept, n)
				} else {
					m.Release(n)
				}
			}
			for i := 0; i < 5; i++ {
				m.Collect(true)
			}
			_ = kept
		})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		return h.Clock().Counters.BytesCopied
	}
	o := testOptions(512)
	base := run(collectors.XX100(25, o))
	mr := run(collectors.WithMarkRegion(collectors.XX100(25, o)))
	if mr >= base {
		t.Errorf("mark-region mature belt copied %d bytes, copying belt %d: expected a reduction", mr, base)
	}
}

// TestMarkRegionAllocZeroAlloc pins the mutator's mark-region bump path
// (line bookkeeping included) at zero Go-heap allocations.
func TestMarkRegionAllocZeroAlloc(t *testing.T) {
	o := collectors.Options{HeapBytes: 64 << 20, FrameBytes: 64 << 10}
	h, node := benchHeap(t, collectors.Immix(o))
	mustAlloc(t, h, node) // open the first increment and frame
	if n := testing.AllocsPerRun(100, func() {
		if _, err := h.Alloc(node, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("mark-region alloc path allocates %v times per op, want 0", n)
	}
}

// TestMarkRegionConfigValidation checks the substrate's structural rules.
func TestMarkRegionConfigValidation(t *testing.T) {
	o := testOptions(64)
	good := collectors.WithMarkRegion(collectors.XX100(25, o))
	if err := good.Validate(); err != nil {
		t.Fatalf("valid mark-region config rejected: %v", err)
	}

	bad := good
	bad.MRDefragFrac = 1.0
	if bad.Validate() == nil {
		t.Error("MRDefragFrac 1.0 accepted")
	}

	bad = good
	bad.Barrier = core.CardBarrier
	if bad.Validate() == nil {
		t.Error("mark-region with card barrier accepted")
	}

	bad = good
	bad.MRLineBytes = 100 // not a power of two
	if bad.Validate() == nil {
		t.Error("line size 100 accepted")
	}

	bad = good
	bad.MRLineBytes = bad.FrameBytes // fewer than two lines per frame
	if bad.Validate() == nil {
		t.Error("one-line frames accepted")
	}

	bof := collectors.BOF(25, o)
	bof.Belts[1].Substrate = core.MarkRegion
	if bof.Validate() == nil {
		t.Error("mark-region with older-first accepted")
	}

	mos := collectors.XXMOS(25, o)
	mos.Belts[2].Substrate = core.MarkRegion
	if mos.Validate() == nil {
		t.Error("mark-region with MOS accepted")
	}
}
