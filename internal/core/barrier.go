package core

import "beltway/internal/heap"

// WriteRef implements gc.Collector: the mutator's barriered pointer
// store. This is paper Figure 4 translated from Jikes RVM Java:
//
//	int s = (source >>> FRAME_SIZE_LOG);
//	int t = (target >>> FRAME_SIZE_LOG);
//	if ((s != t) && (Belt.collect_[t] < Belt.collect_[s])) {
//	    int rsidx = (s << REMSET_SHIFT) | t;
//	    GCTk_RememberedSet.insert(rsidx, source);
//	}
//
// A pointer is remembered only when its target frame would be collected
// before its source frame (the barrier is unidirectional with respect to
// frames); frames of the same increment share a stamp, so intra-increment
// pointers are never remembered.
func (h *Heap) WriteRef(obj heap.Addr, slot int, val heap.Addr) {
	c := &h.clock.Counters
	c.PointerStores++

	// Validate the slot once; the store below is then a raw word write
	// instead of a re-checked SetRef.
	slotAddr := h.space.CheckRefSlot(obj, slot)

	if h.cfg.Barrier == CardBarrier {
		// Card marking: no test at all — dirty the slot's card and
		// store. All discovery work is deferred to collection time.
		h.markCard(slotAddr)
		h.clock.Advance(h.cfg.Costs.CardMark)
		h.space.SetWord(slotAddr, uint32(val))
		return
	}

	cost := h.cfg.Costs.BarrierFast
	if h.cfg.Barrier == BoundaryBarrier {
		// The classic boundary test is 2-3 instructions; model it as
		// half the frame barrier's fast path.
		cost = h.cfg.Costs.BarrierFast * 0.5
	}

	if val != heap.Nil {
		// Key by the SLOT's frame, not the object header's: they differ
		// only for frame-spanning large objects, where the slot's frame
		// is the one whose remembered sets are consulted at collection.
		s := h.space.FrameOf(slotAddr)
		t := h.space.FrameOf(val)
		filtered := false
		if h.cfg.NurseryFilter && h.incrOf[s] != nil && h.incrOf[s].belt == h.allocBelt &&
			h.belts[h.allocBelt].Len() == 1 {
			// §3.3.2: with a single bounded nursery increment, stores
			// whose source is in the nursery can be filtered before the
			// stamp comparison — they would never be remembered anyway,
			// since the sole nursery increment has the lowest stamp.
			// The paper notes this "foregoes older-first behavior
			// within the nursery": with MULTIPLE nursery increments
			// (e.g. under the time-to-die trigger), stores from a
			// younger nursery increment into an older one ARE
			// interesting, so the filter turns itself off whenever the
			// nursery holds more than one increment.
			filtered = true
			cost *= 0.75
		}
		if !filtered && s != t && h.stamp[t] < h.stamp[s] {
			if h.cfg.Barrier == BoundaryBarrier && h.immortal[s] {
				// The boundary barrier does not remember boot-image
				// stores; the boot image is scanned at every collection
				// instead (see scanBootImage).
			} else {
				c.BarrierSlowPaths++
				cost += h.cfg.Costs.BarrierSlow
				h.dbgBarrierHits++
				if n := h.cfg.DebugDropBarrierEvery; n > 0 && h.dbgBarrierHits%n == 0 {
					// Mutation-test knob: forget this pointer. See
					// Config.DebugDropBarrierEvery. Deliberately does NOT
					// enter degraded mode — the oracle must still catch it.
				} else if fh := h.cfg.Faults; fh != nil && fh.RemsetInsert != nil && !fh.RemsetInsert() {
					// Injected capped-remset drop: soundness is repaired by
					// the condemn-everything degradation mode.
					h.remsetCapHit()
				} else if h.rems.Insert(s, t, slotAddr) {
					c.RemsetInserts++
				}
			}
		}
	}
	h.clock.Advance(cost)
	h.space.SetWord(slotAddr, uint32(val))
}

// ReadRef implements gc.Collector.
func (h *Heap) ReadRef(obj heap.Addr, slot int) heap.Addr {
	h.clock.Advance(h.cfg.Costs.FieldAccess)
	return h.space.GetRef(obj, slot)
}

// rescanSlot re-applies the barrier's remembering rule to a slot the
// collector just wrote (a forwarded pointer, or a pointer inside a copied
// object). Copying moves objects to frames with new stamps, so the set of
// "interesting" pointers must be re-derived during collection; this is
// what keeps the remset invariant — every pointer whose target frame is
// collected before its source frame is remembered — across promotions.
func (h *Heap) rescanSlot(slotAddr, val heap.Addr) {
	if val == heap.Nil {
		return
	}
	s := h.space.FrameOf(slotAddr)
	t := h.space.FrameOf(val)
	if s != t && h.stamp[t] < h.stamp[s] {
		switch {
		case h.cfg.Barrier == CardBarrier:
			h.markCard(slotAddr)
		case h.cfg.Barrier == BoundaryBarrier && h.immortal[s]:
			// boot image rescanned wholesale by boundary collectors
		default:
			if h.rems.Insert(s, t, slotAddr) {
				h.clock.Counters.RemsetInserts++
			}
		}
	}
}
