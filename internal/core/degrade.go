package core

import (
	"beltway/internal/gc"
	"beltway/internal/heap"
)

// Graceful degradation. The paper concedes that Beltway X.X "is not
// complete": cyclic garbage spanning increments is never reclaimed by
// incremental collections, so a tight heap eventually dies even though
// a full-heap collection would free it. With Config.Degrade set, the
// collector takes the X.X -> X.X.100 fallback the paper's completeness
// discussion implies instead of failing:
//
//  1. emergency full-heap collection — condemn every collectible
//     increment simultaneously, which reclaims cross-increment cycles
//     exactly as the .100 belt of a complete configuration would;
//
//  2. retry the failed allocation once;
//
//  3. only then surface a gc.OOMError, carrying the ladder steps taken
//     in its Degradation field.
//
// Mid-collection pressure cannot run the ladder directly — a Cheney
// copy cannot abort halfway — so a reserve exhausted mid-collection is
// absorbed by a bounded *overdraft* (map beyond the cap, settle with an
// emergency collection at the next safe point), and a dropped
// remembered-set insert flips the heap into a condemn-everything mode
// until a full collection re-establishes the remset invariant.
type degradeState struct {
	// history records the ladder steps taken since the last clean point
	// (a successful rescue or a surfaced OOM), oldest first, with
	// consecutive duplicates collapsed.
	history []string
	// pendingEmergency requests an emergency collection at the next safe
	// point (set by a mid-collection overdraft).
	pendingEmergency bool
	// overdraftFrames counts frames mapped beyond the whole-heap cap by
	// the current collection.
	overdraftFrames int
	// remsetOverflow marks the remembered sets as incomplete (an insert
	// was dropped): incremental collection is unsound until a collection
	// that condemns every increment — and scans the boot image and LOS —
	// re-derives every interesting pointer.
	remsetOverflow bool
}

// noteDegrade records one ladder step and reports it to the Degraded
// hook. History collapses consecutive duplicates so a pathological run
// cannot grow an unbounded error message, while the hook still fires
// per event (telemetry counts events, not distinct steps).
func (h *Heap) noteDegrade(step gc.DegradeStep, requested int) {
	s := step.String()
	if n := len(h.deg.history); n == 0 || h.deg.history[n-1] != s {
		h.deg.history = append(h.deg.history, s)
	}
	if h.hooks.Degraded != nil {
		h.hooks.Degraded(gc.DegradeInfo{Step: step, Requested: requested, HeapBytes: h.cfg.HeapBytes})
	}
}

// oomError is the single exit point for out-of-memory conditions: it
// fires the OOM hook exactly once and builds the structured error,
// attaching (and draining) the degradation history. With no history the
// error is byte-identical to the pre-ladder form.
func (h *Heap) oomError(requested int, detail string) error {
	h.noteOOM(requested)
	e := &gc.OOMError{Requested: requested, HeapBytes: h.cfg.HeapBytes, Detail: detail}
	if len(h.deg.history) > 0 {
		e.Degradation = append([]string(nil), h.deg.history...)
		h.deg.history = h.deg.history[:0]
	}
	return e
}

// overdraftLimit bounds how many frames a collection may map beyond the
// whole-heap cap: enough to finish evacuating any plausible survivor
// set, small enough that a real accounting bug still trips the cap.
func (h *Heap) overdraftLimit() int {
	limit := h.cfg.HeapBytes / (4 * h.cfg.FrameBytes)
	if limit < 16 {
		limit = 16
	}
	return limit
}

// emergencyCollect condemns every increment on every belt (sweeping the
// LOS alongside, as any all-increments collection does). It clears the
// overdraft debt both before and after running so a collection triggered
// to settle an overdraft cannot re-request itself.
func (h *Heap) emergencyCollect() error {
	h.deg.pendingEmergency = false
	h.deg.overdraftFrames = 0
	var victims []*Increment
	for _, b := range h.belts {
		victims = append(victims, b.incrs...)
	}
	if len(victims) == 0 && len(h.los.objects) == 0 {
		return nil
	}
	h.noteDegrade(gc.DegradeEmergencyGC, 0)
	err := h.collect(victims, gc.TriggerEmergency)
	h.deg.pendingEmergency = false
	h.deg.overdraftFrames = 0
	return err
}

// rescueAlloc runs the mutator-facing ladder after an allocation path
// has exhausted its normal collection attempts: emergency collection,
// then one retry. Callers gate on Config.Degrade. A successful retry
// clears the history — the OOM was averted, the run is clean again.
func (h *Heap) rescueAlloc(size int, retry func() (heap.Addr, bool)) (heap.Addr, bool, error) {
	if err := h.emergencyCollect(); err != nil {
		return heap.Nil, false, err
	}
	if a, ok := retry(); ok {
		h.noteDegrade(gc.DegradeRetryAverted, size)
		h.deg.history = h.deg.history[:0]
		return a, true, nil
	}
	return heap.Nil, false, nil
}

// settleDegradation runs the emergency collection requested by a
// mid-collection overdraft, at a safe point (no collection in
// progress). No-op when nothing is pending.
func (h *Heap) settleDegradation() error {
	if !h.deg.pendingEmergency {
		return nil
	}
	return h.emergencyCollect()
}

// remsetCapHit records a dropped remembered-set insert. The first drop
// flips the heap into degraded collection mode: chooseVictims condemns
// every increment and collect scans the boot image and LOS, which
// together discover every pointer the lost entries could have covered.
// The flag clears once such a collection completes.
func (h *Heap) remsetCapHit() {
	if h.deg.remsetOverflow {
		return
	}
	h.deg.remsetOverflow = true
	h.noteDegrade(gc.DegradeRemsetOverflow, 0)
}

// RemsetOverflowed reports whether the heap is in the condemn-everything
// degraded mode (tests and telemetry).
func (h *Heap) RemsetOverflowed() bool { return h.deg.remsetOverflow }
