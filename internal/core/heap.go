package core

import (
	"fmt"

	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/remset"
	"beltway/internal/stats"
)

// Heap is a complete Beltway collector instance: the simulated address
// space, the belts and their increments, per-frame metadata (collection
// order stamps), the remembered-set table, and the cost-model clock.
// It implements gc.Collector.
type Heap struct {
	cfg   Config
	space *heap.Space
	clock *stats.Clock
	rems  *remset.Table
	roots *gc.RootSet
	hooks gc.Hooks

	belts     []*Belt
	allocBelt int // index of the belt receiving new allocation

	// Per-frame metadata, indexed by heap.Frame. Grown on demand.
	stamp    []uint64     // collection-order stamp (immortalStamp for boot frames)
	incrOf   []*Increment // owning increment; nil for immortal/unmapped
	immortal []bool
	fill     []heap.Addr // bump high-water mark per frame
	cards    []bool      // dirty-card table (CardBarrier only), indexed by addr >> cardShift

	heapFrames int // currently mapped collectible frames

	boot struct {
		cursor heap.Addr
		limit  heap.Addr
		frames []heap.Frame
		bytes  int
	}

	reserveBytes   int // current dynamic conservative copy reserve
	serial         uint32
	dbgBarrierHits int // slow-path count for DebugDropBarrierEvery
	inGC           bool
	gcCount        uint64
	slowAtLastGC   uint64 // Counters.BarrierSlowPaths at the previous GCEnd
	remsetPoll     int    // allocation counter throttling the remset trigger poll
	mos            mosState
	los            losState
	deg            degradeState
	mr             mrState

	// Reusable per-collection machinery, so steady-state collections and
	// trigger polls allocate nothing: the gcState scratch (scan pointers,
	// promotion targets), the remset-root buffer, and closures that would
	// otherwise be rebuilt — and heap-allocated — on every use.
	gcs              gcState
	rootBuf          []heap.Addr
	frameCondemnedFn func(heap.Frame) bool
	trigOld          *Increment // target increment of the current trigger poll
	trigTargetFn     func(heap.Frame) bool
}

// New builds a collector from cfg. The type registry is shared with the
// mutator that will drive the heap.
func New(cfg Config, types *heap.Registry) (*Heap, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if isZeroCosts(cfg.Costs) {
		cfg.Costs = stats.DefaultCosts()
	}
	// The heap owns its belt specs: an adaptive Policy retunes them in
	// place, and the caller's Config (often a preset reused across runs)
	// must not see those writes.
	cfg.Belts = append([]BeltSpec(nil), cfg.Belts...)
	h := &Heap{
		cfg:   cfg,
		space: heap.NewSpace(cfg.FrameBytes, types),
		clock: stats.NewClock(cfg.Costs),
		rems:  remset.NewTable(),
		roots: gc.NewRootSet(),
	}
	h.space.OnMap = func() { h.clock.Counters.FramesMapped++ }
	h.space.OnUnmap = func() { h.clock.Counters.FramesUnmapped++ }
	if fh := cfg.Faults; fh != nil && fh.MapFrame != nil {
		// Collectible-frame maps go through TryMapFrame/TryMapSpan, so
		// this gates exactly the injectable sites; boot-image maps use
		// MapFrame directly and stay must-succeed.
		h.space.MapGate = fh.MapFrame
	}
	for i, spec := range cfg.Belts {
		h.belts = append(h.belts, &Belt{spec: spec, priority: uint16(i), promoteTo: spec.PromoteTo})
	}
	h.mos.carsPerTrain = cfg.MOSCarsPerTrain
	if h.mos.carsPerTrain == 0 {
		h.mos.carsPerTrain = 4
	}
	h.frameCondemnedFn = h.frameCondemned
	h.trigTargetFn = func(f heap.Frame) bool {
		return int(f) < len(h.incrOf) && h.incrOf[f] == h.trigOld
	}
	h.mrInit()
	h.recomputeReserve()
	return h, nil
}

// Name implements gc.Collector.
func (h *Heap) Name() string { return h.cfg.Name }

// Config returns the collector's configuration.
func (h *Heap) Config() Config { return h.cfg }

// Clock implements gc.Collector.
func (h *Heap) Clock() *stats.Clock { return h.clock }

// Roots implements gc.Collector.
func (h *Heap) Roots() *gc.RootSet { return h.roots }

// Space implements gc.Collector.
func (h *Heap) Space() *heap.Space { return h.space }

// HeapBytes implements gc.Collector.
func (h *Heap) HeapBytes() int { return h.cfg.HeapBytes }

// Remsets exposes the remembered-set table (tests and stats).
func (h *Heap) Remsets() *remset.Table { return h.rems }

// Belts returns the live belt structures (inspection only).
func (h *Heap) Belts() []*Belt { return h.belts }

// AllocBeltIndex returns the index of the current allocation belt (it
// changes only under BOF flips).
func (h *Heap) AllocBeltIndex() int { return h.allocBelt }

// ReserveBytes returns the current dynamic copy reserve.
func (h *Heap) ReserveBytes() int { return h.reserveBytes }

// LiveEstimate implements gc.Collector: bytes occupied by objects in the
// collected space (survivors plus not-yet-collected garbage).
func (h *Heap) LiveEstimate() int {
	n := 0
	for _, b := range h.belts {
		n += b.Bytes()
	}
	return n
}

// SetHooks implements gc.Hookable.
func (h *Heap) SetHooks(hooks gc.Hooks) { h.hooks = hooks }

// noteOOM reports an out-of-memory condition to the OOM hook (requested
// is 0 when the copy reserve ran out mid-collection rather than a
// mutator allocation failing).
func (h *Heap) noteOOM(requested int) {
	if h.hooks.OOM != nil {
		h.hooks.OOM(requested, h.cfg.HeapBytes)
	}
}

// FootprintBytes returns the mapped memory footprint (heap + boot image),
// the quantity compared against physical memory by the paging model.
func (h *Heap) FootprintBytes() int {
	return (h.heapFrames + len(h.boot.frames)) * h.cfg.FrameBytes
}

// freeBudgetBytes returns how many bytes of new frames the mutator may
// still map before the heap-full condition: budget minus mapped frames
// minus the copy reserve.
func (h *Heap) freeBudgetBytes() int {
	return h.cfg.HeapBytes - h.heapFrames*h.cfg.FrameBytes - h.reserveBytes
}

// freeBudgetFor is freeBudgetBytes as seen by an allocation into belt
// `forBelt`: the unclaimed portion of every OTHER belt's permanent
// reservation (BeltSpec.ReserveFrac) is unavailable, while the
// requesting belt may draw on its own.
func (h *Heap) freeBudgetFor(forBelt int) int {
	free := h.freeBudgetBytes()
	usable := h.cfg.HeapBytes - h.reserveBytes
	for i, b := range h.belts {
		rf := b.spec.ReserveFrac
		if rf <= 0 || i == forBelt {
			continue
		}
		held := 0
		for _, in := range b.incrs {
			held += len(in.frames) * h.cfg.FrameBytes
		}
		if reserved := int(rf * float64(usable)); reserved > held {
			free -= reserved - held
		}
	}
	return free
}

// ensureFrameMeta grows the per-frame metadata tables to cover f.
func (h *Heap) ensureFrameMeta(f heap.Frame) {
	for int(f) >= len(h.stamp) {
		h.stamp = append(h.stamp, 0)
		h.incrOf = append(h.incrOf, nil)
		h.immortal = append(h.immortal, false)
		h.fill = append(h.fill, heap.Nil)
	}
	if h.cfg.Barrier == CardBarrier {
		h.ensureCards(f)
		h.clearFrameCards(f)
	}
}

// Alloc implements gc.Collector. It bump-allocates size bytes in the
// allocation belt, triggering collections per the configuration's
// scheduling rules when space runs out.
func (h *Heap) Alloc(t *heap.TypeDesc, length int) (heap.Addr, error) {
	size := t.Size(length)
	if th := h.losThreshold(); th > 0 && size > th {
		return h.allocLOS(t, length, size)
	}
	if size > h.cfg.FrameBytes {
		return heap.Nil, fmt.Errorf("core: object of %d bytes exceeds frame size %d (enable the LOS via LOSThresholdBytes)", size, h.cfg.FrameBytes)
	}
	c := &h.clock.Counters
	c.ObjectsAllocated++
	c.BytesAllocated += uint64(size)
	// AllocByte covers zeroing and header init; BarrierFast models the
	// TIB-initialization store every Jikes allocation performs (§3.3.2).
	h.clock.Advance(h.cfg.Costs.AllocByte*float64(size) + h.cfg.Costs.BarrierFast)
	if fh := h.cfg.Faults; fh != nil && fh.AllocCost != nil {
		if x := fh.AllocCost(); x > 0 {
			// Injected cost inflation (a slow-allocation fault). Cost
			// only: the clock is outside the oracle's semantic state.
			h.clock.Advance(h.cfg.Costs.AllocByte * float64(size) * x)
		}
	}
	h.chargePaging(size)

	// The remset trigger preempts collections even before the heap
	// fills. Polling is throttled: the precise per-increment count walks
	// the remset table, so it runs at most once per 64 allocations.
	if h.cfg.RemsetThreshold > 0 {
		h.remsetPoll++
		if h.remsetPoll >= 64 {
			h.remsetPoll = 0
			if _, err := h.pollRemsetTrigger(); err != nil {
				return heap.Nil, err
			}
		}
	}

	// A tight heap may need several incremental collections (nursery,
	// then belt-1 increments in FIFO order, then the top belt) before a
	// frame frees, so the retry bound scales with the number of live
	// increments.
	maxAttempts := 4 + 2*len(h.belts)
	for _, b := range h.belts {
		maxAttempts += b.Len()
	}
	for attempt := 0; ; attempt++ {
		if a, ok := h.tryAlloc(size); ok {
			h.serial++
			h.space.Format(a, t, length, h.serial)
			return a, nil
		}
		if attempt >= maxAttempts {
			break
		}
		if err := h.collectForAlloc(); err != nil {
			return heap.Nil, err
		}
	}
	if h.cfg.Degrade {
		a, ok, err := h.rescueAlloc(size, func() (heap.Addr, bool) { return h.tryAlloc(size) })
		if err != nil {
			return heap.Nil, err
		}
		if ok {
			h.serial++
			h.space.Format(a, t, length, h.serial)
			return a, nil
		}
	}
	return heap.Nil, h.oomError(size,
		fmt.Sprintf("%s: no progress after repeated collections", h.cfg.Name))
}

// chargePaging applies the cost model's paging term: once the mapped
// footprint exceeds physical memory, mutator work slows in proportion to
// the overcommit ratio (this reproduces the large-heap degradation of
// paper Figures 1(b) and 10(f)).
func (h *Heap) chargePaging(bytes int) {
	pm := h.cfg.PhysMemBytes
	if pm <= 0 || h.cfg.Costs.PageByte == 0 {
		return
	}
	over := h.FootprintBytes() - pm
	if over <= 0 {
		return
	}
	h.clock.Counters.PageFaultBytes += uint64(bytes)
	h.clock.Advance(h.cfg.Costs.PageByte * float64(bytes) * float64(over) / float64(pm))
}

// tryAlloc attempts a bump allocation of size bytes without collecting.
func (h *Heap) tryAlloc(size int) (heap.Addr, bool) {
	belt := h.belts[h.allocBelt]
	in := belt.Youngest()

	// Time-to-die trigger (§3.3.3): within TTDBytes of heap-full, open a
	// fresh nursery increment so the youngest objects escape the next
	// collection.
	if h.cfg.TTDBytes > 0 && in != nil && !in.condemned &&
		h.freeBudgetFor(h.allocBelt) < h.cfg.TTDBytes && belt.Len() == 1 {
		if a, ok := h.allocNewIncrement(belt, size, true); ok {
			return a, true
		}
		return heap.Nil, false
	}

	if in != nil && !in.condemned {
		if in.cursor != heap.Nil && in.cursor+heap.Addr(size) <= in.limit {
			return h.bump(in, size), true
		}
		// A mark-region belt hunts swept line runs across all of its
		// increments before growing the mapped footprint.
		if h.mr.active {
			if a, ok := h.mrRefillBelt(h.allocBelt, size); ok {
				return a, true
			}
		}
		// Current frame exhausted (or no frame yet): extend the increment.
		if !in.atCapacity() && h.freeBudgetFor(h.allocBelt) >= h.cfg.FrameBytes {
			if !h.addFrame(in) {
				return heap.Nil, false // injected map failure: treat as heap-full
			}
			return h.bump(in, size), true
		}
		if in.atCapacity() {
			// Nursery trigger territory: the increment is at its size
			// bound. Open a sibling increment if the belt allows more.
			if a, ok := h.allocNewIncrement(belt, size, false); ok {
				return a, true
			}
			return heap.Nil, false
		}
		return heap.Nil, false // heap full
	}
	if a, ok := h.allocNewIncrement(belt, size, false); ok {
		return a, true
	}
	return heap.Nil, false
}

// allocNewIncrement opens a new increment on belt and allocates size
// bytes in it, if the belt's increment bound and the heap budget allow.
// bypassMax skips the MaxIncrements check (used by the TTD trigger).
func (h *Heap) allocNewIncrement(belt *Belt, size int, bypassMax bool) (heap.Addr, bool) {
	if !bypassMax && belt.spec.MaxIncrements > 0 && belt.Len() >= belt.spec.MaxIncrements {
		return heap.Nil, false
	}
	if h.freeBudgetFor(h.allocBelt) < h.cfg.FrameBytes {
		return heap.Nil, false
	}
	in := h.newIncrement(belt)
	if !h.addFrame(in) {
		// Injected map failure: roll the frameless increment back so the
		// belt never holds an empty increment (seq gaps are fine).
		belt.remove(in)
		return heap.Nil, false
	}
	return h.bump(in, size), true
}

// newIncrement creates an empty increment at the back of belt, fixing its
// frame budget from the current usable memory.
func (h *Heap) newIncrement(belt *Belt) *Increment {
	beltIdx := -1
	for i, b := range h.belts {
		if b == belt {
			beltIdx = i
		}
	}
	if h.cfg.MOS && beltIdx == h.mosBelt() {
		panic("core: newIncrement on the MOS belt (use newMOSCar)")
	}
	in := &Increment{belt: beltIdx, seq: belt.nextSeq, train: -1}
	belt.nextSeq++
	if f := belt.spec.IncrementFrac; f < 1.0 {
		usable := h.cfg.HeapBytes - h.reserveBytes
		capBytes := int(f * float64(usable))
		in.capFrames = capBytes / h.cfg.FrameBytes
		if in.capFrames < 1 {
			in.capFrames = 1
		}
	}
	belt.incrs = append(belt.incrs, in)
	return in
}

// addFrame maps a fresh frame for increment in and makes it the bump
// target, reporting false if the (fault-injectable) map failed. Tail
// space in the previous frame is abandoned (and counted as occupancy at
// frame granularity by the budget, as in a real VM).
func (h *Heap) addFrame(in *Increment) bool {
	f, ok := h.space.TryMapFrame()
	if !ok {
		return false
	}
	h.ensureFrameMeta(f)
	belt := h.belts[in.belt]
	h.stamp[f] = stampOf(belt.priority, in.seq)
	h.incrOf[f] = in
	h.immortal[f] = false
	base := h.space.FrameBase(f)
	h.fill[f] = base
	in.frames = append(in.frames, f)
	in.cursor = base
	in.limit = h.space.FrameLimit(f)
	if h.isMRBelt(in.belt) {
		h.mrAttach(f)
	}
	h.heapFrames++
	h.clock.Advance(h.cfg.Costs.FrameOp)
	if !h.inGC {
		// The reserve tracks occupancy continuously (§3.3.4); growing
		// the heap by a frame can grow the worst-case condemned set.
		h.recomputeReserve()
	}
	return true
}

// bump performs the bump allocation inside the increment's open window
// (a frame tail for copying increments, a free-line run for mark-region
// ones, where the new object's start and line span are also recorded).
func (h *Heap) bump(in *Increment, size int) heap.Addr {
	a := in.cursor
	in.cursor += heap.Addr(size)
	f := h.space.FrameOf(a)
	h.fill[f] = in.cursor
	if fs := h.mrFrame(f); fs != nil {
		// Mark-region occupancy is line-granular at all times: the
		// increment accounts whole lines as they first become used.
		newLines := fs.NoteAlloc(int(a-h.space.FrameBase(f)), size)
		in.bytes += newLines * h.mr.geo.LineBytes
	} else {
		in.bytes += size
	}
	return a
}

// AllocImmortal implements gc.Collector: bump allocation in the boot
// image. Immortal frames carry the maximal collection-order stamp, so the
// frame barrier remembers boot-image stores into the heap; the boundary
// barrier instead scans the boot image at every collection.
func (h *Heap) AllocImmortal(t *heap.TypeDesc, length int) (heap.Addr, error) {
	size := t.Size(length)
	if size > h.cfg.FrameBytes {
		return heap.Nil, fmt.Errorf("core: immortal object of %d bytes exceeds frame size %d",
			size, h.cfg.FrameBytes)
	}
	if h.boot.cursor == heap.Nil || h.boot.cursor+heap.Addr(size) > h.boot.limit {
		f := h.space.MapFrame()
		h.ensureFrameMeta(f)
		h.stamp[f] = immortalStamp
		h.immortal[f] = true
		h.boot.frames = append(h.boot.frames, f)
		h.boot.cursor = h.space.FrameBase(f)
		h.boot.limit = h.space.FrameLimit(f)
		h.fill[f] = h.boot.cursor
	}
	a := h.boot.cursor
	h.boot.cursor += heap.Addr(size)
	h.boot.bytes += size
	h.fill[h.space.FrameOf(a)] = h.boot.cursor
	h.serial++
	h.space.Format(a, t, length, h.serial)
	h.clock.Counters.ObjectsAllocated++
	h.clock.Advance(h.cfg.Costs.AllocByte * float64(size))
	return a, nil
}

// BootBytes returns the boot-image occupancy.
func (h *Heap) BootBytes() int { return h.boot.bytes }

// Collections returns the number of collections performed.
func (h *Heap) Collections() uint64 { return h.gcCount }
