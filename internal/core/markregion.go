package core

import (
	"beltway/internal/heap"
	"beltway/internal/markregion"
)

// Mark-region substrate integration (BeltSpec.Substrate == MarkRegion).
//
// A mark-region belt keeps the belt/increment/stamp discipline of the
// copying substrate, but an increment's frames are divided into lines
// (internal/markregion) and reclaimed without moving survivors:
//
//   - allocation bumps over runs of free lines, skipping holes too
//     small for the object (Immix's conservative skip);
//
//   - when an increment is condemned, it is RENEWED — re-sequenced to
//     the back of its belt with its frames restamped — before the
//     trace, so reachable objects can be marked in place while the
//     remembered sets stay sound (see mrPrepareCollection);
//
//   - frames whose line occupancy fell below Config.MRDefragFrac are
//     instead evacuated through the ordinary forward/CopyObject path,
//     which keeps the vm.Validator mirror and the remsets correct for
//     defragmentation moves for free;
//
//   - after the trace, dead lines are swept back into allocatable runs
//     and the increment rejoins its belt with line-granularity
//     occupancy.
type mrState struct {
	active bool
	geo    markregion.Geometry

	frames []*markregion.Frame // by heap.Frame; nil for copying/boot/LOS frames
	evac   []bool              // by heap.Frame: defrag candidate in the current GC
	pool   []*markregion.Frame // detached frame metadata, reused on attach

	queue []heap.Addr // gray stack: in-place marked and MR-copied objects to scan

	// Reusable Sweep size callback (closures on the release path would
	// allocate); sweepBase parameterizes it per frame.
	sizeOfFn  func(off int) int
	sweepBase heap.Addr
}

// mrInit prepares the substrate state at construction time.
func (h *Heap) mrInit() {
	for _, b := range h.cfg.Belts {
		if b.Substrate == MarkRegion {
			h.mr.active = true
		}
	}
	if !h.mr.active {
		return
	}
	lb := h.cfg.MRLineBytes
	if lb == 0 {
		lb = markregion.DefaultLineBytes
	}
	g, err := markregion.NewGeometry(h.cfg.FrameBytes, lb)
	if err != nil {
		panic(err) // unreachable: Validate checked the geometry
	}
	h.mr.geo = g
	h.mr.sizeOfFn = func(off int) int {
		return h.space.SizeOf(h.mr.sweepBase + heap.Addr(off))
	}
}

// isMRBelt reports whether belt bi uses the mark-region substrate.
func (h *Heap) isMRBelt(bi int) bool {
	return h.mr.active && h.cfg.Belts[bi].Substrate == MarkRegion
}

// mrFrame returns frame f's mark-region metadata, nil for copying,
// boot-image, large-object and unmapped frames. The len check keeps the
// copying-substrate fast paths at a single compare when no belt is
// mark-region (the slice stays nil).
func (h *Heap) mrFrame(f heap.Frame) *markregion.Frame {
	if int(f) >= len(h.mr.frames) {
		return nil
	}
	return h.mr.frames[f]
}

// mrAttach installs fresh line metadata for frame f (from the pool when
// possible). Called by addFrame for mark-region increments.
func (h *Heap) mrAttach(f heap.Frame) {
	for int(f) >= len(h.mr.frames) {
		h.mr.frames = append(h.mr.frames, nil)
		h.mr.evac = append(h.mr.evac, false)
	}
	var fs *markregion.Frame
	if n := len(h.mr.pool); n > 0 {
		fs = h.mr.pool[n-1]
		h.mr.pool = h.mr.pool[:n-1]
		fs.Reset()
	} else {
		fs = h.mr.geo.NewFrame()
	}
	h.mr.frames[f] = fs
}

// mrDetach returns frame f's metadata to the pool (frame unmapped).
func (h *Heap) mrDetach(f heap.Frame) {
	h.mr.pool = append(h.mr.pool, h.mr.frames[f])
	h.mr.frames[f] = nil
	h.mr.evac[f] = false
}

// mrRefill points increment in's bump window at the next run of free
// lines among its frames, resuming from the per-increment line cursor
// (reset by each sweep, so one allocation cycle visits each line once).
// A run shorter than the object's line footprint is skipped wholesale —
// the conservative skip that keeps medium objects contiguous. Returns
// false when no frame of the increment has a big-enough run.
func (h *Heap) mrRefill(in *Increment, size int) bool {
	if !h.isMRBelt(in.belt) {
		return false
	}
	need := h.mr.geo.LinesFor(size)
	for in.mrFi < len(in.frames) {
		f := in.frames[in.mrFi]
		start, end, ok := h.mr.frames[f].FindRun(in.mrLine, need)
		if !ok {
			in.mrFi++
			in.mrLine = 0
			continue
		}
		base := h.space.FrameBase(f)
		in.cursor = base + heap.Addr(start*h.mr.geo.LineBytes)
		in.limit = base + heap.Addr(end*h.mr.geo.LineBytes)
		in.mrLine = end
		// Recycled lines still hold the swept objects' bytes; new objects
		// must see nil slots and zero data, as they would in a fresh frame.
		h.space.ZeroRange(in.cursor, int(in.limit-in.cursor))
		return true
	}
	return false
}

// mrRefillBelt hunts a free-line run across ALL of a mark-region belt's
// increments (oldest first) and bump-allocates size bytes into the first
// hole found. Mutator allocation normally targets the youngest
// increment; reusing holes in older increments is what turns swept
// lines back into capacity without waiting for those increments to
// empty. Stamp soundness is unaffected: the write barrier compares
// frame stamps, not allocation order.
func (h *Heap) mrRefillBelt(bi, size int) (heap.Addr, bool) {
	if !h.isMRBelt(bi) {
		return heap.Nil, false
	}
	for _, in := range h.belts[bi].incrs {
		if in.condemned {
			continue
		}
		if in.cursor != heap.Nil && in.cursor+heap.Addr(size) <= in.limit {
			return h.bump(in, size), true
		}
		if h.mrRefill(in, size) {
			return h.bump(in, size), true
		}
	}
	return heap.Nil, false
}

// mrPrepareCollection renews the condemned mark-region increments and
// flags their sparse frames for evacuation, BEFORE any tracing.
//
// Renewal — re-sequencing the increment to the back of its belt and
// restamping its frames — is what keeps the remembered sets sound for
// in-place survivors. The argument:
//
//   - every live pointer INTO the renewed increment from outside the
//     condemned set is processed by this collection (remset roots, or a
//     slot of a scanned survivor), and every such slot passes through
//     rescanSlot, which re-inserts it iff still interesting under the
//     new (higher) stamp;
//
//   - raising a target's stamp only shrinks the set of interesting
//     pointers, so entries not re-inserted are not needed: any frame
//     whose stamp is below the renewed increment's new stamp is
//     collected before it (FIFO/priority order), and its survivors'
//     slots are re-examined — against the then-current stamps — at
//     that collection;
//
//   - FIFO progress is preserved: the renewed increment re-enters at
//     the back, so the belt's other increments are each collected
//     before it is condemned again.
func (h *Heap) mrPrepareCollection(victims []*Increment) {
	if !h.mr.active {
		return
	}
	h.mr.queue = h.mr.queue[:0]
	threshold := 0
	if h.cfg.MRDefragFrac > 0 {
		threshold = int(h.cfg.MRDefragFrac * float64(h.mr.geo.Lines()))
	}
	for _, in := range victims {
		if !h.isMRBelt(in.belt) {
			continue
		}
		for _, f := range in.frames {
			h.mr.evac[f] = h.mr.frames[f].UsedLines() < threshold
		}
		belt := h.belts[in.belt]
		belt.remove(in)
		in.seq = belt.nextSeq
		belt.nextSeq++
		belt.incrs = append(belt.incrs, in)
		for _, f := range in.frames {
			h.stamp[f] = stampOf(belt.priority, in.seq)
		}
	}
}

// mrStale reports whether val points into a mark-region frame at an
// address where no object currently starts — a stale pointer to storage
// reclaimed by a line sweep. Live objects can never hold such a value
// (a reachable referent is marked, so it survives every sweep); they
// appear only in slots of dead objects conservatively resurrected
// through stale remembered-set entries, and in dead-but-unswept large
// objects. Copying substrates tolerate those stale pointers because a
// condemned copying frame holds valid headers end to end; a swept line
// does not, so callers must clear the slot instead of forwarding.
func (h *Heap) mrStale(val heap.Addr) bool {
	if !h.mr.active {
		return false
	}
	f := h.space.FrameOf(val)
	fs := h.mrFrame(f)
	return fs != nil && !fs.IsObjStart(int(val-h.space.FrameBase(f)))
}

// mrMark marks the condemned object at a in place (unless its frame is
// an evacuation candidate), queueing it for scanning on first mark.
// Reports whether the object is handled by the mark path; forward falls
// through to the copying path otherwise.
func (h *Heap) mrMark(a heap.Addr) bool {
	f := h.space.FrameOf(a)
	fs := h.mrFrame(f)
	if fs == nil || h.mr.evac[f] {
		return false
	}
	if fs.Mark(int(a - h.space.FrameBase(f))) {
		c := &h.clock.Counters
		c.MRObjectsMarked++
		c.MRBytesMarked += uint64(h.space.SizeOf(a))
		h.clock.Advance(h.cfg.Costs.MarkObject)
		h.mr.queue = append(h.mr.queue, a)
	}
	return true
}

// drainMRQueue scans objects marked in place (and objects copied into
// mark-region frames, which cannot be Cheney-scanned because their
// frames have holes). Returns whether it advanced; the collect fixpoint
// loops it against the Cheney scans and the LOS queue.
func (h *Heap) drainMRQueue(st *gcState) (bool, error) {
	advanced := false
	for len(h.mr.queue) > 0 {
		a := h.mr.queue[len(h.mr.queue)-1]
		h.mr.queue = h.mr.queue[:len(h.mr.queue)-1]
		advanced = true
		if _, err := h.scanObject(a, st); err != nil {
			return advanced, err
		}
	}
	return advanced, nil
}

// mrRelease completes the collection of a renewed mark-region
// increment: evacuated and object-free frames are unmapped; the rest
// are swept to free line runs. The increment — renewed to the back of
// its belt by mrPrepareCollection — rejoins it with line-granularity
// occupancy, or leaves the belt when nothing survived anywhere.
func (h *Heap) mrRelease(in *Increment) {
	c := &h.clock.Counters
	kept := in.frames[:0]
	bytes := 0
	for _, f := range in.frames {
		fs := h.mr.frames[f]
		usedBefore := fs.UsedLines()
		live := 0
		if !h.mr.evac[f] {
			h.mr.sweepBase = h.space.FrameBase(f)
			_, live = fs.Sweep(h.mr.sizeOfFn)
			h.clock.Advance(h.cfg.Costs.LineSweepByte * float64(h.cfg.FrameBytes))
		}
		if h.mr.evac[f] || live == 0 {
			if h.mr.evac[f] {
				c.MRFramesEvacuated++
			}
			c.MRLinesReclaimed += uint64(usedBefore)
			h.mrDetach(f)
			h.rems.DeleteFrame(f)
			h.space.UnmapFrame(f)
			h.incrOf[f] = nil
			h.stamp[f] = 0
			h.fill[f] = heap.Nil
			h.heapFrames--
			h.clock.Advance(h.cfg.Costs.FrameOp)
			continue
		}
		c.MRFramesSwept++
		c.MRLinesReclaimed += uint64(usedBefore - fs.UsedLines())
		kept = append(kept, f)
		bytes += fs.UsedLines() * h.mr.geo.LineBytes
	}
	in.frames = kept
	in.bytes = bytes
	in.cursor, in.limit = heap.Nil, heap.Nil
	in.mrFi, in.mrLine = 0, 0
	in.condemned = false
	if len(in.frames) == 0 {
		h.belts[in.belt].remove(in)
	}
}

// mrCopyBound bounds the bytes a condemned increment can force through
// the copy reserve: everything for a copying increment, but only the
// evacuation candidates for a mark-region one — a frame is evacuated
// only when its occupancy is below MRDefragFrac, so each contributes
// less than MRDefragFrac*FrameBytes of survivors. With defragmentation
// off, a mark-region collection copies nothing at all.
func (h *Heap) mrCopyBound(in *Increment) int {
	if !h.isMRBelt(in.belt) {
		return in.bytes
	}
	bound := int(h.cfg.MRDefragFrac*float64(h.cfg.FrameBytes)) * len(in.frames)
	if in.bytes < bound {
		return in.bytes
	}
	return bound
}

// mrBeltCopyBound is mrCopyBound summed over a whole belt (the bytes a
// wholesale condemnation of the belt can copy).
func (h *Heap) mrBeltCopyBound(b *Belt) int {
	n := 0
	for _, in := range b.incrs {
		n += h.mrCopyBound(in)
	}
	return n
}

// MRLineStats returns the total and used line counts across a belt's
// mark-region frames (both zero for copying belts). Inspection only.
func (h *Heap) MRLineStats(bi int) (lines, used int) {
	if !h.isMRBelt(bi) {
		return 0, 0
	}
	for _, in := range h.belts[bi].incrs {
		for _, f := range in.frames {
			fs := h.mr.frames[f]
			lines += fs.Lines()
			used += fs.UsedLines()
		}
	}
	return lines, used
}
