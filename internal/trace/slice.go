package trace

import (
	"encoding/binary"
	"fmt"

	"beltway/internal/gc"
	"beltway/internal/heap"
)

// rawOp is one decoded trace operation: its op byte, varint arguments,
// and (for type definitions) the inline name payload.
type rawOp struct {
	code byte
	args []uint64
	name string
}

// decodeOps parses the trace into its operation list.
func decodeOps(buf []byte) ([]rawOp, error) {
	var ops []rawOp
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: bad varint at %d", pos)
		}
		pos += n
		return v, nil
	}
	argc := map[byte]int{
		opDefineType: 4, opAlloc: 3, opAllocGlobal: 3, opAllocImmortal: 3,
		opSetRef: 3, opGetRef: 3, opRelease: 1, opPush: 0, opPop: 0,
		opSetData: 3, opGetData: 2, opWork: 1, opCollect: 1, opKeep: 2,
		opAllocPretenured: 4,
	}
	for pos < len(buf) {
		op := rawOp{code: buf[pos]}
		pos++
		n, ok := argc[op.code]
		if !ok {
			return nil, fmt.Errorf("trace: unknown op %d at %d", op.code, pos-1)
		}
		for i := 0; i < n; i++ {
			v, err := next()
			if err != nil {
				return nil, err
			}
			op.args = append(op.args, v)
		}
		if op.code == opDefineType {
			nameLen := int(op.args[3])
			if pos+nameLen > len(buf) {
				return nil, fmt.Errorf("trace: bad type record at %d", pos)
			}
			op.name = string(buf[pos : pos+nameLen])
			pos += nameLen
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// AllocBytes sums the heap bytes the trace's allocations request
// (object headers included, immortal boot-image allocations too). A
// differential driver sizes replay heaps from it so that completion is
// configuration-independent and OOM verdicts stay comparable.
func (t *Trace) AllocBytes() (int, error) {
	ops, err := decodeOps(t.buf)
	if err != nil {
		return 0, err
	}
	type shape struct{ kind, refs, words int }
	typeTab := []shape{{}} // index 0 unused
	total := 0
	for _, op := range ops {
		switch op.code {
		case opDefineType:
			typeTab = append(typeTab,
				shape{int(op.args[0]), int(op.args[1]), int(op.args[2])})
		case opAlloc, opAllocGlobal, opAllocImmortal, opAllocPretenured:
			ti := int(op.args[0])
			if ti <= 0 || ti >= len(typeTab) {
				return 0, fmt.Errorf("trace: alloc references undefined type %d", ti)
			}
			sh := typeTab[ti]
			payload := sh.refs + sh.words
			if heap.Kind(sh.kind) != heap.Scalar {
				payload = int(op.args[1])
			}
			total += heap.HeaderBytes + payload*heap.WordBytes
		}
	}
	return total, nil
}

// NumOps returns the number of mutator operations in the trace. Type
// definitions are structural records, not mutator operations, and are
// not counted (nor selectable by Slice).
func (t *Trace) NumOps() (int, error) {
	ops, err := decodeOps(t.buf)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, op := range ops {
		if op.code != opDefineType {
			n++
		}
	}
	return n, nil
}

// Slice builds a new trace containing only the mutator operations whose
// index (in NumOps numbering) satisfies keep, with every handle value
// renumbered to what a fresh gc.RootSet will assign during replay of the
// reduced stream. Type definitions are always retained. It returns an
// error when the reduced stream is not self-contained — a kept operation
// references a handle created by a dropped one, or closes a scope that
// was never opened — which a delta-debugging loop treats as "candidate
// invalid", not as a failure of the trace being minimized.
//
// Renumbering simulates the replay-side root table with an actual
// gc.RootSet, so handle reuse through the free list and scope-release
// order are reproduced exactly; replay's handle-drift assertions then
// hold for any semantics-preserving reduction. (A reduction that changes
// semantics — e.g. dropping the store a later load depends on — replays
// as a drift error and is likewise rejected by the caller's predicate.)
func (t *Trace) Slice(keep func(i int) bool) (out *Trace, err error) {
	defer func() {
		// The RootSet simulation panics on invalid handle use (release
		// after scope exit, unbalanced Pop); that marks the candidate
		// invalid rather than a bug.
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("trace: slice invalid: %v", r)
		}
	}()
	ops, err := decodeOps(t.buf)
	if err != nil {
		return nil, err
	}
	nt := &Trace{}
	rs := gc.NewRootSet()
	// dummy is the address stored in simulated root slots; any non-nil
	// value works since the simulation never dereferences it.
	const dummy = heap.Addr(4)
	remap := map[uint64]uint64{0: 0} // old handle -> renumbered handle
	mapped := func(old uint64) (uint64, error) {
		nh, ok := remap[old]
		if !ok {
			return 0, fmt.Errorf("trace: slice drops handle %d still in use", old)
		}
		return nh, nil
	}
	idx := -1
	for _, op := range ops {
		if op.code == opDefineType {
			nt.emit(opDefineType, op.args...)
			nt.buf = append(nt.buf, op.name...)
			continue
		}
		idx++
		if !keep(idx) {
			continue
		}
		switch op.code {
		case opAlloc, opAllocImmortal:
			nh := uint64(rs.Add(dummy))
			remap[op.args[2]] = nh
			nt.emit(op.code, op.args[0], op.args[1], nh)
		case opAllocGlobal:
			nh := uint64(rs.AddGlobal(dummy))
			remap[op.args[2]] = nh
			nt.emit(op.code, op.args[0], op.args[1], nh)
		case opAllocPretenured:
			var nh uint64
			if op.args[3] == 1 {
				nh = uint64(rs.AddGlobal(dummy))
			} else {
				nh = uint64(rs.Add(dummy))
			}
			remap[op.args[2]] = nh
			nt.emit(op.code, op.args[0], op.args[1], nh, op.args[3])
		case opSetRef:
			obj, err := mapped(op.args[0])
			if err != nil {
				return nil, err
			}
			val, err := mapped(op.args[2])
			if err != nil {
				return nil, err
			}
			nt.emit(opSetRef, obj, op.args[1], val)
		case opGetRef:
			obj, err := mapped(op.args[0])
			if err != nil {
				return nil, err
			}
			nh := uint64(0)
			if op.args[2] != 0 {
				nh = uint64(rs.Add(dummy))
				remap[op.args[2]] = nh
			}
			nt.emit(opGetRef, obj, op.args[1], nh)
		case opRelease:
			h, err := mapped(op.args[0])
			if err != nil {
				return nil, err
			}
			rs.Remove(gc.Handle(h))
			nt.emit(opRelease, h)
		case opPush:
			rs.PushScope()
			nt.emit(opPush)
		case opPop:
			rs.PopScope()
			nt.emit(opPop)
		case opSetData, opGetData:
			obj, err := mapped(op.args[0])
			if err != nil {
				return nil, err
			}
			nt.emit(op.code, append([]uint64{obj}, op.args[1:]...)...)
		case opKeep:
			h, err := mapped(op.args[0])
			if err != nil {
				return nil, err
			}
			nh := uint64(rs.AddGlobal(dummy))
			remap[op.args[1]] = nh
			nt.emit(opKeep, h, nh)
		case opWork, opCollect:
			nt.emit(op.code, op.args...)
		default:
			return nil, fmt.Errorf("trace: slice: unhandled op %d", op.code)
		}
	}
	return nt, nil
}
