package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

func newMutator(t *testing.T, cfg core.Config) *vm.Mutator {
	t.Helper()
	h, err := core.New(cfg, heap.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return vm.New(h)
}

// record runs a scripted workload with recording attached.
func record(t *testing.T, cfg core.Config) *Trace {
	t.Helper()
	m := newMutator(t, cfg)
	tr := NewTrace()
	m.SetRecorder(tr)
	types := m.C.Space().Types
	node := types.DefineScalar("node", 2, 1)
	arr := types.DefineRefArray("arr")
	rng := rand.New(rand.NewSource(7))
	err := m.Run(func() {
		root := m.AllocGlobal(arr, 16)
		boot := m.AllocImmortal(node, 0)
		m.SetRef(boot, 0, root)
		for i := 0; i < 3000; i++ {
			m.Push()
			n := m.Alloc(node, 0)
			m.SetData(n, 0, uint32(i))
			m.SetRef(root, i%16, n)
			if rng.Intn(4) == 0 {
				got := m.GetRef(root, rng.Intn(16))
				if got != 0 && rng.Intn(2) == 0 {
					kept := m.Keep(got)
					m.Release(kept)
				}
			}
			if rng.Intn(16) == 0 {
				m.SetRefNil(root, rng.Intn(16))
			}
			m.Work(3)
			m.Pop()
			if i == 1500 {
				m.Collect(false)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func smallCfg() core.Config {
	return collectors.XX100(25, collectors.Options{HeapBytes: 256 << 10, FrameBytes: 4096})
}

// TestReplayMatchesLiveRun records on one collector and replays on a
// fresh identical collector: every counter must match the recording run
// exactly.
func TestReplayMatchesLiveRun(t *testing.T) {
	tr := record(t, smallCfg())
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}

	m2 := newMutator(t, smallCfg())
	if err := Replay(tr, m2); err != nil {
		t.Fatalf("replay: %v", err)
	}

	m3 := newMutator(t, smallCfg())
	tr3 := NewTrace()
	m3.SetRecorder(tr3)
	if err := Replay(tr, m3); err != nil {
		t.Fatalf("re-recording replay: %v", err)
	}
	// Replaying while re-recording must reproduce the identical trace.
	if !bytes.Equal(encoded(tr), encoded(tr3)) {
		t.Error("re-recorded trace differs from original")
	}
}

// TestReplayOnDifferentCollectors replays one trace against several
// configurations; mutator-side counters (allocation, stores) must agree
// even though collector-side behaviour differs.
func TestReplayOnDifferentCollectors(t *testing.T) {
	tr := record(t, smallCfg())
	o := collectors.Options{HeapBytes: 256 << 10, FrameBytes: 4096}
	var allocs []uint64
	var collections []uint64
	for _, cfg := range []core.Config{
		collectors.BSS(o),
		collectors.XX(25, o),
		collectors.BOFM(25, o),
	} {
		h, err := core.New(cfg, heap.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		m := vm.New(h)
		if err := Replay(tr, m); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		allocs = append(allocs, h.Clock().Counters.BytesAllocated)
		collections = append(collections, h.Collections())
	}
	for i := 1; i < len(allocs); i++ {
		if allocs[i] != allocs[0] {
			t.Errorf("allocation volume differs across collectors: %v", allocs)
		}
	}
	// Different policies should actually behave differently somewhere.
	if collections[0] == collections[1] && collections[1] == collections[2] {
		t.Logf("note: all collectors performed %d collections", collections[0])
	}
}

// TestSerializeRoundTrip checks WriteTo/ReadFrom.
func TestSerializeRoundTrip(t *testing.T) {
	tr := record(t, smallCfg())
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encoded(tr), encoded(tr2)) {
		t.Error("round trip changed the trace")
	}
	m := newMutator(t, smallCfg())
	if err := Replay(tr2, m); err != nil {
		t.Fatalf("replay of deserialized trace: %v", err)
	}
}

// TestReadFromRejectsGarbage checks corrupt input handling.
func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte{0xff})); err == nil {
		t.Error("truncated trace accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	// Valid header, garbage body: replay must error, not panic.
	var buf bytes.Buffer
	buf.WriteByte(2) // length 2
	buf.Write([]byte{0xee, 0xee})
	tr, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := newMutator(t, smallCfg())
	if err := Replay(tr, m); err == nil {
		t.Error("garbage trace replayed without error")
	}
}

// encoded exposes the raw bytes for comparison.
func encoded(tr *Trace) []byte {
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	return buf.Bytes()
}
