// Package trace records and replays mutator event streams. A trace
// captures every vm.Mutator operation — allocations, barriered pointer
// stores, data writes, root scope changes, application work — so a
// workload can be executed once and replayed bit-identically against any
// collector configuration: the classic trace-driven methodology of GC
// research (cf. Stefanović's lifetime studies the paper builds on).
//
// Handles are stable across collectors: gc.RootSet assigns them purely
// by operation order, so the recorded handle values replay exactly, and
// the player asserts this as it goes.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// op codes. The format is a flat varint stream: [op] [args...].
const (
	opDefineType    byte = iota + 1 // kind, refSlots, dataWords, nameLen, name
	opAlloc                         // typeIdx, length, handle
	opAllocGlobal                   // typeIdx, length, handle
	opAllocImmortal                 // typeIdx, length, handle
	opSetRef                        // obj, slot, val (val 0 = nil)
	opGetRef                        // obj, slot, handle (0 = nil result)
	opRelease                       // handle
	opPush
	opPop
	opSetData         // obj, index, value
	opGetData         // obj, index
	opWork            // n
	opCollect         // full (0/1)
	opKeep            // handle, newHandle
	opAllocPretenured // typeIdx, length, handle, global(0/1)
)

// Trace is a recorded mutator event stream.
type Trace struct {
	buf []byte

	// recording state
	types   map[*heap.TypeDesc]uint64
	nTypes  uint64
	stopped bool
}

// NewTrace returns an empty trace ready to record.
func NewTrace() *Trace {
	return &Trace{types: make(map[*heap.TypeDesc]uint64)}
}

// Len returns the encoded size in bytes.
func (t *Trace) Len() int { return len(t.buf) }

func (t *Trace) emit(op byte, args ...uint64) {
	t.buf = append(t.buf, op)
	var tmp [binary.MaxVarintLen64]byte
	for _, a := range args {
		n := binary.PutUvarint(tmp[:], a)
		t.buf = append(t.buf, tmp[:n]...)
	}
}

func (t *Trace) typeIdx(td *heap.TypeDesc) uint64 {
	if i, ok := t.types[td]; ok {
		return i
	}
	t.nTypes++
	i := t.nTypes
	t.types[td] = i
	t.emit(opDefineType, uint64(td.Kind), uint64(td.RefSlots), uint64(td.DataWords),
		uint64(len(td.Name)))
	t.buf = append(t.buf, td.Name...)
	return i
}

// Recorder hooks: called by vm.Mutator when recording is attached.

// Alloc records an allocation and the handle it produced.
func (t *Trace) Alloc(td *heap.TypeDesc, length int, h gc.Handle, global, immortal bool) {
	op := opAlloc
	if immortal {
		op = opAllocImmortal
	} else if global {
		op = opAllocGlobal
	}
	ti := t.typeIdx(td)
	t.emit(op, ti, uint64(length), uint64(h))
}

// SetRef records a barriered pointer store (val may be NilHandle).
func (t *Trace) SetRef(obj gc.Handle, slot int, val gc.Handle) {
	t.emit(opSetRef, uint64(obj), uint64(slot), uint64(val))
}

// GetRef records a pointer load and the handle created for the referent.
func (t *Trace) GetRef(obj gc.Handle, slot int, out gc.Handle) {
	v := uint64(0)
	if out != gc.NilHandle {
		v = uint64(out)
	}
	t.emit(opGetRef, uint64(obj), uint64(slot), v)
}

// Release records an explicit handle release.
func (t *Trace) Release(h gc.Handle) { t.emit(opRelease, uint64(h)) }

// Push records a root-scope open.
func (t *Trace) Push() { t.emit(opPush) }

// Pop records a root-scope close.
func (t *Trace) Pop() { t.emit(opPop) }

// SetData records a data-word store.
func (t *Trace) SetData(obj gc.Handle, i int, v uint32) {
	t.emit(opSetData, uint64(obj), uint64(i), uint64(v))
}

// GetData records a data-word load.
func (t *Trace) GetData(obj gc.Handle, i int) { t.emit(opGetData, uint64(obj), uint64(i)) }

// Work records n units of application work.
func (t *Trace) Work(n int) { t.emit(opWork, uint64(n)) }

// Collect records a forced collection.
func (t *Trace) Collect(full bool) {
	f := uint64(0)
	if full {
		f = 1
	}
	t.emit(opCollect, f)
}

// Keep records a scope-escape re-rooting.
func (t *Trace) Keep(h, out gc.Handle) { t.emit(opKeep, uint64(h), uint64(out)) }

// AllocPretenured records a pretenured allocation.
func (t *Trace) AllocPretenured(td *heap.TypeDesc, length int, h gc.Handle, global bool) {
	g := uint64(0)
	if global {
		g = 1
	}
	ti := t.typeIdx(td)
	t.emit(opAllocPretenured, ti, uint64(length), uint64(h), g)
}

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(t.buf)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return 0, err
	}
	m, err := w.Write(t.buf)
	return int64(n + m), err
}

// ReadFrom deserializes a trace written by WriteTo.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("trace: truncated: %w", err)
	}
	return &Trace{buf: buf}, nil
}

// Replay executes the trace against a fresh mutator. Handle values are
// asserted against the recording as replay proceeds; a mismatch means
// the trace is corrupt or the root-set discipline changed. An
// out-of-memory condition is returned as the gc error, exactly as for a
// live workload run.
func Replay(t *Trace, m *vm.Mutator) error {
	var rerr error
	if err := m.Run(func() { rerr = replayBody(t, m) }); err != nil {
		return err // OOM during replay
	}
	return rerr
}

func replayBody(t *Trace, m *vm.Mutator) error {
	types := m.C.Space().Types
	var typeTab []*heap.TypeDesc // index 0 unused
	typeTab = append(typeTab, nil)

	buf := t.buf
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: bad varint at %d", pos)
		}
		pos += n
		return v, nil
	}
	for pos < len(buf) {
		op := buf[pos]
		pos++
		switch op {
		case opDefineType:
			kind, _ := next()
			refs, _ := next()
			words, _ := next()
			nameLen, err := next()
			if err != nil || pos+int(nameLen) > len(buf) {
				return fmt.Errorf("trace: bad type record")
			}
			name := string(buf[pos : pos+int(nameLen)])
			pos += int(nameLen)
			td := types.Lookup(name)
			if td == nil {
				td = types.Define(name, heap.Kind(kind), int(refs), int(words))
			}
			typeTab = append(typeTab, td)
		case opAlloc, opAllocGlobal, opAllocImmortal:
			ti, _ := next()
			length, _ := next()
			want, err := next()
			if err != nil || ti == 0 || int(ti) >= len(typeTab) {
				return fmt.Errorf("trace: bad alloc record")
			}
			var h gc.Handle
			switch op {
			case opAlloc:
				h = m.Alloc(typeTab[ti], int(length))
			case opAllocGlobal:
				h = m.AllocGlobal(typeTab[ti], int(length))
			default:
				h = m.AllocImmortal(typeTab[ti], int(length))
			}
			if uint64(h) != want {
				return fmt.Errorf("trace: alloc handle drift: got %d want %d", h, want)
			}
		case opSetRef:
			obj, _ := next()
			slot, _ := next()
			val, err := next()
			if err != nil {
				return fmt.Errorf("trace: bad setref")
			}
			if gc.Handle(val) == gc.NilHandle {
				m.SetRefNil(gc.Handle(obj), int(slot))
			} else {
				m.SetRef(gc.Handle(obj), int(slot), gc.Handle(val))
			}
		case opGetRef:
			obj, _ := next()
			slot, _ := next()
			want, err := next()
			if err != nil {
				return fmt.Errorf("trace: bad getref")
			}
			h := m.GetRef(gc.Handle(obj), int(slot))
			if uint64(h) != want {
				return fmt.Errorf("trace: getref handle drift: got %d want %d", h, want)
			}
		case opRelease:
			h, err := next()
			if err != nil {
				return err
			}
			m.Release(gc.Handle(h))
		case opPush:
			m.Push()
		case opPop:
			m.Pop()
		case opSetData:
			obj, _ := next()
			i, _ := next()
			v, err := next()
			if err != nil {
				return err
			}
			m.SetData(gc.Handle(obj), int(i), uint32(v))
		case opGetData:
			obj, _ := next()
			i, err := next()
			if err != nil {
				return err
			}
			m.GetData(gc.Handle(obj), int(i))
		case opWork:
			n, err := next()
			if err != nil {
				return err
			}
			m.Work(int(n))
		case opCollect:
			f, err := next()
			if err != nil {
				return err
			}
			m.Collect(f == 1)
		case opKeep:
			h, _ := next()
			want, err := next()
			if err != nil {
				return err
			}
			out := m.Keep(gc.Handle(h))
			if uint64(out) != want {
				return fmt.Errorf("trace: keep handle drift: got %d want %d", out, want)
			}
		case opAllocPretenured:
			ti, _ := next()
			length, _ := next()
			want, _ := next()
			g, err := next()
			if err != nil || ti == 0 || int(ti) >= len(typeTab) {
				return fmt.Errorf("trace: bad pretenured alloc record")
			}
			var h gc.Handle
			if g == 1 {
				h = m.AllocPretenuredGlobal(typeTab[ti], int(length))
			} else {
				h = m.AllocPretenured(typeTab[ti], int(length))
			}
			if uint64(h) != want {
				return fmt.Errorf("trace: pretenured handle drift: got %d want %d", h, want)
			}
		default:
			return fmt.Errorf("trace: unknown op %d at %d", op, pos-1)
		}
	}
	return nil
}
