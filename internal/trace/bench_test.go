package trace

import (
	"bytes"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// buildTrace records a medium workload once for the benchmarks.
func buildTrace(b *testing.B) *Trace {
	b.Helper()
	types := heap.NewRegistry()
	h, err := core.New(collectors.XX100(25,
		collectors.Options{HeapBytes: 1 << 20, FrameBytes: 8192}), types)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(h)
	tr := NewTrace()
	m.SetRecorder(tr)
	node := types.DefineScalar("n", 1, 1)
	if err := m.Run(func() {
		for i := 0; i < 20000; i++ {
			m.Push()
			x := m.Alloc(node, 0)
			m.SetData(x, 0, uint32(i))
			m.Pop()
		}
	}); err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkRecordOverhead measures the mutator slowdown of recording.
func BenchmarkRecordOverhead(b *testing.B) {
	for _, recording := range []bool{false, true} {
		name := "off"
		if recording {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			types := heap.NewRegistry()
			h, err := core.New(collectors.XX100(25,
				collectors.Options{HeapBytes: 4 << 20, FrameBytes: 8192}), types)
			if err != nil {
				b.Fatal(err)
			}
			m := vm.New(h)
			if recording {
				m.SetRecorder(NewTrace())
			}
			node := types.DefineScalar("n", 1, 1)
			b.ResetTimer()
			err = m.Run(func() {
				for i := 0; i < b.N; i++ {
					m.Push()
					x := m.Alloc(node, 0)
					m.SetData(x, 0, uint32(i))
					m.Pop()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkReplay measures replay throughput (events/op via SetBytes).
func BenchmarkReplay(b *testing.B) {
	tr := buildTrace(b)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		types := heap.NewRegistry()
		h, err := core.New(collectors.XX100(25,
			collectors.Options{HeapBytes: 1 << 20, FrameBytes: 8192}), types)
		if err != nil {
			b.Fatal(err)
		}
		if err := Replay(tr, vm.New(h)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialize measures trace encode+decode round trips.
func BenchmarkSerialize(b *testing.B) {
	tr := buildTrace(b)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrom(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
