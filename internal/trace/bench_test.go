package trace_test

import (
	"testing"

	"beltway/internal/bench"
)

// Benchmark bodies live in beltway/internal/bench so `go test -bench`
// and the cmd/bench regression harness measure the same code.

// BenchmarkRecordOverhead measures the mutator slowdown of recording.
func BenchmarkRecordOverhead(b *testing.B) {
	b.Run("off", bench.TraceRecordOff)
	b.Run("on", bench.TraceRecordOn)
}

func BenchmarkReplay(b *testing.B)    { bench.TraceReplay(b) }
func BenchmarkSerialize(b *testing.B) { bench.TraceSerialize(b) }
