package bench

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/gc"
	"beltway/internal/shard"
)

// ShardCounts lists the mutator widths the shard suite measures. The
// cmd/bench -mutators flag trims it; the default curve (1, 2, 4, 8)
// is what BENCH_<date>.json records so scaling regressions are
// diffable.
var ShardCounts = []int{1, 2, 4, 8}

// shardEntries materializes one scaling entry per configured width.
// Called from All at registration time, after flags may have trimmed
// ShardCounts.
func shardEntries() []Entry {
	var out []Entry
	for _, n := range ShardCounts {
		n := n
		out = append(out, Entry{"shard", "Scale" + itoa(n), func(b *testing.B) { runShardScale(b, n) }})
	}
	return out
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

// runShardScale runs a fixed rounds-with-barriers plan over n mutator
// shards: every round each shard allocates linked chains off its
// private nursery, publishes its survivor to the exchange and consumes
// its neighbor's, polling the safepoint throughout; every second round
// boundary runs a rendezvoused global collection fanned out over
// parallel workers. Reported extras:
//
//	makespan-cost/op    simulated N-core elapsed cost units per run
//	agg-B-per-cost/op   aggregate (allocated+copied) bytes per makespan
//	                    cost unit — the scaling curve's y axis
//	copied-bytes/op     aggregate GC copy traffic, as in the core suite
//
// The throughput metric is measured against the simulated machine's
// clock, so the curve is identical on any host core count.
func runShardScale(b *testing.B, n int) {
	b.ReportAllocs()
	var makespan, throughput, copied float64
	for i := 0; i < b.N; i++ {
		cfg := collectors.XX100(25, collectors.Options{HeapBytes: 512 << 10, FrameBytes: 8 << 10})
		rt, err := shard.New(cfg, shard.Options{Shards: n, Seed: 20020617, PerShardHeap: true})
		if err != nil {
			b.Fatal(err)
		}
		plan := shard.Plan{
			Rounds:       8,
			CollectEvery: 2,
			Body: func(round int, s *shard.Shard) {
				node := s.Heap.Space().Types.Lookup("bench.node")
				if node == nil {
					node = s.Heap.Space().Types.DefineScalar("bench.node", 2, 4)
				}
				s.M.Push()
				var last gc.Handle
				for j := 0; j < 400; j++ {
					h := s.M.Alloc(node, 0)
					s.M.SetData(h, 0, uint32(s.Rng.Intn(1<<16)))
					s.M.SetRef(h, 0, last)
					last = h
					s.M.Work(8)
					s.Poll()
				}
				kept := s.M.Keep(last)
				s.M.Pop()
				if h := s.Consume((s.ID + 1) % n); h != gc.NilHandle {
					s.M.SetData(kept, 1, s.M.GetData(h, 0))
				}
				s.Publish(s.ID, kept)
			},
		}
		if err := rt.Run(plan); err != nil {
			b.Fatal(err)
		}
		res := rt.Result()
		if res.OOM {
			b.Fatal("shard bench OOM: heap sizing is off")
		}
		makespan += res.Makespan
		throughput += res.Throughput()
		copied += float64(res.BytesCopied)
	}
	b.ReportMetric(makespan/float64(b.N), "makespan-cost/op")
	b.ReportMetric(throughput/float64(b.N), "agg-B-per-cost/op")
	b.ReportMetric(copied/float64(b.N), "copied-bytes/op")
}
