package bench

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
)

func newHeap(tb testing.TB, cfg core.Config) (*core.Heap, *heap.TypeDesc) {
	tb.Helper()
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		tb.Fatal(err)
	}
	return h, types.DefineScalar("n", 2, 2)
}

func alloc(tb testing.TB, h *core.Heap, t *heap.TypeDesc) heap.Addr {
	tb.Helper()
	a, err := h.Alloc(t, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

// Alloc measures the bump-allocation fast path (including the
// cost-model charge and trigger polling) on a roomy heap.
func Alloc(b *testing.B) {
	o := collectors.Options{HeapBytes: 1 << 30, FrameBytes: 1 << 20}
	h, node := newHeap(b, collectors.XX100(25, o))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Alloc(node, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// WriteBarrierFastPath measures Figure 4's barrier when the pointer is
// not interesting (intra-frame store).
func WriteBarrierFastPath(b *testing.B) {
	o := collectors.Options{HeapBytes: 64 << 20, FrameBytes: 1 << 20}
	h, node := newHeap(b, collectors.XX100(25, o))
	a1, _ := h.Alloc(node, 0)
	a2, _ := h.Alloc(node, 0) // same frame: never remembered
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.WriteRef(a1, 0, a2)
	}
}

// WriteBarrierSlowPath measures the barrier when every store is
// interesting (old object pointing at the nursery) and must hit the
// remembered set (deduplicated after the first).
func WriteBarrierSlowPath(b *testing.B) {
	o := collectors.Options{HeapBytes: 64 << 20, FrameBytes: 64 << 10}
	h, node := newHeap(b, collectors.XX100(25, o))
	roots := h.Roots()
	old := roots.Add(alloc(b, h, node))
	// Promote it out of the nursery.
	if err := h.Collect(false); err != nil {
		b.Fatal(err)
	}
	if err := h.Collect(false); err != nil {
		b.Fatal(err)
	}
	young := roots.Add(alloc(b, h, node))
	oa, ya := roots.Get(old), roots.Get(young)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.WriteRef(oa, i%2, ya)
	}
}

// NurseryCollection measures a steady-state nursery collection: fill
// the nursery with garbage plus a bounded survivor set, collect.
func NurseryCollection(b *testing.B) {
	o := collectors.Options{HeapBytes: 16 << 20, FrameBytes: 64 << 10}
	h, node := newHeap(b, collectors.XX100(25, o))
	roots := h.Roots()
	// Survivors: 1000 rooted objects.
	for i := 0; i < 1000; i++ {
		roots.Add(alloc(b, h, node))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 5000; j++ {
			alloc(b, h, node) // garbage
		}
		if err := h.Collect(false); err != nil {
			b.Fatal(err)
		}
	}
}

// FullCollection measures whole-heap collections with a live linked
// structure.
func FullCollection(b *testing.B) {
	o := collectors.Options{HeapBytes: 32 << 20, FrameBytes: 256 << 10}
	h, node := newHeap(b, collectors.BSS(o))
	roots := h.Roots()
	head := roots.Add(alloc(b, h, node))
	prev := roots.Get(head)
	for i := 0; i < 20000; i++ {
		n := alloc(b, h, node)
		h.WriteRef(prev, 0, n)
		prev = n
	}
	b.ReportAllocs()
	b.ResetTimer()
	copied0 := h.Clock().Counters.BytesCopied
	for i := 0; i < b.N; i++ {
		if err := h.Collect(true); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delta := h.Clock().Counters.BytesCopied - copied0
	b.ReportMetric(float64(delta)/float64(b.N), "copied-bytes/op")
}

// CheneyScan isolates the transitive-closure scan: a wide, shallow live
// graph (one ref-array fanning out to scalar leaves) is evacuated
// wholesale on every full collection, so the per-object header-decode +
// slot-walk of the Cheney scan dominates.
func CheneyScan(b *testing.B) {
	o := collectors.Options{HeapBytes: 32 << 20, FrameBytes: 256 << 10}
	types := heap.NewRegistry()
	h, err := core.New(collectors.BSS(o), types)
	if err != nil {
		b.Fatal(err)
	}
	node := types.DefineScalar("leaf", 2, 2)
	arr := types.DefineRefArray("spine")
	roots := h.Roots()
	const fan = 10000
	spine, err := h.Alloc(arr, fan)
	if err != nil {
		b.Fatal(err)
	}
	sp := roots.Add(spine)
	for i := 0; i < fan; i++ {
		n := alloc(b, h, node)
		h.WriteRef(roots.Get(sp), i, n)
	}
	live := (arr.Size(fan) + fan*node.Size(0))
	b.ReportAllocs()
	b.SetBytes(int64(live)) // live bytes traced per collection
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Collect(true); err != nil {
			b.Fatal(err)
		}
	}
}
