package bench

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/markregion"
)

// MarkRegionAlloc measures the mark-region bump path: like Alloc, but
// every allocation also sets the object-start bit and maintains line
// occupancy (markregion.Frame.NoteAlloc) on its way out.
func MarkRegionAlloc(b *testing.B) {
	o := collectors.Options{HeapBytes: 1 << 30, FrameBytes: 1 << 20}
	h, node := newHeap(b, collectors.Immix(o))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Alloc(node, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// LineMark measures the substrate's trace primitive in isolation: one
// Mark per object of a line-dense frame, then the sweep that intersects
// the bitmaps and rebuilds line occupancy.
func LineMark(b *testing.B) {
	g, err := markregion.NewGeometry(1<<16, markregion.DefaultLineBytes)
	if err != nil {
		b.Fatal(err)
	}
	f := g.NewFrame()
	const objBytes = 64
	nObj := g.FrameBytes / objBytes
	for i := 0; i < nObj; i++ {
		f.NoteAlloc(i*objBytes, objBytes)
	}
	sizeOf := func(int) int { return objBytes }
	b.ReportAllocs()
	b.SetBytes(int64(g.FrameBytes)) // bytes traced per iteration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < g.FrameBytes; off += objBytes {
			f.Mark(off)
		}
		if n, _ := f.Sweep(sizeOf); n != nObj {
			b.Fatal(n)
		}
	}
}

// MarkRegionFullCollection is FullCollection on the mark-region
// substrate: the same live linked structure, but survivors are marked in
// place instead of evacuated. The copied-bytes/op metric records the
// residual copy traffic (defragmentation only), the number the copying
// FullCollection pays for every live byte.
func MarkRegionFullCollection(b *testing.B) {
	o := collectors.Options{HeapBytes: 32 << 20, FrameBytes: 256 << 10}
	h, node := newHeap(b, collectors.Immix(o))
	roots := h.Roots()
	head := roots.Add(alloc(b, h, node))
	prev := roots.Get(head)
	for i := 0; i < 20000; i++ {
		n := alloc(b, h, node)
		h.WriteRef(prev, 0, n)
		prev = n
	}
	copied0 := h.Clock().Counters.BytesCopied
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Collect(true); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delta := h.Clock().Counters.BytesCopied - copied0
	b.ReportMetric(float64(delta)/float64(b.N), "copied-bytes/op")
}
