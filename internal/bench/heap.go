package bench

import (
	"testing"

	"beltway/internal/heap"
)

// WordAccess measures the simulated memory's word load/store path (the
// floor under every collector operation).
func WordAccess(b *testing.B) {
	s := heap.NewSpace(1<<16, heap.NewRegistry())
	a := s.FrameBase(s.MapFrame())
	b.ReportAllocs()
	b.SetBytes(2 * heap.WordBytes) // one store + one load per iteration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetWord(a, uint32(i))
		if s.Word(a) != uint32(i) {
			b.Fatal("corrupt")
		}
	}
}

// FrameMapUnmap measures frame turnover (one map+unmap pair per
// iteration), which bounds collection bookkeeping.
func FrameMapUnmap(b *testing.B) {
	s := heap.NewSpace(1<<14, heap.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := s.MapFrame()
		s.UnmapFrame(f)
	}
}

// CopyObject measures the Cheney copy primitive on a 64-byte object.
func CopyObject(b *testing.B) {
	r := heap.NewRegistry()
	node := r.DefineScalar("n", 4, 9) // (3+4+9)*4 = 64 bytes
	s := heap.NewSpace(1<<16, r)
	base := s.FrameBase(s.MapFrame())
	s.Format(base, node, 0, 1)
	dst := base + 4096
	b.ReportAllocs()
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CopyObject(base, dst)
	}
}

// WalkObjects measures the linear object walk used by Cheney scanning
// and card scanning.
func WalkObjects(b *testing.B) {
	r := heap.NewRegistry()
	node := r.DefineScalar("n", 2, 2)
	s := heap.NewSpace(1<<16, r)
	base := s.FrameBase(s.MapFrame())
	a := base
	for i := 0; i < 100; i++ {
		s.Format(a, node, 0, uint32(i+1))
		a += heap.Addr(node.Size(0))
	}
	b.ReportAllocs()
	b.SetBytes(int64(a - base)) // bytes walked per iteration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.WalkObjects(base, a, func(heap.Addr) bool { n++; return true })
		if n != 100 {
			b.Fatal(n)
		}
	}
}
