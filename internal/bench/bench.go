// Package bench hosts the canonical benchmark bodies for the simulator.
// Each package's bench_test.go delegates here, so `go test -bench` and
// the cmd/bench regression harness (which runs these via
// testing.Benchmark and emits BENCH_<date>.json) measure the same code.
package bench

import "testing"

// Entry is one named benchmark belonging to a suite.
type Entry struct {
	Suite string
	Name  string
	Fn    func(*testing.B)
}

// Suites lists the suite names in run order.
func Suites() []string {
	return []string{"heap", "core", "markregion", "remset", "trace", "telemetry", "workload", "server", "shard"}
}

// All returns every registered benchmark in deterministic (suite, then
// declaration) order. The shard suite's entries come last and are
// generated from ShardCounts (one per mutator width), so callers may
// trim the scaling curve before registration.
func All() []Entry {
	return append(static(), shardEntries()...)
}

func static() []Entry {
	return []Entry{
		{"heap", "WordAccess", WordAccess},
		{"heap", "FrameMapUnmap", FrameMapUnmap},
		{"heap", "CopyObject", CopyObject},
		{"heap", "WalkObjects", WalkObjects},
		{"core", "Alloc", Alloc},
		{"core", "WriteBarrierFastPath", WriteBarrierFastPath},
		{"core", "WriteBarrierSlowPath", WriteBarrierSlowPath},
		{"core", "NurseryCollection", NurseryCollection},
		{"core", "FullCollection", FullCollection},
		{"core", "CheneyScan", CheneyScan},
		{"markregion", "MarkRegionAlloc", MarkRegionAlloc},
		{"markregion", "LineMark", LineMark},
		{"markregion", "MarkRegionFullCollection", MarkRegionFullCollection},
		{"remset", "InsertDistinct", RemsetInsertDistinct},
		{"remset", "InsertDuplicate", RemsetInsertDuplicate},
		{"remset", "CollectRoots", RemsetCollectRoots},
		{"trace", "RecordOff", TraceRecordOff},
		{"trace", "RecordOn", TraceRecordOn},
		{"trace", "Replay", TraceReplay},
		{"trace", "Serialize", TraceSerialize},
		{"telemetry", "EmitEvent", TelemetryEmitEvent},
		{"telemetry", "HistogramObserve", TelemetryHistogramObserve},
		{"telemetry", "CounterAdd", TelemetryCounterAdd},
		{"telemetry", "GCCycleHooks", TelemetryGCCycleHooks},
		{"telemetry", "Collection", TelemetryCollection},
		{"workload", "Jess", WorkloadJess},
		{"workload", "Raytrace", WorkloadRaytrace},
		{"workload", "DB", WorkloadDB},
		{"workload", "Javac", WorkloadJavac},
		{"workload", "Jack", WorkloadJack},
		{"workload", "PseudoJBB", WorkloadPseudoJBB},
		{"server", "Beltway", ServerBeltway},
		{"server", "Appel", ServerAppel},
		{"server", "Immix", ServerImmix},
		{"server", "Sharded4", ServerSharded4},
	}
}
