package bench

import (
	"testing"

	"beltway/internal/heap"
	"beltway/internal/remset"
)

// RemsetInsertDistinct measures cold inserts (new slots).
func RemsetInsertDistinct(b *testing.B) {
	t := remset.NewTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(heap.Frame(i%64), heap.Frame((i+1)%64), heap.Addr(i*4))
	}
}

// RemsetInsertDuplicate measures the dedup hit path, the common case
// for repeatedly mutated old-to-young slots.
func RemsetInsertDuplicate(b *testing.B) {
	t := remset.NewTable()
	t.Insert(1, 2, 0x1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(1, 2, 0x1000)
	}
}

// RemsetCollectRoots measures the per-collection gather of a
// realistically sized table (4k entries across 64 pairs).
func RemsetCollectRoots(b *testing.B) {
	build := func() *remset.Table {
		t := remset.NewTable()
		for i := 0; i < 4096; i++ {
			t.Insert(heap.Frame(i%8+8), heap.Frame(i%8), heap.Addr(i*16))
		}
		return t
	}
	condemned := func(f heap.Frame) bool { return f < 8 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := build()
		b.StartTimer()
		if got := t.CollectRoots(condemned); len(got) == 0 {
			b.Fatal("no roots")
		}
	}
}
