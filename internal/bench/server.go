package bench

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/harness"
	"beltway/internal/server"
)

// ServerPolicy, when non-empty, runs the single-mutator server
// benchmarks with the adaptive policy controller on this objective
// (harness.Env.Policy syntax). cmd/bench sets it from -adapt so the
// controller's steady-state overhead is diffable against static runs;
// the sharded benchmark ignores it (adaptation is single-mutator only).
var ServerPolicy string

// runServer measures the request/response server workload end to end on
// one preset. Reported extras:
//
//	req/s          requests served per wall-clock second (host
//	               throughput of the whole simulator stack)
//	p99-cost/op    exact p99 request latency in simulated cost units —
//	               the SLO-bearing number, identical on any host
//	max-cost/op    worst single-request latency in cost units
//
// The cost-unit extras are deterministic, so compare runs flag tail
// regressions (a collector change parking pauses under requests) even
// when host throughput is noisy.
func runServer(b *testing.B, preset string, mutators int) {
	sc := server.Scaled(0.1)
	env := harness.EnvForScale(0.1)
	env.Mutators = mutators
	if mutators == 1 {
		env.Policy = ServerPolicy
	}
	hb := int(float64(sc.EstLiveBytes()) * 3)
	hb = (hb/env.FrameBytes + 1) * env.FrameBytes
	cfg, err := collectors.Parse(preset, collectors.Options{
		HeapBytes: hb, FrameBytes: env.FrameBytes})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var served int
	var p99, max float64
	for i := 0; i < b.N; i++ {
		res, rerr := harness.RunServer(cfg, sc, server.SLO{}, env)
		if rerr != nil {
			b.Fatal(rerr)
		}
		if res.OOM {
			b.Fatal("server bench OOM: heap sizing is off")
		}
		served += res.Server.Overall.Requests
		p99 = res.Server.Overall.Latency.P99
		max = res.Server.Overall.Latency.Max
	}
	b.ReportMetric(float64(served)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(p99, "p99-cost/op")
	b.ReportMetric(max, "max-cost/op")
}

func ServerBeltway(b *testing.B)  { runServer(b, "25.25", 1) }
func ServerAppel(b *testing.B)    { runServer(b, "appel", 1) }
func ServerImmix(b *testing.B)    { runServer(b, "immix", 1) }
func ServerSharded4(b *testing.B) { runServer(b, "25.25", 4) }
