package bench

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/gc"
	"beltway/internal/telemetry"
)

// The telemetry suite pins the observability hot paths: event emission
// into the flight recorder, metric updates, and a full collection's worth
// of hook invocations. All of them must report 0 allocs/op — attaching
// telemetry may never put allocation pressure on a run.

// TelemetryEmitEvent measures one flight-recorder emission (ring write +
// sequence stamp).
func TelemetryEmitEvent(b *testing.B) {
	rec := telemetry.NewFlightRecorder(0)
	e := telemetry.Event{Kind: telemetry.EvGCEnd, Time: 1e6, Dur: 1e3, GC: 1, A: 4096, B: 32, C: 7, D: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Emit(e)
	}
}

// TelemetryHistogramObserve measures one log-bucketed histogram
// observation (bucket add + CAS sum/max).
func TelemetryHistogramObserve(b *testing.B) {
	reg := telemetry.NewRegistry()
	h := reg.NewHistogram("pause", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&0xffff) + 1)
	}
}

// TelemetryCounterAdd measures one atomic counter update.
func TelemetryCounterAdd(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.NewCounter("n", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(3)
	}
}

func telemetryCycleFixtures() (gc.GCBeginInfo, gc.IncrementInfo, gc.GCEndInfo, gc.BeltStat) {
	return gc.GCBeginInfo{Trigger: gc.TriggerHeapFull, CondemnedIncrements: 1, CondemnedBytes: 64 << 10, OccupiedBytes: 1 << 20},
		gc.IncrementInfo{Belt: 0, Seq: 1, Train: -1, Bytes: 64 << 10, Frames: 1},
		gc.GCEndInfo{Duration: 1e4, BytesCopied: 8 << 10, ObjectsCopied: 128, RemsetEntries: 7, BarrierSlowPaths: 3, SurvivorBytes: 8 << 10},
		gc.BeltStat{Belt: 0, Increments: 1, Bytes: 8 << 10, Frames: 1}
}

// TelemetryGCCycleHooks measures the full hook traffic of one collection
// (begin + condemned + end + one belt sample) against an attached Run.
func TelemetryGCCycleHooks(b *testing.B) {
	run := telemetry.NewRun(nil)
	hk := run.Hooks()
	begin, incr, end, belt := telemetryCycleFixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hk.GCBegin(begin)
		hk.Condemned(incr)
		hk.GCEnd(end)
		hk.Occupancy(belt)
	}
}

// TelemetryCollection measures a real nursery collection with telemetry
// attached, the end-to-end cost the harness pays per GC when observed
// (compare with the core suite's NurseryCollection).
func TelemetryCollection(b *testing.B) {
	o := collectors.Options{HeapBytes: 64 << 20, FrameBytes: 64 << 10}
	h, node := newHeap(b, collectors.XX100(25, o))
	run := telemetry.NewRun(h.Clock())
	h.SetHooks(run.Hooks())
	roots := h.Roots()
	for i := 0; i < 64; i++ {
		roots.Add(alloc(b, h, node))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Collect(false); err != nil {
			b.Fatal(err)
		}
	}
}
