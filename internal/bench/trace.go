package bench

import (
	"bytes"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
	"beltway/internal/trace"
	"beltway/internal/vm"
)

// buildTrace records a medium workload once for the trace benchmarks.
func buildTrace(tb testing.TB) *trace.Trace {
	tb.Helper()
	types := heap.NewRegistry()
	h, err := core.New(collectors.XX100(25,
		collectors.Options{HeapBytes: 1 << 20, FrameBytes: 8192}), types)
	if err != nil {
		tb.Fatal(err)
	}
	m := vm.New(h)
	tr := trace.NewTrace()
	m.SetRecorder(tr)
	node := types.DefineScalar("n", 1, 1)
	if err := m.Run(func() {
		for i := 0; i < 20000; i++ {
			m.Push()
			x := m.Alloc(node, 0)
			m.SetData(x, 0, uint32(i))
			m.Pop()
		}
	}); err != nil {
		tb.Fatal(err)
	}
	return tr
}

func recordOverhead(b *testing.B, recording bool) {
	types := heap.NewRegistry()
	h, err := core.New(collectors.XX100(25,
		collectors.Options{HeapBytes: 4 << 20, FrameBytes: 8192}), types)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(h)
	if recording {
		m.SetRecorder(trace.NewTrace())
	}
	node := types.DefineScalar("n", 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	err = m.Run(func() {
		for i := 0; i < b.N; i++ {
			m.Push()
			x := m.Alloc(node, 0)
			m.SetData(x, 0, uint32(i))
			m.Pop()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TraceRecordOff measures the mutator loop with recording disabled (the
// baseline for TraceRecordOn).
func TraceRecordOff(b *testing.B) { recordOverhead(b, false) }

// TraceRecordOn measures the mutator slowdown of recording.
func TraceRecordOn(b *testing.B) { recordOverhead(b, true) }

// TraceReplay measures replay throughput (events/op via SetBytes).
func TraceReplay(b *testing.B) {
	tr := buildTrace(b)
	b.ReportAllocs()
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		types := heap.NewRegistry()
		h, err := core.New(collectors.XX100(25,
			collectors.Options{HeapBytes: 1 << 20, FrameBytes: 8192}), types)
		if err != nil {
			b.Fatal(err)
		}
		if err := trace.Replay(tr, vm.New(h)); err != nil {
			b.Fatal(err)
		}
	}
}

// TraceSerialize measures trace encode+decode round trips.
func TraceSerialize(b *testing.B) {
	tr := buildTrace(b)
	b.ReportAllocs()
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadFrom(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
