package bench

import (
	"math/rand"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
	"beltway/internal/vm"
	"beltway/internal/workload"
)

// runWorkload measures end-to-end simulated-mutator throughput for one
// benchmark body on a roomy heap (collector cost mostly excluded).
func runWorkload(b *testing.B, name string) {
	bench := workload.Get(name)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		types := heap.NewRegistry()
		h, err := core.New(collectors.XX100(25,
			collectors.Options{HeapBytes: 8 << 20, FrameBytes: 8 * 1024}), types)
		if err != nil {
			b.Fatal(err)
		}
		m := vm.New(h)
		ctx := &workload.Ctx{M: m, Types: types, Rng: rand.New(rand.NewSource(1)), Scale: 0.1}
		if err := m.Run(func() { bench.Body(ctx) }); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(h.Clock().Counters.BytesAllocated))
	}
}

func WorkloadJess(b *testing.B)      { runWorkload(b, "jess") }
func WorkloadRaytrace(b *testing.B)  { runWorkload(b, "raytrace") }
func WorkloadDB(b *testing.B)        { runWorkload(b, "db") }
func WorkloadJavac(b *testing.B)     { runWorkload(b, "javac") }
func WorkloadJack(b *testing.B)      { runWorkload(b, "jack") }
func WorkloadPseudoJBB(b *testing.B) { runWorkload(b, "pseudojbb") }
