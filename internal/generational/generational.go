// Package generational provides the paper's comparison collectors: the
// Appel-style flexible-nursery generational collector [Appel 1989] and
// classic fixed-size-nursery generational collectors, as used throughout
// the paper's evaluation (Figures 1, 5, 6, 9, 10).
//
// Like the paper's GCTk, the baselines share the toolkit's infrastructure
// with Beltway ("of the 26 classes in Beltway and in the generational
// collectors, 23 are common to both"): here they are belt configurations
// of the same core engine, differentiated by the classic generational
// boundary write barrier — a cheaper fast path that does not remember
// boot-image stores, paying instead with a full boot-image scan at every
// collection (§4.2.1 discusses exactly this difference between Appel and
// Beltway 100.100).
package generational

import (
	"fmt"

	"beltway/internal/core"
)

// Appel returns the Appel-style two-generation collector: the nursery
// grows to consume all usable memory not consumed by the second
// generation; the nursery is collected when the heap fills, and the full
// heap is collected when the nursery's share drops below a small fixed
// threshold.
func Appel(o core.Options) core.Config {
	c := core.Config{
		Name: "Appel",
		Belts: []core.BeltSpec{
			{IncrementFrac: 1.0, MaxIncrements: 1, PromoteTo: 1},
			{IncrementFrac: 1.0, PromoteTo: 1},
		},
		Barrier:          core.BoundaryBarrier,
		FixedHalfReserve: true,
	}
	c.HeapBytes = o.HeapBytes
	c.FrameBytes = o.FrameBytes
	c.PhysMemBytes = o.PhysMemBytes
	return c
}

// Fixed returns a classic generational collector whose nursery is a
// fixed fraction (percent) of usable memory. The nursery is collected
// whenever it fills; the reservation of a fixed share of the heap for
// the nursery is what cripples these collectors in tight heaps
// (paper Figure 6).
func Fixed(nurseryPercent int, o core.Options) core.Config {
	if nurseryPercent <= 0 || nurseryPercent >= 100 {
		panic(fmt.Sprintf("generational: bad nursery percentage %d", nurseryPercent))
	}
	c := core.Config{
		Name: fmt.Sprintf("Fixed %d", nurseryPercent),
		Belts: []core.BeltSpec{
			{IncrementFrac: float64(nurseryPercent) / 100, MaxIncrements: 1, PromoteTo: 1,
				ReserveFrac: float64(nurseryPercent) / 100},
			{IncrementFrac: 1.0, PromoteTo: 1},
		},
		Barrier:          core.BoundaryBarrier,
		FixedHalfReserve: true,
	}
	c.HeapBytes = o.HeapBytes
	c.FrameBytes = o.FrameBytes
	c.PhysMemBytes = o.PhysMemBytes
	return c
}

// Appel3 returns a three-generation Appel-style collector, the
// "logical generalization of Appel to 3 generations" that Beltway
// 100.100.100 corresponds to (§4.2.1).
func Appel3(o core.Options) core.Config {
	c := core.Config{
		Name: "Appel-3gen",
		Belts: []core.BeltSpec{
			{IncrementFrac: 1.0, MaxIncrements: 1, PromoteTo: 1},
			{IncrementFrac: 1.0, MaxIncrements: 1, PromoteTo: 2},
			{IncrementFrac: 1.0, PromoteTo: 2},
		},
		Barrier:          core.BoundaryBarrier,
		FixedHalfReserve: true,
	}
	c.HeapBytes = o.HeapBytes
	c.FrameBytes = o.FrameBytes
	c.PhysMemBytes = o.PhysMemBytes
	return c
}
