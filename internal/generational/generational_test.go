package generational

import (
	"testing"

	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

func opts(heapKB int) core.Options {
	return core.Options{HeapBytes: heapKB * 1024, FrameBytes: 4096}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []core.Config{Appel(opts(256)), Fixed(25, opts(256)), Appel3(opts(256))} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		if cfg.Barrier != core.BoundaryBarrier {
			t.Errorf("%s: baselines must use the boundary barrier", cfg.Name)
		}
		if !cfg.FixedHalfReserve {
			t.Errorf("%s: baselines must use the classical half-heap reserve", cfg.Name)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Fixed(0) did not panic")
			}
		}()
		Fixed(0, opts(256))
	}()
}

// TestAppelNurseryThenFullCollections checks the Appel collection
// pattern: mostly nursery collections, with occasional full-heap
// collections once the mature space fills.
func TestAppelNurseryThenFullCollections(t *testing.T) {
	types := heap.NewRegistry()
	h, err := core.New(Appel(opts(512)), types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	node := types.DefineScalar("n", 0, 11)
	err = m.Run(func() {
		var keep []gc.Handle
		for i := 0; i < 30000; i++ {
			hd := m.AllocGlobal(node, 0)
			if i%7 == 0 {
				keep = append(keep, hd)
			} else {
				m.Release(hd)
			}
			if len(keep) > 900 {
				m.Release(keep[0])
				keep = keep[1:]
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := h.Clock().Counters
	if c.Collections < 5 {
		t.Fatalf("only %d collections", c.Collections)
	}
	if c.FullCollections == 0 {
		t.Error("Appel never performed a full-heap collection")
	}
	if c.FullCollections >= c.Collections {
		t.Error("Appel performed only full collections; nursery collections missing")
	}
	// The boundary barrier scans the boot image... no boot objects were
	// allocated here, so BootBytesScanned can be zero; check instead
	// that the fixed reserve held.
	if h.ReserveBytes() != 512*1024/2 {
		t.Errorf("Appel reserve = %d, want fixed half heap", h.ReserveBytes())
	}
}

// TestBoundaryBarrierScansBootImage verifies the §4.2.1 trade: the
// boundary barrier does not remember boot-image stores, so every
// collection rescans the boot image (and still finds its pointers).
func TestBoundaryBarrierScansBootImage(t *testing.T) {
	types := heap.NewRegistry()
	h, err := core.New(Appel(opts(256)), types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	m.EnableValidation()
	table := types.DefineScalar("boot", 4, 0)
	leaf := types.DefineScalar("leaf", 0, 1)
	filler := types.DefineScalar("fill", 0, 15)
	err = m.Run(func() {
		boot := m.AllocImmortal(table, 0)
		for round := 0; round < 8; round++ {
			for i := 0; i < 4; i++ {
				m.Push()
				l := m.Alloc(leaf, 0)
				m.SetData(l, 0, uint32(round*4+i))
				m.SetRef(boot, i, l)
				m.Pop()
			}
			m.Push()
			for i := 0; i < 800; i++ {
				m.Alloc(filler, 0)
			}
			m.Pop()
			m.Collect(false)
			for i := 0; i < 4; i++ {
				m.Push()
				l := m.GetRef(boot, i)
				if got := m.GetData(l, 0); got != uint32(round*4+i) {
					t.Fatalf("round %d slot %d: %d", round, i, got)
				}
				m.Pop()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := h.Clock().Counters
	if c.BootBytesScanned == 0 {
		t.Error("boundary-barrier collector never scanned the boot image")
	}
	// Boot-image stores must NOT land in remembered sets under the
	// boundary barrier (that is the frame barrier's behaviour).
	if c.RemsetInserts > 0 {
		t.Errorf("boundary barrier recorded %d remset inserts from the boot image",
			c.RemsetInserts)
	}
}

// TestFixedNurseryFailsTighterThanAppel reproduces the Figure 6
// observation that fixed-nursery collectors need more memory: there is a
// heap size where Appel completes and Fixed 25 does not.
func TestFixedNurseryFailsTighterThanAppel(t *testing.T) {
	run := func(cfg core.Config) bool {
		types := heap.NewRegistry()
		h, err := core.New(cfg, types)
		if err != nil {
			t.Fatal(err)
		}
		m := vm.New(h)
		node := types.DefineScalar("n", 0, 11)
		err = m.Run(func() {
			var keep []gc.Handle
			for i := 0; i < 12000; i++ {
				hd := m.AllocGlobal(node, 0)
				if i%4 == 0 {
					keep = append(keep, hd)
				} else {
					m.Release(hd)
				}
				if len(keep) > 1000 {
					m.Release(keep[0])
					keep = keep[1:]
				}
			}
		})
		return err == nil
	}
	minFor := func(mk func(core.Options) core.Config) int {
		for kb := 64; kb <= 1024; kb += 4 {
			if run(mk(opts(kb))) {
				return kb
			}
		}
		t.Fatal("collector never completed")
		return 0
	}
	minAppel := minFor(Appel)
	minFixed := minFor(func(o core.Options) core.Config { return Fixed(25, o) })
	t.Logf("min heap: Appel %dKB, Fixed-25 %dKB", minAppel, minFixed)
	if minFixed <= minAppel {
		t.Errorf("Fixed 25 min heap (%dKB) not larger than Appel's (%dKB)", minFixed, minAppel)
	}
}
