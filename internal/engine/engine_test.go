package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func intJob(key string, v int) Job {
	return Job{
		Key: Key{Experiment: "test", Benchmark: key},
		Run: func() (any, Outcome, error) { return v, OK, nil },
	}
}

func payloadInt(t *testing.T, rec Record) int {
	t.Helper()
	var v int
	if err := json.Unmarshal(rec.Payload, &v); err != nil {
		t.Fatalf("payload %q: %v", rec.Payload, err)
	}
	return v
}

func TestRunReturnsRecordsInSubmissionOrder(t *testing.T) {
	e := New(Config{Workers: 8})
	var jobs []Job
	for i := 0; i < 100; i++ {
		jobs = append(jobs, intJob(fmt.Sprint(i), i*i))
	}
	recs, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, rec := range recs {
		if rec.Outcome != OK {
			t.Fatalf("job %d outcome %s", i, rec.Outcome)
		}
		if got := payloadInt(t, rec); got != i*i {
			t.Errorf("record %d carries payload %d, want %d", i, got, i*i)
		}
		if rec.Key.Benchmark != fmt.Sprint(i) {
			t.Errorf("record %d has key %s", i, rec.Key)
		}
	}
}

// TestPanicIsolation: a panicking job is recorded as outcome "panic" with
// the recovered message, and the remaining jobs still complete.
func TestPanicIsolation(t *testing.T) {
	e := New(Config{Workers: 4})
	var jobs []Job
	for i := 0; i < 20; i++ {
		i := i
		if i == 7 {
			jobs = append(jobs, Job{
				Key: Key{Benchmark: "boom"},
				Run: func() (any, Outcome, error) { panic("kaboom at job 7") },
			})
			continue
		}
		jobs = append(jobs, intJob(fmt.Sprint(i), i))
	}
	recs, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if i == 7 {
			if rec.Outcome != Panic {
				t.Errorf("job 7 outcome %s, want panic", rec.Outcome)
			}
			if !strings.Contains(rec.Error, "kaboom at job 7") {
				t.Errorf("job 7 error %q lacks recovered message", rec.Error)
			}
			continue
		}
		if rec.Outcome != OK {
			t.Errorf("job %d outcome %s, want ok despite job 7 panicking", i, rec.Outcome)
		}
	}
}

func TestJobErrorRecorded(t *testing.T) {
	e := New(Config{Workers: 2})
	recs, err := e.Run([]Job{{
		Key: Key{Benchmark: "bad"},
		Run: func() (any, Outcome, error) { return nil, "", errors.New("no such collector") },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Outcome != Errored || !strings.Contains(recs[0].Error, "no such collector") {
		t.Errorf("got %+v", recs[0])
	}
}

func TestTimeout(t *testing.T) {
	e := New(Config{Workers: 2, Timeout: 30 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	start := time.Now()
	recs, err := e.Run([]Job{
		{Key: Key{Benchmark: "hang"}, Run: func() (any, Outcome, error) { <-release; return 0, OK, nil }},
		intJob("fast", 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not fire; run took %v", elapsed)
	}
	if recs[0].Outcome != Timeout {
		t.Errorf("hung job outcome %s, want timeout", recs[0].Outcome)
	}
	if recs[1].Outcome != OK || payloadInt(t, recs[1]) != 42 {
		t.Errorf("fast job got %+v", recs[1])
	}
}

// TestWorkersRunConcurrently: eight sleeping jobs on eight workers must
// overlap. Sleeps need no CPU, so this holds even on a single-core
// machine; a serialized pool would take n*d.
func TestWorkersRunConcurrently(t *testing.T) {
	const n = 8
	const d = 100 * time.Millisecond
	e := New(Config{Workers: n})
	var jobs []Job
	for i := 0; i < n; i++ {
		jobs = append(jobs, Job{
			Key: Key{Benchmark: fmt.Sprint(i)},
			Run: func() (any, Outcome, error) { time.Sleep(d); return 0, OK, nil },
		})
	}
	start := time.Now()
	if _, err := e.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > n*d/2 {
		t.Errorf("%d sleeping jobs on %d workers took %v; pool appears serialized", n, n, elapsed)
	}
}

func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")

	var executed atomic.Int64
	mkJobs := func(failAt int) []Job {
		var jobs []Job
		for i := 0; i < 10; i++ {
			i := i
			jobs = append(jobs, Job{
				Key: Key{Benchmark: fmt.Sprint(i)},
				Run: func() (any, Outcome, error) {
					executed.Add(1)
					if i == failAt {
						return nil, "", errors.New("flaky")
					}
					return i * 10, OK, nil
				},
			})
		}
		return jobs
	}

	// First run: job 3 fails, the rest complete and are checkpointed.
	e1 := New(Config{Workers: 4, Checkpoint: path})
	recs, err := e1.Run(mkJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if recs[3].Outcome != Errored {
		t.Fatalf("job 3 outcome %s", recs[3].Outcome)
	}
	if got := executed.Load(); got != 10 {
		t.Fatalf("first run executed %d jobs, want 10", got)
	}

	// Resume: only the failed job re-executes; payloads come back from
	// the checkpoint for the other nine.
	executed.Store(0)
	e2 := New(Config{Workers: 4, Checkpoint: path, Resume: true})
	recs2, err := e2.Run(mkJobs(-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 1 {
		t.Fatalf("resumed run executed %d jobs, want 1 (only the failed one)", got)
	}
	for i, rec := range recs2 {
		if rec.Outcome != OK {
			t.Errorf("resumed job %d outcome %s", i, rec.Outcome)
		}
		if got := payloadInt(t, rec); got != i*10 {
			t.Errorf("resumed job %d payload %d, want %d", i, got, i*10)
		}
		if wantResumed := i != 3; rec.Resumed != wantResumed {
			t.Errorf("job %d resumed=%v, want %v", i, rec.Resumed, wantResumed)
		}
	}

	// A third engine sees everything completed.
	executed.Store(0)
	e3 := New(Config{Workers: 4, Checkpoint: path, Resume: true})
	if _, err := e3.Run(mkJobs(-1)); err != nil {
		t.Fatal(err)
	}
	e3.Close()
	if got := executed.Load(); got != 0 {
		t.Fatalf("fully-checkpointed run executed %d jobs, want 0", got)
	}
}

// TestCheckpointToleratesPartialTrailingLine simulates a run killed
// mid-write: the checkpoint ends in a truncated record, which must be
// skipped while every complete record loads.
func TestCheckpointToleratesPartialTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	e := New(Config{Workers: 2, Checkpoint: path})
	if _, err := e.Run([]Job{intJob("a", 1), intJob("b", 2)}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":{"benchmark":"c"},"outcome":"o`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	prior, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 2 {
		t.Fatalf("loaded %d records, want 2 (partial line skipped)", len(prior))
	}
}

func TestMissingCheckpointResumesAsFreshRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written.jsonl")
	e := New(Config{Workers: 1, Checkpoint: path, Resume: true})
	recs, err := e.Run([]Job{intJob("a", 7)})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if recs[0].Outcome != OK || recs[0].Resumed {
		t.Fatalf("got %+v", recs[0])
	}
}

func TestReporterProgress(t *testing.T) {
	var lines []string
	e := New(Config{Workers: 1, Progress: func(s string) { lines = append(lines, s) }})
	jobs := []Job{
		intJob("a", 1),
		{Key: Key{Benchmark: "boom"}, Run: func() (any, Outcome, error) { panic("x") }},
		intJob("c", 3),
	}
	if _, err := e.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d progress lines, want 3: %q", len(lines), lines)
	}
	p := e.Reporter().Snapshot()
	if p.Done != 3 || p.Total != 3 || p.Failures != 1 {
		t.Errorf("snapshot %+v", p)
	}
	if !strings.Contains(lines[2], "[3/3]") {
		t.Errorf("last line %q lacks [3/3]", lines[2])
	}
	if !strings.Contains(strings.Join(lines, "\n"), "fail=1") {
		t.Errorf("progress lines never reported the failure: %q", lines)
	}
}

// TestOutcomeCompleted pins which outcomes a resume may skip.
func TestOutcomeCompleted(t *testing.T) {
	for o, want := range map[Outcome]bool{
		OK: true, OOM: true, Budget: true,
		Panic: false, Timeout: false, Errored: false,
	} {
		if o.Completed() != want {
			t.Errorf("%s.Completed() = %v, want %v", o, o.Completed(), want)
		}
	}
}
