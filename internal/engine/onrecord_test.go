package engine

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestOnRecordFreshAndResumed checks the observer callback fires once per
// job both when jobs execute and when they are satisfied from a
// checkpoint, so telemetry aggregation sees the complete record stream
// either way.
func TestOnRecordFreshAndResumed(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.jsonl")
	jobs := []Job{
		{Key: Key{Experiment: "t", Collector: "a"}, Run: func() (any, Outcome, error) { return 1, OK, nil }},
		{Key: Key{Experiment: "t", Collector: "b"}, Run: func() (any, Outcome, error) { return 2, OOM, nil }},
		{Key: Key{Experiment: "t", Collector: "c"}, Run: func() (any, Outcome, error) { panic("boom") }},
	}

	collect := func(resume bool) map[string]Record {
		var mu sync.Mutex
		got := map[string]Record{}
		e := New(Config{
			Workers:    2,
			Checkpoint: ckpt,
			Resume:     resume,
			OnRecord: func(rec Record) {
				mu.Lock()
				got[rec.Key.String()] = rec
				mu.Unlock()
			},
		})
		defer e.Close()
		if _, err := e.Run(jobs); err != nil {
			t.Fatal(err)
		}
		return got
	}

	fresh := collect(false)
	if len(fresh) != 3 {
		t.Fatalf("fresh run observed %d records, want 3", len(fresh))
	}
	for k, rec := range fresh {
		if rec.Resumed {
			t.Errorf("%s: fresh record marked resumed", k)
		}
	}

	resumed := collect(true)
	if len(resumed) != 3 {
		t.Fatalf("resumed run observed %d records, want 3", len(resumed))
	}
	for k, rec := range resumed {
		switch rec.Outcome {
		case OK, OOM:
			if !rec.Resumed {
				t.Errorf("%s: completed record not satisfied from checkpoint", k)
			}
			if len(rec.Payload) == 0 {
				t.Errorf("%s: resumed record lost its payload", k)
			}
		case Panic:
			if rec.Resumed {
				t.Errorf("%s: failed record must re-execute on resume", k)
			}
		default:
			t.Errorf("%s: unexpected outcome %s", k, rec.Outcome)
		}
	}
}
