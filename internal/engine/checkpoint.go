package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"os"
)

// LoadCheckpoint reads a JSONL record file and returns the last record
// per key. A missing file yields an empty map (a fresh resume is just a
// run). Unparsable lines — in particular a partial final line from a run
// killed mid-write — are skipped rather than treated as corruption, so a
// checkpoint is always usable up to its last complete record.
func LoadCheckpoint(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return map[string]Record{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]Record{}
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, rerr := r.ReadBytes('\n')
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var rec Record
			if jerr := json.Unmarshal(trimmed, &rec); jerr == nil {
				out[rec.Key.String()] = rec
			}
		}
		if rerr == io.EOF {
			return out, nil
		}
		if rerr != nil {
			return nil, rerr
		}
	}
}
