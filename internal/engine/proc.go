// Process-level job transport: a pool of worker OS processes driven over
// line-delimited JSON on stdin/stdout, with per-process fault isolation.
// Unlike the in-process worker pool, a crashing, OOM-killed, or hanging
// job takes down only its worker process; the orchestrator classifies the
// loss, respawns a replacement lazily, and surfaces the failure as a
// *CrashError that callers typically mark transient so the engine's
// retry path requeues the job.
package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// CrashKind classifies how a worker process was lost.
type CrashKind string

const (
	// CrashSpawn: the worker process could not be started.
	CrashSpawn CrashKind = "spawn"
	// CrashExit: the worker exited (non-zero status, or cleanly but
	// mid-job) without answering.
	CrashExit CrashKind = "exit"
	// CrashSignal: the worker was killed by a signal. SIGKILL may be the
	// kernel OOM killer.
	CrashSignal CrashKind = "signal"
	// CrashHang: the worker missed the per-job deadline and was escalated
	// SIGTERM -> (grace) -> SIGKILL.
	CrashHang CrashKind = "hang"
	// CrashProto: the worker answered with an undecodable or out-of-order
	// frame; its stream can no longer be trusted.
	CrashProto CrashKind = "protocol"
)

// CrashError reports the loss of a worker process mid-job. It is the
// error returned by ProcPool.Do for every process-level failure, so
// callers can distinguish "the process died" (retryable elsewhere) from
// "the job itself failed" (deterministic, returned as a plain error).
type CrashError struct {
	Kind   CrashKind
	Worker int // spawn sequence number of the lost worker
	Detail string
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("worker %d %s: %s", e.Worker, e.Kind, e.Detail)
}

// procRequest and procResponse frame the stdin/stdout protocol: one JSON
// object per line, matched by ID.
type procRequest struct {
	ID  int             `json:"id"`
	Req json.RawMessage `json:"req"`
}

type procResponse struct {
	ID   int             `json:"id"`
	Resp json.RawMessage `json:"resp,omitempty"`
	Err  string          `json:"err,omitempty"`
}

// ProcConfig parameterizes a ProcPool.
type ProcConfig struct {
	// Workers bounds concurrently live worker processes; <= 0 means 1.
	Workers int
	// Command builds the command for the spawn-th worker process (0-based
	// over the pool's lifetime, respawns included). The pool wires stdin,
	// stdout and Stderr itself; the command must run a ServeProc loop.
	Command func(spawn int) *exec.Cmd
	// Deadline bounds one job round trip; 0 means none. A worker that
	// misses it is escalated SIGTERM -> KillGrace -> SIGKILL and its job
	// fails with CrashHang.
	Deadline time.Duration
	// KillGrace is the pause between SIGTERM and SIGKILL when escalating
	// (default 2s).
	KillGrace time.Duration
	// Stderr receives every worker's stderr (default os.Stderr).
	Stderr io.Writer
	// OnSpawn and OnCrash, if non-nil, observe worker lifecycle for
	// telemetry. Called from the goroutine driving the affected job.
	OnSpawn func(spawn int)
	OnCrash func(spawn int, kind CrashKind)
}

// ProcPool dispatches jobs over worker processes. Safe for concurrent
// Do calls; each call exclusively holds one worker for its round trip.
type ProcPool struct {
	cfg  ProcConfig
	free chan *workerProc // slots; nil entry = spawn on demand

	mu     sync.Mutex
	spawns int
	closed bool
}

// workerProc is one live worker process, held by at most one Do call.
type workerProc struct {
	id  int // spawn sequence number
	cmd *exec.Cmd
	in  io.WriteCloser
	out *bufio.Reader
	seq int // request ids issued to this worker

	waited  bool // reap completed; waitErr is meaningful
	waitErr error
}

// NewProcPool creates a pool of Workers lazily-spawned slots.
func NewProcPool(cfg ProcConfig) *ProcPool {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.KillGrace <= 0 {
		cfg.KillGrace = 2 * time.Second
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	p := &ProcPool{cfg: cfg, free: make(chan *workerProc, cfg.Workers)}
	for i := 0; i < cfg.Workers; i++ {
		p.free <- nil
	}
	return p
}

func (p *ProcPool) spawn() (*workerProc, error) {
	p.mu.Lock()
	id := p.spawns
	p.spawns++
	p.mu.Unlock()
	cmd := p.cfg.Command(id)
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, &CrashError{Kind: CrashSpawn, Worker: id, Detail: err.Error()}
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, &CrashError{Kind: CrashSpawn, Worker: id, Detail: err.Error()}
	}
	cmd.Stderr = p.cfg.Stderr
	if err := cmd.Start(); err != nil {
		return nil, &CrashError{Kind: CrashSpawn, Worker: id, Detail: err.Error()}
	}
	if p.cfg.OnSpawn != nil {
		p.cfg.OnSpawn(id)
	}
	return &workerProc{id: id, cmd: cmd, in: in, out: bufio.NewReaderSize(out, 1<<16)}, nil
}

// Spawns returns how many worker processes the pool has started.
func (p *ProcPool) Spawns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spawns
}

// Do sends one request to a worker process and returns its response.
// A non-nil *CrashError means the worker process was lost (crash, kill,
// hang, protocol corruption) — the job may be retried on another worker.
// A plain error is the worker's own handler error: deterministic, not a
// process failure.
func (p *ProcPool) Do(req json.RawMessage) (json.RawMessage, error) {
	w := <-p.free
	if w == nil {
		var err error
		if w, err = p.spawn(); err != nil {
			p.free <- nil
			p.crashed(err)
			return nil, err
		}
	}
	resp, err := p.roundTrip(w, req)
	if err != nil {
		var ce *CrashError
		if errors.As(err, &ce) {
			// The worker is gone; return its slot empty for a lazy respawn.
			p.free <- nil
			p.crashed(err)
			return nil, err
		}
		p.free <- w
		return nil, err
	}
	p.free <- w
	return resp, nil
}

func (p *ProcPool) crashed(err error) {
	var ce *CrashError
	if p.cfg.OnCrash != nil && errors.As(err, &ce) {
		p.cfg.OnCrash(ce.Worker, ce.Kind)
	}
}

// roundTrip writes one request frame and reads the matching response,
// enforcing the deadline. On any process-level failure the worker is
// reaped (killed if necessary) and a *CrashError returned.
func (p *ProcPool) roundTrip(w *workerProc, req json.RawMessage) (json.RawMessage, error) {
	id := w.seq
	w.seq++
	frame, err := json.Marshal(procRequest{ID: id, Req: req})
	if err != nil {
		return nil, fmt.Errorf("engine: marshal request: %w", err)
	}
	if _, err := w.in.Write(append(frame, '\n')); err != nil {
		kind := p.reap(w, CrashExit)
		return nil, &CrashError{Kind: kind, Worker: w.id,
			Detail: fmt.Sprintf("write: %v (%s)", err, p.exitDetail(w))}
	}

	type read struct {
		line []byte
		err  error
	}
	ch := make(chan read, 1)
	go func() {
		line, rerr := w.out.ReadBytes('\n')
		ch <- read{line, rerr}
	}()
	var r read
	if p.cfg.Deadline > 0 {
		timer := time.NewTimer(p.cfg.Deadline)
		select {
		case r = <-ch:
			timer.Stop()
		case <-timer.C:
			kind := p.reap(w, CrashHang)
			<-ch // the killed process EOFs the abandoned reader
			return nil, &CrashError{Kind: kind, Worker: w.id,
				Detail: fmt.Sprintf("no response within %v (%s)", p.cfg.Deadline, p.exitDetail(w))}
		}
	} else {
		r = <-ch
	}
	if r.err != nil {
		kind := p.reap(w, CrashExit)
		return nil, &CrashError{Kind: kind, Worker: w.id,
			Detail: fmt.Sprintf("read: %v (%s)", r.err, p.exitDetail(w))}
	}
	var resp procResponse
	if err := json.Unmarshal(bytes.TrimSpace(r.line), &resp); err != nil {
		p.reap(w, CrashProto)
		return nil, &CrashError{Kind: CrashProto, Worker: w.id,
			Detail: fmt.Sprintf("undecodable response: %v", err)}
	}
	if resp.ID != id {
		p.reap(w, CrashProto)
		return nil, &CrashError{Kind: CrashProto, Worker: w.id,
			Detail: fmt.Sprintf("response id %d for request %d", resp.ID, id)}
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Resp, nil
}

// reap shuts the worker down (TERM, then KILL after the grace) and waits
// for it, refining the crash kind from the exit status: a worker that
// died by signal reports CrashSignal even when first noticed as an EOF.
func (p *ProcPool) reap(w *workerProc, kind CrashKind) CrashKind {
	w.in.Close()
	done := make(chan error, 1)
	go func() { done <- w.cmd.Wait() }()
	var werr error
	w.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case werr = <-done:
	case <-time.After(p.cfg.KillGrace):
		w.cmd.Process.Kill()
		werr = <-done
	}
	w.waitErr = werr
	w.waited = true
	if kind == CrashHang || kind == CrashProto {
		return kind
	}
	var ee *exec.ExitError
	if errors.As(werr, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			return CrashSignal
		}
	}
	return CrashExit
}

// exitDetail renders the reaped worker's exit status for error messages.
func (p *ProcPool) exitDetail(w *workerProc) string {
	if !w.waited {
		return "not reaped"
	}
	werr := w.waitErr
	if werr == nil {
		return "exited cleanly mid-job"
	}
	var ee *exec.ExitError
	if errors.As(werr, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			d := fmt.Sprintf("killed by %v", ws.Signal())
			if ws.Signal() == syscall.SIGKILL {
				d += ", possibly the OOM killer"
			}
			return d
		}
		return fmt.Sprintf("exit status %d", ee.ExitCode())
	}
	return werr.Error()
}

// Close shuts down every idle worker (closing stdin lets the ServeProc
// loop exit cleanly) and marks the pool closed. Concurrent Do calls must
// have completed.
func (p *ProcPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	var firstErr error
	for i := 0; i < p.cfg.Workers; i++ {
		w := <-p.free
		if w == nil {
			continue
		}
		w.in.Close()
		done := make(chan error, 1)
		go func() { done <- w.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-time.After(p.cfg.KillGrace):
			w.cmd.Process.Kill()
			<-done
		}
	}
	return firstErr
}

// ServeProc runs a worker loop: one procRequest per stdin line, the
// handler's answer (or error) written back as a procResponse line. It
// returns when the input stream ends (the orchestrator closed the pipe
// or died). cmd/farm's worker mode and test helper processes run this.
func ServeProc(r io.Reader, w io.Writer, handle func(json.RawMessage) (json.RawMessage, error)) error {
	br := bufio.NewReaderSize(r, 1<<16)
	bw := bufio.NewWriter(w)
	for {
		line, rerr := br.ReadBytes('\n')
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var req procRequest
			if err := json.Unmarshal(trimmed, &req); err != nil {
				return fmt.Errorf("engine: worker: undecodable request: %w", err)
			}
			resp := procResponse{ID: req.ID}
			out, herr := handle(req.Req)
			if herr != nil {
				resp.Err = herr.Error()
			} else {
				resp.Resp = out
			}
			frame, err := json.Marshal(resp)
			if err != nil {
				return fmt.Errorf("engine: worker: marshal response: %w", err)
			}
			if _, err := bw.Write(append(frame, '\n')); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return rerr
		}
	}
}
