// Package engine schedules independent experiment jobs over a bounded
// worker pool with fault isolation, JSONL checkpointing and resume.
//
// Every measurement in the evaluation is an independent, deterministic
// (collector, benchmark, heap size) run, so the full cross-product behind
// a figure is embarrassingly parallel. The engine exploits that while
// keeping the failure and output semantics of the sequential path:
//
//   - jobs run on a pool of Workers goroutines (default GOMAXPROCS);
//   - a panicking job is recorded with Outcome "panic" and the recovered
//     message instead of killing the sweep;
//   - an optional per-job wall-clock Timeout records Outcome "timeout"
//     for runs that diverge (the abandoned goroutine is leaked, which is
//     the best Go can do for uncooperative work — use the cost-unit
//     budget in harness.Env to actually stop a simulated run);
//   - completed jobs stream Records to a JSONL checkpoint file, and a
//     resumed engine skips jobs whose key already has a completed record;
//   - Run returns records in submission order regardless of completion
//     order, so downstream aggregation is deterministic.
//
// The engine is generic: payloads are anything JSON-marshalable. The
// harness layer (internal/harness.Executor) binds it to collector runs.
package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// Key identifies a job across process restarts. Experiment distinguishes
// job families whose remaining fields would otherwise collide (e.g. the
// pretenuring ablation reruns the same collector/benchmark/heap triple
// under a different environment).
type Key struct {
	Experiment string `json:"experiment,omitempty"`
	Collector  string `json:"collector,omitempty"`
	Benchmark  string `json:"benchmark,omitempty"`
	HeapBytes  int    `json:"heap_bytes,omitempty"`
}

// String renders the key in the stable "experiment/collector/benchmark/heap"
// form used to index checkpoints.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/%d", k.Experiment, k.Collector, k.Benchmark, k.HeapBytes)
}

// Outcome classifies how a job ended.
type Outcome string

const (
	// OK: the job completed and produced a payload.
	OK Outcome = "ok"
	// OOM: the run completed by exhausting the configured heap — a valid,
	// reproducible measurement (figures render it as a missing point).
	OOM Outcome = "oom"
	// Budget: the run exceeded its cost-unit budget and was aborted
	// deterministically.
	Budget Outcome = "budget"
	// Panic: the job panicked; Error holds the recovered value.
	Panic Outcome = "panic"
	// Timeout: the job exceeded the engine's wall-clock Timeout.
	Timeout Outcome = "timeout"
	// Errored: the job returned a non-nil error.
	Errored Outcome = "error"
)

// Completed reports whether the outcome is a finished, reproducible
// measurement that a resumed run may reuse. Failures (panic, timeout,
// error) are re-executed on resume.
func (o Outcome) Completed() bool { return o == OK || o == OOM || o == Budget }

// Job is one unit of work. Run returns a JSON-marshalable payload and may
// refine the outcome (returning "" means OK); errors and panics are
// captured by the engine.
type Job struct {
	Key Key
	Run func() (payload any, outcome Outcome, err error)
}

// Record is the durable result of one job — one line of the JSONL
// checkpoint. Payload carries the job's marshaled result for completed
// outcomes.
type Record struct {
	Key        Key             `json:"key"`
	Outcome    Outcome         `json:"outcome"`
	Error      string          `json:"error,omitempty"`
	DurationMS float64         `json:"duration_ms"`
	Payload    json.RawMessage `json:"payload,omitempty"`
	// Attempts counts executions when the transient-retry policy re-ran
	// the job (0 or absent: the first execution stood).
	Attempts int `json:"attempts,omitempty"`
	// ConfigHash stamps the record with Config.Fingerprint at commit
	// time, binding it to the exact build and configuration that produced
	// it. A resumed engine whose fingerprint differs invalidates the
	// record instead of silently reusing a measurement from a different
	// binary or parameter set.
	ConfigHash string `json:"config_hash,omitempty"`

	// Resumed marks records satisfied from the checkpoint rather than
	// executed; it is process-local and not serialized.
	Resumed bool `json:"-"`

	// Err preserves the job's error value (Error is its string form) so
	// the retry policy can inspect it; process-local, never serialized.
	Err error `json:"-"`
}

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// Checkpoint is the JSONL record file; "" disables checkpointing.
	Checkpoint string
	// Resume loads the checkpoint before the first Run and skips jobs
	// whose key already has a completed record. New records are appended.
	Resume bool
	// Fingerprint, when non-empty, is written into every committed
	// record (Record.ConfigHash) and checked on resume: prior records
	// whose hash differs — results from a different build or
	// configuration — are invalidated (re-executed) with a loud warning
	// instead of being silently reused. Empty disables the check.
	Fingerprint string
	// Timeout is the per-job wall-clock budget; 0 means none.
	Timeout time.Duration
	// Retries bounds additional executions of a job whose error is marked
	// transient (MarkTransient); 0 disables retrying. Panics and timeouts
	// are never retried — they are not transient by definition.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// subsequent attempt; 0 retries immediately.
	RetryBackoff time.Duration
	// Progress, if non-nil, receives one line per job completion.
	Progress func(string)
	// OnRecord, if non-nil, receives every record as it settles — freshly
	// executed AND resumed from the checkpoint — so observers (e.g. live
	// telemetry aggregation) see the complete record stream regardless of
	// how much of it came from a resume. It is called concurrently from
	// worker goroutines and must be safe for concurrent use.
	OnRecord func(Record)
}

// Engine executes batches of jobs. It may be shared across successive Run
// calls (the checkpoint stays open in append mode and completed keys are
// remembered across batches) and is safe for concurrent use.
type Engine struct {
	cfg Config
	rep *Reporter

	mu          sync.Mutex
	inited      bool
	prior       map[string]Record // completed records by Key.String()
	file        *os.File
	invalidated int // stale records dropped on resume (fingerprint mismatch)
}

// New creates an engine. The checkpoint file is not touched until the
// first Run.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg, rep: newReporter(cfg.Progress), prior: map[string]Record{}}
}

// Reporter returns the engine's progress reporter.
func (e *Engine) Reporter() *Reporter { return e.rep }

// Invalidated returns how many checkpoint records the resume load dropped
// because their ConfigHash did not match Config.Fingerprint.
func (e *Engine) Invalidated() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.invalidated
}

// Close syncs and releases the checkpoint file, if any. The sync makes
// the final flush crash-safe: every record committed before Close
// returns is durable, not sitting in a kernel buffer.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.file == nil {
		return nil
	}
	f := e.file
	e.file = nil
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Sync flushes the checkpoint file to stable storage without closing it.
// No-op when checkpointing is disabled or the file is already closed.
func (e *Engine) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.file == nil {
		return nil
	}
	return e.file.Sync()
}

func (e *Engine) init() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.inited {
		return nil
	}
	if e.cfg.Checkpoint != "" {
		if e.cfg.Resume {
			prior, err := LoadCheckpoint(e.cfg.Checkpoint)
			if err != nil {
				return err
			}
			for k, rec := range prior {
				if !rec.Outcome.Completed() {
					continue
				}
				if e.cfg.Fingerprint != "" && rec.ConfigHash != e.cfg.Fingerprint {
					e.invalidated++
					continue
				}
				e.prior[k] = rec
			}
			if e.invalidated > 0 {
				msg := fmt.Sprintf(
					"engine: checkpoint %s: invalidated %d stale record(s) whose config/binary hash does not match this run; they will be re-executed",
					e.cfg.Checkpoint, e.invalidated)
				if e.cfg.Progress != nil {
					e.cfg.Progress(msg)
				} else {
					fmt.Fprintln(os.Stderr, msg)
				}
			}
		}
		flags := os.O_CREATE | os.O_WRONLY
		if e.cfg.Resume {
			flags |= os.O_APPEND
		} else {
			flags |= os.O_TRUNC
		}
		f, err := os.OpenFile(e.cfg.Checkpoint, flags, 0o644)
		if err != nil {
			return err
		}
		e.file = f
	}
	e.inited = true
	return nil
}

// lookup returns a previously completed record for the key, if any.
func (e *Engine) lookup(k Key) (Record, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.prior[k.String()]
	return rec, ok
}

// commit persists the record (when checkpointing) and remembers completed
// outcomes so later batches sharing the key skip re-execution.
func (e *Engine) commit(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if rec.Outcome.Completed() {
		e.prior[rec.Key.String()] = rec
	}
	if e.file != nil {
		if _, err := e.file.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the jobs and returns one record per job, in submission
// order. Job failures (panic, timeout, error) are reported in the records,
// not as an error; the returned error is reserved for engine
// infrastructure failures (unreadable or unwritable checkpoint).
func (e *Engine) Run(jobs []Job) ([]Record, error) {
	if err := e.init(); err != nil {
		return nil, err
	}
	records := make([]Record, len(jobs))
	if len(jobs) == 0 {
		return records, nil
	}
	e.rep.add(len(jobs))

	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				if rec, ok := e.lookup(j.Key); ok {
					rec.Resumed = true
					records[i] = rec
					e.rep.observe(rec)
					if e.cfg.OnRecord != nil {
						e.cfg.OnRecord(rec)
					}
					continue
				}
				rec := e.executeWithRetry(j)
				rec.ConfigHash = e.cfg.Fingerprint
				if err := e.commit(rec); err != nil {
					errOnce.Do(func() { runErr = err })
				}
				records[i] = rec
				e.rep.observe(rec)
				if e.cfg.OnRecord != nil {
					e.cfg.OnRecord(rec)
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return records, runErr
}

// execute runs one job with panic recovery and the optional timeout.
func (e *Engine) execute(j Job) Record {
	start := time.Now()
	done := make(chan Record, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- Record{Key: j.Key, Outcome: Panic, Error: fmt.Sprint(r)}
			}
		}()
		payload, out, err := j.Run()
		if err != nil {
			done <- Record{Key: j.Key, Outcome: Errored, Error: err.Error(), Err: err}
			return
		}
		if out == "" {
			out = OK
		}
		raw, merr := json.Marshal(payload)
		if merr != nil {
			done <- Record{Key: j.Key, Outcome: Errored, Error: "payload: " + merr.Error()}
			return
		}
		done <- Record{Key: j.Key, Outcome: out, Payload: raw}
	}()

	var rec Record
	if e.cfg.Timeout > 0 {
		timer := time.NewTimer(e.cfg.Timeout)
		select {
		case rec = <-done:
			timer.Stop()
		case <-timer.C:
			// The job goroutine is abandoned; simulated runs should use a
			// cost budget so the goroutine also terminates.
			rec = Record{Key: j.Key, Outcome: Timeout,
				Error: fmt.Sprintf("exceeded wall-clock budget %v", e.cfg.Timeout)}
		}
	} else {
		rec = <-done
	}
	rec.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	return rec
}
