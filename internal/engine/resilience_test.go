package engine

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func TestRetryTransientError(t *testing.T) {
	e := New(Config{Workers: 1, Retries: 3})
	var calls atomic.Int32
	job := Job{
		Key: Key{Experiment: "retry", Benchmark: "flaky"},
		Run: func() (any, Outcome, error) {
			if calls.Add(1) < 3 {
				return nil, "", MarkTransient(errors.New("scratch file busy"))
			}
			return 42, OK, nil
		},
	}
	recs, err := e.Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if rec.Outcome != OK {
		t.Fatalf("outcome %s (%s), want OK after transient retries", rec.Outcome, rec.Error)
	}
	if calls.Load() != 3 {
		t.Errorf("job executed %d times, want 3", calls.Load())
	}
	if rec.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", rec.Attempts)
	}
}

func TestNoRetryForPermanentErrorOrPanic(t *testing.T) {
	e := New(Config{Workers: 1, Retries: 5})
	var permCalls, panicCalls atomic.Int32
	jobs := []Job{
		{
			Key: Key{Experiment: "retry", Benchmark: "permanent"},
			Run: func() (any, Outcome, error) {
				permCalls.Add(1)
				return nil, "", errors.New("deterministic misconfiguration")
			},
		},
		{
			Key: Key{Experiment: "retry", Benchmark: "panicking"},
			Run: func() (any, Outcome, error) {
				panicCalls.Add(1)
				panic("invariant broken")
			},
		},
	}
	recs, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Outcome != Errored || permCalls.Load() != 1 {
		t.Errorf("permanent error: outcome %s after %d calls, want error after 1",
			recs[0].Outcome, permCalls.Load())
	}
	if recs[1].Outcome != Panic || panicCalls.Load() != 1 {
		t.Errorf("panic: outcome %s after %d calls, want panic after 1",
			recs[1].Outcome, panicCalls.Load())
	}
}

func TestRetriesExhaustedKeepsTransientError(t *testing.T) {
	e := New(Config{Workers: 1, Retries: 2, RetryBackoff: time.Microsecond})
	var calls atomic.Int32
	job := Job{
		Key: Key{Experiment: "retry", Benchmark: "hopeless"},
		Run: func() (any, Outcome, error) {
			calls.Add(1)
			return nil, "", MarkTransient(errors.New("still busy"))
		},
	}
	recs, err := e.Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Outcome != Errored || calls.Load() != 3 {
		t.Errorf("outcome %s after %d calls, want error after 3 (1 + 2 retries)",
			recs[0].Outcome, calls.Load())
	}
	if !IsTransient(recs[0].Err) {
		t.Error("final record lost the transient marker")
	}
}

// TestResumeFromTruncatedCheckpoint simulates a run killed mid-write:
// the checkpoint's final line is cut short. Resume must keep every
// complete record and re-execute only the job whose record was torn.
func TestResumeFromTruncatedCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ck.jsonl")
	var calls atomic.Int32
	countingJob := func(name string, v int) Job {
		return Job{
			Key: Key{Experiment: "trunc", Benchmark: name},
			Run: func() (any, Outcome, error) { calls.Add(1); return v, OK, nil },
		}
	}
	jobs := []Job{countingJob("a", 1), countingJob("b", 2), countingJob("c", 3)}

	e1 := New(Config{Workers: 1, Checkpoint: ckpt})
	if _, err := e1.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("first run executed %d jobs, want 3", calls.Load())
	}

	// Tear the tail off the last record.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	calls.Store(0)
	e2 := New(Config{Workers: 1, Checkpoint: ckpt, Resume: true})
	recs, err := e2.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if calls.Load() != 1 {
		t.Errorf("resume executed %d jobs, want 1 (only the torn record)", calls.Load())
	}
	if !recs[0].Resumed || !recs[1].Resumed || recs[2].Resumed {
		t.Errorf("resumed flags = %v %v %v, want true true false",
			recs[0].Resumed, recs[1].Resumed, recs[2].Resumed)
	}
	for i, rec := range recs {
		if rec.Outcome != OK || payloadInt(t, rec) != i+1 {
			t.Errorf("record %d: outcome %s payload %s", i, rec.Outcome, rec.Payload)
		}
	}
}

func TestFlushOnSignalSyncsCheckpointAndReraises(t *testing.T) {
	var mu sync.Mutex
	var raised []os.Signal
	origRaise := raiseSignal
	raiseSignal = func(sig os.Signal) {
		mu.Lock()
		raised = append(raised, sig)
		mu.Unlock()
	}
	defer func() { raiseSignal = origRaise }()

	ckpt := filepath.Join(t.TempDir(), "ck.jsonl")
	e := New(Config{Workers: 1, Checkpoint: ckpt})
	if _, err := e.Run([]Job{intJob("sig", 7)}); err != nil {
		t.Fatal(err)
	}
	stop := e.FlushOnSignal(syscall.SIGUSR1)
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(raised)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("signal handler never re-raised")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	got := raised[0]
	mu.Unlock()
	if got != syscall.SIGUSR1 {
		t.Errorf("re-raised %v, want SIGUSR1", got)
	}
	// The handler closed the checkpoint; the record must be durable.
	prior, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := prior[Key{Experiment: "test", Benchmark: "sig"}.String()]
	if !ok || rec.Outcome != OK {
		t.Fatalf("checkpoint after signal flush = %v, want the completed record", prior)
	}
	// Close after the handler's close is a no-op, not an error.
	if err := e.Close(); err != nil {
		t.Errorf("Close after signal flush: %v", err)
	}
}
