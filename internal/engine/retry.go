package engine

import (
	"errors"
	"fmt"
	"time"
)

// ErrTransient marks job errors the engine may retry: conditions a
// re-execution has a real chance of clearing (a briefly unwritable
// scratch file, a contended resource) as opposed to deterministic
// failures, which retrying only repeats. Jobs opt in per error via
// MarkTransient; the engine never guesses.
var ErrTransient = errors.New("transient failure")

// MarkTransient wraps err so IsTransient reports true for it (and for
// anything that wraps the result). A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether err is marked transient.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// maxRetryBackoff caps the doubling retry backoff: a high Retries
// config should poll patiently, not sleep for unbounded (and, past 63
// doublings, overflowed-negative) durations.
const maxRetryBackoff = 30 * time.Second

// executeWithRetry runs the job, re-executing it up to Config.Retries
// times while it fails with a transient error. Backoff doubles per
// attempt up to maxRetryBackoff. Panics and timeouts are never retried.
func (e *Engine) executeWithRetry(j Job) Record {
	rec := e.execute(j)
	backoff := e.cfg.RetryBackoff
	for attempt := 1; attempt <= e.cfg.Retries; attempt++ {
		if rec.Outcome != Errored || !IsTransient(rec.Err) {
			break
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > maxRetryBackoff || backoff < 0 {
				backoff = maxRetryBackoff
			}
		}
		rec = e.execute(j)
		rec.Attempts = attempt + 1
	}
	return rec
}
