package engine

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFingerprintFraming(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("length framing failed: shifted parts collide")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Fatal("fingerprint not deterministic")
	}
	if Fingerprint() == Fingerprint("") {
		t.Fatal("empty part should differ from no parts")
	}
}

func TestBinaryHashStable(t *testing.T) {
	a, err := BinaryHash()
	if err != nil {
		t.Fatal(err)
	}
	b, err := BinaryHash()
	if err != nil {
		t.Fatal(err)
	}
	if a != b || len(a) != 64 {
		t.Fatalf("unstable or malformed binary hash: %q vs %q", a, b)
	}
}

// runFingerprinted runs one trivial checkpointed job under the given
// fingerprint and returns the engine after Close.
func runFingerprinted(t *testing.T, ckpt, fp string, resume bool) (*Engine, []Record) {
	t.Helper()
	eng := New(Config{Workers: 1, Checkpoint: ckpt, Resume: resume, Fingerprint: fp,
		Progress: func(string) {}})
	recs, err := eng.Run([]Job{{
		Key: Key{Experiment: "fp", Benchmark: "b"},
		Run: func() (any, Outcome, error) { return 42, OK, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	return eng, recs
}

// TestResumeMatchingFingerprintReuses: same fingerprint, records resumed.
func TestResumeMatchingFingerprintReuses(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.jsonl")
	_, recs := runFingerprinted(t, ckpt, "fp-a", false)
	if recs[0].Resumed {
		t.Fatal("first run cannot resume")
	}
	if recs[0].ConfigHash != "fp-a" {
		t.Fatalf("record not stamped: %q", recs[0].ConfigHash)
	}
	eng, recs := runFingerprinted(t, ckpt, "fp-a", true)
	if !recs[0].Resumed {
		t.Fatal("matching fingerprint must resume the record")
	}
	if eng.Invalidated() != 0 {
		t.Fatalf("invalidated %d records under a matching fingerprint", eng.Invalidated())
	}
}

// TestResumeMismatchedFingerprintInvalidates: a checkpoint written by a
// different build/config must not be silently reused — its records are
// dropped, re-executed, and the drop is reported.
func TestResumeMismatchedFingerprintInvalidates(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.jsonl")
	runFingerprinted(t, ckpt, "fp-a", false)

	var notes []string
	eng := New(Config{Workers: 1, Checkpoint: ckpt, Resume: true, Fingerprint: "fp-b",
		Progress: func(s string) { notes = append(notes, s) }})
	executed := false
	recs, err := eng.Run([]Job{{
		Key: Key{Experiment: "fp", Benchmark: "b"},
		Run: func() (any, Outcome, error) { executed = true; return 42, OK, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !executed || recs[0].Resumed {
		t.Fatal("mismatched fingerprint must re-execute the job")
	}
	if eng.Invalidated() != 1 {
		t.Fatalf("want 1 invalidated record, got %d", eng.Invalidated())
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "invalidated 1 stale record") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no loud invalidation note in %q", notes)
	}
	if recs[0].ConfigHash != "fp-b" {
		t.Fatalf("re-executed record stamped %q", recs[0].ConfigHash)
	}
}

// TestResumeUnstampedRecordsInvalidatedUnderFingerprint: legacy records
// with no hash are also stale once the engine runs fingerprinted.
func TestResumeUnstampedRecordsInvalidatedUnderFingerprint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.jsonl")
	runFingerprinted(t, ckpt, "", false) // legacy: no fingerprint, no stamp
	eng, recs := runFingerprinted(t, ckpt, "fp-a", true)
	if recs[0].Resumed {
		t.Fatal("unstamped record must not satisfy a fingerprinted resume")
	}
	if eng.Invalidated() != 1 {
		t.Fatalf("want 1 invalidated record, got %d", eng.Invalidated())
	}
}

// TestResumeWithoutFingerprintKeepsAll: fingerprinting off, behavior is
// unchanged — stamped and unstamped records both resume.
func TestResumeWithoutFingerprintKeepsAll(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.jsonl")
	runFingerprinted(t, ckpt, "fp-a", false)
	eng, recs := runFingerprinted(t, ckpt, "", true)
	if !recs[0].Resumed {
		t.Fatal("fingerprint-off resume must reuse records regardless of stamps")
	}
	if eng.Invalidated() != 0 {
		t.Fatalf("invalidated %d records with fingerprinting off", eng.Invalidated())
	}
}
