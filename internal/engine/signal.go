package engine

import (
	"os"
	"os/signal"
	"sync"
)

// raiseSignal re-delivers a signal to the current process with default
// disposition (the handler has already called signal.Stop), so the
// process exits with the conventional signal status. A variable so tests
// can intercept the re-raise instead of dying.
var raiseSignal = func(sig os.Signal) {
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		p.Signal(sig)
	}
}

// FlushOnSignal makes shutdown crash-safe: on the first of sigs
// (typically SIGINT and SIGTERM) it syncs and closes the checkpoint
// file — so every record committed so far survives the kill — then
// re-raises the signal under the default disposition. In-flight jobs are
// abandoned; their keys have no completed record, so a resumed run
// re-executes exactly them.
//
// Signals that were ignored when the process started (nohup, shell
// background jobs get SIGINT ignored) stay ignored: intercepting one
// would close the checkpoint and then fail to die — the restored
// disposition discards the re-raise — leaving the sweep running with
// checkpointing silently disabled.
//
// The returned stop function uninstalls the handler (idempotent); call
// it once the sweep has shut down normally.
func (e *Engine) FlushOnSignal(sigs ...os.Signal) (stop func()) {
	handled := make([]os.Signal, 0, len(sigs))
	for _, sig := range sigs {
		if !signal.Ignored(sig) {
			handled = append(handled, sig)
		}
	}
	if len(handled) == 0 {
		return func() {} // Notify with no signals would mean "all signals"
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, handled...)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			e.Close() // Close syncs before releasing the file
			signal.Stop(ch)
			raiseSignal(sig)
		case <-done:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}
