package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"sync"
)

// Fingerprint hashes an ordered list of strings into a stable hex digest.
// Callers bind checkpoints (Config.Fingerprint) and ledger entries to the
// exact configuration that produced them by fingerprinting the relevant
// inputs — typically the binary hash plus the serialized run parameters.
// Parts are length-prefix framed, so ("ab","c") and ("a","bc") differ.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		var n [8]byte
		l := len(p)
		for i := 0; i < 8; i++ {
			n[i] = byte(l >> (8 * i))
		}
		h.Write(n[:])
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

var binaryHash struct {
	once sync.Once
	hex  string
	err  error
}

// BinaryHash returns the SHA-256 of the currently running executable,
// computed once per process. It is the "which build produced this
// number" component of checkpoint fingerprints and ledger entries: a
// record stamped with a different binary hash was measured by different
// code and must not be silently reused.
func BinaryHash() (string, error) {
	binaryHash.once.Do(func() {
		path, err := os.Executable()
		if err != nil {
			binaryHash.err = err
			return
		}
		f, err := os.Open(path)
		if err != nil {
			binaryHash.err = err
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			binaryHash.err = err
			return
		}
		binaryHash.hex = hex.EncodeToString(h.Sum(nil))
	})
	return binaryHash.hex, binaryHash.err
}
