package engine

import (
	"fmt"
	"sync"
	"time"
)

// Progress is a point-in-time snapshot of an engine's work: jobs finished
// out of jobs submitted so far, failures (non-completed outcomes),
// checkpoint-resumed jobs, and an ETA extrapolated from the live
// (non-resumed) completion rate.
type Progress struct {
	Done     int
	Total    int
	Failures int
	Resumed  int
	Elapsed  time.Duration
	ETA      time.Duration // 0 when no live completions yet
}

// Reporter accumulates progress across an engine's Run calls and emits
// one human-readable line per completed job. It is safe for concurrent
// use.
type Reporter struct {
	emit func(string)

	mu       sync.Mutex
	total    int
	done     int
	failures int
	resumed  int
	started  time.Time
}

func newReporter(emit func(string)) *Reporter {
	return &Reporter{emit: emit}
}

// add registers n newly submitted jobs.
func (r *Reporter) add(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started.IsZero() {
		r.started = time.Now()
	}
	r.total += n
}

// observe records one completed job and emits a progress line.
func (r *Reporter) observe(rec Record) {
	r.mu.Lock()
	r.done++
	if rec.Resumed {
		r.resumed++
	}
	if !rec.Outcome.Completed() {
		r.failures++
	}
	p := r.snapshotLocked()
	r.mu.Unlock()
	if r.emit == nil {
		return
	}
	status := string(rec.Outcome)
	if rec.Resumed {
		status = "cached"
	}
	line := fmt.Sprintf("[%d/%d] %-7s %s", p.Done, p.Total, status, rec.Key)
	if rec.Error != "" {
		line += " (" + rec.Error + ")"
	}
	if p.Failures > 0 {
		line += fmt.Sprintf(" fail=%d", p.Failures)
	}
	if p.ETA > 0 && p.Done < p.Total {
		line += fmt.Sprintf(" eta=%s", p.ETA.Round(time.Second))
	}
	r.emit(line)
}

// Snapshot returns the current progress.
func (r *Reporter) Snapshot() Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Reporter) snapshotLocked() Progress {
	p := Progress{Done: r.done, Total: r.total, Failures: r.failures, Resumed: r.resumed}
	if !r.started.IsZero() {
		p.Elapsed = time.Since(r.started)
	}
	if live := r.done - r.resumed; live > 0 && r.done < r.total {
		perJob := p.Elapsed / time.Duration(live)
		p.ETA = perJob * time.Duration(r.total-r.done)
	}
	return p
}
