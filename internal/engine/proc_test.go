package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the worker-process entry point for the ProcPool
// tests: when BELTWAY_ENGINE_HELPER is set, the test binary runs a
// ServeProc loop whose handler obeys scripted requests (echo, exit,
// self-SIGKILL, hang, handler error, garbage frame) and exits.
func TestMain(m *testing.M) {
	if os.Getenv("BELTWAY_ENGINE_HELPER") != "" {
		if err := ServeProc(os.Stdin, os.Stdout, helperHandle); err != nil {
			fmt.Fprintln(os.Stderr, "helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func helperHandle(req json.RawMessage) (json.RawMessage, error) {
	var cmd string
	if err := json.Unmarshal(req, &cmd); err != nil {
		return nil, err
	}
	switch {
	case cmd == "exit3":
		os.Exit(3)
	case cmd == "killself":
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		time.Sleep(time.Hour) // unreachable; SIGKILL is not deliverable to a handler
	case cmd == "hang":
		// A bare select{} would trip the runtime deadlock detector; a
		// long sleep hangs the way a stuck job does.
		time.Sleep(time.Hour)
	case cmd == "herr":
		return nil, errors.New("scripted handler failure")
	case cmd == "garbage":
		os.Stdout.WriteString("not json at all\n")
		return nil, errors.New("unreachable") // response after garbage; pool must already distrust the stream
	}
	return json.Marshal("echo:" + cmd)
}

// helperPool builds a pool whose workers re-exec this test binary in
// helper mode.
func helperPool(t *testing.T, cfg ProcConfig) *ProcPool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Command == nil {
		cfg.Command = func(int) *exec.Cmd {
			c := exec.Command(exe)
			c.Env = append(os.Environ(), "BELTWAY_ENGINE_HELPER=1")
			return c
		}
	}
	p := NewProcPool(cfg)
	t.Cleanup(func() { p.Close() })
	return p
}

func do(t *testing.T, p *ProcPool, cmd string) (string, error) {
	t.Helper()
	req, _ := json.Marshal(cmd)
	resp, err := p.Do(req)
	if err != nil {
		return "", err
	}
	var s string
	if err := json.Unmarshal(resp, &s); err != nil {
		t.Fatalf("bad response %q: %v", resp, err)
	}
	return s, nil
}

func TestProcPoolEcho(t *testing.T) {
	p := helperPool(t, ProcConfig{Workers: 2})
	for i := 0; i < 8; i++ {
		got, err := do(t, p, fmt.Sprintf("m%d", i))
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if want := fmt.Sprintf("echo:m%d", i); got != want {
			t.Fatalf("job %d: got %q want %q", i, got, want)
		}
	}
	if s := p.Spawns(); s > 2 {
		t.Fatalf("spawned %d workers for a healthy 2-slot pool", s)
	}
}

func TestProcPoolConcurrent(t *testing.T) {
	p := helperPool(t, ProcConfig{Workers: 4})
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := do(t, p, fmt.Sprintf("c%d", i))
			if err == nil && got != fmt.Sprintf("echo:c%d", i) {
				err = fmt.Errorf("got %q", got)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
}

// TestProcPoolWorkerExit covers a worker that dies with an exit status:
// the job fails with CrashExit and the next job transparently uses a
// respawned worker.
func TestProcPoolWorkerExit(t *testing.T) {
	var crashes []CrashKind
	var mu sync.Mutex
	p := helperPool(t, ProcConfig{Workers: 1, OnCrash: func(_ int, k CrashKind) {
		mu.Lock()
		crashes = append(crashes, k)
		mu.Unlock()
	}})
	if _, err := do(t, p, "warm"); err != nil {
		t.Fatal(err)
	}
	_, err := do(t, p, "exit3")
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if ce.Kind != CrashExit || !strings.Contains(ce.Detail, "exit status 3") {
		t.Fatalf("want CrashExit with status 3, got kind %q detail %q", ce.Kind, ce.Detail)
	}
	if got, err := do(t, p, "after"); err != nil || got != "echo:after" {
		t.Fatalf("post-crash job: %q, %v", got, err)
	}
	if p.Spawns() != 2 {
		t.Fatalf("want 2 spawns (original + respawn), got %d", p.Spawns())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(crashes) != 1 || crashes[0] != CrashExit {
		t.Fatalf("OnCrash observed %v", crashes)
	}
}

// TestProcPoolWorkerSIGKILL is the OOM-kill shape: the worker vanishes
// under SIGKILL mid-job and the crash is classified as a signal death.
func TestProcPoolWorkerSIGKILL(t *testing.T) {
	p := helperPool(t, ProcConfig{Workers: 1})
	_, err := do(t, p, "killself")
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if ce.Kind != CrashSignal {
		t.Fatalf("want CrashSignal, got %q (%s)", ce.Kind, ce.Detail)
	}
	if !strings.Contains(ce.Detail, "killed") {
		t.Fatalf("detail should name the signal: %q", ce.Detail)
	}
	if got, err := do(t, p, "alive"); err != nil || got != "echo:alive" {
		t.Fatalf("post-kill job: %q, %v", got, err)
	}
}

// TestProcPoolHangEscalation: a worker that stops answering is SIGKILLed
// after the deadline (TERM first, KILL after the grace) and the job
// reports CrashHang.
func TestProcPoolHangEscalation(t *testing.T) {
	p := helperPool(t, ProcConfig{Workers: 1, Deadline: 200 * time.Millisecond, KillGrace: 200 * time.Millisecond})
	start := time.Now()
	_, err := do(t, p, "hang")
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if ce.Kind != CrashHang {
		t.Fatalf("want CrashHang, got %q (%s)", ce.Kind, ce.Detail)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("escalation took %v", e)
	}
	if got, err := do(t, p, "recover"); err != nil || got != "echo:recover" {
		t.Fatalf("post-hang job: %q, %v", got, err)
	}
}

// TestProcPoolHandlerError: an error returned by the worker's handler is
// a plain job error, not a crash — the worker stays up and reusable.
func TestProcPoolHandlerError(t *testing.T) {
	p := helperPool(t, ProcConfig{Workers: 1})
	_, err := do(t, p, "herr")
	if err == nil || err.Error() != "scripted handler failure" {
		t.Fatalf("want the handler's error, got %v", err)
	}
	var ce *CrashError
	if errors.As(err, &ce) {
		t.Fatalf("handler error misclassified as crash: %v", err)
	}
	if got, err := do(t, p, "still"); err != nil || got != "echo:still" {
		t.Fatalf("worker should survive a handler error: %q, %v", got, err)
	}
	if p.Spawns() != 1 {
		t.Fatalf("handler error must not respawn (spawns=%d)", p.Spawns())
	}
}

// TestProcPoolProtocolError: garbage on the response stream kills the
// worker's credibility; the pool reaps it and reports CrashProto.
func TestProcPoolProtocolError(t *testing.T) {
	p := helperPool(t, ProcConfig{Workers: 1})
	_, err := do(t, p, "garbage")
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if ce.Kind != CrashProto {
		t.Fatalf("want CrashProto, got %q (%s)", ce.Kind, ce.Detail)
	}
	if got, err := do(t, p, "fresh"); err != nil || got != "echo:fresh" {
		t.Fatalf("post-protocol-error job: %q, %v", got, err)
	}
}

// TestProcPoolTransientIntegration wires a ProcPool under the engine's
// transient-retry path, the way the farm does: a crash marks the job
// transient, the engine requeues it, and the respawned worker answers.
func TestProcPoolTransientIntegration(t *testing.T) {
	p := helperPool(t, ProcConfig{Workers: 1})
	eng := New(Config{Workers: 1, Retries: 2})
	calls := 0
	jobs := []Job{{
		Key: Key{Experiment: "proc", Benchmark: "b"},
		Run: func() (any, Outcome, error) {
			calls++
			cmd := "fine"
			if calls == 1 {
				cmd = "killself"
			}
			req, _ := json.Marshal(cmd)
			resp, err := p.Do(req)
			if err != nil {
				var ce *CrashError
				if errors.As(err, &ce) {
					return nil, "", MarkTransient(err)
				}
				return nil, "", err
			}
			return resp, OK, nil
		},
	}}
	recs, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Outcome != OK {
		t.Fatalf("want OK after requeue, got %s (%s)", recs[0].Outcome, recs[0].Error)
	}
	if recs[0].Attempts != 2 {
		t.Fatalf("want Attempts=2 (requeued exactly once), got %d", recs[0].Attempts)
	}
}
