package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCheckpointLines writes a checkpoint file verbatim from raw lines.
func writeCheckpointLines(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func recLine(t *testing.T, bench string, payload any) string {
	t.Helper()
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Key: Key{Benchmark: bench}, Outcome: OK, Payload: raw}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestLoadCheckpointSkipsGarbageLines interleaves complete records with
// lines that are not JSON at all, truncated JSON, and JSON of the wrong
// shape; every complete record before AND after the garbage must load.
func TestLoadCheckpointSkipsGarbageLines(t *testing.T) {
	path := writeCheckpointLines(t,
		recLine(t, "a", 1),
		"!!! not json at all",
		recLine(t, "b", 2),
		`{"key":{"benchmark":"trunc"},"outco`, // killed mid-write, then restarted
		recLine(t, "c", 3),
		`[1,2,3]`, // valid JSON, wrong shape
		"",        // blank line
		recLine(t, "d", 4),
	)
	prior, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 4 {
		t.Fatalf("loaded %d records, want 4: %v", len(prior), prior)
	}
	for i, bench := range []string{"a", "b", "c", "d"} {
		rec, ok := prior[Key{Benchmark: bench}.String()]
		if !ok {
			t.Fatalf("record %q missing", bench)
		}
		var got int
		if err := json.Unmarshal(rec.Payload, &got); err != nil || got != i+1 {
			t.Errorf("record %q payload %s, want %d", bench, rec.Payload, i+1)
		}
	}
}

// TestLoadCheckpointHugeRecordLine covers records longer than the 64 KiB
// read buffer: bufio.Reader.ReadBytes accumulates across refills, so a
// single oversized line must come back whole, not split into a parsable
// prefix plus garbage.
func TestLoadCheckpointHugeRecordLine(t *testing.T) {
	big := strings.Repeat("x", 3<<16) // 192 KiB payload string
	path := writeCheckpointLines(t,
		recLine(t, "small-before", "s"),
		recLine(t, "huge", big),
		recLine(t, "small-after", "s"),
	)
	prior, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 3 {
		t.Fatalf("loaded %d records, want 3", len(prior))
	}
	var got string
	if err := json.Unmarshal(prior[Key{Benchmark: "huge"}.String()].Payload, &got); err != nil {
		t.Fatal(err)
	}
	if got != big {
		t.Errorf("huge payload corrupted: %d bytes back, want %d", len(got), len(big))
	}
}

// TestLoadCheckpointTruncatedFinalLineKeepsLastKey is the mid-write-kill
// scenario for a RE-RUN key: the last complete record for a key wins even
// when a later rewrite of that same key was cut off.
func TestLoadCheckpointTruncatedFinalLineKeepsLastKey(t *testing.T) {
	complete := recLine(t, "a", 2)
	path := writeCheckpointLines(t,
		recLine(t, "a", 1),
		complete,
		complete[:len(complete)/2], // the third attempt died mid-write
	)
	prior, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 1 {
		t.Fatalf("loaded %d records, want 1", len(prior))
	}
	var got int
	rec := prior[Key{Benchmark: "a"}.String()]
	if err := json.Unmarshal(rec.Payload, &got); err != nil || got != 2 {
		t.Errorf("payload %s, want 2 (last complete record)", rec.Payload)
	}
}

// TestLoadCheckpointLastRecordWinsProperty: for any interleaving of keys
// the loaded map reflects exactly the final complete record of each key.
func TestLoadCheckpointLastRecordWinsProperty(t *testing.T) {
	keys := []string{"k0", "k1", "k2"}
	var lines []string
	want := map[string]int{}
	seq := []int{0, 1, 0, 2, 2, 1, 0, 2, 1, 1}
	for i, k := range seq {
		bench := keys[k]
		lines = append(lines, recLine(t, bench, i))
		want[bench] = i
		if i%3 == 1 {
			lines = append(lines, fmt.Sprintf("garbage %d", i))
		}
	}
	prior, err := LoadCheckpoint(writeCheckpointLines(t, lines...))
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != len(keys) {
		t.Fatalf("loaded %d records, want %d", len(prior), len(keys))
	}
	for bench, wantV := range want {
		var got int
		rec := prior[Key{Benchmark: bench}.String()]
		if err := json.Unmarshal(rec.Payload, &got); err != nil || got != wantV {
			t.Errorf("%s: payload %s, want %d", bench, rec.Payload, wantV)
		}
	}
}
