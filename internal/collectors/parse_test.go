package collectors

import (
	"reflect"
	"strings"
	"testing"

	"beltway/internal/core"
	"beltway/internal/generational"
	"beltway/internal/heap"
)

func opts() Options {
	return Options{HeapBytes: 1 << 20, FrameBytes: 8192}
}

func TestParseNamedForms(t *testing.T) {
	cases := []struct {
		spec  string
		name  string
		belts int
	}{
		{"ss", "BSS", 1},
		{"bss", "BSS", 1},
		{"semispace", "BSS", 1},
		{"appel", "Appel", 2},
		{"appel3", "Appel-3gen", 3},
		{"ba2", "Beltway 100.100", 2},
		{"fixed:25", "Fixed 25", 2},
		{"bofm:30", "BOFM 30", 1},
		{"bof:10", "BOF 10", 2},
		{"25.25", "Beltway 25.25", 2},
		{"25.50", "Beltway 25.50", 2},
		{"25.25.100", "Beltway 25.25.100", 3},
		{"10.20.100", "Beltway 10.20.100", 3},
		{"100.100", "Beltway 100.100", 2},
		{" 33.33.100 ", "Beltway 33.33.100", 3},
	}
	for _, c := range cases {
		cfg, err := Parse(c.spec, opts())
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if cfg.Name != c.name {
			t.Errorf("Parse(%q).Name = %q, want %q", c.spec, cfg.Name, c.name)
		}
		if len(cfg.Belts) != c.belts {
			t.Errorf("Parse(%q) has %d belts, want %d", c.spec, len(cfg.Belts), c.belts)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("Parse(%q) invalid: %v", c.spec, err)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "nope", "25", "25.25.50", "0.25", "25.0", "101.101",
		"fixed:", "fixed:0", "fixed:200", "bof:x", "25.25.100.100",
	} {
		if _, err := Parse(bad, opts()); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParsedConfigsInstantiate(t *testing.T) {
	for _, spec := range []string{"ss", "appel", "fixed:25", "bofm:25", "bof:25",
		"25.25", "25.25.100", "10.10.100", "ba2", "appel3", "40.60"} {
		cfg, err := Parse(spec, opts())
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if _, err := New(cfg, heap.NewRegistry()); err != nil {
			t.Errorf("New(Parse(%q)): %v", spec, err)
		}
	}
}

func TestPresetStructure(t *testing.T) {
	o := opts()
	if cfg := BSS(o); len(cfg.Belts) != 1 || cfg.Belts[0].PromoteTo != 0 {
		t.Error("BSS must be one self-promoting belt")
	}
	if cfg := XX(25, o); cfg.Belts[0].MaxIncrements != 1 {
		t.Error("XX nursery must be a single bounded increment (nursery trigger)")
	}
	if cfg := XX100(25, o); cfg.Belts[2].IncrementFrac < 1 || cfg.Belts[2].PromoteTo != 2 {
		t.Error("XX100 third belt must be unbounded and self-promoting")
	}
	if cfg := BOF(25, o); !cfg.OlderFirst {
		t.Error("BOF must set OlderFirst")
	}
	if cfg := BA2(o); cfg.Belts[0].IncrementFrac < 1 {
		t.Error("BA2 nursery must be unbounded (grows into all usable memory)")
	}
	if cfg := XY(25, 50, o); cfg.Belts[0].IncrementFrac != 0.25 || cfg.Belts[1].IncrementFrac != 0.50 {
		t.Error("XY increment fractions wrong")
	}
	// All Beltway presets use the frame barrier and dynamic reserve.
	for _, cfg := range []core.Config{BSS(o), BA2(o), XX(25, o), XX100(25, o), BOF(25, o), BOFM(25, o)} {
		if cfg.Barrier != core.FrameBarrier {
			t.Errorf("%s: not using the frame barrier", cfg.Name)
		}
		if cfg.FixedHalfReserve {
			t.Errorf("%s: Beltway preset must use the dynamic reserve", cfg.Name)
		}
	}
}

// specFromName recovers a Parse spec from a configuration's display
// name: the inverse of the naming conventions the presets use ("Beltway "
// prefix, "Fixed 25"-style spacing, the "+cards" suffix spelled as the
// "cards:" prefix on the command line).
func specFromName(name string) string {
	s := strings.ToLower(strings.TrimSpace(name))
	prefix := ""
	if rest, ok := strings.CutSuffix(s, "+cards"); ok {
		prefix, s = "cards:", rest
	}
	s = strings.TrimPrefix(s, "beltway ")
	s = strings.Replace(s, "appel-3gen", "appel3", 1)
	s = strings.ReplaceAll(s, " ", ":")
	return prefix + s
}

func TestParseNameRoundTrip(t *testing.T) {
	// Every preset's display name, run back through specFromName and
	// Parse, must reproduce the configuration exactly (command-line
	// ergonomics: the name a tool prints is a spec a user can type).
	o := opts()
	presets := []core.Config{
		BSS(o), BA2(o), BOFM(20, o), BOF(25, o),
		XX(25, o), XX100(25, o), XXMOS(25, o), XY(25, 50, o),
		generational.Appel(o), generational.Appel3(o), generational.Fixed(40, o),
		Immix(o),
	}
	// Card-marking variants (MOS and mark-region require remsets; the
	// older-first and boundary-barrier presets take cards like any other).
	for _, cfg := range []core.Config{
		BSS(o), BA2(o), BOFM(20, o), BOF(25, o),
		XX(25, o), XX100(25, o), XY(25, 50, o), generational.Appel(o),
	} {
		presets = append(presets, WithCardBarrier(cfg))
	}
	// Mark-region variants (excluded: older-first, MOS, cards — the
	// engine forbids those combinations, see core.Config.Validate).
	for _, cfg := range []core.Config{
		BSS(o), BA2(o), BOFM(20, o),
		XX(25, o), XX100(25, o), XY(25, 50, o),
		generational.Appel(o), generational.Appel3(o), generational.Fixed(40, o),
	} {
		presets = append(presets, WithMarkRegion(cfg))
	}
	seen := make(map[string]bool)
	for _, cfg := range presets {
		if seen[cfg.Name] {
			t.Errorf("duplicate preset name %q", cfg.Name)
		}
		seen[cfg.Name] = true
		spec := specFromName(cfg.Name)
		cfg2, err := Parse(spec, o)
		if err != nil {
			t.Errorf("re-parsing %q (name %q): %v", spec, cfg.Name, err)
			continue
		}
		if !reflect.DeepEqual(cfg, cfg2) {
			t.Errorf("round trip of %q via %q changed the config:\n got %+v\nwant %+v",
				cfg.Name, spec, cfg2, cfg)
		}
	}
}

func TestParseExtensionForms(t *testing.T) {
	cfg, err := Parse("25.25.mos", opts())
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.MOS || len(cfg.Belts) != 3 {
		t.Errorf("MOS form parsed wrong: %+v", cfg)
	}
	cfg, err = Parse("cards:25.25.100", opts())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Barrier != core.CardBarrier {
		t.Error("cards: prefix did not switch the barrier")
	}
	if _, err := Parse("cards:bogus", opts()); err == nil {
		t.Error("cards:bogus accepted")
	}
	if _, err := Parse("25.30.mos", opts()); err == nil {
		t.Error("asymmetric MOS form accepted")
	}
}
