package collectors_test

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
)

// FuzzConfigParse asserts the command-line surface is total and sound:
// Parse never panics on any input, and every spec it accepts yields a
// configuration that validates and builds a working heap. Anything
// Parse-accepted-but-Validate-rejected is a bug in Parse — the user
// typed a documented spelling and got a config the framework refuses.
func FuzzConfigParse(f *testing.F) {
	seeds := []string{
		"ss", "bss", "semispace", "appel", "appel3", "ba2",
		"fixed:40", "fixed:100", "bofm:20", "bof:25",
		"25.25", "30.60", "25.25.100", "20.45.100", "40.40.mos",
		"cards:25.25", "cards:appel", "cards:cards:ss",
		"", "fixed:", "fixed:0", "fixed:101", "1.2.3", "25.25.99",
		"mos", ".mos", "100.100", "100.100.100", "bof:100", "bofm:100",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	opts := collectors.Options{HeapBytes: 1 << 20, FrameBytes: 4096}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 64 {
			return // command-line spellings are short; don't burn time on novels
		}
		cfg, err := collectors.Parse(spec, opts)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted a config Validate rejects: %v\n%+v", spec, verr, cfg)
		}
		if _, nerr := core.New(cfg, heap.NewRegistry()); nerr != nil {
			t.Fatalf("Parse(%q) accepted a config core.New rejects: %v", spec, nerr)
		}
	})
}
