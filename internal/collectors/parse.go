package collectors

import (
	"fmt"
	"strconv"
	"strings"

	"beltway/internal/core"
	"beltway/internal/generational"
)

// Parse builds a configuration from its command-line spelling, the
// interface the paper describes ("Beltway configurations, selected by
// command line options"):
//
//	ss               Beltway Semi-Space (BSS)
//	appel            Appel-style generational (boundary barrier, the baseline)
//	appel3           three-generation Appel-style baseline
//	fixed:N          fixed-size nursery generational, nursery N% of usable
//	bofm:N           Beltway Older-First Mix, increments N%
//	bof:N            Beltway Older-First, window N%
//	X.X              e.g. "25.25": two-belt Beltway, increments X%
//	X.X.100          e.g. "25.25.100": complete three-belt Beltway
//	X.Y              e.g. "25.50": two-belt Beltway with distinct sizes
//	X.Y.100          three-belt with distinct lower sizes
//	X.X.mos          Mature Object Space top belt (the §5 extension)
//	immix            single mark-region belt (mark-sweep over lines + defrag)
//	cards:<spec>     any of the above with card marking instead of remsets
//	<spec>-mr        any of the above with a mark-region mature belt
//
// Numeric forms use percentages of usable memory, as in the paper.
func Parse(spec string, o Options) (core.Config, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	if rest, ok := strings.CutPrefix(s, "cards:"); ok {
		cfg, err := Parse(rest, o)
		if err != nil {
			return core.Config{}, err
		}
		return WithCardBarrier(cfg), nil
	}
	if rest, ok := strings.CutSuffix(s, "-mr"); ok {
		cfg, err := Parse(rest, o)
		if err != nil {
			return core.Config{}, err
		}
		cfg = WithMarkRegion(cfg)
		// Reject combinations the engine forbids (older-first, cards)
		// here, so callers see a parse error, not a later Validate one.
		if err := cfg.Validate(); err != nil && cfg.HeapBytes > 0 {
			return core.Config{}, fmt.Errorf("collectors: %q: %w", spec, err)
		}
		return cfg, nil
	}
	switch {
	case s == "immix":
		return Immix(o), nil
	case s == "ss" || s == "bss" || s == "semispace":
		return BSS(o), nil
	case s == "appel":
		return generational.Appel(o), nil
	case s == "appel3":
		return generational.Appel3(o), nil
	case s == "ba2":
		return BA2(o), nil
	case strings.HasPrefix(s, "fixed:"):
		n, err := pct(s[len("fixed:"):])
		if err != nil {
			return core.Config{}, fmt.Errorf("collectors: %q: %w", spec, err)
		}
		// The fixed nursery keeps a copy reserve of its own size, so a
		// 100% nursery would reserve the whole heap; found by
		// FuzzConfigParse ("fixed:100" parsed to a config with
		// ReserveFrac 1.0 that Validate then rejected).
		if n >= 100 {
			return core.Config{}, fmt.Errorf("collectors: %q: fixed nursery must be below 100%%", spec)
		}
		return generational.Fixed(n, o), nil
	case strings.HasPrefix(s, "bofm:"):
		n, err := pct(s[len("bofm:"):])
		if err != nil {
			return core.Config{}, fmt.Errorf("collectors: %q: %w", spec, err)
		}
		return BOFM(n, o), nil
	case strings.HasPrefix(s, "bof:"):
		n, err := pct(s[len("bof:"):])
		if err != nil {
			return core.Config{}, fmt.Errorf("collectors: %q: %w", spec, err)
		}
		return BOF(n, o), nil
	}

	if rest, ok := strings.CutSuffix(s, ".mos"); ok {
		n, err := pct(strings.Split(rest, ".")[0])
		if err == nil && rest == fmt.Sprintf("%d.%d", n, n) {
			return XXMOS(n, o), nil
		}
		return core.Config{}, fmt.Errorf("collectors: %q: MOS form is X.X.mos", spec)
	}

	parts := strings.Split(s, ".")
	nums := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := pct(p)
		if err != nil {
			return core.Config{}, fmt.Errorf("collectors: unrecognized configuration %q", spec)
		}
		nums = append(nums, n)
	}
	switch len(nums) {
	case 2:
		if nums[0] == nums[1] {
			return XX(nums[0], o), nil
		}
		return XY(nums[0], nums[1], o), nil
	case 3:
		if nums[2] != 100 {
			return core.Config{}, fmt.Errorf("collectors: %q: third belt must be 100", spec)
		}
		if nums[0] == nums[1] {
			return XX100(nums[0], o), nil
		}
		c := XX100(nums[0], o)
		c.Name = fmt.Sprintf("Beltway %d.%d.100", nums[0], nums[1])
		c.Belts[1].IncrementFrac = frac(nums[1])
		return c, nil
	}
	return core.Config{}, fmt.Errorf("collectors: unrecognized configuration %q", spec)
}

func pct(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if n <= 0 || n > 100 {
		return 0, fmt.Errorf("percentage %d out of range (1-100]", n)
	}
	return n, nil
}
