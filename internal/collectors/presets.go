// Package collectors provides the named Beltway configurations from the
// paper (§3.1, §3.2) plus the generational baselines, and a command-line
// parser mirroring how the paper's collectors were "selected by command
// line options".
//
// Increment sizes are conventionally expressed as percentages of usable
// memory, e.g. "25.25.100" is a three-belt collector whose two lower
// belts have increments of 25% and whose third belt has one increment
// that may grow to all usable memory.
package collectors

import (
	"fmt"

	"beltway/internal/core"
	"beltway/internal/heap"
)

// Options is the preset parameter set; it aliases core.Options so the
// generational baselines can share it without an import cycle.
type Options = core.Options

// BSS is Beltway Semi-Space (Figure 3(a)): one belt, one increment as
// large as usable memory, survivors copied to a new increment on the
// same belt.
func BSS(o Options) core.Config {
	c := core.Config{
		Name: "BSS",
		Belts: []core.BeltSpec{
			{IncrementFrac: 1.0, PromoteTo: 0},
		},
	}
	o.Apply(&c)
	return c
}

// BA2 is Beltway Appel with two generations (Figure 3(b)): two belts,
// each one unbounded increment; the nursery grows into all memory not
// consumed by the higher belt. It is "Beltway 100.100".
func BA2(o Options) core.Config {
	c := XX(100, o)
	c.Name = "Beltway 100.100"
	return c
}

// BOFM is Beltway Older-First Mix (Figure 3(c)): a single belt of
// fixed-size increments; both allocation and survivors go to the last
// increment, mixing copies with new objects.
func BOFM(incrPercent int, o Options) core.Config {
	c := core.Config{
		Name: fmt.Sprintf("BOFM %d", incrPercent),
		Belts: []core.BeltSpec{
			{IncrementFrac: frac(incrPercent), PromoteTo: 0},
		},
	}
	o.Apply(&c)
	return c
}

// BOF is Beltway Older-First (Figure 3(d)): an allocation belt A and a
// copy belt C with window-sized increments; when A empties the belts
// flip.
func BOF(windowPercent int, o Options) core.Config {
	c := core.Config{
		Name: fmt.Sprintf("BOF %d", windowPercent),
		Belts: []core.BeltSpec{
			{IncrementFrac: frac(windowPercent), PromoteTo: 1},
			{IncrementFrac: frac(windowPercent), PromoteTo: 0},
		},
		OlderFirst: true,
	}
	o.Apply(&c)
	return c
}

// XX is Beltway X.X (Figure 3(e)): two belts with increments of size X%
// of usable memory, a single bounded nursery increment (the paper's
// nursery trigger), survivors promoted upward, the top belt collected
// FIFO. Incremental but not complete for X < 100.
func XX(x int, o Options) core.Config {
	c := core.Config{
		Name: fmt.Sprintf("Beltway %d.%d", x, x),
		Belts: []core.BeltSpec{
			{IncrementFrac: frac(x), MaxIncrements: 1, PromoteTo: 1},
			{IncrementFrac: frac(x), PromoteTo: 1},
		},
		NurseryFilter: true,
	}
	o.Apply(&c)
	return c
}

// XX100 is Beltway X.X.100 (Figure 3(f)): the two X-sized belts of XX
// plus a third belt with a single increment that may grow to all usable
// memory, restoring completeness at the cost of occasional full-heap
// collections.
func XX100(x int, o Options) core.Config {
	c := core.Config{
		Name: fmt.Sprintf("Beltway %d.%d.100", x, x),
		Belts: []core.BeltSpec{
			{IncrementFrac: frac(x), MaxIncrements: 1, PromoteTo: 1},
			{IncrementFrac: frac(x), PromoteTo: 2},
			{IncrementFrac: 1.0, PromoteTo: 2},
		},
		NurseryFilter: true,
	}
	o.Apply(&c)
	return c
}

// XXMOS is Beltway X.X.MOS: the paper's §5 future-work configuration —
// the two X-sized lower belts of Beltway X.X with a Mature Object Space
// (train algorithm) belt on top in place of X.X.100's monolithic third
// belt, "so as to obtain completeness without full-heap collections".
// Cars on the MOS belt are X% of usable memory.
func XXMOS(x int, o Options) core.Config {
	c := core.Config{
		Name: fmt.Sprintf("Beltway %d.%d.MOS", x, x),
		Belts: []core.BeltSpec{
			{IncrementFrac: frac(x), MaxIncrements: 1, PromoteTo: 1},
			{IncrementFrac: frac(x), PromoteTo: 2},
			{IncrementFrac: frac(x), PromoteTo: 2},
		},
		NurseryFilter: true,
		MOS:           true,
	}
	o.Apply(&c)
	return c
}

// XY is the generalization mentioned in §3.2: two belts with distinct
// increment sizes X and Y (percent of usable memory).
func XY(x, y int, o Options) core.Config {
	c := core.Config{
		Name: fmt.Sprintf("Beltway %d.%d", x, y),
		Belts: []core.BeltSpec{
			{IncrementFrac: frac(x), MaxIncrements: 1, PromoteTo: 1},
			{IncrementFrac: frac(y), PromoteTo: 1},
		},
		NurseryFilter: true,
	}
	o.Apply(&c)
	return c
}

func frac(percent int) float64 {
	if percent <= 0 {
		panic(fmt.Sprintf("collectors: non-positive increment percentage %d", percent))
	}
	if percent >= 100 {
		return 1.0
	}
	return float64(percent) / 100.0
}

// WithCardBarrier returns a copy of cfg using card marking instead of
// remembered sets (paper §5 discusses this alternative; see
// core.CardBarrier). The name gains a "+cards" suffix.
func WithCardBarrier(cfg core.Config) core.Config {
	cfg.Barrier = core.CardBarrier
	cfg.Name += "+cards"
	return cfg
}

// WithMarkRegion returns a copy of cfg whose last (most mature) belt uses
// the Immix-style mark-region substrate (internal/markregion): survivors
// of that belt are marked in place and its dead lines swept back to
// allocatable runs, with sparse frames defragmented through the copying
// machinery (MRDefragFrac 0.25). The name gains a "-mr" suffix.
func WithMarkRegion(cfg core.Config) core.Config {
	cfg.Belts = append([]core.BeltSpec(nil), cfg.Belts...)
	cfg.Belts[len(cfg.Belts)-1].Substrate = core.MarkRegion
	cfg.MRDefragFrac = 0.25
	cfg.Name += "-mr"
	return cfg
}

// Immix is the all-mark-region limit of the design space: a single
// self-promoting belt of one unbounded increment on the mark-region
// substrate — mark-sweep over lines with opportunistic evacuation, the
// shape of Blackburn & McKinley's Immix, expressed as a Beltway
// configuration.
func Immix(o Options) core.Config {
	c := core.Config{
		Name: "Immix",
		Belts: []core.BeltSpec{
			{IncrementFrac: 1.0, PromoteTo: 0, Substrate: core.MarkRegion},
		},
		MRDefragFrac: 0.25,
	}
	o.Apply(&c)
	return c
}

// New instantiates a collector from a configuration.
func New(cfg core.Config, types *heap.Registry) (*core.Heap, error) {
	return core.New(cfg, types)
}
