package stats

import (
	"testing"
	"testing/quick"
)

func TestClockAdvanceAndPauses(t *testing.T) {
	c := NewClock(DefaultCosts())
	c.Advance(100)
	c.BeginPause()
	c.Advance(40)
	c.EndPause()
	c.Advance(60)
	c.BeginPause()
	c.Advance(10)
	c.EndPause()

	if got := c.TotalTime(); got != 210 {
		t.Errorf("TotalTime = %v", got)
	}
	if got := c.GCTime(); got != 50 {
		t.Errorf("GCTime = %v", got)
	}
	if got := c.MutatorTime(); got != 160 {
		t.Errorf("MutatorTime = %v", got)
	}
	if got := c.MaxPause(); got != 40 {
		t.Errorf("MaxPause = %v", got)
	}
	if got := c.GCFraction(); got < 0.23 || got > 0.24 {
		t.Errorf("GCFraction = %v", got)
	}
	ps := c.Pauses()
	if len(ps) != 2 || ps[0].Start != 100 || ps[0].End != 140 || ps[1].Start != 200 {
		t.Errorf("pauses wrong: %+v", ps)
	}
}

func TestClockPauseMisuse(t *testing.T) {
	c := NewClock(DefaultCosts())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EndPause without BeginPause did not panic")
			}
		}()
		c.EndPause()
	}()
	c.BeginPause()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested BeginPause did not panic")
			}
		}()
		c.BeginPause()
	}()
	if !c.InPause() {
		t.Error("InPause false during pause")
	}
}

func TestGCFractionEmptyClock(t *testing.T) {
	c := NewClock(DefaultCosts())
	if c.GCFraction() != 0 {
		t.Error("empty clock GCFraction nonzero")
	}
	if c.MaxPause() != 0 {
		t.Error("empty clock MaxPause nonzero")
	}
}

func TestPauseAccountingInvariant(t *testing.T) {
	// Property: for any interleaving of mutator and GC advances,
	// GCTime + MutatorTime == TotalTime and GCTime == sum of pauses.
	prop := func(steps []uint16) bool {
		c := NewClock(DefaultCosts())
		inPause := false
		for i, s := range steps {
			d := float64(s%1000) + 1
			if i%3 == 2 {
				if inPause {
					c.EndPause()
				} else {
					c.BeginPause()
				}
				inPause = !inPause
			}
			c.Advance(d)
		}
		if inPause {
			c.EndPause()
		}
		var sum float64
		for _, p := range c.Pauses() {
			if p.End < p.Start {
				return false
			}
			sum += p.Duration()
		}
		return sum == c.GCTime() && c.GCTime()+c.MutatorTime() == c.TotalTime()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDefaultCostsArePositive(t *testing.T) {
	c := DefaultCosts()
	for name, v := range map[string]float64{
		"AllocByte": c.AllocByte, "BarrierFast": c.BarrierFast,
		"BarrierSlow": c.BarrierSlow, "FieldAccess": c.FieldAccess,
		"MutatorOp": c.MutatorOp, "GCSetup": c.GCSetup,
		"RootSlot": c.RootSlot, "CopyByte": c.CopyByte,
		"ScanSlot": c.ScanSlot, "RemsetEntry": c.RemsetEntry,
		"BootScanByte": c.BootScanByte, "FrameOp": c.FrameOp,
		"PageByte": c.PageByte,
	} {
		if v <= 0 {
			t.Errorf("default cost %s = %v, want > 0", name, v)
		}
	}
	// The ordering the figures rely on: remembering a pointer costs
	// more than the fast-path test.
	if c.BarrierSlow <= c.BarrierFast {
		t.Error("slow barrier path not more expensive than fast path")
	}
}

func TestSummarizePauses(t *testing.T) {
	var pauses []Pause
	at := 0.0
	// Ten pauses of 1..10 units.
	for i := 1; i <= 10; i++ {
		pauses = append(pauses, Pause{Start: at, End: at + float64(i)})
		at += float64(i) + 5
	}
	s := SummarizePauses(pauses)
	if s.Count != 10 || s.Total != 55 || s.Max != 10 {
		t.Errorf("count/total/max = %d/%v/%v", s.Count, s.Total, s.Max)
	}
	if s.Mean != 5.5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Median < 5 || s.Median > 6 {
		t.Errorf("median = %v", s.Median)
	}
	if s.P90 < 9 || s.P90 > 10 {
		t.Errorf("p90 = %v", s.P90)
	}
	if z := SummarizePauses(nil); z.Count != 0 || z.Max != 0 {
		t.Error("empty distribution not zero")
	}
}
