package stats

import (
	"math"
	"sort"
)

// PauseStats summarizes a run's pause-time distribution — the simple
// responsiveness measures (§4.3 notes their limits, which is why the
// suite also computes MMU curves; both views are useful).
type PauseStats struct {
	Count  int
	Total  float64 // sum of pauses, cost units
	Mean   float64
	Median float64
	P90    float64
	P95    float64
	P99    float64
	Max    float64
}

// SummarizePauses computes the distribution of the given pauses.
func SummarizePauses(pauses []Pause) PauseStats {
	s := PauseStats{Count: len(pauses)}
	if len(pauses) == 0 {
		return s
	}
	ds := make([]float64, len(pauses))
	for i, p := range pauses {
		ds[i] = p.Duration()
		s.Total += ds[i]
	}
	sort.Float64s(ds)
	s.Mean = s.Total / float64(len(ds))
	s.Median = NearestRank(ds, 0.5)
	s.P90 = NearestRank(ds, 0.9)
	s.P95 = NearestRank(ds, 0.95)
	s.P99 = NearestRank(ds, 0.99)
	s.Max = ds[len(ds)-1]
	return s
}

// NearestRank returns the q-quantile of the ascending-sorted sample xs by
// the nearest-rank definition: the smallest element whose cumulative
// frequency is at least q, i.e. xs[ceil(q*n)-1], clamped to the sample.
// This is the one quantile definition shared by every exact quantile in
// the suite (pause summaries here, request-latency SLO verdicts in
// internal/server), so small-sample percentiles agree across tables.
func NearestRank(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
