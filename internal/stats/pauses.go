package stats

import "sort"

// PauseStats summarizes a run's pause-time distribution — the simple
// responsiveness measures (§4.3 notes their limits, which is why the
// suite also computes MMU curves; both views are useful).
type PauseStats struct {
	Count  int
	Total  float64 // sum of pauses, cost units
	Mean   float64
	Median float64
	P90    float64
	P95    float64
	P99    float64
	Max    float64
}

// SummarizePauses computes the distribution of the given pauses.
func SummarizePauses(pauses []Pause) PauseStats {
	s := PauseStats{Count: len(pauses)}
	if len(pauses) == 0 {
		return s
	}
	ds := make([]float64, len(pauses))
	for i, p := range pauses {
		ds[i] = p.Duration()
		s.Total += ds[i]
	}
	sort.Float64s(ds)
	s.Mean = s.Total / float64(len(ds))
	s.Median = quantile(ds, 0.5)
	s.P90 = quantile(ds, 0.9)
	s.P95 = quantile(ds, 0.95)
	s.P99 = quantile(ds, 0.99)
	s.Max = ds[len(ds)-1]
	return s
}

// quantile returns the q-quantile of sorted xs by nearest-rank.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
