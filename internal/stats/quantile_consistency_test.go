// Cross-package quantile consistency: the simulator has exactly one
// exact-quantile definition — stats.NearestRank — and two exact
// consumers (stats.SummarizePauses for pause tables, server.Summarize
// for SLO verdicts) plus one approximate one (telemetry's log-bucketed
// histograms, bounded to a factor of two). This test feeds all of them
// the same samples and pins the exact consumers to byte-equal answers
// and the histogram to its documented bound, so the quantile-definition
// drift fixed in this package (floor-index vs nearest-rank) cannot
// silently reappear in one consumer.
package stats_test

import (
	"sort"
	"testing"

	"beltway/internal/server"
	"beltway/internal/stats"
	"beltway/internal/telemetry"
)

// samples builds a deterministic latency/pause-shaped distribution with
// a heavy far tail, where floor-index and nearest-rank disagree.
func samples(n int) []float64 {
	out := make([]float64, 0, n)
	state := uint64(0x243F6A8885A308D3)
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11) / (1 << 53)
		switch {
		case u < 0.9:
			out = append(out, 100+u*900)
		case u < 0.99:
			out = append(out, 5000+u*20000)
		default:
			out = append(out, 1e6+u*3e6)
		}
	}
	return out
}

func TestQuantileConsistencyAcrossPackages(t *testing.T) {
	for _, n := range []int{1, 2, 9, 10, 100, 4999} {
		xs := samples(n)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)

		// server.Summarize must agree with stats.NearestRank exactly.
		d := server.Summarize(xs)
		for _, c := range []struct {
			name string
			q    float64
			got  float64
		}{
			{"p50", 0.50, d.P50},
			{"p95", 0.95, d.P95},
			{"p99", 0.99, d.P99},
			{"p999", 0.999, d.P999},
			{"max", 1, d.Max},
		} {
			if want := stats.NearestRank(sorted, c.q); c.got != want {
				t.Fatalf("n=%d server.Summarize %s = %v, want NearestRank %v", n, c.name, c.got, want)
			}
		}

		// stats.SummarizePauses must agree on the same durations.
		pauses := make([]stats.Pause, len(xs))
		for i, v := range xs {
			pauses[i] = stats.Pause{Start: 0, End: v}
		}
		ps := stats.SummarizePauses(pauses)
		for _, c := range []struct {
			name string
			q    float64
			got  float64
		}{
			{"median", 0.50, ps.Median},
			{"p90", 0.90, ps.P90},
			{"p95", 0.95, ps.P95},
			{"p99", 0.99, ps.P99},
		} {
			if want := stats.NearestRank(sorted, c.q); c.got != want {
				t.Fatalf("n=%d SummarizePauses %s = %v, want NearestRank %v", n, c.name, c.got, want)
			}
		}
		if ps.Max != sorted[len(sorted)-1] {
			t.Fatalf("n=%d SummarizePauses max = %v, want %v", n, ps.Max, sorted[len(sorted)-1])
		}

		// The telemetry histogram is approximate by design: within a
		// factor of two of the exact answer (log-2 buckets), exact at q=1.
		h := &telemetry.Histogram{}
		for _, v := range xs {
			h.Observe(v)
		}
		for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
			exact := stats.NearestRank(sorted, q)
			if est := h.Quantile(q); est < exact/2 || est > exact*2 {
				t.Fatalf("n=%d histogram q=%v estimate %v outside factor-2 of exact %v", n, q, est, exact)
			}
		}
		if got := h.Quantile(1); got != sorted[len(sorted)-1] {
			t.Fatalf("n=%d histogram q=1 = %v, want exact max %v", n, got, sorted[len(sorted)-1])
		}
	}
}

// TestNearestRankSmallSamples pins the definition on the sample sizes
// where the old floor-index bug bit: p99 of 10 samples is the 10th
// order statistic (ceil(0.99*10) = 10), not the 9th.
func TestNearestRankSmallSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 5}, {0.9, 9}, {0.95, 10}, {0.99, 10}, {1, 10}, {0, 1},
	}
	for _, c := range cases {
		if got := stats.NearestRank(xs, c.q); got != c.want {
			t.Fatalf("NearestRank(1..10, %v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := stats.NearestRank([]float64{42}, 0.99); got != 42 {
		t.Fatalf("single sample: %v, want 42", got)
	}
	if got := stats.NearestRank(nil, 0.5); got != 0 {
		t.Fatalf("empty sample: %v, want 0", got)
	}
}
