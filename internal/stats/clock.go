package stats

import (
	"fmt"
	"reflect"
)

// Clock is the deterministic timeline of a single run. All mutator and
// collector work is charged to the clock in cost units; pauses (intervals
// during which the collector, not the mutator, is running) are recorded so
// that GC time, mutator time and MMU curves can be derived afterwards.
//
// Clock is not safe for concurrent use; the simulated mutator is single
// threaded, as were the paper's benchmarks.
type Clock struct {
	Costs CostModel

	// Budget, when positive, is the maximum total cost the timeline may
	// accumulate. Advance panics with BudgetExceeded once the clock
	// passes it, giving runaway configurations a deterministic stopping
	// point; harness.RunOne converts the panic into an aborted Result.
	Budget float64

	now       float64
	inPause   bool
	pauseFrom float64
	pauses    []Pause

	Counters Counters
}

// BudgetExceeded is the panic value raised by Advance when the clock
// passes its cost budget.
type BudgetExceeded struct {
	Budget, Now float64
}

func (e BudgetExceeded) Error() string {
	return fmt.Sprintf("stats: cost budget exceeded (%.0f > %.0f cost units)", e.Now, e.Budget)
}

// Pause is one stop-the-world collection interval on the cost timeline.
type Pause struct {
	Start, End float64
}

// Duration returns the pause length in cost units.
func (p Pause) Duration() float64 { return p.End - p.Start }

// Counters aggregates raw event counts for a run. They are exact work
// counts, independent of the cost model, and are what the tests assert on.
type Counters struct {
	BytesAllocated    uint64
	ObjectsAllocated  uint64
	PointerStores     uint64
	BarrierSlowPaths  uint64
	RemsetInserts     uint64
	RemsetEntriesGC   uint64 // remset entries examined during collections
	BytesCopied       uint64
	ObjectsCopied     uint64
	SlotsScanned      uint64
	RootsScanned      uint64
	Collections       uint64
	FullCollections   uint64 // collections whose condemned set spanned >= the whole usable heap
	FramesMapped      uint64
	FramesUnmapped    uint64
	BootBytesScanned  uint64
	PageFaultBytes    uint64
	CardsScanned      uint64 // dirty cards processed at collections (card barrier)
	PretenuredBytes   uint64 // bytes allocated directly on older belts
	LOSBytesAllocated uint64 // bytes allocated in the large object space
	LOSBytesSwept     uint64 // large-object bytes reclaimed by sweeps

	// Mark-region substrate counters.
	MRObjectsMarked   uint64 // objects marked in place (not copied)
	MRBytesMarked     uint64 // bytes of in-place survivors
	MRLinesReclaimed  uint64 // lines returned to free runs by sweeps and unmaps
	MRFramesSwept     uint64 // frames swept in place and kept
	MRFramesEvacuated uint64 // sparse frames emptied through the copy path
}

// Add accumulates o into c field-wise. Aggregation across the mutator
// shards of a multi-mutator run; every field is a uint64 work count, so
// the reflection loop stays correct as counters are added.
func (c *Counters) Add(o Counters) {
	cv := reflect.ValueOf(c).Elem()
	ov := reflect.ValueOf(o)
	for i := 0; i < cv.NumField(); i++ {
		cv.Field(i).SetUint(cv.Field(i).Uint() + ov.Field(i).Uint())
	}
}

// NewClock returns a clock using the given cost model.
func NewClock(c CostModel) *Clock {
	return &Clock{Costs: c}
}

// Now returns the current time in cost units.
func (c *Clock) Now() float64 { return c.now }

// Advance charges n cost units to the timeline. If a Budget is set and
// the timeline passes it, Advance panics with BudgetExceeded.
func (c *Clock) Advance(n float64) {
	c.now += n
	if c.Budget > 0 && c.now > c.Budget {
		panic(BudgetExceeded{Budget: c.Budget, Now: c.now})
	}
}

// BeginPause marks the start of a stop-the-world collection.
// Nested pauses are not allowed.
func (c *Clock) BeginPause() {
	if c.inPause {
		panic("stats: nested BeginPause")
	}
	c.inPause = true
	c.pauseFrom = c.now
}

// EndPause marks the end of the current collection and records the pause.
func (c *Clock) EndPause() {
	if !c.inPause {
		panic("stats: EndPause without BeginPause")
	}
	c.inPause = false
	c.pauses = append(c.pauses, Pause{Start: c.pauseFrom, End: c.now})
}

// InPause reports whether a collection is currently charged to the clock.
func (c *Clock) InPause() bool { return c.inPause }

// Pauses returns the recorded pause intervals in timeline order.
func (c *Clock) Pauses() []Pause { return c.pauses }

// GCTime returns total time spent in collections, in cost units.
func (c *Clock) GCTime() float64 {
	var t float64
	for _, p := range c.pauses {
		t += p.Duration()
	}
	return t
}

// TotalTime returns the full elapsed timeline, in cost units.
func (c *Clock) TotalTime() float64 { return c.now }

// MutatorTime returns TotalTime minus GCTime.
func (c *Clock) MutatorTime() float64 { return c.TotalTime() - c.GCTime() }

// GCFraction returns the fraction of the timeline spent in GC, in [0,1].
func (c *Clock) GCFraction() float64 {
	if c.now == 0 {
		return 0
	}
	return c.GCTime() / c.now
}

// MaxPause returns the longest single pause, in cost units.
func (c *Clock) MaxPause() float64 {
	var m float64
	for _, p := range c.pauses {
		if d := p.Duration(); d > m {
			m = d
		}
	}
	return m
}

// Seconds converts cost units to nominal seconds for display (see
// CyclesPerSecond). Use only for axis labels, never for comparison with
// the paper's absolute numbers.
func Seconds(costUnits float64) float64 { return costUnits / CyclesPerSecond }
