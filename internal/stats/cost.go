// Package stats provides the deterministic cost model that stands in for
// wall-clock time in this reproduction, together with event counters and
// the pause log from which GC time, total time and MMU curves are derived.
//
// The paper measured seconds on a 733MHz PowerMac G4 running Jikes RVM.
// That testbed is not available, and more importantly the paper's results
// are presented *relative to the best configuration*, so what matters is
// the relative amount of work each collector performs. The cost model
// charges a fixed number of abstract cost units for each unit of work the
// mutator and collector perform; a Clock accumulates these charges on a
// single deterministic timeline. One cost unit is nominally one
// "machine cycle" of the paper's 733MHz machine, so Seconds() divides by
// 733e6 — but absolute values should never be compared with the paper,
// only shapes.
package stats

// CostModel assigns abstract cost units to each unit of mutator and
// collector work. All fields are costs in abstract units; see the package
// comment for how units relate to reported "seconds".
type CostModel struct {
	// Mutator costs.
	AllocByte   float64 // per byte allocated (zeroing + bump + header init)
	BarrierFast float64 // per pointer store taking only the fast path
	BarrierSlow float64 // per pointer store that inserts a remset entry
	FieldAccess float64 // per non-pointer field read/write
	MutatorOp   float64 // per abstract unit of application work (traversal step etc.)
	PageByte    float64 // per byte of footprint beyond physical memory, charged per MB allocated (paging model)

	// Collector costs.
	GCSetup      float64 // fixed cost per collection (stop, pin roots, flip bookkeeping)
	RootSlot     float64 // per root-table slot scanned
	CopyByte     float64 // per byte copied to to-space
	ScanSlot     float64 // per reference slot scanned in to-space
	RemsetEntry  float64 // per remembered-set entry processed at GC
	BootScanByte float64 // per immortal/boot-image byte scanned (boundary-barrier collectors only)
	FrameOp      float64 // per frame mapped/unmapped/retargeted during GC
	CardMark     float64 // per store under the card barrier (2-3 instructions)
	CardScanByte float64 // per byte of dirty card scanned at collections

	// Mark-region substrate costs.
	MarkObject    float64 // per object marked in place (test-and-set + queue push)
	LineSweepByte float64 // per frame byte examined by a line sweep
}

// DefaultCosts is calibrated so that, on the bundled workloads, the Appel
// baseline spends roughly 5-35% of total time in GC across the 1x-3x heap
// sweep, matching the envelope of paper Figure 1(a). The precise values
// are unimportant; ratios between fields are what shape the curves.
func DefaultCosts() CostModel {
	return CostModel{
		AllocByte:    2.0,
		BarrierFast:  3.0,
		BarrierSlow:  15.0,
		FieldAccess:  3.0,
		MutatorOp:    20.0,
		PageByte:     2.0,
		GCSetup:      5000,
		RootSlot:     4.0,
		CopyByte:     1.5,
		ScanSlot:     2.0,
		RemsetEntry:  10.0,
		BootScanByte: 0.5,
		FrameOp:      500,
		CardMark:     1.5,
		CardScanByte: 0.4,

		MarkObject:    8.0,
		LineSweepByte: 0.2,
	}
}

// CyclesPerSecond converts cost units to nominal seconds for display.
// 733e6 matches the paper's 733MHz PowerMac G4.
const CyclesPerSecond = 733e6
