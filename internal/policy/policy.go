// Package policy is the online adaptive policy controller: a
// deterministic feedback loop that runs at collection boundaries (and,
// for server workloads, observes phase boundaries) and retunes the
// scheduling knobs the paper fixes for the life of a run — belt and
// increment sizing, promotion targets, and the nursery/remset/
// time-to-die triggers — toward a declared objective.
//
// The paper's policies are static: "the user" picks X.X at the command
// line and lives with it. This package is the ROADMAP's static→dynamic
// extension of those triggers, with LXR's pause-driven scheduling as the
// modern reference point. Everything is stamped on the cost-unit clock:
// the controller consumes only core.TuneInput (and request observations
// already on that clock), uses no wall-clock time and no randomness, so
// an adaptive run replays bit-identically from its seed, and a run with
// the controller off is bit-identical to a build without it.
package policy

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"beltway/internal/server"
	"beltway/internal/stats"
)

// Objective names what the controller optimizes for.
type Objective uint8

const (
	ObjNone Objective = iota
	// ObjSLO bounds pause magnitude so a server.SLO's tail-latency
	// targets hold: when a collection's pause (observed, or predicted
	// from occupancy and the cost model) exceeds the pause budget implied
	// by the SLO's max/p999 bounds, the controller grows the nursery
	// toward an Appel-style all-of-usable-memory nursery — trading minor
	// collection frequency against the premature promotion that inflates
	// full-collection pauses. An occupancy guard reverts the growth (once,
	// permanently) if it starts to squeeze usable memory.
	ObjSLO
	// ObjMMU keeps the worst-window minimum mutator utilization above a
	// floor by shrinking the largest increments (smaller condemned sets,
	// shorter pauses), multiplicative-decrease with a cooldown.
	ObjMMU
	// ObjFootprint keeps the mapped footprint under a cap by shrinking
	// increment sizes (collect sooner, map less), and relaxes back toward
	// the configured sizes when comfortably under it (AIMD-style).
	ObjFootprint
	// ObjThroughput keeps the GC share of total time under a target by
	// growing bounded increments (fewer, larger collections amortize
	// per-collection setup), with the same occupancy guard and revert as
	// ObjSLO.
	ObjThroughput
)

func (o Objective) String() string {
	switch o {
	case ObjSLO:
		return "slo"
	case ObjMMU:
		return "mmu"
	case ObjFootprint:
		return "footprint"
	case ObjThroughput:
		return "throughput"
	}
	return "none"
}

// DefaultSLO is the SLO assumed by "slo" with no explicit spec — the
// server experiment family's default (cost units; see
// internal/experiments).
const DefaultSLO = "p99=10000,p999=1000000,max=5000000"

// Config declares the controller's objective and its parameters.
type Config struct {
	Objective Objective

	// SLO is the objective of ObjSLO.
	SLO server.SLO

	// MMUFloor and MMUWindow parameterize ObjMMU: utilization over every
	// window of MMUWindow cost units must stay above MMUFloor.
	MMUFloor  float64
	MMUWindow float64

	// FootprintCap is ObjFootprint's bound as a fraction of HeapBytes.
	FootprintCap float64

	// GCTarget is ObjThroughput's tolerated GC fraction of total time.
	GCTarget float64
}

// Parse parses an -adapt objective spec: an objective name optionally
// followed by ':' and comma-separated parameters.
//
//	slo                    adapt to the default server SLO
//	slo:p99=1e4,max=5e6    adapt to an explicit SLO (server.ParseSLO syntax)
//	mmu                    floor=0.5, window=10ms of cost-unit time
//	mmu:floor=0.7,window=2e7
//	footprint              cap=0.9
//	footprint:cap=0.75
//	throughput             target=0.15
//	throughput:target=0.1
func Parse(spec string) (Config, error) {
	name, params, _ := strings.Cut(strings.TrimSpace(spec), ":")
	c := Config{}
	switch name {
	case "slo":
		c.Objective = ObjSLO
		if params == "" {
			params = DefaultSLO
		}
		slo, err := server.ParseSLO(params)
		if err != nil {
			return Config{}, fmt.Errorf("policy: %w", err)
		}
		c.SLO = slo
		return c, nil
	case "mmu":
		c.Objective = ObjMMU
		c.MMUFloor = 0.5
		c.MMUWindow = 0.01 * stats.CyclesPerSecond
		return c, parseParams(params, map[string]*float64{
			"floor": &c.MMUFloor, "window": &c.MMUWindow,
		})
	case "footprint":
		c.Objective = ObjFootprint
		c.FootprintCap = 0.9
		return c, parseParams(params, map[string]*float64{"cap": &c.FootprintCap})
	case "throughput":
		c.Objective = ObjThroughput
		c.GCTarget = 0.15
		return c, parseParams(params, map[string]*float64{"target": &c.GCTarget})
	}
	return Config{}, fmt.Errorf("policy: unknown objective %q (want slo, mmu, footprint or throughput)", name)
}

// parseParams fills key=value parameters into the given destinations,
// rejecting unknown keys and non-finite or non-positive values.
func parseParams(params string, dst map[string]*float64) error {
	if strings.TrimSpace(params) == "" {
		return nil
	}
	for _, part := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("policy: bad parameter %q (want key=value)", part)
		}
		p, exists := dst[strings.TrimSpace(k)]
		if !exists {
			return fmt.Errorf("policy: unknown parameter %q", k)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("policy: bad value %q for %q (want a finite positive number)", v, k)
		}
		*p = f
	}
	return nil
}

// Reason says why the controller made a decision.
type Reason uint8

const (
	ReasonNone Reason = iota
	// ReasonPauseOverBudget: a pause exceeded (or occupancy predicts the
	// next full collection will exceed) the SLO-implied pause budget.
	ReasonPauseOverBudget
	// ReasonOccupancyRevert: live data is squeezing usable memory; undo
	// earlier growth before it turns into an OOM the static config would
	// not have had.
	ReasonOccupancyRevert
	// ReasonPhaseShift marks a server workload phase boundary (no knob).
	ReasonPhaseShift
	// ReasonMMUBelowFloor: worst-window MMU fell below the floor.
	ReasonMMUBelowFloor
	// ReasonFootprintOverCap: mapped footprint exceeded the cap.
	ReasonFootprintOverCap
	// ReasonFootprintRelax: comfortably under the cap; relax back toward
	// the configured increment sizes.
	ReasonFootprintRelax
	// ReasonGCOverheadHigh: GC share of total time exceeded the target.
	ReasonGCOverheadHigh
)

func (r Reason) String() string {
	switch r {
	case ReasonPauseOverBudget:
		return "pause-over-budget"
	case ReasonOccupancyRevert:
		return "occupancy-revert"
	case ReasonPhaseShift:
		return "phase-shift"
	case ReasonMMUBelowFloor:
		return "mmu-below-floor"
	case ReasonFootprintOverCap:
		return "footprint-over-cap"
	case ReasonFootprintRelax:
		return "footprint-relax"
	case ReasonGCOverheadHigh:
		return "gc-overhead-high"
	}
	return "none"
}
