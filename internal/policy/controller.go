package policy

import (
	"fmt"
	"math"
	"strings"

	"beltway/internal/core"
	"beltway/internal/mmu"
	"beltway/internal/stats"
)

// Decision is one controller action: at collection GC (cost-unit time
// Time), for Reason, knob Knob of belt Belt was set to Value. Marker
// decisions (e.g. phase boundaries) carry KnobNone and change nothing.
type Decision struct {
	GC     uint64    `json:"gc"`
	Time   float64   `json:"t"`
	Reason Reason    `json:"reason"`
	Knob   core.Knob `json:"knob"`
	Belt   int       `json:"belt"`
	Value  float64   `json:"value"`
}

// Emitter receives every controller decision as it is made (telemetry
// wiring; see telemetry.PolicyObserver, which implements this
// structurally so neither package imports the other). Implementations
// must not advance the clock.
type Emitter interface {
	Decision(gcOrdinal uint64, now float64, reason, knob, belt int, value float64)
}

// Controller is the objective-driven core.Tuner (and, for server runs,
// server.Observer). One Controller drives one run: it is stateful and
// must not be shared or reused across heaps.
type Controller struct {
	cfg  Config
	emit Emitter

	// pauseBudget is the SLO-implied bound on a single pause: half the
	// tightest of the SLO's max/p999 bounds (those bound pause magnitude;
	// p50/p95/p99 bound pause frequency, which growing the nursery does
	// not help). +Inf when the SLO has no magnitude bound.
	pauseBudget float64

	initial []core.BeltSpec // knob values at the first collection
	cur     []core.BeltSpec // knob values after the latest decisions

	grown         bool   // a grow-type decision is in effect
	burned        bool   // growth was reverted; never grow again this run
	cooldownUntil uint64 // no repeated tuning before this collection ordinal

	phase      int  // last observed server phase (-1 before any request)
	phaseShift bool // a phase boundary occurred since the last Tune
	requests   uint64

	pauses []stats.Pause // pause history for MMU windows
	gcTime float64       // cumulative pause time

	decisions []Decision
}

// New builds a controller for one run.
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg, pauseBudget: math.Inf(1), phase: -1}
	for _, t := range cfg.SLO.Targets {
		if t.Quantile == "max" || t.Quantile == "p999" {
			if b := 0.5 * t.Cost; b < c.pauseBudget {
				c.pauseBudget = b
			}
		}
	}
	return c
}

// Objective returns the controller's declared objective.
func (c *Controller) Objective() Objective { return c.cfg.Objective }

// SetEmitter wires decision telemetry; nil disables it.
func (c *Controller) SetEmitter(e Emitter) { c.emit = e }

// Request implements server.Observer: the controller watches the request
// stream only for phase boundaries (a phase change lifts the tuning
// cooldown, since the workload it tuned against is gone). It never
// advances the clock.
func (c *Controller) Request(kind, phase, key int, start, latency, pauseCost float64) {
	c.requests++
	if phase != c.phase {
		if c.phase >= 0 {
			c.phaseShift = true
		}
		c.phase = phase
	}
}

// Tune implements core.Tuner.
func (c *Controller) Tune(in core.TuneInput) []core.KnobUpdate {
	if c.initial == nil {
		c.initial = append([]core.BeltSpec(nil), in.Belts...)
	}
	c.cur = in.Belts
	c.pauses = append(c.pauses, stats.Pause{Start: in.Now - in.End.Duration, End: in.Now})
	c.gcTime += in.End.Duration

	if c.phaseShift {
		c.phaseShift = false
		c.note(in, ReasonPhaseShift, core.KnobNone, -1, float64(c.phase))
		c.cooldownUntil = 0
	}

	var ups []core.KnobUpdate
	switch c.cfg.Objective {
	case ObjSLO:
		ups = c.tuneSLO(in)
	case ObjMMU:
		ups = c.tuneMMU(in)
	case ObjFootprint:
		ups = c.tuneFootprint(in)
	case ObjThroughput:
		ups = c.tuneThroughput(in)
	}
	// Mirror the updates into the tracked knob state so Drift reflects
	// decisions made this very collection.
	for _, u := range ups {
		if u.Belt < 0 || u.Belt >= len(c.cur) {
			continue
		}
		switch u.Knob {
		case core.KnobIncrementFrac:
			c.cur[u.Belt].IncrementFrac = u.Value
		case core.KnobReserveFrac:
			c.cur[u.Belt].ReserveFrac = u.Value
		case core.KnobMaxIncrements:
			c.cur[u.Belt].MaxIncrements = int(u.Value)
		case core.KnobPromoteTo:
			c.cur[u.Belt].PromoteTo = int(u.Value)
		}
	}
	return ups
}

// tuneSLO bounds pause magnitude under the SLO's max/p999 bounds. The
// lever is the one the paper's own data motivates: Figure 6 shows fixed
// small nurseries promote prematurely, inflating the copy volume — and
// hence the pause — of the eventual full collection; Appel's
// all-of-usable-memory nursery avoids it. When a pause exceeds the
// budget (or the cost model predicts the next full collection will:
// live*CopyByte + GCSetup), the controller reshapes the nursery belt to
// Appel's — IncrementFrac 1, no permanent reservation — provided there
// is headroom. If live data later squeezes usable memory, the growth is
// reverted once and for all: a controller must never turn a
// statically-surviving run into an OOM.
func (c *Controller) tuneSLO(in core.TuneInput) []core.KnobUpdate {
	if c.grown && !c.burned {
		if occupancySqueezed(in) {
			return c.revert(in)
		}
		return nil
	}
	if c.grown || c.burned || math.IsInf(c.pauseBudget, 1) {
		return nil
	}
	predicted := in.Costs.GCSetup + float64(in.LiveBytes)*in.Costs.CopyByte
	if in.End.Duration <= c.pauseBudget && predicted <= c.pauseBudget {
		return nil
	}
	if !growable(in) || float64(in.LiveBytes) > 0.6*float64(in.HeapBytes/2) {
		return nil
	}
	var ups []core.KnobUpdate
	if in.Belts[0].IncrementFrac < 1.0 {
		ups = append(ups, c.decide(in, ReasonPauseOverBudget, core.KnobIncrementFrac, 0, 1.0))
	}
	if in.Belts[0].ReserveFrac > 0 {
		ups = append(ups, c.decide(in, ReasonPauseOverBudget, core.KnobReserveFrac, 0, 0))
	}
	if len(ups) > 0 {
		c.grown = true
	}
	return ups
}

// growable reports whether the nursery-growth lever exists for this
// configuration: a copying belt 0 below Appel shape, with an older belt
// to promote into, outside older-first/MOS (whose belt roles are
// load-bearing). Mark-region belts have no lever here — a renewed
// increment keeps its frames, so growth would not change the condemned
// set shape.
func growable(in core.TuneInput) bool {
	if in.OlderFirst || in.MOS || len(in.Belts) < 2 {
		return false
	}
	b0 := in.Belts[0]
	if b0.Substrate != core.Copying {
		return false
	}
	return b0.IncrementFrac < 1.0 || b0.ReserveFrac > 0
}

// occupancySqueezed reports whether live data is crowding usable memory
// badly enough that a grow-type decision must be undone. LiveBytes is
// post-collection occupancy, which between full collections includes the
// floating garbage of uncollected belts — an overestimate that would
// trip the guard spuriously — so the check only counts right after a
// full collection, when occupancy approximates true live data.
func occupancySqueezed(in core.TuneInput) bool {
	return in.Full && float64(in.LiveBytes) > 0.75*float64(in.HeapBytes-in.ReserveBytes)
}

// revert restores every knob to its initial value and retires the
// controller's grow lever for the rest of the run.
func (c *Controller) revert(in core.TuneInput) []core.KnobUpdate {
	var ups []core.KnobUpdate
	for i := range c.initial {
		if i >= len(in.Belts) {
			break
		}
		if in.Belts[i].IncrementFrac != c.initial[i].IncrementFrac {
			ups = append(ups, c.decide(in, ReasonOccupancyRevert, core.KnobIncrementFrac, i, c.initial[i].IncrementFrac))
		}
		if in.Belts[i].ReserveFrac != c.initial[i].ReserveFrac {
			ups = append(ups, c.decide(in, ReasonOccupancyRevert, core.KnobReserveFrac, i, c.initial[i].ReserveFrac))
		}
	}
	c.grown, c.burned = false, true
	return ups
}

// tuneMMU shrinks the widest increments when worst-window utilization
// falls below the floor: smaller condemned sets bound single-pause
// length, the x-intercept of the MMU curve. Multiplicative decrease with
// a cooldown, and never in a tight heap (shrinking the nursery promotes
// prematurely, which costs memory).
func (c *Controller) tuneMMU(in core.TuneInput) []core.KnobUpdate {
	if in.GC < c.cooldownUntil {
		return nil
	}
	if mmu.MMU(c.pauses, in.Now, c.cfg.MMUWindow) >= c.cfg.MMUFloor {
		return nil
	}
	return c.shrinkWidest(in, ReasonMMUBelowFloor)
}

// tuneFootprint is two-sided: over the cap it shrinks increments
// (collect sooner, map fewer frames); comfortably under it (< 80% of
// the cap) it relaxes shrunk belts back toward their configured sizes,
// one multiplicative step at a time.
func (c *Controller) tuneFootprint(in core.TuneInput) []core.KnobUpdate {
	if in.GC < c.cooldownUntil {
		return nil
	}
	capBytes := c.cfg.FootprintCap * float64(in.HeapBytes)
	fp := float64(in.FootprintBytes)
	if fp > capBytes {
		return c.shrinkWidest(in, ReasonFootprintOverCap)
	}
	if fp < 0.8*capBytes {
		for i := range in.Belts {
			if i >= len(c.initial) {
				break
			}
			cfgd, cur := c.initial[i].IncrementFrac, in.Belts[i].IncrementFrac
			if cur < cfgd {
				nf := cur * 1.5
				if nf > cfgd {
					nf = cfgd
				}
				c.cooldownUntil = in.GC + 4
				return []core.KnobUpdate{c.decide(in, ReasonFootprintRelax, core.KnobIncrementFrac, i, nf)}
			}
		}
	}
	return nil
}

// shrinkWidest halves the IncrementFrac of the widest copying belt,
// floored at two frames' worth, guarded against tight heaps.
func (c *Controller) shrinkWidest(in core.TuneInput, why Reason) []core.KnobUpdate {
	usable := float64(in.HeapBytes - in.ReserveBytes)
	if usable <= 0 || float64(in.LiveBytes) > 0.6*usable {
		return nil
	}
	belt, frac := widestCopyingBelt(in)
	if belt < 0 {
		return nil
	}
	nf := frac / 2
	if minFrac := 2 * float64(in.FrameBytes) / usable; nf < minFrac {
		nf = minFrac
	}
	if nf >= frac {
		return nil
	}
	c.cooldownUntil = in.GC + 4
	return []core.KnobUpdate{c.decide(in, why, core.KnobIncrementFrac, belt, nf)}
}

// widestCopyingBelt finds the tunable belt with the largest effective
// increment fraction (unbounded counts as 1).
func widestCopyingBelt(in core.TuneInput) (int, float64) {
	if in.OlderFirst {
		return -1, 0
	}
	best, bf := -1, 0.0
	for i, s := range in.Belts {
		if s.Substrate != core.Copying {
			continue
		}
		if in.MOS && i == len(in.Belts)-1 {
			continue
		}
		f := s.IncrementFrac
		if f > 1 {
			f = 1
		}
		if f > bf {
			best, bf = i, f
		}
	}
	return best, bf
}

// tuneThroughput grows the narrowest bounded copying belt when the GC
// share of total time exceeds the target: fewer, larger collections
// amortize per-collection setup and re-tracing. Same occupancy guard and
// one-shot revert as the SLO objective.
func (c *Controller) tuneThroughput(in core.TuneInput) []core.KnobUpdate {
	if c.grown && !c.burned {
		if occupancySqueezed(in) {
			return c.revert(in)
		}
	}
	if c.burned || in.GC < c.cooldownUntil || in.Now <= 0 {
		return nil
	}
	if c.gcTime/in.Now <= c.cfg.GCTarget {
		return nil
	}
	if in.OlderFirst || in.MOS {
		return nil
	}
	if float64(in.LiveBytes) > 0.5*float64(in.HeapBytes/2) {
		return nil
	}
	best, bf := -1, math.MaxFloat64
	for i, s := range in.Belts {
		if s.Substrate != core.Copying || s.IncrementFrac >= 1.0 {
			continue
		}
		if s.IncrementFrac < bf {
			best, bf = i, s.IncrementFrac
		}
	}
	if best < 0 {
		return nil
	}
	nf := bf * 1.5
	if nf > 1.0 {
		nf = 1.0
	}
	c.cooldownUntil = in.GC + 4
	c.grown = true
	return []core.KnobUpdate{c.decide(in, ReasonGCOverheadHigh, core.KnobIncrementFrac, best, nf)}
}

// decide records a decision and returns its knob update.
func (c *Controller) decide(in core.TuneInput, why Reason, k core.Knob, belt int, v float64) core.KnobUpdate {
	c.note(in, why, k, belt, v)
	return core.KnobUpdate{Knob: k, Belt: belt, Value: v}
}

// note records a (possibly marker) decision and emits it to telemetry.
func (c *Controller) note(in core.TuneInput, why Reason, k core.Knob, belt int, v float64) {
	c.decisions = append(c.decisions, Decision{
		GC: in.GC, Time: in.Now, Reason: why, Knob: k, Belt: belt, Value: v,
	})
	if c.emit != nil {
		c.emit.Decision(in.GC, in.Now, int(why), int(k), belt, v)
	}
}

// Decisions returns a copy of the decision log.
func (c *Controller) Decisions() []Decision {
	return append([]Decision(nil), c.decisions...)
}

// DecisionLog renders the decision log one line per decision — the
// determinism tests compare these byte-for-byte across replays.
func (c *Controller) DecisionLog() string {
	var b strings.Builder
	for _, d := range c.decisions {
		fmt.Fprintf(&b, "gc=%d t=%.0f reason=%s knob=%s belt=%d value=%g\n",
			d.GC, d.Time, d.Reason, d.Knob, d.Belt, d.Value)
	}
	return b.String()
}

// Drift summarizes the net knob movement ("b0.frac 0.25->1"), empty when
// nothing moved.
func (c *Controller) Drift() string {
	if c.initial == nil || c.cur == nil {
		return ""
	}
	var parts []string
	for i := range c.initial {
		if i >= len(c.cur) {
			break
		}
		if c.cur[i].IncrementFrac != c.initial[i].IncrementFrac {
			parts = append(parts, fmt.Sprintf("b%d.frac %g->%g", i, c.initial[i].IncrementFrac, c.cur[i].IncrementFrac))
		}
		if c.cur[i].ReserveFrac != c.initial[i].ReserveFrac {
			parts = append(parts, fmt.Sprintf("b%d.reserve %g->%g", i, c.initial[i].ReserveFrac, c.cur[i].ReserveFrac))
		}
		if c.cur[i].MaxIncrements != c.initial[i].MaxIncrements {
			parts = append(parts, fmt.Sprintf("b%d.max %d->%d", i, c.initial[i].MaxIncrements, c.cur[i].MaxIncrements))
		}
		if c.cur[i].PromoteTo != c.initial[i].PromoteTo {
			parts = append(parts, fmt.Sprintf("b%d.promote %d->%d", i, c.initial[i].PromoteTo, c.cur[i].PromoteTo))
		}
	}
	return strings.Join(parts, " ")
}

// Summary is the JSON-able digest attached to harness results.
type Summary struct {
	Objective string `json:"objective"`
	Decisions int    `json:"decisions"`
	Drift     string `json:"drift,omitempty"`
}

// Summary digests the controller's run for results tables and JSON.
func (c *Controller) Summary() *Summary {
	return &Summary{
		Objective: c.cfg.Objective.String(),
		Decisions: len(c.decisions),
		Drift:     c.Drift(),
	}
}
