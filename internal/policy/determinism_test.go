package policy_test

import (
	"reflect"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/harness"
	"beltway/internal/heap"
	"beltway/internal/policy"
	"beltway/internal/server"
	"beltway/internal/vm"
	"beltway/internal/workload"
)

// runAdaptiveServer runs the server workload once with a fresh
// controller on the given objective and returns the controller (for its
// decision log) and the run's report.
func runAdaptiveServer(t *testing.T, objective string, seed int64) (*policy.Controller, *server.Report) {
	t.Helper()
	sc := server.Scaled(0.25)
	sc.Seed = seed
	env := harness.EnvForScale(0.25)
	hb := int(float64(sc.EstLiveBytes()) * 3)
	hb = (hb/env.FrameBytes + 1) * env.FrameBytes
	cfg, err := collectors.Parse("fixed:25", collectors.Options{
		HeapBytes: hb, FrameBytes: env.FrameBytes})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := policy.Parse(objective)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := policy.New(pc)
	cfg.Policy = ctrl
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	loop, err := server.NewLoop(sc, server.LoopOpts{Observer: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(func() {
		loop.Start(m, types)
		for !loop.Done() {
			loop.RunBatch()
		}
	}); err != nil {
		t.Fatal(err)
	}
	return ctrl, loop.Report(server.SLO{})
}

// TestDecisionStreamDeterministic: the controller is a deterministic
// function of the (seeded) run, so two identical runs produce
// byte-identical decision logs — the property the CI adapt-smoke job
// checks end to end.
func TestDecisionStreamDeterministic(t *testing.T) {
	c1, r1 := runAdaptiveServer(t, "slo", 42)
	c2, r2 := runAdaptiveServer(t, "slo", 42)
	log1, log2 := c1.DecisionLog(), c2.DecisionLog()
	if log1 == "" {
		t.Fatal("controller made no decisions; the scenario no longer exercises adaptation")
	}
	if log1 != log2 {
		t.Fatalf("decision logs diverge across identical runs:\n--- run 1\n%s--- run 2\n%s", log1, log2)
	}
	if r1.StoreChecksum != r2.StoreChecksum {
		t.Fatalf("store fingerprints diverge: %016x vs %016x", r1.StoreChecksum, r2.StoreChecksum)
	}
}

// TestDifferentSeedsDifferentButValid: a different seed may produce a
// different decision stream, but each run must still be self-consistent
// (summary counts match the log).
func TestSummaryMatchesDecisions(t *testing.T) {
	c, _ := runAdaptiveServer(t, "slo", 7)
	sum := c.Summary()
	if sum.Decisions != len(c.Decisions()) {
		t.Fatalf("summary says %d decisions, log has %d", sum.Decisions, len(c.Decisions()))
	}
	if sum.Objective != "slo" {
		t.Fatalf("summary objective %q, want slo", sum.Objective)
	}
}

// noopTuner returns no updates from every consultation.
type noopTuner struct{}

func (noopTuner) Tune(core.TuneInput) []core.KnobUpdate { return nil }

// TestNoopTunerBitIdentical: consulting a tuner that never issues
// updates must leave the measurement bit-identical to a run with no
// tuner at all — the hook observes the clock without advancing it, so
// controller-off runs (and controller-on runs before any decision)
// follow the static cost timeline exactly.
func TestNoopTunerBitIdentical(t *testing.T) {
	bench := workload.Get("jess")
	if bench == nil {
		t.Fatal("jess benchmark missing")
	}
	env := harness.EnvForScale(0.25)
	run := func(tuner core.Tuner) *harness.Result {
		cfg, err := collectors.Parse("25.25", collectors.Options{
			HeapBytes: 2 << 20, FrameBytes: env.FrameBytes})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Policy = tuner
		res, err := harness.RunOne(cfg, bench, env)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(nil)
	noop := run(noopTuner{})
	if !reflect.DeepEqual(static, noop) {
		t.Fatalf("no-op tuner perturbed the measurement:\nstatic: %+v\nnoop:   %+v", static, noop)
	}
}
