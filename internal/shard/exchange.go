package shard

import (
	"beltway/internal/heap"
	"beltway/internal/remset"
)

// Cross-shard references.
//
// Shards own disjoint heaps, and every collector in this codebase moves
// objects, so a raw address must never cross a shard boundary: the
// moment the owning shard collects, a foreign pointer is stale. The
// exchange instead routes references *by value* through channels with
// epoch (round) granularity:
//
//   - Publish snapshots the object's data payload into the shard's
//     private pending tail, and records the route in the shard's
//     pending remset.Table — the same packed uint64 (src<<32|tgt) key
//     machinery the collectors use, with the shard id folded into the
//     source frame index (FoldFrame) and the channel as the target
//     frame. The fast path is shard-private: no locks, no shared
//     memory.
//   - At the next safepoint the coordinator merges every shard's
//     pending tail — in ascending shard order, so the committed state
//     is schedule-independent — into the committed routing table and
//     the per-channel message queues.
//   - Consume reads only committed (immutable during a round) state
//     and materializes the payload as a fresh allocation in the
//     consuming shard's own heap, advancing a per-shard cursor, so
//     concurrent consumers never contend and every shard sees the
//     full stream (broadcast semantics).
//
// The committed exchange state is therefore a pure function of
// per-shard round outcomes, which is what makes the parallel schedule
// bit-replayable on one goroutine (see Runtime.RunSerial).

// shardFrameBits is where the shard id is folded into a routing frame
// index. Real frame indexes are far below 2^24 (a 2^24-frame heap at
// the minimum 256-byte frame would be 4 GiB of simulated memory), so
// the fold is collision-free for any configuration the simulator runs.
const shardFrameBits = 24

// FoldFrame folds a shard id into a frame index, producing the source
// key frame used to route that shard's publishes through a
// remset.Table. Distinct shards map the same physical frame index to
// distinct key spaces, exactly like a per-shard arena prefix.
func FoldFrame(shardID int, f heap.Frame) heap.Frame {
	return f | heap.Frame(shardID)<<shardFrameBits
}

// UnfoldFrame splits a folded routing frame back into (shard, frame).
func UnfoldFrame(f heap.Frame) (shardID int, frame heap.Frame) {
	return int(f >> shardFrameBits), f & (1<<shardFrameBits - 1)
}

// Message is one published value in flight between shards: the
// publisher's id, a publish sequence number unique within the
// publisher, and the snapshotted data payload.
type Message struct {
	From  int
	Seq   uint32
	Words []uint32
}

// route is one pending routing-table entry, kept in publish order so
// the merge is deterministic (the Table itself is a set).
type route struct {
	src, tgt heap.Frame
	slot     heap.Addr
}

// pendingExchange is a shard's private, lock-free (single-owner)
// exchange tail: messages and routes staged since the last safepoint.
type pendingExchange struct {
	table  *remset.Table // dedup/index over routes, packed-key keyed
	routes []route       // fresh inserts in publish order
	msgs   []Message     // payload queue in publish order
	chans  []int         // msgs[i] targets channel chans[i]
	seq    uint32        // publish sequence counter (never reset)
}

func newPendingExchange() *pendingExchange {
	return &pendingExchange{table: remset.NewTable()}
}

// stage records one publish. The remset table dedups routes (it has
// set semantics, like the collectors' remsets); the message queue is
// the authoritative payload order.
func (p *pendingExchange) stage(src, tgt heap.Frame, slot heap.Addr, ch int, m Message) {
	if p.table.Insert(src, tgt, slot) {
		p.routes = append(p.routes, route{src, tgt, slot})
	}
	p.msgs = append(p.msgs, m)
	p.chans = append(p.chans, ch)
}

// committedExchange is the runtime's merged exchange state. It is
// written only by the coordinator at safepoints and read-only during
// rounds, so shard goroutines access it without synchronization.
type committedExchange struct {
	routes *remset.Table // merged routing table across all shards
	queues map[int][]Message
	merged int // routing entries merged over the run (telemetry)
}

func newCommittedExchange() *committedExchange {
	return &committedExchange{routes: remset.NewTable(), queues: map[int][]Message{}}
}

// merge drains one shard's pending tail into the committed state.
// Callers merge shards in ascending id order; within one shard,
// publish order is preserved — together that fixes the committed
// state independent of the parallel schedule.
func (c *committedExchange) merge(p *pendingExchange) {
	for _, r := range p.routes {
		if c.routes.Insert(r.src, r.tgt, r.slot) {
			c.merged++
		}
	}
	p.routes = p.routes[:0]
	for i, m := range p.msgs {
		ch := p.chans[i]
		c.queues[ch] = append(c.queues[ch], m)
	}
	p.msgs = p.msgs[:0]
	p.chans = p.chans[:0]
}
