package shard

import (
	"sync"
	"sync/atomic"
)

// safepoint coordinates rendezvous between N mutator goroutines and the
// runtime coordinator. Mutators reach it two ways:
//
//   - at every round boundary (arrive), which is the only place the
//     runtime takes semantic action (exchange merge, global collection);
//   - mid-round through Shard.Poll, a cheap check piggybacked on the
//     cost-unit clock that parks the mutator without any semantic
//     effect when a stop has been requested.
//
// Because a mid-round park is purely a scheduling event — the shard
// neither observes nor mutates shared state while parked, and parking
// charges nothing to its cost clock — a run with safepoint stops
// interleaved is observably identical to one without, which is what
// keeps the parallel schedule replayable serially.
type safepoint struct {
	// stop is the poll word: non-zero when mutators should park at
	// their next poll. A single atomic load on the fast path.
	stop atomic.Uint32

	mu      sync.Mutex
	cond    *sync.Cond
	parked  int // mutators currently parked (mid-round polls only)
	arrived int // mutators parked at the round barrier
	gen     uint64
}

func newSafepoint() *safepoint {
	sp := &safepoint{}
	sp.cond = sync.NewCond(&sp.mu)
	return sp
}

// request asks every polling mutator to park at its next poll.
func (sp *safepoint) request() {
	sp.stop.Store(1)
}

// requested reports whether a stop is pending (the poll fast path).
func (sp *safepoint) requested() bool { return sp.stop.Load() != 0 }

// park blocks the calling mutator until the coordinator releases the
// current stop. Called from Shard.Poll when a stop is pending.
func (sp *safepoint) park() {
	sp.mu.Lock()
	gen := sp.gen
	sp.parked++
	sp.cond.Broadcast() // wake a coordinator waiting in waitParked
	for sp.gen == gen && sp.stop.Load() != 0 {
		sp.cond.Wait()
	}
	sp.parked--
	sp.cond.Broadcast() // wake a coordinator draining in release
	sp.mu.Unlock()
}

// waitParked blocks the coordinator until n mutators are parked
// (mid-round polls) — used by tests and mid-round stops.
func (sp *safepoint) waitParked(n int) {
	sp.mu.Lock()
	for sp.parked < n {
		sp.cond.Wait()
	}
	sp.mu.Unlock()
}

// release lifts the stop, wakes every parked mutator, and blocks until
// they have all left the safepoint — so a parked count observed by the
// next stop can never include stale parkers from this one.
func (sp *safepoint) release() {
	sp.mu.Lock()
	sp.stop.Store(0)
	sp.gen++
	sp.cond.Broadcast()
	for sp.parked > 0 {
		sp.cond.Wait()
	}
	sp.mu.Unlock()
}

// arrive parks the calling mutator at the round barrier and blocks
// until the coordinator finishes barrier work and opens the next
// round. The coordinator counts arrivals with waitArrived and opens
// the round with openRound.
func (sp *safepoint) arrive() {
	sp.mu.Lock()
	gen := sp.gen
	sp.arrived++
	sp.cond.Broadcast()
	for sp.gen == gen {
		sp.cond.Wait()
	}
	sp.mu.Unlock()
}

// waitArrived blocks the coordinator until n mutators have arrived at
// the barrier.
func (sp *safepoint) waitArrived(n int) {
	sp.mu.Lock()
	for sp.arrived < n {
		sp.cond.Wait()
	}
	sp.mu.Unlock()
}

// openRound resets the barrier and releases every arrived mutator into
// the next round.
func (sp *safepoint) openRound() {
	sp.mu.Lock()
	sp.arrived = 0
	sp.stop.Store(0)
	sp.gen++
	sp.cond.Broadcast()
	sp.mu.Unlock()
}
