package shard

import (
	"sync"
	"testing"
	"time"
)

// TestPollParksAtSafepoint drives shard goroutines through the
// poll-based safepoint directly: mutators loop doing clocked work and
// polling; the coordinator requests a stop, waits until every mutator
// is parked, inspects, and releases. Run under -race this also proves
// the park/release protocol publishes shard state to the coordinator.
func TestPollParksAtSafepoint(t *testing.T) {
	const shards = 4
	rt, err := New(testConfig(), Options{Shards: shards, Seed: 1, PerShardHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range rt.Shards() {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.M.Work(64) // advance the cost clock past the poll interval
				s.Poll()
			}
		}()
	}
	for round := 0; round < 3; round++ {
		rt.sp.request()
		done := make(chan struct{})
		go func() {
			rt.sp.waitParked(shards)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("mutators never parked at the requested safepoint")
		}
		// All parked: the coordinator may now touch shard state.
		for _, s := range rt.Shards() {
			if s.Polls() == 0 {
				t.Errorf("shard %d parked without polling", s.ID)
			}
		}
		rt.sp.release()
	}
	close(stop)
	// A final release in case a mutator parked after the last round's
	// release (request flag already cleared, so none should).
	wg.Wait()
}

// TestPollThrottledByClock checks the poll fast path: polls are spaced
// by the cost clock, so a tight poll loop without clocked work takes
// the atomic-load path at most once per interval.
func TestPollThrottledByClock(t *testing.T) {
	rt, err := New(testConfig(), Options{Shards: 1, Seed: 1, PerShardHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	s := rt.Shards()[0]
	for i := 0; i < 1000; i++ {
		s.Poll() // clock never advances: at most the first poll lands
	}
	if s.Polls() > 1 {
		t.Errorf("clock-throttled poll fired %d times with a frozen clock", s.Polls())
	}
	s.M.Work(100000)
	s.Poll()
	if s.Polls() == 0 {
		t.Error("poll never fired despite clock advance")
	}
}
