package shard

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
)

// testConfig is a small older-first configuration: 4 KiB frames, 256 KiB
// heap per shard — big enough to run the test bodies, small enough that
// every shard collects many times.
func testConfig() core.Config {
	return collectors.XX100(25, collectors.Options{HeapBytes: 256 << 10, FrameBytes: 4 << 10})
}

func newTestRuntime(t *testing.T, shards int, validate bool) *Runtime {
	t.Helper()
	rt, err := New(testConfig(), Options{
		Shards:       shards,
		Seed:         20020617,
		PerShardHeap: true,
		Validate:     validate,
		Telemetry:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// testPlan builds a deterministic rounds plan: every shard allocates a
// linked chain with RNG-derived payloads, keeps the chain head alive
// across rounds, publishes it to its own channel and consumes the next
// shard's stream — exercising allocation, barriers, collection,
// exchange and polling on every shard every round.
func testPlan(shards, rounds int) Plan {
	return Plan{
		Rounds:       rounds,
		CollectEvery: 2,
		Body: func(r int, s *Shard) {
			types := s.Heap.Space().Types
			node := types.Lookup("t.node")
			if node == nil {
				node = types.DefineScalar("t.node", 2, 4)
			}
			s.M.Push()
			var last gc.Handle
			for i := 0; i < 40; i++ {
				h := s.M.Alloc(node, 0)
				s.M.SetData(h, 0, uint32(s.Rng.Intn(1<<16)))
				s.M.SetData(h, 1, uint32(r))
				s.M.SetRef(h, 0, last)
				last = h
				s.M.Work(1 + s.Rng.Intn(4))
				s.Poll()
			}
			kept := s.M.Keep(last)
			s.M.Pop()
			s.Publish(s.ID, kept)
			if h := s.Consume((s.ID + 1) % shards); h != gc.NilHandle {
				// Fold the consumed payload back into local state so the
				// exchange affects the live graph.
				n := s.M.Length(h)
				sum := uint32(0)
				for i := 0; i < n; i++ {
					sum += s.M.GetData(h, i)
				}
				s.M.SetData(kept, 2, sum)
			}
		},
	}
}

// TestParallelMatchesSerial is the package's core determinism claim:
// the same plan executed on N goroutines (Run) and replayed one shard
// at a time on one goroutine (RunSerial) yields bit-identical
// per-shard outcomes — validated live graphs, clocks, and counters.
func TestParallelMatchesSerial(t *testing.T) {
	const shards, rounds = 4, 6
	par := newTestRuntime(t, shards, true)
	ser := newTestRuntime(t, shards, true)
	if err := par.Run(testPlan(shards, rounds)); err != nil {
		t.Fatal(err)
	}
	if err := ser.RunSerial(testPlan(shards, rounds)); err != nil {
		t.Fatal(err)
	}
	for i := range par.Shards() {
		p, q := par.Shards()[i], ser.Shards()[i]
		if p.Dead() || q.Dead() {
			t.Fatalf("shard %d died: parallel=%v serial=%v", i, p.Err(), q.Err())
		}
		if err := p.V.Check(); err != nil {
			t.Fatalf("shard %d parallel validator: %v", i, err)
		}
		if err := q.V.Check(); err != nil {
			t.Fatalf("shard %d serial validator: %v", i, err)
		}
		pf, qf := p.V.LiveFingerprint(), q.V.LiveFingerprint()
		if pf != qf {
			t.Errorf("shard %d live fingerprints diverge between schedules", i)
		}
		if pt, qt := p.Heap.Clock().TotalTime(), q.Heap.Clock().TotalTime(); pt != qt {
			t.Errorf("shard %d clocks diverge: parallel %v serial %v", i, pt, qt)
		}
		if p.Heap.Clock().Counters != q.Heap.Clock().Counters {
			t.Errorf("shard %d counters diverge:\nparallel %+v\nserial   %+v",
				i, p.Heap.Clock().Counters, q.Heap.Clock().Counters)
		}
		if pc, qc := p.Heap.Collections(), q.Heap.Collections(); pc != qc {
			t.Errorf("shard %d collections diverge: %d vs %d", i, pc, qc)
		}
	}
	pr, sr := par.Result(), ser.Result()
	if pr.Makespan != sr.Makespan {
		t.Errorf("makespan diverges: parallel %v serial %v", pr.Makespan, sr.Makespan)
	}
	if pr.RoutedEntries != sr.RoutedEntries {
		t.Errorf("routed entries diverge: %d vs %d", pr.RoutedEntries, sr.RoutedEntries)
	}
	if pr.RoutedEntries == 0 {
		t.Error("no routing entries merged; the exchange never ran")
	}
}

// TestShardOOMDeterministic starves the shards (4-frame minimum heaps,
// ever-growing global live set) and checks the OOM verdicts agree
// between the parallel and serial schedules.
func TestShardOOMDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.HeapBytes = 16 << 10 // 4 frames: guaranteed starvation
	build := func() *Runtime {
		rt, err := New(cfg, Options{Shards: 3, Seed: 7, PerShardHeap: true})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	plan := Plan{
		Rounds: 8,
		Body: func(r int, s *Shard) {
			types := s.Heap.Space().Types
			node := types.Lookup("t.node")
			if node == nil {
				node = types.DefineScalar("t.node", 1, 2)
			}
			for i := 0; i < 64; i++ {
				s.M.AllocGlobal(node, 0) // immortal from the roots' view: never released
				s.Poll()
			}
		},
	}
	par, ser := build(), build()
	if err := par.Run(plan); err != nil {
		t.Fatal(err)
	}
	if err := ser.RunSerial(plan); err != nil {
		t.Fatal(err)
	}
	anyOOM := false
	for i := range par.Shards() {
		p, q := par.Shards()[i], ser.Shards()[i]
		if (p.oomErr != nil) != (q.oomErr != nil) {
			t.Errorf("shard %d OOM verdicts diverge: parallel=%v serial=%v", i, p.oomErr, q.oomErr)
		}
		if p.failure != q.failure {
			t.Errorf("shard %d failures diverge: %q vs %q", i, p.failure, q.failure)
		}
		if p.oomErr != nil {
			anyOOM = true
		}
	}
	if !anyOOM {
		t.Error("expected at least one shard to OOM under a 4-frame heap")
	}
	if !par.Result().OOM {
		t.Error("Result.OOM not set despite shard OOM")
	}
}

// TestScalingMakespan checks the point of the exercise: with 4 shards
// doing equal work, the simulated elapsed time is much less than the
// aggregate work — the makespan reflects an N-core machine.
func TestScalingMakespan(t *testing.T) {
	const shards = 4
	rt := newTestRuntime(t, shards, false)
	if err := rt.Run(testPlan(shards, 6)); err != nil {
		t.Fatal(err)
	}
	res := rt.Result()
	if res.Makespan <= 0 || res.TotalCost <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Makespan > res.TotalCost/2 {
		t.Errorf("makespan %v not < half of aggregate work %v across %d shards",
			res.Makespan, res.TotalCost, shards)
	}
	if res.Throughput() <= 0 {
		t.Error("zero aggregate throughput")
	}
}

// TestGCWorkerPolicy checks that the STW (GCWorkers=1) and fanned-out
// (GCWorkers=0 → one per shard) global-collection paths produce
// identical heap outcomes and differ only in makespan attribution
// (sum vs max).
func TestGCWorkerPolicy(t *testing.T) {
	const shards, rounds = 3, 4
	build := func(workers int) *Runtime {
		rt, err := New(testConfig(), Options{
			Shards: shards, Seed: 99, PerShardHeap: true, GCWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	stw, fan := build(1), build(0)
	if err := stw.Run(testPlan(shards, rounds)); err != nil {
		t.Fatal(err)
	}
	if err := fan.Run(testPlan(shards, rounds)); err != nil {
		t.Fatal(err)
	}
	for i := range stw.Shards() {
		a, b := stw.Shards()[i], fan.Shards()[i]
		if a.Heap.Clock().Counters != b.Heap.Clock().Counters {
			t.Errorf("shard %d counters differ between STW and fan-out", i)
		}
		if a.Heap.Collections() != b.Heap.Collections() {
			t.Errorf("shard %d collection counts differ between STW and fan-out", i)
		}
	}
	if stw.GCMakespan() < fan.GCMakespan() {
		t.Errorf("STW GC makespan %v < fan-out %v; sum should dominate max",
			stw.GCMakespan(), fan.GCMakespan())
	}
}

// TestMergedTelemetry checks per-shard recorders merge into one
// well-formed stream with summed metrics.
func TestMergedTelemetry(t *testing.T) {
	const shards = 3
	rt := newTestRuntime(t, shards, false)
	if err := rt.Run(testPlan(shards, 4)); err != nil {
		t.Fatal(err)
	}
	snap := rt.MergedTelemetry()
	if snap == nil || snap.Metrics == nil {
		t.Fatal("no merged telemetry")
	}
	var want uint64
	for _, s := range rt.Shards() {
		want += s.Heap.Collections()
	}
	if got := snap.Metrics.Counters["gc_collections_total"]; got != want {
		t.Errorf("merged collections counter %d, want %d", got, want)
	}
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].Time < snap.Events[i-1].Time {
			t.Fatalf("merged events out of time order at %d", i)
		}
		if snap.Events[i].Seq != snap.Events[i-1].Seq+1 {
			t.Fatalf("merged events not re-stamped at %d", i)
		}
	}
}

func TestFoldFrame(t *testing.T) {
	cases := []struct {
		shard int
		frame heap.Frame
	}{{0, 0}, {0, 12345}, {3, 7}, {7, 1<<shardFrameBits - 1}, {255, 42}}
	for _, c := range cases {
		folded := FoldFrame(c.shard, c.frame)
		id, f := UnfoldFrame(folded)
		if id != c.shard || f != c.frame {
			t.Errorf("FoldFrame(%d, %d) round-trips to (%d, %d)", c.shard, c.frame, id, f)
		}
	}
	if FoldFrame(1, 10) == FoldFrame(2, 10) {
		t.Error("distinct shards fold the same frame to the same key space")
	}
}

// TestExchangeBroadcast checks the committed queues are broadcast
// streams: every consumer sees every committed message, in committed
// order, via a private cursor.
func TestExchangeBroadcast(t *testing.T) {
	const shards = 3
	rt := newTestRuntime(t, shards, false)
	plan := Plan{
		Rounds: 2,
		Body: func(r int, s *Shard) {
			types := s.Heap.Space().Types
			wt := types.Lookup("t.words")
			if wt == nil {
				wt = types.DefineWordArray("t.words")
			}
			if r == 0 {
				h := s.M.AllocGlobal(wt, 2)
				s.M.SetData(h, 0, uint32(100+s.ID))
				s.M.SetData(h, 1, uint32(200+s.ID))
				s.Publish(0, h) // everyone publishes on channel 0
				return
			}
			// Round 1: every shard drains channel 0 and must see all
			// three messages, in shard-id (merge) order.
			for want := 0; want < shards; want++ {
				h := s.Consume(0)
				if h == gc.NilHandle {
					panic("missing committed message")
				}
				// Words[0] is the publish seq; payload starts at 1.
				if got := s.M.GetData(h, 1); got != uint32(100+want) {
					panic("out-of-order exchange stream")
				}
			}
			if s.Consume(0) != gc.NilHandle {
				panic("phantom message")
			}
		},
	}
	if err := rt.Run(plan); err != nil {
		t.Fatal(err)
	}
	for _, s := range rt.Shards() {
		if s.Dead() {
			t.Fatalf("shard %d: %v", s.ID, s.Err())
		}
	}
	if rt.RoutedEntries() != shards {
		t.Errorf("routed entries %d, want %d", rt.RoutedEntries(), shards)
	}
}

// TestRuntimeSingleUse guards the one-plan-per-runtime rule.
func TestRuntimeSingleUse(t *testing.T) {
	rt := newTestRuntime(t, 1, false)
	p := testPlan(1, 1)
	if err := rt.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(p); err == nil {
		t.Error("second Run on one runtime should fail")
	}
}
