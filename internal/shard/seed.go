package shard

// splitmix64 is the finalizer of the SplitMix64 generator (Steele,
// Lea & Flood, "Fast Splittable Pseudorandom Number Generators",
// OOPSLA 2014). It is a high-quality 64-bit mixing function: every
// input bit avalanches through the whole output, so consecutive
// inputs (0, 1, 2, ...) produce statistically independent outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StreamSeed derives the RNG seed for one shard's workload stream from
// the run's base seed. The naive `seed + shardID` is unsound: shard 1
// of seed S runs the exact same stream as shard 0 of seed S+1, so a
// sweep over adjacent seeds re-measures correlated workloads while
// believing them independent. Hashing the shard id through splitmix64
// before XOR-ing decorrelates both axes: distinct shards of one run
// and equal shards of adjacent runs all draw from unrelated streams.
//
// Shard 0 is the identity (StreamSeed(s, 0) == s): a 1-mutator sharded
// run replays exactly the stream the classic single-mutator run draws
// from the same seed, which is what makes sharding overhead directly
// measurable against the flat path.
func StreamSeed(seed int64, shardID int) int64 {
	if shardID == 0 {
		return seed
	}
	return seed ^ int64(splitmix64(uint64(shardID)))
}
