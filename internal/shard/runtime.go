package shard

import (
	"errors"
	"fmt"
	"math/rand"

	"beltway/internal/core"
	"beltway/internal/engine"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/stats"
	"beltway/internal/telemetry"
	"beltway/internal/vm"
)

// defaultPollInterval is the cost-unit spacing between safepoint polls
// (Shard.Poll). Roughly a few hundred mutator operations at the default
// cost model — frequent enough that a stop request lands promptly,
// cheap enough to vanish against allocation costs.
const defaultPollInterval = 256.0

// Options parameterizes a sharded runtime.
type Options struct {
	// Shards is the number of mutator lanes (>= 1).
	Shards int
	// Seed is the base workload seed; shard i draws its private RNG
	// stream from StreamSeed(Seed, i).
	Seed int64
	// PerShardHeap, when set, gives every shard the template config's
	// full HeapBytes instead of an equal division of it. The oracle
	// uses this (its heap-sizing policy is per-script, so per-shard);
	// throughput runs divide a fixed total budget.
	PerShardHeap bool
	// Telemetry attaches a private telemetry.Run to every shard.
	Telemetry bool
	// Validate attaches the shadow-graph validator to every shard
	// (oracle mode; much slower).
	Validate bool
	// GCWorkers bounds the worker pool for rendezvoused global
	// collections: 0 fans one worker out per shard (parallel trace over
	// disjoint shard heaps, reusing internal/engine), 1 collects the
	// shards back to back on the coordinator (classic STW).
	GCWorkers int
	// PollInterval overrides the cost-unit spacing of safepoint polls
	// (0 = defaultPollInterval).
	PollInterval float64
}

// Plan is a rounds-with-barriers execution schedule. Within a round,
// every live shard runs Body concurrently, touching only its own state
// and the immutable committed exchange; at each round boundary the
// coordinator merges exchange tails (in ascending shard order) and
// optionally runs a rendezvoused global collection. The schedule is
// the unit of determinism: Run and RunSerial execute the same plan on
// N goroutines and on one, with identical per-shard outcomes.
type Plan struct {
	Rounds int
	// Body runs shard s's slice of round r. It must confine itself to
	// s and to Consume/Publish; it may call s.Poll at convenient
	// points.
	Body func(round int, s *Shard)
	// CollectEvery, when positive, forces a global collection at every
	// CollectEvery-th round boundary (all shards rendezvoused).
	CollectEvery int
	// CollectFull makes those collections condemn the whole heap.
	CollectFull bool
}

// Runtime owns N shards and coordinates their rounds, safepoints,
// exchange merges and global collections.
type Runtime struct {
	cfg          core.Config
	opts         Options
	shards       []*Shard
	sp           *safepoint
	committed    *committedExchange
	pollInterval float64

	roundStart []float64 // per-shard clock reading at round open
	makespan   float64   // Σ rounds of max-over-shards round cost
	gcMakespan float64   // portion of makespan spent in global collections
	rounds     int
}

// New builds a sharded runtime over the template configuration. Unless
// opts.PerShardHeap is set, cfg.HeapBytes is the total budget, divided
// equally (frame-rounded, never below the 4-frame minimum) across
// shards — N mutators sharing the machine the single-mutator run had.
func New(cfg core.Config, opts Options) (*Runtime, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, have %d", opts.Shards)
	}
	if opts.Shards >= 1<<(32-shardFrameBits) {
		return nil, fmt.Errorf("shard: %d shards overflow the routing fold", opts.Shards)
	}
	rt := &Runtime{
		cfg:          cfg,
		opts:         opts,
		sp:           newSafepoint(),
		committed:    newCommittedExchange(),
		pollInterval: opts.PollInterval,
		roundStart:   make([]float64, opts.Shards),
	}
	if rt.pollInterval <= 0 {
		rt.pollInterval = defaultPollInterval
	}
	perHeap := cfg.HeapBytes
	if !opts.PerShardHeap && opts.Shards > 1 {
		perHeap = cfg.HeapBytes / opts.Shards
		perHeap -= perHeap % cfg.FrameBytes
		if min := 4 * cfg.FrameBytes; perHeap < min {
			perHeap = min
		}
	}
	for i := 0; i < opts.Shards; i++ {
		scfg := cfg
		scfg.HeapBytes = perHeap
		h, err := core.New(scfg, heap.NewRegistry())
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s := &Shard{
			ID:      i,
			Heap:    h,
			M:       vm.New(h),
			Rng:     rand.New(rand.NewSource(StreamSeed(opts.Seed, i))),
			rt:      rt,
			pending: newPendingExchange(),
			cursors: map[int]int{},
		}
		if opts.Validate {
			s.V = s.M.EnableValidation()
		}
		if opts.Telemetry {
			s.Tele = telemetry.NewRun(h.Clock())
			h.SetHooks(s.Tele.Hooks())
		}
		rt.shards = append(rt.shards, s)
	}
	return rt, nil
}

// Shards returns the runtime's shards in id order.
func (rt *Runtime) Shards() []*Shard { return rt.shards }

// Makespan returns the simulated elapsed time of the run so far, in
// cost units: the sum over rounds of the slowest shard's round cost,
// plus global-collection time (max over shards when the collection
// fanned out over parallel workers, the sum when it ran STW on one).
// This is the wall clock of the simulated N-core machine, and the
// denominator of every scaling claim — the host's core count is
// irrelevant to it.
func (rt *Runtime) Makespan() float64 { return rt.makespan }

// GCMakespan returns the portion of Makespan spent in rendezvoused
// global collections.
func (rt *Runtime) GCMakespan() float64 { return rt.gcMakespan }

// RoutedEntries returns the number of routing-table entries merged
// from per-shard tails into the committed exchange table.
func (rt *Runtime) RoutedEntries() int { return rt.committed.merged }

// Run executes the plan on one goroutine per shard. Shards rendezvous
// at a safepoint barrier after every round; the coordinator performs
// all semantic barrier work (exchange merge, global collection) while
// they are parked, then opens the next round.
func (rt *Runtime) Run(p Plan) error {
	if err := rt.checkPlan(p); err != nil {
		return err
	}
	rt.openRoundClocks()
	n := len(rt.shards)
	done := make(chan struct{}, n)
	for _, s := range rt.shards {
		s := s
		go func() {
			for r := 0; r < p.Rounds; r++ {
				s.runRound(r, p.Body)
				rt.sp.arrive()
			}
			done <- struct{}{}
		}()
	}
	for r := 0; r < p.Rounds; r++ {
		rt.sp.waitArrived(n)
		rt.barrier(p, r)
		rt.sp.openRound()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return nil
}

// RunSerial executes the same plan on the calling goroutine: every
// round runs the shards in ascending id order, with identical barrier
// work at identical points. Because round bodies are confined to
// shard-private and committed-immutable state, RunSerial's per-shard
// outcomes are bit-identical to Run's — it is the reference schedule
// the sharded oracle diffs against.
func (rt *Runtime) RunSerial(p Plan) error {
	if err := rt.checkPlan(p); err != nil {
		return err
	}
	rt.openRoundClocks()
	for r := 0; r < p.Rounds; r++ {
		for _, s := range rt.shards {
			s.runRound(r, p.Body)
		}
		rt.barrier(p, r)
	}
	return nil
}

func (rt *Runtime) checkPlan(p Plan) error {
	if p.Rounds < 0 || p.Body == nil {
		return errors.New("shard: plan needs a body and a non-negative round count")
	}
	if rt.rounds > 0 {
		return errors.New("shard: runtime already ran a plan")
	}
	return nil
}

func (rt *Runtime) openRoundClocks() {
	for i, s := range rt.shards {
		rt.roundStart[i] = s.Heap.Clock().Now()
	}
}

// barrier performs the semantic work at one round boundary. In the
// parallel schedule every shard is parked at the safepoint when it
// runs; in the serial schedule it runs inline. Either way the work and
// its ordering are identical.
func (rt *Runtime) barrier(p Plan, round int) {
	rt.rounds++
	var maxCost float64
	for i, s := range rt.shards {
		if d := s.Heap.Clock().Now() - rt.roundStart[i]; d > maxCost {
			maxCost = d
		}
	}
	rt.makespan += maxCost
	// Merge exchange tails in ascending shard order: the committed
	// state after the barrier is schedule-independent.
	for _, s := range rt.shards {
		rt.committed.merge(s.pending)
	}
	if p.CollectEvery > 0 && (round+1)%p.CollectEvery == 0 {
		rt.collectAll(p.CollectFull)
	}
	rt.openRoundClocks()
}

// collectAll runs a rendezvoused global collection: every live shard's
// heap is collected, either back to back on the coordinator
// (GCWorkers == 1: classic stop-the-world) or fanned out over
// internal/engine's bounded workers (shard heaps are disjoint, so the
// condemned-set traces are embarrassingly parallel). Heap outcomes are
// identical either way; only the makespan attribution differs (sum for
// STW, max for the fan-out), and that is policy, not semantics.
func (rt *Runtime) collectAll(full bool) {
	var live []*Shard
	for _, s := range rt.shards {
		if !s.dead {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return
	}
	starts := make([]float64, len(live))
	for i, s := range live {
		starts[i] = s.Heap.Clock().Now()
	}
	workers := rt.opts.GCWorkers
	if workers == 0 {
		workers = len(live)
	}
	if workers == 1 || len(live) == 1 {
		for _, s := range live {
			rt.noteCollectErr(s, s.Heap.Collect(full))
		}
		var sum float64
		for i, s := range live {
			sum += s.Heap.Clock().Now() - starts[i]
		}
		rt.makespan += sum
		rt.gcMakespan += sum
		return
	}
	eng := engine.New(engine.Config{Workers: workers})
	jobs := make([]engine.Job, len(live))
	for i, s := range live {
		s := s
		jobs[i] = engine.Job{
			Key: engine.Key{Experiment: "shard-gc", Collector: s.Heap.Name(), HeapBytes: s.ID},
			Run: func() (any, engine.Outcome, error) {
				if err := s.Heap.Collect(full); err != nil {
					if errors.Is(err, gc.ErrOutOfMemory) {
						return nil, engine.OOM, nil
					}
					return nil, engine.Errored, err
				}
				return nil, engine.OK, nil
			},
		}
	}
	recs, err := eng.Run(jobs)
	_ = eng.Close()
	if err != nil {
		// Engine-level failure (not a job failure) — fall back to the
		// serial path so the run still completes deterministically.
		for _, s := range live {
			rt.noteCollectErr(s, s.Heap.Collect(full))
		}
	} else {
		for i, rec := range recs {
			switch rec.Outcome {
			case engine.OOM:
				rt.noteCollectErr(live[i], gc.ErrOutOfMemory)
			case engine.OK:
			default:
				live[i].dead = true
				live[i].failure = "collect: " + rec.Error
			}
		}
	}
	var maxDelta float64
	for i, s := range live {
		if d := s.Heap.Clock().Now() - starts[i]; d > maxDelta {
			maxDelta = d
		}
	}
	rt.makespan += maxDelta
	rt.gcMakespan += maxDelta
}

func (rt *Runtime) noteCollectErr(s *Shard, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, gc.ErrOutOfMemory) {
		s.dead = true
		s.oomErr = err
		return
	}
	s.dead = true
	s.failure = "collect: " + err.Error()
}

// ShardStats is one shard's end-of-run measurement.
type ShardStats struct {
	ID          int
	TotalTime   float64 // the shard's own cost-unit timeline
	GCTime      float64
	MaxPause    float64
	Pauses      []stats.Pause
	Counters    stats.Counters
	Collections uint64
	Polls       uint64
	Published   uint64
	Consumed    uint64
	OOM         bool
	Aborted     bool // stopped by the clock's cost budget
	Failure     string
}

// Result aggregates a finished run.
type Result struct {
	Shards int
	Rounds int
	// Makespan is the simulated elapsed time (see Runtime.Makespan);
	// GCMakespan the share of it in rendezvoused global collections.
	Makespan   float64
	GCMakespan float64
	// TotalCost is the aggregate work done: Σ per-shard clock totals.
	TotalCost      float64
	BytesAllocated uint64
	BytesCopied    uint64
	Collections    uint64
	RoutedEntries  int
	OOM            bool // any shard ended in OOM
	PerShard       []ShardStats
}

// Throughput returns aggregate allocation+collection throughput:
// bytes allocated plus bytes copied per cost unit of simulated
// elapsed time. This is the scaling metric: N shards do ~N× the work
// in ~1× the makespan.
func (r *Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.BytesAllocated+r.BytesCopied) / r.Makespan
}

// Result snapshots the runtime's aggregate measurement.
func (rt *Runtime) Result() *Result {
	res := &Result{
		Shards:        len(rt.shards),
		Rounds:        rt.rounds,
		Makespan:      rt.makespan,
		GCMakespan:    rt.gcMakespan,
		RoutedEntries: rt.committed.merged,
	}
	for _, s := range rt.shards {
		c := s.Heap.Clock()
		st := ShardStats{
			ID:          s.ID,
			TotalTime:   c.TotalTime(),
			GCTime:      c.GCTime(),
			MaxPause:    c.MaxPause(),
			Pauses:      c.Pauses(),
			Counters:    c.Counters,
			Collections: s.Heap.Collections(),
			Polls:       s.polls,
			Published:   s.pubs,
			Consumed:    s.cons,
			OOM:         s.oomErr != nil,
			Aborted:     s.aborted,
			Failure:     s.failure,
		}
		res.PerShard = append(res.PerShard, st)
		res.TotalCost += st.TotalTime
		res.BytesAllocated += st.Counters.BytesAllocated
		res.BytesCopied += st.Counters.BytesCopied
		res.Collections += st.Collections
		if st.OOM {
			res.OOM = true
		}
	}
	return res
}

// MergedTelemetry merges every shard's telemetry snapshot into one
// (nil when the runtime was built without Options.Telemetry). Each
// shard kept a private flight recorder and registry during the run —
// single-owner, no synchronization on the hot path — and the merge is
// commutative on metrics, time-ordered on events.
func (rt *Runtime) MergedTelemetry() *telemetry.RunSnapshot {
	if !rt.opts.Telemetry {
		return nil
	}
	snaps := make([]*telemetry.RunSnapshot, len(rt.shards))
	for i, s := range rt.shards {
		snaps[i] = s.Tele.Snapshot()
	}
	return telemetry.MergeRunSnapshots(snaps...)
}
