// Package shard scales the simulator from one mutator to N: each shard
// is a full mutator goroutine driving its own belts-and-increments heap
// (private nursery and mature belts, private cost clock, private
// telemetry), with cross-shard references routed by value through the
// packed remset.Table key machinery and all cross-shard coordination
// confined to poll-based safepoints at round boundaries.
//
// The design invariant is *schedule independence*: within a round,
// shards interact with nothing but their own state and the immutable
// committed exchange; between rounds, the coordinator merges per-shard
// tails in ascending shard order. Every observable per-shard outcome —
// allocation serials, live-graph fingerprint, OOM verdict — is
// therefore a pure function of (config, seed, plan), identical whether
// the rounds ran on N goroutines or were replayed one shard at a time
// on one goroutine. Runtime.Run and Runtime.RunSerial are those two
// schedules, and internal/check's sharded oracle diffs them.
package shard

import (
	"fmt"
	"math/rand"

	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/stats"
	"beltway/internal/telemetry"
	"beltway/internal/vm"
)

// msgTypeName is the type every consumed exchange message materializes
// as: a word array holding [seq, payload...] as published.
const msgTypeName = "xchg.msg"

// Shard is one mutator lane: a private heap, mutator facade, RNG
// stream, telemetry run and exchange tail. All methods are owner-only —
// exactly one goroutine drives a shard at a time (the runtime enforces
// this; shards have no internal locking on their fast paths).
type Shard struct {
	ID int
	// Heap is the shard's private collector instance; allocation, write
	// barriers and nursery collections all happen here, shard-locally
	// and lock-free with respect to every other shard.
	Heap *core.Heap
	// M is the vm facade the shard's workload drives.
	M *vm.Mutator
	// V is the shadow-graph validator, non-nil in oracle mode.
	V *vm.Validator
	// Rng is the shard's private workload stream, seeded by
	// StreamSeed(baseSeed, ID).
	Rng *rand.Rand
	// Tele is the shard's private flight recorder + metrics registry,
	// non-nil when the runtime was built with Options.Telemetry. One
	// recorder per shard keeps hook emission single-owner; the runtime
	// merges snapshots at aggregation (telemetry.MergeRunSnapshots).
	Tele *telemetry.Run

	rt      *Runtime
	pending *pendingExchange
	cursors map[int]int // per-channel consume cursor (broadcast streams)
	msgType *heap.TypeDesc

	dead    bool  // shard hit OOM (or failed); skips remaining rounds
	oomErr  error // the OOM that killed it
	aborted bool  // shard hit its cost budget (stats.BudgetExceeded)
	failure string

	lastPoll float64 // clock reading at the last safepoint poll
	polls    uint64  // polls taken (telemetry)
	pubs     uint64  // messages published
	cons     uint64  // messages consumed
}

// Dead reports whether the shard stopped early (OOM or failure).
func (s *Shard) Dead() bool { return s.dead }

// OOM reports whether the shard ended in out-of-memory (as opposed to
// running to completion or failing some other way).
func (s *Shard) OOM() bool { return s.oomErr != nil }

// Aborted reports whether the shard was stopped by its clock's cost
// budget (the deterministic analog of a timeout).
func (s *Shard) Aborted() bool { return s.aborted }

// Failure returns the non-OOM failure that stopped the shard ("" when
// none).
func (s *Shard) Failure() string { return s.failure }

// Err returns the error that stopped the shard, or nil.
func (s *Shard) Err() error {
	if s.oomErr != nil {
		return s.oomErr
	}
	if s.failure != "" {
		return fmt.Errorf("shard %d: %s", s.ID, s.failure)
	}
	return nil
}

// Polls returns the number of safepoint polls the shard has taken.
func (s *Shard) Polls() uint64 { return s.polls }

// Poll is the shard's safepoint check, called from workload code at
// convenient points (the sharded oracle polls between script ops).
// It piggybacks on the cost-unit clock: the atomic stop-word load is
// only taken once the shard's clock has advanced pollIntervalCost
// units since the last poll, so polling frequency is a deterministic
// function of the shard's own simulated timeline, not of wall-clock
// scheduling. Parking charges nothing to the clock — a stop is
// observationally free, which keeps fixed schedules replayable.
func (s *Shard) Poll() {
	now := s.Heap.Clock().Now()
	if now-s.lastPoll < s.rt.pollInterval {
		return
	}
	s.lastPoll = now
	s.polls++
	if s.rt.sp.requested() {
		s.rt.sp.park()
	}
}

// Publish snapshots the data payload of the object h refers to and
// stages it on channel ch. The route is recorded in the shard's
// pending remset.Table under a packed key whose source frame folds the
// shard id into the object's frame index; the payload is staged in
// publish order. Nothing is visible to other shards until the next
// safepoint merge. Reading the payload goes through the vm facade, so
// it is charged to the shard's clock and observed by the validator
// like any other field traffic.
func (s *Shard) Publish(ch int, h gc.Handle) {
	if h == gc.NilHandle {
		return
	}
	n := s.numDataWords(h)
	words := make([]uint32, 1+n)
	s.pending.seq++
	words[0] = s.pending.seq
	for i := 0; i < n; i++ {
		words[1+i] = s.M.GetData(h, i)
	}
	addr := s.Heap.Roots().Get(h)
	f := s.Heap.Space().FrameOf(addr)
	s.pending.stage(FoldFrame(s.ID, f), heap.Frame(ch), addr, ch,
		Message{From: s.ID, Seq: s.pending.seq, Words: words})
	s.pubs++
}

// Consume materializes the next unconsumed committed message on
// channel ch as a fresh word-array allocation in this shard's heap,
// returning a scope-independent handle (NilHandle when the channel has
// no further committed messages). Each shard consumes the stream
// independently — broadcast, not work-stealing — so consumption never
// touches shared mutable state.
func (s *Shard) Consume(ch int) gc.Handle {
	q := s.rt.committed.queues[ch]
	cur := s.cursors[ch]
	if cur >= len(q) {
		return gc.NilHandle
	}
	m := q[cur]
	s.cursors[ch] = cur + 1
	if s.msgType == nil {
		if t := s.Heap.Space().Types.Lookup(msgTypeName); t != nil {
			s.msgType = t
		} else {
			s.msgType = s.Heap.Space().Types.DefineWordArray(msgTypeName)
		}
	}
	h := s.M.AllocGlobal(s.msgType, len(m.Words))
	for i, w := range m.Words {
		s.M.SetData(h, i, w)
	}
	s.cons++
	return h
}

// numDataWords mirrors the script interpreter's payload rule: scalars
// expose their data words, word arrays their elements, ref arrays
// nothing (references never cross shards by address).
func (s *Shard) numDataWords(h gc.Handle) int {
	t := s.M.TypeOf(h)
	switch t.Kind {
	case heap.Scalar:
		return t.DataWords
	case heap.WordArray:
		return s.M.Length(h)
	default:
		return 0
	}
}

// runRound executes one round body on the shard, converting OOM into
// the shard's terminal verdict and recovering panics into a recorded
// failure (a deterministic panic reproduces identically in the serial
// replay, so the verdict stays comparable).
func (s *Shard) runRound(round int, body func(round int, s *Shard)) {
	if s.dead {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.dead = true
			if _, ok := r.(stats.BudgetExceeded); ok {
				s.aborted = true
				return
			}
			s.failure = fmt.Sprintf("panic in round %d: %v", round, r)
		}
	}()
	if err := s.M.Run(func() { body(round, s) }); err != nil {
		s.dead = true
		s.oomErr = err
	}
}
