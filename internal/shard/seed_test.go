package shard

import (
	"math/rand"
	"testing"
)

// TestStreamSeedDecorrelated pins the bug the derivation exists to
// avoid: with the naive seed+shardID scheme, shard 1 of seed S and
// shard 0 of seed S+1 run the same stream. StreamSeed must keep the
// two axes independent.
func TestStreamSeedDecorrelated(t *testing.T) {
	for s := int64(0); s < 512; s++ {
		if StreamSeed(s, 1) == StreamSeed(s+1, 0) {
			t.Fatalf("seed %d: shard 1 collides with seed %d shard 0", s, s+1)
		}
	}
}

// TestStreamSeedDistinct checks pairwise distinctness over a grid of
// base seeds and shard ids.
func TestStreamSeedDistinct(t *testing.T) {
	seen := map[int64][2]int64{}
	for s := int64(0); s < 64; s++ {
		for id := 0; id < 16; id++ {
			v := StreamSeed(s, id)
			if prev, dup := seen[v]; dup {
				t.Fatalf("StreamSeed(%d,%d) == StreamSeed(%d,%d)", s, id, prev[0], prev[1])
			}
			seen[v] = [2]int64{s, int64(id)}
		}
	}
}

// TestStreamIndependence draws from the derived streams and checks
// adjacent shards (and adjacent seeds) do not produce correlated
// sequences: across many draws, the fraction of positions where two
// streams emit the same bucket must be near the 1/k chance level.
func TestStreamIndependence(t *testing.T) {
	const draws, buckets = 4096, 16
	stream := func(seed int64, id int) []int {
		rng := rand.New(rand.NewSource(StreamSeed(seed, id)))
		out := make([]int, draws)
		for i := range out {
			out[i] = rng.Intn(buckets)
		}
		return out
	}
	match := func(a, b []int) float64 {
		same := 0
		for i := range a {
			if a[i] == b[i] {
				same++
			}
		}
		return float64(same) / float64(len(a))
	}
	pairs := [][2][]int{
		{stream(1, 0), stream(1, 1)}, // adjacent shards, one seed
		{stream(1, 1), stream(2, 0)}, // the seed+i collision pair
		{stream(1, 0), stream(2, 0)}, // same shard, adjacent seeds
	}
	for i, p := range pairs {
		got := match(p[0], p[1])
		// Chance level is 1/16 = 0.0625; allow generous slack but fail
		// hard if the streams are identical or strongly correlated.
		if got > 0.125 {
			t.Errorf("pair %d: %.2f%% positions match (chance %.2f%%) — streams correlated",
				i, 100*got, 100.0/buckets)
		}
	}
	// splitmix64 sanity: the canonical constants must avalanche 0 and 1
	// far apart (guards against a typo'd constant silently weakening
	// every derived stream).
	if splitmix64(0) == 0 || splitmix64(0) == splitmix64(1) {
		t.Error("splitmix64 does not avalanche")
	}
}
