package resilience

import "testing"

// FuzzSchedule checks that every (seed, horizon) pair yields a schedule
// satisfying the invariants the chaos oracle depends on, and that an
// injector replaying it fires deterministically.
func FuzzSchedule(f *testing.F) {
	f.Add(int64(1), 4096)
	f.Add(int64(-9), 0)
	f.Add(int64(1<<50), 1<<16)
	f.Fuzz(func(t *testing.T, seed int64, horizon int) {
		if horizon > 1<<22 { // keep ordinal generation bounded
			horizon %= 1 << 22
		}
		s := NewSchedule(seed, horizon)
		if err := s.Validate(); err != nil {
			t.Fatalf("NewSchedule(%d, %d): %v", seed, horizon, err)
		}
		run := func() int {
			in := NewInjector(s)
			h := in.Hooks()
			for i := 0; i < 200; i++ {
				h.MapFrame()
				h.ReserveGrant()
				h.AllocCost()
				h.RemsetInsert()
			}
			return in.TotalFired()
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("replay fired %d then %d faults", a, b)
		}
	})
}
