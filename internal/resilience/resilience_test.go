package resilience

import (
	"reflect"
	"testing"
)

func TestScheduleDeterministic(t *testing.T) {
	a := NewSchedule(42, 4096)
	b := NewSchedule(42, 4096)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := NewSchedule(43, 4096)
	if reflect.DeepEqual(a.Ordinals, c.Ordinals) {
		t.Fatal("different seeds produced identical ordinals")
	}
}

func TestScheduleInvariants(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		for _, horizon := range []int{0, 1, 256, 4096, 1 << 20} {
			s := NewSchedule(seed, horizon)
			if err := s.Validate(); err != nil {
				t.Errorf("seed=%d horizon=%d: %v", seed, horizon, err)
			}
			want := horizon / 256
			if want < 4 {
				want = 4
			}
			for k := Kind(0); k < numKinds; k++ {
				if got := len(s.Ordinals[k]); got != want {
					t.Errorf("seed=%d horizon=%d kind=%v: %d ordinals, want %d",
						seed, horizon, k, got, want)
				}
			}
			if s.CostFactor < 1 || s.CostFactor > 8 {
				t.Errorf("seed=%d: CostFactor %v outside [1,8]", seed, s.CostFactor)
			}
		}
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	bad := NewSchedule(1, 256)
	bad.Ordinals[MapFrame] = []uint64{10, 9}
	if bad.Validate() == nil {
		t.Error("unsorted ordinals passed Validate")
	}
	bad = NewSchedule(1, 256)
	bad.Ordinals[ReserveGrant] = []uint64{8, 8 + MinGap - 1}
	if bad.Validate() == nil {
		t.Error("sub-MinGap gap passed Validate")
	}
	bad = NewSchedule(1, 256)
	bad.Ordinals[AllocCost] = []uint64{0}
	if bad.Validate() == nil {
		t.Error("ordinal 0 passed Validate")
	}
}

func TestInjectorFiresExactOrdinals(t *testing.T) {
	s := &Schedule{Seed: 1, CostFactor: 3}
	s.Ordinals[MapFrame] = []uint64{2, 10}
	s.Ordinals[AllocCost] = []uint64{1}
	in := NewInjector(s)
	h := in.Hooks()

	for call := uint64(1); call <= 12; call++ {
		ok := h.MapFrame()
		wantVeto := call == 2 || call == 10
		if ok == wantVeto {
			t.Errorf("MapFrame call %d: ok=%v, want veto=%v", call, ok, wantVeto)
		}
	}
	if got := h.AllocCost(); got != 3 {
		t.Errorf("AllocCost call 1 = %v, want CostFactor 3", got)
	}
	if got := h.AllocCost(); got != 0 {
		t.Errorf("AllocCost call 2 = %v, want 0", got)
	}
	// Unscheduled kinds never fire.
	for i := 0; i < 100; i++ {
		if !h.RemsetInsert() {
			t.Fatal("RemsetInsert fired with no scheduled ordinals")
		}
	}

	if in.TotalFired() != 3 {
		t.Errorf("TotalFired = %d, want 3", in.TotalFired())
	}
	want := []FiredFault{
		{MapFrame, 2},
		{MapFrame, 10},
		{AllocCost, 1},
	}
	// Fired log is append-ordered by fire time; MapFrame calls all
	// happened before the AllocCost calls above.
	if !reflect.DeepEqual(in.Fired(), want) {
		t.Errorf("Fired = %v, want %v", in.Fired(), want)
	}
	if in.Calls(MapFrame) != 12 || in.Calls(RemsetInsert) != 100 {
		t.Errorf("Calls = %d/%d, want 12/100", in.Calls(MapFrame), in.Calls(RemsetInsert))
	}
}

func TestInjectorReplayDeterminism(t *testing.T) {
	s := NewSchedule(7, 2048)
	run := func() []FiredFault {
		in := NewInjector(s)
		h := in.Hooks()
		for i := 0; i < 500; i++ {
			h.MapFrame()
			h.ReserveGrant()
			h.AllocCost()
			h.RemsetInsert()
		}
		return in.Fired()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults fired in 500 calls per kind")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fresh injectors over the same schedule fired differently")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		MapFrame:     "map-frame",
		ReserveGrant: "reserve-grant",
		AllocCost:    "alloc-cost",
		RemsetInsert: "remset-insert",
		numKinds:     "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
