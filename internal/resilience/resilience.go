// Package resilience provides deterministic, seed-driven fault injection
// for the collectors. A Schedule fixes, per fault kind, the exact call
// ordinals at which that fault fires; an Injector counts the calls and
// vetoes exactly those ordinals via gc.FaultHooks. Two runs with the
// same schedule see byte-identical fault timing, which is what lets the
// chaos mode of the differential oracle (internal/check) assert that
// degraded execution preserves semantics: the faults are part of the
// reproducible experiment, not noise.
package resilience

import (
	"fmt"
	"math/rand"
	"sort"

	"beltway/internal/gc"
)

// Kind enumerates the injectable fault classes, one per gc.FaultHooks
// field.
type Kind uint8

const (
	// MapFrame fails a collectible frame map (heap.Space.TryMapFrame /
	// TryMapSpan).
	MapFrame Kind = iota
	// ReserveGrant fails a copy-reserve frame grant mid-collection.
	ReserveGrant
	// AllocCost inflates one allocation's cost by the schedule's factor.
	AllocCost
	// RemsetInsert drops one mutator-barrier remembered-set insert.
	RemsetInsert

	numKinds
)

func (k Kind) String() string {
	switch k {
	case MapFrame:
		return "map-frame"
	case ReserveGrant:
		return "reserve-grant"
	case AllocCost:
		return "alloc-cost"
	case RemsetInsert:
		return "remset-insert"
	default:
		return "unknown"
	}
}

// MinGap is the smallest distance between two same-kind fire ordinals in
// any generated schedule. It guarantees that a collector absorbing a
// fault with one bounded retry (the degradation ladder retries a vetoed
// reserve grant exactly once) never hits a second injected fault on the
// retry itself.
const MinGap = 8

// DefaultHorizon is the schedule horizon callers use when they have no
// better estimate of a run's per-kind call volume: dense enough (one
// fault per ~256 calls) that short runs still see several faults of
// every kind, sparse enough that long runs aren't dominated by them.
const DefaultHorizon = 1 << 14

// Schedule is a deterministic fault plan: for each kind, the strictly
// increasing 1-based call ordinals at which that fault fires, plus the
// cost factor applied by AllocCost faults.
type Schedule struct {
	Seed       int64
	Ordinals   [numKinds][]uint64
	CostFactor float64
}

// NewSchedule derives a schedule from seed, spreading max(4, horizon/256)
// fire ordinals per kind across roughly the first horizon calls of that
// kind. Consecutive same-kind ordinals are at least MinGap apart.
func NewSchedule(seed int64, horizon int) *Schedule {
	if horizon < 1 {
		horizon = 1
	}
	n := horizon / 256
	if n < 4 {
		n = 4
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, CostFactor: 1 + 7*rng.Float64()}
	spread := horizon / n
	if spread < MinGap {
		spread = MinGap
	}
	for k := Kind(0); k < numKinds; k++ {
		ords := make([]uint64, 0, n)
		ord := uint64(0)
		for i := 0; i < n; i++ {
			ord += uint64(MinGap + rng.Intn(spread))
			ords = append(ords, ord)
		}
		s.Ordinals[k] = ords
	}
	return s
}

// Validate checks the schedule invariants the injector and the chaos
// oracle rely on: per-kind ordinals strictly increasing, all ≥ 1, and
// consecutive same-kind ordinals at least MinGap apart.
func (s *Schedule) Validate() error {
	for k := Kind(0); k < numKinds; k++ {
		ords := s.Ordinals[k]
		if !sort.SliceIsSorted(ords, func(i, j int) bool { return ords[i] < ords[j] }) {
			return fmt.Errorf("resilience: %v ordinals not sorted", k)
		}
		for i, o := range ords {
			if o < 1 {
				return fmt.Errorf("resilience: %v ordinal %d < 1", k, o)
			}
			if i > 0 && o-ords[i-1] < MinGap {
				return fmt.Errorf("resilience: %v ordinals %d,%d closer than MinGap=%d",
					k, ords[i-1], o, MinGap)
			}
		}
	}
	return nil
}

// FiredFault records one injected fault for diagnostics.
type FiredFault struct {
	Kind    Kind
	Ordinal uint64
}

// Injector executes a Schedule: it counts calls per kind and fires the
// scheduled ordinals. An Injector is single-run state — build a fresh one
// (over the same Schedule) for every replay so counting restarts at zero.
// Not safe for concurrent use; each run owns its injector.
type Injector struct {
	sched *Schedule
	calls [numKinds]uint64
	next  [numKinds]int
	fired []FiredFault
}

// NewInjector returns an injector over s, which must be non-nil.
func NewInjector(s *Schedule) *Injector {
	if s == nil {
		panic("resilience: NewInjector with nil schedule")
	}
	return &Injector{sched: s}
}

// fire advances kind k's call counter and reports whether this ordinal is
// scheduled to fault.
func (in *Injector) fire(k Kind) bool {
	in.calls[k]++
	ords := in.sched.Ordinals[k]
	if i := in.next[k]; i < len(ords) && in.calls[k] == ords[i] {
		in.next[k]++
		in.fired = append(in.fired, FiredFault{Kind: k, Ordinal: ords[i]})
		return true
	}
	return false
}

// Calls returns how many times kind k's injection point has been
// consulted.
func (in *Injector) Calls(k Kind) uint64 { return in.calls[k] }

// TotalFired returns the number of faults injected so far.
func (in *Injector) TotalFired() int { return len(in.fired) }

// Fired returns the injected-fault log, oldest first. The returned slice
// is the injector's own; callers must not mutate it.
func (in *Injector) Fired() []FiredFault { return in.fired }

// Hooks adapts the injector to the collector-facing gc.FaultHooks
// contract: gate hooks return false (veto) on scheduled ordinals,
// AllocCost returns the schedule's cost factor on its ordinals and 0
// otherwise.
func (in *Injector) Hooks() *gc.FaultHooks {
	return &gc.FaultHooks{
		MapFrame:     func() bool { return !in.fire(MapFrame) },
		ReserveGrant: func() bool { return !in.fire(ReserveGrant) },
		AllocCost: func() float64 {
			if in.fire(AllocCost) {
				return in.sched.CostFactor
			}
			return 0
		},
		RemsetInsert: func() bool { return !in.fire(RemsetInsert) },
	}
}
