package farm

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"

	"beltway/internal/engine"
)

// GenesisHash is the prev_hash of the first ledger entry.
var GenesisHash = hexZeros(sha256.Size)

func hexZeros(n int) string { return hex.EncodeToString(make([]byte, n)) }

// Entry is one line of LEDGER.jsonl: a completed run bound to its exact
// recipe (Spec), the binary that produced it, and a digest of its result
// artifact — hash-chained to the previous entry so the record sequence
// cannot be reordered, dropped from the middle, or rewritten without
// breaking every later hash.
type Entry struct {
	Index      int            `json:"index"`
	PrevHash   string         `json:"prev_hash"`
	Spec       JobSpec        `json:"spec"`
	Outcome    engine.Outcome `json:"outcome"`
	Attempts   int            `json:"attempts,omitempty"`
	BinaryHash string         `json:"binary_hash"`
	// Artifact is the run's payload file, relative to the farm out dir.
	Artifact string `json:"artifact"`
	// ResultDigest is the sha256 of the artifact bytes — the canonical
	// payload serialization, so replaying the spec must reproduce it.
	ResultDigest string `json:"result_digest"`
	// Hash covers this entry serialized with Hash itself empty.
	Hash string `json:"hash"`
}

// EntryHash computes the hash field of an entry: sha256 over the entry's
// canonical JSON with Hash blanked.
func EntryHash(e Entry) (string, error) {
	e.Hash = ""
	b, err := json.Marshal(e)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Ledger is an open, append-only hash-chained record file. Appends are
// serialized and fsynced, so a crash can lose at most the line being
// written — which OpenLedger detects as a torn tail and truncates.
type Ledger struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	next     int               // next index
	lastHash string            // hash of the final entry (GenesisHash when empty)
	keys     map[string]*Entry // entries by Spec.Key().String()
}

// OpenLedger opens (creating if absent) a ledger for appending and loads
// its existing entries. A final line that does not parse — a torn write
// from an orchestrator killed mid-append — is truncated away with the
// returned note; an unparsable or chain-breaking line anywhere else is
// corruption and an error, because appending after it would silently
// launder a damaged history.
func OpenLedger(path string) (*Ledger, string, error) {
	entries, tornAt, err := readEntries(path, true)
	if err != nil {
		return nil, "", err
	}
	note := ""
	if tornAt >= 0 {
		if terr := os.Truncate(path, int64(tornAt)); terr != nil {
			return nil, "", fmt.Errorf("farm: truncating torn ledger tail: %w", terr)
		}
		note = fmt.Sprintf("farm: %s: truncated torn final line (orchestrator was killed mid-append); %d intact entries retained", path, len(entries))
	}
	l := &Ledger{path: path, lastHash: GenesisHash, keys: map[string]*Entry{}}
	for i := range entries {
		e := &entries[i]
		l.keys[e.Spec.Key().String()] = e
		l.lastHash = e.Hash
		l.next = e.Index + 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, "", err
	}
	l.f = f
	return l, note, nil
}

// Len returns the number of entries.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.keys)
}

// Has reports whether a run with this key is already ledgered.
func (l *Ledger) Has(key engine.Key) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.keys[key.String()] != nil
}

// Append chains and durably writes an entry for the given run, unless
// its key is already present (the exactly-once guarantee across resumes:
// the engine replays completed records through OnRecord, and the ledger
// absorbs the duplicates). Index, PrevHash and Hash are assigned here;
// the caller fills every other field. Returns whether the entry was
// appended.
func (l *Ledger) Append(e Entry) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return false, fmt.Errorf("farm: ledger %s is closed", l.path)
	}
	k := e.Spec.Key().String()
	if l.keys[k] != nil {
		return false, nil
	}
	e.Index = l.next
	e.PrevHash = l.lastHash
	h, err := EntryHash(e)
	if err != nil {
		return false, err
	}
	e.Hash = h
	line, err := json.Marshal(e)
	if err != nil {
		return false, err
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return false, err
	}
	if err := l.f.Sync(); err != nil {
		return false, err
	}
	l.keys[k] = &e
	l.lastHash = e.Hash
	l.next = e.Index + 1
	return true, nil
}

// Close releases the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}

// ReadLedger strictly reads and chain-verifies a ledger file: every line
// must parse, indices must run 0,1,2,…, each prev_hash must equal the
// previous entry's hash (GenesisHash for the first), and each entry's
// hash must recompute. Any violation — including a torn tail, which an
// auditor must see rather than silently skip — is an error naming the
// line.
func ReadLedger(path string) ([]Entry, error) {
	entries, _, err := readEntries(path, false)
	if err != nil {
		return nil, err
	}
	prev := GenesisHash
	for i := range entries {
		e := &entries[i]
		if e.Index != i {
			return nil, fmt.Errorf("farm: %s entry %d: index %d out of sequence", path, i, e.Index)
		}
		if e.PrevHash != prev {
			return nil, fmt.Errorf("farm: %s entry %d: prev_hash does not chain to entry %d", path, i, i-1)
		}
		h, herr := EntryHash(*e)
		if herr != nil {
			return nil, herr
		}
		if h != e.Hash {
			return nil, fmt.Errorf("farm: %s entry %d: hash mismatch (entry was modified after it was written)", path, i)
		}
		prev = e.Hash
	}
	return entries, nil
}

// readEntries parses a ledger file. When allowTorn is set, a final line
// that fails to parse is reported via the returned byte offset (-1 when
// none) instead of an error; parse failures elsewhere are always errors.
func readEntries(path string, allowTorn bool) ([]Entry, int, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, -1, nil
	}
	if err != nil {
		return nil, -1, err
	}
	defer f.Close()
	var entries []Entry
	r := bufio.NewReaderSize(f, 1<<16)
	offset := 0
	for lineNo := 1; ; lineNo++ {
		line, rerr := r.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var e Entry
			if jerr := json.Unmarshal(trimmed, &e); jerr != nil {
				atEOF := rerr == io.EOF
				if !atEOF {
					// Peek: is anything non-blank left? If so the bad line is
					// mid-file corruption even in torn-tolerant mode.
					rest, _ := io.ReadAll(r)
					atEOF = len(bytes.TrimSpace(rest)) == 0
				}
				if allowTorn && atEOF {
					return entries, offset, nil
				}
				return nil, -1, fmt.Errorf("farm: %s line %d: unparsable ledger entry: %v", path, lineNo, jerr)
			}
			entries = append(entries, e)
		}
		offset += len(line)
		if rerr == io.EOF {
			return entries, -1, nil
		}
		if rerr != nil {
			return nil, -1, rerr
		}
	}
}
