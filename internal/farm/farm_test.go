package farm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"beltway/internal/engine"
	"beltway/internal/harness"
	"beltway/internal/telemetry"
)

// TestMain doubles as the farm worker for the end-to-end tests: when
// FARM_TEST_WORKER is set the test binary runs a ServeWorker loop,
// optionally self-SIGKILLing on its FARM_TEST_DIE_AFTER-th request.
func TestMain(m *testing.M) {
	if os.Getenv("FARM_TEST_WORKER") != "" {
		die, _ := strconv.Atoi(os.Getenv("FARM_TEST_DIE_AFTER"))
		if err := ServeWorker(os.Stdin, os.Stdout, WorkerOpts{DieAfter: die}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func testGrid() Grid {
	return Grid{
		Collectors:  []string{"appel", "25.25.100"},
		Benchmarks:  []string{"jess"},
		HeapFactors: []float64{2, 3},
		Env:         harness.EnvForScale(0.1),
	}
}

// workerCommand re-execs this test binary in worker mode. dieAfterFirst,
// when positive, arms only the first-spawned worker to self-SIGKILL on
// its dieAfterFirst-th request, so respawned replacements survive.
func workerCommand(t *testing.T, dieAfterFirst int) func(int) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(spawn int) *exec.Cmd {
		c := exec.Command(exe)
		c.Env = append(os.Environ(), "FARM_TEST_WORKER=1")
		if dieAfterFirst > 0 && spawn == 0 {
			c.Env = append(c.Env, fmt.Sprintf("FARM_TEST_DIE_AFTER=%d", dieAfterFirst))
		}
		return c
	}
}

func runFarm(t *testing.T, dir string, dieAfterFirst int, resume bool) (*Summary, *telemetry.FarmMetrics) {
	t.Helper()
	metrics := telemetry.NewFarmMetrics(telemetry.NewRegistry())
	sum, err := Run(Config{
		Grid:          testGrid(),
		OutDir:        dir,
		Workers:       2,
		Resume:        resume,
		WorkerCommand: workerCommand(t, dieAfterFirst),
		Metrics:       metrics,
	})
	if err != nil {
		t.Fatalf("farm run in %s: %v", dir, err)
	}
	return sum, metrics
}

// TestFarmEndToEnd: a small grid over two worker processes completes,
// every run lands in the ledger, verification (chain, digests, and a
// sampled byte-identical replay) passes, and the report renders from the
// verified records.
func TestFarmEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sum, _ := runFarm(t, dir, 0, false)
	if sum.Failed != 0 || sum.Completed != sum.Jobs || sum.Jobs != 4 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.LedgerEntries != 4 {
		t.Fatalf("ledger has %d entries, want 4", sum.LedgerEntries)
	}
	vr, err := Verify(dir, 2, nil)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if vr.Entries != 4 || vr.Replayed != 2 || vr.BinaryMismatches != 0 {
		t.Fatalf("verify result %+v", vr)
	}
	rep, err := Report(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "jess") || !strings.Contains(rep, "4 ledger-verified") {
		t.Fatalf("report:\n%s", rep)
	}
}

// TestFarmWorkerKilledMidJob is the kill-resilience proof: the first
// worker SIGKILLs itself on its first job, the engine requeues exactly
// that job (Attempts=2) onto a respawned worker, and the final ledger is
// result-identical — and the report byte-identical — to an uninterrupted
// farm over the same grid.
func TestFarmWorkerKilledMidJob(t *testing.T) {
	clean := t.TempDir()
	runFarm(t, clean, 0, false)

	crashed := t.TempDir()
	sum, metrics := runFarm(t, crashed, 1, false)
	if sum.Failed != 0 || sum.Completed != 4 {
		t.Fatalf("crashed-worker summary %+v", sum)
	}
	if sum.WorkerCrashes != 1 {
		t.Fatalf("want exactly 1 worker crash, got %d", sum.WorkerCrashes)
	}
	if got := metrics.JobsRetried.Value(); got != 1 {
		t.Fatalf("want exactly 1 requeued job, got %d", got)
	}
	if sum.WorkerSpawns < 3 {
		t.Fatalf("want a respawn after the kill (>=3 spawns for 2 slots), got %d", sum.WorkerSpawns)
	}

	entries, err := ReadLedger(filepath.Join(crashed, LedgerFile))
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for _, e := range entries {
		if e.Attempts > 0 {
			retried++
			if e.Attempts != 2 {
				t.Fatalf("requeued job recorded %d attempts, want 2", e.Attempts)
			}
		}
	}
	if retried != 1 {
		t.Fatalf("%d ledger entries carry retry attempts, want exactly 1", retried)
	}

	// Result identity with the uninterrupted farm: same keys, same digests.
	cleanEntries, err := ReadLedger(filepath.Join(clean, LedgerFile))
	if err != nil {
		t.Fatal(err)
	}
	digests := func(es []Entry) map[string]string {
		m := map[string]string{}
		for _, e := range es {
			m[e.Spec.Key().String()] = e.ResultDigest
		}
		return m
	}
	cd, kd := digests(cleanEntries), digests(entries)
	if len(cd) != len(kd) {
		t.Fatalf("entry counts differ: %d vs %d", len(cd), len(kd))
	}
	for k, d := range cd {
		if kd[k] != d {
			t.Fatalf("digest for %s differs after worker kill", k)
		}
	}
	repClean, err := Report(clean)
	if err != nil {
		t.Fatal(err)
	}
	repCrashed, err := Report(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if repClean != repCrashed {
		t.Fatalf("reports differ after worker kill:\n--- clean ---\n%s\n--- crashed ---\n%s", repClean, repCrashed)
	}
	if _, err := Verify(crashed, 1, nil); err != nil {
		t.Fatalf("verify after worker kill: %v", err)
	}
}

// TestFarmResumeAfterOrchestratorCrash: kill the orchestrator after the
// checkpoint committed a run but mid-ledger-append (torn final line).
// Resume must re-execute nothing, restore the lost ledger entry from the
// checkpointed record, and produce a ledger byte-identical to the
// uninterrupted one.
func TestFarmResumeAfterOrchestratorCrash(t *testing.T) {
	ref := t.TempDir()
	runFarm(t, ref, 0, false)

	// Reconstruct the crash scene in a copy: full checkpoint and
	// artifacts, ledger cut to a torn final line.
	crash := t.TempDir()
	copyFile(t, filepath.Join(ref, CheckpointFile), filepath.Join(crash, CheckpointFile))
	os.MkdirAll(filepath.Join(crash, runsDir), 0o755)
	arts, _ := os.ReadDir(filepath.Join(ref, runsDir))
	for _, a := range arts {
		copyFile(t, filepath.Join(ref, runsDir, a.Name()), filepath.Join(crash, runsDir, a.Name()))
	}
	refLedger, err := os.ReadFile(filepath.Join(ref, LedgerFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(refLedger, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("reference ledger too short: %d lines", len(lines))
	}
	var torn bytes.Buffer
	for _, ln := range lines[:len(lines)-2] { // all but the last full line
		torn.Write(ln)
	}
	last := lines[len(lines)-2]
	torn.Write(last[:len(last)/2]) // half the final line, no newline
	if err := os.WriteFile(filepath.Join(crash, LedgerFile), torn.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	sum, _ := runFarm(t, crash, 0, true)
	if sum.Resumed != sum.Jobs || sum.Jobs != 4 {
		t.Fatalf("resume re-executed work: %+v", sum)
	}
	if sum.Invalidated != 0 {
		t.Fatalf("resume invalidated %d records with an unchanged binary and grid", sum.Invalidated)
	}
	if sum.LedgerEntries != 4 {
		t.Fatalf("resumed ledger has %d entries, want 4", sum.LedgerEntries)
	}
	got, err := os.ReadFile(filepath.Join(crash, LedgerFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refLedger) {
		t.Fatalf("resumed ledger is not byte-identical to the uninterrupted one:\n--- ref ---\n%s\n--- resumed ---\n%s", refLedger, got)
	}
	if _, err := Verify(crash, 0, nil); err != nil {
		t.Fatalf("verify after resume: %v", err)
	}
}

// TestFarmFreshDirRefusesExistingLedger: without -resume, an out dir that
// already holds ledger entries is refused — append-only means starting
// over needs a fresh directory.
func TestFarmFreshDirRefusesExistingLedger(t *testing.T) {
	dir := t.TempDir()
	runFarm(t, dir, 0, false)
	_, err := Run(Config{
		Grid:          testGrid(),
		OutDir:        dir,
		Workers:       1,
		WorkerCommand: workerCommand(t, 0),
	})
	if err == nil || !strings.Contains(err.Error(), "append-only") {
		t.Fatalf("fresh run over an existing ledger: %v", err)
	}
}

// TestVerifyDetectsArtifactTamper: flipping bytes in a run artifact must
// fail verification (the ledger digest no longer matches) and block the
// report.
func TestVerifyDetectsArtifactTamper(t *testing.T) {
	dir := t.TempDir()
	runFarm(t, dir, 0, false)
	entries, err := ReadLedger(filepath.Join(dir, LedgerFile))
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, filepath.FromSlash(entries[0].Artifact))
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	os.WriteFile(target, data, 0o644)

	if _, err := Verify(dir, 0, nil); err == nil || !strings.Contains(err.Error(), "result_digest") {
		t.Fatalf("tampered artifact not detected: %v", err)
	}
	if _, err := Report(dir); err == nil {
		t.Fatal("report rendered from a tampered artifact")
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGridValidate covers the upfront grid checks.
func TestGridValidate(t *testing.T) {
	good := testGrid()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		tweak func(*Grid)
	}{
		{"no collectors", func(g *Grid) { g.Collectors = nil }},
		{"bad collector", func(g *Grid) { g.Collectors = []string{"nonsense"} }},
		{"no benchmarks", func(g *Grid) { g.Benchmarks = nil }},
		{"unknown benchmark", func(g *Grid) { g.Benchmarks = []string{"quake"} }},
		{"no factors", func(g *Grid) { g.HeapFactors = nil }},
		{"negative factor", func(g *Grid) { g.HeapFactors = []float64{-1} }},
		{"sharded adapt", func(g *Grid) { g.Env.Mutators = 2; g.Env.Policy = "slo" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := testGrid()
			tc.tweak(&g)
			if err := g.Validate(); err == nil {
				t.Fatalf("grid %+v accepted", g)
			}
		})
	}
}

// TestBuildSpecsDedup: factors that round to the same frame-aligned heap
// produce one spec, and spec keys are unique.
func TestBuildSpecsDedup(t *testing.T) {
	g := testGrid()
	g.HeapFactors = []float64{2, 1.9999999, 3}
	mins := map[string]int{"jess": 1 << 20}
	specs, err := BuildSpecs(g, mins)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 { // 2 collectors × {2,3}; 1.9999999 rounds up into 2
		t.Fatalf("got %d specs: %+v", len(specs), specs)
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		k := sp.Key().String()
		if seen[k] {
			t.Fatalf("duplicate key %s", k)
		}
		seen[k] = true
		if sp.HeapBytes%g.Env.FrameBytes != 0 {
			t.Fatalf("heap %d not frame-aligned", sp.HeapBytes)
		}
	}
}

// TestWorkerRejectsBadSpec: a deterministic worker-side failure travels
// back as a job error, not a crash — the engine records it without retry.
func TestWorkerRejectsBadSpec(t *testing.T) {
	pool := engine.NewProcPool(engine.ProcConfig{
		Workers: 1,
		Command: workerCommand(t, 0),
	})
	defer pool.Close()
	_, err := pool.Do([]byte(`{"collector":"nonsense","benchmark":"jess","heap_bytes":1048576,"env":{}}`))
	if err == nil || !strings.Contains(err.Error(), "unrecognized configuration") {
		t.Fatalf("bad collector spec: %v", err)
	}
	var ce *engine.CrashError
	if errors.As(err, &ce) {
		t.Fatalf("deterministic failure classified as crash: %v", err)
	}
}
