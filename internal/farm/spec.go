// Package farm fans the experiment suite out over worker OS processes
// with per-process fault isolation, and records every completed run in an
// append-only, hash-chained ledger that can be verified — and sampled
// runs re-executed byte-identically — after the fact.
//
// The farm composes three existing layers rather than reimplementing
// them: internal/engine supplies scheduling, checkpoint/resume, and the
// transient-retry path; engine.ProcPool supplies the process transport
// and crash classification; internal/harness supplies the measurement
// itself plus its canonical payload serialization. What the farm adds is
// the job vocabulary (JobSpec: a run described entirely by strings and
// numbers, so it can cross a process boundary and be replayed years
// later) and the ledger.
package farm

import (
	"fmt"
	"sort"

	"beltway/internal/collectors"
	"beltway/internal/engine"
	"beltway/internal/harness"
	"beltway/internal/workload"
)

// Experiment tags farm measurement jobs in engine keys and checkpoints.
const Experiment = "farm"

// minHeapExperiment tags the per-benchmark minimum-heap searches the farm
// runs in-process before building its grid.
const minHeapExperiment = "farm-minheap"

// JobSpec describes one run completely and portably: the collector by
// its command-line spelling (collectors.Parse syntax), the benchmark by
// name, the exact heap size, and the full environment. A JobSpec is the
// farm's IPC request, its checkpoint key, and — stored in the ledger —
// the recipe a verifier replays.
type JobSpec struct {
	Collector string      `json:"collector"`
	Benchmark string      `json:"benchmark"`
	HeapBytes int         `json:"heap_bytes"`
	Env       harness.Env `json:"env"`
}

// Key returns the engine checkpoint key for the spec.
func (s JobSpec) Key() engine.Key {
	return engine.Key{
		Experiment: Experiment,
		Collector:  s.Collector,
		Benchmark:  s.Benchmark,
		HeapBytes:  s.HeapBytes,
	}
}

// Grid is the cross-product a farm run sweeps: collectors × benchmarks ×
// heap factors (multiples of each benchmark's Appel minimum heap, as in
// the paper's figures).
type Grid struct {
	Collectors  []string    `json:"collectors"`
	Benchmarks  []string    `json:"benchmarks"`
	HeapFactors []float64   `json:"heap_factors"`
	Env         harness.Env `json:"env"`
}

// Validate rejects a grid the farm could not run: unknown benchmarks,
// unparsable collector specs, non-positive heap factors, or an
// environment the runtime would reject. Collector specs are checked by
// parsing them at a nominal heap size.
func (g Grid) Validate() error {
	if len(g.Collectors) == 0 {
		return fmt.Errorf("farm: no collectors")
	}
	if len(g.Benchmarks) == 0 {
		return fmt.Errorf("farm: no benchmarks")
	}
	if len(g.HeapFactors) == 0 {
		return fmt.Errorf("farm: no heap factors")
	}
	for _, spec := range g.Collectors {
		if _, err := collectors.Parse(spec, nominalOptions(g.Env)); err != nil {
			return fmt.Errorf("farm: %w", err)
		}
	}
	for _, b := range g.Benchmarks {
		if workload.Get(b) == nil {
			return fmt.Errorf("farm: unknown benchmark %q (want one of %v)", b, workload.Names())
		}
	}
	for _, f := range g.HeapFactors {
		if f <= 0 {
			return fmt.Errorf("farm: heap factor %v must be positive", f)
		}
	}
	return harness.ValidateEnv(g.Env, false)
}

func nominalOptions(env harness.Env) collectors.Options {
	return collectors.Options{
		HeapBytes:    16 << 20,
		FrameBytes:   env.FrameBytes,
		PhysMemBytes: env.PhysMemBytes,
	}
}

// BuildSpecs expands a grid into job specs, given each benchmark's
// minimum heap. Heap sizes are factor×min rounded up to a whole frame (so
// resumed runs rebuild identical keys regardless of float formatting),
// and specs that round to the same key are deduplicated. Order is
// deterministic: benchmark-major, then collector, then factor.
func BuildSpecs(g Grid, mins map[string]int) ([]JobSpec, error) {
	frame := g.Env.FrameBytes
	if frame <= 0 {
		return nil, fmt.Errorf("farm: grid env has no frame size (use harness.EnvForScale)")
	}
	var specs []JobSpec
	seen := map[string]bool{}
	for _, b := range g.Benchmarks {
		min, ok := mins[b]
		if !ok || min <= 0 {
			return nil, fmt.Errorf("farm: no minimum heap for benchmark %q", b)
		}
		factors := append([]float64(nil), g.HeapFactors...)
		sort.Float64s(factors)
		for _, c := range g.Collectors {
			for _, f := range factors {
				heap := int(f * float64(min))
				heap = ((heap + frame - 1) / frame) * frame
				if heap < 2*frame {
					heap = 2 * frame
				}
				sp := JobSpec{Collector: c, Benchmark: b, HeapBytes: heap, Env: g.Env}
				k := sp.Key().String()
				if seen[k] {
					continue
				}
				seen[k] = true
				specs = append(specs, sp)
			}
		}
	}
	return specs, nil
}

// ExecuteSpec runs one spec and returns the canonical payload bytes —
// exactly the bytes the engine checkpoints and the ledger digests, so a
// replay can demand byte identity. The error return is reserved for
// misconfiguration; OOM and budget aborts are outcomes, not errors.
func ExecuteSpec(spec JobSpec) ([]byte, engine.Outcome, error) {
	bench := workload.Get(spec.Benchmark)
	if bench == nil {
		return nil, "", fmt.Errorf("farm: unknown benchmark %q", spec.Benchmark)
	}
	cfg, err := collectors.Parse(spec.Collector, collectors.Options{
		HeapBytes:    spec.HeapBytes,
		FrameBytes:   spec.Env.FrameBytes,
		PhysMemBytes: spec.Env.PhysMemBytes,
	})
	if err != nil {
		return nil, "", fmt.Errorf("farm: %w", err)
	}
	res, err := harness.RunOne(cfg, bench, spec.Env)
	if err != nil {
		return nil, "", err
	}
	out := engine.OK
	switch {
	case res.OOM:
		out = engine.OOM
	case res.Aborted:
		out = engine.Budget
	}
	payload, err := harness.MarshalRunPayload(res)
	if err != nil {
		return nil, "", err
	}
	return payload, out, nil
}
