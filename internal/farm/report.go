package farm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"beltway/internal/harness"
)

// Report renders paper-ready per-benchmark tables from a farm out dir,
// using ledger-verified records only: the chain is checked and every
// artifact re-hashed against its ledger digest before a single number is
// printed, so a tampered or torn record can never reach a table.
func Report(outDir string) (string, error) {
	entries, err := ReadLedger(filepath.Join(outDir, LedgerFile))
	if err != nil {
		return "", err
	}
	if len(entries) == 0 {
		return "", fmt.Errorf("farm: %s holds no ledger entries", outDir)
	}
	byBench := map[string][]*harness.Result{}
	var benches []string
	for i := range entries {
		e := &entries[i]
		payload, rerr := os.ReadFile(filepath.Join(outDir, filepath.FromSlash(e.Artifact)))
		if rerr != nil {
			return "", fmt.Errorf("farm: entry %d (%s): artifact missing: %v", e.Index, e.Spec.Key(), rerr)
		}
		if harness.PayloadDigest(payload) != e.ResultDigest {
			return "", fmt.Errorf("farm: entry %d (%s): artifact does not match its ledger digest; refusing to report unverified data",
				e.Index, e.Spec.Key())
		}
		var p harness.RunPayload
		if uerr := json.Unmarshal(payload, &p); uerr != nil || p.Result == nil {
			return "", fmt.Errorf("farm: entry %d (%s): undecodable artifact: %v", e.Index, e.Spec.Key(), uerr)
		}
		b := e.Spec.Benchmark
		if _, ok := byBench[b]; !ok {
			benches = append(benches, b)
		}
		byBench[b] = append(byBench[b], p.Result)
	}
	sort.Strings(benches)

	var sb strings.Builder
	fmt.Fprintf(&sb, "Experiment farm report: %d ledger-verified run(s)\n", len(entries))
	for _, b := range benches {
		results := byBench[b]
		sort.Slice(results, func(i, j int) bool {
			if results[i].Collector != results[j].Collector {
				return results[i].Collector < results[j].Collector
			}
			return results[i].HeapBytes < results[j].HeapBytes
		})
		t := harness.ResultsTable(results)
		fmt.Fprintf(&sb, "\n== %s ==\n%s", b, t.String())
	}
	return sb.String(), nil
}
