package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/engine"
	"beltway/internal/generational"
	"beltway/internal/harness"
	"beltway/internal/telemetry"
	"beltway/internal/workload"
)

// LedgerFile is the ledger's filename inside a farm out dir.
const LedgerFile = "LEDGER.jsonl"

// CheckpointFile is the engine checkpoint's filename inside an out dir.
const CheckpointFile = "checkpoint.jsonl"

// runsDir holds the per-run artifact files inside an out dir.
const runsDir = "runs"

// Config parameterizes a farm run.
type Config struct {
	Grid Grid
	// OutDir receives the ledger, checkpoint, and per-run artifacts.
	OutDir string
	// Workers bounds concurrent worker processes; <= 0 means 2.
	Workers int
	// Resume picks up from OutDir's checkpoint and ledger. Without it,
	// OutDir must not already hold a ledger (the ledger is append-only:
	// starting over means a fresh directory, not a rewrite).
	Resume bool
	// Retries bounds requeues of a job whose worker crashed; < 0 disables,
	// 0 means the default (2).
	Retries int
	// RetryBackoff is the engine's backoff before requeuing (default 0).
	RetryBackoff time.Duration
	// Deadline is the per-job wall-clock bound; a worker that misses it is
	// escalated SIGTERM → SIGKILL and the job retried. 0 means none.
	Deadline time.Duration
	// WorkerCommand builds the spawn-th worker process command; it must
	// run ServeWorker on stdin/stdout. Nil re-execs this binary with the
	// single argument "worker".
	WorkerCommand func(spawn int) *exec.Cmd
	// Progress, if non-nil, receives one line per notable event.
	Progress func(string)
	// Metrics, if non-nil, receives farm counters.
	Metrics *telemetry.FarmMetrics
}

// Summary reports what a farm run did.
type Summary struct {
	Jobs          int `json:"jobs"`
	Completed     int `json:"completed"`
	Failed        int `json:"failed"`
	Resumed       int `json:"resumed"`
	Invalidated   int `json:"invalidated"`
	WorkerSpawns  int `json:"worker_spawns"`
	WorkerCrashes int `json:"worker_crashes"`
	LedgerEntries int `json:"ledger_entries"`
}

// Run executes the grid over worker processes, appending every completed
// run to the out dir's hash-chained ledger. A worker crash (including
// OOM kill and hang escalation) fails only its job, which is requeued
// through the engine's transient-retry path on a respawned worker; a
// killed orchestrator resumes from the checkpoint and ledger with no
// duplicated or lost entries.
func Run(cfg Config) (*Summary, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if cfg.OutDir == "" {
		return nil, fmt.Errorf("farm: no out dir")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = 2
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	if cfg.WorkerCommand == nil {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("farm: cannot locate own binary for worker re-exec: %w", err)
		}
		cfg.WorkerCommand = func(int) *exec.Cmd { return exec.Command(exe, "worker") }
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}

	if err := os.MkdirAll(filepath.Join(cfg.OutDir, runsDir), 0o755); err != nil {
		return nil, err
	}
	ledgerPath := filepath.Join(cfg.OutDir, LedgerFile)
	if !cfg.Resume {
		if fi, err := os.Stat(ledgerPath); err == nil && fi.Size() > 0 {
			return nil, fmt.Errorf("farm: %s already holds a ledger; resume it (-resume) or use a fresh out dir — ledgers are append-only", cfg.OutDir)
		}
	}
	ledger, note, err := OpenLedger(ledgerPath)
	if err != nil {
		return nil, err
	}
	defer ledger.Close()
	if note != "" {
		progress(note)
	}

	binHash, err := engine.BinaryHash()
	if err != nil {
		return nil, fmt.Errorf("farm: %w", err)
	}
	gridJSON, err := json.Marshal(cfg.Grid)
	if err != nil {
		return nil, err
	}
	fingerprint := engine.Fingerprint("farm", binHash, string(gridJSON))

	m := cfg.Metrics
	var (
		ledgerMu  sync.Mutex
		ledgerErr error
	)
	eng := engine.New(engine.Config{
		Workers:      cfg.Workers,
		Checkpoint:   filepath.Join(cfg.OutDir, CheckpointFile),
		Resume:       cfg.Resume,
		Fingerprint:  fingerprint,
		Retries:      cfg.Retries,
		RetryBackoff: cfg.RetryBackoff,
		Progress:     cfg.Progress,
		OnRecord: func(rec engine.Record) {
			if rec.Key.Experiment != Experiment || !rec.Outcome.Completed() {
				return
			}
			if m != nil {
				m.JobsCompleted.Inc()
			}
			appended, err := commitToLedger(cfg.OutDir, ledger, rec, cfg.Grid.Env, binHash)
			if err != nil {
				ledgerMu.Lock()
				if ledgerErr == nil {
					ledgerErr = err
				}
				ledgerMu.Unlock()
			}
			if appended && m != nil {
				m.LedgerEntries.Inc()
			}
		},
	})
	defer eng.Close()
	stopFlush := eng.FlushOnSignal(os.Interrupt, syscall.SIGTERM)
	defer stopFlush()

	pool := engine.NewProcPool(engine.ProcConfig{
		Workers:  cfg.Workers,
		Command:  cfg.WorkerCommand,
		Deadline: cfg.Deadline,
		OnSpawn: func(int) {
			if m != nil {
				m.WorkersSpawned.Inc()
			}
		},
		OnCrash: func(spawn int, kind engine.CrashKind) {
			if m != nil {
				m.WorkersCrashed.Inc()
				if kind == engine.CrashHang {
					m.WorkerKills.Inc()
				}
			}
			progress(fmt.Sprintf("farm: worker %d lost (%s); its job will be requeued", spawn, kind))
		},
	})
	defer pool.Close()

	mins, err := minHeaps(eng, cfg.Grid)
	if err != nil {
		return nil, err
	}
	specs, err := BuildSpecs(cfg.Grid, mins)
	if err != nil {
		return nil, err
	}

	jobs := make([]engine.Job, len(specs))
	for i := range specs {
		spec := specs[i]
		jobs[i] = engine.Job{Key: spec.Key(), Run: func() (any, engine.Outcome, error) {
			req, err := json.Marshal(spec)
			if err != nil {
				return nil, "", err
			}
			resp, err := pool.Do(req)
			if err != nil {
				var ce *engine.CrashError
				if errors.As(err, &ce) {
					if m != nil {
						m.JobsRetried.Inc()
					}
					return nil, "", engine.MarkTransient(err)
				}
				return nil, "", err
			}
			var wr WorkerResult
			if err := json.Unmarshal(resp, &wr); err != nil {
				return nil, "", fmt.Errorf("farm: bad worker reply: %w", err)
			}
			return wr.Payload, wr.Outcome, nil
		}}
	}
	recs, err := eng.Run(jobs)
	if err != nil {
		return nil, err
	}
	if cerr := eng.Close(); cerr != nil {
		return nil, cerr
	}
	if ledgerErr != nil {
		return nil, ledgerErr
	}

	sum := &Summary{
		Jobs:          len(recs),
		Invalidated:   eng.Invalidated(),
		WorkerSpawns:  pool.Spawns(),
		LedgerEntries: ledger.Len(),
	}
	for _, rec := range recs {
		if rec.Outcome.Completed() {
			sum.Completed++
		} else {
			sum.Failed++
		}
		if rec.Resumed {
			sum.Resumed++
		}
	}
	if m != nil {
		sum.WorkerCrashes = int(m.WorkersCrashed.Value())
	}
	return sum, nil
}

// commitToLedger writes the run's artifact file (atomically: temp file
// then rename) and appends its ledger entry. Called for fresh and
// resumed records alike; the ledger's key check makes it idempotent, so
// a crash between checkpoint write and ledger append heals on resume.
// Every spec in one farm run shares the grid environment, so the spec is
// fully reconstructible from the record key plus env.
func commitToLedger(outDir string, ledger *Ledger, rec engine.Record, env harness.Env, binHash string) (bool, error) {
	spec := JobSpec{
		Collector: rec.Key.Collector,
		Benchmark: rec.Key.Benchmark,
		HeapBytes: rec.Key.HeapBytes,
		Env:       env,
	}
	if ledger.Has(spec.Key()) {
		return false, nil
	}
	name := artifactName(rec.Key)
	full := filepath.Join(outDir, runsDir, name)
	tmp := full + ".tmp"
	if err := os.WriteFile(tmp, rec.Payload, 0o644); err != nil {
		return false, err
	}
	if err := os.Rename(tmp, full); err != nil {
		return false, err
	}
	return ledger.Append(Entry{
		Spec:         spec,
		Outcome:      rec.Outcome,
		Attempts:     rec.Attempts,
		BinaryHash:   binHash,
		Artifact:     filepath.Join(runsDir, name),
		ResultDigest: harness.PayloadDigest(rec.Payload),
	})
}

// minHeaps runs (or resumes) the per-benchmark Appel minimum-heap
// searches as in-process engine jobs, checkpointed like everything else.
func minHeaps(eng *engine.Engine, g Grid) (map[string]int, error) {
	type minPayload struct {
		MinHeapBytes int `json:"min_heap_bytes"`
	}
	jobs := make([]engine.Job, len(g.Benchmarks))
	for i, name := range g.Benchmarks {
		bench := workload.Get(name)
		jobs[i] = engine.Job{
			Key: engine.Key{Experiment: minHeapExperiment, Collector: "appel", Benchmark: name},
			Run: func() (any, engine.Outcome, error) {
				min, err := harness.FindMinHeap(appelConfig(g.Env), bench, g.Env)
				if err != nil {
					return nil, "", err
				}
				return minPayload{MinHeapBytes: min}, engine.OK, nil
			},
		}
	}
	recs, err := eng.Run(jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(recs))
	for i, rec := range recs {
		if !rec.Outcome.Completed() {
			return nil, fmt.Errorf("farm: min heap search for %s: %s: %s", g.Benchmarks[i], rec.Outcome, rec.Error)
		}
		var p minPayload
		if uerr := json.Unmarshal(rec.Payload, &p); uerr != nil || p.MinHeapBytes <= 0 {
			return nil, fmt.Errorf("farm: bad min heap record for %s: %v", g.Benchmarks[i], uerr)
		}
		out[g.Benchmarks[i]] = p.MinHeapBytes
	}
	return out, nil
}

// appelConfig curries the Appel baseline over the environment, for the
// minimum-heap searches.
func appelConfig(env harness.Env) harness.ConfigFunc {
	return func(heapBytes int) core.Config {
		return generational.Appel(collectors.Options{
			HeapBytes:    heapBytes,
			FrameBytes:   env.FrameBytes,
			PhysMemBytes: env.PhysMemBytes,
		})
	}
}

// artifactName renders a run key as a filename: experiment, collector,
// benchmark, heap joined with "__", path separators replaced.
func artifactName(k engine.Key) string {
	s := fmt.Sprintf("%s__%s__%s__%d.json", k.Experiment, k.Collector, k.Benchmark, k.HeapBytes)
	return strings.NewReplacer("/", "_", string(filepath.Separator), "_").Replace(s)
}
