package farm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beltway/internal/engine"
)

func testEntry(i int) Entry {
	return Entry{
		Spec:         JobSpec{Collector: "appel", Benchmark: "jess", HeapBytes: (i + 2) * 1 << 20},
		Outcome:      engine.OK,
		BinaryHash:   "deadbeef",
		Artifact:     "runs/x.json",
		ResultDigest: strings.Repeat("ab", 32),
	}
}

func TestLedgerChainAppendAndRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "LEDGER.jsonl")
	l, note, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if note != "" {
		t.Fatalf("fresh ledger produced note %q", note)
	}
	for i := 0; i < 3; i++ {
		ok, err := l.Append(testEntry(i))
		if err != nil || !ok {
			t.Fatalf("append %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Duplicate key: absorbed, not re-appended.
	if ok, err := l.Append(testEntry(1)); err != nil || ok {
		t.Fatalf("duplicate append: ok=%v err=%v", ok, err)
	}
	if !l.Has(testEntry(0).Spec.Key()) {
		t.Fatal("Has misses an appended key")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	l.Close()

	entries, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("read %d entries", len(entries))
	}
	if entries[0].PrevHash != GenesisHash {
		t.Fatalf("genesis prev_hash = %q", entries[0].PrevHash)
	}
	for i := 1; i < 3; i++ {
		if entries[i].PrevHash != entries[i-1].Hash {
			t.Fatalf("entry %d does not chain", i)
		}
	}
}

// TestLedgerTornTailTruncated: an orchestrator killed mid-append leaves a
// partial final line; reopening detects it, truncates it away, and the
// ledger keeps appending from the last intact entry — ending with a chain
// a strict read accepts.
func TestLedgerTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "LEDGER.jsonl")
	l, _, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// The strict reader must refuse the torn file...
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"index":2,"prev_hash":"abc","spec":{"col`)
	f.Close()
	if _, err := ReadLedger(path); err == nil {
		t.Fatal("strict read accepted a torn tail")
	}

	// ...while reopening truncates it and resumes the chain.
	l, note, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "torn final line") {
		t.Fatalf("note %q does not report the torn tail", note)
	}
	if l.Len() != 2 {
		t.Fatalf("Len after truncation = %d, want 2", l.Len())
	}
	if ok, err := l.Append(testEntry(2)); err != nil || !ok {
		t.Fatalf("append after truncation: ok=%v err=%v", ok, err)
	}
	l.Close()
	entries, err := ReadLedger(path)
	if err != nil {
		t.Fatalf("chain broken after torn-tail recovery: %v", err)
	}
	if len(entries) != 3 || entries[2].Index != 2 {
		t.Fatalf("got %d entries, last index %d", len(entries), entries[len(entries)-1].Index)
	}
}

// TestLedgerMidFileCorruptionRefused: a bad line with entries after it is
// not a torn tail — reopening must refuse rather than silently skip it.
func TestLedgerMidFileCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "LEDGER.jsonl")
	l, _, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	corrupt := "garbage not json\n" + lines[1]
	os.WriteFile(path, []byte(lines[0]+corrupt), 0o644)

	if _, _, err := OpenLedger(path); err == nil {
		t.Fatal("OpenLedger accepted mid-file corruption")
	}
	if _, err := ReadLedger(path); err == nil {
		t.Fatal("ReadLedger accepted mid-file corruption")
	}
}

// TestLedgerTamperDetected: editing any field of a committed entry breaks
// its hash; dropping an entry breaks the chain.
func TestLedgerTamperDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "LEDGER.jsonl")
	l, _, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	pristine, _ := os.ReadFile(path)

	// Flip the result digest of the first entry.
	tampered := strings.Replace(string(pristine), strings.Repeat("ab", 32), "ff"+strings.Repeat("ab", 31), 1)
	if tampered == string(pristine) {
		t.Fatal("tamper did not change the file")
	}
	os.WriteFile(path, []byte(tampered), 0o644)
	if _, err := ReadLedger(path); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("tampered digest not detected: %v", err)
	}

	// Drop the middle entry.
	lines := strings.SplitAfter(string(pristine), "\n")
	os.WriteFile(path, []byte(lines[0]+lines[2]), 0o644)
	if _, err := ReadLedger(path); err == nil || !strings.Contains(err.Error(), "out of sequence") {
		t.Fatalf("dropped entry not detected: %v", err)
	}
}
