package farm

import (
	"fmt"
	"os"
	"path/filepath"

	"beltway/internal/engine"
	"beltway/internal/harness"
)

// VerifyResult summarizes a successful verification.
type VerifyResult struct {
	Entries int `json:"entries"`
	// Replayed counts entries re-executed byte-identically.
	Replayed int `json:"replayed"`
	// BinaryMismatches counts entries produced by a different binary than
	// the verifier — a warning, not a failure: the chain and digests still
	// hold, but replay is only attempted for entries from this binary.
	BinaryMismatches int `json:"binary_mismatches"`
}

// Verify audits a farm out dir: the ledger chain must be intact
// (ReadLedger), every entry's artifact must exist and hash to its
// result_digest, and — when replay > 0 — up to that many entries,
// stride-sampled across the ledger, are re-executed and must reproduce
// their artifact bytes exactly. Any violation is an error naming the
// entry.
func Verify(outDir string, replay int, progress func(string)) (*VerifyResult, error) {
	if progress == nil {
		progress = func(string) {}
	}
	entries, err := ReadLedger(filepath.Join(outDir, LedgerFile))
	if err != nil {
		return nil, err
	}
	res := &VerifyResult{Entries: len(entries)}
	binHash, err := engine.BinaryHash()
	if err != nil {
		return nil, fmt.Errorf("farm: %w", err)
	}
	for i := range entries {
		e := &entries[i]
		payload, rerr := os.ReadFile(filepath.Join(outDir, filepath.FromSlash(e.Artifact)))
		if rerr != nil {
			return nil, fmt.Errorf("farm: entry %d (%s): artifact missing: %v", e.Index, e.Spec.Key(), rerr)
		}
		if got := harness.PayloadDigest(payload); got != e.ResultDigest {
			return nil, fmt.Errorf("farm: entry %d (%s): artifact %s does not match result_digest (artifact or ledger was modified)",
				e.Index, e.Spec.Key(), e.Artifact)
		}
		if e.BinaryHash != binHash {
			res.BinaryMismatches++
		}
	}
	progress(fmt.Sprintf("farm: chain and %d artifact digest(s) verified", len(entries)))
	if res.BinaryMismatches > 0 {
		progress(fmt.Sprintf("farm: warning: %d entr%s produced by a different binary; replay skips them",
			res.BinaryMismatches, plural(res.BinaryMismatches, "y was", "ies were")))
	}

	if replay > 0 && len(entries) > 0 {
		var candidates []*Entry
		for i := range entries {
			if entries[i].BinaryHash == binHash {
				candidates = append(candidates, &entries[i])
			}
		}
		if len(candidates) == 0 && res.BinaryMismatches > 0 {
			return nil, fmt.Errorf("farm: replay requested but no ledger entry matches this binary (rebuilt since the run?)")
		}
		stride := 1
		if len(candidates) > replay {
			stride = len(candidates) / replay
		}
		for i := 0; i < len(candidates) && res.Replayed < replay; i += stride {
			e := candidates[i]
			payload, out, rerr := ExecuteSpec(e.Spec)
			if rerr != nil {
				return nil, fmt.Errorf("farm: entry %d (%s): replay failed: %v", e.Index, e.Spec.Key(), rerr)
			}
			if out != e.Outcome {
				return nil, fmt.Errorf("farm: entry %d (%s): replay outcome %s, ledger says %s", e.Index, e.Spec.Key(), out, e.Outcome)
			}
			if got := harness.PayloadDigest(payload); got != e.ResultDigest {
				return nil, fmt.Errorf("farm: entry %d (%s): replay is not byte-identical to the ledgered result", e.Index, e.Spec.Key())
			}
			res.Replayed++
			progress(fmt.Sprintf("farm: replayed entry %d (%s): byte-identical", e.Index, e.Spec.Key()))
		}
	}
	return res, nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
