package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"syscall"
	"time"

	"beltway/internal/engine"
)

// WorkerResult is the worker's reply for one executed spec: the refined
// outcome plus the canonical payload bytes. Deterministic failures
// (misconfiguration) travel as protocol-level errors instead, so the
// orchestrator records them without retrying; process-level failures
// never produce a reply at all — the orchestrator sees the crash.
type WorkerResult struct {
	Outcome engine.Outcome  `json:"outcome"`
	Payload json.RawMessage `json:"payload"`
}

// WorkerOpts parameterizes ServeWorker.
type WorkerOpts struct {
	// DieAfter, when positive, makes the worker SIGKILL itself upon
	// receiving its DieAfter-th request, before executing it — a
	// deterministic stand-in for an OOM-killed or crashing worker, used by
	// the kill-resilience tests and the CI farm-smoke job.
	DieAfter int
}

// ServeWorker runs the farm worker loop: decode a JobSpec per request,
// execute it, reply with a WorkerResult. It returns when the request
// stream closes (the orchestrator exiting) or becomes undecodable.
func ServeWorker(r io.Reader, w io.Writer, opts WorkerOpts) error {
	served := 0
	return engine.ServeProc(r, w, func(req json.RawMessage) (json.RawMessage, error) {
		served++
		if opts.DieAfter > 0 && served >= opts.DieAfter {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			time.Sleep(time.Hour) // unreachable; SIGKILL is not handled
		}
		var spec JobSpec
		if err := json.Unmarshal(req, &spec); err != nil {
			return nil, fmt.Errorf("farm worker: bad spec: %w", err)
		}
		payload, out, err := ExecuteSpec(spec)
		if err != nil {
			return nil, err
		}
		return json.Marshal(WorkerResult{Outcome: out, Payload: payload})
	})
}
