// Package vm is the mutator facade: the typed, handle-based API that the
// workloads use to build and mutate object graphs on any gc.Collector.
// It plays the role of the application + runtime interface in Jikes RVM:
// every pointer store goes through the collector's write barrier, every
// potentially-collecting operation deals in stable handles rather than
// raw (movable) addresses, and an optional shadow-graph validator checks
// collector correctness after every collection.
package vm

import (
	"fmt"

	"beltway/internal/gc"
	"beltway/internal/heap"
)

// oomPanic wraps an out-of-memory error raised inside workload code.
// Workloads are written in direct style (no error plumbing at every
// allocation site, mirroring how Java benchmarks simply throw); Run
// recovers the panic and returns the error.
type oomPanic struct{ err error }

// Recorder captures the mutator event stream (see internal/trace). All
// methods are called after the corresponding operation succeeds.
type Recorder interface {
	Alloc(td *heap.TypeDesc, length int, h gc.Handle, global, immortal bool)
	SetRef(obj gc.Handle, slot int, val gc.Handle)
	GetRef(obj gc.Handle, slot int, out gc.Handle)
	Release(h gc.Handle)
	Push()
	Pop()
	SetData(obj gc.Handle, i int, v uint32)
	GetData(obj gc.Handle, i int)
	Work(n int)
	Collect(full bool)
	Keep(h, out gc.Handle)
	AllocPretenured(td *heap.TypeDesc, length int, h gc.Handle, global bool)
}

// Mutator drives a collector. All object references held across
// allocation points must be gc.Handles; raw addresses are never exposed.
type Mutator struct {
	C     gc.Collector
	V     *Validator // nil unless validation is enabled
	R     Recorder   // nil unless trace recording is attached
	roots *gc.RootSet
}

// SetRecorder attaches (or detaches, with nil) a trace recorder.
func (m *Mutator) SetRecorder(r Recorder) { m.R = r }

// New wraps a collector in a mutator facade.
func New(c gc.Collector) *Mutator {
	return &Mutator{C: c, roots: c.Roots()}
}

// EnableValidation attaches the shadow-graph oracle. It makes runs much
// slower and is intended for tests.
func (m *Mutator) EnableValidation() *Validator {
	m.V = newValidator(m)
	return m.V
}

// Run executes a workload body, converting allocation-failure panics into
// returned errors. All workload entry points go through it.
func (m *Mutator) Run(body func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if p, ok := r.(oomPanic); ok {
				err = p.err
				return
			}
			panic(r)
		}
	}()
	body()
	return nil
}

// fail raises an allocation failure to the nearest Run.
func fail(err error) {
	panic(oomPanic{err})
}

// Push opens a root scope; handles allocated until the matching Pop are
// released automatically. Scopes model mutator stack frames — keep them
// tight, since every live handle slot is scanned at every collection.
func (m *Mutator) Push() {
	m.roots.PushScope()
	if m.R != nil {
		m.R.Push()
	}
}

// Pop closes the innermost root scope.
func (m *Mutator) Pop() {
	m.roots.PopScope()
	if m.R != nil {
		m.R.Pop()
	}
}

// Release drops a handle before its scope closes.
func (m *Mutator) Release(h gc.Handle) {
	m.roots.Remove(h)
	if m.R != nil {
		m.R.Release(h)
	}
}

// Alloc allocates an object of type t (length 0 for scalars) and returns
// a rooted handle in the current scope.
func (m *Mutator) Alloc(t *heap.TypeDesc, length int) gc.Handle {
	a, err := m.C.Alloc(t, length)
	if err != nil {
		fail(err)
	}
	h := m.roots.Add(a)
	if m.V != nil {
		m.V.noteAlloc(a, t, length)
	}
	if m.R != nil {
		m.R.Alloc(t, length, h, false, false)
	}
	return h
}

// AllocGlobal allocates like Alloc but roots the object outside the
// scope discipline: the handle survives Pop and lives until Release.
func (m *Mutator) AllocGlobal(t *heap.TypeDesc, length int) gc.Handle {
	a, err := m.C.Alloc(t, length)
	if err != nil {
		fail(err)
	}
	h := m.roots.AddGlobal(a)
	if m.V != nil {
		m.V.noteAlloc(a, t, length)
	}
	if m.R != nil {
		m.R.Alloc(t, length, h, true, false)
	}
	return h
}

// Keep re-roots the object referenced by h outside the scope discipline
// and returns the durable handle; use it to return a result from a
// scoped computation.
func (m *Mutator) Keep(h gc.Handle) gc.Handle {
	out := m.roots.AddGlobal(m.roots.Get(h))
	if m.R != nil {
		m.R.Keep(h, out)
	}
	return out
}

// AllocPretenured allocates directly on an older belt (allocation-site
// segregation of long-lived objects) and returns a handle in the
// current scope.
func (m *Mutator) AllocPretenured(t *heap.TypeDesc, length int) gc.Handle {
	a, err := m.C.AllocPretenured(t, length)
	if err != nil {
		fail(err)
	}
	h := m.roots.Add(a)
	if m.V != nil {
		m.V.noteAlloc(a, t, length)
	}
	if m.R != nil {
		m.R.AllocPretenured(t, length, h, false)
	}
	return h
}

// AllocPretenuredGlobal is AllocPretenured with a scope-independent root.
func (m *Mutator) AllocPretenuredGlobal(t *heap.TypeDesc, length int) gc.Handle {
	a, err := m.C.AllocPretenured(t, length)
	if err != nil {
		fail(err)
	}
	h := m.roots.AddGlobal(a)
	if m.V != nil {
		m.V.noteAlloc(a, t, length)
	}
	if m.R != nil {
		m.R.AllocPretenured(t, length, h, true)
	}
	return h
}

// AllocImmortal allocates in the boot image and returns a rooted handle.
func (m *Mutator) AllocImmortal(t *heap.TypeDesc, length int) gc.Handle {
	a, err := m.C.AllocImmortal(t, length)
	if err != nil {
		fail(err)
	}
	h := m.roots.Add(a)
	if m.V != nil {
		m.V.noteAlloc(a, t, length)
	}
	if m.R != nil {
		m.R.Alloc(t, length, h, false, true)
	}
	return h
}

// SetRef stores the object referenced by val into reference slot i of the
// object referenced by obj, through the collector's write barrier.
func (m *Mutator) SetRef(obj gc.Handle, i int, val gc.Handle) {
	oa := m.addrOf(obj, "SetRef receiver")
	va := m.roots.Get(val)
	m.C.WriteRef(oa, i, va)
	if m.V != nil {
		m.V.noteSetRef(oa, i, va)
	}
	if m.R != nil {
		m.R.SetRef(obj, i, val)
	}
}

// SetRefNil clears reference slot i of obj.
func (m *Mutator) SetRefNil(obj gc.Handle, i int) {
	oa := m.addrOf(obj, "SetRefNil receiver")
	m.C.WriteRef(oa, i, heap.Nil)
	if m.V != nil {
		m.V.noteSetRef(oa, i, heap.Nil)
	}
	if m.R != nil {
		m.R.SetRef(obj, i, gc.NilHandle)
	}
}

// GetRef loads reference slot i of obj into a fresh handle in the current
// scope. The handle is NilHandle when the slot is nil.
func (m *Mutator) GetRef(obj gc.Handle, i int) gc.Handle {
	oa := m.addrOf(obj, "GetRef receiver")
	a := m.C.ReadRef(oa, i)
	var out gc.Handle
	if a != heap.Nil {
		out = m.roots.Add(a)
	}
	if m.R != nil {
		m.R.GetRef(obj, i, out)
	}
	return out
}

// RefIsNil reports whether reference slot i of obj is nil, without
// creating a handle.
func (m *Mutator) RefIsNil(obj gc.Handle, i int) bool {
	return m.C.ReadRef(m.addrOf(obj, "RefIsNil receiver"), i) == heap.Nil
}

// SameObject reports whether two handles reference the same object.
func (m *Mutator) SameObject(a, b gc.Handle) bool {
	return m.roots.Get(a) == m.roots.Get(b)
}

// SetData writes data word i of obj.
func (m *Mutator) SetData(obj gc.Handle, i int, v uint32) {
	oa := m.addrOf(obj, "SetData receiver")
	m.chargeField()
	m.C.Space().SetData(oa, i, v)
	if m.V != nil {
		m.V.noteSetData(oa, i, v)
	}
	if m.R != nil {
		m.R.SetData(obj, i, v)
	}
}

// GetData reads data word i of obj.
func (m *Mutator) GetData(obj gc.Handle, i int) uint32 {
	m.chargeField()
	v := m.C.Space().GetData(m.addrOf(obj, "GetData receiver"), i)
	if m.R != nil {
		m.R.GetData(obj, i)
	}
	return v
}

// Length returns the array length of obj.
func (m *Mutator) Length(obj gc.Handle) int {
	return m.C.Space().Length(m.addrOf(obj, "Length receiver"))
}

// TypeOf returns the type descriptor of obj.
func (m *Mutator) TypeOf(obj gc.Handle) *heap.TypeDesc {
	return m.C.Space().TypeOf(m.addrOf(obj, "TypeOf receiver"))
}

// Serial returns the allocation serial of obj (stable across moves).
func (m *Mutator) Serial(obj gc.Handle) uint32 {
	return m.C.Space().Serial(m.addrOf(obj, "Serial receiver"))
}

// Work charges n abstract units of pure application work to the clock.
func (m *Mutator) Work(n int) {
	m.C.Clock().Advance(m.C.Clock().Costs.MutatorOp * float64(n))
	if m.R != nil {
		m.R.Work(n)
	}
}

// Collect forces a collection (full condemns everything).
func (m *Mutator) Collect(full bool) {
	if err := m.C.Collect(full); err != nil {
		fail(err)
	}
	if m.R != nil {
		m.R.Collect(full)
	}
}

func (m *Mutator) chargeField() {
	m.C.Clock().Advance(m.C.Clock().Costs.FieldAccess)
}

func (m *Mutator) addrOf(h gc.Handle, what string) heap.Addr {
	a := m.roots.Get(h)
	if a == heap.Nil {
		panic(fmt.Sprintf("vm: nil dereference (%s)", what))
	}
	return a
}
