package vm

import (
	"fmt"
	"sort"
	"strings"

	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/telemetry"
)

// mirror is the shadow copy of one simulated object, keyed by its
// allocation serial (which survives moves, unlike its address).
type mirror struct {
	t      *heap.TypeDesc
	length int
	refs   []uint32 // referent serials; 0 means nil
	data   []uint32
}

// Validator maintains a native-Go shadow of the entire simulated object
// graph and, after every collection, verifies that the collector
// preserved it: every shadow-reachable object must still exist exactly
// once, with the same type, length, data words and (serial-level)
// outgoing references. It catches lost objects, wild forwarding, missed
// remembered-set entries, double copies and data corruption.
type Validator struct {
	mut     *Mutator
	mirrors map[uint32]*mirror
	checks  int
	// tele records the collector's GC event stream so a failed check can
	// dump the history that led to the violation.
	tele *telemetry.Run
	// Failures collects diagnostics; Check panics on the first failure
	// by default so test output points at the offending collection.
	PanicOnFailure bool
}

// validatorDumpEvents is how many trailing flight-recorder events a
// failed check attaches to its error.
const validatorDumpEvents = 32

func newValidator(m *Mutator) *Validator {
	v := &Validator{mut: m, mirrors: make(map[uint32]*mirror), PanicOnFailure: true}
	if hk, ok := m.C.(gc.Hookable); ok {
		v.tele = telemetry.NewRun(m.C.Clock())
		check := gc.Hooks{PostGC: func() {
			if err := v.Check(); err != nil {
				if v.PanicOnFailure {
					panic(err)
				}
			}
		}}
		// The recorder's hooks run first so the failing collection's own
		// events (GCEnd, occupancy) are already recorded when Check dumps.
		hk.SetHooks(v.tele.Hooks().Merge(check))
	}
	return v
}

// dump decorates a validation error with the recent GC event history.
func (v *Validator) dump(err error) error {
	if err == nil || v.tele == nil {
		return err
	}
	events := v.tele.Recorder().Last(validatorDumpEvents)
	if len(events) == 0 {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v\nlast %d GC events:\n", err, len(events))
	for _, e := range events {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return fmt.Errorf("%s", strings.TrimRight(b.String(), "\n"))
}

// Checks returns how many post-GC validations have run.
func (v *Validator) Checks() int { return v.checks }

func (v *Validator) serialOf(a heap.Addr) uint32 {
	if a == heap.Nil {
		return 0
	}
	return v.mut.C.Space().Serial(a)
}

func (v *Validator) noteAlloc(a heap.Addr, t *heap.TypeDesc, length int) {
	s := v.mut.C.Space()
	mir := &mirror{t: t, length: length}
	if n := t.NumRefs(length); n > 0 {
		mir.refs = make([]uint32, n)
	}
	if n := s.DataWords(a); n > 0 {
		mir.data = make([]uint32, n)
	}
	v.mirrors[s.Serial(a)] = mir
}

func (v *Validator) noteSetRef(obj heap.Addr, i int, val heap.Addr) {
	v.mirrors[v.serialOf(obj)].refs[i] = v.serialOf(val)
}

func (v *Validator) noteSetData(obj heap.Addr, i int, val uint32) {
	v.mirrors[v.serialOf(obj)].data[i] = val
}

// Check verifies the heap against the shadow graph. It is invoked
// automatically after every collection and may be called manually. A
// failure's error includes the last flight-recorder events, so the
// invariant violation comes with the GC history that produced it.
func (v *Validator) Check() error {
	return v.dump(v.check())
}

func (v *Validator) check() error {
	v.checks++
	sp := v.mut.C.Space()

	// Index every object currently in the heap by serial.
	addrOf := make(map[uint32]heap.Addr, len(v.mirrors))
	var dup error
	v.mut.C.ForEachObject(func(a heap.Addr) bool {
		ser := sp.Serial(a)
		if prev, ok := addrOf[ser]; ok {
			dup = fmt.Errorf("vm: serial %d present twice, at %v and %v", ser, prev, a)
			return false
		}
		addrOf[ser] = a
		return true
	})
	if dup != nil {
		return dup
	}

	// Shadow-reachable serials, from the root table.
	reach := make(map[uint32]bool)
	var stack []uint32
	v.mut.roots.Walk(func(a heap.Addr) heap.Addr {
		if ser := sp.Serial(a); !reach[ser] {
			reach[ser] = true
			stack = append(stack, ser)
		}
		return a
	})
	for len(stack) > 0 {
		ser := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		mir := v.mirrors[ser]
		if mir == nil {
			return fmt.Errorf("vm: reachable serial %d has no mirror", ser)
		}
		for _, rs := range mir.refs {
			if rs != 0 && !reach[rs] {
				reach[rs] = true
				stack = append(stack, rs)
			}
		}
	}

	// Every reachable object must exist, intact.
	serials := make([]uint32, 0, len(reach))
	for ser := range reach {
		serials = append(serials, ser)
	}
	sort.Slice(serials, func(i, j int) bool { return serials[i] < serials[j] })
	for _, ser := range serials {
		a, ok := addrOf[ser]
		if !ok {
			return fmt.Errorf("vm: reachable object serial %d lost by the collector", ser)
		}
		mir := v.mirrors[ser]
		if got := sp.TypeOf(a); got != mir.t {
			return fmt.Errorf("vm: serial %d at %v: type %s, want %s", ser, a, got.Name, mir.t.Name)
		}
		if got := sp.Length(a); got != mir.length {
			return fmt.Errorf("vm: serial %d at %v: length %d, want %d", ser, a, got, mir.length)
		}
		for i, want := range mir.refs {
			ra := sp.GetRef(a, i)
			var got uint32
			if ra != heap.Nil {
				got = sp.Serial(ra)
			}
			if got != want {
				return fmt.Errorf("vm: serial %d at %v: ref slot %d is serial %d, want %d",
					ser, a, i, got, want)
			}
		}
		for i, want := range mir.data {
			if got := sp.GetData(a, i); got != want {
				return fmt.Errorf("vm: serial %d at %v: data word %d is %#x, want %#x",
					ser, a, i, got, want)
			}
		}
	}
	return nil
}

// LiveMirrors returns the number of shadow objects ever allocated (the
// shadow graph is never pruned; the validator is a test facility).
func (v *Validator) LiveMirrors() int { return len(v.mirrors) }

// LiveFingerprint renders the root-reachable object graph of the REAL
// heap (not the shadow) in a canonical, address-free form: objects are
// keyed by allocation serial — which is assigned by mutator operation
// order and therefore identical across collectors replaying the same
// trace — and listed sorted, each with its type, length, data words and
// outgoing reference serials. Two collectors preserve the same mutator
// semantics iff their fingerprints after replaying the same trace are
// equal; addresses, belt geometry, cost and telemetry never appear in
// the fingerprint. The differential oracle (internal/check) compares
// these across configurations, while the mirror-based Check compares
// each heap against its own shadow.
func (v *Validator) LiveFingerprint() string {
	sp := v.mut.C.Space()

	// Root serial multiset, in sorted order: the root table's handle
	// assignment is part of mutator-observable state (trace replay
	// asserts handle equality), so the roots' referents must agree too.
	var rootSerials []uint32
	var frontier []heap.Addr
	seen := make(map[uint32]heap.Addr)
	v.mut.roots.Walk(func(a heap.Addr) heap.Addr {
		rootSerials = append(rootSerials, sp.Serial(a))
		if ser := sp.Serial(a); seen[ser] == heap.Nil {
			seen[ser] = a
			frontier = append(frontier, a)
		}
		return a
	})
	for len(frontier) > 0 {
		a := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for i, n := 0, sp.NumRefs(a); i < n; i++ {
			ra := sp.GetRef(a, i)
			if ra == heap.Nil {
				continue
			}
			if ser := sp.Serial(ra); seen[ser] == heap.Nil {
				seen[ser] = ra
				frontier = append(frontier, ra)
			}
		}
	}

	serials := make([]uint32, 0, len(seen))
	for ser := range seen {
		serials = append(serials, ser)
	}
	sort.Slice(serials, func(i, j int) bool { return serials[i] < serials[j] })
	sort.Slice(rootSerials, func(i, j int) bool { return rootSerials[i] < rootSerials[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "roots %v\n", rootSerials)
	for _, ser := range serials {
		a := seen[ser]
		fmt.Fprintf(&b, "#%d %s/%d", ser, sp.TypeOf(a).Name, sp.Length(a))
		if n := sp.NumRefs(a); n > 0 {
			b.WriteString(" r[")
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(' ')
				}
				if ra := sp.GetRef(a, i); ra != heap.Nil {
					fmt.Fprintf(&b, "%d", sp.Serial(ra))
				} else {
					b.WriteByte('_')
				}
			}
			b.WriteByte(']')
		}
		if n := sp.DataWords(a); n > 0 {
			b.WriteString(" d[")
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%x", sp.GetData(a, i))
			}
			b.WriteByte(']')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
