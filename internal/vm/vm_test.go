package vm_test

import (
	"strings"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

func testMutator(t *testing.T) (*vm.Mutator, *heap.Registry) {
	t.Helper()
	types := heap.NewRegistry()
	cfg := collectors.XX100(25, core.Options{HeapBytes: 1 << 20, FrameBytes: 8192})
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	return vm.New(h), types
}

func TestAllocAndFieldAccess(t *testing.T) {
	m, types := testMutator(t)
	node := types.DefineScalar("n", 2, 3)
	arr := types.DefineRefArray("a")
	err := m.Run(func() {
		n := m.Alloc(node, 0)
		a := m.Alloc(arr, 5)
		m.SetData(n, 0, 7)
		m.SetData(n, 2, 9)
		m.SetRef(n, 0, a)
		m.SetRef(a, 3, n)
		if m.GetData(n, 0) != 7 || m.GetData(n, 2) != 9 {
			t.Error("data round trip failed")
		}
		if m.Length(a) != 5 {
			t.Error("Length wrong")
		}
		if m.TypeOf(n) != node || m.TypeOf(a) != arr {
			t.Error("TypeOf wrong")
		}
		got := m.GetRef(a, 3)
		if !m.SameObject(got, n) {
			t.Error("GetRef/SameObject mismatch")
		}
		if m.RefIsNil(a, 0) != true || m.RefIsNil(a, 3) != false {
			t.Error("RefIsNil wrong")
		}
		m.SetRefNil(n, 0)
		if !m.RefIsNil(n, 0) {
			t.Error("SetRefNil did not clear")
		}
		if m.Serial(n) == 0 || m.Serial(n) == m.Serial(a) {
			t.Error("serials must be unique and nonzero")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNilDereferencePanics(t *testing.T) {
	m, types := testMutator(t)
	node := types.DefineScalar("n", 1, 1)
	_ = node
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("nil dereference did not panic")
		}
		if !strings.Contains(r.(string), "nil dereference") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m.GetData(gc.NilHandle, 0)
}

func TestRunConvertsOOM(t *testing.T) {
	types := heap.NewRegistry()
	cfg := collectors.BSS(core.Options{HeapBytes: 64 * 1024, FrameBytes: 4096})
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	big := types.DefineWordArray("big")
	err = m.Run(func() {
		for {
			m.AllocGlobal(big, 200)
		}
	})
	if err == nil {
		t.Fatal("unbounded allocation did not fail")
	}
}

func TestRunPassesThroughOtherPanics(t *testing.T) {
	m, _ := testMutator(t)
	defer func() {
		if recover() == nil {
			t.Fatal("non-OOM panic swallowed by Run")
		}
	}()
	m.Run(func() { panic("boom") })
}

func TestKeepEscapesScope(t *testing.T) {
	m, types := testMutator(t)
	node := types.DefineScalar("n", 0, 1)
	err := m.Run(func() {
		var kept gc.Handle
		m.Push()
		tmp := m.Alloc(node, 0)
		m.SetData(tmp, 0, 99)
		kept = m.Keep(tmp)
		m.Pop()
		// tmp's handle is dead, kept must still work after a full GC.
		m.Collect(true)
		if m.GetData(kept, 0) != 99 {
			t.Error("kept object lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidatorCatchesCorruption(t *testing.T) {
	// Sabotage the heap behind the validator's back; Check must fail.
	types := heap.NewRegistry()
	cfg := collectors.XX100(25, core.Options{HeapBytes: 1 << 20, FrameBytes: 8192})
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	v := m.EnableValidation()
	v.PanicOnFailure = false
	node := types.DefineScalar("n", 1, 1)
	err = m.Run(func() {
		a := m.Alloc(node, 0)
		m.SetData(a, 0, 5)
		if err := v.Check(); err != nil {
			t.Fatalf("clean heap failed validation: %v", err)
		}
		// Corrupt the data word directly, bypassing the mutator.
		addr := h.Roots().Get(a)
		h.Space().SetData(addr, 0, 6)
		if err := v.Check(); err == nil {
			t.Error("validator missed data corruption")
		}
		h.Space().SetData(addr, 0, 5) // restore
		// Corrupt a reference similarly.
		b := m.Alloc(node, 0)
		m.SetRef(a, 0, b)
		h.Space().SetRef(addr, 0, heap.Nil)
		if err := v.Check(); err == nil {
			t.Error("validator missed reference corruption")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkAdvancesClock(t *testing.T) {
	m, _ := testMutator(t)
	before := m.C.Clock().Now()
	m.Work(100)
	if m.C.Clock().Now() <= before {
		t.Error("Work did not advance the clock")
	}
}
