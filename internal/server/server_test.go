package server

import (
	"math"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("rng diverged at draw %d", i)
		}
	}
	c := newRNG(43)
	same := 0
	a = newRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 42 and 43 collided on %d of 100 draws", same)
	}
}

func TestZipfSkewAndDeterminism(t *testing.T) {
	const n = 1000
	z := newZipf(n, 0.99)
	r := newRNG(7)
	counts := make([]int, n)
	for i := 0; i < 200000; i++ {
		k := z.Sample(r)
		if k < 0 || k >= n {
			t.Fatalf("sample %d out of range [0,%d)", k, n)
		}
		counts[k]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("popularity not monotone in rank: c0=%d c1=%d c10=%d c100=%d",
			counts[0], counts[1], counts[10], counts[100])
	}
	// The head must dominate: rank 0 of a theta=0.99 zipfian over 1000
	// keys draws ~12% of traffic.
	if frac := float64(counts[0]) / 200000; frac < 0.05 {
		t.Fatalf("rank 0 drew only %.3f of traffic; distribution too flat", frac)
	}
	// Identical streams for identical seeds.
	z2, r2 := newZipf(n, 0.99), newRNG(7)
	z3, r3 := newZipf(n, 0.99), newRNG(7)
	for i := 0; i < 1000; i++ {
		if z2.Sample(r2) != z3.Sample(r3) {
			t.Fatalf("zipf diverged at draw %d", i)
		}
	}
}

func TestZipfGrow(t *testing.T) {
	z := newZipf(100, 0.8)
	z.Grow(200)
	fresh := newZipf(200, 0.8)
	if math.Abs(z.zetan-fresh.zetan) > 1e-9 {
		t.Fatalf("incremental zeta %v != fresh %v", z.zetan, fresh.zetan)
	}
	r := newRNG(3)
	for i := 0; i < 10000; i++ {
		if k := z.Sample(r); k < 0 || k >= 200 {
			t.Fatalf("post-grow sample %d out of range", k)
		}
	}
}

func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("p99=500000,p99.9=2e6,max=1e7")
	if err != nil {
		t.Fatal(err)
	}
	if len(slo.Targets) != 3 || slo.Targets[0].Quantile != "p99" ||
		slo.Targets[1].Quantile != "p999" || slo.Targets[2].Quantile != "max" {
		t.Fatalf("bad targets: %+v", slo.Targets)
	}
	if slo.Targets[1].Cost != 2e6 {
		t.Fatalf("p999 bound = %v, want 2e6", slo.Targets[1].Cost)
	}
	if _, err := ParseSLO("p42=1"); err == nil {
		t.Fatal("accepted unknown quantile p42")
	}
	if _, err := ParseSLO("p99"); err == nil {
		t.Fatal("accepted term without bound")
	}
	if _, err := ParseSLO("p99=-5"); err == nil {
		t.Fatal("accepted negative bound")
	}
	if empty, err := ParseSLO(""); err != nil || len(empty.Targets) != 0 {
		t.Fatalf("empty SLO: %v %+v", err, empty)
	}
}

func TestSummarizeExact(t *testing.T) {
	var lats []float64
	for i := 1000; i >= 1; i-- { // reversed: Summarize must sort
		lats = append(lats, float64(i))
	}
	d := Summarize(lats)
	if d.Count != 1000 || d.Max != 1000 {
		t.Fatalf("count=%d max=%v", d.Count, d.Max)
	}
	if d.P50 != 500 || d.P99 != 990 || d.P999 != 999 {
		t.Fatalf("p50=%v p99=%v p999=%v", d.P50, d.P99, d.P999)
	}
	if math.Abs(d.Mean-500.5) > 1e-9 {
		t.Fatalf("mean=%v", d.Mean)
	}
	verdicts := SLO{Targets: []Target{
		{Quantile: "p99", Cost: 990},
		{Quantile: "p999", Cost: 990},
	}}.Evaluate(d)
	if !verdicts[0].Pass || verdicts[1].Pass {
		t.Fatalf("verdicts: %+v", verdicts)
	}
}

// newTestHeap builds a small Beltway heap sized for the given config.
func newTestHeap(t *testing.T, sc Config, factor float64) (*core.Heap, *vm.Mutator, *heap.Registry) {
	t.Helper()
	frame := 4096
	hb := int(float64(sc.EstLiveBytes()) * factor)
	hb = (hb/frame + 1) * frame
	cfg, err := collectors.Parse("25.25", collectors.Options{HeapBytes: hb, FrameBytes: frame})
	if err != nil {
		t.Fatal(err)
	}
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	return h, vm.New(h), types
}

func testConfig() Config {
	c := Scaled(0.1)
	return c
}

func runLoop(t *testing.T, sc Config, factor float64) *Report {
	t.Helper()
	_, m, types := newTestHeap(t, sc, factor)
	loop, err := NewLoop(sc, LoopOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(func() {
		loop.Start(m, types)
		for !loop.Done() {
			loop.RunBatch()
		}
	}); err != nil {
		t.Fatalf("server loop: %v", err)
	}
	return loop.Report(SLO{})
}

func TestLoopDeterministic(t *testing.T) {
	sc := testConfig()
	a := runLoop(t, sc, 4)
	b := runLoop(t, sc, 4)
	if a.StoreChecksum != b.StoreChecksum {
		t.Fatalf("checksums differ: %x vs %x", a.StoreChecksum, b.StoreChecksum)
	}
	if len(a.Latencies) != len(b.Latencies) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Latencies), len(b.Latencies))
	}
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a.Latencies[i], b.Latencies[i])
		}
	}
	if a.Overall.Requests != sc.TotalRequests() {
		t.Fatalf("served %d requests, want %d", a.Overall.Requests, sc.TotalRequests())
	}
}

func TestLoopHeapSizeChangesTail(t *testing.T) {
	// Different heap sizes must change GC scheduling, and with it the
	// stream's pause-overlap profile — but never the request mix.
	sc := testConfig()
	tight := runLoop(t, sc, 2.5)
	roomy := runLoop(t, sc, 6)
	if tight.Overall.Requests != roomy.Overall.Requests {
		t.Fatalf("request counts differ: %d vs %d", tight.Overall.Requests, roomy.Overall.Requests)
	}
	if tight.Overall.Reads != roomy.Overall.Reads {
		t.Fatalf("read counts differ: %d vs %d", tight.Overall.Reads, roomy.Overall.Reads)
	}
	if tight.StoreChecksum != roomy.StoreChecksum {
		t.Fatalf("store contents depend on heap size: %x vs %x", tight.StoreChecksum, roomy.StoreChecksum)
	}
}

func TestLoopPhases(t *testing.T) {
	sc := testConfig()
	rep := runLoop(t, sc, 4)
	if len(rep.Phases) != 3 {
		t.Fatalf("have %d phases, want 3", len(rep.Phases))
	}
	for i, p := range rep.Phases {
		if p.Requests != sc.Phases[i].Requests {
			t.Fatalf("phase %d served %d requests, want %d", i, p.Requests, sc.Phases[i].Requests)
		}
		frac := float64(p.Reads) / float64(p.Requests)
		if math.Abs(frac-sc.Phases[i].ReadFrac) > 0.1 {
			t.Fatalf("phase %d read fraction %.3f, want ~%.2f", i, frac, sc.Phases[i].ReadFrac)
		}
		if p.Latency.P50 <= 0 || p.Latency.Max < p.Latency.P999 || p.Latency.P999 < p.Latency.P99 {
			t.Fatalf("phase %d distribution not monotone: %+v", i, p.Latency)
		}
		if p.WorstInflation < 1 {
			t.Fatalf("phase %d worst inflation %v < 1", i, p.WorstInflation)
		}
	}
	if rep.Overall.Requests != sc.TotalRequests() {
		t.Fatalf("overall %d != total %d", rep.Overall.Requests, sc.TotalRequests())
	}
}

func TestMergeReportsSingleIdentity(t *testing.T) {
	sc := testConfig()
	rep := runLoop(t, sc, 4)
	slo := SLO{Targets: []Target{{Quantile: "p99", Cost: rep.Overall.Latency.P99}}}
	merged := MergeReports([]*Report{rep}, slo)
	if merged.StoreChecksum != rep.StoreChecksum {
		t.Fatalf("merge of one changed the checksum")
	}
	if merged.Overall.Latency != rep.Overall.Latency {
		t.Fatalf("merge of one changed the distribution:\n%+v\n%+v",
			merged.Overall.Latency, rep.Overall.Latency)
	}
	if !merged.Passed || len(merged.Verdicts) != 1 || !merged.Verdicts[0].Pass {
		t.Fatalf("verdicts: %+v", merged.Verdicts)
	}
}

func TestMergeReportsAggregates(t *testing.T) {
	sc := testConfig()
	a := runLoop(t, sc, 4)
	sc2 := sc
	sc2.Seed = sc.Seed + 1
	b := runLoop(t, sc2, 4)
	merged := MergeReports([]*Report{a, b}, SLO{})
	if merged.Shards != 2 {
		t.Fatalf("shards=%d", merged.Shards)
	}
	if merged.Overall.Requests != a.Overall.Requests+b.Overall.Requests {
		t.Fatalf("merged requests %d != %d+%d", merged.Overall.Requests, a.Overall.Requests, b.Overall.Requests)
	}
	if merged.Overall.Reads != a.Overall.Reads+b.Overall.Reads {
		t.Fatalf("merged reads wrong")
	}
	if max := math.Max(a.Overall.Latency.Max, b.Overall.Latency.Max); merged.Overall.Latency.Max != max {
		t.Fatalf("merged max %v, want %v", merged.Overall.Latency.Max, max)
	}
}

func TestEstLiveBytes(t *testing.T) {
	sc := testConfig()
	est := sc.EstLiveBytes()
	if est <= 0 {
		t.Fatalf("estimate %d", est)
	}
	// The estimate must be in the right ballpark: a run at 4x estimate
	// completes (checked by the tests above), and the store's value
	// payload alone is within the estimate.
	minPayload := sc.MaxKeys() * (3 + sc.ValueWordsMin) * 4
	if est < minPayload {
		t.Fatalf("estimate %d below minimum payload %d", est, minPayload)
	}
}
