package server

import (
	"strings"
	"testing"
)

// TestParseSLOEdgeCases pins the parser's rejection surface: non-finite
// bounds (NaN fails every comparison, +Inf passes everything — both
// previously slipped through ParseFloat), duplicates, malformed terms,
// and whitespace tolerance.
func TestParseSLOEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string // substring; "" means the spec must parse
		targets int
	}{
		{"empty", "", "", 0},
		{"blank", "   ", "", 0},
		{"single", "p99=10e3", "", 1},
		{"multi", "p99=10e3,p999=1e6,max=5e6", "", 3},
		{"whitespace", "  p99 = 10e3 , max = 5e6  ", "", 2},
		{"alias", "p99.9=1e6", "", 1},
		{"nan", "p99=NaN", "bad SLO bound", 0},
		{"nan-lower", "max=nan", "bad SLO bound", 0},
		{"pos-inf", "p99=+Inf", "bad SLO bound", 0},
		{"inf", "max=Inf", "bad SLO bound", 0},
		{"neg-inf", "p999=-Inf", "bad SLO bound", 0},
		{"zero", "p99=0", "bad SLO bound", 0},
		{"negative", "p99=-1", "bad SLO bound", 0},
		{"not-a-number", "p99=fast", "bad SLO bound", 0},
		{"empty-bound", "p99=", "bad SLO bound", 0},
		{"dup", "p99=1,p99=2", "duplicate SLO quantile", 0},
		{"dup-via-alias", "p999=1e6,p99.9=2e6", "duplicate SLO quantile", 0},
		{"unknown-quantile", "p90=1e3", "unknown SLO quantile", 0},
		{"missing-eq", "p99", "bad SLO term", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			slo, err := ParseSLO(tc.in)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ParseSLO(%q): unexpected error %v", tc.in, err)
				}
				if len(slo.Targets) != tc.targets {
					t.Fatalf("ParseSLO(%q): %d targets, want %d", tc.in, len(slo.Targets), tc.targets)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseSLO(%q) = %+v, want error containing %q", tc.in, slo, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseSLO(%q) error %q, want substring %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

// TestSLOAliasNormalized: the p99.9 alias parses to the canonical p999
// target so Evaluate finds it in a Dist.
func TestSLOAliasNormalized(t *testing.T) {
	slo, err := ParseSLO("p99.9=1e6")
	if err != nil {
		t.Fatal(err)
	}
	if slo.Targets[0].Quantile != "p999" {
		t.Fatalf("alias not normalized: %q", slo.Targets[0].Quantile)
	}
}
