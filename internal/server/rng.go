// Package server is the request/response workload family: a
// deterministic generator of skewed key-value traffic over a store built
// on the vm.Mutator API, plus an SLO layer that turns the per-request
// latency stream (stamped on the cost-unit clock) into pass/fail
// verdicts. Production traffic is request-shaped — Zipfian key
// popularity, read/write mixes, phase shifts — and collectors serving it
// are judged by request-level tail latencies, not MMU alone; this
// package makes those claims measurable on every collector preset, flat
// and sharded.
package server

import "math"

// rng is a splitmix64 PRNG: deterministic, allocation-free, and owned by
// this package so request streams cannot drift with math/rand internals
// across Go releases. Output quality is ample for workload synthesis.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng {
	// Avoid the all-zero state and decorrelate small seeds.
	return &rng{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x1F123BB5159A55E5}
}

func (r *rng) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1) with 53 random bits.
func (r *rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *rng) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^theta, theta in (0, 1) — the YCSB-style skew knob (theta
// 0.99 is the classic "zipfian" setting; lower is flatter). The sampler
// is Gray et al.'s closed-form inversion; the only state is the
// precomputed zeta sums, so sampling is O(1) and deterministic given the
// rng stream.
type zipf struct {
	n     int
	theta float64
	zetan float64 // sum_{i=1..n} 1/i^theta
	zeta2 float64 // sum_{i=1..2} 1/i^theta
	alpha float64
	eta   float64
}

func newZipf(n int, theta float64) *zipf {
	z := &zipf{theta: theta}
	z.zeta2 = zetaRange(0, 2, theta)
	z.Grow(n)
	return z
}

// zetaRange returns sum_{i=from+1..to} 1/i^theta.
func zetaRange(from, to int, theta float64) float64 {
	var s float64
	for i := from + 1; i <= to; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// Grow extends the rank space to n (the working-set-growth phase shift),
// reusing the existing zeta prefix so growth is O(new keys).
func (z *zipf) Grow(n int) {
	if n <= z.n {
		return
	}
	z.zetan += zetaRange(z.n, n, z.theta)
	z.n = n
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

// Sample draws one rank in [0, n). Rank 0 is the most popular.
func (z *zipf) Sample(r *rng) int {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
