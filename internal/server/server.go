package server

import (
	"fmt"

	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/stats"
	"beltway/internal/vm"
)

// bucketSize is the fan-out of the keyed store's directory: keys live in
// ref-array buckets of this many slots, reached through a global
// directory array, so a lookup costs two reference reads — the same
// chunked-table shape the db workload uses.
const bucketSize = 256

// RequestKind discriminates requests in telemetry payloads.
const (
	KindRead  = 0
	KindWrite = 1
)

// Phase is one segment of the request script. Phases run in order; each
// fully specifies the traffic mix for its span and may open with a shift:
// a popularity reshuffle (new key permutation), working-set growth (new
// keys populated and added to the rank space), or simply different
// read/hot fractions (a ratio flip is a phase whose ReadFrac inverts the
// previous one's).
type Phase struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	ReadFrac float64 `json:"read_frac"` // fraction of requests that read
	HotFrac  float64 `json:"hot_frac"`  // fraction forced onto the hot-key set
	// Reshuffle re-permutes key popularity at phase entry: every rank is
	// reassigned to a (deterministically) random key, so the hot set
	// moves and the collector's nursery suddenly churns cold objects.
	Reshuffle bool `json:"reshuffle,omitempty"`
	// GrowKeys adds this many fresh keys at phase entry, populated
	// outside any request (background expansion) and appended to the
	// Zipf rank space.
	GrowKeys int `json:"grow_keys,omitempty"`
}

// Config parameterizes a server workload. The zero value is not
// runnable; start from Default() or fill every field and call Validate.
type Config struct {
	// Keys is the initial working-set size.
	Keys int `json:"keys"`
	// HotKeys bounds the contended hot set (0 = Keys/64, min 1).
	HotKeys int `json:"hot_keys,omitempty"`
	// Theta is the Zipf skew in (0, 1); 0.99 is the classic YCSB
	// "zipfian" setting, lower is flatter.
	Theta float64 `json:"theta"`
	// ValueWordsMin/Max bound the uniform value-size distribution, in
	// heap words per value object.
	ValueWordsMin int `json:"value_words_min"`
	ValueWordsMax int `json:"value_words_max"`
	// Batch is the arrival batch size: requests are served in batches of
	// this many, with BatchGapWork units of non-request work between
	// batches (queue drain / idle).
	Batch        int `json:"batch"`
	BatchGapWork int `json:"batch_gap_work,omitempty"`
	// RequestWork is the application work charged per request on top of
	// store traffic.
	RequestWork int `json:"request_work"`
	// ScratchWords is the per-request transient allocation (response
	// assembly buffer), in heap words. It dies with the request's scope,
	// so it is pure nursery churn: the knob that decides how often
	// collections interleave with the request stream. 0 disables it.
	ScratchWords int `json:"scratch_words,omitempty"`
	// Seed derives the request stream. Sharded serving decorrelates
	// per-shard streams with shard.StreamSeed, whose shard 0 is the
	// identity — a 1-shard run replays the flat stream exactly.
	Seed int64 `json:"seed"`
	// Phases is the request script; total requests is the sum of phase
	// lengths.
	Phases []Phase `json:"phases"`
}

// Default returns the canonical three-phase workload: a read-heavy
// steady state, a popularity reshuffle with the read/write ratio
// flipped, and a growth phase returning to the steady mix over a larger
// working set. It exercises every scripted shift.
func Default() Config {
	return Config{
		Keys:          16384,
		Theta:         0.8,
		ValueWordsMin: 16,
		ValueWordsMax: 64,
		Batch:         64,
		BatchGapWork:  32,
		RequestWork:   20,
		ScratchWords:  128,
		Seed:          20020617,
		Phases: []Phase{
			{Name: "steady", Requests: 12000, ReadFrac: 0.9, HotFrac: 0.1},
			{Name: "flip", Requests: 12000, ReadFrac: 0.1, HotFrac: 0.1, Reshuffle: true},
			{Name: "growth", Requests: 12000, ReadFrac: 0.9, HotFrac: 0.1, GrowKeys: 8192},
		},
	}
}

// Scaled returns Default() with request counts and working set scaled,
// matching the harness's workload-scale convention (floors keep tiny
// scales runnable).
func Scaled(scale float64) Config {
	c := Default()
	scaleInt := func(n int, floor int) int {
		v := int(float64(n) * scale)
		if v < floor {
			v = floor
		}
		return v
	}
	c.Keys = scaleInt(c.Keys, 256)
	for i := range c.Phases {
		c.Phases[i].Requests = scaleInt(c.Phases[i].Requests, 200)
		if c.Phases[i].GrowKeys > 0 {
			c.Phases[i].GrowKeys = scaleInt(c.Phases[i].GrowKeys, 128)
		}
	}
	return c
}

// Validate checks the configuration and fills defaulted fields.
func (c *Config) Validate() error {
	if c.Keys < 1 {
		return fmt.Errorf("server: need at least 1 key, have %d", c.Keys)
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		return fmt.Errorf("server: theta must be in (0,1), have %v", c.Theta)
	}
	if c.ValueWordsMin < 1 || c.ValueWordsMax < c.ValueWordsMin {
		return fmt.Errorf("server: bad value size range [%d,%d]", c.ValueWordsMin, c.ValueWordsMax)
	}
	if c.Batch < 1 {
		return fmt.Errorf("server: batch must be positive, have %d", c.Batch)
	}
	if c.ScratchWords < 0 {
		return fmt.Errorf("server: scratch words must be non-negative, have %d", c.ScratchWords)
	}
	if len(c.Phases) == 0 {
		return fmt.Errorf("server: need at least one phase")
	}
	for i, p := range c.Phases {
		if p.Requests < 1 {
			return fmt.Errorf("server: phase %d (%s) has no requests", i, p.Name)
		}
		if p.ReadFrac < 0 || p.ReadFrac > 1 || p.HotFrac < 0 || p.HotFrac > 1 {
			return fmt.Errorf("server: phase %d (%s) fractions out of [0,1]", i, p.Name)
		}
	}
	if c.HotKeys <= 0 {
		c.HotKeys = c.Keys / 64
		if c.HotKeys < 1 {
			c.HotKeys = 1
		}
	}
	return nil
}

// TotalRequests sums the phase lengths.
func (c *Config) TotalRequests() int {
	n := 0
	for _, p := range c.Phases {
		n += p.Requests
	}
	return n
}

// MaxKeys is the working-set size after every growth phase.
func (c *Config) MaxKeys() int {
	n := c.Keys
	for _, p := range c.Phases {
		n += p.GrowKeys
	}
	return n
}

// Batches is the number of arrival batches the script spans — the round
// count of a sharded serving plan.
func (c *Config) Batches() int {
	return (c.TotalRequests() + c.Batch - 1) / c.Batch
}

// EstLiveBytes estimates the store's resident size at full growth:
// the heap-sizing baseline for server sweeps (heap = factor × live set).
func (c *Config) EstLiveBytes() int {
	avg := (c.ValueWordsMin + c.ValueWordsMax) / 2
	maxKeys := c.MaxKeys()
	values := maxKeys * (3 + avg) * heap.WordBytes // headerWords = 3
	buckets := ((maxKeys+bucketSize-1)/bucketSize + 1) * (3 + bucketSize) * heap.WordBytes
	return values + buckets
}

// Observer receives per-request measurements (telemetry wiring; see
// telemetry.ServerObserver). Implementations must not advance the clock.
type Observer interface {
	// Request reports one served request: its kind (KindRead/KindWrite),
	// phase index, key, start time, latency and the portion of the
	// latency spent inside GC pauses — all in cost units.
	Request(kind, phase, key int, start, latency, pauseCost float64)
}

// Loop is a resumable executor for one configuration on one mutator:
// RunBatch serves the next arrival batch, so a sharded plan can
// interleave batches with safepoint polls round by round while the flat
// path just drains it. NewLoop is allocation-free; Start and every
// RunBatch must happen inside vm.Mutator.Run (allocation failures
// surface as OOM panics).
type Loop struct {
	cfg     Config
	m       *vm.Mutator
	clock   *stats.Clock
	obs     Observer
	poll    func()
	started bool

	rng  *rng
	zipf *zipf
	perm []int // rank -> key

	dir         gc.Handle
	valType     *heap.TypeDesc
	bucketType  *heap.TypeDesc
	dirType     *heap.TypeDesc
	scratchType *heap.TypeDesc
	nKeys       int
	writeSeq    uint32

	phase    int // current phase index
	inPhase  int // requests served in the current phase
	done     int
	total    int
	finished bool

	// Per-phase measurement streams.
	lats      [][]float64
	reads     []int
	writes    []int
	paused    []int
	worstInfl []float64

	checksum uint64
}

// LoopOpts wires a Loop to its environment.
type LoopOpts struct {
	// Observer, if non-nil, receives every request (telemetry).
	Observer Observer
	// Poll, if non-nil, is called between requests (sharded safepoint
	// polling; charges nothing to the clock).
	Poll func()
}

// NewLoop validates the configuration and prepares the executor without
// touching the heap, so a sharded plan can hold a Loop per shard before
// any round runs.
func NewLoop(cfg Config, opts LoopOpts) (*Loop, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Loop{
		cfg:       cfg,
		obs:       opts.Observer,
		poll:      opts.Poll,
		rng:       newRNG(cfg.Seed),
		zipf:      newZipf(cfg.Keys, cfg.Theta),
		total:     cfg.TotalRequests(),
		lats:      make([][]float64, len(cfg.Phases)),
		reads:     make([]int, len(cfg.Phases)),
		writes:    make([]int, len(cfg.Phases)),
		paused:    make([]int, len(cfg.Phases)),
		worstInfl: make([]float64, len(cfg.Phases)),
	}, nil
}

// Start builds the store and populates the initial working set on the
// given mutator (charged to the clock, outside any request — the
// server's warmup). Must run inside vm.Mutator.Run; idempotent.
func (l *Loop) Start(m *vm.Mutator, types *heap.Registry) {
	if l.started {
		return
	}
	l.m = m
	l.clock = m.C.Clock()
	l.valType = lookupOrDefineWordArray(types, "srv.val")
	l.bucketType = lookupOrDefineRefArray(types, "srv.bucket")
	l.dirType = lookupOrDefineRefArray(types, "srv.dir")
	l.scratchType = lookupOrDefineWordArray(types, "srv.scratch")

	cfg := l.cfg
	maxKeys := cfg.MaxKeys()
	dirLen := (maxKeys + bucketSize - 1) / bucketSize
	l.dir = m.AllocGlobal(l.dirType, dirLen)
	// started flips before population: a mid-populate OOM leaves a
	// partial store, and retrying would double-draw the RNG stream.
	l.started = true
	l.populate(0, cfg.Keys)
	l.nKeys = cfg.Keys
	l.perm = make([]int, cfg.Keys, maxKeys)
	for i := range l.perm {
		l.perm[i] = i
	}
	l.enterPhase(0)
}

// Started reports whether Start has run.
func (l *Loop) Started() bool { return l.started }

func lookupOrDefineWordArray(r *heap.Registry, name string) *heap.TypeDesc {
	if t := r.Lookup(name); t != nil {
		return t
	}
	return r.DefineWordArray(name)
}

func lookupOrDefineRefArray(r *heap.Registry, name string) *heap.TypeDesc {
	if t := r.Lookup(name); t != nil {
		return t
	}
	return r.DefineRefArray(name)
}

// Done reports whether every request has been served.
func (l *Loop) Done() bool { return l.done >= l.total }

// Served returns the number of requests completed so far.
func (l *Loop) Served() int { return l.done }

// RunBatch serves the next arrival batch (a no-op once done). After the
// final request it fingerprints the live store, so a completed loop's
// measurement is closed without further calls.
func (l *Loop) RunBatch() {
	if !l.started || l.Done() {
		return
	}
	n := l.cfg.Batch
	if rem := l.total - l.done; rem < n {
		n = rem
	}
	for i := 0; i < n; i++ {
		l.request()
		if l.poll != nil {
			l.poll()
		}
	}
	if l.Done() {
		l.finish()
	} else if l.cfg.BatchGapWork > 0 {
		l.m.Work(l.cfg.BatchGapWork)
	}
}

// request serves one request, stamping start/end on the cost-unit clock.
func (l *Loop) request() {
	l.advancePhase()
	ph := l.cfg.Phases[l.phase]
	isRead := l.rng.Float64() < ph.ReadFrac
	var rank int
	if ph.HotFrac > 0 && l.rng.Float64() < ph.HotFrac {
		hot := l.cfg.HotKeys
		if hot > l.nKeys {
			hot = l.nKeys
		}
		rank = l.rng.Intn(hot)
	} else {
		rank = l.zipf.Sample(l.rng)
	}
	key := l.perm[rank]

	start := l.clock.Now()
	gcBefore := l.clock.GCTime()
	l.m.Push()
	if isRead {
		l.doRead(key)
	} else {
		l.doWrite(key)
	}
	if n := l.cfg.ScratchWords; n > 0 {
		// Response assembly: a transient buffer that dies with the scope.
		sh := l.m.Alloc(l.scratchType, n)
		l.m.SetData(sh, 0, uint32(key))
		l.m.SetData(sh, n-1, l.writeSeq)
	}
	if l.cfg.RequestWork > 0 {
		l.m.Work(l.cfg.RequestWork)
	}
	l.m.Pop()
	lat := l.clock.Now() - start
	pauseCost := l.clock.GCTime() - gcBefore

	p := l.phase
	l.lats[p] = append(l.lats[p], lat)
	if isRead {
		l.reads[p]++
	} else {
		l.writes[p]++
	}
	if pauseCost > 0 {
		l.paused[p]++
		if base := lat - pauseCost; base > 0 {
			if infl := lat / base; infl > l.worstInfl[p] {
				l.worstInfl[p] = infl
			}
		}
	}
	kind := KindWrite
	if isRead {
		kind = KindRead
	}
	if l.obs != nil {
		l.obs.Request(kind, p, key, start, lat, pauseCost)
	}
	l.inPhase++
	l.done++
}

// advancePhase enters the next phase when the current one's span is
// exhausted, applying its scripted shifts.
func (l *Loop) advancePhase() {
	for l.phase < len(l.cfg.Phases)-1 && l.inPhase >= l.cfg.Phases[l.phase].Requests {
		l.phase++
		l.inPhase = 0
		l.enterPhase(l.phase)
	}
}

// enterPhase applies a phase's shifts: growth first (new keys join the
// rank space at the cold end), then the reshuffle.
func (l *Loop) enterPhase(i int) {
	p := l.cfg.Phases[i]
	if p.GrowKeys > 0 {
		from := l.nKeys
		l.populate(from, from+p.GrowKeys)
		for k := from; k < from+p.GrowKeys; k++ {
			l.perm = append(l.perm, k)
		}
		l.nKeys += p.GrowKeys
		l.zipf.Grow(l.nKeys)
	}
	if p.Reshuffle {
		for j := len(l.perm) - 1; j > 0; j-- {
			k := l.rng.Intn(j + 1)
			l.perm[j], l.perm[k] = l.perm[k], l.perm[j]
		}
	}
}

// populate fills keys [from, to) with fresh values, allocating buckets
// as the range reaches them. Charged to the clock outside any request.
func (l *Loop) populate(from, to int) {
	for key := from; key < to; key++ {
		l.m.Push()
		b := key / bucketSize
		if l.m.RefIsNil(l.dir, b) {
			bh := l.m.Alloc(l.bucketType, bucketSize)
			l.m.SetRef(l.dir, b, bh)
		}
		l.writeValue(key)
		l.m.Pop()
	}
}

// doRead looks the key up and touches its payload (first and last word).
func (l *Loop) doRead(key int) {
	bh := l.m.GetRef(l.dir, key/bucketSize)
	vh := l.m.GetRef(bh, key%bucketSize)
	if vh != gc.NilHandle {
		n := l.m.Length(vh)
		_ = l.m.GetData(vh, 0)
		if n > 1 {
			_ = l.m.GetData(vh, n-1)
		}
	}
}

// doWrite replaces the key's value with a fresh allocation; the old
// value becomes floating garbage for the collector to find.
func (l *Loop) doWrite(key int) {
	l.writeValue(key)
}

// writeValue allocates a new value for key and installs it. Caller must
// hold an open scope.
func (l *Loop) writeValue(key int) {
	span := l.cfg.ValueWordsMax - l.cfg.ValueWordsMin + 1
	length := l.cfg.ValueWordsMin + l.rng.Intn(span)
	vh := l.m.Alloc(l.valType, length)
	l.writeSeq++
	fill := length
	if fill > 4 {
		fill = 4
	}
	for w := 0; w < fill; w++ {
		l.m.SetData(vh, w, dataWord(key, l.writeSeq, w))
	}
	if length > fill {
		l.m.SetData(vh, length-1, dataWord(key, l.writeSeq, length-1))
	}
	bh := l.m.GetRef(l.dir, key/bucketSize)
	l.m.SetRef(bh, key%bucketSize, vh)
}

// dataWord derives a value payload word deterministically from its
// provenance, so the end-of-run fingerprint pins the exact write history.
func dataWord(key int, seq uint32, w int) uint32 {
	x := uint32(key)*2654435761 ^ seq*40503 ^ uint32(w)*97
	x ^= x >> 15
	return x
}

// finish fingerprints the live store (charged reads, after the last
// request, so no latency is affected) — the identity that flat vs
// sharded replays must agree on.
func (l *Loop) finish() {
	if l.finished {
		return
	}
	l.finished = true
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	for key := 0; key < l.nKeys; key++ {
		l.m.Push()
		bh := l.m.GetRef(l.dir, key/bucketSize)
		vh := l.m.GetRef(bh, key%bucketSize)
		if vh == gc.NilHandle {
			mix(0)
		} else {
			n := l.m.Length(vh)
			mix(uint64(n))
			mix(uint64(l.m.GetData(vh, 0)))
			if n > 1 {
				mix(uint64(l.m.GetData(vh, n-1)))
			}
		}
		l.m.Pop()
	}
	l.checksum = h
}
