package server

// PhaseReport is one phase's (or the whole run's) latency measurement.
type PhaseReport struct {
	Name     string `json:"name"`
	Requests int    `json:"requests"`
	Reads    int    `json:"reads"`
	Writes   int    `json:"writes"`
	// Latency is the exact latency distribution, in cost units.
	Latency Dist `json:"latency"`
	// PausedRequests counts requests whose interval overlapped a GC
	// pause; PausedFrac is their share of the phase.
	PausedRequests int     `json:"paused_requests"`
	PausedFrac     float64 `json:"paused_frac"`
	// WorstInflation is the worst ratio of a request's latency to its
	// GC-free portion (1 when no request was paused) — how much slower
	// the single unluckiest request ran because of the collector.
	WorstInflation float64 `json:"worst_inflation"`
}

// Report is a server run's measurement: per-phase and overall latency
// distributions, the SLO verdicts, and the live-store fingerprint that
// flat vs sharded replays must agree on. It round-trips through JSON
// (engine checkpoints) minus the raw latency streams, which exist only
// in-process for exact merging and replay-identity checks.
type Report struct {
	Phases  []PhaseReport `json:"phases"`
	Overall PhaseReport   `json:"overall"`
	// SLO and Verdicts record the declared objectives and their
	// evaluation against the overall distribution; Passed is the
	// conjunction (vacuously true with no targets).
	SLO      SLO       `json:"slo"`
	Verdicts []Verdict `json:"verdicts,omitempty"`
	Passed   bool      `json:"passed"`
	// StoreChecksum fingerprints the live store contents after the last
	// request (shard checksums folded in shard order when Shards > 1).
	StoreChecksum uint64 `json:"store_checksum"`
	// Shards is the serving-lane count (1 for a flat run).
	Shards int `json:"shards"`

	// PhaseLatencies and Latencies are the raw per-request streams
	// (cost units), per phase and overall. In-process only.
	PhaseLatencies [][]float64 `json:"-"`
	Latencies      []float64   `json:"-"`
}

// Violations counts failed SLO targets.
func (r *Report) Violations() int {
	n := 0
	for _, v := range r.Verdicts {
		if !v.Pass {
			n++
		}
	}
	return n
}

// Report closes the loop's measurement against an SLO. Call after the
// loop is done (a partial loop — OOM, budget abort — reports the
// requests it served).
func (l *Loop) Report(slo SLO) *Report {
	rep := &Report{
		Shards:         1,
		StoreChecksum:  l.checksum,
		SLO:            slo,
		PhaseLatencies: make([][]float64, len(l.cfg.Phases)),
	}
	for i, p := range l.cfg.Phases {
		rep.PhaseLatencies[i] = l.lats[i]
		rep.Latencies = append(rep.Latencies, l.lats[i]...)
		rep.Phases = append(rep.Phases, phaseReport(p.Name, l.lats[i],
			l.reads[i], l.writes[i], l.paused[i], l.worstInfl[i]))
	}
	o := &rep.Overall
	*o = phaseReport("overall", rep.Latencies, 0, 0, 0, 0)
	for _, p := range rep.Phases {
		o.Reads += p.Reads
		o.Writes += p.Writes
		o.PausedRequests += p.PausedRequests
		if p.WorstInflation > o.WorstInflation {
			o.WorstInflation = p.WorstInflation
		}
	}
	finishPhase(o)
	rep.Verdicts = slo.Evaluate(&o.Latency)
	rep.Passed = rep.Violations() == 0
	return rep
}

// MergeReports folds per-shard reports (in shard order) into the
// aggregate serving measurement: latency streams concatenate per phase,
// counts sum, distributions are recomputed exactly, and the fingerprint
// folds shard checksums in order. Merging a single report reproduces it.
func MergeReports(reports []*Report, slo SLO) *Report {
	if len(reports) == 0 {
		return &Report{SLO: slo, Passed: true}
	}
	if len(reports) == 1 {
		r := *reports[0]
		r.SLO = slo
		r.Verdicts = slo.Evaluate(&r.Overall.Latency)
		r.Passed = r.Violations() == 0
		return &r
	}
	nPhases := len(reports[0].Phases)
	out := &Report{
		Shards:         0,
		SLO:            slo,
		PhaseLatencies: make([][]float64, nPhases),
	}
	out.StoreChecksum = reports[0].StoreChecksum
	for i, r := range reports {
		out.Shards += r.Shards
		if i > 0 {
			out.StoreChecksum = out.StoreChecksum*1099511628211 ^ r.StoreChecksum
		}
	}
	for p := 0; p < nPhases; p++ {
		merged := PhaseReport{Name: reports[0].Phases[p].Name}
		for _, r := range reports {
			out.PhaseLatencies[p] = append(out.PhaseLatencies[p], r.PhaseLatencies[p]...)
			merged.Reads += r.Phases[p].Reads
			merged.Writes += r.Phases[p].Writes
			merged.PausedRequests += r.Phases[p].PausedRequests
			if r.Phases[p].WorstInflation > merged.WorstInflation {
				merged.WorstInflation = r.Phases[p].WorstInflation
			}
		}
		merged.Latency = *Summarize(out.PhaseLatencies[p])
		merged.Requests = merged.Latency.Count
		merged.PausedFrac = frac(merged.PausedRequests, merged.Requests)
		out.Phases = append(out.Phases, merged)
		out.Latencies = append(out.Latencies, out.PhaseLatencies[p]...)
	}
	o := &out.Overall
	o.Name = "overall"
	for _, p := range out.Phases {
		o.Reads += p.Reads
		o.Writes += p.Writes
		o.PausedRequests += p.PausedRequests
		if p.WorstInflation > o.WorstInflation {
			o.WorstInflation = p.WorstInflation
		}
	}
	o.Latency = *Summarize(out.Latencies)
	o.Requests = o.Latency.Count
	o.PausedFrac = frac(o.PausedRequests, o.Requests)
	out.Verdicts = slo.Evaluate(&o.Latency)
	out.Passed = out.Violations() == 0
	return out
}

func phaseReport(name string, lats []float64, reads, writes, paused int, worst float64) PhaseReport {
	p := PhaseReport{
		Name:           name,
		Reads:          reads,
		Writes:         writes,
		PausedRequests: paused,
		WorstInflation: worst,
		Latency:        *Summarize(lats),
	}
	p.Requests = p.Latency.Count
	finishPhase(&p)
	return p
}

func finishPhase(p *PhaseReport) {
	if p.Requests == 0 {
		p.Requests = p.Latency.Count
	}
	if p.WorstInflation == 0 {
		p.WorstInflation = 1
	}
	p.PausedFrac = frac(p.PausedRequests, p.Requests)
}

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
