package server

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"beltway/internal/stats"
)

// SLO is a set of latency objectives, each bounding one quantile of the
// per-request latency distribution in cost units. The zero value demands
// nothing and always passes.
type SLO struct {
	Targets []Target `json:"targets,omitempty"`
}

// Target is one objective: the named quantile must not exceed Cost.
type Target struct {
	Quantile string  `json:"quantile"` // p50 | p95 | p99 | p999 | max
	Cost     float64 `json:"cost"`     // bound, in cost units
}

// quantileValue maps a target name to its value in a latency
// distribution. Returns ok=false for unknown names.
func quantileValue(name string, d *Dist) (float64, bool) {
	switch name {
	case "p50":
		return d.P50, true
	case "p95":
		return d.P95, true
	case "p99":
		return d.P99, true
	case "p999":
		return d.P999, true
	case "max":
		return d.Max, true
	}
	return 0, false
}

// ParseSLO parses a declaration like "p99=500000" or
// "p95=200000,p999=2000000". Quantile names are p50, p95, p99, p999
// (p99.9 is accepted as an alias) and max; bounds are finite positive
// cost-unit counts, and each quantile may be bounded at most once.
func ParseSLO(s string) (SLO, error) {
	var slo SLO
	s = strings.TrimSpace(s)
	if s == "" {
		return slo, nil
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return SLO{}, fmt.Errorf("server: bad SLO term %q (want quantile=cost)", part)
		}
		name = strings.TrimSpace(name)
		if name == "p99.9" {
			name = "p999"
		}
		switch name {
		case "p50", "p95", "p99", "p999", "max":
		default:
			return SLO{}, fmt.Errorf("server: unknown SLO quantile %q (want p50, p95, p99, p999 or max)", name)
		}
		if seen[name] {
			return SLO{}, fmt.Errorf("server: duplicate SLO quantile %q", name)
		}
		seen[name] = true
		// ParseFloat happily returns NaN and ±Inf; neither is a usable
		// bound (NaN fails every comparison, +Inf passes everything), so
		// reject non-finite values explicitly — `c <= 0` alone lets both
		// through.
		c, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return SLO{}, fmt.Errorf("server: bad SLO bound %q (want a finite positive cost-unit count)", val)
		}
		slo.Targets = append(slo.Targets, Target{Quantile: name, Cost: c})
	}
	return slo, nil
}

// String renders the SLO back in the -slo flag syntax.
func (s SLO) String() string {
	parts := make([]string, len(s.Targets))
	for i, t := range s.Targets {
		parts[i] = fmt.Sprintf("%s=%g", t.Quantile, t.Cost)
	}
	return strings.Join(parts, ",")
}

// Verdict is the evaluation of one SLO target against a run.
type Verdict struct {
	Target Target  `json:"target"`
	Actual float64 `json:"actual"` // measured quantile, cost units
	Pass   bool    `json:"pass"`
}

// Evaluate checks every target against a latency distribution. The
// returned slice parallels s.Targets.
func (s SLO) Evaluate(d *Dist) []Verdict {
	out := make([]Verdict, len(s.Targets))
	for i, t := range s.Targets {
		v, _ := quantileValue(t.Quantile, d)
		out[i] = Verdict{Target: t, Actual: v, Pass: v <= t.Cost}
	}
	return out
}

// Dist summarizes a latency sample set with the exact (sorted,
// nearest-rank) quantiles the SLO layer verdicts against. Exactness
// matters here: telemetry's log-bucketed histograms bound quantile error
// to the bucket ratio (see internal/telemetry), which is fine for
// dashboards but not for pass/fail decisions.
type Dist struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Summarize computes the exact distribution of a latency sample set.
// The input is not modified.
func Summarize(latencies []float64) *Dist {
	d := &Dist{Count: len(latencies)}
	if len(latencies) == 0 {
		return d
	}
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	// stats.NearestRank is the one exact-quantile definition shared with
	// stats.SummarizePauses, so request-latency and pause quantiles agree
	// on small samples.
	d.P50 = stats.NearestRank(sorted, 0.50)
	d.P95 = stats.NearestRank(sorted, 0.95)
	d.P99 = stats.NearestRank(sorted, 0.99)
	d.P999 = stats.NearestRank(sorted, 0.999)
	d.Max = sorted[len(sorted)-1]
	d.Mean = sum / float64(len(sorted))
	return d
}
