package markregion

import "testing"

// The bitmap primitives run on the collector's mark/sweep hot paths —
// once per object traced and once per frame swept, every collection —
// so these guards pin them at zero heap allocations.

func guardFrame(t *testing.T) *Frame {
	t.Helper()
	g, err := NewGeometry(4096, DefaultLineBytes)
	if err != nil {
		t.Fatal(err)
	}
	return g.NewFrame()
}

func TestNoteAllocZeroAlloc(t *testing.T) {
	f := guardFrame(t)
	off := 0
	if n := testing.AllocsPerRun(100, func() {
		f.NoteAlloc(off%f.Geometry().FrameBytes, 16)
		off += 16
	}); n != 0 {
		t.Errorf("NoteAlloc allocates %v times per op, want 0", n)
	}
}

func TestMarkZeroAlloc(t *testing.T) {
	f := guardFrame(t)
	f.NoteAlloc(0, 64)
	if n := testing.AllocsPerRun(100, func() {
		f.Mark(0)
		if !f.Marked(0) {
			t.Fatal("mark lost")
		}
	}); n != 0 {
		t.Errorf("Mark/Marked allocate %v times per op, want 0", n)
	}
}

func TestFindRunZeroAlloc(t *testing.T) {
	f := guardFrame(t)
	// A fragmented frame: every third line used, so FindRun walks holes.
	for l := 0; l < f.Lines(); l += 3 {
		f.NoteAlloc(l*f.Geometry().LineBytes, 8)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, _, ok := f.FindRun(0, 2); !ok {
			t.Fatal("no run")
		}
	}); n != 0 {
		t.Errorf("FindRun allocates %v times per op, want 0", n)
	}
}

func TestSweepZeroAlloc(t *testing.T) {
	f := guardFrame(t)
	sizeOf := func(off int) int { return 64 }
	if n := testing.AllocsPerRun(100, func() {
		for off := 0; off < f.Geometry().FrameBytes; off += 64 {
			f.NoteAlloc(off, 64)
			f.Mark(off)
		}
		if live, _ := f.Sweep(sizeOf); live != f.Geometry().FrameBytes/64 {
			t.Fatal("sweep lost survivors")
		}
	}); n != 0 {
		t.Errorf("Sweep allocates %v times per op, want 0", n)
	}
}
