// Package markregion implements the per-frame metadata of an Immix-style
// mark-region heap substrate (Blackburn & McKinley, "Immix: A Mark-Region
// Garbage Collector", and the Nofl/LXR line of successors): each heap
// frame is divided into fixed-size lines; allocation bumps through runs
// of free lines; tracing marks objects (and, at sweep time, the lines
// they occupy) instead of copying them; and a sweep turns unmarked lines
// back into allocatable runs without moving anything.
//
// The package is deliberately free of collector policy: it only keeps
// three bitmaps per frame — object starts, per-trace marks, and line
// occupancy — plus the occupancy summary. Which frames use this
// substrate, when to trace, when to sweep, and when to give up on a
// sparse frame and evacuate it (defragmentation) are decided by
// internal/core, which owns the belts.
package markregion

import (
	"fmt"
	"math/bits"

	"beltway/internal/heap"
)

// DefaultLineBytes is the line granularity used when the configuration
// does not override it — Immix's 128-byte line, adapted to the
// simulator's 4-byte words.
const DefaultLineBytes = 128

// Geometry fixes the frame and line sizes for a run. All offsets handled
// by this package are byte offsets relative to a frame's base address,
// and must be word-aligned (the simulator allocates in whole words).
type Geometry struct {
	FrameBytes int
	LineBytes  int
}

// NewGeometry validates and builds a geometry: both sizes must be powers
// of two, with at least two words per line and at least two lines per
// frame (a one-line frame degenerates to a whole-frame mark bit).
func NewGeometry(frameBytes, lineBytes int) (Geometry, error) {
	if lineBytes < 2*heap.WordBytes || lineBytes&(lineBytes-1) != 0 {
		return Geometry{}, fmt.Errorf("markregion: line size %d not a power of two >= %d", lineBytes, 2*heap.WordBytes)
	}
	if frameBytes < 2*lineBytes || frameBytes&(frameBytes-1) != 0 {
		return Geometry{}, fmt.Errorf("markregion: frame size %d not a power of two >= two lines of %d", frameBytes, lineBytes)
	}
	return Geometry{FrameBytes: frameBytes, LineBytes: lineBytes}, nil
}

// Lines returns the number of lines per frame.
func (g Geometry) Lines() int { return g.FrameBytes / g.LineBytes }

// LinesFor returns how many whole lines an allocation of size bytes
// needs when it starts on a line boundary — the run length the
// allocator must find for a medium object (conservative skip: holes
// shorter than this are passed over, not packed).
func (g Geometry) LinesFor(size int) int {
	return (size + g.LineBytes - 1) / g.LineBytes
}

// LineOf returns the line index containing byte offset off.
func (g Geometry) LineOf(off int) int { return off / g.LineBytes }

// Frame is the mark-region metadata of one heap frame: a bit per word
// for object starts, a bit per word for the current trace's marks, and a
// bit per line for occupancy, with a running count of used lines.
type Frame struct {
	g Geometry

	objStart []uint64 // bit per word: an object header starts at this offset
	marks    []uint64 // bit per word: object at this offset survived the current trace
	lineUsed []uint64 // bit per line: some live or not-yet-swept object touches the line

	usedLines int
}

// NewFrame builds an all-free frame for the geometry.
func (g Geometry) NewFrame() *Frame {
	words := g.FrameBytes / heap.WordBytes
	return &Frame{
		g:        g,
		objStart: make([]uint64, (words+63)/64),
		marks:    make([]uint64, (words+63)/64),
		lineUsed: make([]uint64, (g.Lines()+63)/64),
	}
}

// Reset clears every bitmap, returning the frame to all-free (used when
// a pooled Frame is attached to a freshly mapped heap frame).
func (f *Frame) Reset() {
	clear(f.objStart)
	clear(f.marks)
	clear(f.lineUsed)
	f.usedLines = 0
}

// Geometry returns the frame's geometry.
func (f *Frame) Geometry() Geometry { return f.g }

// Lines returns the number of lines in the frame.
func (f *Frame) Lines() int { return f.g.Lines() }

// UsedLines returns how many lines currently hold (potentially dead,
// not-yet-swept) data. Free lines are Lines() - UsedLines().
func (f *Frame) UsedLines() int { return f.usedLines }

// wordIndex converts a byte offset to its bitmap position.
func wordIndex(off int) (idx int, bit uint64) {
	w := off / heap.WordBytes
	return w >> 6, 1 << (uint(w) & 63)
}

// NoteAlloc records a bump allocation of size bytes at byte offset off:
// the object-start bit is set and every line the object touches becomes
// used. Must be called for every object placed in the frame, whether by
// the mutator or by a collector copy. It returns the number of newly
// used lines, so callers can keep line-granularity occupancy.
func (f *Frame) NoteAlloc(off, size int) int {
	idx, bit := wordIndex(off)
	f.objStart[idx] |= bit
	newLines := 0
	for l := f.g.LineOf(off); l <= f.g.LineOf(off+size-1); l++ {
		if f.lineUsed[l>>6]&(1<<(uint(l)&63)) == 0 {
			f.lineUsed[l>>6] |= 1 << (uint(l) & 63)
			f.usedLines++
			newLines++
		}
	}
	return newLines
}

// Mark sets the trace mark for the object at byte offset off, reporting
// whether it was newly marked (false means the object was already
// reached by this trace).
func (f *Frame) Mark(off int) bool {
	idx, bit := wordIndex(off)
	if f.marks[idx]&bit != 0 {
		return false
	}
	f.marks[idx] |= bit
	return true
}

// Marked reports whether the object at off is marked in the current
// trace.
func (f *Frame) Marked(off int) bool {
	idx, bit := wordIndex(off)
	return f.marks[idx]&bit != 0
}

// IsObjStart reports whether an object starts at byte offset off.
func (f *Frame) IsObjStart(off int) bool {
	idx, bit := wordIndex(off)
	return f.objStart[idx]&bit != 0
}

// FindRun finds the first run of at least need free lines starting at or
// after line from, returning the run's [start, end) line bounds. The run
// returned is maximal, so a bump allocator can consume it to the end
// before asking again. ok is false when no such run exists in the frame.
func (f *Frame) FindRun(from, need int) (start, end int, ok bool) {
	lines := f.g.Lines()
	l := from
	for l < lines {
		// Skip used lines.
		if f.lineUsed[l>>6]&(1<<(uint(l)&63)) != 0 {
			l++
			continue
		}
		runStart := l
		for l < lines && f.lineUsed[l>>6]&(1<<(uint(l)&63)) == 0 {
			l++
		}
		if l-runStart >= need {
			return runStart, l, true
		}
	}
	return 0, 0, false
}

// ForEachObject visits every recorded object start in ascending offset
// order. The walk includes objects dead since the last sweep (exactly as
// a linear walk of a copying frame does); it stops early when fn returns
// false, and reports whether the walk ran to completion.
func (f *Frame) ForEachObject(fn func(off int) bool) bool {
	for i, w := range f.objStart {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			off := (i<<6 + b) * heap.WordBytes
			if !fn(off) {
				return false
			}
		}
	}
	return true
}

// Sweep completes a trace over the frame: object starts are intersected
// with the marks (dropping dead objects), the marks are cleared for the
// next trace, and line occupancy is recomputed from the survivors using
// sizeOf to read each surviving object's size from its header. It
// returns the surviving object count and their total byte size (the
// exact live bytes; line-granularity occupancy is UsedLines()*LineBytes).
func (f *Frame) Sweep(sizeOf func(off int) int) (liveObjects, liveBytes int) {
	for i := range f.objStart {
		f.objStart[i] &= f.marks[i]
		f.marks[i] = 0
	}
	clear(f.lineUsed)
	f.usedLines = 0
	for i, w := range f.objStart {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			off := (i<<6 + b) * heap.WordBytes
			size := sizeOf(off)
			liveObjects++
			liveBytes += size
			for l := f.g.LineOf(off); l <= f.g.LineOf(off+size-1); l++ {
				if f.lineUsed[l>>6]&(1<<(uint(l)&63)) == 0 {
					f.lineUsed[l>>6] |= 1 << (uint(l) & 63)
					f.usedLines++
				}
			}
		}
	}
	return liveObjects, liveBytes
}
