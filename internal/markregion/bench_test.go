package markregion_test

import (
	"testing"

	"beltway/internal/bench"
)

// Benchmark bodies live in beltway/internal/bench so `go test -bench`
// and the cmd/bench regression harness measure the same code.

func BenchmarkMarkRegionAlloc(b *testing.B)          { bench.MarkRegionAlloc(b) }
func BenchmarkLineMark(b *testing.B)                 { bench.LineMark(b) }
func BenchmarkMarkRegionFullCollection(b *testing.B) { bench.MarkRegionFullCollection(b) }
