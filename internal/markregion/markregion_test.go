package markregion

import "testing"

func geo(t *testing.T) Geometry {
	t.Helper()
	g, err := NewGeometry(4096, 128)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeometryValidation(t *testing.T) {
	cases := []struct {
		frame, line int
		ok          bool
	}{
		{4096, 128, true},
		{4096, 8, true},
		{256, 128, true},
		{4096, 100, false},  // not a power of two
		{4096, 4, false},    // below two words
		{4096, 4096, false}, // fewer than two lines per frame
		{4096, 8192, false},
		{3000, 128, false}, // frame not a power of two
	}
	for _, c := range cases {
		_, err := NewGeometry(c.frame, c.line)
		if (err == nil) != c.ok {
			t.Errorf("NewGeometry(%d, %d): err=%v, want ok=%v", c.frame, c.line, err, c.ok)
		}
	}
}

func TestNoteAllocLineAccounting(t *testing.T) {
	g := geo(t)
	f := g.NewFrame()
	if f.Lines() != 32 {
		t.Fatalf("Lines() = %d, want 32", f.Lines())
	}
	// A small object in line 0.
	f.NoteAlloc(0, 16)
	if f.UsedLines() != 1 {
		t.Fatalf("after 16B alloc: UsedLines = %d, want 1", f.UsedLines())
	}
	// Another object in the same line must not double-count.
	f.NoteAlloc(16, 16)
	if f.UsedLines() != 1 {
		t.Fatalf("second alloc in same line: UsedLines = %d, want 1", f.UsedLines())
	}
	// A medium object spanning lines 1..3 (starts at 128, 300 bytes).
	f.NoteAlloc(128, 300)
	if f.UsedLines() != 4 {
		t.Fatalf("after spanning alloc: UsedLines = %d, want 4", f.UsedLines())
	}
	if !f.IsObjStart(0) || !f.IsObjStart(16) || !f.IsObjStart(128) {
		t.Fatal("object-start bits missing")
	}
	if f.IsObjStart(4) {
		t.Fatal("spurious object-start bit")
	}
}

func TestFindRunConservativeSkip(t *testing.T) {
	g := geo(t)
	f := g.NewFrame()
	// Occupy lines 2 and 5, leaving holes [0,2), [3,5), [6,32).
	f.NoteAlloc(2*128, 8)
	f.NoteAlloc(5*128, 8)

	start, end, ok := f.FindRun(0, 1)
	if !ok || start != 0 || end != 2 {
		t.Fatalf("FindRun(0,1) = [%d,%d) ok=%v, want [0,2)", start, end, ok)
	}
	// A 3-line object skips both small holes (conservative skip).
	start, end, ok = f.FindRun(0, 3)
	if !ok || start != 6 || end != 32 {
		t.Fatalf("FindRun(0,3) = [%d,%d) ok=%v, want [6,32)", start, end, ok)
	}
	// Resuming past the first hole finds the second.
	start, end, ok = f.FindRun(2, 1)
	if !ok || start != 3 || end != 5 {
		t.Fatalf("FindRun(2,1) = [%d,%d) ok=%v, want [3,5)", start, end, ok)
	}
	// No run of 33 lines exists.
	if _, _, ok = f.FindRun(0, 33); ok {
		t.Fatal("FindRun found an impossible run")
	}
	// A full frame has no runs at all.
	for l := 0; l < f.Lines(); l++ {
		f.NoteAlloc(l*128, 8)
	}
	if _, _, ok = f.FindRun(0, 1); ok {
		t.Fatal("FindRun found a run in a full frame")
	}
}

func TestMarkSweep(t *testing.T) {
	g := geo(t)
	f := g.NewFrame()
	sizes := map[int]int{0: 64, 64: 64, 128: 256, 512: 32}
	for off, size := range sizes {
		f.NoteAlloc(off, size)
	}
	// Mark two of the four.
	if !f.Mark(64) {
		t.Fatal("first Mark(64) not newly marked")
	}
	if f.Mark(64) {
		t.Fatal("second Mark(64) claimed newly marked")
	}
	if !f.Mark(128) {
		t.Fatal("Mark(128) not newly marked")
	}
	if !f.Marked(64) || f.Marked(0) {
		t.Fatal("Marked() disagrees with Mark()")
	}

	n, bytes := f.Sweep(func(off int) int { return sizes[off] })
	if n != 2 || bytes != 64+256 {
		t.Fatalf("Sweep = (%d, %d), want (2, 320)", n, bytes)
	}
	// Survivors: 64B at 64 (line 0), 256B at 128 (lines 1-2).
	if f.UsedLines() != 3 {
		t.Fatalf("post-sweep UsedLines = %d, want 3", f.UsedLines())
	}
	if f.IsObjStart(0) || f.IsObjStart(512) {
		t.Fatal("dead object-start bit survived the sweep")
	}
	if !f.IsObjStart(64) || !f.IsObjStart(128) {
		t.Fatal("live object-start bit lost by the sweep")
	}
	if f.Marked(64) {
		t.Fatal("mark bit survived the sweep")
	}
	// Line 4 onward (offset 512's line) is free again.
	start, end, ok := f.FindRun(3, 1)
	if !ok || start != 3 || end != 32 {
		t.Fatalf("post-sweep FindRun(3,1) = [%d,%d) ok=%v, want [3,32)", start, end, ok)
	}
}

func TestForEachObjectOrderAndStop(t *testing.T) {
	g := geo(t)
	f := g.NewFrame()
	offs := []int{3000, 4, 256, 1024}
	for _, off := range offs {
		f.NoteAlloc(off, 8)
	}
	var got []int
	if !f.ForEachObject(func(off int) bool { got = append(got, off); return true }) {
		t.Fatal("full walk reported early stop")
	}
	want := []int{4, 256, 1024, 3000}
	if len(got) != len(want) {
		t.Fatalf("walked %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walked %v, want %v", got, want)
		}
	}
	// Early stop after the first object.
	count := 0
	if f.ForEachObject(func(off int) bool { count++; return false }) {
		t.Fatal("stopped walk reported completion")
	}
	if count != 1 {
		t.Fatalf("stopped walk visited %d objects, want 1", count)
	}
}

func TestResetAndReuse(t *testing.T) {
	g := geo(t)
	f := g.NewFrame()
	f.NoteAlloc(0, 512)
	f.Mark(0)
	f.Reset()
	if f.UsedLines() != 0 || f.IsObjStart(0) || f.Marked(0) {
		t.Fatal("Reset left state behind")
	}
	start, end, ok := f.FindRun(0, f.Lines())
	if !ok || start != 0 || end != f.Lines() {
		t.Fatalf("reset frame FindRun = [%d,%d) ok=%v, want whole frame", start, end, ok)
	}
}

func TestLinesFor(t *testing.T) {
	g := geo(t)
	for _, c := range []struct{ size, want int }{
		{1, 1}, {128, 1}, {129, 2}, {256, 2}, {257, 3},
	} {
		if got := g.LinesFor(c.size); got != c.want {
			t.Errorf("LinesFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}
