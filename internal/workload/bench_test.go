package workload

import (
	"math/rand"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// benchmarkWorkload measures end-to-end simulated-mutator throughput for
// one benchmark body on a roomy heap (collector cost mostly excluded).
func benchmarkWorkload(b *testing.B, name string) {
	bench := Get(name)
	for i := 0; i < b.N; i++ {
		types := heap.NewRegistry()
		h, err := core.New(collectors.XX100(25,
			collectors.Options{HeapBytes: 8 << 20, FrameBytes: 8 * 1024}), types)
		if err != nil {
			b.Fatal(err)
		}
		m := vm.New(h)
		ctx := &Ctx{M: m, Types: types, Rng: rand.New(rand.NewSource(1)), Scale: 0.1}
		if err := m.Run(func() { bench.Body(ctx) }); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(h.Clock().Counters.BytesAllocated))
	}
}

func BenchmarkWorkloadJess(b *testing.B)      { benchmarkWorkload(b, "jess") }
func BenchmarkWorkloadRaytrace(b *testing.B)  { benchmarkWorkload(b, "raytrace") }
func BenchmarkWorkloadDB(b *testing.B)        { benchmarkWorkload(b, "db") }
func BenchmarkWorkloadJavac(b *testing.B)     { benchmarkWorkload(b, "javac") }
func BenchmarkWorkloadJack(b *testing.B)      { benchmarkWorkload(b, "jack") }
func BenchmarkWorkloadPseudoJBB(b *testing.B) { benchmarkWorkload(b, "pseudojbb") }
