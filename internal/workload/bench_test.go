package workload_test

import (
	"testing"

	"beltway/internal/bench"
)

// Benchmark bodies live in beltway/internal/bench so `go test -bench`
// and the cmd/bench regression harness measure the same code.

func BenchmarkWorkloadJess(b *testing.B)      { bench.WorkloadJess(b) }
func BenchmarkWorkloadRaytrace(b *testing.B)  { bench.WorkloadRaytrace(b) }
func BenchmarkWorkloadDB(b *testing.B)        { bench.WorkloadDB(b) }
func BenchmarkWorkloadJavac(b *testing.B)     { bench.WorkloadJavac(b) }
func BenchmarkWorkloadJack(b *testing.B)      { bench.WorkloadJack(b) }
func BenchmarkWorkloadPseudoJBB(b *testing.B) { bench.WorkloadPseudoJBB(b) }
