package workload

import "beltway/internal/gc"

// Jess models 202_jess, an expert-system shell: a stable rule network is
// consulted by a torrent of short-lived facts and match tokens. The
// paper reports a 12MB min heap against 301MB allocated — a 25:1 ratio,
// the most nursery-friendly benchmark in the suite — so the analog keeps
// a small working memory (the live set) while allocating token chains
// that die within one activation.
func Jess() *Benchmark {
	return &Benchmark{
		Name:           "jess",
		PaperMinHeapMB: 12,
		PaperAllocMB:   301,
		Body:           jessBody,
	}
}

func jessBody(c *Ctx) {
	m := c.M
	rule := c.Types.DefineScalar("jess.rule", 3, 4)
	fact := c.Types.DefineScalar("jess.fact", 2, 6)
	token := c.Types.DefineScalar("jess.token", 2, 2)
	binding := c.Types.DefineScalar("jess.binding", 1, 3)

	bootImage(c, 24)

	// Rule network: long-lived, built once (like jess's Rete network).
	nRules := c.N(160)
	rules := make([]gc.Handle, nRules)
	for i := range rules {
		rules[i] = m.Alloc(rule, 0)
		m.SetData(rules[i], 0, uint32(i))
		if i > 0 {
			m.SetRef(rules[i], 0, rules[i-1])
		}
		if i > 10 {
			m.SetRef(rules[i], 1, rules[c.Rng.Intn(i)])
		}
	}

	// Working memory: a bounded FIFO of facts with medium lifetimes.
	wmSize := c.N(7000)
	wm := make([]gc.Handle, wmSize)
	next := 0

	activations := c.N(55000)
	for act := 0; act < activations; act++ {
		// Assert a fact, displacing the oldest working-memory entry.
		f := m.AllocGlobal(fact, 0)
		m.SetData(f, 0, uint32(act))
		r := rules[c.Rng.Intn(nRules)]
		m.SetRef(f, 0, r)
		if prev := wm[next]; prev != gc.NilHandle {
			m.Release(prev) // retract the displaced fact
		}
		wm[next] = f
		next = (next + 1) % wmSize

		// Matching: a chain of tokens and bindings, all dead by Pop.
		m.Push()
		depth := 3 + c.Rng.Intn(6)
		prev := f
		for d := 0; d < depth; d++ {
			tk := m.Alloc(token, 0)
			m.SetRef(tk, 0, prev)
			m.SetRef(tk, 1, r)
			b := m.Alloc(binding, 0)
			m.SetRef(b, 0, tk)
			m.SetData(b, 0, uint32(d))
			prev = tk
		}
		m.Work(depth * 4)
		m.Pop()
	}
}
