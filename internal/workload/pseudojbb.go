package workload

import "beltway/internal/gc"

// PseudoJBB models pseudojbb, the paper's fixed-work variant of SPEC
// JBB2000: a 3-tier transaction system over warehouses that executes a
// fixed number of transactions (rather than a fixed time), so running
// times are comparable. Paper Table 1: 70MB min heap, 381MB allocated —
// the largest live set in the suite, which is why Appel "performs very
// poorly in large heaps for pseudojbb because the program thrashes when
// its nursery becomes too large and spreads out live data too much"
// (Figure 10(f)); the harness enables the paging model for this analog.
//
// Structure: warehouses own districts own stock entries (all long
// lived); each transaction allocates order/order-line objects that are
// linked into a district's open-order ring and retired many transactions
// later (medium lifetimes), plus per-transaction temporaries.
func PseudoJBB() *Benchmark {
	return &Benchmark{
		Name:           "pseudojbb",
		PaperMinHeapMB: 70,
		PaperAllocMB:   381,
		Body:           pseudojbbBody,
	}
}

func pseudojbbBody(c *Ctx) {
	m := c.M
	warehouse := c.Types.DefineScalar("jbb.warehouse", 2, 4) // district table, next
	district := c.Types.DefineScalar("jbb.district", 3, 4)   // stock table, order ring, wh
	stockArr := c.Types.DefineRefArray("jbb.stocktab")
	stock := c.Types.DefineScalar("jbb.stock", 0, 8)
	order := c.Types.DefineScalar("jbb.order", 3, 4)     // first line, next order, district
	orderLine := c.Types.DefineScalar("jbb.oline", 2, 4) // stock ref, next line
	txn := c.Types.DefineScalar("jbb.txn", 3, 4)         // short-lived transaction record
	result := c.Types.DefineWordArray("jbb.result")

	bootImage(c, 64)

	// Tier setup: warehouses, districts, stock. All long-lived; this is
	// most of pseudojbb's 70MB live set (scaled).
	nWh := 4
	nDist := 10
	nStockPerDist := c.N(1200)
	type distT struct {
		h          gc.Handle
		stockTab   *table
		openOrders []gc.Handle // FIFO ring of retirable orders
	}
	var dists []*distT
	var prevWh gc.Handle
	for w := 0; w < nWh; w++ {
		wh := c.AllocLongLived(warehouse, 0)
		if prevWh != gc.NilHandle {
			m.SetRef(wh, 1, prevWh)
		}
		prevWh = wh
		for d := 0; d < nDist; d++ {
			dh := c.AllocLongLived(district, 0)
			m.SetRef(dh, 2, wh)
			st := newTable(c, stockArr, nStockPerDist)
			for s := 0; s < nStockPerDist; s++ {
				m.Push()
				var sk gc.Handle
				if c.Pretenure {
					sk = c.M.AllocPretenured(stock, 0)
				} else {
					sk = m.Alloc(stock, 0)
				}
				m.SetData(sk, 0, uint32(s))
				st.Set(m, s, sk)
				m.Pop()
			}
			dists = append(dists, &distT{h: dh, stockTab: st})
		}
	}

	// Fixed transaction count (the "pseudo" in pseudojbb).
	transactions := c.N(45000)
	retireAfter := 60 // orders retire ~60 transactions later
	for t := 0; t < transactions; t++ {
		d := dists[c.Rng.Intn(len(dists))]
		m.Push()

		// Transaction record and temporaries: die with the scope.
		tx := m.Alloc(txn, 0)
		m.SetData(tx, 0, uint32(t))
		m.SetRef(tx, 0, d.h)
		res := m.Alloc(result, 8+c.Rng.Intn(24))
		m.SetData(res, 0, uint32(t))

		// New order: medium-lived, linked into the district ring.
		o := m.AllocGlobal(order, 0)
		m.SetRef(o, 2, d.h)
		var prevLine gc.Handle
		nLines := 3 + c.Rng.Intn(6)
		for l := 0; l < nLines; l++ {
			ol := m.Alloc(orderLine, 0)
			si := c.Rng.Intn(nStockPerDist)
			sk := d.stockTab.Get(m, si)
			m.SetRef(ol, 0, sk)
			m.SetData(ol, 0, uint32(l))
			if prevLine != gc.NilHandle {
				m.SetRef(ol, 1, prevLine)
			}
			prevLine = ol
			// Stock update: mutate the long-lived stock entry.
			m.SetData(sk, 1, uint32(t))
			m.Release(sk)
			m.Work(3)
		}
		m.SetRef(o, 0, prevLine)
		d.openOrders = append(d.openOrders, o)

		// Retire old orders (delivery transaction).
		for len(d.openOrders) > retireAfter {
			m.Release(d.openOrders[0])
			d.openOrders = d.openOrders[1:]
		}
		m.Pop()
		m.Work(8)
	}
}
