// Package workload provides the six benchmark programs of the paper's
// evaluation — 202_jess, 205_raytrace, 209_db, 213_javac, 228_jack and
// pseudojbb — as deterministic synthetic analogs driving the vm.Mutator
// API.
//
// The Java originals are unavailable in this reproduction (and their
// semantics are irrelevant to a collector); what a copying collector
// responds to is object demographics: allocation volume, size
// distribution, lifetime distribution, pointer-mutation rate and
// direction, and the presence of cyclic structures. Each analog
// reproduces the qualitative demographics the paper and Dieckman &
// Hölzle's SPECjvm98 study describe:
//
//	jess      — expert system: very high allocation rate of short-lived
//	            tokens over a stable rule network; tiny live set
//	            relative to allocation (paper: 12MB min heap, 301MB
//	            allocated).
//	raytrace  — long-lived scene graph built up front, then per-ray
//	            temporaries that die almost immediately.
//	db        — long-lived record set with heavy pointer shuffling
//	            (high write-barrier traffic, little garbage); GC is not
//	            the dominant cost, locality is.
//	javac     — compiler: per-compilation-unit ASTs and symbol tables
//	            with large CYCLIC structures whose edges span
//	            increments; exercises completeness (§4.2.4: Beltway
//	            25.25 "never reclaims a large cyclic garbage structure"
//	            of javac).
//	jack      — parser generator run repeatedly: phase-structured medium
//	            lifetimes with mass death at phase boundaries.
//	pseudojbb — 3-tier transaction system over warehouses: large
//	            long-lived live set, order lifetimes spanning many
//	            transactions, fixed transaction count (the paper's
//	            modification of SPEC JBB2000).
//
// All benchmarks are deterministic (seeded PRNG) and scale-parameterized:
// Scale=1 targets roughly 1/16th of the paper's absolute sizes so a full
// heap-size sweep runs in seconds, with the same min-heap:allocation
// ratios as paper Table 1.
package workload

import (
	"fmt"
	"math/rand"

	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// Ctx is the environment a benchmark body runs in.
type Ctx struct {
	M     *vm.Mutator
	Types *heap.Registry
	Rng   *rand.Rand
	Scale float64
	// Pretenure, when set, routes allocation sites the benchmark knows
	// to be long-lived (scene graphs, symbol tables, warehouses) through
	// AllocPretenured — §5's allocation-site segregation. Off by
	// default so baseline results match the paper's (which did not
	// explore segregation).
	Pretenure bool
}

// AllocLongLived allocates at a site the benchmark knows produces
// long-lived data: pretenured when the run enables it, ordinary nursery
// allocation otherwise. The handle is scope-independent.
func (c *Ctx) AllocLongLived(t *heap.TypeDesc, length int) gc.Handle {
	if c.Pretenure {
		return c.M.AllocPretenuredGlobal(t, length)
	}
	return c.M.AllocGlobal(t, length)
}

// N scales an iteration/size count, never below 1.
func (c *Ctx) N(n int) int {
	v := int(float64(n)*c.Scale + 0.5)
	if v < 1 {
		return 1
	}
	return v
}

// Benchmark is one runnable workload.
type Benchmark struct {
	Name string
	// Paper-reported characteristics (Table 1), for reference output.
	PaperMinHeapMB int
	PaperAllocMB   int
	// Body runs the workload to completion.
	Body func(*Ctx)
}

// Params selects a workload instantiation.
type Params struct {
	Scale     float64 // 1.0 = default size (~1/16 of the paper's)
	Seed      int64   // PRNG seed; runs are deterministic per seed
	Pretenure bool    // route known-long-lived allocation sites to older belts
}

// DefaultParams is the standard configuration used by the harness.
func DefaultParams() Params { return Params{Scale: 1.0, Seed: 20020617} } // PLDI'02 date

// All returns the benchmark suite in the paper's order.
func All() []*Benchmark {
	return []*Benchmark{Jess(), Raytrace(), DB(), Javac(), Jack(), PseudoJBB()}
}

// Get returns the named benchmark or nil.
func Get(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names returns the benchmark names, sorted as in All.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

// Run executes the benchmark on the given collector.
func (b *Benchmark) Run(c gc.Collector, p Params) error {
	if p.Scale <= 0 {
		return fmt.Errorf("workload: non-positive scale %v", p.Scale)
	}
	m := vm.New(c)
	ctx := &Ctx{M: m, Types: c.Space().Types, Rng: rand.New(rand.NewSource(p.Seed)),
		Scale: p.Scale, Pretenure: p.Pretenure}
	return m.Run(func() { b.Body(ctx) })
}

// bootImage allocates a benchmark's immortal "boot image": type tables
// and string constants that a real VM carries. Boundary-barrier
// collectors rescan this at every collection, which is part of the
// Appel-vs-Beltway cost difference the paper discusses in §4.2.1.
func bootImage(c *Ctx, kb int) []gc.Handle {
	tib := c.Types.DefineScalar("boot.tib", 2, 6)
	str := c.Types.DefineWordArray("boot.str")
	var tables []gc.Handle
	bytes := 0
	i := 0
	for bytes < kb*1024 {
		var h gc.Handle
		if i%4 == 0 {
			h = c.M.AllocImmortal(tib, 0)
			bytes += tib.Size(0)
			tables = append(tables, h)
		} else {
			n := 8 + (i*7)%24
			h = c.M.AllocImmortal(str, n)
			bytes += str.Size(n)
		}
		i++
	}
	// Link TIBs into a chain, as class structures reference each other.
	for j := 1; j < len(tables); j++ {
		c.M.SetRef(tables[j], 0, tables[j-1])
	}
	return tables
}

// table is a chunked reference array: workloads use it where the Java
// original would use one large array, since simulated objects must fit
// in a frame (GCTk similarly lacked a large object space; §4.1).
type table struct {
	buckets    []gc.Handle // global roots
	bucketSize int
}

// newTable allocates a chunked reference table of n slots using the
// given ref-array type.
func newTable(c *Ctx, t *heap.TypeDesc, n int) *table {
	const bucketSize = 256
	tb := &table{bucketSize: bucketSize}
	for got := 0; got < n; got += bucketSize {
		sz := bucketSize
		if n-got < sz {
			sz = n - got
		}
		tb.buckets = append(tb.buckets, c.M.AllocGlobal(t, sz))
	}
	return tb
}

// Get loads slot i into a handle in the current scope.
func (tb *table) Get(m *vm.Mutator, i int) gc.Handle {
	return m.GetRef(tb.buckets[i/tb.bucketSize], i%tb.bucketSize)
}

// Set stores the object referenced by h into slot i.
func (tb *table) Set(m *vm.Mutator, i int, h gc.Handle) {
	m.SetRef(tb.buckets[i/tb.bucketSize], i%tb.bucketSize, h)
}

// SetNil clears slot i.
func (tb *table) SetNil(m *vm.Mutator, i int) {
	m.SetRefNil(tb.buckets[i/tb.bucketSize], i%tb.bucketSize)
}

// IsNil reports whether slot i is nil.
func (tb *table) IsNil(m *vm.Mutator, i int) bool {
	return m.RefIsNil(tb.buckets[i/tb.bucketSize], i%tb.bucketSize)
}

// release drops the table's bucket roots.
func (tb *table) release(m *vm.Mutator) {
	for _, b := range tb.buckets {
		m.Release(b)
	}
	tb.buckets = nil
}
