package workload

import "beltway/internal/gc"

// Raytrace models 205_raytrace: a scene graph (spheres, lights, a BVH
// over them) is built once and lives for the whole run; rendering then
// allocates per-ray vectors, intersection records and shade contexts
// that die within a pixel. Paper Table 1: 15MB min heap, 127MB
// allocated. Survival in the render phase is near zero — generational
// and Beltway nurseries both excel here, which is why the paper's
// raytrace curves are flat and close (Figure 10(b)).
func Raytrace() *Benchmark {
	return &Benchmark{
		Name:           "raytrace",
		PaperMinHeapMB: 15,
		PaperAllocMB:   127,
		Body:           raytraceBody,
	}
}

func raytraceBody(c *Ctx) {
	m := c.M
	sphere := c.Types.DefineScalar("rt.sphere", 2, 8) // material ref, next, center+radius
	bvh := c.Types.DefineScalar("rt.bvh", 3, 6)       // left, right, leaf object
	material := c.Types.DefineScalar("rt.material", 1, 6)
	vec := c.Types.DefineScalar("rt.vec", 0, 3)
	isect := c.Types.DefineScalar("rt.isect", 2, 4) // hit object, normal vec
	shade := c.Types.DefineScalar("rt.shade", 3, 2) // isect, incoming vec, material
	scanline := c.Types.DefineWordArray("rt.scanline")

	bootImage(c, 32)

	// Scene: materials, spheres, and a BVH tree over them. Long-lived.
	nMat := c.N(24)
	mats := make([]gc.Handle, nMat)
	for i := range mats {
		mats[i] = c.AllocLongLived(material, 0)
		m.SetData(mats[i], 0, uint32(i))
	}
	nSph := c.N(900)
	sphs := make([]gc.Handle, nSph)
	for i := range sphs {
		sphs[i] = c.AllocLongLived(sphere, 0)
		m.SetRef(sphs[i], 0, mats[c.Rng.Intn(nMat)])
		for w := 0; w < 4; w++ {
			m.SetData(sphs[i], w, c.Rng.Uint32())
		}
	}
	// BVH: a balanced binary tree with spheres at the leaves.
	var buildBVH func(lo, hi int) gc.Handle
	buildBVH = func(lo, hi int) gc.Handle {
		n := m.AllocGlobal(bvh, 0)
		if hi-lo <= 1 {
			m.SetRef(n, 2, sphs[lo])
			return n
		}
		mid := (lo + hi) / 2
		l := buildBVH(lo, mid)
		r := buildBVH(mid, hi)
		m.SetRef(n, 0, l)
		m.SetRef(n, 1, r)
		m.Release(l)
		m.Release(r)
		return n
	}
	root := buildBVH(0, nSph)

	// Render: width x height pixels, a handful of bounces per ray.
	width, height := 200, c.N(150)
	var lines []gc.Handle
	for y := 0; y < height; y++ {
		line := m.AllocGlobal(scanline, width)
		lines = append(lines, line)
		for x := 0; x < width; x++ {
			m.Push()
			origin := m.Alloc(vec, 0)
			dir := m.Alloc(vec, 0)
			m.SetData(dir, 0, uint32(x))
			m.SetData(dir, 1, uint32(y))
			color := uint32(0)
			bounces := 1 + c.Rng.Intn(3)
			for b := 0; b < bounces; b++ {
				// Traverse a random BVH path: read-only pointer chasing.
				m.Push()
				node := m.GetRef(root, c.Rng.Intn(2))
				steps := 0
				for node != gc.NilHandle && steps < 12 {
					if m.RefIsNil(node, 0) {
						break
					}
					node = m.GetRef(node, c.Rng.Intn(2))
					steps++
				}
				hit := m.Alloc(isect, 0)
				normal := m.Alloc(vec, 0)
				m.SetRef(hit, 1, normal)
				if node != gc.NilHandle && !m.RefIsNil(node, 2) {
					obj := m.GetRef(node, 2)
					m.SetRef(hit, 0, obj)
					sh := m.Alloc(shade, 0)
					m.SetRef(sh, 0, hit)
					m.SetRef(sh, 1, dir)
					m.SetRef(sh, 2, m.GetRef(obj, 0))
					color += m.GetData(sh, 0) + uint32(steps)
				}
				m.Pop()
				m.Work(steps + 4)
			}
			m.SetData(line, x, color^uint32(x*y))
			_ = origin
			m.Pop()
		}
	}
	// The image (scanlines) stays live to the end, as rendered output.
	_ = lines
}
