package workload

import "beltway/internal/gc"

// Jack models 228_jack, which "generates a parser repeatedly": the same
// parser-generator job runs 16 times, each run moving through phases
// (read grammar, compute NFA states, emit parser) whose data structures
// live until the phase or run ends, then die in bulk. Paper Table 1:
// 20MB min heap, 320MB allocated. The phase structure creates waves of
// medium-lived objects — the demographic that rewards giving objects
// time to die (older-first behaviour) over eager nursery collection.
func Jack() *Benchmark {
	return &Benchmark{
		Name:           "jack",
		PaperMinHeapMB: 20,
		PaperAllocMB:   320,
		Body:           jackBody,
	}
}

func jackBody(c *Ctx) {
	m := c.M
	production := c.Types.DefineScalar("jack.prod", 3, 2) // rhs list, next, action
	rhsItem := c.Types.DefineScalar("jack.rhs", 2, 1)
	state := c.Types.DefineScalar("jack.state", 3, 4) // item set, goto chain, prod
	edge := c.Types.DefineScalar("jack.edge", 2, 1)   // target state, next edge
	tok := c.Types.DefineScalar("jack.tok", 1, 2)     // short-lived scanner output
	outBuf := c.Types.DefineWordArray("jack.out")

	bootImage(c, 24)

	runs := 16 // the paper: jack "generates a parser repeatedly" (16 runs)
	for run := 0; run < runs; run++ {
		m.Push() // run scope: everything below dies when the run ends

		// Phase 1: read the grammar — productions with RHS chains.
		nProd := c.N(700)
		prods := make([]gc.Handle, nProd)
		for p := 0; p < nProd; p++ {
			pr := m.Alloc(production, 0)
			var prev gc.Handle
			for r := 0; r < 2+c.Rng.Intn(5); r++ {
				it := m.Alloc(rhsItem, 0)
				m.SetData(it, 0, uint32(r))
				if prev != gc.NilHandle {
					m.SetRef(it, 1, prev)
				}
				prev = it
			}
			m.SetRef(pr, 0, prev)
			if p > 0 {
				m.SetRef(pr, 1, prods[p-1])
			}
			prods[p] = pr
		}

		// Phase 2: state construction — states with edge chains, plus a
		// flood of short-lived scanner tokens while checking examples.
		nStates := c.N(2400)
		states := make([]gc.Handle, nStates)
		for s := 0; s < nStates; s++ {
			st := m.Alloc(state, 0)
			m.SetRef(st, 2, prods[c.Rng.Intn(nProd)])
			var prev gc.Handle
			for e := 0; e < 1+c.Rng.Intn(4); e++ {
				ed := m.Alloc(edge, 0)
				if s > 0 {
					m.SetRef(ed, 0, states[c.Rng.Intn(s)])
				}
				if prev != gc.NilHandle {
					m.SetRef(ed, 1, prev)
				}
				prev = ed
			}
			m.SetRef(st, 1, prev)
			states[s] = st

			// Scanner tokens: die immediately.
			m.Push()
			for t := 0; t < 12; t++ {
				tk := m.Alloc(tok, 0)
				m.SetData(tk, 0, uint32(t))
			}
			m.Pop()
			m.Work(6)
		}

		// Phase 3: emit — short-lived buffers, a few survive the run.
		m.Push()
		for e := 0; e < c.N(300); e++ {
			b := m.Alloc(outBuf, 16+c.Rng.Intn(48))
			m.SetData(b, 0, uint32(e))
		}
		m.Pop()

		m.Pop() // end of run: grammar, states, edges all die together
	}
}
