package workload

// DB models 209_db, an in-memory database: a large set of long-lived
// records is repeatedly searched, shuffled and sorted. Paper Table 1:
// 22MB min heap against only 102MB allocated — the largest live:alloc
// ratio in the suite. GC volume is low; what dominates is mutator work
// over the records (the paper: "in 209_db, garbage collection is not a
// dominant factor... locality effects cause the variations"), and index
// shuffling produces heavy old-to-old pointer-store traffic that
// exercises the write barrier's fast path.
func DB() *Benchmark {
	return &Benchmark{
		Name:           "db",
		PaperMinHeapMB: 22,
		PaperAllocMB:   102,
		Body:           dbBody,
	}
}

func dbBody(c *Ctx) {
	m := c.M
	record := c.Types.DefineScalar("db.record", 1, 12)
	index := c.Types.DefineRefArray("db.index")
	key := c.Types.DefineScalar("db.key", 0, 4)
	cursor := c.Types.DefineScalar("db.cursor", 2, 2)

	bootImage(c, 16)

	// The database: records plus a (chunked) index over them. Long-lived.
	nRec := c.N(10000)
	idx := newTable(c, index, nRec)
	for i := 0; i < nRec; i++ {
		m.Push()
		r := m.Alloc(record, 0)
		for w := 0; w < 4; w++ {
			m.SetData(r, w, c.Rng.Uint32())
		}
		idx.Set(m, i, r)
		m.Pop()
	}

	ops := c.N(120000)
	for op := 0; op < ops; op++ {
		switch c.Rng.Intn(10) {
		case 0, 1, 2, 3: // lookup: binary-search-like probe with a cursor
			m.Push()
			k := m.Alloc(key, 0)
			m.SetData(k, 0, uint32(c.Rng.Intn(nRec)))
			cu := m.Alloc(cursor, 0)
			lo, hi := 0, nRec
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				rec := idx.Get(m, mid)
				m.SetRef(cu, 0, rec)
				if m.GetData(rec, 0)&1 == 0 {
					lo = mid
				} else {
					hi = mid
				}
				m.Release(rec)
				m.Work(2)
			}
			m.Pop()
		case 4, 5, 6, 7, 8: // shuffle: swap index entries (old-to-old stores)
			a, b := c.Rng.Intn(nRec), c.Rng.Intn(nRec)
			m.Push()
			ra := idx.Get(m, a)
			rb := idx.Get(m, b)
			idx.Set(m, a, rb)
			idx.Set(m, b, ra)
			m.Pop()
			m.Work(1)
		default: // replace a record (the only steady-state garbage)
			m.Push()
			i := c.Rng.Intn(nRec)
			r := m.Alloc(record, 0)
			m.SetData(r, 0, uint32(op))
			idx.Set(m, i, r)
			m.Pop()
		}
	}

	// Final full shuffle pass: a burst of old-to-old stores.
	for i := nRec - 1; i > 0; i-- {
		j := c.Rng.Intn(i + 1)
		m.Push()
		ra := idx.Get(m, i)
		rb := idx.Get(m, j)
		idx.Set(m, i, rb)
		idx.Set(m, j, ra)
		m.Pop()
		m.Work(1)
	}
}
