package workload

import (
	"math/rand"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// measure runs a benchmark at small scale on a fixed collector and
// returns the counters plus the collector for deeper inspection.
func measure(t *testing.T, name string) (*core.Heap, float64) {
	t.Helper()
	b := Get(name)
	if b == nil {
		t.Fatalf("no benchmark %q", name)
	}
	types := heap.NewRegistry()
	// A modest heap so nursery collections happen at a realistic rate.
	cfg := collectors.XX100(25, collectors.Options{HeapBytes: 4 << 20, FrameBytes: 8 * 1024})
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	ctx := &Ctx{M: m, Types: types, Rng: rand.New(rand.NewSource(3)), Scale: 0.25}
	if err := m.Run(func() { b.Body(ctx) }); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	c := h.Clock().Counters
	markCons := float64(c.BytesCopied) / float64(c.BytesAllocated)
	return h, markCons
}

// TestJessDemographics: an expert system allocates torrents of
// short-lived tokens — the suite's most nursery-friendly benchmark, so
// its mark/cons ratio (bytes copied per byte allocated) must be low.
func TestJessDemographics(t *testing.T) {
	_, mc := measure(t, "jess")
	if mc > 0.30 {
		t.Errorf("jess mark/cons = %.3f; expected low survival (< 0.30)", mc)
	}
}

// TestRaytraceDemographics: per-ray temporaries die immediately; only
// the scene and image survive. Survival must be low.
func TestRaytraceDemographics(t *testing.T) {
	_, mc := measure(t, "raytrace")
	if mc > 0.5 {
		t.Errorf("raytrace mark/cons = %.3f; expected modest survival", mc)
	}
}

// TestDBDemographics: db is the mutation-heavy, allocation-light
// benchmark — pointer stores per byte allocated must dwarf the other
// benchmarks', and most of its allocation must happen up front.
func TestDBDemographics(t *testing.T) {
	hdb, _ := measure(t, "db")
	hjess, _ := measure(t, "jess")
	db := hdb.Clock().Counters
	jess := hjess.Clock().Counters
	dbRate := float64(db.PointerStores) / float64(db.BytesAllocated)
	jessRate := float64(jess.PointerStores) / float64(jess.BytesAllocated)
	if dbRate < 2*jessRate {
		t.Errorf("db stores/byte = %.3f not well above jess's %.3f", dbRate, jessRate)
	}
	// Old-to-old shuffling must actually hit the barrier slow path.
	if db.BarrierSlowPaths == 0 {
		t.Error("db produced no interesting pointer stores")
	}
}

// TestJavacHasCrossIncrementCycles: javac's symbol/scope structures are
// cyclic — verify cycles exist in the built graph by walking the heap:
// some scope must be reachable from one of its own symbols.
func TestJavacHasCrossIncrementCycles(t *testing.T) {
	h, _ := measure(t, "javac")
	sp := h.Space()
	// Find a javac.sym whose scope's symbol chain leads back to it.
	foundCycle := false
	h.ForEachObject(func(a heap.Addr) bool {
		if sp.TypeOf(a).Name != "javac.sym" {
			return true
		}
		scope := sp.GetRef(a, 0)
		if scope == heap.Nil {
			return true
		}
		// Walk the scope's symbol chain (slot 1 head, peers via slot 1).
		cur := sp.GetRef(scope, 1)
		for steps := 0; cur != heap.Nil && steps < 64; steps++ {
			if cur == a {
				foundCycle = true
				return false
			}
			cur = sp.GetRef(cur, 1)
		}
		return true
	})
	if !foundCycle {
		t.Error("javac graph contains no scope<->symbol cycle")
	}
}

// TestJackPhaseStructure: jack's phase structure gives it moderate
// survival — neither the near-zero of pure temporaries nor db's
// permanence: grammar and state structures live through a run, then die
// in bulk at its end.
func TestJackPhaseStructure(t *testing.T) {
	_, mcJack := measure(t, "jack")
	if mcJack < 0.02 || mcJack > 0.6 {
		t.Errorf("jack mark/cons %.3f outside the phase-lifetime band [0.02, 0.6]", mcJack)
	}
}

// TestPseudoJBBLiveSet: pseudojbb carries the suite's largest live set
// relative to allocation; its live estimate at completion must dominate
// the others'.
func TestPseudoJBBLiveSet(t *testing.T) {
	hjbb, _ := measure(t, "pseudojbb")
	hjess, _ := measure(t, "jess")
	if hjbb.LiveEstimate() <= hjess.LiveEstimate() {
		t.Errorf("pseudojbb live (%d) not above jess live (%d)",
			hjbb.LiveEstimate(), hjess.LiveEstimate())
	}
}

// TestAllocationVolumeOrdering reflects Table 1's ordering at the
// extremes: db allocates the least of the suite; jess and jack are near
// the top.
func TestAllocationVolumeOrdering(t *testing.T) {
	vol := map[string]uint64{}
	for _, b := range All() {
		h, _ := measure(t, b.Name)
		vol[b.Name] = h.Clock().Counters.BytesAllocated
	}
	for name, v := range vol {
		if name != "db" && v <= vol["db"] {
			t.Errorf("%s allocates %d <= db's %d; Table 1 ordering broken", name, v, vol["db"])
		}
	}
	if vol["jess"] < vol["raytrace"] {
		t.Errorf("jess (%d) should out-allocate raytrace (%d)", vol["jess"], vol["raytrace"])
	}
}
