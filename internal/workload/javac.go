package workload

import "beltway/internal/gc"

// Javac models 213_javac compiling a program repeatedly: each
// compilation unit builds an AST and a symbol table laced with CYCLIC
// references (scopes point at symbols, symbols back at their scope, and
// symbols cross-reference each other), and whole units die at once when
// compilation finishes. Paper Table 1: 32MB min heap, 266MB allocated.
//
// The cycles are the point: a unit's cyclic structure sprawls across
// whatever increments were current while it was built, so incomplete
// collectors cannot reclaim it — the paper observes that "213_javac
// performance actually degrades because Beltway 25.25 never reclaims a
// large cyclic garbage structure" (§4.2.4). This analog is the repo's
// completeness stress test.
func Javac() *Benchmark {
	return &Benchmark{
		Name:           "javac",
		PaperMinHeapMB: 32,
		PaperAllocMB:   266,
		Body:           javacBody,
	}
}

func javacBody(c *Ctx) {
	m := c.M
	astNode := c.Types.DefineScalar("javac.ast", 3, 3) // children x2, symbol
	symbol := c.Types.DefineScalar("javac.sym", 3, 4)  // scope, peer, def site
	scope := c.Types.DefineScalar("javac.scope", 3, 2) // parent, symbol list, owner sym
	token := c.Types.DefineScalar("javac.token", 1, 2) // short-lived lexer output
	code := c.Types.DefineWordArray("javac.code")      // emitted bytecode

	bootImage(c, 48)

	// Classpath symbol table: long-lived symbols for imported classes,
	// loaded once (javac's live set is the largest of the JVM98 suite:
	// 32MB min heap in Table 1).
	nGlobal := c.N(9000)
	globals := make([]gc.Handle, nGlobal)
	for i := range globals {
		sym := c.AllocLongLived(symbol, 0)
		m.SetData(sym, 0, uint32(i))
		if i > 0 {
			m.SetRef(sym, 1, globals[i-1])
		}
		globals[i] = sym
	}

	units := c.N(220)
	var emitted []gc.Handle // compiled output, live to the end

	for u := 0; u < units; u++ {
		// A compilation unit: all of its structure becomes garbage at
		// once when the unit handle set is dropped.
		m.Push()

		// Lexing: short-lived tokens.
		nTok := 400 + c.Rng.Intn(400)
		for i := 0; i < nTok; i++ {
			m.Push()
			tk := m.Alloc(token, 0)
			m.SetData(tk, 0, uint32(i))
			m.Pop()
		}

		// Scopes and symbols: cyclic. Each scope points at its parent
		// and at its symbol chain; each symbol points BACK at its scope
		// (the cycle), at a peer symbol, and at its defining AST node.
		nScopes := 12 + c.Rng.Intn(8)
		scopes := make([]gc.Handle, nScopes)
		var syms []gc.Handle
		for s := 0; s < nScopes; s++ {
			sc := m.Alloc(scope, 0)
			scopes[s] = sc
			if s > 0 {
				m.SetRef(sc, 0, scopes[c.Rng.Intn(s)]) // parent
			}
			nSyms := 4 + c.Rng.Intn(10)
			var prev gc.Handle
			for k := 0; k < nSyms; k++ {
				sym := m.Alloc(symbol, 0)
				m.SetRef(sym, 0, sc) // symbol -> scope (closes the cycle)
				if prev != gc.NilHandle {
					m.SetRef(sym, 1, prev)
				}
				prev = sym
				syms = append(syms, sym)
			}
			m.SetRef(sc, 1, prev) // scope -> symbol chain head
		}
		// Cross-scope symbol references (cycles spanning scopes, and —
		// because allocation interleaves with nursery collections —
		// spanning increments).
		for i := 0; i < len(syms); i++ {
			j := c.Rng.Intn(len(syms))
			m.SetRef(syms[i], 2, syms[j])
		}

		// Parsing: an AST whose leaves reference symbols.
		nNodes := 900 + c.Rng.Intn(600)
		nodes := make([]gc.Handle, 0, nNodes)
		for i := 0; i < nNodes; i++ {
			nd := m.Alloc(astNode, 0)
			if len(nodes) > 1 {
				m.SetRef(nd, 0, nodes[c.Rng.Intn(len(nodes))])
				m.SetRef(nd, 1, nodes[c.Rng.Intn(len(nodes))])
			}
			if c.Rng.Intn(4) == 0 {
				m.SetRef(nd, 2, globals[c.Rng.Intn(nGlobal)]) // imported class
			} else {
				m.SetRef(nd, 2, syms[c.Rng.Intn(len(syms))])
			}
			nodes = append(nodes, nd)
			m.Work(2)
		}

		// Code generation: the only output that survives the unit.
		m.Pop()
		out := m.AllocGlobal(code, 64+c.Rng.Intn(192))
		m.SetData(out, 0, uint32(u))
		emitted = append(emitted, out)

		// Bound the retained output like javac's per-run reset: keep a
		// window of recent units' code.
		if len(emitted) > c.N(40) {
			m.Release(emitted[0])
			emitted = emitted[1:]
		}
	}
}
