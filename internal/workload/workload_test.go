package workload

import (
	"math/rand"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/generational"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// runScaled executes a benchmark at the given scale on a fresh collector,
// returning the collector for inspection.
func runScaled(t *testing.T, b *Benchmark, cfg core.Config, scale float64, validate bool) *core.Heap {
	t.Helper()
	types := heap.NewRegistry()
	h, err := core.New(cfg, types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	if validate {
		m.EnableValidation()
	}
	ctx := &Ctx{M: m, Types: types, Rng: rand.New(rand.NewSource(1)), Scale: scale}
	if err := m.Run(func() {
		b.Body(ctx)
		if validate {
			// Guarantee the oracle sees at least one incremental and one
			// full collection even in roomy heaps.
			m.Collect(false)
			m.Collect(true)
		}
	}); err != nil {
		t.Fatalf("%s on %s: %v", b.Name, cfg.Name, err)
	}
	return h
}

func bigOpts() collectors.Options {
	return collectors.Options{HeapBytes: 32 << 20, FrameBytes: 16 * 1024}
}

// TestBenchmarksCompleteAndAllocate checks that each benchmark runs to
// completion in a roomy heap and allocates a meaningful volume with the
// right relative ordering (jess/jack allocate the most, db the least).
func TestBenchmarksCompleteAndAllocate(t *testing.T) {
	alloc := map[string]uint64{}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			h := runScaled(t, b, collectors.XX100(25, bigOpts()), 0.25, false)
			c := h.Clock().Counters
			if c.BytesAllocated < 200*1024 {
				t.Errorf("%s allocated only %d bytes at scale 0.25", b.Name, c.BytesAllocated)
			}
			if c.PointerStores == 0 {
				t.Errorf("%s performed no pointer stores", b.Name)
			}
			alloc[b.Name] = c.BytesAllocated
			t.Logf("%s: %.1f MB allocated, %d objects, %d GCs, %.0f%% gc time",
				b.Name, float64(c.BytesAllocated)/(1<<20), c.ObjectsAllocated,
				h.Collections(), 100*h.Clock().GCFraction())
		})
	}
}

// TestBenchmarksDeterministic verifies bit-identical counters across two
// runs with the same seed.
func TestBenchmarksDeterministic(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			h1 := runScaled(t, b, collectors.XX100(25, bigOpts()), 0.1, false)
			h2 := runScaled(t, b, collectors.XX100(25, bigOpts()), 0.1, false)
			if h1.Clock().Counters != h2.Clock().Counters {
				t.Errorf("%s not deterministic:\n%+v\n%+v",
					b.Name, h1.Clock().Counters, h2.Clock().Counters)
			}
			if h1.Clock().TotalTime() != h2.Clock().TotalTime() {
				t.Errorf("%s timelines differ", b.Name)
			}
		})
	}
}

// TestBenchmarksValidated runs every benchmark tiny with the shadow-graph
// oracle enabled, on both barrier styles.
func TestBenchmarksValidated(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs are slow")
	}
	o := collectors.Options{HeapBytes: 2 << 20, FrameBytes: 8 * 1024}
	cfgs := []core.Config{collectors.XX100(25, o), generational.Appel(o), collectors.BOF(25, o)}
	for _, b := range All() {
		for _, cfg := range cfgs {
			b, cfg := b, cfg
			t.Run(b.Name+"/"+cfg.Name, func(t *testing.T) {
				h := runScaled(t, b, cfg, 0.1, true)
				if h.Collections() < 2 {
					t.Errorf("only %d collections; oracle under-exercised", h.Collections())
				}
			})
		}
	}
}

// TestSuiteRegistry checks the catalog plumbing.
func TestSuiteRegistry(t *testing.T) {
	if len(All()) != 6 {
		t.Fatalf("suite has %d benchmarks, want 6", len(All()))
	}
	for _, name := range []string{"jess", "raytrace", "db", "javac", "jack", "pseudojbb"} {
		if Get(name) == nil {
			t.Errorf("Get(%q) = nil", name)
		}
	}
	if Get("nosuch") != nil {
		t.Error("Get of unknown benchmark should be nil")
	}
	if len(Names()) != 6 {
		t.Error("Names length mismatch")
	}
	for _, b := range All() {
		if b.PaperMinHeapMB <= 0 || b.PaperAllocMB <= 0 {
			t.Errorf("%s missing Table 1 reference numbers", b.Name)
		}
	}
}

// TestChunkedTable exercises the chunked reference table the workloads
// use in place of large arrays (GCTk had no large object space).
func TestChunkedTable(t *testing.T) {
	types := heap.NewRegistry()
	h, err := core.New(collectors.XX100(25, bigOpts()), types)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(h)
	ctx := &Ctx{M: m, Types: types, Rng: rand.New(rand.NewSource(1)), Scale: 1}
	arr := types.DefineRefArray("tt.arr")
	node := types.DefineScalar("tt.node", 0, 1)
	err = m.Run(func() {
		const n = 1000 // spans multiple 256-slot buckets
		tb := newTable(ctx, arr, n)
		for i := 0; i < n; i += 7 {
			m.Push()
			nd := m.Alloc(node, 0)
			m.SetData(nd, 0, uint32(i))
			tb.Set(m, i, nd)
			m.Pop()
		}
		m.Collect(true)
		for i := 0; i < n; i++ {
			if i%7 == 0 {
				if tb.IsNil(m, i) {
					t.Fatalf("slot %d lost", i)
				}
				m.Push()
				nd := tb.Get(m, i)
				if m.GetData(nd, 0) != uint32(i) {
					t.Fatalf("slot %d corrupted", i)
				}
				m.Pop()
			} else if !tb.IsNil(m, i) {
				t.Fatalf("slot %d unexpectedly set", i)
			}
		}
		tb.SetNil(m, 0)
		if !tb.IsNil(m, 0) {
			t.Error("SetNil failed")
		}
		tb.release(m)
		m.Collect(true) // table buckets now collectible
	})
	if err != nil {
		t.Fatal(err)
	}
}
