// Package gc defines the collector-neutral contract between the mutator
// side of the system (internal/vm, internal/workload) and the collector
// implementations (internal/core for Beltway, internal/generational for
// the paper's baselines). Workloads are written once against this
// interface and run unchanged on every collector, which is how the paper
// compared configurations inside one toolkit (GCTk).
package gc

import (
	"errors"
	"fmt"
	"strings"

	"beltway/internal/heap"
	"beltway/internal/stats"
)

// ErrOutOfMemory is returned (wrapped) by Alloc when the configured heap
// cannot satisfy an allocation even after collecting. The harness uses it
// to find minimum heap sizes (paper Table 1).
var ErrOutOfMemory = errors.New("gc: out of memory")

// OOMError carries the failing request for diagnostics.
type OOMError struct {
	Requested int
	HeapBytes int
	Detail    string
	// Degradation lists the graceful-degradation ladder steps the
	// collector took before giving up (emergency collections, reserve
	// retries, overdrafts), oldest first. Empty when degradation is
	// disabled or nothing was attempted; Error() output is unchanged in
	// that case.
	Degradation []string `json:",omitempty"`
}

func (e *OOMError) Error() string {
	if len(e.Degradation) > 0 {
		return fmt.Sprintf("gc: out of memory: need %d bytes in %d-byte heap (%s; after %s)",
			e.Requested, e.HeapBytes, e.Detail, strings.Join(e.Degradation, ", "))
	}
	return fmt.Sprintf("gc: out of memory: need %d bytes in %d-byte heap (%s)",
		e.Requested, e.HeapBytes, e.Detail)
}

func (e *OOMError) Unwrap() error { return ErrOutOfMemory }

// Collector is a complete garbage-collected runtime: allocation, the
// write barrier, and collection, over a simulated heap.Space.
type Collector interface {
	// Alloc allocates and formats an object of type t (length is the
	// element count for arrays, 0 for scalars), collecting if needed.
	// The returned address is valid until the next collection unless it
	// is reachable from the roots.
	Alloc(t *heap.TypeDesc, length int) (heap.Addr, error)

	// AllocImmortal allocates in the uncollected immortal ("boot image")
	// space. Immortal objects are never moved or reclaimed but their
	// reference slots are traced.
	AllocImmortal(t *heap.TypeDesc, length int) (heap.Addr, error)

	// AllocPretenured allocates directly on an older belt (allocation-
	// site segregation for long-lived objects), collecting if needed.
	AllocPretenured(t *heap.TypeDesc, length int) (heap.Addr, error)

	// WriteRef stores val into reference slot i of obj, running the
	// collector's write barrier.
	WriteRef(obj heap.Addr, slot int, val heap.Addr)

	// ReadRef loads reference slot i of obj.
	ReadRef(obj heap.Addr, slot int) heap.Addr

	// Collect forces a collection. If full is true the whole heap is
	// condemned (where the collector supports it).
	Collect(full bool) error

	// Roots returns the root set scanned (and updated) by collections.
	Roots() *RootSet

	// Space returns the underlying address space (collected frames plus
	// the immortal boot-image frames).
	Space() *heap.Space

	// Clock returns the run's cost-model timeline.
	Clock() *stats.Clock

	// HeapBytes returns the configured heap budget in bytes.
	HeapBytes() int

	// LiveEstimate returns the bytes currently occupied by (not
	// necessarily live) objects in the collected space.
	LiveEstimate() int

	// Name returns the collector configuration's display name.
	Name() string

	// ForEachObject visits every formatted object currently in the heap
	// (collected space and boot image), stopping early if fn returns
	// false. It is a debugging/validation facility; visiting order is
	// deterministic but unspecified.
	ForEachObject(fn func(heap.Addr) bool)
}

// MovedFunc is invoked by collectors for every object they move:
// (from, to). The vm validator uses it to keep its mirror map current.
type MovedFunc func(from, to heap.Addr)

// Hookable is implemented by collectors that support Hooks.
type Hookable interface {
	SetHooks(Hooks)
}
