package gc

import (
	"fmt"

	"beltway/internal/heap"
)

// Handle is a stable reference to a root slot. Because collections move
// objects, mutator code must never hold a heap.Addr across a potential
// collection point; it holds a Handle and rereads the address. This is
// the moral equivalent of the stack maps and registers a real VM scans.
//
// The zero Handle is NilHandle, so zero-valued fields and map misses are
// harmless.
type Handle int32

// NilHandle is the zero, empty handle; Get on it returns heap.Nil.
const NilHandle Handle = 0

// RootSet is the mutator's root table: a growable array of address slots
// plus a mark stack discipline (scopes) for temporaries. Collectors scan
// every live slot and update it in place when the referent moves.
type RootSet struct {
	slots  []heap.Addr
	inUse  []bool
	epochs []uint32 // incarnation counter per slot; bumps on free-list reuse
	free   []int32
	scoped [][]scopedRef // per open scope: handles to release at PopScope
}

// scopedRef pins a scope entry to one incarnation of its slot. A handle
// value is an index, so after Remove frees the slot and the free list
// hands the index out again, the same Handle names a different root;
// the epoch lets PopScope release exactly the incarnation it registered
// and skip stale entries. (Found by differential fuzzing: release inside
// a scope, then a global allocation reusing the slot, then PopScope
// silently killed the global root.)
type scopedRef struct {
	h     Handle
	epoch uint32
}

// NewRootSet returns an empty root set.
func NewRootSet() *RootSet {
	return &RootSet{}
}

// Add registers a new root holding a (possibly Nil) address and returns
// its handle. Roots added inside a scope are released by the matching
// PopScope; roots added outside any scope are global and live until
// Remove.
func (r *RootSet) Add(a heap.Addr) Handle {
	idx := r.addSlot(a)
	h := Handle(idx + 1)
	if n := len(r.scoped); n > 0 {
		r.scoped[n-1] = append(r.scoped[n-1], scopedRef{h, r.epochs[idx]})
	}
	return h
}

// AddGlobal registers a root that ignores the scope discipline: it lives
// until Remove even when created inside a scope. Long-lived structures
// built inside transaction scopes use this.
func (r *RootSet) AddGlobal(a heap.Addr) Handle {
	return Handle(r.addSlot(a) + 1)
}

func (r *RootSet) addSlot(a heap.Addr) int32 {
	if n := len(r.free); n > 0 {
		idx := r.free[n-1]
		r.free = r.free[:n-1]
		r.slots[idx] = a
		r.inUse[idx] = true
		r.epochs[idx]++
		return idx
	}
	r.slots = append(r.slots, a)
	r.inUse = append(r.inUse, true)
	r.epochs = append(r.epochs, 0)
	return int32(len(r.slots) - 1)
}

// Remove releases a root handle.
func (r *RootSet) Remove(h Handle) {
	if !r.valid(h) {
		panic(fmt.Sprintf("gc: Remove of invalid handle %d", h))
	}
	idx := int32(h) - 1
	r.slots[idx] = heap.Nil
	r.inUse[idx] = false
	r.free = append(r.free, idx)
}

// Get returns the current address held by h. It must be reread after any
// potential collection point.
func (r *RootSet) Get(h Handle) heap.Addr {
	if h == NilHandle {
		return heap.Nil
	}
	if !r.valid(h) {
		panic(fmt.Sprintf("gc: Get of invalid handle %d", h))
	}
	return r.slots[h-1]
}

// Set stores an address into root h. Root stores need no write barrier:
// roots are scanned in full at every collection, exactly as in the paper.
func (r *RootSet) Set(h Handle, a heap.Addr) {
	if !r.valid(h) {
		panic(fmt.Sprintf("gc: Set of invalid handle %d", h))
	}
	r.slots[h-1] = a
}

func (r *RootSet) valid(h Handle) bool {
	return h >= 1 && int(h) <= len(r.slots) && r.inUse[h-1]
}

// PushScope opens a dynamic scope: every handle Added until the matching
// PopScope is released automatically. Scopes model stack frames of the
// mutator.
func (r *RootSet) PushScope() {
	r.scoped = append(r.scoped, nil)
}

// PopScope closes the innermost scope, releasing its handles.
func (r *RootSet) PopScope() {
	n := len(r.scoped)
	if n == 0 {
		panic("gc: PopScope without PushScope")
	}
	for _, sr := range r.scoped[n-1] {
		if r.valid(sr.h) && r.epochs[sr.h-1] == sr.epoch {
			r.Remove(sr.h)
		}
	}
	r.scoped = r.scoped[:n-1]
}

// Len returns the number of live root slots.
func (r *RootSet) Len() int {
	n := 0
	for _, u := range r.inUse {
		if u {
			n++
		}
	}
	return n
}

// Capacity returns the size of the underlying slot table (scanned slots).
func (r *RootSet) Capacity() int { return len(r.slots) }

// Walk calls fn for every live, non-nil root slot with its current
// address; the slot is updated to fn's return value. Collectors use this
// to trace and forward roots.
func (r *RootSet) Walk(fn func(a heap.Addr) heap.Addr) {
	for i := range r.slots {
		if !r.inUse[i] {
			continue
		}
		if a := r.slots[i]; a != heap.Nil {
			r.slots[i] = fn(a)
		}
	}
}
