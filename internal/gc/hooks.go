package gc

// TriggerKind classifies why a collection started. It is reported to the
// GCBegin hook and recorded by the telemetry flight recorder, so that a
// pause in a trace can be attributed to the scheduling rule that caused
// it (§3.3.3 describes the triggers).
type TriggerKind uint8

const (
	// TriggerUnknown is the zero value; collectors should never emit it.
	TriggerUnknown TriggerKind = iota
	// TriggerHeapFull: an allocation could not be satisfied within the
	// heap budget (the common case; includes the nursery trigger, which
	// is the heap-full rule applied to a bounded nursery increment).
	TriggerHeapFull
	// TriggerRemset: the remset trigger fired — remembered entries
	// targeting a collectible increment exceeded the threshold.
	TriggerRemset
	// TriggerForced: an explicit Collect(false) call.
	TriggerForced
	// TriggerForcedFull: an explicit Collect(true) call condemning the
	// whole heap.
	TriggerForcedFull
	// TriggerEmergency: the graceful-degradation ladder condemned every
	// collectible increment as a last resort before surfacing an OOM —
	// the X.X -> X.X.100 completeness fallback.
	TriggerEmergency
)

func (t TriggerKind) String() string {
	switch t {
	case TriggerHeapFull:
		return "heap-full"
	case TriggerRemset:
		return "remset"
	case TriggerForced:
		return "forced"
	case TriggerForcedFull:
		return "forced-full"
	case TriggerEmergency:
		return "emergency"
	default:
		return "unknown"
	}
}

// GCBeginInfo describes a collection at the moment its condemned set is
// fixed, before any copying.
type GCBeginInfo struct {
	Trigger TriggerKind
	// Full reports whether the condemned set spans the whole occupied
	// heap (the FullCollections counter uses the same rule).
	Full bool
	// CondemnedIncrements and CondemnedBytes size the condemned set.
	CondemnedIncrements int
	CondemnedBytes      int
	// OccupiedBytes is the collected-space occupancy when the collection
	// started.
	OccupiedBytes int
}

// GCEndInfo describes a completed collection. All counter-style fields
// are deltas for THIS collection, not run totals.
type GCEndInfo struct {
	// Duration is the pause length so far in cost units. The hook runs
	// inside the pause (so the validator and recorder observe a
	// consistent heap); Duration covers all collection work.
	Duration float64
	// BytesCopied/ObjectsCopied are the evacuation volume.
	BytesCopied   uint64
	ObjectsCopied uint64
	// RemsetEntries is the number of remembered-set entries examined.
	RemsetEntries uint64
	// CardsScanned is the number of dirty cards processed (card-marking
	// configurations only).
	CardsScanned uint64
	// BootBytesScanned is the boot-image volume scanned (boundary-barrier
	// configurations only).
	BootBytesScanned uint64
	// BarrierSlowPaths counts barrier slow paths taken since the previous
	// collection (mutator-window activity, attributed to this GC).
	BarrierSlowPaths uint64
	// SurvivorBytes is the collected-space occupancy after the
	// collection.
	SurvivorBytes int
	// MRObjectsMarked/MRBytesMarked count survivors marked in place by
	// the mark-region substrate (instead of being copied);
	// MRFramesEvacuated counts sparse frames defragmented through the
	// copy path. All zero for purely copying configurations.
	MRObjectsMarked   uint64
	MRBytesMarked     uint64
	MRFramesEvacuated uint64
}

// IncrementInfo identifies one increment in hook callbacks.
type IncrementInfo struct {
	Belt   int
	Seq    uint32
	Train  int // MOS train id; -1 outside MOS belts
	Bytes  int
	Frames int
}

// BeltStat is a per-belt occupancy snapshot.
type BeltStat struct {
	Belt       int
	Increments int
	Bytes      int
	Frames     int
	// MRLines/MRLinesUsed report line-granularity occupancy for belts on
	// the mark-region substrate (both zero for copying belts).
	MRLines     int
	MRLinesUsed int
}

// DegradeStep identifies one rung of the graceful-degradation ladder.
type DegradeStep uint8

const (
	// DegradeEmergencyGC: an emergency full-heap collection ran (every
	// collectible increment condemned) before declaring OOM.
	DegradeEmergencyGC DegradeStep = iota + 1
	// DegradeRetryAverted: the allocation that exhausted the heap
	// succeeded on retry after the emergency collection — the OOM was
	// averted.
	DegradeRetryAverted
	// DegradeReserveRetry: an injected copy-reserve failure was absorbed
	// by retrying the grant.
	DegradeReserveRetry
	// DegradeOverdraft: the copy reserve was exhausted mid-collection and
	// the collector mapped a frame beyond its cap (settled by an
	// emergency collection at the next safe point).
	DegradeOverdraft
	// DegradeRemsetOverflow: a remembered-set insert was dropped (capped
	// remset); every later collection condemns all increments and scans
	// the boot image until the invariant is re-established.
	DegradeRemsetOverflow
)

func (s DegradeStep) String() string {
	switch s {
	case DegradeEmergencyGC:
		return "emergency-collection"
	case DegradeRetryAverted:
		return "retry-averted"
	case DegradeReserveRetry:
		return "reserve-retry"
	case DegradeOverdraft:
		return "reserve-overdraft"
	case DegradeRemsetOverflow:
		return "remset-overflow"
	default:
		return "unknown"
	}
}

// DegradeInfo describes one degradation-ladder step as it happens.
type DegradeInfo struct {
	Step DegradeStep
	// Requested is the allocation size that triggered the ladder (0 for
	// mid-collection steps).
	Requested int
	// HeapBytes is the configured heap budget.
	HeapBytes int
}

// Hooks are optional collector callbacks, used by the validator and by
// the telemetry subsystem. All fields may be nil; the zero value is a
// valid no-op set. Hook implementations must not mutate the heap and
// must not advance the clock — they observe the timeline, they are not
// on it.
type Hooks struct {
	// PreGC runs after the collector has decided to collect, before any
	// copying.
	PreGC func()
	// PostGC runs after a collection completes (after GCEnd/Occupancy).
	PostGC func()
	// Moved runs for every object copied during a collection.
	Moved MovedFunc

	// GCBegin runs once per collection, after the condemned set is fixed
	// and before any copying.
	GCBegin func(GCBeginInfo)
	// Condemned runs once per condemned increment, after GCBegin.
	Condemned func(IncrementInfo)
	// GCEnd runs once per completed collection, still inside the pause,
	// before PostGC. Collections aborted by an error (copy reserve
	// exhausted) do not reach GCEnd; the OOM hook fires instead.
	GCEnd func(GCEndInfo)
	// Occupancy runs once per belt after each collection (between GCEnd
	// and PostGC), delivering the post-collection heap composition.
	Occupancy func(BeltStat)
	// Flip runs when an older-first configuration swaps its belts,
	// reporting the new allocation belt and the remembered-set entry
	// count at the flip.
	Flip func(newAllocBelt, remsetEntries int)
	// OOM runs when the collector gives up on an allocation (or exhausts
	// the copy reserve mid-collection; requested is 0 in that case).
	OOM func(requested, heapBytes int)
	// Degraded runs for every graceful-degradation ladder step the
	// collector takes (emergency collection, reserve retry, overdraft,
	// remset overflow) before — and hopefully instead of — an OOM.
	Degraded func(DegradeInfo)
}

// Merge composes two hook sets: each callback invokes h's hook, then
// o's. Nil fields compose to the other side's hook unchanged, so merging
// with the zero Hooks is the identity.
func (h Hooks) Merge(o Hooks) Hooks {
	return Hooks{
		PreGC:     merge0(h.PreGC, o.PreGC),
		PostGC:    merge0(h.PostGC, o.PostGC),
		Moved:     merge2(h.Moved, o.Moved),
		GCBegin:   merge1(h.GCBegin, o.GCBegin),
		Condemned: merge1(h.Condemned, o.Condemned),
		GCEnd:     merge1(h.GCEnd, o.GCEnd),
		Occupancy: merge1(h.Occupancy, o.Occupancy),
		Flip:      mergeII(h.Flip, o.Flip),
		OOM:       mergeII(h.OOM, o.OOM),
		Degraded:  merge1(h.Degraded, o.Degraded),
	}
}

func merge0(a, b func()) func() {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func() { a(); b() }
}

func merge1[T any](a, b func(T)) func(T) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(v T) { a(v); b(v) }
}

func merge2[T, U any](a, b func(T, U)) func(T, U) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(x T, y U) { a(x, y); b(x, y) }
}

func mergeII(a, b func(int, int)) func(int, int) { return merge2(a, b) }
