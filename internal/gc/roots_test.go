package gc

import (
	"errors"
	"testing"
	"testing/quick"

	"beltway/internal/heap"
)

func TestRootSetAddGetSetRemove(t *testing.T) {
	r := NewRootSet()
	h := r.Add(0x100)
	if r.Get(h) != 0x100 {
		t.Error("Get after Add wrong")
	}
	r.Set(h, 0x200)
	if r.Get(h) != 0x200 {
		t.Error("Get after Set wrong")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	r.Remove(h)
	if r.Len() != 0 {
		t.Errorf("Len = %d after Remove", r.Len())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Get of removed handle did not panic")
			}
		}()
		r.Get(h)
	}()
}

func TestNilHandle(t *testing.T) {
	r := NewRootSet()
	if r.Get(NilHandle) != heap.Nil {
		t.Error("NilHandle must read as Nil")
	}
}

func TestHandleReuse(t *testing.T) {
	r := NewRootSet()
	h1 := r.Add(0x100)
	r.Remove(h1)
	h2 := r.Add(0x200)
	if h1 != h2 {
		t.Errorf("freed handle not reused: %d then %d", h1, h2)
	}
	if r.Capacity() != 1 {
		t.Errorf("Capacity = %d, want 1", r.Capacity())
	}
}

func TestScopes(t *testing.T) {
	r := NewRootSet()
	outer := r.Add(0x10)
	r.PushScope()
	inner := r.Add(0x20)
	r.PushScope()
	innermost := r.Add(0x30)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	r.PopScope()
	if r.Len() != 2 {
		t.Errorf("Len = %d after inner pop", r.Len())
	}
	_ = innermost
	r.PopScope()
	if r.Len() != 1 {
		t.Errorf("Len = %d after outer pop", r.Len())
	}
	if r.Get(outer) != 0x10 {
		t.Error("global root damaged by scope pops")
	}
	_ = inner
}

func TestScopeWithExplicitRemove(t *testing.T) {
	r := NewRootSet()
	r.PushScope()
	h := r.Add(0x40)
	r.Remove(h) // removed early; PopScope must not double-free
	r.PopScope()
	if r.Len() != 0 {
		t.Errorf("Len = %d", r.Len())
	}
}

// TestPopScopeSkipsReusedSlot is the regression test for a bug found by
// differential fuzzing (internal/check testdata fuzzcheck-880c6bc): a
// handle explicitly Removed inside a scope frees its slot index, the
// free list hands the same index — hence the same Handle value — to a
// later AddGlobal, and PopScope, still holding the stale entry, used to
// release the reused global root out from under the mutator.
func TestPopScopeSkipsReusedSlot(t *testing.T) {
	r := NewRootSet()
	r.PushScope()
	h := r.Add(0x40)
	r.Remove(h)
	g := r.AddGlobal(0x80) // reuses h's slot: same Handle value
	if g != h {
		t.Fatalf("precondition: expected slot reuse, got %d vs %d", g, h)
	}
	r.PopScope()
	if got := r.Get(g); got != 0x80 {
		t.Fatalf("global root killed by stale scope entry: Get = %#x", got)
	}
	// Same incarnation hazard with a scoped re-add in an outer scope.
	r2 := NewRootSet()
	r2.PushScope() // outer
	r2.PushScope() // inner
	a := r2.Add(0x10)
	r2.Remove(a)
	r2.PopScope() // inner scope: must not touch the freed slot
	b := r2.Add(0x20)
	if b != a {
		t.Fatalf("precondition: expected slot reuse, got %d vs %d", b, a)
	}
	if got := r2.Get(b); got != 0x20 {
		t.Fatalf("outer-scope root damaged: Get = %#x", got)
	}
	r2.PopScope() // outer: releases b's incarnation
	if r2.Len() != 0 {
		t.Fatalf("Len = %d after all scopes closed", r2.Len())
	}
}

func TestPopScopeUnderflowPanics(t *testing.T) {
	r := NewRootSet()
	defer func() {
		if recover() == nil {
			t.Error("PopScope on empty stack did not panic")
		}
	}()
	r.PopScope()
}

func TestWalkVisitsOnlyLiveNonNil(t *testing.T) {
	r := NewRootSet()
	a := r.Add(0x100)
	r.Add(heap.Nil)
	dead := r.Add(0x300)
	r.Remove(dead)

	seen := 0
	r.Walk(func(addr heap.Addr) heap.Addr {
		seen++
		return addr + 4 // simulate forwarding
	})
	if seen != 1 {
		t.Errorf("Walk visited %d slots, want 1", seen)
	}
	if r.Get(a) != 0x104 {
		t.Error("Walk did not update the slot")
	}
}

func TestOOMErrorUnwraps(t *testing.T) {
	err := error(&OOMError{Requested: 64, HeapBytes: 1024, Detail: "x"})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Error("OOMError does not unwrap to ErrOutOfMemory")
	}
	if err.Error() == "" {
		t.Error("empty error message")
	}
}

// TestScopeDisciplineProperty drives random scope push/pop/add/remove
// sequences and checks the live count and global-root survival.
func TestScopeDisciplineProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		r := NewRootSet()
		var globals []Handle
		var scoped [][]Handle
		for _, op := range ops {
			switch {
			case op < 90:
				h := r.Add(heap.Addr(op)*4 + 4)
				if len(scoped) == 0 {
					globals = append(globals, h)
				} else {
					scoped[len(scoped)-1] = append(scoped[len(scoped)-1], h)
				}
			case op < 120:
				h := r.AddGlobal(heap.Addr(op)*4 + 4)
				globals = append(globals, h)
			case op < 180:
				r.PushScope()
				scoped = append(scoped, nil)
			default:
				if len(scoped) > 0 {
					r.PopScope()
					scoped = scoped[:len(scoped)-1]
				}
			}
		}
		for len(scoped) > 0 {
			r.PopScope()
			scoped = scoped[:len(scoped)-1]
		}
		if r.Len() != len(globals) {
			return false
		}
		for _, g := range globals {
			if r.Get(g) == heap.Nil {
				return false
			}
		}
		return true
	}
	if err := quickCheck(prop); err != nil {
		t.Error(err)
	}
}

func quickCheck(f func([]uint8) bool) error {
	return quick.Check(f, &quick.Config{MaxCount: 80})
}
