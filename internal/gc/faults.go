package gc

// FaultHooks are deterministic fault-injection points threaded through
// the substrate and the collectors (see internal/resilience for the
// seed-driven scheduler that implements them). Every hook is consulted
// at one well-defined call site class; returning the "veto" value makes
// that call fail as if the underlying resource were exhausted. All
// fields may be nil (never consulted); a nil *FaultHooks disables
// injection entirely, and the collectors nil-guard every consultation so
// the fault-free hot paths stay allocation- and branch-cheap.
//
// Faults are infrastructure failures, not semantic ones: a collector
// absorbing an injected fault (by retrying, degrading, or collecting
// harder) must leave every mutator-observable outcome — the live graph,
// the allocation-serial stream, the OOM verdict — unchanged. The chaos
// mode of the differential oracle (internal/check.RunScriptChaos)
// asserts exactly that.
type FaultHooks struct {
	// MapFrame gates collectible frame maps (heap.Space.TryMapFrame /
	// TryMapSpan). Returning false fails this map; mutator paths treat
	// it as heap-full and collect, GC paths retry.
	MapFrame func() bool

	// ReserveGrant gates copy-reserve frame grants during collection.
	// Returning false simulates a transient mid-GC reservation failure.
	ReserveGrant func() bool

	// AllocCost returns an extra cost-multiplier for the current
	// allocation (0 for none): the allocation's byte cost is additionally
	// advanced by AllocByte*size*factor. Cost-only — excluded from the
	// oracle's semantic equivalence like all clock effects.
	AllocCost func() float64

	// RemsetInsert gates mutator-barrier remembered-set inserts.
	// Returning false drops the remember, simulating a capped remset;
	// the collector must then repair soundness by condemning every
	// increment (and scanning the boot image/LOS) at the next collection.
	RemsetInsert func() bool
}
