package experiments

import (
	"fmt"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/harness"
	"beltway/internal/workload"
)

// Ablations measures the design choices DESIGN.md calls out, holding the
// workloads and heap size (1.5x the Appel minimum, the tight-heap regime
// the paper optimizes for) fixed and toggling one mechanism at a time:
//
//   - pointer tracking: frame-barrier remsets (the paper's choice) vs
//     the boundary barrier + boot scans vs card marking (§5 discusses
//     why the paper chose remsets);
//   - copy reserve: dynamic conservative (§3.3.4) vs the classical fixed
//     half heap;
//   - nursery source filter (§3.3.2) on vs off;
//   - time-to-die trigger (§3.3.3) off vs on;
//   - completeness mechanism: none (X.X) vs third belt (X.X.100) vs
//     Mature Object Space trains (the §5 future-work extension).
func (s *Suite) Ablations() ([]harness.Table, error) {
	mins, err := s.MinHeaps()
	if err != nil {
		return nil, err
	}

	type variant struct {
		name string
		make func(heapBytes int) core.Config
	}
	base := func(h int) core.Config { return collectors.XX100(25, s.options(h)) }
	dims := []struct {
		title    string
		variants []variant
	}{
		{
			"Ablation: pointer tracking (Beltway 25.25.100 base)",
			[]variant{
				{"frame remsets", base},
				{"card marking", func(h int) core.Config {
					return collectors.WithCardBarrier(collectors.XX100(25, s.options(h)))
				}},
				{"boundary+bootscan", func(h int) core.Config {
					c := base(h)
					c.Name += "+boundary"
					c.Barrier = core.BoundaryBarrier
					return c
				}},
			},
		},
		{
			"Ablation: copy reserve (Beltway 25.25.100 base)",
			[]variant{
				{"dynamic conservative", base},
				{"fixed half heap", func(h int) core.Config {
					c := base(h)
					c.Name += "+halfres"
					c.FixedHalfReserve = true
					return c
				}},
			},
		},
		{
			"Ablation: nursery source filter (Beltway 25.25.100 base)",
			[]variant{
				{"filter on", base},
				{"filter off", func(h int) core.Config {
					c := base(h)
					c.Name += "-nofilter"
					c.NurseryFilter = false
					return c
				}},
			},
		},
		{
			"Ablation: time-to-die trigger (Beltway 25.25.100 base)",
			[]variant{
				{"ttd off", base},
				{"ttd heap/16", func(h int) core.Config {
					c := base(h)
					c.Name += "+ttd"
					c.TTDBytes = h / 16
					return c
				}},
			},
		},
		{
			"Ablation: completeness mechanism (X = 25)",
			[]variant{
				{"none (25.25)", func(h int) core.Config {
					return collectors.XX(25, s.options(h))
				}},
				{"third belt (25.25.100)", base},
				{"MOS trains (25.25.MOS)", func(h int) core.Config {
					return collectors.XXMOS(25, s.options(h))
				}},
			},
		},
	}

	heapFor := func(bench *workload.Benchmark) int {
		heapBytes := mins[bench.Name] * 3 / 2
		return (heapBytes / s.opts.Env.FrameBytes) * s.opts.Env.FrameBytes
	}

	// All ablation measurements are independent, so they are submitted as
	// one engine batch and the tables assembled afterwards in the fixed
	// dimension/variant/benchmark order.
	var specs []runSpec

	// Pretenuring is a workload-side toggle (allocation sites), so it is
	// measured outside the variant framework: same collector, same
	// benchmark, long-lived allocation sites routed to the top belt. The
	// environment differs from the suite's, so these runs bypass the
	// result cache and carry a distinguishing checkpoint tag.
	ptVariants := []string{"site-neutral", "pretenured"}
	for _, name := range ptVariants {
		env := s.opts.Env
		env.Pretenure = name == "pretenured"
		for _, bench := range s.opts.Benchmarks {
			specs = append(specs, runSpec{
				tag:       "pretenure",
				col:       harness.Collector{Name: name, Make: base},
				bench:     bench,
				heapBytes: heapFor(bench),
				env:       &env,
			})
		}
	}
	for _, dim := range dims {
		for _, v := range dim.variants {
			for _, bench := range s.opts.Benchmarks {
				specs = append(specs, runSpec{
					col:       harness.Collector{Name: v.name, Make: v.make},
					bench:     bench,
					heapBytes: heapFor(bench),
				})
			}
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	next := 0
	take := func() *harness.Result { r := results[next]; next++; return r }

	pt := harness.Table{
		Title: "Ablation: allocation-site pretenuring (Beltway 25.25.100 base)",
		Headers: []string{"Variant", "Benchmark", "Total (s)", "GC (s)", "GC %",
			"GCs", "Copied MB", "Pretenured MB"},
	}
	for _, name := range ptVariants {
		for _, bench := range s.opts.Benchmarks {
			r := take()
			if r.Incomplete() {
				pt.AddRow(name, bench.Name, incompleteCell(r), "-", "-", "-", "-", "-")
				continue
			}
			pt.AddRow(name, bench.Name,
				harness.FmtSec(r.TotalTime),
				harness.FmtSec(r.GCTime),
				fmt.Sprintf("%.1f%%", 100*r.GCFraction()),
				fmt.Sprint(r.Collections),
				fmt.Sprintf("%.2f", float64(r.Counters.BytesCopied)/(1<<20)),
				fmt.Sprintf("%.2f", float64(r.Counters.PretenuredBytes)/(1<<20)))
		}
	}

	var out []harness.Table
	for _, dim := range dims {
		t := harness.Table{
			Title: dim.title,
			Headers: []string{"Variant", "Benchmark", "Total (s)", "GC (s)", "GC %",
				"GCs", "Copied MB", "Barrier slow", "Cards scanned"},
		}
		for _, v := range dim.variants {
			for _, bench := range s.opts.Benchmarks {
				r := take()
				if r.Incomplete() {
					t.AddRow(v.name, bench.Name, incompleteCell(r), "-", "-", "-", "-", "-", "-")
					continue
				}
				t.AddRow(v.name, bench.Name,
					harness.FmtSec(r.TotalTime),
					harness.FmtSec(r.GCTime),
					fmt.Sprintf("%.1f%%", 100*r.GCFraction()),
					fmt.Sprint(r.Collections),
					fmt.Sprintf("%.2f", float64(r.Counters.BytesCopied)/(1<<20)),
					fmt.Sprint(r.Counters.BarrierSlowPaths),
					fmt.Sprint(r.Counters.CardsScanned))
			}
		}
		out = append(out, t)
	}
	out = append(out, pt)
	return out, nil
}
