// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each Figure* method runs the required heap-size sweep
// and renders the same data series the paper plots; cmd/experiments is
// the command-line front end and bench_test.go exposes each experiment as
// a testing.B benchmark.
//
// Results are cached per (collector, benchmark, heap size) within a
// Suite, so figures sharing configurations (Appel appears in Figures 1,
// 5, 6, 8, 9 and 10) do not rerun identical measurements.
package experiments

import (
	"fmt"
	"sync"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/generational"
	"beltway/internal/harness"
	"beltway/internal/workload"
)

// Opts configures a Suite.
type Opts struct {
	Env    harness.Env
	Points int // heap sizes per sweep (the paper used 33)
	// Benchmarks defaults to the full six-benchmark suite.
	Benchmarks []*workload.Benchmark
	// Progress, if non-nil, receives one line per completed run.
	Progress func(string)
}

// Suite runs experiments with shared minimum-heap and result caches.
type Suite struct {
	opts Opts

	minOnce sync.Once
	minErr  error
	mins    map[string]int

	mu    sync.Mutex
	cache map[cacheKey]*harness.Result
}

type cacheKey struct {
	collector string
	benchmark string
	heapBytes int
}

// New creates a Suite.
func New(opts Opts) *Suite {
	if opts.Points == 0 {
		opts.Points = 33
	}
	if opts.Env == (harness.Env{}) {
		opts.Env = harness.DefaultEnv()
	}
	if opts.Benchmarks == nil {
		opts.Benchmarks = workload.All()
	}
	return &Suite{opts: opts, cache: make(map[cacheKey]*harness.Result)}
}

// Env returns the suite's environment.
func (s *Suite) Env() harness.Env { return s.opts.Env }

func (s *Suite) options(heapBytes int) collectors.Options {
	return collectors.Options{
		HeapBytes:    heapBytes,
		FrameBytes:   s.opts.Env.FrameBytes,
		PhysMemBytes: s.opts.Env.PhysMemBytes,
	}
}

// Named collector factories, matching the paper's configuration names.

func (s *Suite) appel() harness.Collector {
	return harness.Collector{Name: "Appel", Make: func(h int) core.Config {
		return generational.Appel(s.options(h))
	}}
}

func (s *Suite) fixed(pct int) harness.Collector {
	return harness.Collector{Name: fmt.Sprintf("Fixed %d", pct), Make: func(h int) core.Config {
		return generational.Fixed(pct, s.options(h))
	}}
}

func (s *Suite) xx(x int) harness.Collector {
	return harness.Collector{Name: fmt.Sprintf("Beltway %d.%d", x, x), Make: func(h int) core.Config {
		return collectors.XX(x, s.options(h))
	}}
}

func (s *Suite) xx100(x int) harness.Collector {
	name := fmt.Sprintf("Beltway %d.%d.100", x, x)
	if x >= 100 {
		name = "Beltway 100.100.100"
	}
	return harness.Collector{Name: name, Make: func(h int) core.Config {
		c := collectors.XX100(x, s.options(h))
		c.Name = name
		return c
	}}
}

// MinHeaps returns (computing once) the Appel minimum heap per benchmark,
// the paper's Table 1 baseline and the x-axis origin of every figure.
func (s *Suite) MinHeaps() (map[string]int, error) {
	s.minOnce.Do(func() {
		s.mins, s.minErr = harness.FindMinHeaps(
			s.appel().Make, s.opts.Benchmarks, s.opts.Env, s.opts.Progress)
	})
	return s.mins, s.minErr
}

// Run executes one cached measurement.
func (s *Suite) run(col harness.Collector, bench *workload.Benchmark, heapBytes int) (*harness.Result, error) {
	key := cacheKey{col.Name, bench.Name, heapBytes}
	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	r, err := harness.RunOne(col.Make(heapBytes), bench, s.opts.Env)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache[key] = r
	s.mu.Unlock()
	if s.opts.Progress != nil {
		status := fmt.Sprintf("gc=%4.1f%%", 100*r.GCFraction())
		if r.OOM {
			status = "OOM"
		}
		s.opts.Progress(fmt.Sprintf("%-20s %-10s heap=%6.2fMB %s",
			col.Name, bench.Name, float64(heapBytes)/(1<<20), status))
	}
	return r, nil
}

// sweepCached is the cache-aware sweep used by every figure.
func (s *Suite) sweepCached(cols []harness.Collector) ([][]harness.SweepPoint, error) {
	mins, err := s.MinHeaps()
	if err != nil {
		return nil, err
	}
	points := s.opts.Points
	out := make([][]harness.SweepPoint, len(cols))
	for ci, col := range cols {
		out[ci] = make([]harness.SweepPoint, points)
		for pi := range out[ci] {
			out[ci][pi] = harness.SweepPoint{Collector: col.Name}
		}
	}
	for _, bench := range s.opts.Benchmarks {
		sizes := harness.HeapSizes(mins[bench.Name], 3, points, s.opts.Env.FrameBytes)
		for ci, col := range cols {
			for pi, size := range sizes {
				r, err := s.run(col, bench, size)
				if err != nil {
					return nil, err
				}
				p := &out[ci][pi]
				p.HeapBytes = size
				p.HeapRel = float64(size) / float64(mins[bench.Name])
				p.Results = append(p.Results, r)
			}
		}
	}
	return out, nil
}
