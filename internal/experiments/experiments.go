// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each Figure* method runs the required heap-size sweep
// and renders the same data series the paper plots; cmd/experiments is
// the command-line front end and bench_test.go exposes each experiment as
// a testing.B benchmark.
//
// Results are cached per (collector, benchmark, heap size) within a
// Suite, so figures sharing configurations (Appel appears in Figures 1,
// 5, 6, 8, 9 and 10) do not rerun identical measurements. Measurements
// execute through internal/engine: the cross-product behind each figure
// is submitted as independent jobs to a bounded worker pool (Opts.Jobs),
// optionally streaming a JSONL checkpoint that a restarted run resumes
// from. Results are reassembled in deterministic submission order, so
// tables are byte-identical regardless of worker count or completion
// order. The cache is a per-key singleflight: concurrent lookups of the
// same measurement wait for the one in flight instead of re-running it.
package experiments

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/engine"
	"beltway/internal/generational"
	"beltway/internal/harness"
	"beltway/internal/workload"
)

// Opts configures a Suite.
type Opts struct {
	Env    harness.Env
	Points int // heap sizes per sweep (the paper used 33)
	// Benchmarks defaults to the full six-benchmark suite.
	Benchmarks []*workload.Benchmark
	// Progress, if non-nil, receives one line per completed run.
	Progress func(string)
	// Jobs bounds concurrent measurements; <= 0 means GOMAXPROCS.
	Jobs int
	// Checkpoint is a JSONL file receiving one record per completed
	// measurement; "" disables checkpointing.
	Checkpoint string
	// Resume loads Checkpoint and skips measurements it already holds.
	Resume bool
	// Fingerprint, when non-empty, stamps every checkpoint record with
	// this config/binary hash and invalidates prior records whose hash
	// differs on resume (see engine.Config.Fingerprint).
	Fingerprint string
	// Timeout is a per-measurement wall-clock budget; 0 means none.
	Timeout time.Duration
	// OnRecord, if non-nil, receives every engine record (fresh and
	// resumed) as it settles; called concurrently from workers. Used by
	// cmd/experiments to aggregate telemetry live.
	OnRecord func(engine.Record)
	// ServerSLO is the pass/fail bar of the server experiment ("-exp
	// server"), in ParseSLO syntax; "" means DefaultServerSLO.
	ServerSLO string
}

// Suite runs experiments with shared minimum-heap and result caches.
type Suite struct {
	opts Opts
	exec *harness.Executor

	mu    sync.Mutex
	mins  map[string]*minEntry
	cache map[cacheKey]*cacheEntry
}

type cacheKey struct {
	collector string
	benchmark string
	heapBytes int
}

// cacheEntry is a singleflight slot: the goroutine that inserts it owns
// the measurement and closes done when res/err are set; everyone else
// waits on done.
type cacheEntry struct {
	done chan struct{}
	res  *harness.Result
	err  error
}

// minEntry is the per-benchmark singleflight slot for minimum-heap
// searches.
type minEntry struct {
	done chan struct{}
	val  int
	err  error
}

// New creates a Suite.
func New(opts Opts) *Suite {
	if opts.Points == 0 {
		opts.Points = 33
	}
	if opts.Env == (harness.Env{}) {
		opts.Env = harness.DefaultEnv()
	}
	if opts.Benchmarks == nil {
		opts.Benchmarks = workload.All()
	}
	return &Suite{
		opts:  opts,
		cache: make(map[cacheKey]*cacheEntry),
		mins:  make(map[string]*minEntry),
		exec: harness.NewExecutor(engine.Config{
			Workers:     opts.Jobs,
			Checkpoint:  opts.Checkpoint,
			Resume:      opts.Resume,
			Fingerprint: opts.Fingerprint,
			Timeout:     opts.Timeout,
			Progress:    opts.Progress,
			OnRecord:    opts.OnRecord,
		}),
	}
}

// Env returns the suite's environment.
func (s *Suite) Env() harness.Env { return s.opts.Env }

// Engine returns the suite's execution engine, so callers can wire
// crash-safe shutdown (engine.FlushOnSignal) around a checkpointed sweep.
func (s *Suite) Engine() *engine.Engine { return s.exec.Engine() }

// Progress returns a snapshot of the engine's progress (jobs done/total,
// failures, ETA).
func (s *Suite) Progress() engine.Progress { return s.exec.Engine().Reporter().Snapshot() }

// Close releases the suite's checkpoint file, if any.
func (s *Suite) Close() error { return s.exec.Close() }

func (s *Suite) options(heapBytes int) collectors.Options {
	return collectors.Options{
		HeapBytes:    heapBytes,
		FrameBytes:   s.opts.Env.FrameBytes,
		PhysMemBytes: s.opts.Env.PhysMemBytes,
	}
}

// Named collector factories, matching the paper's configuration names.

func (s *Suite) appel() harness.Collector {
	return harness.Collector{Name: "Appel", Make: func(h int) core.Config {
		return generational.Appel(s.options(h))
	}}
}

func (s *Suite) fixed(pct int) harness.Collector {
	return harness.Collector{Name: fmt.Sprintf("Fixed %d", pct), Make: func(h int) core.Config {
		return generational.Fixed(pct, s.options(h))
	}}
}

func (s *Suite) xx(x int) harness.Collector {
	return harness.Collector{Name: fmt.Sprintf("Beltway %d.%d", x, x), Make: func(h int) core.Config {
		return collectors.XX(x, s.options(h))
	}}
}

func (s *Suite) xx100(x int) harness.Collector {
	name := fmt.Sprintf("Beltway %d.%d.100", x, x)
	if x >= 100 {
		name = "Beltway 100.100.100"
	}
	return harness.Collector{Name: name, Make: func(h int) core.Config {
		c := collectors.XX100(x, s.options(h))
		c.Name = name
		return c
	}}
}

// minPayload is the checkpoint payload of a minimum-heap search.
type minPayload struct {
	MinHeapBytes int `json:"min_heap_bytes"`
}

// MinHeaps returns the Appel minimum heap per benchmark — the paper's
// Table 1 baseline and the x-axis origin of every figure. Searches run at
// most once per benchmark (concurrent callers wait for the one in
// flight), in parallel across benchmarks, and are checkpointed like any
// other job so a resumed run skips them.
func (s *Suite) MinHeaps() (map[string]int, error) {
	var owned []*minEntry
	var ownedBenches []*workload.Benchmark
	var foreign []*minEntry
	s.mu.Lock()
	for _, b := range s.opts.Benchmarks {
		if e, ok := s.mins[b.Name]; ok {
			foreign = append(foreign, e)
			continue
		}
		e := &minEntry{done: make(chan struct{})}
		s.mins[b.Name] = e
		owned = append(owned, e)
		ownedBenches = append(ownedBenches, b)
	}
	s.mu.Unlock()

	if len(owned) > 0 {
		jobs := make([]engine.Job, len(owned))
		for i := range owned {
			b := ownedBenches[i]
			jobs[i] = engine.Job{
				Key: engine.Key{Experiment: "minheap", Collector: "Appel", Benchmark: b.Name},
				Run: func() (any, engine.Outcome, error) {
					m, err := harness.FindMinHeap(s.appel().Make, b, s.opts.Env)
					if err != nil {
						return nil, "", err
					}
					return minPayload{MinHeapBytes: m}, engine.OK, nil
				},
			}
		}
		recs, err := s.exec.Engine().Run(jobs)
		for i, e := range owned {
			switch {
			case err != nil:
				e.err = err
			case !recs[i].Outcome.Completed():
				e.err = fmt.Errorf("experiments: min heap search for %s: %s: %s",
					ownedBenches[i].Name, recs[i].Outcome, recs[i].Error)
			default:
				var p minPayload
				if uerr := json.Unmarshal(recs[i].Payload, &p); uerr != nil || p.MinHeapBytes <= 0 {
					e.err = fmt.Errorf("experiments: bad min heap record for %s: %v",
						ownedBenches[i].Name, uerr)
				} else {
					e.val = p.MinHeapBytes
				}
			}
			close(e.done)
		}
	}
	for _, e := range foreign {
		<-e.done
	}

	out := make(map[string]int, len(s.opts.Benchmarks))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.opts.Benchmarks {
		e := s.mins[b.Name]
		if e.err != nil {
			return nil, e.err
		}
		out[b.Name] = e.val
	}
	return out, nil
}

// runSpec is one measurement request for runMany. A nil env means the
// suite environment and makes the result cacheable; a non-nil env (e.g.
// the pretenuring ablation) bypasses the cache and must set tag so its
// checkpoint key cannot collide with suite-environment runs of the same
// triple.
type runSpec struct {
	tag       string
	col       harness.Collector
	bench     *workload.Benchmark
	heapBytes int
	env       *harness.Env
}

// runMany executes the given measurements through the engine, filling the
// suite cache, and returns one Result per spec in spec order. Results are
// always non-nil; a failed job yields a placeholder with Result.Failure
// set. Concurrent runMany calls requesting the same triple wait for the
// in-flight measurement instead of re-running it (each call completes all
// work it owns before waiting on work owned by others, so there is no
// deadlock).
func (s *Suite) runMany(specs []runSpec) ([]*harness.Result, error) {
	results := make([]*harness.Result, len(specs))

	var hspecs []harness.RunSpec
	var hslots []int           // spec index per hspec
	var hentries []*cacheEntry // cache slot per hspec (nil when uncached)
	type waiter struct {
		idx   int
		entry *cacheEntry
	}
	var waits []waiter

	s.mu.Lock()
	for i, sp := range specs {
		env := s.opts.Env
		var entry *cacheEntry
		if sp.env != nil {
			env = *sp.env
		} else {
			key := cacheKey{sp.col.Name, sp.bench.Name, sp.heapBytes}
			if e, ok := s.cache[key]; ok {
				waits = append(waits, waiter{i, e})
				continue
			}
			entry = &cacheEntry{done: make(chan struct{})}
			s.cache[key] = entry
		}
		hspecs = append(hspecs, harness.RunSpec{
			Key: engine.Key{
				Experiment: sp.tag,
				Collector:  sp.col.Name,
				Benchmark:  sp.bench.Name,
				HeapBytes:  sp.heapBytes,
			},
			Make:  sp.col.Make,
			Bench: sp.bench,
			Env:   env,
		})
		hslots = append(hslots, i)
		hentries = append(hentries, entry)
	}
	s.mu.Unlock()

	if len(hspecs) > 0 {
		res, _, err := s.exec.RunAll(hspecs)
		if err != nil {
			for _, e := range hentries {
				if e != nil {
					e.err = err
					close(e.done)
				}
			}
			return nil, err
		}
		for k := range hspecs {
			results[hslots[k]] = res[k]
			if e := hentries[k]; e != nil {
				e.res = res[k]
				close(e.done)
			}
		}
	}
	for _, w := range waits {
		<-w.entry.done
		if w.entry.err != nil {
			return nil, w.entry.err
		}
		results[w.idx] = w.entry.res
	}
	return results, nil
}

// run executes one cached measurement.
func (s *Suite) run(col harness.Collector, bench *workload.Benchmark, heapBytes int) (*harness.Result, error) {
	rs, err := s.runMany([]runSpec{{col: col, bench: bench, heapBytes: heapBytes}})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// sweepCached is the cache-aware sweep used by every figure: the full
// (benchmark, collector, heap size) cross-product is submitted in one
// batch and reassembled in deterministic order.
func (s *Suite) sweepCached(cols []harness.Collector) ([][]harness.SweepPoint, error) {
	mins, err := s.MinHeaps()
	if err != nil {
		return nil, err
	}
	points := s.opts.Points
	out := make([][]harness.SweepPoint, len(cols))
	for ci, col := range cols {
		out[ci] = make([]harness.SweepPoint, points)
		for pi := range out[ci] {
			out[ci][pi] = harness.SweepPoint{Collector: col.Name}
		}
	}
	type slot struct {
		ci, pi, size, min int
	}
	var specs []runSpec
	var slots []slot
	for _, bench := range s.opts.Benchmarks {
		sizes := harness.HeapSizes(mins[bench.Name], 3, points, s.opts.Env.FrameBytes)
		for ci, col := range cols {
			for pi, size := range sizes {
				specs = append(specs, runSpec{col: col, bench: bench, heapBytes: size})
				slots = append(slots, slot{ci, pi, size, mins[bench.Name]})
			}
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	for k, r := range results {
		sl := slots[k]
		p := &out[sl.ci][sl.pi]
		p.HeapBytes = sl.size
		p.HeapRel = float64(sl.size) / float64(sl.min)
		p.Results = append(p.Results, r)
	}
	return out, nil
}
