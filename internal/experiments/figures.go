package experiments

import (
	"fmt"
	"math"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/harness"
	"beltway/internal/workload"
)

// Experiment couples an id (the paper's table/figure number) with the
// function that regenerates it.
type Experiment struct {
	ID          string
	Description string
	Run         func(*Suite) ([]harness.Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Benchmark characteristics: min heap, allocation, GC counts (Appel)", (*Suite).Table1},
		{"fig1", "GC time share and total time vs heap size, Appel, per benchmark", (*Suite).Figure1},
		{"fig5", "Appel vs Beltway 100.100 vs 100.100.100 (geomean GC and total time)", (*Suite).Figure5},
		{"fig6", "Fixed-size nursery sizes vs Appel (geomean GC and total time)", (*Suite).Figure6},
		{"fig7", "Beltway X.X.100 increment-size sensitivity (geomean GC and total time)", (*Suite).Figure7},
		{"fig8", "Beltway 25.25 vs 25.25.100 vs Appel (completeness cost)", (*Suite).Figure8},
		{"fig9", "Beltway 25.25.100 vs Appel vs Fixed-25 (geomean GC and total time)", (*Suite).Figure9},
		{"fig10", "Per-benchmark total time: Beltway 25.25.100 vs Appel vs Fixed-25", (*Suite).Figure10},
		{"fig11", "MMU curves for javac at two heap sizes", (*Suite).Figure11},
		{"ablations", "Design-choice ablations: barriers, reserve, filter, TTD, completeness", (*Suite).Ablations},
		{"mos", "Extension sweep: Beltway 25.25.MOS vs 25.25.100 vs 25.25 vs Appel", (*Suite).FigureMOS},
	}
}

// Extensions lists experiments that go beyond the paper's evaluation.
// They resolve through Get (e.g. "-exp substrate") but stay out of
// Registry, so "-exp all" regenerates exactly the paper's tables.
func Extensions() []Experiment {
	return []Experiment{
		{"substrate", "Mark-region substrate: 25.25-mr vs Immix vs copying 25.25 vs Appel", (*Suite).FigureSubstrate},
		{"server", "Server workload: request latency SLOs vs heap size across presets", (*Suite).FigureServer},
		{"adapt", "Adaptive policy controller: static vs adaptive on the synthetics and the server family", (*Suite).FigureAdapt},
	}
}

// Get returns the experiment with the given id, or nil. Extension
// experiments resolve here too.
func Get(id string) *Experiment {
	for _, e := range append(Registry(), Extensions()...) {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// Table1 reproduces paper Table 1: per benchmark, the minimum heap in
// which the Appel-style collector completes, total allocation, and the
// number of collections Appel performs at the largest (3x) and smallest
// (1x) heap sizes.
func (s *Suite) Table1() ([]harness.Table, error) {
	mins, err := s.MinHeaps()
	if err != nil {
		return nil, err
	}
	t := harness.Table{
		Title: "Table 1: benchmark characteristics (Appel-style collector)",
		Headers: []string{"Benchmark", "Min heap (MB)", "Total alloc (MB)",
			"GCs @3x", "GCs @1x", "Paper min/alloc (MB)"},
	}
	appel := s.appel()
	var specs []runSpec
	for _, b := range s.opts.Benchmarks {
		min := mins[b.Name]
		specs = append(specs,
			runSpec{col: appel, bench: b, heapBytes: min},
			runSpec{col: appel, bench: b, heapBytes: 3 * min})
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	for i, b := range s.opts.Benchmarks {
		small, large := results[2*i], results[2*i+1]
		if small.Failure != "" || large.Failure != "" {
			return nil, fmt.Errorf("experiments: table1 %s: %s%s", b.Name, small.Failure, large.Failure)
		}
		t.AddRow(b.Name,
			harness.FmtMB(mins[b.Name]),
			harness.FmtMB(int(large.Counters.BytesAllocated)),
			fmt.Sprint(large.Collections),
			fmt.Sprint(small.Collections),
			fmt.Sprintf("%d/%d", b.PaperMinHeapMB, b.PaperAllocMB))
	}
	return []harness.Table{t}, nil
}

// relAndAbsTables renders the standard pair of figure tables: metric
// relative to best (geomean across benchmarks) and absolute geomean
// seconds, per heap factor per collector.
func relAndAbsTables(title string, points [][]harness.SweepPoint, m harness.Metric, cols []harness.Collector) []harness.Table {
	rel := harness.RelativeToBest(points, m)
	abs := harness.AbsoluteGeoMean(points, m)
	headers := []string{"Heap (x min)"}
	for _, c := range cols {
		headers = append(headers, c.Name)
	}
	tr := harness.Table{Title: title + " — relative to best (lower is better)", Headers: headers}
	ta := harness.Table{Title: title + " — geometric mean (nominal seconds)", Headers: headers}
	for pi := range points[0] {
		f := points[0][pi].HeapRel
		rrow := []string{fmt.Sprintf("%.2f", f)}
		arow := []string{fmt.Sprintf("%.2f", f)}
		for ci := range cols {
			rrow = append(rrow, harness.FmtRel(rel[ci][pi]))
			arow = append(arow, harness.FmtSec(abs[ci][pi]))
		}
		tr.AddRow(rrow...)
		ta.AddRow(arow...)
	}
	return []harness.Table{tr, ta}
}

// Figure1 reproduces Figure 1: using the Appel-style collector over all
// six benchmarks, (a) the percentage of time spent in GC, and (b) total
// time relative to each benchmark's best, as heap size varies. The best
// total time is not always at the largest heap — pseudojbb pages.
func (s *Suite) Figure1() ([]harness.Table, error) {
	cols := []harness.Collector{s.appel()}
	points, err := s.sweepCached(cols)
	if err != nil {
		return nil, err
	}
	headers := []string{"Heap (x min)"}
	for _, b := range s.opts.Benchmarks {
		headers = append(headers, b.Name)
	}
	ga := harness.Table{Title: "Figure 1(a): percentage of time spent in GC (Appel)", Headers: headers}
	gb := harness.Table{Title: "Figure 1(b): total time relative to best (Appel)", Headers: headers}
	for pi := range points[0] {
		p := points[0][pi]
		rowA := []string{fmt.Sprintf("%.2f", p.HeapRel)}
		rowB := []string{fmt.Sprintf("%.2f", p.HeapRel)}
		for _, b := range s.opts.Benchmarks {
			var r *harness.Result
			for _, cand := range p.Results {
				if cand.Benchmark == b.Name {
					r = cand
				}
			}
			if r == nil || r.Incomplete() {
				rowA = append(rowA, "-")
				rowB = append(rowB, "-")
				continue
			}
			rowA = append(rowA, fmt.Sprintf("%.1f%%", 100*r.GCFraction()))
			rowB = append(rowB, "")
		}
		ga.AddRow(rowA...)
		gb.AddRow(rowB...)
	}
	// Fill 1(b) with per-benchmark relative series.
	for _, b := range s.opts.Benchmarks {
		series := harness.BenchmarkSeries(points, b.Name, harness.TotalTime)
		col := indexOf(headers, b.Name)
		for pi := range gb.Rows {
			gb.Rows[pi][col] = harness.FmtRel(series[0][pi])
		}
	}
	return []harness.Table{ga, gb}, nil
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// Figure5 compares Appel with its Beltway generalizations: Beltway
// 100.100 (the BA2/Appel configuration) and Beltway 100.100.100 (the
// three-generation generalization). The paper finds GC time virtually
// identical — Beltway X.X.100's wins do NOT come from merely adding a
// third generation.
func (s *Suite) Figure5() ([]harness.Table, error) {
	cols := []harness.Collector{s.appel(), s.xx(100), s.xx100(100)}
	points, err := s.sweepCached(cols)
	if err != nil {
		return nil, err
	}
	out := relAndAbsTables("Figure 5(a): GC time", points, harness.GCTime, cols)
	out = append(out, relAndAbsTables("Figure 5(b): total time", points, harness.TotalTime, cols)...)
	return out, nil
}

// Figure6 compares fixed-size nursery generational collectors (10%, 25%,
// 50%, 75% of usable memory) against the flexible-nursery Appel
// collector. Appel wins, and small fixed nurseries fail outright in
// tight heaps (missing points).
func (s *Suite) Figure6() ([]harness.Table, error) {
	cols := []harness.Collector{s.fixed(10), s.fixed(25), s.fixed(50), s.fixed(75), s.appel()}
	points, err := s.sweepCached(cols)
	if err != nil {
		return nil, err
	}
	out := relAndAbsTables("Figure 6(a): GC time", points, harness.GCTime, cols)
	out = append(out, relAndAbsTables("Figure 6(b): total time", points, harness.TotalTime, cols)...)
	return out, nil
}

// Figure7 explores Beltway X.X.100 increment-size sensitivity with
// X in {10, 25, 33, 50}: robust except the smallest increments.
func (s *Suite) Figure7() ([]harness.Table, error) {
	cols := []harness.Collector{s.xx100(10), s.xx100(25), s.xx100(33), s.xx100(50)}
	points, err := s.sweepCached(cols)
	if err != nil {
		return nil, err
	}
	out := relAndAbsTables("Figure 7(a): GC time", points, harness.GCTime, cols)
	out = append(out, relAndAbsTables("Figure 7(b): total time", points, harness.TotalTime, cols)...)
	return out, nil
}

// Figure8 asks whether sacrificing completeness pays: Beltway 25.25
// versus Beltway 25.25.100 versus Appel. The geometric means match; only
// javac (large cyclic garbage) punishes the incomplete collector.
func (s *Suite) Figure8() ([]harness.Table, error) {
	cols := []harness.Collector{s.xx(25), s.xx100(25), s.appel()}
	points, err := s.sweepCached(cols)
	if err != nil {
		return nil, err
	}
	out := relAndAbsTables("Figure 8(a): GC time", points, harness.GCTime, cols)
	out = append(out, relAndAbsTables("Figure 8(b): total time", points, harness.TotalTime, cols)...)
	return out, nil
}

// Figure9 is the headline comparison: Beltway 25.25.100 versus the
// Appel-style collector and the best fixed-size (25%) nursery collector,
// geomean GC time and total time.
func (s *Suite) Figure9() ([]harness.Table, error) {
	cols := []harness.Collector{s.xx100(25), s.appel(), s.fixed(25)}
	points, err := s.sweepCached(cols)
	if err != nil {
		return nil, err
	}
	out := relAndAbsTables("Figure 9(a): GC time", points, harness.GCTime, cols)
	out = append(out, relAndAbsTables("Figure 9(b): total time", points, harness.TotalTime, cols)...)
	return out, nil
}

// Figure10 shows per-benchmark total execution time for the Figure 9
// trio.
func (s *Suite) Figure10() ([]harness.Table, error) {
	cols := []harness.Collector{s.xx100(25), s.appel(), s.fixed(25)}
	points, err := s.sweepCached(cols)
	if err != nil {
		return nil, err
	}
	var out []harness.Table
	headers := []string{"Heap (x min)"}
	for _, c := range cols {
		headers = append(headers, c.Name)
	}
	for _, b := range s.opts.Benchmarks {
		t := harness.Table{
			Title:   fmt.Sprintf("Figure 10: %s total time relative to best", b.Name),
			Headers: headers,
		}
		rel := harness.BenchmarkSeries(points, b.Name, harness.TotalTime)
		for pi := range points[0] {
			row := []string{fmt.Sprintf("%.2f", points[0][pi].HeapRel)}
			for ci := range cols {
				row = append(row, harness.FmtRel(rel[ci][pi]))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// FigureMOS sweeps the §5 future-work configuration — a Mature Object
// Space top belt — against the paper's complete (25.25.100), incomplete
// (25.25) and baseline (Appel) collectors. The interesting questions:
// does MOS stay close to 25.25.100's throughput while avoiding its
// full-heap collections, and does it avoid 25.25's incompleteness
// failures in tight heaps?
func (s *Suite) FigureMOS() ([]harness.Table, error) {
	mosCol := harness.Collector{Name: "Beltway 25.25.MOS", Make: func(h int) core.Config {
		return collectors.XXMOS(25, s.options(h))
	}}
	cols := []harness.Collector{mosCol, s.xx100(25), s.xx(25), s.appel()}
	points, err := s.sweepCached(cols)
	if err != nil {
		return nil, err
	}
	out := relAndAbsTables("MOS extension: GC time", points, harness.GCTime, cols)
	out = append(out, relAndAbsTables("MOS extension: total time", points, harness.TotalTime, cols)...)

	// Full-collection counts: the point of MOS.
	t := harness.Table{
		Title:   "MOS extension: full-heap collections at 1.5x min heap",
		Headers: []string{"Collector", "Benchmark", "GCs", "Full GCs"},
	}
	mins, err := s.MinHeaps()
	if err != nil {
		return nil, err
	}
	var specs []runSpec
	for _, col := range cols {
		for _, b := range s.opts.Benchmarks {
			heapBytes := mins[b.Name] * 3 / 2
			heapBytes = (heapBytes / s.opts.Env.FrameBytes) * s.opts.Env.FrameBytes
			specs = append(specs, runSpec{col: col, bench: b, heapBytes: heapBytes})
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	for i, sp := range specs {
		r := results[i]
		if r.Incomplete() {
			t.AddRow(sp.col.Name, sp.bench.Name, incompleteCell(r), "-")
			continue
		}
		t.AddRow(sp.col.Name, sp.bench.Name, fmt.Sprint(r.Collections),
			fmt.Sprint(r.Counters.FullCollections))
	}
	out = append(out, t)
	return out, nil
}

// incompleteCell renders why a run produced no measurement.
func incompleteCell(r *harness.Result) string {
	switch {
	case r.OOM:
		return "OOM"
	case r.Aborted:
		return "budget"
	default:
		return "failed"
	}
}

// Figure11 reproduces the MMU (minimum mutator utilization) plots for
// javac at two heap sizes, comparing Appel with Beltway 10.10,
// 10.10.100, 33.33 and 33.33.100. Smaller increments give better
// responsiveness (higher MMU at small windows).
func (s *Suite) Figure11() ([]harness.Table, error) {
	mins, err := s.MinHeaps()
	if err != nil {
		return nil, err
	}
	var bench *workload.Benchmark
	for _, b := range s.opts.Benchmarks {
		if b.Name == "javac" {
			bench = b
		}
	}
	if bench == nil {
		return nil, fmt.Errorf("experiments: figure 11 requires javac in the benchmark set")
	}
	cols := []harness.Collector{s.appel(), s.xx(10), s.xx100(10), s.xx(33), s.xx100(33)}
	factors := []float64{1.5, 3.0}
	heaps := make([]int, len(factors))
	var specs []runSpec
	for fi, factor := range factors {
		heap := int(float64(mins[bench.Name]) * factor)
		heap = (heap / s.opts.Env.FrameBytes) * s.opts.Env.FrameBytes
		heaps[fi] = heap
		for _, col := range cols {
			specs = append(specs, runSpec{col: col, bench: bench, heapBytes: heap})
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	var out []harness.Table
	for fi, factor := range factors {
		heap := heaps[fi]
		headers := []string{"Window (ms)"}
		curves := make([]map[float64]float64, len(cols))
		var windows []float64
		for ci, col := range cols {
			headers = append(headers, col.Name)
			r := results[fi*len(cols)+ci]
			curves[ci] = map[float64]float64{}
			if r.Incomplete() {
				continue
			}
			// Sample MMU at fixed log-spaced windows so the collectors
			// share an axis.
			if windows == nil {
				for i := 0; i < 16; i++ {
					w := r.TotalTime / 3 * math.Pow(1e-4, float64(15-i)/15.0)
					windows = append(windows, w)
				}
			}
			curve := r.MMU(64)
			for _, w := range windows {
				curves[ci][w] = curve.At(w)
			}
		}
		t := harness.Table{
			Title: fmt.Sprintf("Figure 11: MMU for javac, heap %.1fx min (%s MB)",
				factor, harness.FmtMB(heap)),
			Headers: headers,
		}
		for _, w := range windows {
			row := []string{fmt.Sprintf("%.3f", w/733e3)} // cost units -> ms
			for ci := range cols {
				if u, ok := curves[ci][w]; ok {
					row = append(row, fmt.Sprintf("%.3f", u))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}
