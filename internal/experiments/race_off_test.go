//go:build !race

package experiments

// raceEnabled mirrors whether the race detector is compiled in; heavy
// sweep tests shrink their workloads under race to stay within the test
// timeout (the detector costs ~5-10x on these allocation-dense loops).
const raceEnabled = false
