package experiments

import (
	"strings"
	"testing"

	"beltway/internal/harness"
	"beltway/internal/workload"
)

// tinySuite runs experiments on two benchmarks at small scale so the
// whole registry can be exercised in a few seconds.
func tinySuite() *Suite {
	return New(Opts{
		Env:    harness.EnvForScale(0.1),
		Points: 3,
		Benchmarks: []*workload.Benchmark{
			workload.Get("jess"), workload.Get("javac"),
		},
	})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ablations", "mos"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if Get(id) == nil {
			t.Errorf("Get(%q) = nil", id)
		}
		if reg[i].Description == "" || reg[i].Run == nil {
			t.Errorf("%s: incomplete registration", id)
		}
	}
	if Get("fig99") != nil {
		t.Error("Get of unknown id should be nil")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	s := tinySuite()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Headers) == 0 || len(tb.Rows) == 0 {
					t.Errorf("%s: degenerate table %q", e.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Errorf("%s: ragged row in %q", e.ID, tb.Title)
						break
					}
				}
				// Render both formats.
				if tb.String() == "" || tb.CSV() == "" {
					t.Errorf("%s: empty rendering", e.ID)
				}
			}
		})
	}
}

func TestResultCachingAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two figures")
	}
	s := tinySuite()
	if _, err := s.Figure9(); err != nil {
		t.Fatal(err)
	}
	n := len(s.cache)
	// Figure 10 uses the identical collector trio: no new runs.
	if _, err := s.Figure10(); err != nil {
		t.Fatal(err)
	}
	if len(s.cache) != n {
		t.Errorf("Figure10 added %d uncached runs; trio should be fully cached", len(s.cache)-n)
	}
	// Figure 8 shares Appel and Beltway 25.25.100 but adds Beltway 25.25.
	if _, err := s.Figure8(); err != nil {
		t.Fatal(err)
	}
	added := len(s.cache) - n
	perCollector := len(s.opts.Benchmarks) * s.opts.Points
	if added != perCollector {
		t.Errorf("Figure8 added %d runs, want exactly one collector's worth (%d)",
			added, perCollector)
	}
}

func TestTable1ReportsAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 does min-heap searches")
	}
	s := tinySuite()
	tables, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != len(s.opts.Benchmarks) {
		t.Fatalf("table1 has %d rows, want %d", len(tb.Rows), len(s.opts.Benchmarks))
	}
	for _, row := range tb.Rows {
		if row[0] != "jess" && row[0] != "javac" {
			t.Errorf("unexpected benchmark row %q", row[0])
		}
		if strings.TrimSpace(row[1]) == "" {
			t.Error("empty min heap cell")
		}
	}
}
