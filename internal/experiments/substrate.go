package experiments

import (
	"fmt"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/harness"
	"beltway/internal/stats"
)

// FigureSubstrate sweeps the mark-region heap substrate against its
// copying equivalents: Beltway 25.25 with a mark-region mature belt
// (25.25-mr), the all-mark-region Immix limit, the plain copying
// Beltway 25.25, and the Appel baseline. Beyond the standard GC/total
// time sweeps it reports the substrate's economics at a tight heap —
// copy traffic avoided by marking survivors in place, lines swept back
// to free runs, sparse frames defragmented — plus pause percentiles and
// MMU, since cheaper mature collections are only interesting if they do
// not cost responsiveness.
//
// This experiment is an extension (the 2002 paper predates Immix); it is
// reachable by id ("-exp substrate") but intentionally not part of
// "-exp all", which regenerates exactly the paper's evaluation.
func (s *Suite) FigureSubstrate() ([]harness.Table, error) {
	mrCol := harness.Collector{Name: "Beltway 25.25-mr", Make: func(h int) core.Config {
		return collectors.WithMarkRegion(collectors.XX(25, s.options(h)))
	}}
	immixCol := harness.Collector{Name: "Immix", Make: func(h int) core.Config {
		return collectors.Immix(s.options(h))
	}}
	cols := []harness.Collector{mrCol, immixCol, s.xx(25), s.appel()}
	points, err := s.sweepCached(cols)
	if err != nil {
		return nil, err
	}
	out := relAndAbsTables("Substrate: GC time", points, harness.GCTime, cols)
	out = append(out, relAndAbsTables("Substrate: total time", points, harness.TotalTime, cols)...)

	// The substrate's ledger at 1.5x min heap: what the mark-region belts
	// marked in place (copying avoided), what they swept, what they still
	// had to evacuate (defrag), and what that did to pauses.
	mins, err := s.MinHeaps()
	if err != nil {
		return nil, err
	}
	var specs []runSpec
	for _, col := range cols {
		for _, b := range s.opts.Benchmarks {
			heapBytes := mins[b.Name] * 3 / 2
			heapBytes = (heapBytes / s.opts.Env.FrameBytes) * s.opts.Env.FrameBytes
			specs = append(specs, runSpec{col: col, bench: b, heapBytes: heapBytes})
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := harness.Table{
		Title: "Substrate: copy traffic and pauses at 1.5x min heap",
		Headers: []string{"Collector", "Benchmark", "GCs", "Copied MB", "Marked MB",
			"Lines freed", "Frames evac", "Pause p50", "Pause p95", "MMU@10ms"},
	}
	for i, sp := range specs {
		r := results[i]
		if r.Incomplete() {
			t.AddRow(sp.col.Name, sp.bench.Name, incompleteCell(r), "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		ps := stats.SummarizePauses(r.Pauses)
		const cyclesPerMs = stats.CyclesPerSecond / 1e3
		t.AddRow(sp.col.Name, sp.bench.Name,
			fmt.Sprint(r.Collections),
			fmt.Sprintf("%.2f", float64(r.Counters.BytesCopied)/(1<<20)),
			fmt.Sprintf("%.2f", float64(r.Counters.MRBytesMarked)/(1<<20)),
			fmt.Sprint(r.Counters.MRLinesReclaimed),
			fmt.Sprint(r.Counters.MRFramesEvacuated),
			harness.FmtSec(ps.Median),
			harness.FmtSec(ps.P95),
			fmt.Sprintf("%.3f", r.MMU(64).At(10*cyclesPerMs)))
	}
	out = append(out, t)
	return out, nil
}
