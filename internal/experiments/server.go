package experiments

import (
	"encoding/json"
	"fmt"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/engine"
	"beltway/internal/harness"
	"beltway/internal/server"
	"beltway/internal/stats"
)

// DefaultServerSLO is the pass/fail bar for the server experiment when
// the caller sets none: the p99 request must stay under 10k cost units
// (~13.6us nominal — a pause-free request), the p99.9 under 1M (~1.4ms:
// a request may absorb a nursery pause but not a mature collection), and
// no request may exceed 5M (~6.8ms). Calibrated at scale 1 so the bar
// discriminates: incremental collectors (Beltway) pass, collectors that
// park a long mature/full collection under a request (Fixed nursery at
// tight heaps, Immix at 2x live) fail on max or p99.9.
const DefaultServerSLO = "p99=10e3,p99.9=1e6,max=5e6"

// serverHeapFactors are the heap sizes of the server sweep, as multiples
// of the store's estimated live size. The floor is 2x: copying
// collectors reserve to-space on top of the live set, so below ~2x even
// the baseline OOMs.
var serverHeapFactors = []float64{2, 3, 4, 6}

// serverScorecardFactor is the heap factor of the SLO-vs-preset
// scorecard table.
const serverScorecardFactor = 3.0

// serverCollectors is the preset panel of the server experiment: the
// paper's baseline (Appel), the best fixed nursery, the incomplete and
// complete Beltway configurations, and both mark-region variants.
func (s *Suite) serverCollectors() []harness.Collector {
	mr := harness.Collector{Name: "Beltway 25.25-mr", Make: func(h int) core.Config {
		return collectors.WithMarkRegion(collectors.XX(25, s.options(h)))
	}}
	immix := harness.Collector{Name: "Immix", Make: func(h int) core.Config {
		return collectors.Immix(s.options(h))
	}}
	return []harness.Collector{
		s.appel(), s.fixed(25), s.xx(25), s.xx100(25), mr, immix,
	}
}

// FigureServer sweeps the request/response server workload
// (internal/server) across the preset panel and heap sizes, reporting
// per-request latency percentiles on the cost-unit clock and each
// configuration's SLO verdict. Collectors that win the throughput sweeps
// can lose here: a full-heap collection parked under a request inflates
// its latency by orders of magnitude, and the p99.9 column shows exactly
// which presets let that happen at which heap sizes.
//
// This experiment is an extension (the 2002 paper measures throughput
// and MMU, not request SLOs); it is reachable by id ("-exp server") but
// stays out of "-exp all".
func (s *Suite) FigureServer() ([]harness.Table, error) {
	sc := server.Scaled(s.opts.Env.Scale)
	sloStr := s.opts.ServerSLO
	if sloStr == "" {
		sloStr = DefaultServerSLO
	}
	slo, err := server.ParseSLO(sloStr)
	if err != nil {
		return nil, fmt.Errorf("experiments: server SLO: %w", err)
	}
	cols := s.serverCollectors()
	est := sc.EstLiveBytes()
	frame := s.opts.Env.FrameBytes

	type slot struct{ ci, fi int }
	var jobs []engine.Job
	var slots []slot
	for ci, col := range cols {
		for fi, f := range serverHeapFactors {
			hb := int(float64(est) * f)
			hb = (hb/frame + 1) * frame
			col, hb := col, hb
			jobs = append(jobs, engine.Job{
				Key: engine.Key{Experiment: "server", Collector: col.Name,
					Benchmark: "server", HeapBytes: hb},
				Run: func() (any, engine.Outcome, error) {
					res, rerr := harness.RunServer(col.Make(hb), sc, slo, s.opts.Env)
					if rerr != nil {
						return nil, "", rerr
					}
					out := engine.OK
					switch {
					case res.OOM:
						out = engine.OOM
					case res.Aborted:
						out = engine.Budget
					}
					return harness.RunPayload{
						Result:     res,
						PauseStats: stats.SummarizePauses(res.Pauses),
					}, out, nil
				},
			})
			slots = append(slots, slot{ci, fi})
		}
	}
	recs, err := s.exec.Engine().Run(jobs)
	if err != nil {
		return nil, err
	}
	results := make([][]*harness.Result, len(cols))
	for ci := range cols {
		results[ci] = make([]*harness.Result, len(serverHeapFactors))
	}
	for k, rec := range recs {
		sl := slots[k]
		r := &harness.Result{
			Collector: cols[sl.ci].Name,
			Benchmark: "server",
			HeapBytes: jobs[k].Key.HeapBytes,
			Failure:   string(rec.Outcome),
		}
		if rec.Outcome.Completed() && len(rec.Payload) > 0 {
			var p harness.RunPayload
			if uerr := json.Unmarshal(rec.Payload, &p); uerr == nil && p.Result != nil {
				r = p.Result
			} else {
				r.Failure = fmt.Sprintf("checkpoint decode: %v", uerr)
			}
		} else if rec.Error != "" {
			r.Failure += ": " + rec.Error
		}
		results[sl.ci][sl.fi] = r
	}

	sweep := harness.Table{
		Title: fmt.Sprintf("Server: request latency vs heap size (SLO %s)", slo),
		Headers: []string{"Collector", "Heap (x live)", "Heap (MB)", "GC%",
			"p50(us)", "p99(us)", "p99.9(us)", "max(us)", "paused%", "worst-infl", "SLO"},
	}
	for ci, col := range cols {
		for fi, f := range serverHeapFactors {
			r := results[ci][fi]
			if r.Incomplete() || r.Server == nil {
				sweep.AddRow(col.Name, fmt.Sprintf("%.1f", f), harness.FmtMB(r.HeapBytes),
					incompleteCell(r), "-", "-", "-", "-", "-", "-", "-")
				continue
			}
			d := r.Server.Overall
			sweep.AddRow(col.Name, fmt.Sprintf("%.1f", f), harness.FmtMB(r.HeapBytes),
				fmt.Sprintf("%.1f", 100*r.GCFraction()),
				harness.FmtUs(d.Latency.P50), harness.FmtUs(d.Latency.P99),
				harness.FmtUs(d.Latency.P999), harness.FmtUs(d.Latency.Max),
				fmt.Sprintf("%.2f", 100*d.PausedFrac),
				fmt.Sprintf("%.1f", d.WorstInflation),
				sloCell(r.Server))
		}
	}

	card := harness.Table{
		Title: fmt.Sprintf("Server: SLO scorecard at %.1fx live heap (SLO %s)",
			serverScorecardFactor, slo),
		Headers: []string{"Collector", "p99(us)", "p99.9(us)", "max(us)",
			"paused%", "GCs", "SLO"},
	}
	fi := indexOfFactor(serverHeapFactors, serverScorecardFactor)
	for ci, col := range cols {
		r := results[ci][fi]
		if r.Incomplete() || r.Server == nil {
			card.AddRow(col.Name, "-", "-", "-", "-", incompleteCell(r), "-")
			continue
		}
		d := r.Server.Overall
		card.AddRow(col.Name,
			harness.FmtUs(d.Latency.P99), harness.FmtUs(d.Latency.P999),
			harness.FmtUs(d.Latency.Max),
			fmt.Sprintf("%.2f", 100*d.PausedFrac),
			fmt.Sprint(r.Collections),
			sloCell(r.Server))
	}
	return []harness.Table{sweep, card}, nil
}

// sloCell renders a report's SLO outcome, naming the failed targets.
func sloCell(rep *server.Report) string {
	if len(rep.Verdicts) == 0 {
		return "-"
	}
	if rep.Passed {
		return "PASS"
	}
	cell := "FAIL"
	for _, v := range rep.Verdicts {
		if !v.Pass {
			cell += " " + v.Target.Quantile
		}
	}
	return cell
}

func indexOfFactor(fs []float64, f float64) int {
	for i, v := range fs {
		if v == f {
			return i
		}
	}
	return 0
}
