package experiments

import (
	"encoding/json"
	"fmt"

	"beltway/internal/engine"
	"beltway/internal/harness"
	"beltway/internal/server"
	"beltway/internal/stats"
)

// Parameters of the self-tuning sweep ("-exp adapt"): the synthetics run
// a mid-pressure heap (1.5x min, where static Beltway 25.25 pays real GC
// overhead) under the throughput objective; the server family runs the
// scorecard heap (3x live) under the SLO objective, the configuration
// where results/experiments_server.txt shows Fixed 25 failing its max
// bound statically.
const (
	adaptSynthFactor     = 1.5
	adaptSynthObjective  = "throughput"
	adaptServerObjective = "slo"
)

// FigureAdapt reports the adaptive policy controller (internal/policy)
// against the static presets it retunes: each configuration runs twice —
// once exactly as the paper's static preset, once with the controller —
// and the tables show both measurements side by side with the
// controller's decision count and net knob drift. The controller only
// moves knobs the paper itself exposes as command-line options, so every
// adaptive row is a configuration the static system could have been
// started with; the delta is choosing it online.
//
// This experiment is an extension (the 2002 paper has no feedback
// controller); it is reachable by id ("-exp adapt") but stays out of
// "-exp all", whose output must not depend on this machinery existing.
func (s *Suite) FigureAdapt() ([]harness.Table, error) {
	staticEnv := s.opts.Env
	staticEnv.Policy = ""
	synthEnv := s.opts.Env
	synthEnv.Policy = adaptSynthObjective

	// Synthetics: Beltway 25.25 at 1.5x min heap, throughput objective.
	mins, err := s.MinHeaps()
	if err != nil {
		return nil, err
	}
	col := s.xx(25)
	frame := s.opts.Env.FrameBytes
	var specs []runSpec
	for _, b := range s.opts.Benchmarks {
		hb := int(float64(mins[b.Name]) * adaptSynthFactor)
		hb = (hb/frame + 1) * frame
		specs = append(specs,
			runSpec{tag: "adapt-static", col: col, bench: b, heapBytes: hb, env: &staticEnv},
			runSpec{tag: "adapt-dyn", col: col, bench: b, heapBytes: hb, env: &synthEnv})
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	synth := harness.Table{
		Title: fmt.Sprintf("Adaptive policy: %s at %.1fx min heap, static vs -adapt %s",
			col.Name, adaptSynthFactor, adaptSynthObjective),
		Headers: []string{"Benchmark", "Heap (MB)", "GC% static", "GC% adaptive",
			"total(s) static", "total(s) adaptive", "GCs st/ad", "decisions", "knob-drift"},
	}
	for i := 0; i < len(results); i += 2 {
		st, ad := results[i], results[i+1]
		bench := s.opts.Benchmarks[i/2]
		if st.Incomplete() || ad.Incomplete() {
			synth.AddRow(bench.Name, harness.FmtMB(st.HeapBytes),
				incompleteCell(st), incompleteCell(ad), "-", "-", "-", "-", "-")
			continue
		}
		synth.AddRow(bench.Name, harness.FmtMB(st.HeapBytes),
			fmt.Sprintf("%.1f", 100*st.GCFraction()),
			fmt.Sprintf("%.1f", 100*ad.GCFraction()),
			harness.FmtSec(st.TotalTime), harness.FmtSec(ad.TotalTime),
			fmt.Sprintf("%d/%d", st.Collections, ad.Collections),
			policyDecisionsCell(ad), policyDriftCell(ad))
	}

	// Server family: the preset panel at the scorecard heap, SLO objective.
	sc := server.Scaled(s.opts.Env.Scale)
	sloStr := s.opts.ServerSLO
	if sloStr == "" {
		sloStr = DefaultServerSLO
	}
	slo, err := server.ParseSLO(sloStr)
	if err != nil {
		return nil, fmt.Errorf("experiments: server SLO: %w", err)
	}
	serverEnv := s.opts.Env
	serverEnv.Policy = adaptServerObjective
	cols := s.serverCollectors()
	hb := int(float64(sc.EstLiveBytes()) * serverScorecardFactor)
	hb = (hb/frame + 1) * frame

	envs := []harness.Env{staticEnv, serverEnv}
	tags := []string{"adapt-server-static", "adapt-server-dyn"}
	var jobs []engine.Job
	for ci := range cols {
		for ei := range envs {
			col, env := cols[ci], envs[ei]
			jobs = append(jobs, engine.Job{
				Key: engine.Key{Experiment: tags[ei], Collector: col.Name,
					Benchmark: "server", HeapBytes: hb},
				Run: func() (any, engine.Outcome, error) {
					res, rerr := harness.RunServer(col.Make(hb), sc, slo, env)
					if rerr != nil {
						return nil, "", rerr
					}
					out := engine.OK
					switch {
					case res.OOM:
						out = engine.OOM
					case res.Aborted:
						out = engine.Budget
					}
					return harness.RunPayload{
						Result:     res,
						PauseStats: stats.SummarizePauses(res.Pauses),
					}, out, nil
				},
			})
		}
	}
	recs, err := s.exec.Engine().Run(jobs)
	if err != nil {
		return nil, err
	}
	decoded := make([]*harness.Result, len(recs))
	for k, rec := range recs {
		r := &harness.Result{
			Collector: jobs[k].Key.Collector,
			Benchmark: "server",
			HeapBytes: hb,
			Failure:   string(rec.Outcome),
		}
		if rec.Outcome.Completed() && len(rec.Payload) > 0 {
			var p harness.RunPayload
			if uerr := json.Unmarshal(rec.Payload, &p); uerr == nil && p.Result != nil {
				r = p.Result
			} else {
				r.Failure = fmt.Sprintf("checkpoint decode: %v", uerr)
			}
		} else if rec.Error != "" {
			r.Failure += ": " + rec.Error
		}
		decoded[k] = r
	}
	srv := harness.Table{
		Title: fmt.Sprintf("Adaptive policy: server at %.1fx live heap, static vs -adapt %s (SLO %s)",
			serverScorecardFactor, adaptServerObjective, slo),
		Headers: []string{"Collector", "SLO static", "SLO adaptive",
			"max(us) static", "max(us) adaptive", "GC% st/ad", "decisions", "knob-drift"},
	}
	for ci, col := range cols {
		st, ad := decoded[2*ci], decoded[2*ci+1]
		srv.AddRow(col.Name,
			serverSLOCell(st), serverSLOCell(ad),
			serverMaxCell(st), serverMaxCell(ad),
			serverGCCell(st)+"/"+serverGCCell(ad),
			policyDecisionsCell(ad), policyDriftCell(ad))
	}
	return []harness.Table{synth, srv}, nil
}

func serverSLOCell(r *harness.Result) string {
	if r.Incomplete() || r.Server == nil {
		return incompleteCell(r)
	}
	return sloCell(r.Server)
}

func serverMaxCell(r *harness.Result) string {
	if r.Incomplete() || r.Server == nil {
		return "-"
	}
	return harness.FmtUs(r.Server.Overall.Latency.Max)
}

func serverGCCell(r *harness.Result) string {
	if r.Incomplete() {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*r.GCFraction())
}

func policyDecisionsCell(r *harness.Result) string {
	if r.Policy == nil {
		return "-"
	}
	return fmt.Sprintf("%d", r.Policy.Decisions)
}

func policyDriftCell(r *harness.Result) string {
	if r.Policy == nil || r.Policy.Drift == "" {
		return "-"
	}
	return r.Policy.Drift
}
