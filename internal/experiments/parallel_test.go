package experiments

import (
	"strings"
	"sync"
	"testing"

	"beltway/internal/harness"
	"beltway/internal/workload"
)

// TestFig9DeterministicAcrossJobs is the determinism regression test for
// the parallel engine: Figure 9 at -points 5 -scale 0.25 rendered with
// one worker and with eight workers must produce identical tables,
// character for character. Any divergence means a run observed shared
// mutable state or results were assembled in completion order.
func TestFig9DeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig9 twice at scale 0.25")
	}
	// Under the race detector the full six-benchmark sweep blows the test
	// timeout, so shrink the workload; the determinism property under test
	// is the same.
	scale, points := 0.25, 5
	var benches []*workload.Benchmark
	if raceEnabled {
		scale, points = 0.1, 3
		benches = []*workload.Benchmark{workload.Get("jess"), workload.Get("javac")}
	}
	render := func(jobs int) string {
		s := New(Opts{
			Env:        harness.EnvForScale(scale),
			Points:     points,
			Benchmarks: benches,
			Jobs:       jobs,
		})
		defer s.Close()
		tables, err := s.Figure9()
		if err != nil {
			t.Fatalf("fig9 with %d jobs: %v", jobs, err)
		}
		var b strings.Builder
		for _, tb := range tables {
			b.WriteString(tb.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("fig9 tables differ between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", seq, par)
	}
}

// TestSuiteCacheUnderConcurrency hammers the suite's singleflight caches
// from eight goroutines: every goroutine asks for the same min-heap
// search and the same measurement at once. Each must be executed exactly
// once — the engine progress feed is the witness — and every caller must
// observe the same result. Run with -race.
func TestSuiteCacheUnderConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a min-heap search")
	}
	var pmu sync.Mutex
	var lines []string
	s := New(Opts{
		Env:        harness.EnvForScale(0.1),
		Points:     3,
		Benchmarks: []*workload.Benchmark{workload.Get("jess")},
		Jobs:       8,
		Progress: func(line string) {
			pmu.Lock()
			lines = append(lines, line)
			pmu.Unlock()
		},
	})
	defer s.Close()

	const goroutines = 8
	results := make([]*harness.Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			mins, err := s.MinHeaps()
			if err != nil {
				errs[g] = err
				return
			}
			results[g], errs[g] = s.run(s.appel(), workload.Get("jess"), 2*mins["jess"])
		}()
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if results[g] == nil || results[g].Incomplete() {
			t.Fatalf("goroutine %d got unusable result %+v", g, results[g])
		}
		if results[g] != results[0] {
			t.Errorf("goroutine %d observed a different *Result than goroutine 0; cache did not deduplicate", g)
		}
	}

	pmu.Lock()
	defer pmu.Unlock()
	minLines, runLines := 0, 0
	for _, l := range lines {
		if strings.Contains(l, "minheap/") {
			minLines++
		} else {
			runLines++
		}
	}
	if minLines != 1 {
		t.Errorf("min-heap search executed %d times, want 1:\n%s", minLines, strings.Join(lines, "\n"))
	}
	if runLines != 1 {
		t.Errorf("measurement executed %d times, want 1:\n%s", runLines, strings.Join(lines, "\n"))
	}
	if len(s.cache) != 1 {
		t.Errorf("cache holds %d entries, want 1", len(s.cache))
	}
}
