package check

import (
	"path/filepath"
	"testing"
)

// TestDegradeCyclicFixture pins both outcomes of the committed
// demonstration fixture: the plain incomplete configuration must still
// OOM on the cross-increment cyclic garbage (if it stops OOMing, the
// fixture no longer demonstrates anything and needs retuning), and the
// identical configuration with the degradation ladder must complete.
func TestDegradeCyclicFixture(t *testing.T) {
	fx, err := LoadFixture(filepath.Join("testdata", "degrade-cyclic-xx25.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fx.Configs) != 2 {
		t.Fatalf("fixture has %d configs, want [plain, degraded]", len(fx.Configs))
	}
	if fx.Configs[0].Degrade || !fx.Configs[1].Degrade {
		t.Fatalf("config Degrade flags = %v/%v, want false/true",
			fx.Configs[0].Degrade, fx.Configs[1].Degrade)
	}

	plain := RunScriptDirect(fx.Script, fx.Configs[0])
	if plain.Err != "" {
		t.Fatalf("plain run failed outright: %s", plain.Err)
	}
	if !plain.OOM {
		t.Error("plain X.X completed: the fixture no longer demonstrates incompleteness")
	}

	deg := RunScriptDirect(fx.Script, fx.Configs[1])
	if deg.Err != "" {
		t.Fatalf("degraded run failed: %s", deg.Err)
	}
	if deg.OOM {
		t.Error("degraded run OOMed: the emergency-collection ladder no longer rescues it")
	}
}

// TestDegradeCyclicFixtureMatchesGenerator keeps the committed script in
// sync with its generator, so retuning edits can't silently fork the two.
func TestDegradeCyclicFixtureMatchesGenerator(t *testing.T) {
	fx, err := LoadFixture(filepath.Join("testdata", "degrade-cyclic-xx25.json"))
	if err != nil {
		t.Fatal(err)
	}
	want := DegradeCyclicScript()
	if len(fx.Script) != len(want) {
		t.Fatalf("fixture script has %d ops, generator %d", len(fx.Script), len(want))
	}
	for i := range want {
		if fx.Script[i] != want[i] {
			t.Fatalf("op %d: fixture %+v, generator %+v", i, fx.Script[i], want[i])
		}
	}
}
