package check

import (
	"errors"
	"fmt"

	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/resilience"
	"beltway/internal/vm"
)

// Chaos mode: the differential oracle under deterministic fault
// injection. The resilience layer's contract is that every injected
// fault is either absorbed (a vetoed frame map reads as heap-full and a
// collection clears it; a vetoed reserve grant is retried; a dropped
// remembered-set insert flips the heap into condemn-everything mode) or
// surfaces as a structured OOM — it must never change mutator-observable
// semantics. Chaos mode checks that mechanically: execute each seed
// script once fault-free per configuration, then re-execute it under N
// fault schedules and assert the live graph, the allocation-serial
// stream, and the OOM verdict are unchanged by when the faults fire.

// RunScriptDirect executes the script on one configuration under the
// shadow validator and returns the semantic outcome. Unlike the
// record/replay path it executes the full script even past mid-script
// collections triggered by injected faults, and an OOM yields the
// serial stream actually produced rather than a truncated trace — which
// is what both chaos comparison and the degradation fixtures need.
func RunScriptDirect(script Script, cfg core.Config) (out Outcome) {
	out.Name = cfg.Name
	defer func() {
		if r := recover(); r != nil {
			out.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	h, err := core.New(cfg, heap.NewRegistry())
	if err != nil {
		out.Err = "config: " + err.Error()
		return out
	}
	m := vm.New(h)
	v := m.EnableValidation()
	tap := &serialTap{m: m}
	m.SetRecorder(tap)
	err = m.Run(func() { Execute(script, m) })
	out.Serials = tap.serials
	out.Collections = h.Collections()
	if err != nil {
		if errors.Is(err, gc.ErrOutOfMemory) {
			out.OOM = true
			return out
		}
		out.Err = err.Error()
		return out
	}
	if cerr := v.Check(); cerr != nil {
		out.Err = "validator: " + cerr.Error()
		return out
	}
	out.Fingerprint = v.LiveFingerprint()
	return out
}

// ChaosRun is the verdict of one script's chaos battery.
type ChaosRun struct {
	Script    string
	Schedules int
	// Rounds counts (configuration, schedule) executions performed,
	// baselines excluded.
	Rounds int
	// TotalFired is the number of faults that actually fired across all
	// rounds; a battery where nothing fired tested nothing.
	TotalFired  int
	Divergences []Divergence
}

// Failed reports whether any round diverged from its baseline.
func (c *ChaosRun) Failed() bool { return len(c.Divergences) > 0 }

func (c *ChaosRun) String() string {
	out := ""
	for _, d := range c.Divergences {
		out += d.String() + "\n"
	}
	return out
}

// chaosScheduleSeed derives the seed of schedule si from the battery
// seed; the large odd stride keeps neighboring batteries' schedules
// disjoint.
func chaosScheduleSeed(faultSeed int64, si int) int64 {
	return faultSeed + int64(si)*1000003
}

// RunScriptChaos runs the chaos battery for one script: per
// configuration a fault-free baseline, then `schedules` deterministic
// fault schedules derived from faultSeed, each replayed with a fresh
// injector. Every configuration runs with the degradation ladder on —
// chaos asserts the ladder's absorption is semantics-preserving, and
// without it the first vetoed reserve grant would legitimately change
// the OOM verdict. Configurations whose baseline fails outright are
// reported once and excluded from fault rounds (the plain oracle owns
// that failure).
func RunScriptChaos(name string, script Script, cfgs []core.Config, faultSeed int64, schedules int) ChaosRun {
	run := ChaosRun{Script: name, Schedules: schedules}
	heapBytes := HeapBytesFor(script, OracleFrameBytes)
	horizon := 2 * len(script)
	if horizon < 512 {
		horizon = 512
	}

	type base struct {
		cfg Outcome
		ok  bool
	}
	sized := make([]core.Config, len(cfgs))
	baselines := make([]base, len(cfgs))
	for i, cfg := range cfgs {
		cfg.HeapBytes = heapBytes
		cfg.FrameBytes = OracleFrameBytes
		cfg.PhysMemBytes = 0
		cfg.Degrade = true
		cfg.Faults = nil
		sized[i] = cfg
		out := RunScriptDirect(script, cfg)
		if out.Err != "" {
			run.Divergences = append(run.Divergences, Divergence{
				A: cfg.Name, Field: "replay", Detail: "chaos baseline: " + out.Err})
			continue
		}
		baselines[i] = base{cfg: out, ok: true}
	}

	for si := 0; si < schedules; si++ {
		sched := resilience.NewSchedule(chaosScheduleSeed(faultSeed, si), horizon)
		for i, cfg := range sized {
			if !baselines[i].ok {
				continue
			}
			inj := resilience.NewInjector(sched)
			cfg.Faults = inj.Hooks()
			out := RunScriptDirect(script, cfg)
			run.Rounds++
			run.TotalFired += inj.TotalFired()
			run.Divergences = append(run.Divergences,
				chaosCompare(baselines[i].cfg, out, si)...)
		}
	}
	return run
}

// chaosCompare checks a faulted outcome against its fault-free baseline:
// same OOM verdict, no new failure, identical serial stream (prefix rule
// when a run OOMed), identical live graph when both completed.
func chaosCompare(baseline, faulted Outcome, schedIdx int) []Divergence {
	tag := fmt.Sprintf("%s+faults[%d]", faulted.Name, schedIdx)
	if faulted.Err != "" {
		return []Divergence{{A: tag, Field: "replay", Detail: faulted.Err}}
	}
	var divs []Divergence
	if baseline.OOM != faulted.OOM {
		divs = append(divs, Divergence{A: baseline.Name, B: tag, Field: "oom",
			Detail: fmt.Sprintf("OOM=%v fault-free vs OOM=%v under faults", baseline.OOM, faulted.OOM)})
	}
	if d := diffSerials(baseline, faulted); d != "" {
		divs = append(divs, Divergence{A: baseline.Name, B: tag, Field: "serials", Detail: d})
	}
	if !baseline.OOM && !faulted.OOM && baseline.Fingerprint != faulted.Fingerprint {
		divs = append(divs, Divergence{A: baseline.Name, B: tag, Field: "graph",
			Detail: diffLines(baseline.Fingerprint, faulted.Fingerprint)})
	}
	return divs
}
