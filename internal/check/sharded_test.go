package check

import (
	"testing"
)

// TestShardedOracleBattery is the sharded differential battery: every
// collector preset (all 15, mark-region and Immix included) runs every
// workload-shaped seed script dealt over 3 shards, concurrently and
// serially, and the schedules must agree on every shard's fingerprint,
// serial stream and OOM verdict. On top of the per-preset
// parallel-vs-serial diff, the parallel outcomes are also compared
// ACROSS presets — the sharded runtime must preserve the flat oracle's
// central property that mutator-observable semantics are configuration
// independent.
func TestShardedOracleBattery(t *testing.T) {
	const shards = 3
	cfgs, err := PresetConfigs()
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range SeedScripts() {
		seed := seed
		t.Run(seed.Name, func(t *testing.T) {
			t.Parallel()
			// ref holds the first preset's parallel outcomes for the
			// cross-preset comparison.
			var ref []Outcome
			for _, cfg := range cfgs {
				run := RunScriptSharded(seed.Script, cfg, shards, DefaultOpsPerRound)
				if run.Failed() {
					t.Fatalf("%s sharded oracle diverges on %s:\n%s", cfg.Name, seed.Name, run.String())
				}
				for _, o := range run.Parallel {
					if o.OOM {
						t.Fatalf("%s: %s OOMs under the sharded oracle sizing policy", seed.Name, o.Name)
					}
				}
				if ref == nil {
					ref = run.Parallel
					continue
				}
				for i := range run.Parallel {
					a, b := ref[i], run.Parallel[i]
					if d := diffSerials(a, b); d != "" {
						t.Errorf("%s vs %s: shard %d serials: %s", a.Name, b.Name, i, d)
					}
					if a.Fingerprint != b.Fingerprint {
						t.Errorf("%s vs %s: shard %d graphs: %s",
							a.Name, b.Name, i, diffLines(a.Fingerprint, b.Fingerprint))
					}
				}
			}
		})
	}
}

// TestShardedOracleShardCounts runs one seed over several shard
// widths, including 1 (a single shard exchanging with itself), and
// requires every width to replay cleanly with the script cut into
// multiple rounds so the exchange and safepoint paths actually run.
func TestShardedOracleShardCounts(t *testing.T) {
	cfgs, err := PresetConfigs()
	if err != nil {
		t.Fatal(err)
	}
	seed := SeedScripts()[0]
	for _, shards := range []int{1, 2, 4} {
		run := RunScriptSharded(seed.Script, cfgs[0], shards, 32)
		if run.Failed() {
			t.Fatalf("%d shards diverge:\n%s", shards, run.String())
		}
		if run.Rounds < 2 {
			t.Fatalf("%d shards: script cut into %d rounds; exchange never exercised", shards, run.Rounds)
		}
	}
}

// TestDealScript pins the round-robin deal: op i lands on shard i%n in
// order, and re-concatenating by position reproduces the interleaving.
func TestDealScript(t *testing.T) {
	var s Script
	for i := 0; i < 10; i++ {
		s = append(s, Op{Kind: OpWork, A: byte(i)})
	}
	subs := DealScript(s, 3)
	if len(subs[0]) != 4 || len(subs[1]) != 3 || len(subs[2]) != 3 {
		t.Fatalf("deal lengths %d/%d/%d", len(subs[0]), len(subs[1]), len(subs[2]))
	}
	for i, op := range s {
		got := subs[i%3][i/3]
		if got != op {
			t.Fatalf("op %d dealt wrong: %+v != %+v", i, got, op)
		}
	}
}
