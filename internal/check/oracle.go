package check

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/trace"
	"beltway/internal/vm"
	"beltway/internal/workload"
)

// OracleFrameBytes is the frame size the script oracle simulates with.
// 4 KiB keeps increments spanning several frames at oracle heap sizes.
const OracleFrameBytes = 4096

// Outcome is one configuration's replay result. Only OOM, Err, Serials
// and Fingerprint participate in equivalence; Collections is reported
// for context but is pure policy (configs legitimately differ).
type Outcome struct {
	Name        string
	OOM         bool   // replay ended in out-of-memory
	Err         string // validator failure, handle drift, config error, or panic
	Serials     []uint32
	Fingerprint string // final live-graph rendering; "" when OOM or Err
	Collections uint64
}

// Divergence is one oracle finding: either a single configuration
// failing against its own shadow graph (B empty), or a pair of
// configurations disagreeing on mutator-observable state.
type Divergence struct {
	A, B   string
	Field  string // "replay", "oom", "serials", "graph"
	Detail string
}

func (d Divergence) String() string {
	if d.B == "" {
		return fmt.Sprintf("[%s] %s: %s", d.Field, d.A, d.Detail)
	}
	return fmt.Sprintf("[%s] %s vs %s: %s", d.Field, d.A, d.B, d.Detail)
}

// Report is the oracle's verdict over one trace and a configuration set.
type Report struct {
	Outcomes    []Outcome
	Divergences []Divergence
}

// Failed reports whether the oracle found any divergence.
func (r *Report) Failed() bool { return len(r.Divergences) > 0 }

// String renders the divergence list, one per line.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Divergences {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// serialTap records the allocation-serial stream of a replay: the serial
// the collector assigned to each successive allocation. Serials are
// assigned in mutator-operation order, so the stream must be identical
// across every configuration replaying the same trace.
type serialTap struct {
	m       *vm.Mutator
	serials []uint32
}

func (t *serialTap) note(h gc.Handle) { t.serials = append(t.serials, t.m.Serial(h)) }

func (t *serialTap) Alloc(_ *heap.TypeDesc, _ int, h gc.Handle, _, _ bool) { t.note(h) }
func (t *serialTap) AllocPretenured(_ *heap.TypeDesc, _ int, h gc.Handle, _ bool) {
	t.note(h)
}
func (t *serialTap) SetRef(_ gc.Handle, _ int, _ gc.Handle) {}
func (t *serialTap) GetRef(_ gc.Handle, _ int, _ gc.Handle) {}
func (t *serialTap) Release(gc.Handle)                      {}
func (t *serialTap) Push()                                  {}
func (t *serialTap) Pop()                                   {}
func (t *serialTap) SetData(gc.Handle, int, uint32)         {}
func (t *serialTap) GetData(gc.Handle, int)                 {}
func (t *serialTap) Work(int)                               {}
func (t *serialTap) Collect(bool)                           {}
func (t *serialTap) Keep(_, _ gc.Handle)                    {}

// replayOne replays the trace on one configuration under the shadow
// validator, converting every failure mode — OOM, handle drift,
// validator violation, collector panic — into an Outcome.
func replayOne(tr *trace.Trace, cfg core.Config) (out Outcome) {
	out.Name = cfg.Name
	defer func() {
		if r := recover(); r != nil {
			out.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	h, err := core.New(cfg, heap.NewRegistry())
	if err != nil {
		out.Err = "config: " + err.Error()
		return out
	}
	m := vm.New(h)
	v := m.EnableValidation()
	tap := &serialTap{m: m}
	m.SetRecorder(tap)
	err = trace.Replay(tr, m)
	out.Serials = tap.serials
	out.Collections = h.Collections()
	if err != nil {
		if errors.Is(err, gc.ErrOutOfMemory) {
			out.OOM = true
			return out
		}
		out.Err = err.Error()
		return out
	}
	// A final explicit check: the last mutation may have happened after
	// the last collection, and the fingerprint below must describe a
	// verified heap.
	if cerr := v.Check(); cerr != nil {
		out.Err = "validator: " + cerr.Error()
		return out
	}
	out.Fingerprint = v.LiveFingerprint()
	return out
}

// Differential replays tr through every configuration and asserts
// pairwise equivalence of mutator-observable results:
//
//   - every replay must pass its own shadow-graph validation;
//   - OOM verdicts must agree (the oracle's heap-sizing policy makes
//     completion configuration-independent; see HeapBytesFor);
//   - allocation-serial streams must be identical — prefix-identical
//     when a run ended in OOM, since it stops mid-trace;
//   - final live-graph fingerprints must be identical (only compared
//     between runs that completed).
//
// Collections, pauses, cost, copied bytes, remset traffic and telemetry
// are policy, not semantics, and are excluded from equivalence.
func Differential(tr *trace.Trace, cfgs []core.Config) Report {
	var rep Report
	for _, cfg := range cfgs {
		rep.Outcomes = append(rep.Outcomes, replayOne(tr, cfg))
	}
	ref := -1
	for i, o := range rep.Outcomes {
		if o.Err != "" {
			rep.Divergences = append(rep.Divergences,
				Divergence{A: o.Name, Field: "replay", Detail: o.Err})
			continue
		}
		if ref < 0 {
			ref = i
		}
	}
	if ref < 0 {
		return rep // every replay failed; each failure already reported
	}
	a := rep.Outcomes[ref]
	for i, b := range rep.Outcomes {
		if i == ref || b.Err != "" {
			continue
		}
		if a.OOM != b.OOM {
			rep.Divergences = append(rep.Divergences, Divergence{
				A: a.Name, B: b.Name, Field: "oom",
				Detail: fmt.Sprintf("OOM=%v vs OOM=%v", a.OOM, b.OOM)})
		}
		if d := diffSerials(a, b); d != "" {
			rep.Divergences = append(rep.Divergences,
				Divergence{A: a.Name, B: b.Name, Field: "serials", Detail: d})
		}
		if !a.OOM && !b.OOM && a.Fingerprint != b.Fingerprint {
			rep.Divergences = append(rep.Divergences, Divergence{
				A: a.Name, B: b.Name, Field: "graph",
				Detail: diffLines(a.Fingerprint, b.Fingerprint)})
		}
	}
	return rep
}

// diffSerials compares two allocation-serial streams. A stream from an
// OOM'd run may be a proper prefix of the other; otherwise the streams
// must match exactly.
func diffSerials(a, b Outcome) string {
	n := min(len(a.Serials), len(b.Serials))
	for i := 0; i < n; i++ {
		if a.Serials[i] != b.Serials[i] {
			return fmt.Sprintf("allocation %d: serial %d vs %d", i, a.Serials[i], b.Serials[i])
		}
	}
	if len(a.Serials) != len(b.Serials) {
		short := a
		if len(b.Serials) < len(a.Serials) {
			short = b
		}
		if !short.OOM {
			return fmt.Sprintf("stream lengths %d vs %d with no OOM to explain the shorter",
				len(a.Serials), len(b.Serials))
		}
	}
	return ""
}

// diffLines reports the first line where two fingerprints differ.
func diffLines(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := min(len(la), len(lb))
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q vs %q", i, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths %d vs %d lines", len(la), len(lb))
}

// HeapBytesFor is the oracle's heap-sizing policy for scripts: at least
// three times the script's total allocation volume plus slack, rounded
// to frames. At that size every configuration completes — even an
// incomplete collector that never reclaims cyclic garbage, and even a
// classical collector reserving half the heap — so an OOM verdict is a
// bug, not policy, and verdicts are comparable across configurations.
func HeapBytesFor(s Script, frameBytes int) int {
	hb := 3*s.AllocBytes() + 64*frameBytes
	return (hb + frameBytes - 1) / frameBytes * frameBytes
}

// ScriptRun is the oracle result for one script: the recorded trace, the
// concrete (heap-sized) configurations, and the differential report.
type ScriptRun struct {
	Report
	Trace     *trace.Trace
	HeapBytes int
	Configs   []core.Config
	// RecordErr notes a failure while recording the reference trace
	// (an OOM prefix is not an error; a panic is).
	RecordErr string
}

// RunScript sizes every configuration by the oracle's heap policy,
// records the script's trace on the first configuration, and replays it
// differentially through all of them.
func RunScript(script Script, cfgs []core.Config) ScriptRun {
	heapBytes := HeapBytesFor(script, OracleFrameBytes)
	sized := make([]core.Config, len(cfgs))
	for i, cfg := range cfgs {
		cfg.HeapBytes = heapBytes
		cfg.FrameBytes = OracleFrameBytes
		cfg.PhysMemBytes = 0 // paging is a cost-model concern, not semantics
		sized[i] = cfg
	}
	return RunScriptConfigured(script, sized)
}

// RunScriptConfigured is RunScript with the configurations used exactly
// as given (heap and frame sizes included) — the form fixtures replay,
// so a committed reproducer reruns bit-identically.
func RunScriptConfigured(script Script, cfgs []core.Config) ScriptRun {
	run := ScriptRun{Configs: cfgs}
	if len(cfgs) == 0 {
		run.RecordErr = "no configurations"
		return run
	}
	run.HeapBytes = cfgs[0].HeapBytes
	run.Trace, run.RecordErr = recordScript(script, cfgs[0])
	if run.Trace == nil {
		run.Divergences = append(run.Divergences,
			Divergence{A: cfgs[0].Name, Field: "replay", Detail: "record: " + run.RecordErr})
		return run
	}
	run.Report = Differential(run.Trace, cfgs)
	if run.RecordErr != "" {
		// A panic while recording is a collector bug even if every
		// replay of the surviving prefix agrees.
		run.Divergences = append(run.Divergences,
			Divergence{A: cfgs[0].Name, Field: "replay", Detail: "record: " + run.RecordErr})
	}
	return run
}

// recordScript executes the script once on the reference configuration
// with a trace recorder attached. An OOM yields the trace prefix of the
// operations that succeeded (replays then compare that prefix); a panic
// is reported and yields whatever prefix was recorded.
func recordScript(script Script, cfg core.Config) (tr *trace.Trace, errStr string) {
	tr = trace.NewTrace()
	defer func() {
		if r := recover(); r != nil {
			errStr = fmt.Sprintf("panic: %v", r)
		}
	}()
	h, err := core.New(cfg, heap.NewRegistry())
	if err != nil {
		return nil, "config: " + err.Error()
	}
	m := vm.New(h)
	m.SetRecorder(tr)
	_ = m.Run(func() { Execute(script, m) }) // OOM truncates the trace; fine
	return tr, ""
}

// RecordWorkload records one bundled benchmark's mutator event stream at
// the given scale on a reference collector, exactly as cmd/tracebench
// does: the trace is then collector-independent input for Differential.
func RecordWorkload(b *workload.Benchmark, scale float64, seed int64, cfg core.Config) (*trace.Trace, error) {
	h, err := core.New(cfg, heap.NewRegistry())
	if err != nil {
		return nil, err
	}
	tr := trace.NewTrace()
	m := vm.New(h)
	m.SetRecorder(tr)
	ctx := &workload.Ctx{M: m, Types: h.Space().Types,
		Rng: rand.New(rand.NewSource(seed)), Scale: scale}
	if err := m.Run(func() { b.Body(ctx) }); err != nil {
		return nil, fmt.Errorf("check: recording %s: %w", b.Name, err)
	}
	return tr, nil
}
