package check

import (
	"fmt"
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
	"beltway/internal/policy"
)

// adaptObjectives are the controller objectives the adaptive oracle
// battery replays under. Adaptation moves scheduling knobs only, so
// every objective must preserve mutator-observable semantics: OOM
// verdicts, allocation-serial streams, and live-graph fingerprints all
// match the static replay of the same trace.
var adaptObjectives = []string{"slo", "mmu", "footprint", "throughput"}

// adaptiveConfigs builds one static configuration plus one per
// objective, each with its own fresh controller (controllers are
// stateful and single-run). The static config comes first: RunScript
// records the reference trace on cfgs[0], and the recording run must
// not consume a controller that a replay then reuses.
func adaptiveConfigs(t *testing.T, spec string) []core.Config {
	t.Helper()
	parse := func() core.Config {
		cfg, err := collectors.Parse(spec, collectors.Options{})
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		return cfg
	}
	cfgs := []core.Config{parse()}
	for _, obj := range adaptObjectives {
		pc, err := policy.Parse(obj)
		if err != nil {
			t.Fatalf("policy %q: %v", obj, err)
		}
		cfg := parse()
		cfg.Name = fmt.Sprintf("%s+%s", cfg.Name, obj)
		cfg.Policy = policy.New(pc)
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestAdaptiveOracle replays every seed script through every preset,
// statically and under each controller objective, and asserts the
// differential oracle finds no divergence: an adaptive run may schedule
// different collections, but the heap it shows the mutator is the same.
func TestAdaptiveOracle(t *testing.T) {
	for _, seed := range SeedScripts() {
		for _, spec := range PresetSpecs {
			seed, spec := seed, spec
			t.Run(seed.Name+"/"+spec, func(t *testing.T) {
				t.Parallel()
				run := RunScript(seed.Script, adaptiveConfigs(t, spec))
				if run.Failed() {
					t.Fatalf("adaptive divergence:\n%s", run.Report.String())
				}
			})
		}
	}
}
