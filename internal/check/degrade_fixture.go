package check

// DegradeCyclicScript builds the demonstration workload behind the
// committed degrade-cyclic fixture: the cyclic-garbage pattern the
// paper's completeness discussion warns about, expressed in the script
// dialect.
//
// Phase 1 allocates a ring of rooted ref-arrays, forcing a nursery
// collection every few allocations so the ring's nodes are promoted into
// *different* increments of the mature belt. Phase 2 links the ring in
// both directions — every node now holds pointers into its neighbors'
// increments, all captured by remembered sets. Phase 3 releases every
// root: the ring is garbage, but any *incremental* collection condemns
// one increment at a time and resurrects its slice of the ring through
// the neighbors' remsets. Phase 4 applies rooted allocation pressure
// that fits comfortably once the ring is reclaimed.
//
// On an incomplete configuration (X.X) the ring is never reclaimed and
// phase 4 dies with OOM; with Config.Degrade the emergency full-heap
// collection condemns all increments at once, reclaims the ring, and the
// run completes. The committed fixture pins both outcomes at an explicit
// heap size.
func DegradeCyclicScript() Script {
	const (
		ringNodes    = 200 // chk.arr, 24 refs each
		collectEvery = 25
		fillerNodes  = 800 // chk.node globals
	)
	var s Script
	for i := 0; i < ringNodes; i++ {
		s = append(s, Op{Kind: OpAllocArr, A: 23}) // length 24
		if i%collectEvery == collectEvery-1 {
			s = append(s, Op{Kind: OpCollect})
		}
	}
	for i := 0; i < ringNodes; i++ {
		s = append(s, Op{Kind: OpSetRef, A: byte(i), B: 0, C: byte((i + 1) % ringNodes)})
		s = append(s, Op{Kind: OpSetRef, A: byte(i), B: 1, C: byte((i + ringNodes - 1) % ringNodes)})
	}
	for i := 0; i < ringNodes; i++ {
		s = append(s, Op{Kind: OpRelease, A: 0})
	}
	for i := 0; i < fillerNodes; i++ {
		s = append(s, Op{Kind: OpAllocGlobal})
	}
	return s
}
