package check

import (
	"beltway/internal/collectors"
	"beltway/internal/core"
)

// PresetSpecs are the named collector spellings the oracle batteries
// replay against: every preset family in internal/collectors — the
// semi-space and Appel baselines, fixed nursery, older-first, two- and
// three-belt Beltway in aligned and mixed sizes, MOS, card marking, and
// the mark-region substrate (mature-belt hybrid and all-mark-region
// Immix).
var PresetSpecs = []string{
	"ss", "appel", "appel3", "ba2", "fixed:40",
	"bofm:20", "bof:25",
	"25.25", "30.60", "25.25.100", "40.40.mos",
	"cards:25.25",
	"25.25-mr", "25.25.100-mr", "immix",
}

// PresetConfigs parses the full preset battery. Heap geometry is left
// zero; the oracle's sizing policy (RunScript) or the caller fills it.
func PresetConfigs() ([]core.Config, error) {
	cfgs := make([]core.Config, 0, len(PresetSpecs))
	for _, spec := range PresetSpecs {
		cfg, err := collectors.Parse(spec, collectors.Options{})
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs, nil
}
