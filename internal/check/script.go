// Package check is the correctness subsystem: a differential oracle
// that replays one recorded mutator trace through many collector
// configurations and asserts that every configuration preserves the
// mutator-observable semantics — the paper's central claim that all
// points in the Beltway configuration space are *correct* copying
// collectors, checked mechanically rather than per-hand-written-test.
//
// The pieces:
//
//   - Script: a closed, total little language of mutator operations.
//     Every byte string decodes to a script and every subsequence of a
//     script is itself a runnable script (operands are taken modulo the
//     live-handle count), which is what makes both fuzzing and
//     delta-debugging trivial.
//   - Differential / RunScript: the oracle. One config records the
//     trace; every config replays it under the vm.Validator shadow
//     graph; final live-graph fingerprints, allocation-serial streams
//     and OOM verdicts must agree pairwise. Cost and telemetry fields
//     are explicitly NOT part of equivalence — they are policy.
//   - Minimize: a deterministic shrinker (ddmin over script ops, then
//     over config structure) that reduces any failure to a small
//     reproducer, written to testdata/ as a regression fixture.
package check

import (
	"fmt"

	"beltway/internal/gc"
	"beltway/internal/heap"
	"beltway/internal/vm"
)

// OpKind enumerates the script operations. The set mirrors vm.Mutator's
// surface (and therefore the trace op set), minus raw handle plumbing:
// operands are small indexes resolved modulo the current live-handle
// list, so every op sequence is executable.
type OpKind uint8

const (
	OpAlloc          OpKind = iota // scalar node in current scope
	OpAllocBig                     // larger scalar (4 refs, 8 data)
	OpAllocArr                     // ref array, length 1 + A%24
	OpAllocWords                   // word array, length 1 + A%24
	OpAllocLarge                   // ref array sized to exercise the LOS
	OpAllocGlobal                  // scalar node, scope-independent root
	OpAllocPretenure               // scalar node on an older belt
	OpAllocImmortal                // scalar node in the boot image
	OpSetRef                       // live[A].ref[B] = live[C]
	OpSetRefNil                    // live[A].ref[B] = nil
	OpGetRef                       // load live[A].ref[B] into a new handle
	OpSetData                      // live[A].data[B] = C
	OpGetData                      // read live[A].data[B]
	OpRelease                      // drop live[A]
	OpKeep                         // re-root live[A] outside its scope
	OpPush                         // open a root scope
	OpPop                          // close the innermost root scope
	OpWork                         // A units of application work
	OpCollect                      // forced nursery collection
	OpCollectFull                  // forced full-heap collection
	nOpKinds
)

var opNames = [...]string{
	"alloc", "allocBig", "allocArr", "allocWords", "allocLarge",
	"allocGlobal", "allocPretenure", "allocImmortal",
	"setRef", "setRefNil", "getRef", "setData", "getData",
	"release", "keep", "push", "pop", "work", "collect", "collectFull",
}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one script operation. Operand meaning depends on Kind; operands
// are bytes so that Encode∘Decode is the identity on canonical scripts.
type Op struct {
	Kind OpKind `json:"k"`
	A    byte   `json:"a,omitempty"`
	B    byte   `json:"b,omitempty"`
	C    byte   `json:"c,omitempty"`
}

// Script is a runnable operation sequence. Any subsequence of a valid
// script is valid: object-selecting operands index the live-handle list
// modulo its length, and unmatched Pop/excess Push are skipped.
type Script []Op

// maxScriptOps bounds decoded scripts so a fuzz input cannot demand an
// unbounded amount of simulation.
const maxScriptOps = 2048

// largeArrayLen is the element count used by OpAllocLarge: big enough to
// cross any LOS threshold the oracle configures, small enough to fit a
// 4 KiB frame when the config has no LOS.
const largeArrayLen = 600

// DecodeScript turns arbitrary bytes into a script: 4 bytes per op,
// [kind, a, b, c], kind taken modulo the op count. It is total — every
// input decodes — and exact on canonical scripts (see Encode).
func DecodeScript(data []byte) Script {
	n := len(data) / 4
	if n > maxScriptOps {
		n = maxScriptOps
	}
	s := make(Script, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*4:]
		s = append(s, Op{Kind: OpKind(b[0] % byte(nOpKinds)), A: b[1], B: b[2], C: b[3]})
	}
	return s
}

// Encode renders the script in the byte form DecodeScript reads. It is
// used to build fuzz seed-corpus entries from hand-shaped scripts.
func (s Script) Encode() []byte {
	out := make([]byte, 0, len(s)*4)
	for _, op := range s {
		out = append(out, byte(op.Kind), op.A, op.B, op.C)
	}
	return out
}

// scriptTypes is the fixed type vocabulary scripts allocate from.
type scriptTypes struct {
	node, big, arr, words *heap.TypeDesc
}

func defineScriptTypes(r *heap.Registry) scriptTypes {
	lookupOr := func(name string, def func() *heap.TypeDesc) *heap.TypeDesc {
		if t := r.Lookup(name); t != nil {
			return t
		}
		return def()
	}
	return scriptTypes{
		node:  lookupOr("chk.node", func() *heap.TypeDesc { return r.DefineScalar("chk.node", 2, 2) }),
		big:   lookupOr("chk.big", func() *heap.TypeDesc { return r.DefineScalar("chk.big", 4, 8) }),
		arr:   lookupOr("chk.arr", func() *heap.TypeDesc { return r.DefineRefArray("chk.arr") }),
		words: lookupOr("chk.words", func() *heap.TypeDesc { return r.DefineWordArray("chk.words") }),
	}
}

// arrayLen maps an operand byte to a bounded array length.
func arrayLen(a byte) int { return 1 + int(a)%24 }

// AllocBytes returns the total bytes the script requests from the
// collected heap (boot-image allocation excluded). The oracle sizes
// heaps from it so that even a collector that reclaims nothing — e.g. an
// incomplete configuration facing cyclic garbage — completes the run,
// making OOM verdicts comparable across configurations.
func (s Script) AllocBytes() int {
	total := 0
	for _, op := range s {
		switch op.Kind {
		case OpAlloc, OpAllocGlobal, OpAllocPretenure:
			total += (3 + 2 + 2) * heap.WordBytes
		case OpAllocBig:
			total += (3 + 4 + 8) * heap.WordBytes
		case OpAllocArr, OpAllocWords:
			total += (3 + arrayLen(op.A)) * heap.WordBytes
		case OpAllocLarge:
			total += (3 + largeArrayLen) * heap.WordBytes
		}
	}
	return total
}

// liveEntry tracks one handle the interpreter may use as an operand.
// depth is the scope depth the handle dies at (-1 for scope-independent
// roots, 0 for handles created outside any scope).
type liveEntry struct {
	h     gc.Handle
	depth int
}

// maxScopeDepth bounds Push nesting in scripts.
const maxScopeDepth = 8

// Execute runs the script against a mutator. It is deterministic and
// total: operands select among currently-live handles modulo their
// count, structurally impossible ops (Pop at depth zero, SetData on an
// object without data words) are skipped, and open scopes are closed at
// the end. An out-of-memory condition propagates as the usual vm panic
// to the caller's Run.
func Execute(s Script, m *vm.Mutator) {
	e := NewExecutor(m)
	for _, op := range s {
		e.Do(op)
	}
	e.Close()
}

// Executor is the script interpreter's resumable form: the same
// semantics as Execute, but stepped one Op at a time so a script can be
// cut into rounds (the sharded oracle interleaves rounds of N
// executors with exchange traffic and safepoints between them). An
// Executor holds the live-handle list and scope depth across calls;
// Execute is exactly NewExecutor + Do per op + Close.
type Executor struct {
	m     *vm.Mutator
	types scriptTypes
	live  []liveEntry
	depth int
}

// NewExecutor prepares a stepping interpreter on m, defining the
// script type vocabulary in m's registry if absent.
func NewExecutor(m *vm.Mutator) *Executor {
	return &Executor{m: m, types: defineScriptTypes(m.C.Space().Types)}
}

// Live returns the number of currently live handles.
func (e *Executor) Live() int { return len(e.live) }

// Newest returns the most recently acquired live handle (NilHandle
// when none are live) — the sharded oracle publishes it cross-shard.
func (e *Executor) Newest() gc.Handle {
	if len(e.live) == 0 {
		return gc.NilHandle
	}
	return e.live[len(e.live)-1].h
}

// Adopt appends a scope-independent handle (e.g. a consumed exchange
// message) to the live list, making it eligible as an operand for
// subsequent ops.
func (e *Executor) Adopt(h gc.Handle) {
	if h != gc.NilHandle {
		e.live = append(e.live, liveEntry{h, -1})
	}
}

// Close closes any scopes still open. A finished script must be
// Closed before its heap is fingerprinted.
func (e *Executor) Close() {
	for e.depth > 0 {
		e.closeScope()
	}
}

func (e *Executor) pick(a byte) int { return int(a) % len(e.live) }

func (e *Executor) closeScope() {
	kept := e.live[:0]
	for _, en := range e.live {
		if en.depth != e.depth {
			kept = append(kept, en)
		}
	}
	e.live = kept
	e.depth--
	e.m.Pop()
}

// Do executes one operation.
func (e *Executor) Do(op Op) {
	m := e.m
	switch op.Kind {
	case OpAlloc:
		e.live = append(e.live, liveEntry{m.Alloc(e.types.node, 0), e.depth})
	case OpAllocBig:
		e.live = append(e.live, liveEntry{m.Alloc(e.types.big, 0), e.depth})
	case OpAllocArr:
		e.live = append(e.live, liveEntry{m.Alloc(e.types.arr, arrayLen(op.A)), e.depth})
	case OpAllocWords:
		e.live = append(e.live, liveEntry{m.Alloc(e.types.words, arrayLen(op.A)), e.depth})
	case OpAllocLarge:
		e.live = append(e.live, liveEntry{m.Alloc(e.types.arr, largeArrayLen), e.depth})
	case OpAllocGlobal:
		e.live = append(e.live, liveEntry{m.AllocGlobal(e.types.node, 0), -1})
	case OpAllocPretenure:
		e.live = append(e.live, liveEntry{m.AllocPretenuredGlobal(e.types.node, 0), -1})
	case OpAllocImmortal:
		e.live = append(e.live, liveEntry{m.AllocImmortal(e.types.node, 0), e.depth})
	case OpSetRef:
		if len(e.live) == 0 {
			return
		}
		obj := e.live[e.pick(op.A)].h
		if n := numRefSlots(m, obj); n > 0 {
			m.SetRef(obj, int(op.B)%n, e.live[e.pick(op.C)].h)
		}
	case OpSetRefNil:
		if len(e.live) == 0 {
			return
		}
		obj := e.live[e.pick(op.A)].h
		if n := numRefSlots(m, obj); n > 0 {
			m.SetRefNil(obj, int(op.B)%n)
		}
	case OpGetRef:
		if len(e.live) == 0 {
			return
		}
		obj := e.live[e.pick(op.A)].h
		if n := numRefSlots(m, obj); n > 0 {
			if h := m.GetRef(obj, int(op.B)%n); h != gc.NilHandle {
				e.live = append(e.live, liveEntry{h, e.depth})
			}
		}
	case OpSetData:
		if len(e.live) == 0 {
			return
		}
		obj := e.live[e.pick(op.A)].h
		if n := numDataWords(m, obj); n > 0 {
			m.SetData(obj, int(op.B)%n, uint32(op.C))
		}
	case OpGetData:
		if len(e.live) == 0 {
			return
		}
		obj := e.live[e.pick(op.A)].h
		if n := numDataWords(m, obj); n > 0 {
			m.GetData(obj, int(op.B)%n)
		}
	case OpRelease:
		if len(e.live) == 0 {
			return
		}
		i := e.pick(op.A)
		m.Release(e.live[i].h)
		e.live[i] = e.live[len(e.live)-1]
		e.live = e.live[:len(e.live)-1]
	case OpKeep:
		if len(e.live) == 0 {
			return
		}
		e.live = append(e.live, liveEntry{m.Keep(e.live[e.pick(op.A)].h), -1})
	case OpPush:
		if e.depth < maxScopeDepth {
			e.depth++
			m.Push()
		}
	case OpPop:
		if e.depth > 0 {
			e.closeScope()
		}
	case OpWork:
		m.Work(1 + int(op.A)%64)
	case OpCollect:
		m.Collect(false)
	case OpCollectFull:
		m.Collect(true)
	}
}

func numRefSlots(m *vm.Mutator, obj gc.Handle) int {
	t := m.TypeOf(obj)
	switch t.Kind {
	case heap.Scalar:
		return t.RefSlots
	case heap.RefArray:
		return m.Length(obj)
	default:
		return 0
	}
}

func numDataWords(m *vm.Mutator, obj gc.Handle) int {
	t := m.TypeOf(obj)
	switch t.Kind {
	case heap.Scalar:
		return t.DataWords
	case heap.WordArray:
		return m.Length(obj)
	default:
		return 0
	}
}

// String renders the script one op per line, for failure reports.
func (s Script) String() string {
	out := ""
	for i, op := range s {
		out += fmt.Sprintf("%3d: %-14s a=%-3d b=%-3d c=%d\n", i, op.Kind, op.A, op.B, op.C)
	}
	return out
}
