package check

import (
	"testing"

	"beltway/internal/collectors"
	"beltway/internal/core"
)

// barrierStressScript builds a deterministic worst case for the write
// barrier: a promoted anchor repeatedly pointed at fresh nursery objects
// with a nursery collection after every store, so each young object
// survives only if the store was remembered.
func barrierStressScript() Script {
	s := Script{
		{Kind: OpAllocGlobal}, // the anchor, live[0]
		{Kind: OpCollectFull}, // promote it out of the nursery
	}
	// The live list is [anchor, loaded...] with exactly 1+i entries at
	// the head of iteration i, so the modular picks are deterministic:
	// 0 is the anchor, 1+i the fresh young node.
	//
	// The filler allocations matter: they make the nursery belt worth
	// collecting on its own (Collect(false) otherwise cascades into the
	// anchor's belt, and a condemned anchor is rescanned during copying,
	// healing any dropped remember). With a nursery-only collection the
	// young object survives solely through the remembered set; if the
	// barrier dropped it, the following GetRef touches a dead object in
	// an unmapped from-space frame.
	for i := 0; i < 12; i++ {
		idx := byte(1 + i)
		s = append(s,
			Op{Kind: OpAlloc},                      // young node -> live[1+i]
			Op{Kind: OpSetRef, A: 0, B: 0, C: idx}, // anchor.ref[0] = young
			Op{Kind: OpRelease, A: idx},            // young reachable only through anchor
		)
		for f := 0; f < 8; f++ { // ~19 KiB of filler garbage
			s = append(s,
				Op{Kind: OpAllocLarge},
				Op{Kind: OpRelease, A: idx},
			)
		}
		s = append(s,
			Op{Kind: OpCollect},            // nursery-only collection
			Op{Kind: OpGetRef, A: 0, B: 0}, // load it back; stays live
		)
	}
	return s
}

// TestOracleCatchesBarrierMutation is the subsystem's mutation test: a
// deliberately injected barrier bug (drop every 2nd interesting-pointer
// remember, via the DebugDropBarrierEvery knob) must be caught by the
// differential oracle and minimized to a small reproducer. If this test
// fails, the oracle has a blind spot for exactly the class of bug it
// exists to find.
func TestOracleCatchesBarrierMutation(t *testing.T) {
	clean, err := collectors.Parse("ss", collectors.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mutant, err := collectors.Parse("25.25", collectors.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mutant.Name = "25.25-mutant"
	mutant.DebugDropBarrierEvery = 2

	script := barrierStressScript()
	cfgs := []core.Config{clean, mutant}
	run := RunScript(script, cfgs)
	if !run.Failed() {
		t.Fatal("oracle did not catch the injected barrier bug")
	}
	t.Logf("caught:\n%s", run.String())

	res := Minimize(script, cfgs, OracleFails, 0)
	if !OracleFails(res.Script, res.Configs) {
		t.Fatal("minimized reproducer no longer fails")
	}
	if len(res.Script) > 20 {
		t.Fatalf("minimized reproducer has %d ops, want <= 20:\n%s", len(res.Script), res.Script)
	}
	t.Logf("minimized to %d ops, %d configs in %d evals:\n%s",
		len(res.Script), len(res.Configs), res.Evals, res.Script)

	// The sane sibling must pass: same script, same battery, no knob.
	mutant.DebugDropBarrierEvery = 0
	mutant.Name = "25.25"
	if run := RunScript(script, []core.Config{clean, mutant}); run.Failed() {
		t.Fatalf("un-mutated battery diverges:\n%s", run.String())
	}
}
