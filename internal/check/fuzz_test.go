package check

import (
	"math/rand"
	"testing"

	"beltway/internal/core"
)

// FuzzDifferential is the oracle under fuzz: arbitrary bytes decode to a
// script (the decoder is total), the script records one trace, and the
// trace replays through a battery of structurally different collectors —
// two fixed anchors plus configurations drawn from the fuzz input's
// config seed — with full shadow-graph validation. Any divergence fails.
// To reproduce and shrink a finding outside the fuzz driver:
//
//	go run ./cmd/fuzzcheck -minimize <corpus-file>
func FuzzDifferential(f *testing.F) {
	for _, seed := range SeedScripts() {
		f.Add(seed.Script.Encode(), int64(1))
		f.Add(seed.Script.Encode(), int64(42))
	}
	presets, err := PresetConfigs()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte, cfgSeed int64) {
		script := DecodeScript(data)
		if len(script) == 0 {
			return
		}
		// Anchors: the simplest collector (semi-space) and the classic
		// generational baseline with the boundary barrier; then two
		// random walks through the configuration space. Keeping the
		// battery at four configs trades breadth per exec for execs.
		cfgs := []core.Config{presets[0], presets[1]}
		rng := rand.New(rand.NewSource(cfgSeed))
		for i := 0; i < 2; i++ {
			cfgs = append(cfgs, RandomConfig(rng, 0, 0)) // sized by RunScript
		}
		run := RunScript(script, cfgs)
		if run.Failed() {
			t.Fatalf("divergence on %d-op script (config seed %d):\n%s\nscript:\n%s",
				len(script), cfgSeed, run.String(), script)
		}
	})
}
