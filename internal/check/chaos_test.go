package check

import "testing"

// TestChaosSeedScriptsAllPresets is the chaos battery at test scale:
// every seed script, every preset, three fault schedules. The resilience
// layer must absorb every injected fault without changing any
// mutator-observable result.
func TestChaosSeedScriptsAllPresets(t *testing.T) {
	cfgs, err := PresetConfigs()
	if err != nil {
		t.Fatal(err)
	}
	rounds, fired := 0, 0
	for _, seed := range SeedScripts() {
		run := RunScriptChaos(seed.Name, seed.Script, cfgs, 1, 3)
		if run.Failed() {
			t.Errorf("chaos divergence on %s:\n%s", seed.Name, run.String())
		}
		rounds += run.Rounds
		fired += run.TotalFired
	}
	if rounds < 200 {
		t.Errorf("battery executed %d fault rounds, want >= 200", rounds)
	}
	if fired == 0 {
		t.Error("no injected fault ever fired; the battery tested nothing")
	}
	t.Logf("chaos: %d rounds, %d faults fired", rounds, fired)
}

// TestChaosDeterministic: the battery is a pure function of (script,
// configs, seed, schedules) — same inputs, same fault count, same
// verdict. This is what makes a chaos failure reproducible from its
// logged seed.
func TestChaosDeterministic(t *testing.T) {
	cfgs, err := PresetConfigs()
	if err != nil {
		t.Fatal(err)
	}
	seed := SeedScripts()[2] // db
	a := RunScriptChaos(seed.Name, seed.Script, cfgs, 7, 2)
	b := RunScriptChaos(seed.Name, seed.Script, cfgs, 7, 2)
	if a.Rounds != b.Rounds || a.TotalFired != b.TotalFired || len(a.Divergences) != len(b.Divergences) {
		t.Errorf("chaos not deterministic: %+v vs %+v", a, b)
	}
}

// TestChaosCompareDetects: the comparison actually distinguishes the
// fields it claims to (a guard against the battery passing vacuously).
func TestChaosCompareDetects(t *testing.T) {
	base := Outcome{Name: "x", Serials: []uint32{1, 2, 3}, Fingerprint: "a\nb"}
	cases := []struct {
		name    string
		faulted Outcome
		field   string
	}{
		{"error", Outcome{Name: "x", Err: "boom"}, "replay"},
		{"oom-flip", Outcome{Name: "x", OOM: true, Serials: []uint32{1, 2, 3}}, "oom"},
		{"serials", Outcome{Name: "x", Serials: []uint32{1, 9, 3}, Fingerprint: "a\nb"}, "serials"},
		{"graph", Outcome{Name: "x", Serials: []uint32{1, 2, 3}, Fingerprint: "a\nc"}, "graph"},
	}
	for _, c := range cases {
		divs := chaosCompare(base, c.faulted, 0)
		if len(divs) == 0 {
			t.Errorf("%s: no divergence reported", c.name)
			continue
		}
		found := false
		for _, d := range divs {
			if d.Field == c.field {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: fields %v, want %q", c.name, divs, c.field)
		}
	}
	if divs := chaosCompare(base, base, 0); len(divs) != 0 {
		t.Errorf("identical outcomes diverge: %v", divs)
	}
}
