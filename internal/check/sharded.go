package check

import (
	"fmt"

	"beltway/internal/core"
	"beltway/internal/gc"
	"beltway/internal/shard"
)

// Sharded oracle: the differential oracle's answer to "is the
// multi-mutator runtime still the same collector?". One script is
// dealt round-robin over N shard mutators and cut into rounds; every
// round boundary exchanges a value cross-shard (each shard publishes
// its newest live handle and adopts its neighbor's stream), so the
// shards are genuinely coupled, not N independent runs. The identical
// schedule then executes two ways — concurrently on N goroutines
// (shard.Runtime.Run) and replayed one shard at a time on one
// goroutine (RunSerial) — and every mutator-observable outcome must
// match per shard: validated live-graph fingerprints, allocation
// serial streams, and OOM verdicts. Cost, pauses and telemetry remain
// policy, exactly as in the flat oracle.

// DefaultOpsPerRound is the round granularity of the sharded oracle:
// small enough that a script cuts into several rounds (so exchange and
// safepoint paths actually run), large enough that per-round overhead
// doesn't dominate.
const DefaultOpsPerRound = 64

// ShardedRun is the sharded oracle's result for one configuration.
type ShardedRun struct {
	Shards    int
	Rounds    int
	HeapBytes int // per-shard heap budget
	// Parallel and Serial hold per-shard outcomes of the two schedules,
	// indexed by shard id.
	Parallel []Outcome
	Serial   []Outcome
	// Divergences lists every disagreement (replay failures, OOM
	// verdicts, serial streams, fingerprints) between the schedules.
	Divergences []Divergence
}

// Failed reports whether the schedules diverged anywhere.
func (r *ShardedRun) Failed() bool { return len(r.Divergences) > 0 }

// String renders the divergence list, one per line.
func (r *ShardedRun) String() string {
	out := ""
	for _, d := range r.Divergences {
		out += d.String() + "\n"
	}
	return out
}

// DealScript partitions a script round-robin over n shards: op i goes
// to shard i%n, order preserved within a shard. The interleaving is
// the fixed schedule both execution modes replay.
func DealScript(s Script, n int) []Script {
	subs := make([]Script, n)
	for i, op := range s {
		subs[i%n] = append(subs[i%n], op)
	}
	return subs
}

// RunScriptSharded runs the sharded oracle for one configuration:
// the script is dealt over the given number of shards, cut into
// rounds of opsPerRound ops (DefaultOpsPerRound when <= 0), executed
// concurrently and serially, and the per-shard outcomes diffed.
// Every shard's heap uses the oracle sizing policy over the largest
// dealt sub-script, so OOM verdicts stay comparable across shards and
// configurations.
func RunScriptSharded(script Script, cfg core.Config, shards, opsPerRound int) ShardedRun {
	if opsPerRound <= 0 {
		opsPerRound = DefaultOpsPerRound
	}
	subs := DealScript(script, shards)
	heapBytes := 0
	maxOps := 0
	for _, sub := range subs {
		if hb := HeapBytesFor(sub, OracleFrameBytes); hb > heapBytes {
			heapBytes = hb
		}
		if len(sub) > maxOps {
			maxOps = len(sub)
		}
	}
	rounds := (maxOps + opsPerRound - 1) / opsPerRound
	if rounds == 0 {
		rounds = 1
	}
	cfg.HeapBytes = heapBytes
	cfg.FrameBytes = OracleFrameBytes
	cfg.PhysMemBytes = 0 // paging is a cost-model concern, not semantics

	run := ShardedRun{Shards: shards, Rounds: rounds, HeapBytes: heapBytes}
	var perr, serr error
	run.Parallel, perr = runShardedSchedule(cfg, subs, rounds, opsPerRound, false)
	run.Serial, serr = runShardedSchedule(cfg, subs, rounds, opsPerRound, true)
	if perr != nil {
		run.Divergences = append(run.Divergences,
			Divergence{A: cfg.Name, Field: "replay", Detail: "parallel: " + perr.Error()})
		return run
	}
	if serr != nil {
		run.Divergences = append(run.Divergences,
			Divergence{A: cfg.Name, Field: "replay", Detail: "serial: " + serr.Error()})
		return run
	}
	for i := range run.Parallel {
		a, b := run.Parallel[i], run.Serial[i]
		if a.Err != "" || b.Err != "" {
			if a.Err != b.Err {
				run.Divergences = append(run.Divergences, Divergence{
					A: a.Name, B: b.Name, Field: "replay",
					Detail: fmt.Sprintf("parallel err %q vs serial err %q", a.Err, b.Err)})
			} else {
				run.Divergences = append(run.Divergences,
					Divergence{A: a.Name, Field: "replay", Detail: a.Err})
			}
			continue
		}
		if a.OOM != b.OOM {
			run.Divergences = append(run.Divergences, Divergence{
				A: a.Name, B: b.Name, Field: "oom",
				Detail: fmt.Sprintf("parallel OOM=%v vs serial OOM=%v", a.OOM, b.OOM)})
		}
		if d := diffSerials(a, b); d != "" {
			run.Divergences = append(run.Divergences,
				Divergence{A: a.Name, B: b.Name, Field: "serials", Detail: d})
		}
		if !a.OOM && !b.OOM && a.Fingerprint != b.Fingerprint {
			run.Divergences = append(run.Divergences, Divergence{
				A: a.Name, B: b.Name, Field: "graph",
				Detail: diffLines(a.Fingerprint, b.Fingerprint)})
		}
	}
	return run
}

// runShardedSchedule executes the dealt script once, on the parallel
// or the serial schedule, returning per-shard outcomes.
func runShardedSchedule(cfg core.Config, subs []Script, rounds, opsPerRound int, serial bool) ([]Outcome, error) {
	shards := len(subs)
	rt, err := shard.New(cfg, shard.Options{
		Shards:       shards,
		PerShardHeap: true, // cfg.HeapBytes is already the per-shard policy size
		Validate:     true,
	})
	if err != nil {
		return nil, err
	}
	exs := make([]*Executor, shards)
	taps := make([]*serialTap, shards)
	plan := shard.Plan{
		Rounds: rounds,
		Body: func(r int, s *shard.Shard) {
			ex := exs[s.ID]
			if ex == nil {
				ex = NewExecutor(s.M)
				exs[s.ID] = ex
				taps[s.ID] = &serialTap{m: s.M}
				s.M.SetRecorder(taps[s.ID])
			}
			// Adopt the neighbor's committed stream before this round's
			// ops, so exchanged values become operands.
			if r > 0 {
				if h := s.Consume((s.ID + 1) % shards); h != gc.NilHandle {
					ex.Adopt(h)
				}
			}
			sub := subs[s.ID]
			lo := r * opsPerRound
			if lo > len(sub) {
				lo = len(sub)
			}
			hi := lo + opsPerRound
			if hi > len(sub) {
				hi = len(sub)
			}
			for _, op := range sub[lo:hi] {
				ex.Do(op)
				s.Poll()
			}
			if r == rounds-1 {
				ex.Close()
			}
			// Publish the newest live value on this shard's channel for
			// the neighbor to adopt next round.
			if h := ex.Newest(); h != gc.NilHandle {
				s.Publish(s.ID, h)
			}
		},
	}
	if serial {
		err = rt.RunSerial(plan)
	} else {
		err = rt.Run(plan)
	}
	if err != nil {
		return nil, err
	}
	mode := "par"
	if serial {
		mode = "ser"
	}
	outs := make([]Outcome, shards)
	for i, s := range rt.Shards() {
		out := Outcome{
			Name:        fmt.Sprintf("%s/%s/shard%d", cfg.Name, mode, i),
			Collections: s.Heap.Collections(),
		}
		if taps[i] != nil {
			out.Serials = taps[i].serials
		}
		switch {
		case s.OOM():
			out.OOM = true
		case s.Failure() != "":
			out.Err = s.Failure()
		default:
			if cerr := s.V.Check(); cerr != nil {
				out.Err = "validator: " + cerr.Error()
			} else {
				out.Fingerprint = s.V.LiveFingerprint()
			}
		}
		outs[i] = out
	}
	return outs, nil
}
