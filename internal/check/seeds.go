package check

// Seed scripts for the fuzz corpus, one per bundled benchmark, shaped on
// each workload's object demographics at small scale (a few hundred ops,
// so an oracle pass over a seed costs milliseconds). They are hand-built
// rather than converted traces: fuzz inputs are byte strings in the
// script encoding, and these give the fuzzer structurally interesting
// starting points — deep scope nesting, resident structures threaded
// with young pointers, LOS-sized arrays, pretenured and immortal data —
// in the dialect it can actually mutate.

// NamedScript pairs a seed script with its workload name.
type NamedScript struct {
	Name   string
	Script Script
}

// SeedScripts returns the six workload-shaped seeds in a fixed order.
func SeedScripts() []NamedScript {
	return []NamedScript{
		{"jess", seedJess()},
		{"raytrace", seedRaytrace()},
		{"db", seedDB()},
		{"javac", seedJavac()},
		{"jack", seedJack()},
		{"pseudojbb", seedPseudoJBB()},
		{"server-steady", seedServerSteady()},
		{"server-flip", seedServerFlip()},
		{"server-growth", seedServerGrowth()},
	}
}

// seedJess: rule-engine churn — bursts of short-lived nodes inside
// scopes, a working-memory survivor kept from each burst.
func seedJess() Script {
	var s Script
	s = append(s, Op{Kind: OpAllocGlobal}) // working memory anchor
	for burst := 0; burst < 12; burst++ {
		s = append(s, Op{Kind: OpPush})
		for i := 0; i < 10; i++ {
			s = append(s, Op{Kind: OpAlloc})
			s = append(s, Op{Kind: OpSetRef, A: byte(i), B: 0, C: byte(i + 1)})
		}
		s = append(s, Op{Kind: OpKeep, A: byte(burst * 3)})
		s = append(s, Op{Kind: OpSetRef, A: 0, B: 1, C: 255}) // anchor -> kept
		s = append(s, Op{Kind: OpWork, A: 16})
		s = append(s, Op{Kind: OpPop})
	}
	s = append(s, Op{Kind: OpCollect})
	return s
}

// seedRaytrace: a resident scene graph built up front, then a rendering
// loop of short-lived word-array "vectors" probing the scene.
func seedRaytrace() Script {
	var s Script
	for i := 0; i < 8; i++ {
		s = append(s, Op{Kind: OpAllocGlobal})
		s = append(s, Op{Kind: OpAllocArr, A: 7}) // length 8
		s = append(s, Op{Kind: OpSetRef, A: byte(2 * i), B: 0, C: byte(2*i + 1)})
	}
	for ray := 0; ray < 16; ray++ {
		s = append(s, Op{Kind: OpPush})
		for i := 0; i < 6; i++ {
			s = append(s, Op{Kind: OpAllocWords, A: 3})
			s = append(s, Op{Kind: OpSetData, A: 255, B: byte(i), C: byte(ray)})
		}
		s = append(s, Op{Kind: OpGetRef, A: byte(ray), B: 0})
		s = append(s, Op{Kind: OpWork, A: 8})
		s = append(s, Op{Kind: OpPop})
		if ray%5 == 4 {
			s = append(s, Op{Kind: OpCollect})
		}
	}
	return s
}

// seedDB: a resident record store (LOS-sized index plus record arrays)
// with in-place field updates and occasional record replacement.
func seedDB() Script {
	var s Script
	s = append(s, Op{Kind: OpAllocLarge}) // the index
	for i := 0; i < 10; i++ {
		s = append(s, Op{Kind: OpAllocBig})
		s = append(s, Op{Kind: OpSetRef, A: 0, B: byte(i), C: byte(i + 1)})
	}
	for txn := 0; txn < 20; txn++ {
		s = append(s, Op{Kind: OpGetRef, A: 0, B: byte(txn % 10)})
		s = append(s, Op{Kind: OpSetData, A: 255, B: byte(txn), C: byte(txn * 7)})
		s = append(s, Op{Kind: OpRelease, A: 255})
		if txn%4 == 3 { // replace a record
			s = append(s, Op{Kind: OpAllocBig})
			s = append(s, Op{Kind: OpSetRef, A: 0, B: byte(txn % 10), C: 255})
			s = append(s, Op{Kind: OpRelease, A: 255})
		}
		s = append(s, Op{Kind: OpWork, A: 4})
	}
	s = append(s, Op{Kind: OpCollectFull})
	return s
}

// seedJavac: compiler phases — medium-lifetime structures that survive a
// few collections then die in waves, with symbol-table survivors.
func seedJavac() Script {
	var s Script
	s = append(s, Op{Kind: OpAllocImmortal}) // "boot" symbol table root
	for phase := 0; phase < 4; phase++ {
		s = append(s, Op{Kind: OpPush})
		for i := 0; i < 15; i++ {
			s = append(s, Op{Kind: OpAlloc})
			s = append(s, Op{Kind: OpSetRef, A: byte(i), B: 1, C: byte(i / 2)})
		}
		s = append(s, Op{Kind: OpKeep, A: 200})
		s = append(s, Op{Kind: OpKeep, A: 100})
		s = append(s, Op{Kind: OpSetRef, A: 0, B: 0, C: 254}) // immortal -> kept
		s = append(s, Op{Kind: OpCollect})
		s = append(s, Op{Kind: OpPop})
		s = append(s, Op{Kind: OpWork, A: 32})
	}
	s = append(s, Op{Kind: OpCollectFull})
	return s
}

// seedJack: parser-generator bursts — the same alloc/release cycle
// repeated, nearly everything dying young, nursery pressure dominant.
func seedJack() Script {
	var s Script
	for cycle := 0; cycle < 10; cycle++ {
		s = append(s, Op{Kind: OpPush})
		for i := 0; i < 12; i++ {
			s = append(s, Op{Kind: OpAlloc})
			if i%3 == 2 {
				s = append(s, Op{Kind: OpRelease, A: byte(i)})
			}
		}
		s = append(s, Op{Kind: OpAllocArr, A: 11})
		s = append(s, Op{Kind: OpSetRef, A: 255, B: byte(cycle), C: 0})
		s = append(s, Op{Kind: OpPop})
	}
	s = append(s, Op{Kind: OpCollect})
	return s
}

// seedServerSteady: the internal/server request shape — a global
// directory of bucket ref-arrays holding word-array values, then a
// read-heavy request loop: two-level lookup, transient response scratch
// dying with the request scope, periodic nursery collections.
func seedServerSteady() Script {
	var s Script
	s = append(s, Op{Kind: OpAllocGlobal}) // directory
	for b := 0; b < 4; b++ {
		s = append(s, Op{Kind: OpAllocArr, A: 7}) // bucket
		s = append(s, Op{Kind: OpSetRef, A: 0, B: byte(b), C: 255})
		for k := 0; k < 4; k++ {
			s = append(s, Op{Kind: OpAllocWords, A: 5}) // value
			s = append(s, Op{Kind: OpSetData, A: 255, B: 0, C: byte(4*b + k)})
			s = append(s, Op{Kind: OpSetRef, A: byte(b + 1), B: byte(k), C: 255})
		}
	}
	for req := 0; req < 16; req++ {
		s = append(s, Op{Kind: OpPush})
		s = append(s, Op{Kind: OpGetRef, A: 0, B: byte(req % 4)})   // dir -> bucket
		s = append(s, Op{Kind: OpGetRef, A: 255, B: byte(req % 4)}) // bucket -> value
		s = append(s, Op{Kind: OpAllocWords, A: 9})                 // response scratch
		s = append(s, Op{Kind: OpSetData, A: 255, B: 0, C: byte(req)})
		s = append(s, Op{Kind: OpWork, A: 6})
		s = append(s, Op{Kind: OpPop})
		if req%8 == 7 {
			s = append(s, Op{Kind: OpCollect})
		}
	}
	return s
}

// seedServerFlip: the write-heavy phase after a ratio flip — requests
// replace values in place (the old value becomes floating garbage the
// nursery must find), with the hot bucket shifting mid-script like a
// popularity reshuffle.
func seedServerFlip() Script {
	var s Script
	s = append(s, Op{Kind: OpAllocGlobal})
	for b := 0; b < 3; b++ {
		s = append(s, Op{Kind: OpAllocArr, A: 7})
		s = append(s, Op{Kind: OpSetRef, A: 0, B: byte(b), C: 255})
	}
	for req := 0; req < 18; req++ {
		hot := 0
		if req >= 9 { // reshuffle: the hot bucket moves
			hot = 2
		}
		s = append(s, Op{Kind: OpPush})
		s = append(s, Op{Kind: OpGetRef, A: 0, B: byte(hot)})
		s = append(s, Op{Kind: OpAllocWords, A: 6}) // replacement value
		s = append(s, Op{Kind: OpSetData, A: 255, B: 1, C: byte(req * 3)})
		s = append(s, Op{Kind: OpSetRef, A: 254, B: byte(req % 8), C: 255})
		s = append(s, Op{Kind: OpWork, A: 4})
		s = append(s, Op{Kind: OpPop})
		if req%6 == 5 {
			s = append(s, Op{Kind: OpCollect})
		}
	}
	s = append(s, Op{Kind: OpCollectFull})
	return s
}

// seedServerGrowth: working-set growth — the store gains fresh buckets
// and values mid-script (populated outside any request scope), then the
// read loop spans old and new keys.
func seedServerGrowth() Script {
	var s Script
	s = append(s, Op{Kind: OpAllocGlobal})
	s = append(s, Op{Kind: OpAllocArr, A: 7})
	s = append(s, Op{Kind: OpSetRef, A: 0, B: 0, C: 255})
	for req := 0; req < 8; req++ {
		s = append(s, Op{Kind: OpPush})
		s = append(s, Op{Kind: OpGetRef, A: 0, B: 0})
		s = append(s, Op{Kind: OpAllocWords, A: 9})
		s = append(s, Op{Kind: OpPop})
	}
	for b := 1; b < 4; b++ { // growth: new buckets join the directory
		s = append(s, Op{Kind: OpAllocArr, A: 7})
		s = append(s, Op{Kind: OpSetRef, A: 0, B: byte(b), C: 255})
		for k := 0; k < 3; k++ {
			s = append(s, Op{Kind: OpAllocWords, A: 5})
			s = append(s, Op{Kind: OpSetRef, A: 254, B: byte(k), C: 255})
		}
	}
	s = append(s, Op{Kind: OpCollect})
	for req := 0; req < 12; req++ {
		s = append(s, Op{Kind: OpPush})
		s = append(s, Op{Kind: OpGetRef, A: 0, B: byte(req % 4)})
		s = append(s, Op{Kind: OpAllocWords, A: 9})
		s = append(s, Op{Kind: OpSetData, A: 255, B: 0, C: byte(req)})
		s = append(s, Op{Kind: OpWork, A: 6})
		s = append(s, Op{Kind: OpPop})
	}
	s = append(s, Op{Kind: OpCollectFull})
	return s
}

// seedPseudoJBB: steady-state transaction mix over resident warehouses —
// pretenured longterm data, immortal catalog, LOS orders, young churn.
func seedPseudoJBB() Script {
	var s Script
	s = append(s, Op{Kind: OpAllocImmortal})
	for w := 0; w < 4; w++ {
		s = append(s, Op{Kind: OpAllocPretenure})
		s = append(s, Op{Kind: OpSetRef, A: 0, B: 0, C: 255})
	}
	for txn := 0; txn < 15; txn++ {
		s = append(s, Op{Kind: OpPush})
		s = append(s, Op{Kind: OpAllocBig})
		s = append(s, Op{Kind: OpAlloc})
		s = append(s, Op{Kind: OpSetRef, A: 254, B: 0, C: 255})
		if txn%6 == 5 {
			s = append(s, Op{Kind: OpAllocLarge}) // an oversized order
		}
		s = append(s, Op{Kind: OpSetRef, A: byte(txn % 5), B: 0, C: 254})
		s = append(s, Op{Kind: OpWork, A: 12})
		s = append(s, Op{Kind: OpPop})
		if txn%7 == 6 {
			s = append(s, Op{Kind: OpCollect})
		}
	}
	s = append(s, Op{Kind: OpCollectFull})
	return s
}
