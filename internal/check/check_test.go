package check

import (
	"math/rand"
	"testing"

	"beltway/internal/core"
	"beltway/internal/heap"
	"beltway/internal/trace"
	"beltway/internal/vm"
)

func TestScriptEncodeDecodeRoundTrip(t *testing.T) {
	for _, seed := range SeedScripts() {
		got := DecodeScript(seed.Script.Encode())
		if len(got) != len(seed.Script) {
			t.Fatalf("%s: round trip length %d != %d", seed.Name, len(got), len(seed.Script))
		}
		for i := range got {
			if got[i] != seed.Script[i] {
				t.Fatalf("%s: op %d: %+v != %+v", seed.Name, i, got[i], seed.Script[i])
			}
		}
	}
}

func TestSeedOracleAcrossPresets(t *testing.T) {
	cfgs, err := PresetConfigs()
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range SeedScripts() {
		seed := seed
		t.Run(seed.Name, func(t *testing.T) {
			t.Parallel()
			run := RunScript(seed.Script, cfgs)
			if run.Failed() {
				t.Fatalf("seed %s diverges across presets:\n%s", seed.Name, run.String())
			}
			for _, o := range run.Outcomes {
				if o.OOM {
					t.Fatalf("seed %s: %s OOMs under the oracle sizing policy", seed.Name, o.Name)
				}
			}
		})
	}
}

func TestSeedOracleAcrossRandomConfigs(t *testing.T) {
	scripted := SeedScripts()
	base := []core.Config{{}} // filled below
	cfgs, err := PresetConfigs()
	if err != nil {
		t.Fatal(err)
	}
	base[0] = cfgs[0] // the semi-space reference
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		c := RandomConfig(rng, 0, 0) // geometry set by RunScript
		base = append(base, c)
	}
	run := RunScript(scripted[0].Script, base)
	if run.Failed() {
		t.Fatalf("seed %s diverges across random configs:\n%s", scripted[0].Name, run.String())
	}
}

// TestTraceSliceIdentity records a seed trace and checks that a Slice
// keeping every op replays cleanly (the handle renumbering reproduces
// replay's own assignment exactly), and that prefix slices replay too.
func TestTraceSliceIdentity(t *testing.T) {
	cfgs, err := PresetConfigs()
	if err != nil {
		t.Fatal(err)
	}
	script := SeedScripts()[3].Script // javac: scopes, keeps, immortal
	run := RunScript(script, cfgs[:1])
	if run.Failed() || run.Trace == nil {
		t.Fatalf("recording failed: %s", run.String())
	}
	tr := run.Trace
	n, err := tr.NumOps()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	replayable := func(tt *trace.Trace) error {
		cfg := run.Configs[0]
		h, err := core.New(cfg, heap.NewRegistry())
		if err != nil {
			return err
		}
		m := vm.New(h)
		m.EnableValidation()
		return trace.Replay(tt, m)
	}
	full, err := tr.Slice(func(int) bool { return true })
	if err != nil {
		t.Fatalf("identity slice: %v", err)
	}
	if err := replayable(full); err != nil {
		t.Fatalf("identity slice does not replay: %v", err)
	}
	half, err := tr.Slice(func(i int) bool { return i < n/2 })
	if err != nil {
		t.Fatalf("prefix slice: %v", err)
	}
	if err := replayable(half); err != nil {
		t.Fatalf("prefix slice does not replay: %v", err)
	}
	// Dropping an allocation invalidates later uses of its handle; the
	// slice must either renumber into a clean replay or refuse. Count
	// that at least some single-op drops are accepted (ddmin viability).
	accepted := 0
	for i := 0; i < n && accepted < 3; i++ {
		i := i
		cand, err := tr.Slice(func(j int) bool { return j != i })
		if err != nil {
			continue
		}
		if err := replayable(cand); err == nil {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("no single-op drop produced a replayable trace; ddmin would stall")
	}
}

func TestMinimizeShrinksSyntheticFailure(t *testing.T) {
	// A synthetic predicate: "fails" iff the script still contains an
	// OpCollectFull and at least 2 configs remain. Minimize must reduce
	// to essentially that op alone and a small config set, without ever
	// returning a passing result.
	script := SeedScripts()[2].Script // db: ends with a full collect
	cfgs, err := PresetConfigs()
	if err != nil {
		t.Fatal(err)
	}
	fail := func(s Script, cs []core.Config) bool {
		if len(cs) < 1 {
			return false
		}
		for _, op := range s {
			if op.Kind == OpCollectFull {
				return true
			}
		}
		return false
	}
	res := Minimize(script, cfgs, fail, 0)
	if !fail(res.Script, res.Configs) {
		t.Fatal("minimized result no longer fails the predicate")
	}
	if len(res.Script) != 1 {
		t.Fatalf("expected 1-op script, got %d ops:\n%s", len(res.Script), res.Script)
	}
	if len(res.Configs) != 1 {
		t.Fatalf("expected 1 config, got %d", len(res.Configs))
	}
	if res.Evals <= 0 {
		t.Fatal("no predicate evaluations counted")
	}
}

// TestReproFixtures replays every committed reproducer in testdata; each
// one documents a bug fixed in this tree, so each must now pass.
func TestReproFixtures(t *testing.T) {
	fixtures, err := LoadFixtures("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Skip("no fixtures committed")
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			rep := fx.Run()
			if rep.Failed() {
				t.Fatalf("fixture %s diverges again:\n%s", fx.Name, rep.String())
			}
		})
	}
}
