package check

import (
	"fmt"
	"math/rand"

	"beltway/internal/core"
)

// RandomConfig generates a random legal Beltway configuration over the
// given heap geometry: 1-4 belts, random increment fractions, bounded or
// unbounded nurseries, random upward promotion edges, random barrier,
// random trigger and extension settings. The differential oracle and the
// core framework fuzz test share it: the paper's claim is that ANY legal
// belt structure is a correct collector, so the generator deliberately
// wanders far outside the named presets.
func RandomConfig(rng *rand.Rand, heapBytes, frameBytes int) core.Config {
	nBelts := 1 + rng.Intn(4)
	cfg := core.Config{
		HeapBytes:  heapBytes,
		FrameBytes: frameBytes,
	}
	for i := 0; i < nBelts; i++ {
		spec := core.BeltSpec{PromoteTo: i}
		if i < nBelts-1 {
			spec.PromoteTo = i + 1 + rng.Intn(nBelts-i-1)
		}
		switch rng.Intn(3) {
		case 0:
			spec.IncrementFrac = 1.0
		case 1:
			spec.IncrementFrac = 0.1 + 0.4*rng.Float64()
		default:
			spec.IncrementFrac = 0.2 + 0.6*rng.Float64()
		}
		if i == 0 && rng.Intn(2) == 0 {
			spec.MaxIncrements = 1
		}
		cfg.Belts = append(cfg.Belts, spec)
	}
	switch rng.Intn(3) {
	case 0:
		cfg.Barrier = core.FrameBarrier
	case 1:
		cfg.Barrier = core.BoundaryBarrier
	default:
		cfg.Barrier = core.CardBarrier
	}
	if cfg.Barrier == core.FrameBarrier && rng.Intn(2) == 0 {
		cfg.NurseryFilter = true
	}
	if rng.Intn(3) == 0 {
		cfg.TTDBytes = heapBytes / 16
	}
	if rng.Intn(4) == 0 {
		cfg.RemsetThreshold = 200 + rng.Intn(2000)
	}
	if rng.Intn(3) == 0 {
		cfg.LOSThresholdBytes = frameBytes / 2
	}
	// MOS when the top belt qualifies.
	last := nBelts - 1
	if nBelts >= 2 && cfg.Barrier == core.FrameBarrier &&
		cfg.Belts[last].IncrementFrac < 1 && rng.Intn(3) == 0 {
		cfg.MOS = true
		cfg.MOSCarsPerTrain = 2 + rng.Intn(4)
	}
	// Older-first (BOF) for two-belt windowed configs.
	if nBelts == 2 && !cfg.MOS && rng.Intn(5) == 0 {
		cfg.OlderFirst = true
		cfg.Belts[0] = core.BeltSpec{IncrementFrac: 0.15 + 0.3*rng.Float64(), PromoteTo: 1}
		cfg.Belts[1] = core.BeltSpec{IncrementFrac: cfg.Belts[0].IncrementFrac, PromoteTo: 0}
		cfg.TTDBytes = 0
	}
	// Mark-region substrate on a random suffix of the belts (the mature
	// end, where in-place marking pays), when the combination is legal:
	// the engine forbids mixing mark-region with cards, MOS and
	// older-first (core.Config.Validate).
	mrTag := ""
	if cfg.Barrier != core.CardBarrier && !cfg.MOS && !cfg.OlderFirst && rng.Intn(3) == 0 {
		for i := rng.Intn(nBelts); i < nBelts; i++ {
			cfg.Belts[i].Substrate = core.MarkRegion
		}
		cfg.MRDefragFrac = 0.15 + 0.5*rng.Float64()
		if rng.Intn(2) == 0 {
			cfg.MRLineBytes = 64 << rng.Intn(2)
		}
		mrTag = "-mr"
	}
	cfg.Name = fmt.Sprintf("rand-%d-belts-%s%s", nBelts, cfg.Barrier, mrTag)
	return cfg
}
