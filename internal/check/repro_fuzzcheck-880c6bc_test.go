package check

import (
	"path/filepath"
	"testing"
)

// TestRepro_fuzzcheck_880c6bc replays the minimized reproducer committed as
// testdata/fuzzcheck-880c6bc.json and asserts the divergence it once
// demonstrated no longer occurs.
func TestRepro_fuzzcheck_880c6bc(t *testing.T) {
	fx, err := LoadFixture(filepath.Join("testdata", "fuzzcheck-880c6bc.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep := fx.Run()
	if rep.Failed() {
		t.Fatalf("fixture %s diverges again:\n%s", fx.Name, rep.String())
	}
}
