package check

import (
	"beltway/internal/core"
	"beltway/internal/trace"
)

// Failing is the shrinker's predicate: does this (script, configs) pair
// still exhibit a failure? The default predicate re-runs the oracle; a
// caller may substitute a stricter one (e.g. "the same divergence
// field") to avoid shrinking onto an unrelated bug.
type Failing func(Script, []core.Config) bool

// OracleFails is the default predicate: the differential oracle reports
// at least one divergence.
func OracleFails(s Script, cfgs []core.Config) bool {
	run := RunScript(s, cfgs)
	return run.Failed()
}

// MinimizeResult carries the shrinker's output and its effort counters.
type MinimizeResult struct {
	Script  Script
	Configs []core.Config
	Evals   int // predicate evaluations spent
}

// Minimize reduces a failing (script, configs) pair deterministically:
// delta-debugging over the script's operations, then structural
// simplification of the configurations (fewer configs, fewer belts,
// zeroed triggers and extensions), then a final op pass, since simpler
// configurations often unlock further op removal. The inputs must
// satisfy fail; the result still does. maxEvals bounds the total number
// of predicate evaluations (each one replays the trace through every
// remaining configuration); <= 0 means a default budget.
func Minimize(script Script, cfgs []core.Config, fail Failing, maxEvals int) MinimizeResult {
	if maxEvals <= 0 {
		maxEvals = 600
	}
	m := &minimizer{fail: fail, budget: maxEvals}
	script = m.ddmin(script, cfgs)
	cfgs = m.shrinkConfigSet(script, cfgs)
	cfgs = m.simplifyConfigs(script, cfgs)
	script = m.ddmin(script, cfgs)
	return MinimizeResult{Script: script, Configs: cfgs, Evals: m.evals}
}

type minimizer struct {
	fail   Failing
	budget int
	evals  int
}

func (m *minimizer) check(s Script, cfgs []core.Config) bool {
	if m.evals >= m.budget {
		return false
	}
	m.evals++
	return m.fail(s, cfgs)
}

// ddmin is the classic delta-debugging loop over script operations.
// Because every subsequence of a script is itself runnable (operands are
// modular), removal needs no fix-ups.
func (m *minimizer) ddmin(s Script, cfgs []core.Config) Script {
	n := 2
	for len(s) >= 2 {
		chunk := (len(s) + n - 1) / n
		reduced := false
		for start := 0; start < len(s); start += chunk {
			end := min(start+chunk, len(s))
			candidate := make(Script, 0, len(s)-(end-start))
			candidate = append(candidate, s[:start]...)
			candidate = append(candidate, s[end:]...)
			if len(candidate) > 0 && m.check(candidate, cfgs) {
				s = candidate
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(s) {
			break
		}
		n = min(2*n, len(s))
	}
	// Final single-op sweep (back to front so indexes stay valid).
	for i := len(s) - 1; i >= 0 && len(s) > 1; i-- {
		candidate := make(Script, 0, len(s)-1)
		candidate = append(candidate, s[:i]...)
		candidate = append(candidate, s[i+1:]...)
		if m.check(candidate, cfgs) {
			s = candidate
		}
	}
	return s
}

// shrinkConfigSet tries to cut the configuration set down to a single
// config (a self-divergence) or a single diverging pair.
func (m *minimizer) shrinkConfigSet(s Script, cfgs []core.Config) []core.Config {
	if len(cfgs) <= 1 {
		return cfgs
	}
	for i := range cfgs {
		one := []core.Config{cfgs[i]}
		if m.check(s, one) {
			return one
		}
	}
	for i := 0; i < len(cfgs); i++ {
		for j := i + 1; j < len(cfgs); j++ {
			pair := []core.Config{cfgs[i], cfgs[j]}
			if m.check(s, pair) {
				return pair
			}
		}
	}
	return cfgs
}

// simplifyConfigs applies structure-reducing transforms to each config
// in turn, keeping a transform only when the failure persists and the
// config stays valid.
func (m *minimizer) simplifyConfigs(s Script, cfgs []core.Config) []core.Config {
	transforms := []func(*core.Config){
		func(c *core.Config) { c.TTDBytes = 0 },
		func(c *core.Config) { c.RemsetThreshold = 0 },
		func(c *core.Config) { c.LOSThresholdBytes = 0 },
		func(c *core.Config) { c.NurseryFilter = false },
		func(c *core.Config) { c.PhysMemBytes = 0 },
		func(c *core.Config) { c.PretenureBelt = 0 },
		func(c *core.Config) { c.MOS, c.MOSCarsPerTrain = false, 0 },
		func(c *core.Config) {
			c.OlderFirst = false
			for i := range c.Belts {
				if c.Belts[i].PromoteTo < i {
					c.Belts[i].PromoteTo = i
				}
			}
		},
		func(c *core.Config) { c.FixedHalfReserve = false },
		func(c *core.Config) { c.Barrier = core.FrameBarrier },
		func(c *core.Config) { // drop the top belt
			if len(c.Belts) < 2 {
				return
			}
			c.Belts = c.Belts[:len(c.Belts)-1]
			for i := range c.Belts {
				if c.Belts[i].PromoteTo >= len(c.Belts) {
					c.Belts[i].PromoteTo = len(c.Belts) - 1
				}
			}
		},
		func(c *core.Config) {
			for i := range c.Belts {
				c.Belts[i].ReserveFrac = 0
			}
		},
		func(c *core.Config) {
			for i := range c.Belts {
				c.Belts[i].MaxIncrements = 0
			}
		},
	}
	for ci := range cfgs {
		for _, tf := range transforms {
			candidate := cloneConfigs(cfgs)
			tf(&candidate[ci])
			if err := candidate[ci].Validate(); err != nil {
				continue
			}
			if m.check(s, candidate) {
				cfgs = candidate
			}
		}
	}
	return cfgs
}

// TraceFailing is the predicate for trace-level minimization.
type TraceFailing func(*trace.Trace, []core.Config) bool

// DifferentialFails is the default trace predicate: replaying the trace
// through the configurations yields at least one divergence.
func DifferentialFails(tr *trace.Trace, cfgs []core.Config) bool {
	rep := Differential(tr, cfgs)
	return rep.Failed()
}

// TraceMinimizeResult carries the trace shrinker's output.
type TraceMinimizeResult struct {
	Trace   *trace.Trace
	Ops     int
	Configs []core.Config
	Evals   int
}

// MinimizeTrace delta-debugs a failing trace directly at the operation
// level — the path for divergences found on recorded workload traces,
// where no generating script exists. Candidate subsets are rebuilt with
// trace.Slice, which renumbers handles exactly as replay will assign
// them; subsets that are not self-contained (or whose reduction changes
// semantics enough to drift) simply fail the predicate and are skipped.
// Configuration reduction reuses the script shrinker's transforms via a
// predicate adapter.
func MinimizeTrace(tr *trace.Trace, cfgs []core.Config, fail TraceFailing, maxEvals int) TraceMinimizeResult {
	if maxEvals <= 0 {
		maxEvals = 600
	}
	m := &traceMinimizer{fail: fail, budget: maxEvals}
	tr = m.ddmin(tr, cfgs)
	// Reuse the config-set and config-structure reduction by adapting the
	// predicate: the script argument is ignored, the trace is captured.
	sm := &minimizer{budget: maxEvals - m.evals,
		fail: func(_ Script, cs []core.Config) bool { return fail(tr, cs) }}
	cfgs = sm.shrinkConfigSet(nil, cfgs)
	cfgs = sm.simplifyConfigs(nil, cfgs)
	m.evals += sm.evals
	tr = m.ddmin(tr, cfgs)
	n, _ := tr.NumOps()
	return TraceMinimizeResult{Trace: tr, Ops: n, Configs: cfgs, Evals: m.evals}
}

type traceMinimizer struct {
	fail   TraceFailing
	budget int
	evals  int
}

// try slices tr down to the kept index set and evaluates the predicate;
// an invalid slice counts as a non-failure.
func (m *traceMinimizer) try(tr *trace.Trace, keep func(int) bool, cfgs []core.Config) *trace.Trace {
	if m.evals >= m.budget {
		return nil
	}
	cand, err := tr.Slice(keep)
	if err != nil {
		return nil
	}
	m.evals++
	if m.fail(cand, cfgs) {
		return cand
	}
	return nil
}

func (m *traceMinimizer) ddmin(tr *trace.Trace, cfgs []core.Config) *trace.Trace {
	size, err := tr.NumOps()
	if err != nil {
		return tr
	}
	n := 2
	for size >= 2 {
		chunk := (size + n - 1) / n
		reduced := false
		for start := 0; start < size; start += chunk {
			end := min(start+chunk, size)
			if end-start == size {
				continue
			}
			cand := m.try(tr, func(i int) bool { return i < start || i >= end }, cfgs)
			if cand != nil {
				tr = cand
				size -= end - start
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= size {
			break
		}
		n = min(2*n, size)
	}
	// Final single-op sweep, back to front.
	for i := size - 1; i >= 0 && size > 1; i-- {
		cand := m.try(tr, func(j int) bool { return j != i }, cfgs)
		if cand != nil {
			tr = cand
			size--
		}
	}
	return tr
}

func cloneConfigs(cfgs []core.Config) []core.Config {
	out := make([]core.Config, len(cfgs))
	for i, c := range cfgs {
		out[i] = c
		out[i].Belts = append([]core.BeltSpec(nil), c.Belts...)
	}
	return out
}
