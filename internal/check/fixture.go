package check

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"beltway/internal/core"
	"beltway/internal/trace"
)

// Fixture is a committed reproducer: a minimized script (or, for
// failures found on recorded workload traces, the raw minimized trace)
// plus the exact configurations that exhibit the divergence. Fixtures
// replay through RunScriptConfigured / Differential with the stored
// configurations untouched, so they rerun bit-identically.
type Fixture struct {
	Name     string        `json:"name"`
	Note     string        `json:"note,omitempty"`
	Script   Script        `json:"script,omitempty"`
	TraceB64 string        `json:"trace_b64,omitempty"`
	Configs  []core.Config `json:"configs"`
}

// Run replays the fixture and returns the oracle report.
func (fx *Fixture) Run() Report {
	if fx.TraceB64 != "" {
		raw, err := base64.StdEncoding.DecodeString(fx.TraceB64)
		if err != nil {
			return Report{Divergences: []Divergence{{A: fx.Name, Field: "replay",
				Detail: "fixture: bad trace_b64: " + err.Error()}}}
		}
		tr, err := trace.ReadFrom(bytes.NewReader(raw))
		if err != nil {
			return Report{Divergences: []Divergence{{A: fx.Name, Field: "replay",
				Detail: "fixture: bad trace: " + err.Error()}}}
		}
		return Differential(tr, fx.Configs)
	}
	return RunScriptConfigured(fx.Script, fx.Configs).Report
}

// TraceFixture builds a raw-trace fixture from a minimized trace.
func TraceFixture(name, note string, tr *trace.Trace, cfgs []core.Config) (*Fixture, error) {
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		return nil, err
	}
	return &Fixture{Name: name, Note: note,
		TraceB64: base64.StdEncoding.EncodeToString(buf.Bytes()), Configs: cfgs}, nil
}

// ScriptFixture builds a script fixture with the configurations frozen
// at the oracle heap sizing for that script, so the stored configs are
// complete and self-describing.
func ScriptFixture(name, note string, s Script, cfgs []core.Config) *Fixture {
	heapBytes := HeapBytesFor(s, OracleFrameBytes)
	sized := cloneConfigs(cfgs)
	for i := range sized {
		if sized[i].HeapBytes == 0 {
			sized[i].HeapBytes = heapBytes
		}
		if sized[i].FrameBytes == 0 {
			sized[i].FrameBytes = OracleFrameBytes
		}
	}
	return &Fixture{Name: name, Note: note, Script: s, Configs: sized}
}

// WriteFixture writes the fixture as indented JSON under dir as
// <name>.json, creating dir if needed.
func WriteFixture(fx *Fixture, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(fx, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fx.Name+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadFixture reads one fixture file.
func LoadFixture(path string) (*Fixture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fx Fixture
	if err := json.Unmarshal(data, &fx); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if fx.Name == "" {
		fx.Name = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	return &fx, nil
}

// LoadFixtures reads every *.json fixture under dir (sorted); a missing
// directory yields an empty list.
func LoadFixtures(dir string) ([]*Fixture, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	var out []*Fixture
	for _, p := range paths {
		fx, err := LoadFixture(p)
		if err != nil {
			return nil, err
		}
		out = append(out, fx)
	}
	return out, nil
}

// RegressionTestSource renders a standalone Go regression test that
// loads the fixture from testdata and asserts the oracle verdict. The
// generated test asserts the fixture now PASSES — a committed fixture
// documents a bug that has been fixed in the same change, so the
// reproducer replaying clean is the regression guarantee.
func RegressionTestSource(fixtureName string) string {
	ident := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, fixtureName)
	return fmt.Sprintf(`package check

import (
	"path/filepath"
	"testing"
)

// TestRepro_%s replays the minimized reproducer committed as
// testdata/%s.json and asserts the divergence it once
// demonstrated no longer occurs.
func TestRepro_%s(t *testing.T) {
	fx, err := LoadFixture(filepath.Join("testdata", "%s.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep := fx.Run()
	if rep.Failed() {
		t.Fatalf("fixture %%s diverges again:\n%%s", fx.Name, rep.String())
	}
}
`, ident, fixtureName, ident, fixtureName)
}

// WriteRegressionTest emits the generated regression test next to the
// check package sources as repro_<name>_test.go.
func WriteRegressionTest(fixtureName, pkgDir string) (string, error) {
	path := filepath.Join(pkgDir, "repro_"+fixtureName+"_test.go")
	return path, os.WriteFile(path, []byte(RegressionTestSource(fixtureName)), 0o644)
}
