package remset

import (
	"testing"

	"beltway/internal/heap"
)

// foldShard mirrors shard.FoldFrame (importing internal/shard here
// would cycle): the exchange routes cross-shard references under source
// frames with the shard id in the top bits.
func foldShard(id int, f heap.Frame) heap.Frame { return f | heap.Frame(id)<<24 }

// TestShardedDuplicateInsertZeroAlloc pins the exchange's per-shard
// staging fast path: re-staging an already-routed reference is a
// duplicate Insert under a folded key and must not allocate, for any
// shard's key space.
func TestShardedDuplicateInsertZeroAlloc(t *testing.T) {
	tb := NewTable()
	for id := 0; id < 4; id++ {
		for j := 0; j < 8; j++ {
			tb.Insert(foldShard(id, 7), heap.Frame(id), heap.Addr(0x2000+j*4))
		}
	}
	for id := 0; id < 4; id++ {
		id := id
		if n := testing.AllocsPerRun(100, func() {
			if tb.Insert(foldShard(id, 7), heap.Frame(id), 0x2000) {
				t.Fatal("duplicate routed insert reported new")
			}
		}); n != 0 {
			t.Errorf("shard %d duplicate routed Insert allocates %v times per op, want 0", id, n)
		}
	}
}

// TestAppendRootsMatchedZeroAlloc pins the merge-side fast path: with a
// reusable destination buffer of sufficient capacity, a matched
// AppendRoots over compacted sets performs zero heap allocations —
// collection cost at the safepoint barrier is pure copying. One
// pre-built table is consumed per run (AppendRoots drains the matched
// sets), so tables are staged outside the measured function.
func TestAppendRootsMatchedZeroAlloc(t *testing.T) {
	const runs = 20
	build := func() *Table {
		tb := NewTable()
		for id := 0; id < 4; id++ {
			for j := 0; j < 32; j++ {
				tb.Insert(foldShard(id, 7), 100, heap.Addr(0x1000+j*8))
			}
		}
		// Compact every set so the collection's lazy compact is a no-op,
		// and pre-size the scratch the first collection would grow.
		for _, s := range tb.sets {
			s.compact()
		}
		tb.matched = make([]key, 0, 8)
		return tb
	}
	tables := make([]*Table, 0, runs+2)
	for i := 0; i < runs+2; i++ {
		tables = append(tables, build())
	}
	next := 0
	dst := make([]heap.Addr, 0, 4*32)
	cond := func(f heap.Frame) bool { return f == 100 }
	if n := testing.AllocsPerRun(runs, func() {
		tb := tables[next]
		next++
		dst = tb.AppendRoots(dst[:0], cond)
		if len(dst) != 4*32 {
			t.Fatalf("collected %d roots, want %d", len(dst), 4*32)
		}
	}); n != 0 {
		t.Errorf("matched AppendRoots with reusable buffer allocates %v times per op, want 0", n)
	}
}

// TestAppendRootsNoMatchZeroAlloc pins the scan path: polling a
// populated table with nothing condemned allocates nothing.
func TestAppendRootsNoMatchZeroAlloc(t *testing.T) {
	tb := NewTable()
	for id := 0; id < 4; id++ {
		for j := 0; j < 32; j++ {
			tb.Insert(foldShard(id, heap.Frame(j%4)), heap.Frame(50+id), heap.Addr(0x1000+j*8))
		}
	}
	var dst []heap.Addr
	none := func(heap.Frame) bool { return false }
	if n := testing.AllocsPerRun(100, func() {
		dst = tb.AppendRoots(dst[:0], none)
		if len(dst) != 0 {
			t.Fatal("collected roots with nothing condemned")
		}
	}); n != 0 {
		t.Errorf("no-match AppendRoots allocates %v times per op, want 0", n)
	}
}
