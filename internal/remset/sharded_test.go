package remset_test

import (
	"math/rand"
	"sort"
	"testing"

	"beltway/internal/heap"
	"beltway/internal/remset"
	"beltway/internal/shard"
)

// modelTable is a brutally simple single-shard reference for Table: a
// map from (src, tgt) to a slot set, collected in the same deterministic
// order the real table promises (packed key ascending, slots ascending
// within a set).
type modelTable struct {
	sets map[[2]heap.Frame]map[heap.Addr]bool
}

func newModel() *modelTable {
	return &modelTable{sets: map[[2]heap.Frame]map[heap.Addr]bool{}}
}

func (m *modelTable) insert(src, tgt heap.Frame, slot heap.Addr) bool {
	k := [2]heap.Frame{src, tgt}
	if m.sets[k] == nil {
		m.sets[k] = map[heap.Addr]bool{}
	}
	if m.sets[k][slot] {
		return false
	}
	m.sets[k][slot] = true
	return true
}

func (m *modelTable) deleteFrame(f heap.Frame) {
	for k := range m.sets {
		if k[0] == f || k[1] == f {
			delete(m.sets, k)
		}
	}
}

func (m *modelTable) total() int {
	n := 0
	for _, s := range m.sets {
		n += len(s)
	}
	return n
}

func (m *modelTable) collectRoots(condemned func(heap.Frame) bool) []heap.Addr {
	var keys [][2]heap.Frame
	for k := range m.sets {
		if condemned(k[1]) && !condemned(k[0]) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a := uint64(keys[i][0])<<32 | uint64(keys[i][1])
		b := uint64(keys[j][0])<<32 | uint64(keys[j][1])
		return a < b
	})
	var out []heap.Addr
	for _, k := range keys {
		slots := make([]heap.Addr, 0, len(m.sets[k]))
		for s := range m.sets[k] {
			slots = append(slots, s)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		out = append(out, slots...)
		delete(m.sets, k)
	}
	return out
}

// TestShardedRoutingModel drives one Table through a long interleaved
// schedule of inserts, frame deletions and root collections whose
// source frames carry folded shard ids (shard.FoldFrame) — exactly the
// key shape the cross-shard exchange routes through — and checks every
// observable against the map-based single-shard model. The fold must be
// invisible to the table: per-shard key spaces stay disjoint, dedup
// stays per (folded src, tgt) pair, and collection order stays the
// packed-key order.
func TestShardedRoutingModel(t *testing.T) {
	const shards = 4
	rng := rand.New(rand.NewSource(20020617))
	tb := remset.NewTable()
	model := newModel()

	frame := func() heap.Frame { return heap.Frame(rng.Intn(12)) }
	slot := func() heap.Addr { return heap.Addr(0x1000 + 4*rng.Intn(64)) }

	for step := 0; step < 6000; step++ {
		sh := rng.Intn(shards) // the shard whose tail this op extends
		switch op := rng.Intn(10); {
		case op < 7: // insert a routed entry: folded src, channel tgt
			src := shard.FoldFrame(sh, frame())
			tgt := heap.Frame(rng.Intn(shards))
			sl := slot()
			got := tb.Insert(src, tgt, sl)
			want := model.insert(src, tgt, sl)
			if got != want {
				t.Fatalf("step %d: Insert(%d,%d,%v) fresh=%v, model %v", step, src, tgt, sl, got, want)
			}
		case op < 8: // a shard's frame dies (its nursery was collected)
			f := shard.FoldFrame(sh, frame())
			tb.DeleteFrame(f)
			model.deleteFrame(f)
		case op < 9: // a channel's routes are consumed at the merge
			ch := heap.Frame(rng.Intn(shards))
			cond := func(f heap.Frame) bool { return f == ch }
			got := tb.CollectRoots(cond)
			want := model.collectRoots(cond)
			if len(got) != len(want) {
				t.Fatalf("step %d: CollectRoots(ch %d) %d roots, model %d", step, ch, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: root %d = %v, model %v", step, i, got[i], want[i])
				}
			}
		default: // condemn one shard's whole folded key space
			cond := func(f heap.Frame) bool {
				id, _ := shard.UnfoldFrame(f)
				return id == sh
			}
			got := tb.CollectRoots(cond)
			want := model.collectRoots(cond)
			if len(got) != len(want) {
				t.Fatalf("step %d: shard-condemn(%d) %d roots, model %d", step, sh, len(got), len(want))
			}
		}
		if tb.TotalEntries() != model.total() {
			t.Fatalf("step %d: TotalEntries %d, model %d", step, tb.TotalEntries(), model.total())
		}
	}
}
