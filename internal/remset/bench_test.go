package remset

import (
	"testing"

	"beltway/internal/heap"
)

// BenchmarkInsertDistinct measures cold inserts (new slots).
func BenchmarkInsertDistinct(b *testing.B) {
	t := NewTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(heap.Frame(i%64), heap.Frame((i+1)%64), heap.Addr(i*4))
	}
}

// BenchmarkInsertDuplicate measures the dedup hit path, the common case
// for repeatedly mutated old-to-young slots.
func BenchmarkInsertDuplicate(b *testing.B) {
	t := NewTable()
	t.Insert(1, 2, 0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(1, 2, 0x1000)
	}
}

// BenchmarkCollectRoots measures the per-collection gather of a
// realistically sized table (4k entries across 64 pairs).
func BenchmarkCollectRoots(b *testing.B) {
	build := func() *Table {
		t := NewTable()
		for i := 0; i < 4096; i++ {
			t.Insert(heap.Frame(i%8+8), heap.Frame(i%8), heap.Addr(i*16))
		}
		return t
	}
	condemned := func(f heap.Frame) bool { return f < 8 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := build()
		b.StartTimer()
		if got := t.CollectRoots(condemned); len(got) == 0 {
			b.Fatal("no roots")
		}
	}
}
