package remset_test

import (
	"testing"

	"beltway/internal/bench"
)

// Benchmark bodies live in beltway/internal/bench so `go test -bench`
// and the cmd/bench regression harness measure the same code.

func BenchmarkInsertDistinct(b *testing.B)  { bench.RemsetInsertDistinct(b) }
func BenchmarkInsertDuplicate(b *testing.B) { bench.RemsetInsertDuplicate(b) }
func BenchmarkCollectRoots(b *testing.B)    { bench.RemsetCollectRoots(b) }
