// Package remset implements the paper's remembered sets (§3.3.2): one
// distinct set per (source frame, target frame) pair, holding the
// addresses of pointer slots whose stored reference crosses from the
// source frame into the target frame in the "interesting" direction
// (target collected before source).
//
// Keying by frame pair gives the two properties the paper relies on:
// all sets relating to a frame can be deleted trivially when the frame is
// collected, and sets between two frames that happen to be collected
// together can be ignored wholesale.
//
// The table is keyed by a packed uint64 (src<<32 | tgt), the paper's
// rsidx, and each set is a sorted slot slice with a small unsorted tail:
// duplicate detection is a binary search over the sorted prefix plus a
// bounded linear scan, and the tail is merged in when it fills. Two
// per-frame indexes (by source and by target) let DeleteFrame,
// CollectRoots and EntriesTargeting touch only the sets involving the
// frames in question instead of scanning the whole table.
package remset

import (
	"fmt"
	"slices"

	"beltway/internal/heap"
)

// key packs a (source frame, target frame) pair, mirroring the paper's
// rsidx = (s << REMSET_SHIFT) | t. Sorting keys ascending orders sets by
// (source, target), the deterministic order CollectRoots emits.
type key uint64

func makeKey(src, tgt heap.Frame) key { return key(uint64(src)<<32 | uint64(tgt)) }

func (k key) src() heap.Frame { return heap.Frame(k >> 32) }
func (k key) tgt() heap.Frame { return heap.Frame(k) }

// tailMax bounds each set's unsorted tail. Larger values amortize the
// merge better but lengthen the linear dedup scan; 48 entries keep both
// in the tens of nanoseconds.
const tailMax = 48

// set is one per-pair remembered set: a sorted, duplicate-free slice of
// slot addresses plus a bounded unsorted tail of recent inserts. Entries
// are deduplicated, as GCTk's hash-based remsets were; the insert attempt
// count (for barrier cost accounting) is tracked by the caller.
type set struct {
	sorted []heap.Addr // ascending, unique
	tail   []heap.Addr // recent inserts; unique, disjoint from sorted
}

func (s *set) len() int { return len(s.sorted) + len(s.tail) }

func (s *set) contains(a heap.Addr) bool {
	if _, ok := slices.BinarySearch(s.sorted, a); ok {
		return true
	}
	return slices.Contains(s.tail, a)
}

// insert adds a, reporting whether it was newly stored.
func (s *set) insert(a heap.Addr) bool {
	if s.contains(a) {
		return false
	}
	s.tail = append(s.tail, a)
	if len(s.tail) >= tailMax {
		s.compact()
	}
	return true
}

// compact merges the tail into the sorted prefix: sort the tail, grow the
// prefix, then merge the two runs back to front in place.
func (s *set) compact() {
	nt := len(s.tail)
	if nt == 0 {
		return
	}
	slices.Sort(s.tail)
	ns := len(s.sorted)
	s.sorted = append(s.sorted, s.tail...)
	i, j := ns-1, nt-1
	for k := ns + nt - 1; j >= 0; k-- {
		if i >= 0 && s.sorted[i] > s.tail[j] {
			s.sorted[k] = s.sorted[i]
			i--
		} else {
			s.sorted[k] = s.tail[j]
			j--
		}
	}
	s.tail = s.tail[:0]
}

// DebugSlot, when nonzero, logs every Insert/delete affecting that slot
// address (test instrumentation; zero in production).
var DebugSlot heap.Addr

// Table holds all remembered sets of a running collector.
type Table struct {
	sets  map[key]*set
	total int

	// Per-frame indexes: the keys of every live set with the given source
	// (resp. target) frame, and the stored-entry count per target frame.
	// They bound DeleteFrame and CollectRoots to the sets actually
	// touching a frame, and make EntriesTargeting — polled from the
	// allocation path by the remset trigger — O(distinct target frames).
	bySrc      map[heap.Frame][]key
	byTgt      map[heap.Frame][]key
	tgtEntries map[heap.Frame]int

	// single-entry insert cache: pointer stores cluster heavily by
	// (source, target) frame pair, so this avoids most map lookups.
	lastKey key
	lastSet *set

	matched []key // CollectRoots scratch, reused across collections
}

// NewTable returns an empty remembered-set table.
func NewTable() *Table {
	return &Table{
		sets:       make(map[key]*set),
		bySrc:      make(map[heap.Frame][]key),
		byTgt:      make(map[heap.Frame][]key),
		tgtEntries: make(map[heap.Frame]int),
	}
}

// Insert records slot (the address of a pointer field in frame src whose
// value points into frame tgt). It reports whether the entry was newly
// stored (false means it was a duplicate).
func (t *Table) Insert(src, tgt heap.Frame, slot heap.Addr) bool {
	k := makeKey(src, tgt)
	s := t.lastSet
	if s == nil || t.lastKey != k {
		s = t.sets[k]
		if s == nil {
			s = &set{}
			t.sets[k] = s
			t.bySrc[src] = append(t.bySrc[src], k)
			t.byTgt[tgt] = append(t.byTgt[tgt], k)
		}
		t.lastKey, t.lastSet = k, s
	}
	if !s.insert(slot) {
		return false
	}
	t.total++
	t.tgtEntries[tgt]++
	if DebugSlot != 0 && slot == DebugSlot {
		fmt.Printf("remset: insert (%d,%d) slot %v\n", src, tgt, slot)
	}
	return true
}

// dropKey removes k from the index bucket of frame f in idx.
func dropKey(idx map[heap.Frame][]key, f heap.Frame, k key) {
	bucket := idx[f]
	for i, kk := range bucket {
		if kk == k {
			bucket[i] = bucket[len(bucket)-1]
			idx[f] = bucket[:len(bucket)-1]
			return
		}
	}
}

// dropSet removes the set under k from the table and all indexes,
// adjusting the entry counts. keepSrc/keepTgt suppress index maintenance
// for a frame whose whole bucket the caller is about to discard.
func (t *Table) dropSet(k key, s *set, keepSrc, keepTgt bool) {
	n := s.len()
	t.total -= n
	tgt := k.tgt()
	if c := t.tgtEntries[tgt] - n; c > 0 {
		t.tgtEntries[tgt] = c
	} else {
		delete(t.tgtEntries, tgt)
	}
	delete(t.sets, k)
	if !keepSrc {
		dropKey(t.bySrc, k.src(), k)
	}
	if !keepTgt {
		dropKey(t.byTgt, tgt, k)
	}
}

// DeleteFrame removes every set in which f appears as source or target.
// Collected frames call this: entries out of a collected frame die with
// it (survivors re-insert during scanning), and entries into a collected
// frame have been consumed.
func (t *Table) DeleteFrame(f heap.Frame) {
	for _, k := range t.bySrc[f] {
		s := t.sets[k]
		if s == nil {
			continue // already dropped: the (f, f) self pair
		}
		if DebugSlot != 0 && s.contains(DebugSlot) {
			fmt.Printf("remset: DeleteFrame(%d) drops (%d,%d) holding slot %v\n",
				f, k.src(), k.tgt(), DebugSlot)
		}
		t.dropSet(k, s, true, k.tgt() == f)
	}
	delete(t.bySrc, f)
	for _, k := range t.byTgt[f] {
		s := t.sets[k]
		if s == nil {
			continue // dropped by the source pass above
		}
		if DebugSlot != 0 && s.contains(DebugSlot) {
			fmt.Printf("remset: DeleteFrame(%d) drops (%d,%d) holding slot %v\n",
				f, k.src(), k.tgt(), DebugSlot)
		}
		t.dropSet(k, s, false, true)
	}
	delete(t.byTgt, f)
	t.lastSet = nil
}

// TotalEntries returns the number of stored entries across all sets.
func (t *Table) TotalEntries() int { return t.total }

// EntriesTargeting counts stored entries whose target frame satisfies
// inTarget. The remset trigger (§3.3.3) compares this against its
// threshold; the per-target-frame counts make this one predicate call
// per distinct target frame rather than one per set.
func (t *Table) EntriesTargeting(inTarget func(heap.Frame) bool) int {
	n := 0
	for f, c := range t.tgtEntries {
		if inTarget(f) {
			n += c
		}
	}
	return n
}

// CollectRoots gathers, in deterministic order, every stored slot address
// from sets whose target frame is condemned and whose source frame is NOT
// condemned (sets between two condemned frames are ignored, per §3.3.2).
// The matched sets are removed from the table; the caller deletes the
// remaining sets touching condemned frames via DeleteFrame.
func (t *Table) CollectRoots(condemned func(heap.Frame) bool) []heap.Addr {
	return t.AppendRoots(nil, condemned)
}

// AppendRoots is CollectRoots appending into dst, so a caller with a
// reusable buffer collects without allocating.
func (t *Table) AppendRoots(dst []heap.Addr, condemned func(heap.Frame) bool) []heap.Addr {
	matched := t.matched[:0]
	for f, bucket := range t.byTgt {
		if !condemned(f) {
			continue
		}
		for _, k := range bucket {
			if condemned(k.src()) {
				continue
			}
			matched = append(matched, k)
		}
	}
	// Deterministic order: packed keys sort by (src, tgt), then slot
	// address ascending within each set.
	slices.Sort(matched)
	for _, k := range matched {
		s := t.sets[k]
		if DebugSlot != 0 && s.contains(DebugSlot) {
			fmt.Printf("remset: CollectRoots consumes (%d,%d) holding slot %v\n",
				k.src(), k.tgt(), DebugSlot)
		}
		s.compact()
		dst = append(dst, s.sorted...)
		t.dropSet(k, s, false, false)
	}
	t.matched = matched[:0]
	t.lastSet = nil
	return dst
}

// NumSets returns the number of live (source, target) sets.
func (t *Table) NumSets() int { return len(t.sets) }

// AnyEntry reports whether any non-empty set's (source, target) pair
// satisfies match. The MOS train-death test uses it to ask "does any
// remembered pointer enter this train from outside it?".
func (t *Table) AnyEntry(match func(src, tgt heap.Frame) bool) bool {
	for k, s := range t.sets {
		if s.len() > 0 && match(k.src(), k.tgt()) {
			return true
		}
	}
	return false
}

// Contains reports whether the (src, tgt) set holds slot. It exists for
// the heap invariant checker; the collector itself never needs point
// lookups.
func (t *Table) Contains(src, tgt heap.Frame, slot heap.Addr) bool {
	s := t.sets[makeKey(src, tgt)]
	return s != nil && s.contains(slot)
}
