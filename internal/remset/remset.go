// Package remset implements the paper's remembered sets (§3.3.2): one
// distinct set per (source frame, target frame) pair, holding the
// addresses of pointer slots whose stored reference crosses from the
// source frame into the target frame in the "interesting" direction
// (target collected before source).
//
// Keying by frame pair gives the two properties the paper relies on:
// all sets relating to a frame can be deleted trivially when the frame is
// collected, and sets between two frames that happen to be collected
// together can be ignored wholesale.
package remset

import (
	"fmt"
	"sort"

	"beltway/internal/heap"
)

// pair identifies a (source frame, target frame) remembered set,
// mirroring the paper's rsidx = (s << REMSET_SHIFT) | t.
type pair struct {
	src, tgt heap.Frame
}

// set is one per-pair remembered set. Entries are slot addresses and are
// deduplicated, as GCTk's hash-based remsets were; the insert attempt
// count (for barrier cost accounting) is tracked by the caller.
type set struct {
	src, tgt heap.Frame
	slots    map[heap.Addr]struct{}
}

// DebugSlot, when nonzero, logs every Insert/delete affecting that slot
// address (test instrumentation; zero in production).
var DebugSlot heap.Addr

// Table holds all remembered sets of a running collector.
type Table struct {
	sets  map[pair]*set
	total int

	// single-entry insert cache: pointer stores cluster heavily by
	// (source, target) frame pair, so this avoids most map lookups.
	lastPair pair
	lastSet  *set
}

// NewTable returns an empty remembered-set table.
func NewTable() *Table {
	return &Table{sets: make(map[pair]*set)}
}

// Insert records slot (the address of a pointer field in frame src whose
// value points into frame tgt). It reports whether the entry was newly
// stored (false means it was a duplicate).
func (t *Table) Insert(src, tgt heap.Frame, slot heap.Addr) bool {
	p := pair{src, tgt}
	s := t.lastSet
	if s == nil || t.lastPair != p {
		s = t.sets[p]
		if s == nil {
			s = &set{src: src, tgt: tgt, slots: make(map[heap.Addr]struct{})}
			t.sets[p] = s
		}
		t.lastPair, t.lastSet = p, s
	}
	if _, dup := s.slots[slot]; dup {
		return false
	}
	s.slots[slot] = struct{}{}
	t.total++
	if DebugSlot != 0 && slot == DebugSlot {
		fmt.Printf("remset: insert (%d,%d) slot %v\n", src, tgt, slot)
	}
	return true
}

// DeleteFrame removes every set in which f appears as source or target.
// Collected frames call this: entries out of a collected frame die with
// it (survivors re-insert during scanning), and entries into a collected
// frame have been consumed.
func (t *Table) DeleteFrame(f heap.Frame) {
	for p, s := range t.sets {
		if p.src == f || p.tgt == f {
			if DebugSlot != 0 {
				if _, ok := s.slots[DebugSlot]; ok {
					fmt.Printf("remset: DeleteFrame(%d) drops (%d,%d) holding slot %v\n",
						f, p.src, p.tgt, DebugSlot)
				}
			}
			t.total -= len(s.slots)
			delete(t.sets, p)
		}
	}
	t.lastSet = nil
}

// TotalEntries returns the number of stored entries across all sets.
func (t *Table) TotalEntries() int { return t.total }

// EntriesTargeting counts stored entries whose target frame satisfies
// inTarget. The remset trigger (§3.3.3) compares this against its
// threshold.
func (t *Table) EntriesTargeting(inTarget func(heap.Frame) bool) int {
	n := 0
	for p, s := range t.sets {
		if inTarget(p.tgt) {
			n += len(s.slots)
		}
	}
	return n
}

// CollectRoots gathers, in deterministic order, every stored slot address
// from sets whose target frame is condemned and whose source frame is NOT
// condemned (sets between two condemned frames are ignored, per §3.3.2).
// The matched sets are removed from the table; the caller deletes the
// remaining sets touching condemned frames via DeleteFrame.
func (t *Table) CollectRoots(condemned func(heap.Frame) bool) []heap.Addr {
	var matched []*set
	for p, s := range t.sets {
		if condemned(p.tgt) && !condemned(p.src) {
			if DebugSlot != 0 {
				if _, ok := s.slots[DebugSlot]; ok {
					fmt.Printf("remset: CollectRoots consumes (%d,%d) holding slot %v\n",
						p.src, p.tgt, DebugSlot)
				}
			}
			matched = append(matched, s)
			t.total -= len(s.slots)
			delete(t.sets, p)
		}
	}
	t.lastSet = nil
	// Deterministic order: by (src, tgt), then slot address.
	sort.Slice(matched, func(i, j int) bool {
		if matched[i].src != matched[j].src {
			return matched[i].src < matched[j].src
		}
		return matched[i].tgt < matched[j].tgt
	})
	var out []heap.Addr
	for _, s := range matched {
		start := len(out)
		for a := range s.slots {
			out = append(out, a)
		}
		slice := out[start:]
		sort.Slice(slice, func(i, j int) bool { return slice[i] < slice[j] })
	}
	return out
}

// NumSets returns the number of live (source, target) sets.
func (t *Table) NumSets() int { return len(t.sets) }

// AnyEntry reports whether any non-empty set's (source, target) pair
// satisfies match. The MOS train-death test uses it to ask "does any
// remembered pointer enter this train from outside it?".
func (t *Table) AnyEntry(match func(src, tgt heap.Frame) bool) bool {
	for p, s := range t.sets {
		if len(s.slots) > 0 && match(p.src, p.tgt) {
			return true
		}
	}
	return false
}

// Contains reports whether the (src, tgt) set holds slot. It exists for
// the heap invariant checker; the collector itself never needs point
// lookups.
func (t *Table) Contains(src, tgt heap.Frame, slot heap.Addr) bool {
	s := t.sets[pair{src, tgt}]
	if s == nil {
		return false
	}
	_, ok := s.slots[slot]
	return ok
}
