package remset_test

import (
	"sort"
	"testing"

	"beltway/internal/heap"
	"beltway/internal/remset"
)

// triple is one stored entry in the reference model.
type triple struct {
	src, tgt heap.Frame
	slot     heap.Addr
}

// refModel is the obviously-correct shadow of remset.Table: a flat set
// of (src, tgt, slot) triples with no indexes, no compaction and no
// insert cache — everything the real table optimizes away.
type refModel map[triple]struct{}

func (m refModel) insert(tr triple) bool {
	if _, dup := m[tr]; dup {
		return false
	}
	m[tr] = struct{}{}
	return true
}

func (m refModel) deleteFrame(f heap.Frame) {
	for tr := range m {
		if tr.src == f || tr.tgt == f {
			delete(m, tr)
		}
	}
}

// collectRoots mirrors Table.CollectRoots: slots of sets with condemned
// target and un-condemned source are returned and removed; sets between
// two condemned frames stay (the caller's DeleteFrame handles those).
func (m refModel) collectRoots(condemned func(heap.Frame) bool) []heap.Addr {
	var out []heap.Addr
	for tr := range m {
		if condemned(tr.tgt) && !condemned(tr.src) {
			out = append(out, tr.slot)
			delete(m, tr)
		}
	}
	return out
}

func (m refModel) targeting(pred func(heap.Frame) bool) int {
	n := 0
	for tr := range m {
		if pred(tr.tgt) {
			n++
		}
	}
	return n
}

func sortAddrs(a []heap.Addr) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// FuzzRemsetTable drives remset.Table and the reference model with the
// same decoded command stream and asserts they agree on every observable
// after every command: total entry count, per-target counts, membership,
// and the root sets handed to a collection. The table's insert cache,
// per-frame indexes, sorted/tail compaction and self-pair handling in
// DeleteFrame are all on trial.
func FuzzRemsetTable(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 8, 1, 0, 0, 10, 3, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 16, 16, 2, 9, 0, 0, 0, 11, 0, 0, 0})
	f.Add([]byte{0, 5, 5, 9, 0, 5, 6, 9, 10, 5, 0, 0, 0, 5, 5, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl := remset.NewTable()
		model := refModel{}
		const nFrames = 16
		frame := func(b byte) heap.Frame { return heap.Frame(1 + int(b)%nFrames) }
		for i := 0; i+4 <= len(data) && i < 4*4096; i += 4 {
			cmd, a, b, c := data[i], data[i+1], data[i+2], data[i+3]
			switch cmd % 12 {
			case 8:
				fr := frame(a)
				tbl.DeleteFrame(fr)
				model.deleteFrame(fr)
			case 9, 10:
				// Condemn a contiguous frame range, as increment
				// collection does.
				lo, n := 1+int(a)%nFrames, 1+int(b)%nFrames
				condemned := func(fr heap.Frame) bool {
					return int(fr) >= lo && int(fr) < lo+n
				}
				got := tbl.CollectRoots(condemned)
				want := model.collectRoots(condemned)
				sortAddrs(got)
				sortAddrs(want)
				if len(got) != len(want) {
					t.Fatalf("CollectRoots(%d..%d): %d roots, model %d", lo, lo+n, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("CollectRoots root %d: %v vs model %v", j, got[j], want[j])
					}
				}
				// The collected frames are then deleted, as core does.
				for fr := lo; fr < lo+n; fr++ {
					tbl.DeleteFrame(heap.Frame(fr))
					model.deleteFrame(heap.Frame(fr))
				}
			case 11:
				parity := int(a) % 2
				pred := func(fr heap.Frame) bool { return int(fr)%2 == parity }
				if got, want := tbl.EntriesTargeting(pred), model.targeting(pred); got != want {
					t.Fatalf("EntriesTargeting(parity %d): %d, model %d", parity, got, want)
				}
			default: // insert, weighted 8/12 to build real populations
				tr := triple{frame(a), frame(b), heap.Addr(1 + uint32(c)%96)}
				got := tbl.Insert(tr.src, tr.tgt, tr.slot)
				want := model.insert(tr)
				if got != want {
					t.Fatalf("Insert(%d,%d,%v) new=%v, model new=%v", tr.src, tr.tgt, tr.slot, got, want)
				}
				if !tbl.Contains(tr.src, tr.tgt, tr.slot) {
					t.Fatalf("Contains(%d,%d,%v) false immediately after Insert", tr.src, tr.tgt, tr.slot)
				}
			}
			if got, want := tbl.TotalEntries(), len(model); got != want {
				t.Fatalf("TotalEntries %d, model %d", got, want)
			}
		}
		// Drain everything and require an empty table.
		tbl.CollectRoots(func(heap.Frame) bool { return true })
		for fr := 1; fr <= nFrames; fr++ {
			tbl.DeleteFrame(heap.Frame(fr))
		}
		if tbl.TotalEntries() != 0 || tbl.NumSets() != 0 {
			t.Fatalf("after full drain: %d entries, %d sets", tbl.TotalEntries(), tbl.NumSets())
		}
	})
}
