package remset

import (
	"testing"
	"testing/quick"

	"beltway/internal/heap"
)

func TestInsertAndDedup(t *testing.T) {
	tb := NewTable()
	if !tb.Insert(1, 2, 0x1000) {
		t.Error("first insert reported duplicate")
	}
	if tb.Insert(1, 2, 0x1000) {
		t.Error("duplicate insert reported new")
	}
	if !tb.Insert(1, 2, 0x1004) {
		t.Error("distinct slot reported duplicate")
	}
	if !tb.Insert(1, 3, 0x1000) {
		t.Error("same slot, distinct pair reported duplicate")
	}
	if tb.TotalEntries() != 3 {
		t.Errorf("TotalEntries = %d, want 3", tb.TotalEntries())
	}
	if tb.NumSets() != 2 {
		t.Errorf("NumSets = %d, want 2", tb.NumSets())
	}
}

func TestDeleteFrame(t *testing.T) {
	tb := NewTable()
	tb.Insert(1, 2, 0x1000) // deleted (source 1)
	tb.Insert(2, 1, 0x2000) // deleted (target 1)
	tb.Insert(2, 3, 0x3000) // kept
	tb.DeleteFrame(1)
	if tb.TotalEntries() != 1 {
		t.Errorf("TotalEntries = %d after DeleteFrame, want 1", tb.TotalEntries())
	}
	got := tb.CollectRoots(func(f heap.Frame) bool { return f == 3 })
	if len(got) != 1 || got[0] != 0x3000 {
		t.Errorf("surviving entry wrong: %v", got)
	}
}

func TestCollectRootsSelectsAndConsumes(t *testing.T) {
	tb := NewTable()
	tb.Insert(5, 1, 0xa0) // into condemned, from live -> root
	tb.Insert(5, 1, 0xb0) // ditto
	tb.Insert(1, 2, 0xc0) // between condemned frames -> ignored
	tb.Insert(5, 3, 0xd0) // into live frame -> untouched
	condemned := func(f heap.Frame) bool { return f == 1 || f == 2 }

	roots := tb.CollectRoots(condemned)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2: %v", len(roots), roots)
	}
	if roots[0] != 0xa0 || roots[1] != 0xb0 {
		t.Errorf("roots not in deterministic slot order: %v", roots)
	}
	// Matched sets are consumed.
	if again := tb.CollectRoots(condemned); len(again) != 0 {
		t.Errorf("second CollectRoots returned %v", again)
	}
	// (1,2) remains until DeleteFrame, (5,3) remains valid.
	if tb.TotalEntries() != 2 {
		t.Errorf("TotalEntries = %d, want 2", tb.TotalEntries())
	}
	tb.DeleteFrame(1)
	tb.DeleteFrame(2)
	if tb.TotalEntries() != 1 {
		t.Errorf("TotalEntries = %d after deletes, want 1", tb.TotalEntries())
	}
}

func TestCollectRootsDeterministicOrder(t *testing.T) {
	build := func() *Table {
		tb := NewTable()
		// Insert in scrambled order.
		tb.Insert(9, 1, 0x500)
		tb.Insert(2, 1, 0x300)
		tb.Insert(9, 1, 0x100)
		tb.Insert(2, 1, 0x900)
		tb.Insert(4, 3, 0x700)
		return tb
	}
	condemned := func(f heap.Frame) bool { return f == 1 || f == 3 }
	a := build().CollectRoots(condemned)
	b := build().CollectRoots(condemned)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("lengths %d/%d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order not deterministic: %v vs %v", a, b)
		}
	}
}

func TestEntriesTargeting(t *testing.T) {
	tb := NewTable()
	tb.Insert(1, 7, 0x10)
	tb.Insert(2, 7, 0x20)
	tb.Insert(2, 8, 0x30)
	if n := tb.EntriesTargeting(func(f heap.Frame) bool { return f == 7 }); n != 2 {
		t.Errorf("EntriesTargeting(7) = %d, want 2", n)
	}
	if n := tb.EntriesTargeting(func(f heap.Frame) bool { return f == 9 }); n != 0 {
		t.Errorf("EntriesTargeting(9) = %d, want 0", n)
	}
}

func TestTotalEntriesInvariant(t *testing.T) {
	// Property: TotalEntries always equals the number of unique
	// (src,tgt,slot) triples inserted minus those removed.
	type op struct {
		Src, Tgt uint8
		Slot     uint16
	}
	prop := func(ops []op, del uint8) bool {
		tb := NewTable()
		ref := make(map[[3]uint32]bool)
		for _, o := range ops {
			src, tgt := heap.Frame(o.Src%8+1), heap.Frame(o.Tgt%8+1)
			slot := heap.Addr(o.Slot) * 4
			tb.Insert(src, tgt, slot)
			ref[[3]uint32{uint32(src), uint32(tgt), uint32(slot)}] = true
		}
		f := heap.Frame(del%8 + 1)
		tb.DeleteFrame(f)
		for k := range ref {
			if k[0] == uint32(f) || k[1] == uint32(f) {
				delete(ref, k)
			}
		}
		return tb.TotalEntries() == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
