package remset

import (
	"testing"

	"beltway/internal/heap"
)

// Duplicate inserts are the barrier slow path's steady state (repeatedly
// mutated old-to-young slots); this guard pins them at zero allocations.
func TestDuplicateInsertZeroAlloc(t *testing.T) {
	tb := NewTable()
	// A set large enough to have both a sorted prefix and a tail.
	for i := 0; i < 2*tailMax; i++ {
		tb.Insert(1, 2, heap.Addr(0x1000+i*4))
	}
	for _, slot := range []heap.Addr{0x1000, heap.Addr(0x1000 + (2*tailMax-1)*4)} {
		slot := slot
		if n := testing.AllocsPerRun(100, func() {
			if tb.Insert(1, 2, slot) {
				t.Fatal("duplicate insert reported new")
			}
		}); n != 0 {
			t.Errorf("duplicate Insert of %v allocates %v times per op, want 0", slot, n)
		}
	}
}

// A cached-pair miss that still dedups must not allocate either.
func TestDuplicateInsertPairSwitchZeroAlloc(t *testing.T) {
	tb := NewTable()
	tb.Insert(1, 2, 0x1000)
	tb.Insert(3, 4, 0x2000)
	if n := testing.AllocsPerRun(100, func() {
		tb.Insert(1, 2, 0x1000)
		tb.Insert(3, 4, 0x2000)
	}); n != 0 {
		t.Errorf("pair-switching duplicate Insert allocates %v times per run, want 0", n)
	}
}
