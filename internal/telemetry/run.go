package telemetry

import (
	"beltway/internal/gc"
	"beltway/internal/stats"
)

// Metric names emitted by every Run. Pause/copy/remset distributions are
// histograms (log-2 buckets over cost units / bytes / entries); the rest
// are counters plus one occupancy gauge.
const (
	MetricCollections     = "gc_collections_total"
	MetricFullCollections = "gc_full_collections_total"
	MetricPauseCost       = "gc_pause_cost_units"
	MetricCopiedBytes     = "gc_copied_bytes"
	MetricRemsetEntries   = "gc_remset_entries"
	MetricBarrierSlow     = "gc_barrier_slow_paths_total"
	MetricCondemnedBytes  = "gc_condemned_bytes_total"
	MetricFlips           = "gc_belt_flips_total"
	MetricOOMs            = "gc_oom_total"
	MetricOccupiedBytes   = "heap_occupied_bytes"

	// Degradation metrics (Config.Degrade): emergency full-heap
	// collections taken, and allocations that would have OOMed but were
	// rescued by the degradation ladder.
	MetricEmergencyCollections = "emergency_collections_total"
	MetricDegradedAverted      = "degraded_oom_averted_total"

	// Mark-region substrate metrics: in-place survivor volume and
	// defragmentation from GCEnd, line/block utilization from the
	// per-belt occupancy stream (lines summed over mark-region belts;
	// copying belts report zero lines).
	MetricMRObjectsMarked   = "markregion_objects_marked_total"
	MetricMRBytesMarked     = "markregion_bytes_marked_total"
	MetricMRFramesEvacuated = "markregion_frames_evacuated_total"
	MetricMRLines           = "markregion_lines_total"
	MetricMRLinesUsed       = "markregion_lines_used"
)

// Run is one run's telemetry: a flight recorder and a metrics registry
// fed by gc.Hooks. Attach it with collector.SetHooks(run.Hooks()) — or
// merge its hooks with others via gc.Hooks.Merge. Hook emission is
// allocation-free and never touches the clock (it only reads Now), so a
// run with telemetry attached follows the exact same cost timeline as
// one without.
type Run struct {
	clock *stats.Clock
	rec   *FlightRecorder
	reg   *Registry

	gcOrdinal uint64 // collections seen by these hooks (1-based)

	collections     *Counter
	fullCollections *Counter
	pauseHist       *Histogram
	copiedHist      *Histogram
	remsetHist      *Histogram
	barrierSlow     *Counter
	condemnedBytes  *Counter
	flips           *Counter
	ooms            *Counter
	occupied        *Gauge
	emergencies     *Counter
	averted         *Counter

	mrMarkedObjects *Counter
	mrMarkedBytes   *Counter
	mrEvacuated     *Counter
	mrLines         *Gauge
	mrLinesUsed     *Gauge

	// server is the lazily-registered request observer (ServerObserver);
	// nil until the run serves request traffic.
	server *ServerObserver
	// policy is the lazily-registered decision observer (PolicyObserver);
	// nil until the run attaches an adaptive controller.
	policy *PolicyObserver
	// Per-belt line occupancy from the last Occupancy emission, so the
	// gauges can report whole-heap sums while the hook stream is per
	// belt. Grown on first sight of a belt; steady-state emission stays
	// allocation-free.
	mrBeltLines []float64
	mrBeltUsed  []float64
}

// NewRun builds a Run observing the given clock, with a
// DefaultRecorderCap flight recorder and the standard metric set.
func NewRun(clock *stats.Clock) *Run {
	reg := NewRegistry()
	return &Run{
		clock:           clock,
		rec:             NewFlightRecorder(0),
		reg:             reg,
		collections:     reg.NewCounter(MetricCollections, "collections performed"),
		fullCollections: reg.NewCounter(MetricFullCollections, "collections condemning the whole occupied heap"),
		pauseHist:       reg.NewHistogram(MetricPauseCost, "stop-the-world pause cost per collection, in cost units"),
		copiedHist:      reg.NewHistogram(MetricCopiedBytes, "bytes evacuated per collection"),
		remsetHist:      reg.NewHistogram(MetricRemsetEntries, "remembered-set entries examined per collection"),
		barrierSlow:     reg.NewCounter(MetricBarrierSlow, "write-barrier slow paths taken"),
		condemnedBytes:  reg.NewCounter(MetricCondemnedBytes, "bytes condemned across all collections"),
		flips:           reg.NewCounter(MetricFlips, "older-first belt flips"),
		ooms:            reg.NewCounter(MetricOOMs, "out-of-memory events"),
		occupied:        reg.NewGauge(MetricOccupiedBytes, "collected-space occupancy after the last collection"),
		emergencies:     reg.NewCounter(MetricEmergencyCollections, "emergency full-heap collections taken by the degradation ladder"),
		averted:         reg.NewCounter(MetricDegradedAverted, "allocations rescued from OOM by the degradation ladder"),
		mrMarkedObjects: reg.NewCounter(MetricMRObjectsMarked, "mark-region survivors marked in place"),
		mrMarkedBytes:   reg.NewCounter(MetricMRBytesMarked, "bytes of mark-region survivors marked in place"),
		mrEvacuated:     reg.NewCounter(MetricMRFramesEvacuated, "sparse mark-region frames defragmented through the copy path"),
		mrLines:         reg.NewGauge(MetricMRLines, "lines on mark-region belts after the last collection"),
		mrLinesUsed:     reg.NewGauge(MetricMRLinesUsed, "used lines on mark-region belts after the last collection"),
	}
}

// Recorder returns the run's flight recorder.
func (r *Run) Recorder() *FlightRecorder { return r.rec }

// Registry returns the run's metrics registry.
func (r *Run) Registry() *Registry { return r.reg }

// PauseHistogram returns the pause-cost histogram (for table rendering).
func (r *Run) PauseHistogram() *Histogram { return r.pauseHist }

// now reads the cost clock (0 when the run has no clock attached).
func (r *Run) now() float64 {
	if r.clock == nil {
		return 0
	}
	return r.clock.Now()
}

// Hooks returns the gc.Hooks that feed this run. The returned closures
// are built once here; invoking them performs no allocation.
func (r *Run) Hooks() gc.Hooks {
	return gc.Hooks{
		GCBegin: func(info gc.GCBeginInfo) {
			r.gcOrdinal++
			r.collections.Inc()
			if info.Full {
				r.fullCollections.Inc()
			}
			r.condemnedBytes.Add(uint64(info.CondemnedBytes))
			full := uint64(0)
			if info.Full {
				full = 1
			}
			r.rec.Emit(Event{
				Kind: EvGCBegin, Time: r.now(), GC: r.gcOrdinal,
				A: uint64(info.Trigger) | full<<8,
				B: uint64(info.CondemnedIncrements),
				C: uint64(info.CondemnedBytes),
				D: uint64(info.OccupiedBytes),
			})
		},
		Condemned: func(in gc.IncrementInfo) {
			r.rec.Emit(Event{
				Kind: EvCondemned, Time: r.now(), GC: r.gcOrdinal,
				A: uint64(in.Belt),
				B: uint64(in.Seq) | uint64(in.Train+1)<<32,
				C: uint64(in.Bytes),
				D: uint64(in.Frames),
			})
		},
		GCEnd: func(info gc.GCEndInfo) {
			r.pauseHist.Observe(info.Duration)
			r.copiedHist.Observe(float64(info.BytesCopied))
			r.remsetHist.Observe(float64(info.RemsetEntries))
			r.barrierSlow.Add(info.BarrierSlowPaths)
			r.occupied.Set(float64(info.SurvivorBytes))
			r.mrMarkedObjects.Add(info.MRObjectsMarked)
			r.mrMarkedBytes.Add(info.MRBytesMarked)
			r.mrEvacuated.Add(info.MRFramesEvacuated)
			r.rec.Emit(Event{
				Kind: EvGCEnd, Time: r.now(), Dur: info.Duration, GC: r.gcOrdinal,
				A: info.BytesCopied,
				B: info.ObjectsCopied,
				C: info.RemsetEntries,
				D: info.BarrierSlowPaths,
			})
		},
		Occupancy: func(b gc.BeltStat) {
			if b.Belt >= 0 {
				for len(r.mrBeltLines) <= b.Belt {
					r.mrBeltLines = append(r.mrBeltLines, 0)
					r.mrBeltUsed = append(r.mrBeltUsed, 0)
				}
				r.mrBeltLines[b.Belt] = float64(b.MRLines)
				r.mrBeltUsed[b.Belt] = float64(b.MRLinesUsed)
				var lines, used float64
				for i := range r.mrBeltLines {
					lines += r.mrBeltLines[i]
					used += r.mrBeltUsed[i]
				}
				r.mrLines.Set(lines)
				r.mrLinesUsed.Set(used)
			}
			r.rec.Emit(Event{
				Kind: EvBelt, Time: r.now(), GC: r.gcOrdinal,
				A: uint64(b.Belt),
				B: uint64(b.Increments),
				C: uint64(b.Bytes),
				D: uint64(b.Frames),
			})
		},
		Flip: func(newAllocBelt, remsetEntries int) {
			r.flips.Inc()
			r.rec.Emit(Event{
				Kind: EvFlip, Time: r.now(),
				A: uint64(newAllocBelt), B: uint64(remsetEntries),
			})
		},
		OOM: func(requested, heapBytes int) {
			r.ooms.Inc()
			r.rec.Emit(Event{
				Kind: EvOOM, Time: r.now(),
				A: uint64(requested), B: uint64(heapBytes),
			})
		},
		Degraded: func(info gc.DegradeInfo) {
			switch info.Step {
			case gc.DegradeEmergencyGC:
				r.emergencies.Inc()
			case gc.DegradeRetryAverted:
				r.averted.Inc()
			}
			r.rec.Emit(Event{
				Kind: EvDegrade, Time: r.now(), GC: r.gcOrdinal,
				A: uint64(info.Step), B: uint64(info.Requested), C: uint64(info.HeapBytes),
			})
		},
	}
}

// RunSnapshot is a run's telemetry as plain data: the retained event
// stream plus the metric values. It round-trips through JSON (the
// engine's checkpoint records carry it) and merges into an Aggregator.
type RunSnapshot struct {
	Events        []Event           `json:"events,omitempty"`
	DroppedEvents uint64            `json:"dropped_events,omitempty"`
	Metrics       *RegistrySnapshot `json:"metrics,omitempty"`
}

// Snapshot captures the run's current state.
func (r *Run) Snapshot() *RunSnapshot {
	return &RunSnapshot{
		Events:        r.rec.Events(),
		DroppedEvents: r.rec.Dropped(),
		Metrics:       r.reg.Snapshot(),
	}
}

// PauseQuantile returns the q-quantile of the snapshot's pause-cost
// histogram, in cost units (0 when the snapshot has no pause data).
func (s *RunSnapshot) PauseQuantile(q float64) float64 {
	if s == nil || s.Metrics == nil {
		return 0
	}
	h, ok := s.Metrics.Histograms[MetricPauseCost]
	if !ok {
		return 0
	}
	return h.Quantile(q)
}
