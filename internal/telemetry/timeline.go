package telemetry

import (
	"fmt"
	"io"
	"strings"

	"beltway/internal/stats"
)

// timelineBarWidth is the width of one belt's occupancy bar.
const timelineBarWidth = 24

// WriteTimeline renders an ASCII heap-composition timeline from a run's
// event stream: one row per collection showing the trigger, the pause,
// and each belt's occupancy after the collection (a bar scaled to the
// run's peak belt occupancy, annotated "increments:bytes"). It echoes
// the paper's Fig. 2/3 belt diagrams over time.
func WriteTimeline(w io.Writer, name string, events []Event) error {
	// Pass 1: belt count and occupancy peak, for stable layout.
	nBelts := 0
	peak := uint64(0)
	for _, e := range events {
		if e.Kind == EvBelt {
			if int(e.A)+1 > nBelts {
				nBelts = int(e.A) + 1
			}
			if e.C > peak {
				peak = e.C
			}
		}
	}
	if _, err := fmt.Fprintf(w, "heap timeline: %s\n", name); err != nil {
		return err
	}
	if nBelts == 0 {
		_, err := fmt.Fprintln(w, "  (no collections recorded)")
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-5s %-9s %-12s %-9s", "gc", "t(s)", "trigger", "pause(ms)"); err != nil {
		return err
	}
	for b := 0; b < nBelts; b++ {
		if _, err := fmt.Fprintf(w, " %-*s", timelineBarWidth+10, fmt.Sprintf("belt %d", b)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	var begin Event
	haveBegin := false
	var end Event
	haveEnd := false
	belts := make([]Event, nBelts)
	seen := make([]bool, nBelts)
	flush := func() error {
		if !haveEnd {
			return nil
		}
		trig := "?"
		if haveBegin {
			trig = triggerName(uint8(begin.A))
			if begin.A>>8 != 0 {
				trig += "!" // full collection
			}
		}
		line := fmt.Sprintf("  %-5d %-9.3f %-12s %-9.2f",
			end.GC, end.Time/stats.CyclesPerSecond, trig, end.Dur/stats.CyclesPerSecond*1e3)
		for b := 0; b < nBelts; b++ {
			cell := "-"
			if seen[b] {
				cell = bar(belts[b].C, peak) + fmt.Sprintf(" %d:%s", belts[b].B, fmtBytes(belts[b].C))
			}
			line += fmt.Sprintf(" %-*s", timelineBarWidth+10, cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(line, " "))
		haveBegin, haveEnd = false, false
		for i := range seen {
			seen[i] = false
		}
		return err
	}
	for _, e := range events {
		switch e.Kind {
		case EvGCBegin:
			if err := flush(); err != nil {
				return err
			}
			begin, haveBegin = e, true
		case EvGCEnd:
			end, haveEnd = e, true
		case EvBelt:
			if int(e.A) < nBelts {
				belts[e.A], seen[e.A] = e, true
			}
		case EvOOM:
			if err := flush(); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "  OOM   %-9.3f requested=%d heap=%d\n",
				e.Time/stats.CyclesPerSecond, e.A, e.B); err != nil {
				return err
			}
		case EvFlip:
			if err := flush(); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "  flip  %-9.3f alloc belt -> %d (remset %d)\n",
				e.Time/stats.CyclesPerSecond, e.A, e.B); err != nil {
				return err
			}
		}
	}
	return flush()
}

// bar renders v against peak as a fixed-width '#' bar.
func bar(v, peak uint64) string {
	if peak == 0 {
		return strings.Repeat(".", timelineBarWidth)
	}
	n := int(float64(v) / float64(peak) * timelineBarWidth)
	if n > timelineBarWidth {
		n = timelineBarWidth
	}
	if v > 0 && n == 0 {
		n = 1
	}
	return strings.Repeat("#", n) + strings.Repeat(".", timelineBarWidth-n)
}

// fmtBytes renders a byte count compactly (K/M suffixes).
func fmtBytes(b uint64) string {
	switch {
	case b >= 10*1024*1024:
		return fmt.Sprintf("%dM", b/(1024*1024))
	case b >= 10*1024:
		return fmt.Sprintf("%dK", b/1024)
	default:
		return fmt.Sprintf("%d", b)
	}
}
