package telemetry

// Server metric names (internal/server request traffic). The latency
// histogram is log-2 bucketed like every Run histogram — good for
// dashboards and merges; SLO verdicts use the server package's exact
// quantiles instead (see metrics_test.go for the pinned error bound).
const (
	MetricRequests       = "server_requests_total"
	MetricRequestLatency = "server_request_latency_cost_units"
	MetricSLOViolations  = "server_slo_violations_total"
)

// ServerObserver feeds a Run's registry and flight recorder with
// per-request measurements. It satisfies server.Observer; like hook
// emission it is allocation-free and never advances the clock, so an
// observed run follows the exact same cost timeline as a blind one.
type ServerObserver struct {
	run        *Run
	requests   *Counter
	latency    *Histogram
	violations *Counter
}

// ServerObserver lazily registers the server metric set on the run's
// registry and returns the observer (idempotent per Run).
func (r *Run) ServerObserver() *ServerObserver {
	if r.server == nil {
		r.server = &ServerObserver{
			run:        r,
			requests:   r.reg.NewCounter(MetricRequests, "server requests served"),
			latency:    r.reg.NewHistogram(MetricRequestLatency, "per-request latency on the cost-unit clock"),
			violations: r.reg.NewCounter(MetricSLOViolations, "SLO targets missed by the run"),
		}
	}
	return r.server
}

// Request records one served request (server.Observer).
func (o *ServerObserver) Request(kind, phase, key int, start, latency, pauseCost float64) {
	o.requests.Inc()
	o.latency.Observe(latency)
	paused := uint64(0)
	if pauseCost > 0 {
		paused = 1
	}
	o.run.rec.Emit(Event{
		Kind: EvRequest, Time: start + latency, Dur: latency,
		A: uint64(kind) | paused<<8,
		B: uint64(key),
		C: uint64(phase),
		D: uint64(pauseCost),
	})
}

// AddViolations counts failed SLO targets into the metric.
func (o *ServerObserver) AddViolations(n int) {
	if n > 0 {
		o.violations.Add(uint64(n))
	}
}

// RequestQuantile returns the q-quantile of the snapshot's
// request-latency histogram, in cost units (0 without request data).
// Bucket-interpolated; for SLO verdicts use the exact server.Dist.
func (s *RunSnapshot) RequestQuantile(q float64) float64 {
	if s == nil || s.Metrics == nil {
		return 0
	}
	h, ok := s.Metrics.Histograms[MetricRequestLatency]
	if !ok {
		return 0
	}
	return h.Quantile(q)
}
